// Benchmark the machine this program runs on: our own BLAS DGEMM and the
// OpenMP STREAM TRIAD, driven by the same autotuner the paper describes —
// no simulation involved.  Budgets are kept small so the example finishes
// in well under a minute on a laptop.
//
//   $ ./native_host

#include <iostream>

#include "core/autotuner.hpp"
#include "core/native_backend.hpp"
#include "core/spaces.hpp"
#include "core/techniques.hpp"
#include "util/affinity.hpp"
#include "util/strings.hpp"

int main() {
  using namespace rooftune;

  core::TunerOptions base;
  base.invocations = 2;
  base.iterations = 10;
  base.timeout = util::Seconds{0.5};
  const auto options =
      core::technique_options(core::Technique::CIOuter, base, 0, /*min_count=*/3);

  std::cout << "host threads: " << util::native_thread_count() << "\n\n";

  {
    // A laptop-scale DGEMM space (the paper's full node-scale sweep would
    // run for hours here).
    core::SearchSpace space;
    space.add_range(core::ParameterRange::powers_of_two("n", 64, 512));
    space.add_range(core::ParameterRange::powers_of_two("m", 64, 512));
    space.add_range(core::ParameterRange::powers_of_two("k", 32, 256));

    core::NativeDgemmBackend backend;
    const auto run = core::Autotuner(space, options).run(backend);
    std::cout << "DGEMM: best " << run.best_config().to_string() << " -> "
              << util::format("%.2f GFLOP/s", run.best_value()) << "  ("
              << util::format_seconds(run.total_time) << ", "
              << run.pruned_configs << "/" << run.results.size() << " pruned)\n";
  }

  {
    // TRIAD sweep: 192 KiB .. 96 MiB working sets.
    core::NativeTriadBackend backend;
    const auto space = core::triad_space(util::Bytes::KiB(192), util::Bytes::MiB(96));
    const auto run = core::Autotuner(space, options).run(backend);
    const auto& best = run.best();
    std::cout << "TRIAD: best N=" << best.config.at("N") << " (working set "
              << util::format_bytes(core::triad_working_set(best.config)) << ") -> "
              << util::format("%.2f GB/s", run.best_value()) << "  ("
              << util::format_seconds(run.total_time) << ")\n";
    // The largest working set approximates DRAM bandwidth.
    const auto& dram = run.results.back();
    std::cout << "TRIAD: largest working set "
              << util::format_bytes(core::triad_working_set(dram.config)) << " -> "
              << util::format("%.2f GB/s", dram.value()) << " (~DRAM)\n";
  }
  return 0;
}
