// Quickstart: autotune the DGEMM benchmark on a simulated Xeon and print
// the practical peak the roofline model would use.
//
//   $ ./quickstart [machine]        (default: 2650v4)
//
// This is the 60-second tour of the library: build a search space, pick a
// technique (the paper's recommended C+I+Outer), run the tuner, inspect the
// result.

#include <iostream>

#include "core/autotuner.hpp"
#include "core/report.hpp"
#include "core/spaces.hpp"
#include "core/techniques.hpp"
#include "simhw/sim_backend.hpp"

int main(int argc, char** argv) {
  using namespace rooftune;

  const std::string machine_name = argc > 1 ? argv[1] : "2650v4";
  const simhw::MachineSpec machine = simhw::machine_by_name(machine_name);

  // A simulated backend stands in for the real node (see DESIGN.md §2);
  // swap in core::NativeDgemmBackend to benchmark the host instead.
  simhw::SimOptions sim;
  sim.sockets_used = 1;
  simhw::SimDgemmBackend backend(machine, sim);

  // The paper's search space (96 configurations, §IV-A) and its most
  // optimized technique: confidence stop + inner & outer pruning.
  const core::TunerOptions options =
      core::technique_options(core::Technique::CIOuter, /*base=*/{},
                              /*hand_tuned_iterations=*/0, /*prune_min_count=*/10);
  const core::Autotuner tuner(core::dgemm_reduced_space(), options);

  const core::TuningRun run = tuner.run(backend);

  std::cout << "machine:           " << machine.name << " (1 socket)\n"
            << "theoretical peak:  " << machine.theoretical_flops(1).value
            << " GFLOP/s\n"
            << "measured peak:     " << run.best_value() << " GFLOP/s ("
            << 100.0 * run.best_value() / machine.theoretical_flops(1).value
            << "% of peak)\n"
            << "best dimensions:   " << run.best_config().to_string() << "\n"
            << "search time:       " << util::format_seconds(run.total_time)
            << " simulated (" << run.pruned_configs << "/" << run.results.size()
            << " configurations pruned)\n";
  return 0;
}
