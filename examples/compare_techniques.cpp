// Mini version of the paper's Tables VIII-XI for one machine: run every
// automatic technique on the simulated machine and print performance, time
// and speedup over Default.  The bench/table08_11_optimizations binary
// regenerates the full four-machine tables; this example shows how to do it
// through the public API.
//
//   $ ./compare_techniques [machine] [min_count]   (default: 2650v4, 2)

#include <iostream>
#include <string>

#include "core/autotuner.hpp"
#include "core/spaces.hpp"
#include "core/techniques.hpp"
#include "simhw/sim_backend.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace rooftune;

  const std::string machine_name = argc > 1 ? argv[1] : "2650v4";
  const std::uint64_t min_count = argc > 2 ? std::stoull(argv[2]) : 2;
  const simhw::MachineSpec machine = simhw::machine_by_name(machine_name);

  const auto run_technique = [&](core::Technique technique, int sockets) {
    simhw::SimOptions sim;
    sim.sockets_used = sockets;
    simhw::SimDgemmBackend backend(machine, sim);
    const auto options = core::technique_options(technique, {}, 0, min_count);
    return core::Autotuner(core::dgemm_reduced_space(), options).run(backend);
  };

  util::TextTable table;
  table.columns({"Technique", "F_S1 Perf", "F_S2 Perf", "Time", "Speedup"},
                {util::Align::Left});

  double default_time = 0.0;
  for (const auto technique : core::automatic_techniques()) {
    const auto s1 = run_technique(technique, 1);
    const auto s2 = run_technique(technique, 2);
    const double time = s1.total_time.value + s2.total_time.value;
    if (technique == core::Technique::Default) default_time = time;
    table.add_row({core::technique_name(technique),
                   util::format("%.2f", s1.best_value()),
                   util::format("%.2f", s2.best_value()),
                   util::format("%.2fs", time),
                   util::format("%.2fx", default_time / time)});
  }

  std::cout << "DGEMM technique comparison on " << machine.name
            << " (simulated; min prune count " << min_count << ")\n"
            << table.render();
  return 0;
}
