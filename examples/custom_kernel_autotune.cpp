// The paper's closing claim (§VII): "the techniques presented in this paper
// are general autotuning benchmarking techniques that can be applied to any
// autotuning application."  This example demonstrates that: we autotune a
// *user-defined* kernel — a 2D stencil with a tunable tile size — by
// implementing the core::Backend interface, and let the same stop-condition
// machinery (confidence + upper-bound pruning) cut the search short.
//
// The kernel is real: it runs on the host and is timed with the wall clock.

#include <cstdint>
#include <iostream>
#include <vector>

#include "core/autotuner.hpp"
#include "core/techniques.hpp"
#include "util/clock.hpp"

namespace {

using namespace rooftune;

/// 5-point stencil over a fixed grid, blocked by a tunable tile size.
/// Metric: millions of stencil updates per second (higher is better).
class StencilBackend final : public core::Backend {
 public:
  static constexpr std::int64_t kGrid = 512;

  StencilBackend() : src_(kGrid * kGrid, 1.0), dst_(kGrid * kGrid, 0.0) {}

  void begin_invocation(const core::Configuration& config, std::uint64_t) override {
    tile_ = config.at("tile");
    // Pre-heat pass so the first timed iteration sees warm caches.
    run_stencil();
  }

  core::Sample run_iteration() override {
    const util::Seconds t0 = clock_.now();
    run_stencil();
    const util::Seconds elapsed = clock_.now() - t0;
    core::Sample s;
    s.kernel_time = elapsed;
    const double updates = static_cast<double>((kGrid - 2) * (kGrid - 2));
    s.value = updates / 1e6 / elapsed.value;  // Mupdates/s
    return s;
  }

  void end_invocation() override {}
  [[nodiscard]] const util::Clock& clock() const override { return clock_; }
  [[nodiscard]] std::string metric_name() const override { return "Mupdates/s"; }

 private:
  void run_stencil() {
    const std::int64_t n = kGrid;
    for (std::int64_t ii = 1; ii < n - 1; ii += tile_) {
      for (std::int64_t jj = 1; jj < n - 1; jj += tile_) {
        const std::int64_t ie = std::min(ii + tile_, n - 1);
        const std::int64_t je = std::min(jj + tile_, n - 1);
        for (std::int64_t i = ii; i < ie; ++i) {
          for (std::int64_t j = jj; j < je; ++j) {
            dst_[i * n + j] = 0.25 * (src_[(i - 1) * n + j] + src_[(i + 1) * n + j] +
                                      src_[i * n + j - 1] + src_[i * n + j + 1]);
          }
        }
      }
    }
    std::swap(src_, dst_);
  }

  util::WallClock clock_;
  std::vector<double> src_, dst_;
  std::int64_t tile_ = 32;
};

}  // namespace

int main() {
  using namespace rooftune;

  // Search space: the tile size, powers of two from 4 to 512.
  core::SearchSpace space;
  space.add_range(core::ParameterRange::powers_of_two("tile", 4, 512));

  // Short budgets — this runs on the host for real.
  core::TunerOptions base;
  base.invocations = 3;
  base.iterations = 30;
  base.timeout = util::Seconds{0.5};
  const auto options =
      core::technique_options(core::Technique::CIOuter, base, 0, /*min_count=*/3);

  StencilBackend backend;
  core::Autotuner tuner(space, options);
  tuner.set_progress_callback([](std::size_t i, std::size_t total,
                                 const core::ConfigResult& r) {
    std::cout << "  [" << (i + 1) << "/" << total << "] " << r.config.to_string()
              << " -> " << r.value() << " Mupdates/s"
              << (r.pruned() ? " (pruned)" : "") << '\n';
  });

  std::cout << "autotuning stencil tile size on this host...\n";
  const auto run = tuner.run(backend);
  std::cout << "\nbest tile: " << run.best_config().to_string() << " at "
            << run.best_value() << " Mupdates/s ("
            << util::format_seconds(run.total_time) << " wall, "
            << run.pruned_configs << " of " << run.results.size()
            << " tiles pruned early)\n";
  return 0;
}
