// Full pipeline: autotune DGEMM (both socket configurations) and TRIAD
// (L3 + DRAM, both socket configurations), assemble the roofline model,
// and emit every artifact the tool produces:
//
//   roofline_<machine>.svg   the graph (paper Fig. 1 layout)
//   roofline_<machine>.csv   the attainable-performance series
//   stdout                   utilization table + ASCII plot
//
//   $ ./roofline_report [machine]   (default: gold6148)

#include <fstream>
#include <iostream>

#include "roofline/builder.hpp"
#include "roofline/plot.hpp"
#include "simhw/machine.hpp"

int main(int argc, char** argv) {
  using namespace rooftune;

  const std::string machine_name = argc > 1 ? argv[1] : "gold6148";
  const simhw::MachineSpec machine = simhw::machine_by_name(machine_name);

  roofline::BuilderOptions options;
  options.prune_min_count = 10;  // robust default for unknown warm-up behaviour

  std::cout << "building roofline model for " << machine.name << " ...\n";
  const roofline::RooflineModel model = roofline::build_simulated(machine, options);

  std::cout << roofline::utilization_report(model) << '\n';
  std::cout << roofline::render_ascii(model) << '\n';

  // TRIAD (I = 1/12) sits deep in the memory-bound region; report what the
  // model predicts it can attain under the DRAM roof vs. the L3 roof.
  const util::Intensity triad{1.0 / 12.0};
  std::cout << "attainable at TRIAD intensity (1 socket): "
            << model.attainable(triad, 0, 1).value << " GFLOP/s under DRAM, "
            << model.attainable(triad, 0, 0).value << " GFLOP/s under L3\n";
  std::cout << "ridge point (1 socket, DRAM): "
            << model.ridge_point(0, 1).value << " FLOP/byte\n\n";

  const std::string svg_path = "roofline_" + machine.name + ".svg";
  const std::string csv_path = "roofline_" + machine.name + ".csv";
  std::ofstream(svg_path) << roofline::render_svg(model);
  std::ofstream(csv_path) << roofline::render_csv(model);
  std::cout << "wrote " << svg_path << " and " << csv_path << '\n';
  return 0;
}
