// Performance-regression checking — the comparison machinery as a CI gate.
//
// Benchmark results are noisy, so "did my change make DGEMM slower?" needs
// statistics, not two numbers: this example runs the same tuning problem
// twice (simulating "before" and "after" builds; the "after" machine is
// degraded by a simulated misconfiguration on dual-socket runs), then uses
// Fieller effect-size intervals per configuration (Kalibera & Jones) to
// report exactly which configurations regressed, and by how much.
//
//   $ ./regression_check

#include <iostream>

#include "core/analysis.hpp"
#include "core/spaces.hpp"
#include "core/techniques.hpp"
#include "simhw/sim_backend.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace {

using namespace rooftune;

core::TuningRun run_build(const simhw::MachineSpec& machine, std::uint64_t seed) {
  simhw::SimOptions sim;
  sim.sockets_used = 2;
  sim.seed = seed;
  simhw::SimDgemmBackend backend(machine, sim);
  // A compact space so the example is quick to read; Default technique so
  // every configuration has full invocation-level statistics.
  core::SearchSpace space;
  space.add_range(core::ParameterRange::doubling("n", 1000, 3));
  space.add_range(core::ParameterRange("m", {512, 2048}));
  space.add_range(core::ParameterRange("k", {64, 128, 512}));
  return core::Autotuner(space, core::technique_options(core::Technique::Default))
      .run(backend);
}

}  // namespace

int main() {
  using namespace rooftune;

  // "Before": the healthy gold6148.  "After": the same machine with its
  // dual-socket interconnect misconfigured — modelled by a machine whose
  // dual-socket DGEMM anchors sit lower (we reuse gold6132's weaker S2
  // scaling as the stand-in for the degraded build).
  const auto before_machine = simhw::machine_by_name("gold6148");
  const auto after_machine = simhw::machine_by_name("gold6132");

  std::cout << "tuning 'before' build...\n";
  const auto before = run_build(before_machine, 1);
  std::cout << "tuning 'after' build...\n";
  const auto after = run_build(after_machine, 2);

  const auto cmp = core::compare_runs(before, after, 0.99);

  std::cout << "\ncompared " << cmp.compared << " configurations ("
            << cmp.skipped << " skipped), best ratio before/after = "
            << util::format("%.2f", cmp.best_ratio) << "\n\n";

  if (cmp.significant.empty()) {
    std::cout << "no statistically significant differences at 99%\n";
    return 0;
  }

  util::TextTable table;
  table.columns({"Configuration", "Before", "After", "Ratio", "Verdict"},
                {util::Align::Left});
  for (const auto& delta : cmp.significant) {
    table.add_row({delta.config.to_string(), util::format("%.1f", delta.value_a),
                   util::format("%.1f", delta.value_b),
                   util::format("%.2fx", delta.ratio),
                   stats::to_string(delta.verdict)});
  }
  std::cout << table.render();
  std::cout << "\n(a CI gate would fail this change: every configuration is\n"
               "significantly slower on the degraded build)\n";
  return 0;
}
