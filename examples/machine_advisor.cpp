// Machine selection — the use case the paper's introduction motivates:
// "selecting ideal hardware architectures for the software's
// characteristics".  Build roofline models for all simulated machines,
// then ask, for a few representative kernels, which machine serves each
// best and whether it is memory- or compute-bound there.
//
//   $ ./machine_advisor

#include <iostream>
#include <vector>

#include "roofline/advisor.hpp"
#include "roofline/builder.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main() {
  using namespace rooftune;

  roofline::BuilderOptions options;
  options.prune_min_count = 100;  // safe for all machines incl. the 2695v4

  std::vector<roofline::RooflineModel> models;
  for (const auto& machine : simhw::paper_machines()) {
    std::cout << "modeling " << machine.name << "...\n";
    models.push_back(roofline::build_simulated(machine, options));
  }

  // Representative kernels with their classic operational intensities.
  const std::vector<roofline::KernelProfile> kernels = {
      {"STREAM triad", util::Flops{2.0}, util::Bytes{24}},       // 1/12
      {"SpMV (CSR, fp64)", util::Flops{2.0}, util::Bytes{12}},   // ~1/6
      {"7-pt stencil", util::Flops{8.0}, util::Bytes{24}},       // ~1/3
      {"FFT (large)", util::Flops{5.0}, util::Bytes{4}},         // ~1.25
      {"DGEMM n=4096", util::Flops{2.0 * 4096}, util::Bytes{48}},  // ~170
  };

  for (const auto& kernel : kernels) {
    const auto intensity = kernel.intensity();
    std::cout << '\n'
              << kernel.name << " (I = " << util::format("%.3f", intensity.value)
              << " FLOP/byte)\n";
    util::TextTable table;
    table.columns({"Rank", "Machine", "Attainable", "Bound"}, {util::Align::Left});
    const auto ranking = roofline::rank_machines(models, intensity);
    for (std::size_t i = 0; i < ranking.size(); ++i) {
      table.add_row({std::to_string(i + 1), ranking[i].machine,
                     util::format("%.1f GFLOP/s", ranking[i].attainable.value),
                     ranking[i].memory_bound ? "memory" : "compute"});
    }
    std::cout << table.render();
  }

  std::cout << "\nJSON export of the first model:\n"
            << roofline::to_json(models.front()) << '\n';
  return 0;
}
