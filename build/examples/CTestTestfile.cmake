# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_roofline_report "/root/repo/build/examples/roofline_report")
set_tests_properties(example_roofline_report PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_custom_kernel_autotune "/root/repo/build/examples/custom_kernel_autotune")
set_tests_properties(example_custom_kernel_autotune PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_compare_techniques "/root/repo/build/examples/compare_techniques")
set_tests_properties(example_compare_techniques PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_native_host "/root/repo/build/examples/native_host")
set_tests_properties(example_native_host PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_machine_advisor "/root/repo/build/examples/machine_advisor")
set_tests_properties(example_machine_advisor PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_regression_check "/root/repo/build/examples/regression_check")
set_tests_properties(example_regression_check PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
