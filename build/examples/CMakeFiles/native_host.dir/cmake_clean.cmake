file(REMOVE_RECURSE
  "CMakeFiles/native_host.dir/native_host.cpp.o"
  "CMakeFiles/native_host.dir/native_host.cpp.o.d"
  "native_host"
  "native_host.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/native_host.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
