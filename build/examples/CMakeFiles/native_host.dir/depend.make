# Empty dependencies file for native_host.
# This may be replaced when dependencies are built.
