# Empty compiler generated dependencies file for regression_check.
# This may be replaced when dependencies are built.
