file(REMOVE_RECURSE
  "CMakeFiles/regression_check.dir/regression_check.cpp.o"
  "CMakeFiles/regression_check.dir/regression_check.cpp.o.d"
  "regression_check"
  "regression_check.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/regression_check.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
