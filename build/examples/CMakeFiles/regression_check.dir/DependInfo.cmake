
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/regression_check.cpp" "examples/CMakeFiles/regression_check.dir/regression_check.cpp.o" "gcc" "examples/CMakeFiles/regression_check.dir/regression_check.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/roofline/CMakeFiles/rooftune_roofline.dir/DependInfo.cmake"
  "/root/repo/build/src/simhw/CMakeFiles/rooftune_simhw.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/rooftune_core.dir/DependInfo.cmake"
  "/root/repo/build/src/stream/CMakeFiles/rooftune_stream.dir/DependInfo.cmake"
  "/root/repo/build/src/blas/CMakeFiles/rooftune_blas.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/rooftune_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/rooftune_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
