# Empty dependencies file for roofline_report.
# This may be replaced when dependencies are built.
