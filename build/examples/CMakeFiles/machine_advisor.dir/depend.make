# Empty dependencies file for machine_advisor.
# This may be replaced when dependencies are built.
