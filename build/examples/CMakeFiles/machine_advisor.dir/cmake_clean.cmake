file(REMOVE_RECURSE
  "CMakeFiles/machine_advisor.dir/machine_advisor.cpp.o"
  "CMakeFiles/machine_advisor.dir/machine_advisor.cpp.o.d"
  "machine_advisor"
  "machine_advisor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/machine_advisor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
