# Empty dependencies file for custom_kernel_autotune.
# This may be replaced when dependencies are built.
