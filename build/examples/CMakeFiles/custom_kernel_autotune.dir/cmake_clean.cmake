file(REMOVE_RECURSE
  "CMakeFiles/custom_kernel_autotune.dir/custom_kernel_autotune.cpp.o"
  "CMakeFiles/custom_kernel_autotune.dir/custom_kernel_autotune.cpp.o.d"
  "custom_kernel_autotune"
  "custom_kernel_autotune.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_kernel_autotune.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
