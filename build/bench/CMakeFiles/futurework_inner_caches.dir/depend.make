# Empty dependencies file for futurework_inner_caches.
# This may be replaced when dependencies are built.
