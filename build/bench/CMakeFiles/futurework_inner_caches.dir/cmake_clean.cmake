file(REMOVE_RECURSE
  "CMakeFiles/futurework_inner_caches.dir/futurework_inner_caches.cpp.o"
  "CMakeFiles/futurework_inner_caches.dir/futurework_inner_caches.cpp.o.d"
  "futurework_inner_caches"
  "futurework_inner_caches.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/futurework_inner_caches.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
