# Empty dependencies file for fig02_process.
# This may be replaced when dependencies are built.
