file(REMOVE_RECURSE
  "CMakeFiles/fig02_process.dir/fig02_process.cpp.o"
  "CMakeFiles/fig02_process.dir/fig02_process.cpp.o.d"
  "fig02_process"
  "fig02_process.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_process.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
