# Empty compiler generated dependencies file for ablation_overhead_sensitivity.
# This may be replaced when dependencies are built.
