file(REMOVE_RECURSE
  "CMakeFiles/ablation_overhead_sensitivity.dir/ablation_overhead_sensitivity.cpp.o"
  "CMakeFiles/ablation_overhead_sensitivity.dir/ablation_overhead_sensitivity.cpp.o.d"
  "ablation_overhead_sensitivity"
  "ablation_overhead_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_overhead_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
