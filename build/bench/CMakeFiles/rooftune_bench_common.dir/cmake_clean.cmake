file(REMOVE_RECURSE
  "CMakeFiles/rooftune_bench_common.dir/common.cpp.o"
  "CMakeFiles/rooftune_bench_common.dir/common.cpp.o.d"
  "librooftune_bench_common.a"
  "librooftune_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rooftune_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
