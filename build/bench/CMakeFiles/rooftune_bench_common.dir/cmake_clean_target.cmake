file(REMOVE_RECURSE
  "librooftune_bench_common.a"
)
