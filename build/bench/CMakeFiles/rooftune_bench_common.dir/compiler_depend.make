# Empty compiler generated dependencies file for rooftune_bench_common.
# This may be replaced when dependencies are built.
