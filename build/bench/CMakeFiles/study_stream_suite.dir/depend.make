# Empty dependencies file for study_stream_suite.
# This may be replaced when dependencies are built.
