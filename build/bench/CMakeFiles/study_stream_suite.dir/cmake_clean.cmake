file(REMOVE_RECURSE
  "CMakeFiles/study_stream_suite.dir/study_stream_suite.cpp.o"
  "CMakeFiles/study_stream_suite.dir/study_stream_suite.cpp.o.d"
  "study_stream_suite"
  "study_stream_suite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/study_stream_suite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
