file(REMOVE_RECURSE
  "CMakeFiles/ablation_stop_conditions.dir/ablation_stop_conditions.cpp.o"
  "CMakeFiles/ablation_stop_conditions.dir/ablation_stop_conditions.cpp.o.d"
  "ablation_stop_conditions"
  "ablation_stop_conditions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_stop_conditions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
