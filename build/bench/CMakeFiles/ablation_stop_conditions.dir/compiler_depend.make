# Empty compiler generated dependencies file for ablation_stop_conditions.
# This may be replaced when dependencies are built.
