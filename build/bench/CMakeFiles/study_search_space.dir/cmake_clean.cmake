file(REMOVE_RECURSE
  "CMakeFiles/study_search_space.dir/study_search_space.cpp.o"
  "CMakeFiles/study_search_space.dir/study_search_space.cpp.o.d"
  "study_search_space"
  "study_search_space.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/study_search_space.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
