# Empty dependencies file for study_search_space.
# This may be replaced when dependencies are built.
