# Empty compiler generated dependencies file for table03_theoretical.
# This may be replaced when dependencies are built.
