file(REMOVE_RECURSE
  "CMakeFiles/table03_theoretical.dir/table03_theoretical.cpp.o"
  "CMakeFiles/table03_theoretical.dir/table03_theoretical.cpp.o.d"
  "table03_theoretical"
  "table03_theoretical.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table03_theoretical.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
