# Empty compiler generated dependencies file for ablation_stats_cost.
# This may be replaced when dependencies are built.
