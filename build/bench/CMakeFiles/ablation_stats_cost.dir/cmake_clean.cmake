file(REMOVE_RECURSE
  "CMakeFiles/ablation_stats_cost.dir/ablation_stats_cost.cpp.o"
  "CMakeFiles/ablation_stats_cost.dir/ablation_stats_cost.cpp.o.d"
  "ablation_stats_cost"
  "ablation_stats_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_stats_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
