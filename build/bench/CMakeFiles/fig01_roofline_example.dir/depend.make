# Empty dependencies file for fig01_roofline_example.
# This may be replaced when dependencies are built.
