file(REMOVE_RECURSE
  "CMakeFiles/fig01_roofline_example.dir/fig01_roofline_example.cpp.o"
  "CMakeFiles/fig01_roofline_example.dir/fig01_roofline_example.cpp.o.d"
  "fig01_roofline_example"
  "fig01_roofline_example.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig01_roofline_example.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
