# Empty dependencies file for fig06_time_vs_size.
# This may be replaced when dependencies are built.
