file(REMOVE_RECURSE
  "CMakeFiles/fig06_time_vs_size.dir/fig06_time_vs_size.cpp.o"
  "CMakeFiles/fig06_time_vs_size.dir/fig06_time_vs_size.cpp.o.d"
  "fig06_time_vs_size"
  "fig06_time_vs_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_time_vs_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
