file(REMOVE_RECURSE
  "CMakeFiles/table07_handtuned.dir/table07_handtuned.cpp.o"
  "CMakeFiles/table07_handtuned.dir/table07_handtuned.cpp.o.d"
  "table07_handtuned"
  "table07_handtuned.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table07_handtuned.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
