# Empty compiler generated dependencies file for table07_handtuned.
# This may be replaced when dependencies are built.
