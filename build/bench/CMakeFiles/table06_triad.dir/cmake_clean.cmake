file(REMOVE_RECURSE
  "CMakeFiles/table06_triad.dir/table06_triad.cpp.o"
  "CMakeFiles/table06_triad.dir/table06_triad.cpp.o.d"
  "table06_triad"
  "table06_triad.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table06_triad.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
