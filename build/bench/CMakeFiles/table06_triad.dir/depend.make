# Empty dependencies file for table06_triad.
# This may be replaced when dependencies are built.
