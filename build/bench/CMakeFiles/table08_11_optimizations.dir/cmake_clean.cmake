file(REMOVE_RECURSE
  "CMakeFiles/table08_11_optimizations.dir/table08_11_optimizations.cpp.o"
  "CMakeFiles/table08_11_optimizations.dir/table08_11_optimizations.cpp.o.d"
  "table08_11_optimizations"
  "table08_11_optimizations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table08_11_optimizations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
