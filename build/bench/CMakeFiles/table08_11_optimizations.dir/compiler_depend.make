# Empty compiler generated dependencies file for table08_11_optimizations.
# This may be replaced when dependencies are built.
