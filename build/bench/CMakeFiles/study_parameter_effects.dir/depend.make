# Empty dependencies file for study_parameter_effects.
# This may be replaced when dependencies are built.
