file(REMOVE_RECURSE
  "CMakeFiles/study_parameter_effects.dir/study_parameter_effects.cpp.o"
  "CMakeFiles/study_parameter_effects.dir/study_parameter_effects.cpp.o.d"
  "study_parameter_effects"
  "study_parameter_effects.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/study_parameter_effects.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
