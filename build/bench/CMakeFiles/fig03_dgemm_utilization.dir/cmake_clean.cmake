file(REMOVE_RECURSE
  "CMakeFiles/fig03_dgemm_utilization.dir/fig03_dgemm_utilization.cpp.o"
  "CMakeFiles/fig03_dgemm_utilization.dir/fig03_dgemm_utilization.cpp.o.d"
  "fig03_dgemm_utilization"
  "fig03_dgemm_utilization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_dgemm_utilization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
