# Empty compiler generated dependencies file for fig03_dgemm_utilization.
# This may be replaced when dependencies are built.
