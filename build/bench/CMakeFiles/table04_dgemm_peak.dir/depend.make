# Empty dependencies file for table04_dgemm_peak.
# This may be replaced when dependencies are built.
