file(REMOVE_RECURSE
  "CMakeFiles/table04_dgemm_peak.dir/table04_dgemm_peak.cpp.o"
  "CMakeFiles/table04_dgemm_peak.dir/table04_dgemm_peak.cpp.o.d"
  "table04_dgemm_peak"
  "table04_dgemm_peak.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table04_dgemm_peak.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
