# Empty dependencies file for fig04_triad_utilization.
# This may be replaced when dependencies are built.
