file(REMOVE_RECURSE
  "CMakeFiles/fig04_triad_utilization.dir/fig04_triad_utilization.cpp.o"
  "CMakeFiles/fig04_triad_utilization.dir/fig04_triad_utilization.cpp.o.d"
  "fig04_triad_utilization"
  "fig04_triad_utilization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_triad_utilization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
