file(REMOVE_RECURSE
  "CMakeFiles/study_distributions.dir/study_distributions.cpp.o"
  "CMakeFiles/study_distributions.dir/study_distributions.cpp.o.d"
  "study_distributions"
  "study_distributions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/study_distributions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
