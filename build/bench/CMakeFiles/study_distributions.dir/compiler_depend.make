# Empty compiler generated dependencies file for study_distributions.
# This may be replaced when dependencies are built.
