file(REMOVE_RECURSE
  "CMakeFiles/rooftune_simhw.dir/dgemm_model.cpp.o"
  "CMakeFiles/rooftune_simhw.dir/dgemm_model.cpp.o.d"
  "CMakeFiles/rooftune_simhw.dir/machine.cpp.o"
  "CMakeFiles/rooftune_simhw.dir/machine.cpp.o.d"
  "CMakeFiles/rooftune_simhw.dir/noise.cpp.o"
  "CMakeFiles/rooftune_simhw.dir/noise.cpp.o.d"
  "CMakeFiles/rooftune_simhw.dir/sim_backend.cpp.o"
  "CMakeFiles/rooftune_simhw.dir/sim_backend.cpp.o.d"
  "CMakeFiles/rooftune_simhw.dir/triad_model.cpp.o"
  "CMakeFiles/rooftune_simhw.dir/triad_model.cpp.o.d"
  "librooftune_simhw.a"
  "librooftune_simhw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rooftune_simhw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
