# Empty compiler generated dependencies file for rooftune_simhw.
# This may be replaced when dependencies are built.
