file(REMOVE_RECURSE
  "librooftune_simhw.a"
)
