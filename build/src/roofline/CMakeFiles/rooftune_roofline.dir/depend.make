# Empty dependencies file for rooftune_roofline.
# This may be replaced when dependencies are built.
