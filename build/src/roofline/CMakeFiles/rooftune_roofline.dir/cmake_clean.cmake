file(REMOVE_RECURSE
  "CMakeFiles/rooftune_roofline.dir/advisor.cpp.o"
  "CMakeFiles/rooftune_roofline.dir/advisor.cpp.o.d"
  "CMakeFiles/rooftune_roofline.dir/builder.cpp.o"
  "CMakeFiles/rooftune_roofline.dir/builder.cpp.o.d"
  "CMakeFiles/rooftune_roofline.dir/plot.cpp.o"
  "CMakeFiles/rooftune_roofline.dir/plot.cpp.o.d"
  "CMakeFiles/rooftune_roofline.dir/roofline.cpp.o"
  "CMakeFiles/rooftune_roofline.dir/roofline.cpp.o.d"
  "librooftune_roofline.a"
  "librooftune_roofline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rooftune_roofline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
