file(REMOVE_RECURSE
  "librooftune_roofline.a"
)
