
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/autocorrelation.cpp" "src/stats/CMakeFiles/rooftune_stats.dir/autocorrelation.cpp.o" "gcc" "src/stats/CMakeFiles/rooftune_stats.dir/autocorrelation.cpp.o.d"
  "/root/repo/src/stats/bootstrap.cpp" "src/stats/CMakeFiles/rooftune_stats.dir/bootstrap.cpp.o" "gcc" "src/stats/CMakeFiles/rooftune_stats.dir/bootstrap.cpp.o.d"
  "/root/repo/src/stats/confidence.cpp" "src/stats/CMakeFiles/rooftune_stats.dir/confidence.cpp.o" "gcc" "src/stats/CMakeFiles/rooftune_stats.dir/confidence.cpp.o.d"
  "/root/repo/src/stats/descriptive.cpp" "src/stats/CMakeFiles/rooftune_stats.dir/descriptive.cpp.o" "gcc" "src/stats/CMakeFiles/rooftune_stats.dir/descriptive.cpp.o.d"
  "/root/repo/src/stats/effect_size.cpp" "src/stats/CMakeFiles/rooftune_stats.dir/effect_size.cpp.o" "gcc" "src/stats/CMakeFiles/rooftune_stats.dir/effect_size.cpp.o.d"
  "/root/repo/src/stats/histogram.cpp" "src/stats/CMakeFiles/rooftune_stats.dir/histogram.cpp.o" "gcc" "src/stats/CMakeFiles/rooftune_stats.dir/histogram.cpp.o.d"
  "/root/repo/src/stats/ks_test.cpp" "src/stats/CMakeFiles/rooftune_stats.dir/ks_test.cpp.o" "gcc" "src/stats/CMakeFiles/rooftune_stats.dir/ks_test.cpp.o.d"
  "/root/repo/src/stats/normal.cpp" "src/stats/CMakeFiles/rooftune_stats.dir/normal.cpp.o" "gcc" "src/stats/CMakeFiles/rooftune_stats.dir/normal.cpp.o.d"
  "/root/repo/src/stats/normality.cpp" "src/stats/CMakeFiles/rooftune_stats.dir/normality.cpp.o" "gcc" "src/stats/CMakeFiles/rooftune_stats.dir/normality.cpp.o.d"
  "/root/repo/src/stats/p2_quantile.cpp" "src/stats/CMakeFiles/rooftune_stats.dir/p2_quantile.cpp.o" "gcc" "src/stats/CMakeFiles/rooftune_stats.dir/p2_quantile.cpp.o.d"
  "/root/repo/src/stats/student_t.cpp" "src/stats/CMakeFiles/rooftune_stats.dir/student_t.cpp.o" "gcc" "src/stats/CMakeFiles/rooftune_stats.dir/student_t.cpp.o.d"
  "/root/repo/src/stats/trend.cpp" "src/stats/CMakeFiles/rooftune_stats.dir/trend.cpp.o" "gcc" "src/stats/CMakeFiles/rooftune_stats.dir/trend.cpp.o.d"
  "/root/repo/src/stats/welford.cpp" "src/stats/CMakeFiles/rooftune_stats.dir/welford.cpp.o" "gcc" "src/stats/CMakeFiles/rooftune_stats.dir/welford.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/rooftune_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
