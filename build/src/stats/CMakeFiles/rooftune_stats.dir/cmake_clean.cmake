file(REMOVE_RECURSE
  "CMakeFiles/rooftune_stats.dir/autocorrelation.cpp.o"
  "CMakeFiles/rooftune_stats.dir/autocorrelation.cpp.o.d"
  "CMakeFiles/rooftune_stats.dir/bootstrap.cpp.o"
  "CMakeFiles/rooftune_stats.dir/bootstrap.cpp.o.d"
  "CMakeFiles/rooftune_stats.dir/confidence.cpp.o"
  "CMakeFiles/rooftune_stats.dir/confidence.cpp.o.d"
  "CMakeFiles/rooftune_stats.dir/descriptive.cpp.o"
  "CMakeFiles/rooftune_stats.dir/descriptive.cpp.o.d"
  "CMakeFiles/rooftune_stats.dir/effect_size.cpp.o"
  "CMakeFiles/rooftune_stats.dir/effect_size.cpp.o.d"
  "CMakeFiles/rooftune_stats.dir/histogram.cpp.o"
  "CMakeFiles/rooftune_stats.dir/histogram.cpp.o.d"
  "CMakeFiles/rooftune_stats.dir/ks_test.cpp.o"
  "CMakeFiles/rooftune_stats.dir/ks_test.cpp.o.d"
  "CMakeFiles/rooftune_stats.dir/normal.cpp.o"
  "CMakeFiles/rooftune_stats.dir/normal.cpp.o.d"
  "CMakeFiles/rooftune_stats.dir/normality.cpp.o"
  "CMakeFiles/rooftune_stats.dir/normality.cpp.o.d"
  "CMakeFiles/rooftune_stats.dir/p2_quantile.cpp.o"
  "CMakeFiles/rooftune_stats.dir/p2_quantile.cpp.o.d"
  "CMakeFiles/rooftune_stats.dir/student_t.cpp.o"
  "CMakeFiles/rooftune_stats.dir/student_t.cpp.o.d"
  "CMakeFiles/rooftune_stats.dir/trend.cpp.o"
  "CMakeFiles/rooftune_stats.dir/trend.cpp.o.d"
  "CMakeFiles/rooftune_stats.dir/welford.cpp.o"
  "CMakeFiles/rooftune_stats.dir/welford.cpp.o.d"
  "librooftune_stats.a"
  "librooftune_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rooftune_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
