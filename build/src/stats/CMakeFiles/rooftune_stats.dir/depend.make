# Empty dependencies file for rooftune_stats.
# This may be replaced when dependencies are built.
