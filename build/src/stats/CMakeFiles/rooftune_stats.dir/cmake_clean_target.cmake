file(REMOVE_RECURSE
  "librooftune_stats.a"
)
