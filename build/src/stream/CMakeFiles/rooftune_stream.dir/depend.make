# Empty dependencies file for rooftune_stream.
# This may be replaced when dependencies are built.
