file(REMOVE_RECURSE
  "librooftune_stream.a"
)
