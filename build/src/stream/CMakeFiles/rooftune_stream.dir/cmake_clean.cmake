file(REMOVE_RECURSE
  "CMakeFiles/rooftune_stream.dir/stream.cpp.o"
  "CMakeFiles/rooftune_stream.dir/stream.cpp.o.d"
  "librooftune_stream.a"
  "librooftune_stream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rooftune_stream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
