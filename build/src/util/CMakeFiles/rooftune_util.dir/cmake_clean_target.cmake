file(REMOVE_RECURSE
  "librooftune_util.a"
)
