file(REMOVE_RECURSE
  "CMakeFiles/rooftune_util.dir/affinity.cpp.o"
  "CMakeFiles/rooftune_util.dir/affinity.cpp.o.d"
  "CMakeFiles/rooftune_util.dir/clock.cpp.o"
  "CMakeFiles/rooftune_util.dir/clock.cpp.o.d"
  "CMakeFiles/rooftune_util.dir/csv.cpp.o"
  "CMakeFiles/rooftune_util.dir/csv.cpp.o.d"
  "CMakeFiles/rooftune_util.dir/env.cpp.o"
  "CMakeFiles/rooftune_util.dir/env.cpp.o.d"
  "CMakeFiles/rooftune_util.dir/json.cpp.o"
  "CMakeFiles/rooftune_util.dir/json.cpp.o.d"
  "CMakeFiles/rooftune_util.dir/json_parse.cpp.o"
  "CMakeFiles/rooftune_util.dir/json_parse.cpp.o.d"
  "CMakeFiles/rooftune_util.dir/log.cpp.o"
  "CMakeFiles/rooftune_util.dir/log.cpp.o.d"
  "CMakeFiles/rooftune_util.dir/rng.cpp.o"
  "CMakeFiles/rooftune_util.dir/rng.cpp.o.d"
  "CMakeFiles/rooftune_util.dir/strings.cpp.o"
  "CMakeFiles/rooftune_util.dir/strings.cpp.o.d"
  "CMakeFiles/rooftune_util.dir/table.cpp.o"
  "CMakeFiles/rooftune_util.dir/table.cpp.o.d"
  "CMakeFiles/rooftune_util.dir/units.cpp.o"
  "CMakeFiles/rooftune_util.dir/units.cpp.o.d"
  "librooftune_util.a"
  "librooftune_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rooftune_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
