
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/util/affinity.cpp" "src/util/CMakeFiles/rooftune_util.dir/affinity.cpp.o" "gcc" "src/util/CMakeFiles/rooftune_util.dir/affinity.cpp.o.d"
  "/root/repo/src/util/clock.cpp" "src/util/CMakeFiles/rooftune_util.dir/clock.cpp.o" "gcc" "src/util/CMakeFiles/rooftune_util.dir/clock.cpp.o.d"
  "/root/repo/src/util/csv.cpp" "src/util/CMakeFiles/rooftune_util.dir/csv.cpp.o" "gcc" "src/util/CMakeFiles/rooftune_util.dir/csv.cpp.o.d"
  "/root/repo/src/util/env.cpp" "src/util/CMakeFiles/rooftune_util.dir/env.cpp.o" "gcc" "src/util/CMakeFiles/rooftune_util.dir/env.cpp.o.d"
  "/root/repo/src/util/json.cpp" "src/util/CMakeFiles/rooftune_util.dir/json.cpp.o" "gcc" "src/util/CMakeFiles/rooftune_util.dir/json.cpp.o.d"
  "/root/repo/src/util/json_parse.cpp" "src/util/CMakeFiles/rooftune_util.dir/json_parse.cpp.o" "gcc" "src/util/CMakeFiles/rooftune_util.dir/json_parse.cpp.o.d"
  "/root/repo/src/util/log.cpp" "src/util/CMakeFiles/rooftune_util.dir/log.cpp.o" "gcc" "src/util/CMakeFiles/rooftune_util.dir/log.cpp.o.d"
  "/root/repo/src/util/rng.cpp" "src/util/CMakeFiles/rooftune_util.dir/rng.cpp.o" "gcc" "src/util/CMakeFiles/rooftune_util.dir/rng.cpp.o.d"
  "/root/repo/src/util/strings.cpp" "src/util/CMakeFiles/rooftune_util.dir/strings.cpp.o" "gcc" "src/util/CMakeFiles/rooftune_util.dir/strings.cpp.o.d"
  "/root/repo/src/util/table.cpp" "src/util/CMakeFiles/rooftune_util.dir/table.cpp.o" "gcc" "src/util/CMakeFiles/rooftune_util.dir/table.cpp.o.d"
  "/root/repo/src/util/units.cpp" "src/util/CMakeFiles/rooftune_util.dir/units.cpp.o" "gcc" "src/util/CMakeFiles/rooftune_util.dir/units.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
