# Empty dependencies file for rooftune_util.
# This may be replaced when dependencies are built.
