file(REMOVE_RECURSE
  "librooftune_core.a"
)
