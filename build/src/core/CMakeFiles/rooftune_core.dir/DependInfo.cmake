
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/analysis.cpp" "src/core/CMakeFiles/rooftune_core.dir/analysis.cpp.o" "gcc" "src/core/CMakeFiles/rooftune_core.dir/analysis.cpp.o.d"
  "/root/repo/src/core/autotuner.cpp" "src/core/CMakeFiles/rooftune_core.dir/autotuner.cpp.o" "gcc" "src/core/CMakeFiles/rooftune_core.dir/autotuner.cpp.o.d"
  "/root/repo/src/core/config.cpp" "src/core/CMakeFiles/rooftune_core.dir/config.cpp.o" "gcc" "src/core/CMakeFiles/rooftune_core.dir/config.cpp.o.d"
  "/root/repo/src/core/evaluator.cpp" "src/core/CMakeFiles/rooftune_core.dir/evaluator.cpp.o" "gcc" "src/core/CMakeFiles/rooftune_core.dir/evaluator.cpp.o.d"
  "/root/repo/src/core/handtune.cpp" "src/core/CMakeFiles/rooftune_core.dir/handtune.cpp.o" "gcc" "src/core/CMakeFiles/rooftune_core.dir/handtune.cpp.o.d"
  "/root/repo/src/core/native_backend.cpp" "src/core/CMakeFiles/rooftune_core.dir/native_backend.cpp.o" "gcc" "src/core/CMakeFiles/rooftune_core.dir/native_backend.cpp.o.d"
  "/root/repo/src/core/pipe_backend.cpp" "src/core/CMakeFiles/rooftune_core.dir/pipe_backend.cpp.o" "gcc" "src/core/CMakeFiles/rooftune_core.dir/pipe_backend.cpp.o.d"
  "/root/repo/src/core/process_doc.cpp" "src/core/CMakeFiles/rooftune_core.dir/process_doc.cpp.o" "gcc" "src/core/CMakeFiles/rooftune_core.dir/process_doc.cpp.o.d"
  "/root/repo/src/core/report.cpp" "src/core/CMakeFiles/rooftune_core.dir/report.cpp.o" "gcc" "src/core/CMakeFiles/rooftune_core.dir/report.cpp.o.d"
  "/root/repo/src/core/search_space.cpp" "src/core/CMakeFiles/rooftune_core.dir/search_space.cpp.o" "gcc" "src/core/CMakeFiles/rooftune_core.dir/search_space.cpp.o.d"
  "/root/repo/src/core/session.cpp" "src/core/CMakeFiles/rooftune_core.dir/session.cpp.o" "gcc" "src/core/CMakeFiles/rooftune_core.dir/session.cpp.o.d"
  "/root/repo/src/core/spaces.cpp" "src/core/CMakeFiles/rooftune_core.dir/spaces.cpp.o" "gcc" "src/core/CMakeFiles/rooftune_core.dir/spaces.cpp.o.d"
  "/root/repo/src/core/stop_condition.cpp" "src/core/CMakeFiles/rooftune_core.dir/stop_condition.cpp.o" "gcc" "src/core/CMakeFiles/rooftune_core.dir/stop_condition.cpp.o.d"
  "/root/repo/src/core/stop_condition_ext.cpp" "src/core/CMakeFiles/rooftune_core.dir/stop_condition_ext.cpp.o" "gcc" "src/core/CMakeFiles/rooftune_core.dir/stop_condition_ext.cpp.o.d"
  "/root/repo/src/core/techniques.cpp" "src/core/CMakeFiles/rooftune_core.dir/techniques.cpp.o" "gcc" "src/core/CMakeFiles/rooftune_core.dir/techniques.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/stats/CMakeFiles/rooftune_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/rooftune_util.dir/DependInfo.cmake"
  "/root/repo/build/src/blas/CMakeFiles/rooftune_blas.dir/DependInfo.cmake"
  "/root/repo/build/src/stream/CMakeFiles/rooftune_stream.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
