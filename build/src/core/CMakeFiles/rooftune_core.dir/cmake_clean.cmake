file(REMOVE_RECURSE
  "CMakeFiles/rooftune_core.dir/analysis.cpp.o"
  "CMakeFiles/rooftune_core.dir/analysis.cpp.o.d"
  "CMakeFiles/rooftune_core.dir/autotuner.cpp.o"
  "CMakeFiles/rooftune_core.dir/autotuner.cpp.o.d"
  "CMakeFiles/rooftune_core.dir/config.cpp.o"
  "CMakeFiles/rooftune_core.dir/config.cpp.o.d"
  "CMakeFiles/rooftune_core.dir/evaluator.cpp.o"
  "CMakeFiles/rooftune_core.dir/evaluator.cpp.o.d"
  "CMakeFiles/rooftune_core.dir/handtune.cpp.o"
  "CMakeFiles/rooftune_core.dir/handtune.cpp.o.d"
  "CMakeFiles/rooftune_core.dir/native_backend.cpp.o"
  "CMakeFiles/rooftune_core.dir/native_backend.cpp.o.d"
  "CMakeFiles/rooftune_core.dir/pipe_backend.cpp.o"
  "CMakeFiles/rooftune_core.dir/pipe_backend.cpp.o.d"
  "CMakeFiles/rooftune_core.dir/process_doc.cpp.o"
  "CMakeFiles/rooftune_core.dir/process_doc.cpp.o.d"
  "CMakeFiles/rooftune_core.dir/report.cpp.o"
  "CMakeFiles/rooftune_core.dir/report.cpp.o.d"
  "CMakeFiles/rooftune_core.dir/search_space.cpp.o"
  "CMakeFiles/rooftune_core.dir/search_space.cpp.o.d"
  "CMakeFiles/rooftune_core.dir/session.cpp.o"
  "CMakeFiles/rooftune_core.dir/session.cpp.o.d"
  "CMakeFiles/rooftune_core.dir/spaces.cpp.o"
  "CMakeFiles/rooftune_core.dir/spaces.cpp.o.d"
  "CMakeFiles/rooftune_core.dir/stop_condition.cpp.o"
  "CMakeFiles/rooftune_core.dir/stop_condition.cpp.o.d"
  "CMakeFiles/rooftune_core.dir/stop_condition_ext.cpp.o"
  "CMakeFiles/rooftune_core.dir/stop_condition_ext.cpp.o.d"
  "CMakeFiles/rooftune_core.dir/techniques.cpp.o"
  "CMakeFiles/rooftune_core.dir/techniques.cpp.o.d"
  "librooftune_core.a"
  "librooftune_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rooftune_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
