# Empty dependencies file for rooftune_core.
# This may be replaced when dependencies are built.
