# Empty dependencies file for rooftune_cli_lib.
# This may be replaced when dependencies are built.
