file(REMOVE_RECURSE
  "CMakeFiles/rooftune_cli_lib.dir/args.cpp.o"
  "CMakeFiles/rooftune_cli_lib.dir/args.cpp.o.d"
  "CMakeFiles/rooftune_cli_lib.dir/commands.cpp.o"
  "CMakeFiles/rooftune_cli_lib.dir/commands.cpp.o.d"
  "librooftune_cli_lib.a"
  "librooftune_cli_lib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rooftune_cli_lib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
