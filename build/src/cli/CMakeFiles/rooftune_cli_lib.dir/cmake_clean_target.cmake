file(REMOVE_RECURSE
  "librooftune_cli_lib.a"
)
