# Empty compiler generated dependencies file for rooftune.
# This may be replaced when dependencies are built.
