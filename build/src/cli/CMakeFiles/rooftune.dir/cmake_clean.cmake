file(REMOVE_RECURSE
  "CMakeFiles/rooftune.dir/main.cpp.o"
  "CMakeFiles/rooftune.dir/main.cpp.o.d"
  "rooftune"
  "rooftune.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rooftune.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
