
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/blas/dgemm.cpp" "src/blas/CMakeFiles/rooftune_blas.dir/dgemm.cpp.o" "gcc" "src/blas/CMakeFiles/rooftune_blas.dir/dgemm.cpp.o.d"
  "/root/repo/src/blas/dgemm_blocked.cpp" "src/blas/CMakeFiles/rooftune_blas.dir/dgemm_blocked.cpp.o" "gcc" "src/blas/CMakeFiles/rooftune_blas.dir/dgemm_blocked.cpp.o.d"
  "/root/repo/src/blas/dgemm_naive.cpp" "src/blas/CMakeFiles/rooftune_blas.dir/dgemm_naive.cpp.o" "gcc" "src/blas/CMakeFiles/rooftune_blas.dir/dgemm_naive.cpp.o.d"
  "/root/repo/src/blas/dgemm_packed.cpp" "src/blas/CMakeFiles/rooftune_blas.dir/dgemm_packed.cpp.o" "gcc" "src/blas/CMakeFiles/rooftune_blas.dir/dgemm_packed.cpp.o.d"
  "/root/repo/src/blas/level1.cpp" "src/blas/CMakeFiles/rooftune_blas.dir/level1.cpp.o" "gcc" "src/blas/CMakeFiles/rooftune_blas.dir/level1.cpp.o.d"
  "/root/repo/src/blas/level23.cpp" "src/blas/CMakeFiles/rooftune_blas.dir/level23.cpp.o" "gcc" "src/blas/CMakeFiles/rooftune_blas.dir/level23.cpp.o.d"
  "/root/repo/src/blas/matrix.cpp" "src/blas/CMakeFiles/rooftune_blas.dir/matrix.cpp.o" "gcc" "src/blas/CMakeFiles/rooftune_blas.dir/matrix.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/rooftune_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
