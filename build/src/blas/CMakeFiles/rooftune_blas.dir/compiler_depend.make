# Empty compiler generated dependencies file for rooftune_blas.
# This may be replaced when dependencies are built.
