file(REMOVE_RECURSE
  "CMakeFiles/rooftune_blas.dir/dgemm.cpp.o"
  "CMakeFiles/rooftune_blas.dir/dgemm.cpp.o.d"
  "CMakeFiles/rooftune_blas.dir/dgemm_blocked.cpp.o"
  "CMakeFiles/rooftune_blas.dir/dgemm_blocked.cpp.o.d"
  "CMakeFiles/rooftune_blas.dir/dgemm_naive.cpp.o"
  "CMakeFiles/rooftune_blas.dir/dgemm_naive.cpp.o.d"
  "CMakeFiles/rooftune_blas.dir/dgemm_packed.cpp.o"
  "CMakeFiles/rooftune_blas.dir/dgemm_packed.cpp.o.d"
  "CMakeFiles/rooftune_blas.dir/level1.cpp.o"
  "CMakeFiles/rooftune_blas.dir/level1.cpp.o.d"
  "CMakeFiles/rooftune_blas.dir/level23.cpp.o"
  "CMakeFiles/rooftune_blas.dir/level23.cpp.o.d"
  "CMakeFiles/rooftune_blas.dir/matrix.cpp.o"
  "CMakeFiles/rooftune_blas.dir/matrix.cpp.o.d"
  "librooftune_blas.a"
  "librooftune_blas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rooftune_blas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
