file(REMOVE_RECURSE
  "librooftune_blas.a"
)
