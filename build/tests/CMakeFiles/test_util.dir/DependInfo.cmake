
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/util/test_affinity.cpp" "tests/CMakeFiles/test_util.dir/util/test_affinity.cpp.o" "gcc" "tests/CMakeFiles/test_util.dir/util/test_affinity.cpp.o.d"
  "/root/repo/tests/util/test_aligned_buffer.cpp" "tests/CMakeFiles/test_util.dir/util/test_aligned_buffer.cpp.o" "gcc" "tests/CMakeFiles/test_util.dir/util/test_aligned_buffer.cpp.o.d"
  "/root/repo/tests/util/test_clock.cpp" "tests/CMakeFiles/test_util.dir/util/test_clock.cpp.o" "gcc" "tests/CMakeFiles/test_util.dir/util/test_clock.cpp.o.d"
  "/root/repo/tests/util/test_csv.cpp" "tests/CMakeFiles/test_util.dir/util/test_csv.cpp.o" "gcc" "tests/CMakeFiles/test_util.dir/util/test_csv.cpp.o.d"
  "/root/repo/tests/util/test_env.cpp" "tests/CMakeFiles/test_util.dir/util/test_env.cpp.o" "gcc" "tests/CMakeFiles/test_util.dir/util/test_env.cpp.o.d"
  "/root/repo/tests/util/test_json.cpp" "tests/CMakeFiles/test_util.dir/util/test_json.cpp.o" "gcc" "tests/CMakeFiles/test_util.dir/util/test_json.cpp.o.d"
  "/root/repo/tests/util/test_json_fuzz.cpp" "tests/CMakeFiles/test_util.dir/util/test_json_fuzz.cpp.o" "gcc" "tests/CMakeFiles/test_util.dir/util/test_json_fuzz.cpp.o.d"
  "/root/repo/tests/util/test_json_parse.cpp" "tests/CMakeFiles/test_util.dir/util/test_json_parse.cpp.o" "gcc" "tests/CMakeFiles/test_util.dir/util/test_json_parse.cpp.o.d"
  "/root/repo/tests/util/test_log.cpp" "tests/CMakeFiles/test_util.dir/util/test_log.cpp.o" "gcc" "tests/CMakeFiles/test_util.dir/util/test_log.cpp.o.d"
  "/root/repo/tests/util/test_rng.cpp" "tests/CMakeFiles/test_util.dir/util/test_rng.cpp.o" "gcc" "tests/CMakeFiles/test_util.dir/util/test_rng.cpp.o.d"
  "/root/repo/tests/util/test_strings.cpp" "tests/CMakeFiles/test_util.dir/util/test_strings.cpp.o" "gcc" "tests/CMakeFiles/test_util.dir/util/test_strings.cpp.o.d"
  "/root/repo/tests/util/test_table.cpp" "tests/CMakeFiles/test_util.dir/util/test_table.cpp.o" "gcc" "tests/CMakeFiles/test_util.dir/util/test_table.cpp.o.d"
  "/root/repo/tests/util/test_units.cpp" "tests/CMakeFiles/test_util.dir/util/test_units.cpp.o" "gcc" "tests/CMakeFiles/test_util.dir/util/test_units.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cli/CMakeFiles/rooftune_cli_lib.dir/DependInfo.cmake"
  "/root/repo/build/src/roofline/CMakeFiles/rooftune_roofline.dir/DependInfo.cmake"
  "/root/repo/build/src/simhw/CMakeFiles/rooftune_simhw.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/rooftune_core.dir/DependInfo.cmake"
  "/root/repo/build/src/stream/CMakeFiles/rooftune_stream.dir/DependInfo.cmake"
  "/root/repo/build/src/blas/CMakeFiles/rooftune_blas.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/rooftune_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/rooftune_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
