
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/stats/test_autocorrelation.cpp" "tests/CMakeFiles/test_stats.dir/stats/test_autocorrelation.cpp.o" "gcc" "tests/CMakeFiles/test_stats.dir/stats/test_autocorrelation.cpp.o.d"
  "/root/repo/tests/stats/test_bootstrap.cpp" "tests/CMakeFiles/test_stats.dir/stats/test_bootstrap.cpp.o" "gcc" "tests/CMakeFiles/test_stats.dir/stats/test_bootstrap.cpp.o.d"
  "/root/repo/tests/stats/test_confidence.cpp" "tests/CMakeFiles/test_stats.dir/stats/test_confidence.cpp.o" "gcc" "tests/CMakeFiles/test_stats.dir/stats/test_confidence.cpp.o.d"
  "/root/repo/tests/stats/test_descriptive.cpp" "tests/CMakeFiles/test_stats.dir/stats/test_descriptive.cpp.o" "gcc" "tests/CMakeFiles/test_stats.dir/stats/test_descriptive.cpp.o.d"
  "/root/repo/tests/stats/test_effect_size.cpp" "tests/CMakeFiles/test_stats.dir/stats/test_effect_size.cpp.o" "gcc" "tests/CMakeFiles/test_stats.dir/stats/test_effect_size.cpp.o.d"
  "/root/repo/tests/stats/test_histogram.cpp" "tests/CMakeFiles/test_stats.dir/stats/test_histogram.cpp.o" "gcc" "tests/CMakeFiles/test_stats.dir/stats/test_histogram.cpp.o.d"
  "/root/repo/tests/stats/test_ks_test.cpp" "tests/CMakeFiles/test_stats.dir/stats/test_ks_test.cpp.o" "gcc" "tests/CMakeFiles/test_stats.dir/stats/test_ks_test.cpp.o.d"
  "/root/repo/tests/stats/test_normal.cpp" "tests/CMakeFiles/test_stats.dir/stats/test_normal.cpp.o" "gcc" "tests/CMakeFiles/test_stats.dir/stats/test_normal.cpp.o.d"
  "/root/repo/tests/stats/test_normality.cpp" "tests/CMakeFiles/test_stats.dir/stats/test_normality.cpp.o" "gcc" "tests/CMakeFiles/test_stats.dir/stats/test_normality.cpp.o.d"
  "/root/repo/tests/stats/test_p2_quantile.cpp" "tests/CMakeFiles/test_stats.dir/stats/test_p2_quantile.cpp.o" "gcc" "tests/CMakeFiles/test_stats.dir/stats/test_p2_quantile.cpp.o.d"
  "/root/repo/tests/stats/test_student_t.cpp" "tests/CMakeFiles/test_stats.dir/stats/test_student_t.cpp.o" "gcc" "tests/CMakeFiles/test_stats.dir/stats/test_student_t.cpp.o.d"
  "/root/repo/tests/stats/test_trend.cpp" "tests/CMakeFiles/test_stats.dir/stats/test_trend.cpp.o" "gcc" "tests/CMakeFiles/test_stats.dir/stats/test_trend.cpp.o.d"
  "/root/repo/tests/stats/test_welford.cpp" "tests/CMakeFiles/test_stats.dir/stats/test_welford.cpp.o" "gcc" "tests/CMakeFiles/test_stats.dir/stats/test_welford.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cli/CMakeFiles/rooftune_cli_lib.dir/DependInfo.cmake"
  "/root/repo/build/src/roofline/CMakeFiles/rooftune_roofline.dir/DependInfo.cmake"
  "/root/repo/build/src/simhw/CMakeFiles/rooftune_simhw.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/rooftune_core.dir/DependInfo.cmake"
  "/root/repo/build/src/stream/CMakeFiles/rooftune_stream.dir/DependInfo.cmake"
  "/root/repo/build/src/blas/CMakeFiles/rooftune_blas.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/rooftune_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/rooftune_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
