file(REMOVE_RECURSE
  "CMakeFiles/test_stats.dir/stats/test_autocorrelation.cpp.o"
  "CMakeFiles/test_stats.dir/stats/test_autocorrelation.cpp.o.d"
  "CMakeFiles/test_stats.dir/stats/test_bootstrap.cpp.o"
  "CMakeFiles/test_stats.dir/stats/test_bootstrap.cpp.o.d"
  "CMakeFiles/test_stats.dir/stats/test_confidence.cpp.o"
  "CMakeFiles/test_stats.dir/stats/test_confidence.cpp.o.d"
  "CMakeFiles/test_stats.dir/stats/test_descriptive.cpp.o"
  "CMakeFiles/test_stats.dir/stats/test_descriptive.cpp.o.d"
  "CMakeFiles/test_stats.dir/stats/test_effect_size.cpp.o"
  "CMakeFiles/test_stats.dir/stats/test_effect_size.cpp.o.d"
  "CMakeFiles/test_stats.dir/stats/test_histogram.cpp.o"
  "CMakeFiles/test_stats.dir/stats/test_histogram.cpp.o.d"
  "CMakeFiles/test_stats.dir/stats/test_ks_test.cpp.o"
  "CMakeFiles/test_stats.dir/stats/test_ks_test.cpp.o.d"
  "CMakeFiles/test_stats.dir/stats/test_normal.cpp.o"
  "CMakeFiles/test_stats.dir/stats/test_normal.cpp.o.d"
  "CMakeFiles/test_stats.dir/stats/test_normality.cpp.o"
  "CMakeFiles/test_stats.dir/stats/test_normality.cpp.o.d"
  "CMakeFiles/test_stats.dir/stats/test_p2_quantile.cpp.o"
  "CMakeFiles/test_stats.dir/stats/test_p2_quantile.cpp.o.d"
  "CMakeFiles/test_stats.dir/stats/test_student_t.cpp.o"
  "CMakeFiles/test_stats.dir/stats/test_student_t.cpp.o.d"
  "CMakeFiles/test_stats.dir/stats/test_trend.cpp.o"
  "CMakeFiles/test_stats.dir/stats/test_trend.cpp.o.d"
  "CMakeFiles/test_stats.dir/stats/test_welford.cpp.o"
  "CMakeFiles/test_stats.dir/stats/test_welford.cpp.o.d"
  "test_stats"
  "test_stats.pdb"
  "test_stats[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
