
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/test_analysis.cpp" "tests/CMakeFiles/test_core.dir/core/test_analysis.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_analysis.cpp.o.d"
  "/root/repo/tests/core/test_autotuner.cpp" "tests/CMakeFiles/test_core.dir/core/test_autotuner.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_autotuner.cpp.o.d"
  "/root/repo/tests/core/test_autotuner_robustness.cpp" "tests/CMakeFiles/test_core.dir/core/test_autotuner_robustness.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_autotuner_robustness.cpp.o.d"
  "/root/repo/tests/core/test_compare_runs.cpp" "tests/CMakeFiles/test_core.dir/core/test_compare_runs.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_compare_runs.cpp.o.d"
  "/root/repo/tests/core/test_config.cpp" "tests/CMakeFiles/test_core.dir/core/test_config.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_config.cpp.o.d"
  "/root/repo/tests/core/test_coordinate_descent.cpp" "tests/CMakeFiles/test_core.dir/core/test_coordinate_descent.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_coordinate_descent.cpp.o.d"
  "/root/repo/tests/core/test_evaluator.cpp" "tests/CMakeFiles/test_core.dir/core/test_evaluator.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_evaluator.cpp.o.d"
  "/root/repo/tests/core/test_handtune.cpp" "tests/CMakeFiles/test_core.dir/core/test_handtune.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_handtune.cpp.o.d"
  "/root/repo/tests/core/test_native_backend.cpp" "tests/CMakeFiles/test_core.dir/core/test_native_backend.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_native_backend.cpp.o.d"
  "/root/repo/tests/core/test_pipe_backend.cpp" "tests/CMakeFiles/test_core.dir/core/test_pipe_backend.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_pipe_backend.cpp.o.d"
  "/root/repo/tests/core/test_process_doc.cpp" "tests/CMakeFiles/test_core.dir/core/test_process_doc.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_process_doc.cpp.o.d"
  "/root/repo/tests/core/test_report.cpp" "tests/CMakeFiles/test_core.dir/core/test_report.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_report.cpp.o.d"
  "/root/repo/tests/core/test_search_space.cpp" "tests/CMakeFiles/test_core.dir/core/test_search_space.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_search_space.cpp.o.d"
  "/root/repo/tests/core/test_session.cpp" "tests/CMakeFiles/test_core.dir/core/test_session.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_session.cpp.o.d"
  "/root/repo/tests/core/test_spaces.cpp" "tests/CMakeFiles/test_core.dir/core/test_spaces.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_spaces.cpp.o.d"
  "/root/repo/tests/core/test_stop_condition.cpp" "tests/CMakeFiles/test_core.dir/core/test_stop_condition.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_stop_condition.cpp.o.d"
  "/root/repo/tests/core/test_stop_condition_ext.cpp" "tests/CMakeFiles/test_core.dir/core/test_stop_condition_ext.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_stop_condition_ext.cpp.o.d"
  "/root/repo/tests/core/test_techniques.cpp" "tests/CMakeFiles/test_core.dir/core/test_techniques.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_techniques.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cli/CMakeFiles/rooftune_cli_lib.dir/DependInfo.cmake"
  "/root/repo/build/src/roofline/CMakeFiles/rooftune_roofline.dir/DependInfo.cmake"
  "/root/repo/build/src/simhw/CMakeFiles/rooftune_simhw.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/rooftune_core.dir/DependInfo.cmake"
  "/root/repo/build/src/stream/CMakeFiles/rooftune_stream.dir/DependInfo.cmake"
  "/root/repo/build/src/blas/CMakeFiles/rooftune_blas.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/rooftune_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/rooftune_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
