file(REMOVE_RECURSE
  "CMakeFiles/test_simhw.dir/simhw/test_dgemm_model.cpp.o"
  "CMakeFiles/test_simhw.dir/simhw/test_dgemm_model.cpp.o.d"
  "CMakeFiles/test_simhw.dir/simhw/test_inner_caches.cpp.o"
  "CMakeFiles/test_simhw.dir/simhw/test_inner_caches.cpp.o.d"
  "CMakeFiles/test_simhw.dir/simhw/test_machine.cpp.o"
  "CMakeFiles/test_simhw.dir/simhw/test_machine.cpp.o.d"
  "CMakeFiles/test_simhw.dir/simhw/test_machine_parse.cpp.o"
  "CMakeFiles/test_simhw.dir/simhw/test_machine_parse.cpp.o.d"
  "CMakeFiles/test_simhw.dir/simhw/test_noise.cpp.o"
  "CMakeFiles/test_simhw.dir/simhw/test_noise.cpp.o.d"
  "CMakeFiles/test_simhw.dir/simhw/test_sim_backend.cpp.o"
  "CMakeFiles/test_simhw.dir/simhw/test_sim_backend.cpp.o.d"
  "CMakeFiles/test_simhw.dir/simhw/test_triad_model.cpp.o"
  "CMakeFiles/test_simhw.dir/simhw/test_triad_model.cpp.o.d"
  "test_simhw"
  "test_simhw.pdb"
  "test_simhw[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_simhw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
