
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/simhw/test_dgemm_model.cpp" "tests/CMakeFiles/test_simhw.dir/simhw/test_dgemm_model.cpp.o" "gcc" "tests/CMakeFiles/test_simhw.dir/simhw/test_dgemm_model.cpp.o.d"
  "/root/repo/tests/simhw/test_inner_caches.cpp" "tests/CMakeFiles/test_simhw.dir/simhw/test_inner_caches.cpp.o" "gcc" "tests/CMakeFiles/test_simhw.dir/simhw/test_inner_caches.cpp.o.d"
  "/root/repo/tests/simhw/test_machine.cpp" "tests/CMakeFiles/test_simhw.dir/simhw/test_machine.cpp.o" "gcc" "tests/CMakeFiles/test_simhw.dir/simhw/test_machine.cpp.o.d"
  "/root/repo/tests/simhw/test_machine_parse.cpp" "tests/CMakeFiles/test_simhw.dir/simhw/test_machine_parse.cpp.o" "gcc" "tests/CMakeFiles/test_simhw.dir/simhw/test_machine_parse.cpp.o.d"
  "/root/repo/tests/simhw/test_noise.cpp" "tests/CMakeFiles/test_simhw.dir/simhw/test_noise.cpp.o" "gcc" "tests/CMakeFiles/test_simhw.dir/simhw/test_noise.cpp.o.d"
  "/root/repo/tests/simhw/test_sim_backend.cpp" "tests/CMakeFiles/test_simhw.dir/simhw/test_sim_backend.cpp.o" "gcc" "tests/CMakeFiles/test_simhw.dir/simhw/test_sim_backend.cpp.o.d"
  "/root/repo/tests/simhw/test_triad_model.cpp" "tests/CMakeFiles/test_simhw.dir/simhw/test_triad_model.cpp.o" "gcc" "tests/CMakeFiles/test_simhw.dir/simhw/test_triad_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cli/CMakeFiles/rooftune_cli_lib.dir/DependInfo.cmake"
  "/root/repo/build/src/roofline/CMakeFiles/rooftune_roofline.dir/DependInfo.cmake"
  "/root/repo/build/src/simhw/CMakeFiles/rooftune_simhw.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/rooftune_core.dir/DependInfo.cmake"
  "/root/repo/build/src/stream/CMakeFiles/rooftune_stream.dir/DependInfo.cmake"
  "/root/repo/build/src/blas/CMakeFiles/rooftune_blas.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/rooftune_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/rooftune_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
