# Empty compiler generated dependencies file for test_simhw.
# This may be replaced when dependencies are built.
