// Ablation: what does the self-profiler cost when it is on?
//
// The profiler (util/profiler.hpp) is designed to be invisible: disabled,
// every hot-path call is one relaxed atomic load; enabled, a span is two
// steady-clock reads plus an append into a thread-owned ring.  This bench
// quantifies both claims on the profiler's busiest real workload — the
// racing strategy under the pipelined scheduler, where every task
// evaluation, steal, park, idle interval, and commit wait records — by
// running the identical tuning problem with profiling off and on and
// comparing host wall-clock.  Runs alternate and each mode keeps its best
// of `reps` to push scheduler noise below the effect size.
//
// Both runs must return bit-identical tuning results (the profiler sits
// entirely outside the evaluation path), and the on/off wall-clock delta
// must stay under 2% — the budget docs/observability.md advertises.

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <iostream>
#include <vector>

#include "bench/common.hpp"
#include "core/parallel_evaluator.hpp"
#include "core/spaces.hpp"
#include "core/techniques.hpp"
#include "simhw/sim_backend.hpp"
#include "util/json.hpp"
#include "util/profiler.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace {

using namespace rooftune;

struct ModeRun {
  std::string label;
  core::TuningRun run;
  double best_wall_s = 0.0;
  std::uint64_t records = 0;
  std::uint64_t dropped = 0;
};

core::TunerOptions tuner_options() {
  core::TunerOptions base;
  base.invocations = 3;
  base.iterations = 25;
  auto options = core::technique_options(core::Technique::Default, base);
  options.strategy = core::SearchStrategy::Racing;
  return options;
}

core::TuningRun run_once(const core::SearchSpace& space,
                         const simhw::MachineSpec& machine,
                         double cost_base_s, std::size_t workers,
                         double& wall_s) {
  simhw::SimOptions sim;
  sim.sockets_used = 1;
  sim.cost_skew = 1.0;  // uniform multiplier: enables the host-time cost
                        // model without making any configuration a straggler
  sim.cost_base_s = cost_base_s;
  const auto factory = [&machine, sim]() -> std::unique_ptr<core::Backend> {
    return std::make_unique<simhw::SimDgemmBackend>(machine, sim);
  };
  core::ParallelOptions parallel;
  parallel.workers = workers;
  parallel.deterministic = true;
  parallel.scheduler = core::SchedulerMode::Pipeline;
  parallel.lookahead = 4;

  core::ParallelEvaluator evaluator(factory, tuner_options(), parallel);
  const auto start = std::chrono::steady_clock::now();
  auto run = evaluator.run(space);
  const auto stop = std::chrono::steady_clock::now();
  wall_s = std::chrono::duration<double>(stop - start).count();
  return run;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rooftune;

  const int grid_scale = argc > 1 ? std::atoi(argv[1]) : 5;
  const std::size_t workers =
      argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : 4;
  const int reps = argc > 3 ? std::atoi(argv[3]) : 3;
  // Host cost per simulated invocation.  Real evaluations take hundreds of
  // microseconds to seconds; the budget is measured against that regime,
  // not against free tasks where the profiler's fixed ~60 ns/record cost
  // has nothing to amortize over.
  const double cost_base_s = argc > 4 ? std::atof(argv[4]) : 0.0002;

  const auto machine = simhw::machine_by_name("gold6148");
  const auto space = core::dgemm_scaled_space(grid_scale);

  std::cout << "Ablation: self-profiler overhead, racing strategy, "
            << "pipelined scheduler\n"
            << "grid scale " << grid_scale << " (" << space.cardinality()
            << " configs), " << workers << " workers, best of " << reps
            << " reps per mode\n\n";

  util::Profiler& profiler = util::Profiler::instance();
  ModeRun off{"profiler off", {}, 1e300, 0, 0};
  ModeRun on{"profiler on", {}, 1e300, 0, 0};
  for (int rep = 0; rep < reps; ++rep) {
    double wall = 0.0;
    off.run = run_once(space, machine, cost_base_s, workers, wall);
    off.best_wall_s = std::min(off.best_wall_s, wall);

    profiler.enable();
    on.run = run_once(space, machine, cost_base_s, workers, wall);
    const util::ProfileSnapshot snapshot = profiler.snapshot();
    profiler.disable();
    on.best_wall_s = std::min(on.best_wall_s, wall);
    on.records = snapshot.total_records();
    on.dropped = snapshot.total_dropped();
  }

  const double delta =
      (on.best_wall_s - off.best_wall_s) / off.best_wall_s;
  const bool identical =
      on.run.best_config() == off.run.best_config() &&
      on.run.best_value() == off.run.best_value() &&
      on.run.total_invocations == off.run.total_invocations;

  util::TextTable table;
  table.columns({"Mode", "Wall (best)", "Records", "Dropped", "F_S1",
                 "Best config"},
                {util::Align::Left});
  for (const ModeRun* mode : {&off, &on}) {
    table.add_row({mode->label, util::format("%.3fs", mode->best_wall_s),
                   std::to_string(mode->records),
                   std::to_string(mode->dropped),
                   util::format("%.2f", mode->run.best_value()),
                   mode->run.best_config().to_string()});
  }
  std::cout << table.render();
  std::cout << "\nprofiling overhead: " << util::format("%+.2f%%", delta * 100)
            << " wall-clock (" << on.records << " records)\n";

  bool failed = false;
  if (!identical) {
    failed = true;
    std::cerr << "FAIL: profiled run diverged (best "
              << on.run.best_config().to_string() << " @ "
              << on.run.best_value() << " vs "
              << off.run.best_config().to_string() << " @ "
              << off.run.best_value() << ")\n";
  }
  if (delta > 0.02) {
    failed = true;
    std::cerr << "FAIL: profiling overhead " << util::format("%.2f%%", delta * 100)
              << " exceeds the 2% budget\n";
  }

  util::JsonWriter json;
  json.begin_object();
  json.key("bench").value("ablation_profile_overhead");
  json.key("machine").value("gold6148");
  json.key("grid_scale").value(grid_scale);
  json.key("configs").value(space.cardinality());
  json.key("workers").value(workers);
  json.key("reps").value(reps);
  json.key("wall_seconds_off").value(off.best_wall_s);
  json.key("wall_seconds_on").value(on.best_wall_s);
  json.key("overhead_fraction").value(delta);
  json.key("budget_fraction").value(0.02);
  json.key("profile_records").value(on.records);
  json.key("profile_dropped").value(on.dropped);
  json.key("identical_results").value(identical);
  json.key("pass").value(!failed);
  json.end_object();
  bench::write_artifact("BENCH_profile_overhead.json", json.str() + "\n");

  return failed ? 1 : 0;
}
