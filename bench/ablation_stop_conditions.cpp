// Ablation: the design choices DESIGN.md calls out, measured.
//
//  1. Minimum-count guard sweep for stop condition 4 (the 2695 v4 fix):
//     accuracy-vs-time tradeoff across min-count values.
//  2. Search-order sweep (forward / reverse / random) under pruning.
//  3. Future-work stop conditions (§VII): trend-aware pruning guard and the
//     Student-t interval option, compared against the paper's defaults.

#include <iostream>
#include <sstream>

#include "bench/common.hpp"
#include "core/spaces.hpp"
#include "simhw/sim_backend.hpp"
#include "util/csv.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace {

using namespace rooftune;

core::TuningRun run_custom(const simhw::MachineSpec& machine, int sockets,
                           const core::TunerOptions& options) {
  simhw::SimOptions sim;
  sim.sockets_used = sockets;
  simhw::SimDgemmBackend backend(machine, sim);
  return core::Autotuner(core::dgemm_reduced_space(), options).run(backend);
}

}  // namespace

int main() {
  using namespace rooftune;

  std::ostringstream csv_text;
  util::CsvWriter csv(csv_text);
  csv.header({"experiment", "machine", "setting", "best_gflops", "error_vs_default",
              "time_seconds"});

  // ---- 1. min-count sweep on the pathological machine ----------------------
  {
    const auto machine = simhw::machine_by_name("2695v4");
    const double reference =
        bench::run_dgemm_technique(machine, 1, core::Technique::Default)
            .best_value();

    util::TextTable table;
    table.columns({"min-count", "F_S1", "error vs Default", "Time"},
                  {util::Align::Left});
    std::cout << "Ablation 1: minimum prune count on 2695v4 (Default finds "
              << util::format("%.2f", reference) << " GFLOP/s)\n";
    for (const std::uint64_t mc : {2ull, 5ull, 10ull, 25ull, 50ull, 100ull, 150ull}) {
      const auto run =
          bench::run_dgemm_technique(machine, 1, core::Technique::CIOuter, mc);
      const double err = (run.best_value() - reference) / reference;
      table.add_row({std::to_string(mc), util::format("%.2f", run.best_value()),
                     util::format("%+.2f%%", 100.0 * err),
                     util::format("%.2fs", run.total_time.value)});
      csv.cell(std::string("min_count")).cell(std::string("2695v4"));
      csv.cell(mc).cell(run.best_value()).cell(err).cell(run.total_time.value);
      csv.end_row();
    }
    std::cout << table.render() << '\n';
  }

  // ---- 2. search-order sweep under pruning ---------------------------------
  {
    util::TextTable table;
    table.columns({"Machine", "Order", "F_S1", "Time"}, {util::Align::Left});
    std::cout << "Ablation 2: search order under C+I+Outer pruning\n";
    for (const char* name : {"2650v4", "gold6148"}) {
      const auto machine = simhw::machine_by_name(name);
      for (const auto order : {core::SearchOrder::Forward, core::SearchOrder::Reverse,
                               core::SearchOrder::Random}) {
        auto options = core::technique_options(core::Technique::CIOuter);
        options.order = order;
        const auto run = run_custom(machine, 1, options);
        table.add_row({name, core::to_string(order),
                       util::format("%.2f", run.best_value()),
                       util::format("%.2fs", run.total_time.value)});
        csv.cell(std::string("order")).cell(std::string(name));
        csv.cell(std::string(core::to_string(order)));
        csv.cell(run.best_value()).cell(0.0).cell(run.total_time.value);
        csv.end_row();
      }
    }
    std::cout << table.render() << '\n';
  }

  // ---- 3. future-work variants (§VII) ---------------------------------------
  {
    const auto machine = simhw::machine_by_name("2695v4");
    const double reference =
        bench::run_dgemm_technique(machine, 1, core::Technique::Default)
            .best_value();

    util::TextTable table;
    table.columns({"Variant", "F_S1", "error vs Default", "Time"},
                  {util::Align::Left});
    std::cout << "Ablation 3: future-work stop-condition variants on 2695v4 S1\n";

    const auto report = [&](const char* label, const core::TuningRun& run) {
      const double err = (run.best_value() - reference) / reference;
      table.add_row({label, util::format("%.2f", run.best_value()),
                     util::format("%+.2f%%", 100.0 * err),
                     util::format("%.2fs", run.total_time.value)});
      csv.cell(std::string("variant")).cell(std::string("2695v4"));
      csv.cell(std::string(label)).cell(run.best_value()).cell(err).cell(
          run.total_time.value);
      csv.end_row();
    };

    report("C+I+O min=2 (paper default)",
           bench::run_dgemm_technique(machine, 1, core::Technique::CIOuter, 2));
    report("C+I+O min=100 (paper fix)",
           bench::run_dgemm_technique(machine, 1, core::Technique::CIOuter, 100));

    auto trended = core::technique_options(core::Technique::CIOuter, {}, 0, 2);
    trended.trend_guard = true;
    report("C+I+O min=2 + trend guard", run_custom(machine, 1, trended));

    auto student = core::technique_options(core::Technique::CIOuter, {}, 0, 2);
    student.interval_method = stats::IntervalMethod::StudentT;
    report("C+I+O min=2, Student-t CI", run_custom(machine, 1, student));

    auto both = core::technique_options(core::Technique::CIOuter, {}, 0, 2);
    both.trend_guard = true;
    both.interval_method = stats::IntervalMethod::StudentT;
    report("C+I+O min=2, trend + t", run_custom(machine, 1, both));

    std::cout << table.render();
    std::cout << "\nreading: the trend guard recovers most of the accuracy the\n"
                 "min-count=100 fix provides, at a fraction of its cost — the\n"
                 "paper's §VII hypothesis, quantified.\n";
  }

  bench::write_artifact("ablation_stop_conditions.csv", csv_text.str());
  return 0;
}
