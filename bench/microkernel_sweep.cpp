// Micro-kernel variant sweep: times every compiled-and-supported DGEMM
// micro-kernel (scalar / avx2 / avx512) over the paper's 96-configuration
// reduced space and writes a CSV suitable for before/after comparisons in
// docs/performance.md and EXPERIMENTS.md.
//
// The full space at full sizes is expensive on one core, so by default the
// sweep caps each dimension (--max-dim, default 1024) and runs one timed
// repetition after a warm-up call (--reps).  Pass --full for the untruncated
// space when you have the time budget.
//
//   ./bench/microkernel_sweep [--reps R] [--max-dim D] [--full]

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "blas/blas.hpp"
#include "blas/matrix.hpp"
#include "blas/microkernel.hpp"
#include "core/spaces.hpp"
#include "util/clock.hpp"
#include "util/csv.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace {

struct Args {
  int reps = 1;
  std::int64_t max_dim = 1024;
};

Args parse_args(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--reps" && i + 1 < argc) {
      args.reps = std::max(1, std::atoi(argv[++i]));
    } else if (arg == "--max-dim" && i + 1 < argc) {
      args.max_dim = std::max<std::int64_t>(1, std::atoll(argv[++i]));
    } else if (arg == "--full") {
      args.max_dim = std::numeric_limits<std::int64_t>::max();
    } else {
      std::cerr << "usage: microkernel_sweep [--reps R] [--max-dim D] [--full]\n";
      std::exit(2);
    }
  }
  return args;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rooftune;
  const Args args = parse_args(argc, argv);

  const auto configs = core::dgemm_reduced_space().enumerate();
  const util::WallClock clock;

  std::ostringstream csv_text;
  util::CsvWriter csv(csv_text);
  csv.header({"kernel", "mr", "nr", "n", "m", "k", "seconds", "gflops"});

  util::TextTable table;
  table.columns({"Kernel", "Tile", "Configs", "Min GF/s", "Median GF/s",
                 "Max GF/s"},
                {util::Align::Left});

  for (const blas::detail::KernelPlan* plan :
       blas::detail::supported_kernel_plans()) {
    blas::detail::force_kernel_plan(plan);
    std::vector<double> rates;

    for (const auto& config : configs) {
      const std::int64_t n = std::min(config.at("n"), args.max_dim);
      const std::int64_t m = std::min(config.at("m"), args.max_dim);
      const std::int64_t k = std::min(config.at("k"), args.max_dim);

      blas::Matrix a(m, k), b(k, n), c(m, n);
      a.fill_random(1);
      b.fill_random(2);
      c.fill(0.0);
      const auto run_once = [&] {
        blas::dgemm(blas::Layout::RowMajor, blas::Trans::NoTrans,
                    blas::Trans::NoTrans, m, n, k, 1.0, a.data(), a.ld(),
                    b.data(), b.ld(), 0.0, c.data(), c.ld(),
                    blas::DgemmVariant::Packed);
      };
      run_once();  // warm-up: populates packing caches, faults pages

      double best_seconds = std::numeric_limits<double>::infinity();
      for (int rep = 0; rep < args.reps; ++rep) {
        const util::Stopwatch watch(clock);
        run_once();
        best_seconds = std::min(best_seconds, watch.elapsed().value);
      }
      const double gflops =
          blas::dgemm_flops(m, n, k).value / best_seconds / 1e9;
      rates.push_back(gflops);

      csv.cell(std::string(plan->name))
          .cell(static_cast<long long>(plan->mr))
          .cell(static_cast<long long>(plan->nr))
          .cell(static_cast<long long>(n))
          .cell(static_cast<long long>(m))
          .cell(static_cast<long long>(k))
          .cell(best_seconds)
          .cell(gflops);
      csv.end_row();
    }

    std::sort(rates.begin(), rates.end());
    table.add_row({plan->name,
                   util::format("%lldx%lld", static_cast<long long>(plan->mr),
                                static_cast<long long>(plan->nr)),
                   std::to_string(rates.size()),
                   util::format("%.2f", rates.front()),
                   util::format("%.2f", rates[rates.size() / 2]),
                   util::format("%.2f", rates.back())});
  }
  blas::detail::force_kernel_plan(nullptr);

  std::cout << table.render() << "\n";
  bench::write_artifact("microkernel_sweep.csv", csv_text.str());
  return 0;
}
