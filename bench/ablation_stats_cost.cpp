// Ablation (google-benchmark): the statistical machinery's cost.
//
// The paper justifies two design choices on cost grounds:
//  * Welford's online algorithm instead of storing samples (§III-C.3), and
//  * normal-theory confidence intervals instead of bootstrapping, which
//    "will require reiterating and resampling all of the results for each
//    iteration" and "was therefore deemed too computationally expensive"
//    (§III-C.3).
// This bench measures both claims, plus the price of exact Student-t
// critical values over normal ones.

#include <benchmark/benchmark.h>

#include <vector>

#include "stats/bootstrap.hpp"
#include "stats/confidence.hpp"
#include "stats/normal.hpp"
#include "stats/student_t.hpp"
#include "stats/welford.hpp"
#include "util/rng.hpp"

namespace {

using namespace rooftune;

std::vector<double> samples(std::size_t n) {
  util::Xoshiro256 rng(42);
  std::vector<double> xs(n);
  for (auto& x : xs) x = rng.lognormal(0.0, 0.3);
  return xs;
}

// Welford update: the cost of maintaining mean/variance per iteration.
void BM_WelfordAdd(benchmark::State& state) {
  const auto xs = samples(4096);
  std::size_t i = 0;
  stats::OnlineMoments m;
  for (auto _ : state) {
    m.add(xs[i++ & 4095]);
    benchmark::DoNotOptimize(m);
  }
}
BENCHMARK(BM_WelfordAdd);

// The storing alternative: append + full two-pass recompute each iteration.
void BM_TwoPassRecompute(benchmark::State& state) {
  const auto xs = samples(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    std::vector<double> stored;
    stored.reserve(xs.size());
    double final_var = 0.0;
    for (double x : xs) {
      stored.push_back(x);
      double sum = 0.0;
      for (double v : stored) sum += v;
      const double mean = sum / static_cast<double>(stored.size());
      double c = 0.0;
      for (double v : stored) c += (v - mean) * (v - mean);
      final_var = stored.size() > 1 ? c / static_cast<double>(stored.size() - 1) : 0.0;
    }
    benchmark::DoNotOptimize(final_var);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_TwoPassRecompute)->RangeMultiplier(4)->Range(16, 1024)->Complexity();

// Online CI check per iteration (what stop conditions 3 and 4 pay).
void BM_NormalCiCheck(benchmark::State& state) {
  const auto xs = samples(256);
  stats::OnlineMoments m;
  for (double x : xs) m.add(x);
  for (auto _ : state) {
    benchmark::DoNotOptimize(stats::mean_confidence_interval(m, 0.99));
  }
}
BENCHMARK(BM_NormalCiCheck);

void BM_StudentTCiCheck(benchmark::State& state) {
  const auto xs = samples(256);
  stats::OnlineMoments m;
  for (double x : xs) m.add(x);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        stats::mean_confidence_interval(m, 0.99, stats::IntervalMethod::StudentT));
  }
}
BENCHMARK(BM_StudentTCiCheck);

// The rejected alternative: a bootstrap CI recomputed per iteration.
void BM_BootstrapCiCheck(benchmark::State& state) {
  const auto xs = samples(static_cast<std::size_t>(state.range(0)));
  stats::BootstrapOptions options;
  options.resamples = 1000;
  for (auto _ : state) {
    benchmark::DoNotOptimize(stats::bootstrap_mean_interval(xs, options));
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_BootstrapCiCheck)->RangeMultiplier(4)->Range(16, 1024)->Complexity();

void BM_NormalQuantile(benchmark::State& state) {
  double p = 0.5;
  for (auto _ : state) {
    p = 0.5 + 0.49 * (p == 0.5 ? 1.0 : -1.0) * 0.5;
    benchmark::DoNotOptimize(stats::normal_quantile(p));
  }
}
BENCHMARK(BM_NormalQuantile);

void BM_StudentTQuantile(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(stats::student_t_quantile(0.995, 9.0));
  }
}
BENCHMARK(BM_StudentTQuantile);

}  // namespace

BENCHMARK_MAIN();
