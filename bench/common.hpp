#pragma once
// Shared plumbing for the paper-table benches: the published reference
// numbers (so every bench prints paper-vs-measured side by side), and the
// standard way to run a technique on a simulated machine.

#include <cstdint>
#include <string>
#include <vector>

#include "core/autotuner.hpp"
#include "core/techniques.hpp"
#include "simhw/machine.hpp"

namespace rooftune::bench {

/// Paper Table IV/V: peak DGEMM performance and optimal dimensions.
struct PaperDgemmRow {
  const char* machine;
  int sockets;
  double gflops;        // Table IV
  double utilization;   // Table IV (fraction)
  std::int64_t n, m, k; // Table V
};

const std::vector<PaperDgemmRow>& paper_table45();

/// Paper Table VI: TRIAD bandwidth (DRAM has a utilization; L3 does not).
struct PaperTriadRow {
  const char* machine;
  int sockets;
  double dram_gbps;
  double dram_utilization;  // fraction; >1 reproduces the paper's >100 %
  double l3_gbps;
};

const std::vector<PaperTriadRow>& paper_table6();

/// Paper Tables VIII-XI: technique comparison rows per machine.
struct PaperTechniqueRow {
  const char* technique;  // paper row label
  double f_s1;
  double f_s2;
  double time_seconds;
  double speedup;
};

/// Rows for one machine (empty if the paper has no table for it).
/// `min_count_100` selects the 2695 v4 second block.
const std::vector<PaperTechniqueRow>& paper_technique_table(
    const std::string& machine, bool min_count_100 = false);

/// Paper Table VII: hand-tuned iteration counts.
struct PaperHandTuneRow {
  const char* machine;
  std::uint64_t iter_time;      // Iter_T
  std::uint64_t iter_accuracy;  // Iter_A
};

const std::vector<PaperHandTuneRow>& paper_table7();

/// Run one technique over the paper's reduced DGEMM space on a simulated
/// machine.  The shared seed keeps all benches mutually consistent.
core::TuningRun run_dgemm_technique(const simhw::MachineSpec& machine, int sockets,
                                    core::Technique technique,
                                    std::uint64_t min_count = 2,
                                    std::uint64_t hand_tuned_iterations = 0,
                                    std::uint64_t seed = 2021);

/// "+1.2%" style relative-difference formatting for paper-vs-measured cells.
std::string relative_diff(double measured, double paper);

/// Write `content` to bench_out/<name> (directory created on demand) and
/// print a one-line note.
void write_artifact(const std::string& name, const std::string& content);

}  // namespace rooftune::bench
