// §VII future work, implemented: "benchmarking more hardware such as L2 and
// L1 cache could be useful."  With inner-cache modelling enabled in the
// simulator, the tool autotunes a full L1 / L2 / L3 / DRAM bandwidth
// hierarchy per machine — each level measured over working sets confined to
// its capacity window so outer levels cannot pollute it — and emits the
// resulting multi-roof roofline.
//
// No published figures exist for L1/L2 bandwidth on the paper's systems;
// the simulated inner-cache peaks are synthetic ratios of the calibrated
// L3 values (DESIGN.md documents the substitution).  What this bench
// demonstrates is the *methodology*: the same stop conditions and pruning
// machinery extend to deeper hierarchies unchanged.

#include <iostream>
#include <sstream>

#include "bench/common.hpp"
#include "core/spaces.hpp"
#include "roofline/builder.hpp"
#include "roofline/plot.hpp"
#include "util/csv.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main() {
  using namespace rooftune;

  std::ostringstream csv_text;
  util::CsvWriter csv(csv_text);
  csv.header({"machine", "level", "gbps", "best_N", "working_set_bytes",
              "tuning_time_seconds"});

  roofline::BuilderOptions options;
  options.prune_min_count = 10;

  for (const char* name : {"2650v4", "gold6148"}) {
    const auto machine = simhw::machine_by_name(name);

    util::TextTable table;
    table.columns({"Level", "Bandwidth", "Best N", "Working set", "Tuning time"},
                  {util::Align::Left});

    simhw::SimOptions sim;
    sim.sockets_used = 1;
    sim.model_inner_caches = true;
    simhw::SimTriadBackend backend(machine, sim);

    const auto hierarchy =
        roofline::measure_cache_hierarchy(backend, machine, 1, options);
    for (const auto& level : hierarchy) {
      const auto ws = core::triad_working_set(level.best_config);
      table.add_row({level.name, util::format("%.2f GB/s", level.value.value),
                     std::to_string(level.best_config.at("N")),
                     util::format_bytes(ws),
                     util::format_seconds(level.tuning_time)});
      csv.cell(std::string(name)).cell(level.name).cell(level.value.value);
      csv.cell(static_cast<long long>(level.best_config.at("N")));
      csv.cell(static_cast<unsigned long long>(ws.value));
      csv.cell(level.tuning_time.value);
      csv.end_row();
    }
    std::cout << "Inner-cache hierarchy on " << name << " (1 socket, simulated)\n"
              << table.render();

    // A roofline with all four memory roofs for one compute ceiling.
    simhw::SimOptions dsim;
    dsim.sockets_used = 1;
    simhw::SimDgemmBackend dgemm(machine, dsim);
    roofline::RooflineModel model;
    model.machine_name = std::string(name) + " (4-level)";
    model.add_compute(roofline::measure_dgemm_ceiling(
        dgemm, "DGEMM 1 socket", machine.theoretical_flops(1), options));
    for (const auto& level : hierarchy) model.add_memory(level);
    std::cout << roofline::render_ascii(model, 72, 18) << '\n';
    bench::write_artifact("futurework_inner_caches_" + std::string(name) + ".svg",
                          roofline::render_svg(model));
  }

  std::cout << "shape check: B_L1 > B_L2 > B_L3 > B_DRAM, each level's best\n"
               "working set inside its capacity window — the methodology\n"
               "scales to deeper hierarchies with no new machinery.\n";
  bench::write_artifact("futurework_inner_caches.csv", csv_text.str());
  return 0;
}
