// Tables VIII-XI: the headline experiment.  For each machine, run every
// evaluation technique over the full S1+S2 DGEMM tuning problem and report
// the found peaks, the total (simulated) search time and the speedup over
// the fixed-sample-size Default — side by side with the paper's numbers.
// Includes the 2695 v4 min-count=100 block (Table IX's second half).

#include <iostream>
#include <sstream>

#include "bench/common.hpp"
#include "core/handtune.hpp"
#include "core/spaces.hpp"
#include "simhw/sim_backend.hpp"
#include "util/csv.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace {

using namespace rooftune;

struct MeasuredRow {
  std::string technique;
  double f_s1 = 0.0, f_s2 = 0.0, time = 0.0, speedup = 0.0;
};

MeasuredRow run_row(const simhw::MachineSpec& machine, core::Technique technique,
                    std::uint64_t min_count, std::uint64_t hand_iters,
                    double default_time) {
  MeasuredRow row;
  row.technique = core::technique_name(technique);
  const auto s1 =
      bench::run_dgemm_technique(machine, 1, technique, min_count, hand_iters);
  const auto s2 =
      bench::run_dgemm_technique(machine, 2, technique, min_count, hand_iters);
  row.f_s1 = s1.best_value();
  row.f_s2 = s2.best_value();
  row.time = s1.total_time.value + s2.total_time.value;
  row.speedup = default_time > 0.0 ? default_time / row.time : 1.0;
  return row;
}

void print_block(util::TextTable& table, const MeasuredRow& row,
                 const bench::PaperTechniqueRow* paper) {
  table.add_row({row.technique, util::format("%.2f", row.f_s1),
                 util::format("%.2f", row.f_s2), util::format("%.2fs", row.time),
                 util::format("%.2fx", row.speedup),
                 paper ? util::format("%.2f", paper->f_s1) : "-",
                 paper ? util::format("%.2f", paper->f_s2) : "-",
                 paper ? util::format("%.2fs", paper->time_seconds) : "-",
                 paper ? util::format("%.2fx", paper->speedup) : "-"});
}

const bench::PaperTechniqueRow* find_paper(const std::string& machine,
                                           const std::string& technique,
                                           bool min100) {
  for (const auto& row : bench::paper_technique_table(machine, min100)) {
    if (technique == row.technique) return &row;
  }
  return nullptr;
}

}  // namespace

int main() {
  using namespace rooftune;

  std::ostringstream csv_text;
  util::CsvWriter csv(csv_text);
  csv.header({"machine", "technique", "min_count", "f_s1", "f_s2", "time_seconds",
              "speedup", "paper_f_s1", "paper_f_s2", "paper_time", "paper_speedup"});

  const auto csv_row = [&](const std::string& machine, const MeasuredRow& row,
                           std::uint64_t min_count,
                           const bench::PaperTechniqueRow* paper) {
    csv.cell(machine).cell(row.technique).cell(min_count);
    csv.cell(row.f_s1).cell(row.f_s2).cell(row.time).cell(row.speedup);
    if (paper) {
      csv.cell(paper->f_s1).cell(paper->f_s2).cell(paper->time_seconds).cell(
          paper->speedup);
    } else {
      csv.cell(std::string("-")).cell(std::string("-")).cell(std::string("-")).cell(
          std::string("-"));
    }
    csv.end_row();
  };

  for (const char* name : {"2650v4", "2695v4", "gold6132", "gold6148"}) {
    const auto machine = simhw::machine_by_name(name);

    util::TextTable table;
    table.columns({"Technique", "F_S1", "F_S2", "Time", "Speedup", "paper F_S1",
                   "paper F_S2", "paper Time", "paper Spd"},
                  {util::Align::Left});

    // Default first (defines the speedup baseline).
    const auto def = run_row(machine, core::Technique::Default, 2, 0, 0.0);
    const double default_time = def.time;
    MeasuredRow def_row = def;
    def_row.speedup = 1.0;
    print_block(table, def_row, find_paper(name, "Default", false));
    csv_row(name, def_row, 2, find_paper(name, "Default", false));

    // Hand-tuned rows: derive the counts the way §VI-C describes.
    {
      const auto optimized =
          bench::run_dgemm_technique(machine, 1, core::Technique::CIOuter, 2);
      simhw::SimOptions sim;
      sim.sockets_used = 1;
      simhw::SimDgemmBackend backend(machine, sim);
      core::TunerOptions base;
      const auto time_count =
          core::hand_tune_time(backend, core::dgemm_reduced_space(), base,
                               optimized.total_time)
              .iterations;
      const auto ref =
          bench::run_dgemm_technique(machine, 1, core::Technique::Default);
      const auto acc_count =
          core::hand_tune_accuracy(backend, core::dgemm_reduced_space(), base,
                                   ref.best_value(), 0.005)
              .iterations;

      auto ht = run_row(machine, core::Technique::HandTunedTime, 2, time_count,
                        default_time);
      print_block(table, ht, find_paper(name, "Hand-tuned Time", false));
      csv_row(name, ht, 2, find_paper(name, "Hand-tuned Time", false));

      auto ha = run_row(machine, core::Technique::HandTunedAccuracy, 2, acc_count,
                        default_time);
      print_block(table, ha, find_paper(name, "Hand-tuned Accuracy", false));
      csv_row(name, ha, 2, find_paper(name, "Hand-tuned Accuracy", false));
    }

    for (const auto technique :
         {core::Technique::Single, core::Technique::Confidence,
          core::Technique::CInner, core::Technique::CInnerReverse,
          core::Technique::CIOuter, core::Technique::CIOuterReverse}) {
      const auto row = run_row(machine, technique, 2, 0, default_time);
      print_block(table, row, find_paper(name, row.technique, false));
      csv_row(name, row, 2, find_paper(name, row.technique, false));
    }

    // Table IX second block: the 2695 v4 minimum count = 100 fix.
    if (std::string(name) == "2695v4") {
      table.add_separator();
      for (const auto technique :
           {core::Technique::CInner, core::Technique::CInnerReverse,
            core::Technique::CIOuter, core::Technique::CIOuterReverse}) {
        const auto row = run_row(machine, technique, 100, 0, default_time);
        print_block(table, row,
                    find_paper(name, core::technique_name(technique), true));
        csv_row(name, row, 100,
                find_paper(name, core::technique_name(technique), true));
      }
    }

    std::cout << "Table " << (std::string(name) == "2650v4"   ? "VIII"
                              : std::string(name) == "2695v4" ? "IX"
                              : std::string(name) == "gold6132"
                                  ? "X"
                                  : "XI")
              << ": evaluation optimizations on " << name << " (simulated)\n"
              << table.render() << '\n';
  }

  bench::write_artifact("table08_11_optimizations.csv", csv_text.str());
  return 0;
}
