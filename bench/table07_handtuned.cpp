// Table VII: the hand-tuned iteration counts.  §VI-C describes the
// procedure: "Hand-tuned Time" uses one invocation with the inner iteration
// count tuned to match the runtime of the most-optimized technique
// (C+I+Outer); "Hand-tuned Accuracy" tunes the count upward until accuracy
// is comparable.  core::handtune automates exactly that derivation.

#include <iostream>
#include <sstream>

#include "bench/common.hpp"
#include "core/handtune.hpp"
#include "core/spaces.hpp"
#include "simhw/sim_backend.hpp"
#include "util/csv.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main() {
  using namespace rooftune;

  util::TextTable table;
  table.columns({"System", "Iter_T", "Iter_A", "paper Iter_T", "paper Iter_A"},
                {util::Align::Left});

  std::ostringstream csv_text;
  util::CsvWriter csv(csv_text);
  csv.header({"machine", "iter_time", "iter_accuracy", "paper_iter_time",
              "paper_iter_accuracy"});

  for (const auto& ref : bench::paper_table7()) {
    const auto machine = simhw::machine_by_name(ref.machine);

    // Targets derived from the single-socket runs (the derivation per
    // §VI-C: match C+I+Outer's runtime / the Default's accuracy).  The time
    // target uses the default min-count=2 run — the paper's Table VII
    // Iter_T values correspond to the Tables VIII-XI C+I+Outer times.
    const auto optimized = bench::run_dgemm_technique(
        machine, 1, core::Technique::CIOuter, 2);
    const auto reference =
        bench::run_dgemm_technique(machine, 1, core::Technique::Default);

    simhw::SimOptions sim;
    sim.sockets_used = 1;
    simhw::SimDgemmBackend backend(machine, sim);
    core::TunerOptions base;

    const auto by_time = core::hand_tune_time(backend, core::dgemm_reduced_space(),
                                              base, optimized.total_time);
    const auto by_accuracy = core::hand_tune_accuracy(
        backend, core::dgemm_reduced_space(), base, reference.best_value(), 0.005);

    table.add_row({machine.name, std::to_string(by_time.iterations),
                   std::to_string(by_accuracy.iterations),
                   std::to_string(ref.iter_time), std::to_string(ref.iter_accuracy)});
    csv.cell(std::string(machine.name))
        .cell(by_time.iterations)
        .cell(by_accuracy.iterations)
        .cell(ref.iter_time)
        .cell(ref.iter_accuracy);
    csv.end_row();
  }

  std::cout << "Table VII: derived hand-tuned iteration counts vs. paper\n"
            << table.render();
  std::cout << "(counts depend on the noise realization; the paper's values\n"
               " were themselves picked by hand — order of magnitude and the\n"
               " Iter_T << Iter_A ordering are the reproducible shape)\n";
  bench::write_artifact("table07_handtuned.csv", csv_text.str());
  return 0;
}
