// Ablation: search strategy (§IV-C).  The paper argues that "for autotuning
// problems with low cardinality and low sample cost... simple search
// techniques like random search or exhaustive search are often ideal" and
// that metaheuristics are unnecessary.  We measure that claim: exhaustive
// search (with and without pruning), random search at several budgets, and
// coordinate descent, on every machine.

#include <iostream>
#include <sstream>

#include "bench/common.hpp"
#include "core/spaces.hpp"
#include "simhw/sim_backend.hpp"
#include "util/csv.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace {

using namespace rooftune;

struct Row {
  std::string strategy;
  double best = 0.0;
  double time = 0.0;
  std::size_t evaluated = 0;
};

Row run_strategy(const simhw::MachineSpec& machine, const std::string& strategy,
                 std::size_t budget = 0) {
  simhw::SimOptions sim;
  sim.sockets_used = 1;
  simhw::SimDgemmBackend backend(machine, sim);
  // All strategies use the paper's best evaluation technique so the
  // comparison isolates the search policy.
  auto options = core::technique_options(core::Technique::CIOuter, {}, 0,
                                         machine.name == "2695v4" ? 100 : 2);
  const core::Autotuner tuner(core::dgemm_reduced_space(), options);

  core::TuningRun run;
  if (strategy == "exhaustive") {
    run = tuner.run(backend);
  } else if (strategy == "random") {
    run = tuner.run_random(backend, budget);
  } else {
    run = tuner.run_coordinate_descent(backend);
  }
  Row row;
  row.strategy = strategy + (budget ? "(" + std::to_string(budget) + ")" : "");
  row.best = run.best_index ? run.best_value() : 0.0;
  row.time = run.total_time.value;
  row.evaluated = run.results.size();
  return row;
}

}  // namespace

int main() {
  using namespace rooftune;

  std::ostringstream csv_text;
  util::CsvWriter csv(csv_text);
  csv.header({"machine", "strategy", "best_gflops", "pct_of_exhaustive",
              "time_seconds", "configs_evaluated"});

  for (const char* name : {"2650v4", "2695v4", "gold6132", "gold6148"}) {
    const auto machine = simhw::machine_by_name(name);

    util::TextTable table;
    table.columns({"Strategy", "Best", "% of exhaustive", "Time", "Configs"},
                  {util::Align::Left});

    const Row exhaustive = run_strategy(machine, "exhaustive");
    std::vector<Row> rows{exhaustive,
                          run_strategy(machine, "random", 16),
                          run_strategy(machine, "random", 32),
                          run_strategy(machine, "random", 64),
                          run_strategy(machine, "coordinate-descent")};
    for (const auto& row : rows) {
      const double pct = 100.0 * row.best / exhaustive.best;
      table.add_row({row.strategy, util::format("%.2f", row.best),
                     util::format("%.2f%%", pct), util::format("%.2fs", row.time),
                     std::to_string(row.evaluated)});
      csv.cell(std::string(name)).cell(row.strategy).cell(row.best);
      csv.cell(pct / 100.0).cell(row.time).cell(row.evaluated);
      csv.end_row();
    }
    std::cout << "Search strategies on " << name << " (S1, C+I+Outer evaluation)\n"
              << table.render() << '\n';
  }

  std::cout << "reading (SS IV-C): pruned exhaustive search already evaluates\n"
               "most losers in a handful of iterations, so smarter search\n"
               "policies buy little on a 96-point space — the paper's claim.\n";
  bench::write_artifact("ablation_search_strategies.csv", csv_text.str());
  return 0;
}
