// Ablation: counter-prune margin sweep on the enlarged DGEMM grid.
//
// The counter-prune policy (core/bottleneck.hpp, --counter-prune) abandons
// configurations whose roofline bound — derived from their hardware-counter
// signature, or from the calibrated analytic prediction before the first
// invocation — cannot reach the incumbent once inflated by the safety
// margin.  The margin is the whole risk dial: large margins fire rarely
// and save little, small margins approach the model's exact bound, and
// *negative* margins are deliberately unsound — they prune configurations
// whose bound exceeds the incumbent.  This bench sweeps the margin from
// conservative down through the unsound regime on the ~116x enlarged grid
// (dgemm_scaled_space(6), 11191 configs) under racing with the simulated
// counter model, reporting for each setting whether the exhaustive optimum
// survives and, when it does not, the exhaustive rank of the configuration
// the search returned instead — the quantified false-prune failure mode
// (docs/search-strategies.md).

#include <algorithm>
#include <cstdint>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench/common.hpp"
#include "core/autotuner.hpp"
#include "core/spaces.hpp"
#include "core/stop_condition.hpp"
#include "core/techniques.hpp"
#include "simhw/machine.hpp"
#include "simhw/sim_backend.hpp"
#include "util/csv.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace {

using namespace rooftune;

constexpr int kGridScale = 6;

/// CLI-default schedule in reverse order — the pinned CI-gate scenario
/// (large working sets first, so the incumbent is established while the
/// spilled shapes are still arriving).
core::TunerOptions cli_defaults() {
  core::TunerOptions base;
  base.invocations = 10;
  base.iterations = 200;
  base.timeout = util::Seconds{10.0};
  auto options = core::technique_options(core::Technique::CIOuter, base, 0, 2);
  options.random_seed = 2021;
  options.racing_min_invocations = 3;
  options.order = core::SearchOrder::Reverse;
  return options;
}

core::TuningRun run_on(const simhw::MachineSpec& machine,
                       const core::SearchSpace& space,
                       const core::TunerOptions& options) {
  simhw::SimOptions sim;
  sim.grid_scale = kGridScale;
  sim.counter_model = true;
  simhw::SimDgemmBackend backend(machine, sim);
  return core::Autotuner(space, options).run(backend);
}

/// 1-based rank of `config` when the exhaustive run's results are sorted
/// by value, best first (rank 1 = the true optimum).  0 when absent.
std::size_t exhaustive_rank(const core::TuningRun& exhaustive,
                            const core::Configuration& config) {
  std::vector<const core::ConfigResult*> sorted;
  sorted.reserve(exhaustive.results.size());
  for (const auto& r : exhaustive.results) sorted.push_back(&r);
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const core::ConfigResult* a, const core::ConfigResult* b) {
                     return a->value() > b->value();
                   });
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    if (sorted[i]->config == config) return i + 1;
  }
  return 0;
}

}  // namespace

int main() {
  using namespace rooftune;

  std::ostringstream csv_text;
  util::CsvWriter csv(csv_text);
  csv.header({"machine", "margin", "best_gflops", "best_config",
              "found_exhaustive_optimum", "returned_rank", "invocations",
              "savings_factor", "counter_pruned", "skipped_uninvoked"});

  const auto space = core::dgemm_scaled_space(kGridScale);
  std::cout << "Ablation: counter-prune margin, " << space.cardinality()
            << "-config DGEMM grid (scale " << kGridScale
            << "), racing, reverse order, simulated counters\n";

  for (const char* name : {"gold6148", "gold6132"}) {
    const auto machine = simhw::machine_by_name(name);

    const auto exhaustive = run_on(machine, space, cli_defaults());

    auto racing_options = cli_defaults();
    racing_options.strategy = core::SearchStrategy::Racing;
    const auto racing = run_on(machine, space, racing_options);

    util::TextTable table;
    table.columns({"Margin", "F_S1", "Best config", "Hit", "Rank",
                   "Invocations", "Savings", "Pruned", "Skipped"},
                  {util::Align::Left});

    const auto report = [&](const std::string& label, double margin,
                            const core::TuningRun& run) {
      const bool hit = run.best_config() == exhaustive.best_config();
      const std::size_t rank = exhaustive_rank(exhaustive, run.best_config());
      const double savings = static_cast<double>(racing.total_invocations) /
                             static_cast<double>(run.total_invocations);
      std::uint64_t pruned = 0;
      std::uint64_t skipped = 0;
      for (const auto& result : run.results) {
        if (result.outer_stop == core::StopReason::CounterBound) {
          ++pruned;
          if (result.invocations.empty()) ++skipped;
        }
      }
      table.add_row({label, util::format("%.2f", run.best_value()),
                     run.best_config().to_string(), hit ? "yes" : "NO",
                     std::to_string(rank),
                     std::to_string(run.total_invocations),
                     util::format("%.2fx", savings), std::to_string(pruned),
                     std::to_string(skipped)});
      csv.cell(std::string(name)).cell(margin);
      csv.cell(run.best_value()).cell(run.best_config().to_string());
      csv.cell(hit ? 1 : 0).cell(static_cast<std::uint64_t>(rank));
      csv.cell(run.total_invocations).cell(savings);
      csv.cell(pruned).cell(skipped);
      csv.end_row();
    };

    report("racing (baseline)", 99.0, racing);

    for (const double margin :
         {0.5, 0.25, 0.1, 0.05, 0.0, -0.25, -0.5, -0.75}) {
      auto options = cli_defaults();
      options.strategy = core::SearchStrategy::Racing;
      options.counter_prune = true;
      options.counter_prune_margin = margin;
      options.counter_peak_gflops = machine.theoretical_flops(1).value;
      options.counter_dram_gbps = machine.theoretical_bandwidth(1).value;
      report(util::format("%+.2f", margin), margin,
             run_on(machine, space, options));
    }

    std::cout << "\n" << name << " (1 socket)\n" << table.render();
  }

  std::cout << "\nreading: non-negative margins never lose the optimum — the\n"
               "bound is a true ceiling under the simulated counter model,\n"
               "so only configurations that provably cannot win are cut,\n"
               "and smaller margins just cut more of them earlier.  Negative\n"
               "margins break the proof: the policy starts pruning\n"
               "configurations whose ceiling clears the incumbent, and once\n"
               "the sweep reaches the margin that prunes the optimum itself\n"
               "the search returns a configuration of strictly worse\n"
               "exhaustive rank.  The Rank column is the cost of that false\n"
               "prune in places lost.\n";

  bench::write_artifact("ablation_counter_prune.csv", csv_text.str());
  return 0;
}
