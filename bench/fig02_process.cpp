// Fig. 2: the autotuning benchmarking process, including the inner
// iteration loop and outer invocation loop.  Generated from the *actual*
// TunerOptions of each paper technique (rather than a static picture), as
// an indented description plus Graphviz DOT (render with `dot -Tsvg`).

#include <iostream>

#include "bench/common.hpp"
#include "core/process_doc.hpp"
#include "core/techniques.hpp"

int main() {
  using namespace rooftune;

  std::string all_dot;
  for (const auto technique :
       {core::Technique::Default, core::Technique::Confidence,
        core::Technique::CIOuter}) {
    const auto options = core::technique_options(technique);
    std::cout << "=== " << core::technique_name(technique) << " ===\n"
              << core::describe_process(options) << '\n';
    if (technique == core::Technique::CIOuter) {
      all_dot = core::process_dot(options);
    }
  }

  bench::write_artifact("fig02_process_cio.dot", all_dot);
  std::cout << "DOT graph for C+I+Outer written (render: dot -Tsvg "
               "bench_out/fig02_process_cio.dot)\n";
  return 0;
}
