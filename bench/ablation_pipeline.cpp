// Ablation: wave barriers vs the persistent work-stealing pipeline.
//
// The deterministic parallel scheduler has two engines
// (core/parallel_evaluator.hpp): the legacy wave mode spawns and joins a
// thread team per epoch, so one straggler idles the whole pool at every
// barrier; the pipeline mode keeps a persistent work-stealing pool
// (core::EvalPool) and overlaps up to `lookahead` epochs, committing
// results strictly in logical order.  This bench builds a straggler-heavy
// scenario (SimOptions::cost_skew makes 1/8th of the configurations 8x
// slower in host time without touching the simulated samples), runs the
// racing strategy under wave, pipeline L=1, and pipeline L=8 with the same
// worker count, and compares host wall-clock and worker idle fraction.
//
// The technique is Default (no incumbent-dependent pruning), so racing's
// CI eliminations are a pure function of the samples: every mode must
// return the identical best configuration and identical invocation totals,
// and any wall-clock gap is scheduling overhead alone.

#include <chrono>
#include <cstdlib>
#include <iostream>

#include "bench/common.hpp"
#include "core/parallel_evaluator.hpp"
#include "core/spaces.hpp"
#include "core/techniques.hpp"
#include "simhw/sim_backend.hpp"
#include "util/json.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace {

using namespace rooftune;

struct ModeRun {
  std::string label;
  core::TuningRun run;
  double wall_s = 0.0;
};

core::TunerOptions tuner_options() {
  core::TunerOptions base;
  base.invocations = 3;
  base.iterations = 25;
  auto options = core::technique_options(core::Technique::Default, base);
  options.strategy = core::SearchStrategy::Racing;
  return options;
}

ModeRun run_mode(const std::string& label, const core::SearchSpace& space,
                 const simhw::MachineSpec& machine, double cost_base_s,
                 std::size_t workers, core::SchedulerMode scheduler,
                 std::size_t lookahead) {
  simhw::SimOptions sim;
  sim.sockets_used = 1;
  sim.cost_skew = 8.0;
  sim.cost_base_s = cost_base_s;
  const auto factory = [&machine, sim]() -> std::unique_ptr<core::Backend> {
    return std::make_unique<simhw::SimDgemmBackend>(machine, sim);
  };

  core::ParallelOptions parallel;
  parallel.workers = workers;
  parallel.deterministic = true;
  parallel.scheduler = scheduler;
  parallel.lookahead = lookahead;
  parallel.sched_stats = true;

  core::ParallelEvaluator evaluator(factory, tuner_options(), parallel);
  const auto start = std::chrono::steady_clock::now();
  auto run = evaluator.run(space);
  const auto stop = std::chrono::steady_clock::now();
  ModeRun result{label, std::move(run), 0.0};
  result.wall_s = std::chrono::duration<double>(stop - start).count();
  return result;
}

double idle_fraction(const ModeRun& mode) {
  return mode.run.sched ? mode.run.sched->idle_fraction() : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rooftune;

  const int grid_scale = argc > 1 ? std::atoi(argv[1]) : 4;
  const std::size_t workers =
      argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : 8;
  const double cost_base_s = argc > 3 ? std::atof(argv[3]) : 0.0005;

  const auto machine = simhw::machine_by_name("gold6148");
  const auto space = core::dgemm_scaled_space(grid_scale);

  std::cout << "Ablation: wave vs pipelined scheduling, racing strategy\n"
            << "grid scale " << grid_scale << " (" << space.cardinality()
            << " configs), " << workers << " workers, cost_skew 8.0 (1/8 "
            << "stragglers), cost base " << cost_base_s << "s\n\n";

  std::vector<ModeRun> modes;
  modes.push_back(run_mode("wave", space, machine, cost_base_s, workers,
                           core::SchedulerMode::Wave, 1));
  modes.push_back(run_mode("pipeline L=1", space, machine, cost_base_s,
                           workers, core::SchedulerMode::Pipeline, 1));
  modes.push_back(run_mode("pipeline L=8", space, machine, cost_base_s,
                           workers, core::SchedulerMode::Pipeline, 8));

  util::TextTable table;
  table.columns({"Scheduler", "Wall", "Speedup", "Idle", "Steals", "Parks",
                 "F_S1", "Best config", "Invocations"},
                {util::Align::Left});
  const double wave_wall = modes.front().wall_s;
  for (const auto& mode : modes) {
    const auto& sched = mode.run.sched;
    table.add_row({mode.label, util::format("%.2fs", mode.wall_s),
                   util::format("%.2fx", wave_wall / mode.wall_s),
                   util::format("%.3f", idle_fraction(mode)),
                   sched ? std::to_string(sched->steals) : "-",
                   sched ? std::to_string(sched->parks) : "-",
                   util::format("%.2f", mode.run.best_value()),
                   mode.run.best_config().to_string(),
                   std::to_string(mode.run.total_invocations)});
  }
  std::cout << table.render();

  // Default technique => eliminations are incumbent-independent, so every
  // scheduler must agree bit-for-bit on what was evaluated and what won.
  bool identical = true;
  for (const auto& mode : modes) {
    if (mode.run.best_config() != modes.front().run.best_config() ||
        mode.run.best_value() != modes.front().run.best_value() ||
        mode.run.total_invocations != modes.front().run.total_invocations) {
      identical = false;
      std::cerr << "FAIL: " << mode.label << " diverged from "
                << modes.front().label << " (best "
                << mode.run.best_config().to_string() << " @ "
                << mode.run.best_value() << ", "
                << mode.run.total_invocations << " invocations)\n";
    }
  }

  const double speedup_l8 = wave_wall / modes.back().wall_s;
  std::cout << "\npipeline L=8 speedup over wave: "
            << util::format("%.2fx", speedup_l8) << ", idle fraction "
            << util::format("%.3f", idle_fraction(modes[1])) << " (L=1) -> "
            << util::format("%.3f", idle_fraction(modes[2])) << " (L=8)\n";

  util::JsonWriter json;
  json.begin_object();
  json.key("bench").value("ablation_pipeline");
  json.key("machine").value("gold6148");
  json.key("grid_scale").value(grid_scale);
  json.key("configs").value(space.cardinality());
  json.key("workers").value(workers);
  json.key("cost_skew").value(8.0);
  json.key("cost_base_s").value(cost_base_s);
  json.key("identical_results").value(identical);
  json.key("speedup_pipeline_l8_vs_wave").value(speedup_l8);
  json.key("modes").begin_array();
  for (const auto& mode : modes) {
    json.begin_object();
    json.key("label").value(mode.label);
    json.key("wall_seconds").value(mode.wall_s);
    json.key("best_gflops").value(mode.run.best_value());
    json.key("best_config").value(mode.run.best_config().to_string());
    json.key("total_invocations").value(mode.run.total_invocations);
    json.key("pruned_configs").value(mode.run.pruned_configs);
    if (mode.run.sched) {
      const auto& s = *mode.run.sched;
      json.key("scheduler").begin_object();
      json.key("mode").value(s.mode);
      json.key("workers").value(s.workers);
      json.key("lookahead").value(s.lookahead);
      json.key("tasks").value(s.tasks);
      json.key("steals").value(s.steals);
      json.key("parks").value(s.parks);
      json.key("idle_fraction").value(s.idle_fraction());
      json.key("commit_wait_ns").value(s.commit_wait_ns);
      json.key("span_ns").value(s.span_ns);
      json.end_object();
    } else {
      json.key("scheduler").null();
    }
    json.end_object();
  }
  json.end_array();
  json.end_object();
  bench::write_artifact("BENCH_pipeline.json", json.str() + "\n");

  if (!identical) return 1;
  return 0;
}
