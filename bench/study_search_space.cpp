// §IV-A search-space study, regenerated: compare the initial 539-point
// space, the narrowed 96-point power-of-two space, the reduced space with
// multiple-of-2 leading dimensions (the production space), and the rejected
// m = n square constraint — best performance found and search time for
// each, on every machine.

#include <iostream>
#include <sstream>

#include "bench/common.hpp"
#include "core/spaces.hpp"
#include "simhw/sim_backend.hpp"
#include "util/csv.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace {

using namespace rooftune;

struct SpaceCase {
  const char* label;
  core::SearchSpace space;
};

}  // namespace

int main() {
  using namespace rooftune;

  std::ostringstream csv_text;
  util::CsvWriter csv(csv_text);
  csv.header({"machine", "space", "cardinality", "best_gflops", "best_config",
              "time_seconds"});

  for (const char* name : {"2650v4", "gold6132"}) {
    const auto machine = simhw::machine_by_name(name);

    std::vector<SpaceCase> cases;
    cases.push_back({"initial 64..4096 pow2 (539)", core::dgemm_initial_space()});
    cases.push_back({"narrowed 512..4096 pow2 (96)", core::dgemm_narrowed_space()});
    cases.push_back({"reduced, mult-of-2 ld (96)", core::dgemm_reduced_space()});
    cases.push_back({"square m=n constraint (24)", core::dgemm_square_space()});

    util::TextTable table;
    table.columns({"Space", "|S|", "Best", "Best config", "Time"},
                  {util::Align::Left});

    for (auto& c : cases) {
      simhw::SimOptions sim;
      sim.sockets_used = 1;
      simhw::SimDgemmBackend backend(machine, sim);
      const auto options = core::technique_options(core::Technique::CIOuter, {}, 0,
                                                   machine.name == "2695v4" ? 100 : 2);
      const core::Autotuner tuner(c.space, options);
      const auto run = tuner.run(backend);

      table.add_row({c.label, std::to_string(c.space.cardinality()),
                     util::format("%.2f", run.best_value()),
                     run.best_config().to_string(),
                     util::format("%.2fs", run.total_time.value)});
      csv.cell(std::string(name)).cell(std::string(c.label));
      csv.cell(c.space.cardinality()).cell(run.best_value());
      csv.cell(run.best_config().to_string()).cell(run.total_time.value);
      csv.end_row();
    }
    std::cout << "SS IV-A search-space study on " << name << " (S1)\n"
              << table.render() << '\n';
  }

  std::cout << "reading: the square m=n constraint loses several percent of\n"
               "peak (the paper's reason for rejecting Intel's constraint\n"
               "specification), while narrowing 539 -> 96 sacrifices nothing\n"
               "(tiny dimensions never win) and cuts search time.\n";
  bench::write_artifact("study_search_space.csv", csv_text.str());
  return 0;
}
