// Fig. 5: performance increase (search-time speedup) over the Default
// technique per machine and optimization combination — the chart view of
// Tables VIII-XI's Speedup column.

#include <algorithm>
#include <cmath>
#include <iostream>
#include <sstream>

#include "bench/common.hpp"
#include "util/csv.hpp"
#include "util/strings.hpp"

int main() {
  using namespace rooftune;

  const std::vector<core::Technique> techniques = {
      core::Technique::Single,       core::Technique::Confidence,
      core::Technique::CInner,       core::Technique::CInnerReverse,
      core::Technique::CIOuter,      core::Technique::CIOuterReverse};

  std::ostringstream csv_text;
  util::CsvWriter csv(csv_text);
  csv.header({"machine", "technique", "speedup_vs_default", "paper_speedup"});

  std::cout << "Fig. 5: search-time speedup over Default (log bars)\n\n";
  for (const char* name : {"2650v4", "2695v4", "gold6132", "gold6148"}) {
    const auto machine = simhw::machine_by_name(name);
    const std::uint64_t min_count = std::string(name) == "2695v4" ? 100 : 2;

    const auto time_of = [&](core::Technique technique, std::uint64_t mc) {
      return bench::run_dgemm_technique(machine, 1, technique, mc).total_time.value +
             bench::run_dgemm_technique(machine, 2, technique, mc).total_time.value;
    };
    const double default_time = time_of(core::Technique::Default, 2);

    std::cout << name << ":\n";
    for (const auto technique : techniques) {
      const double speedup = default_time / time_of(technique, min_count);
      // Log-scale bar: 10 chars per decade.
      const auto bar = std::string(
          static_cast<std::size_t>(std::max(0.0, std::log10(speedup)) * 10.0 + 1.0),
          '#');
      double paper_speedup = 0.0;
      for (const auto& row :
           bench::paper_technique_table(name, min_count == 100)) {
        if (core::technique_name(technique) == row.technique) {
          paper_speedup = row.speedup;
        }
      }
      if (paper_speedup == 0.0) {
        for (const auto& row : bench::paper_technique_table(name, false)) {
          if (core::technique_name(technique) == row.technique) {
            paper_speedup = row.speedup;
          }
        }
      }
      std::cout << util::format("  %-12s %8.2fx |%-35s (paper %.2fx)\n",
                                core::technique_name(technique).c_str(), speedup,
                                bar.c_str(), paper_speedup);
      csv.cell(std::string(name)).cell(core::technique_name(technique));
      csv.cell(speedup).cell(paper_speedup);
      csv.end_row();
    }
    std::cout << '\n';
  }

  bench::write_artifact("fig05_speedup.csv", csv_text.str());
  return 0;
}
