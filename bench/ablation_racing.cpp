// Ablation: racing evaluation schedule vs the paper's sequential techniques.
//
// The paper's conditions evaluate configurations one-after-another; racing
// (core/racing.hpp) interleaves the whole 96-config DGEMM space and
// CI-eliminates losers after a handful of invocations.  This bench runs
// Default, C, and C+I+O sequentially and racing on the same space/seed and
// compares accuracy (best found), total iterations/invocations, and tuning
// time on every simulated machine.

#include <iostream>
#include <sstream>

#include "bench/common.hpp"
#include "core/spaces.hpp"
#include "core/techniques.hpp"
#include "simhw/sim_backend.hpp"
#include "util/csv.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace {

using namespace rooftune;

core::TuningRun run_schedule(const simhw::MachineSpec& machine,
                             const core::TunerOptions& options) {
  simhw::SimOptions sim;
  sim.sockets_used = 1;
  simhw::SimDgemmBackend backend(machine, sim);
  return core::Autotuner(core::dgemm_reduced_space(), options).run(backend);
}

}  // namespace

int main() {
  using namespace rooftune;

  std::ostringstream csv_text;
  util::CsvWriter csv(csv_text);
  csv.header({"machine", "schedule", "best_gflops", "best_config", "iterations",
              "invocations", "pruned_configs", "time_seconds"});

  std::cout << "Ablation: racing vs sequential schedules, 96-config DGEMM space\n";

  for (const char* name : {"2650v4", "2695v4", "gold6148", "gold6132"}) {
    const auto machine = simhw::machine_by_name(name);

    util::TextTable table;
    table.columns({"Schedule", "F_S1", "Best config", "Iterations", "Invocations",
                   "Pruned", "Time"},
                  {util::Align::Left});

    const auto report = [&](const char* label, const core::TuningRun& run) {
      table.add_row({label, util::format("%.2f", run.best_value()),
                     run.best_config().to_string(),
                     std::to_string(run.total_iterations),
                     std::to_string(run.total_invocations),
                     std::to_string(run.pruned_configs),
                     util::format("%.2fs", run.total_time.value)});
      csv.cell(std::string(name)).cell(std::string(label));
      csv.cell(run.best_value()).cell(run.best_config().to_string());
      csv.cell(run.total_iterations).cell(run.total_invocations);
      csv.cell(run.pruned_configs).cell(run.total_time.value);
      csv.end_row();
    };

    report("Default", run_schedule(machine,
                                   core::technique_options(core::Technique::Default)));
    report("C", run_schedule(machine,
                             core::technique_options(core::Technique::Confidence)));
    report("C+I+O", run_schedule(machine,
                                 core::technique_options(core::Technique::CIOuter)));

    auto racing = core::technique_options(core::Technique::CIOuter);
    racing.strategy = core::SearchStrategy::Racing;
    report("racing", run_schedule(machine, racing));

    std::cout << "\n" << name << " (1 socket)\n" << table.render();
  }

  std::cout << "\nreading: racing reaches the same optimum as C+I+O with a\n"
               "fraction of the iterations — sequential pruning must finish\n"
               "whole configurations before its incumbent has any bite, while\n"
               "racing's population-wide CI elimination kills losers after a\n"
               "few interleaved invocations.\n";

  bench::write_artifact("ablation_racing.csv", csv_text.str());
  return 0;
}
