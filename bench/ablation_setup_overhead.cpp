// Setup-overhead ablation: how much tuning time does workspace-arena slab
// reuse save, and does it ever change the answer?
//
// The simulator charges SimOptions::setup_overhead_s every time a fresh
// operand working set has to be materialized (mmap + page-fault storm).
// Without arena reuse that cost is paid on every invocation; with reuse it
// is paid only when the working set grows past the high-water mark — over a
// 96-configuration x 10-invocation DGEMM sweep that is the difference
// between ~960 payments and a handful.  Samples are untouched either way
// (only the clock moves), so the optimum must be identical and the saving
// is pure setup time.

#include <iostream>
#include <sstream>

#include "bench/common.hpp"
#include "core/spaces.hpp"
#include "simhw/sim_backend.hpp"
#include "util/csv.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace {

using namespace rooftune;

core::TuningRun run_sweep(const simhw::MachineSpec& machine, double setup_s,
                          bool arena_reuse) {
  simhw::SimOptions sim;
  sim.setup_overhead_s = setup_s;
  sim.arena_reuse = arena_reuse;
  simhw::SimDgemmBackend backend(machine, sim);
  const auto options = core::technique_options(core::Technique::Default);
  return core::Autotuner(core::dgemm_reduced_space(), options).run(backend);
}

}  // namespace

int main() {
  using namespace rooftune;

  const auto machine = simhw::machine_by_name("2650v4");

  std::ostringstream csv_text;
  util::CsvWriter csv(csv_text);
  csv.header({"setup_overhead_s", "time_no_arena_s", "time_arena_s", "saved_s",
              "setup_share_no_arena", "slab_hit_rate", "same_optimum"});

  util::TextTable table;
  table.columns({"Setup ovh", "No arena", "Arena", "Saved", "Setup share", "Hit rate",
                 "Same best"},
                {util::Align::Left});

  for (const double setup_s : {0.01, 0.05, 0.20, 1.00}) {
    const auto off = run_sweep(machine, setup_s, /*arena_reuse=*/false);
    const auto on = run_sweep(machine, setup_s, /*arena_reuse=*/true);

    const bool same_best = off.best_config() == on.best_config();
    const double share = off.total_setup_time.value / off.total_time.value;
    const double hit_rate =
        on.arena.has_value() && on.arena->leases > 0
            ? static_cast<double>(on.arena->slab_hits) /
                  static_cast<double>(on.arena->leases)
            : 0.0;

    table.add_row({util::format("%.2fs", setup_s),
                   util::format("%.0fs", off.total_time.value),
                   util::format("%.0fs", on.total_time.value),
                   util::format("%.0fs", off.total_time.value - on.total_time.value),
                   util::format("%.1f%%", 100.0 * share),
                   util::format("%.1f%%", 100.0 * hit_rate),
                   same_best ? "yes" : "NO"});
    csv.cell(setup_s)
        .cell(off.total_time.value)
        .cell(on.total_time.value)
        .cell(off.total_time.value - on.total_time.value)
        .cell(share)
        .cell(hit_rate)
        .cell(std::string(same_best ? "yes" : "no"));
    csv.end_row();
  }

  std::cout << "Setup-overhead ablation (2650v4 S1, Default technique, reduced "
               "DGEMM space)\n"
            << table.render();
  std::cout << "\nreading: arena reuse removes nearly the entire modelled setup\n"
               "cost (the slab hit rate converges to ~100% after the first few\n"
               "configurations of the sweep) and never changes the reported\n"
               "optimum — samples are identical, only the clock differs.\n";
  bench::write_artifact("ablation_setup_overhead.csv", csv_text.str());
  return 0;
}
