// Parameter-importance study: quantify Table V's pattern — "most hardware
// finds an optimal configuration with k = 128 and n and m varies depending
// on the hardware".  For each machine, decompose the Default run's
// performance spread into per-parameter main effects.

#include <iostream>
#include <sstream>

#include "bench/common.hpp"
#include "core/analysis.hpp"
#include "util/csv.hpp"
#include "util/strings.hpp"

int main() {
  using namespace rooftune;

  std::ostringstream csv_text;
  util::CsvWriter csv(csv_text);
  csv.header({"machine", "parameter", "effect_range", "best_level"});

  for (const char* name : {"2650v4", "2695v4", "gold6132", "gold6148"}) {
    const auto machine = simhw::machine_by_name(name);
    // Default technique: every configuration fully evaluated => unbiased
    // level means.
    const auto run =
        bench::run_dgemm_technique(machine, 1, core::Technique::Default);

    std::cout << "Parameter main effects on " << name << " (S1, Default run)\n"
              << core::effects_report(run) << '\n';

    for (const auto& effect : core::ranked_parameter_effects(run, true)) {
      csv.cell(std::string(name)).cell(effect.name);
      csv.cell(effect.effect_range).cell(static_cast<long long>(effect.best_level));
      csv.end_row();
    }
  }

  std::cout << "shape check (Table V): k is the dominant dimension with a\n"
               "consistent best level of 128 (64 on 2650v4-S2), while the\n"
               "best n and m levels differ per machine.\n";
  bench::write_artifact("study_parameter_effects.csv", csv_text.str());
  return 0;
}
