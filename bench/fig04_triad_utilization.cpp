// Fig. 4: TRIAD memory performance vs. theoretical maximum for all systems
// and configurations — the bar-chart view of Table VI.

#include <iostream>
#include <sstream>

#include "bench/common.hpp"
#include "roofline/builder.hpp"
#include "util/csv.hpp"
#include "util/strings.hpp"

int main() {
  using namespace rooftune;

  std::ostringstream csv_text;
  util::CsvWriter csv(csv_text);
  csv.header({"machine", "sockets", "measured_dram_gbps", "theoretical_gbps",
              "utilization", "l3_gbps", "paper_dram", "paper_l3"});

  roofline::BuilderOptions options;
  options.prune_min_count = 10;

  std::cout << "Fig. 4: TRIAD memory performance vs. theoretical maximum\n\n";
  for (const auto& ref : bench::paper_table6()) {
    const auto machine = simhw::machine_by_name(ref.machine);
    simhw::SimOptions sim;
    sim.sockets_used = ref.sockets;
    sim.affinity = ref.sockets == 1 ? util::AffinityPolicy::Close
                                    : util::AffinityPolicy::Spread;
    simhw::SimTriadBackend backend(machine, sim);
    auto [l3, dram] = roofline::measure_triad_ceilings(
        backend, std::to_string(ref.sockets) + "S",
        machine.theoretical_bandwidth(ref.sockets),
        machine.l3_capacity(ref.sockets), options);

    const double theoretical = dram.theoretical.value;
    const double utilization = dram.value.value / theoretical;
    const auto bar = [](double fraction) {
      return std::string(static_cast<std::size_t>(fraction * 40.0), '#');
    };
    std::cout << util::format("%-9s S%d DRAM %7.2f GB/s (%.1f%% of %7.3f) |%s\n",
                              machine.name.c_str(), ref.sockets, dram.value.value,
                              100.0 * utilization, theoretical,
                              bar(utilization).c_str());
    std::cout << util::format("%-9s S%d L3   %7.2f GB/s\n", machine.name.c_str(),
                              ref.sockets, l3.value.value);

    csv.cell(std::string(machine.name)).cell(ref.sockets);
    csv.cell(dram.value.value).cell(theoretical).cell(utilization);
    csv.cell(l3.value.value).cell(ref.dram_gbps).cell(ref.l3_gbps);
    csv.end_row();
  }

  bench::write_artifact("fig04_triad_utilization.csv", csv_text.str());
  return 0;
}
