// §III-C.3 distribution study: "When the distribution of runtimes of our
// benchmarks is graphed, we find that the distribution is usually
// non-normal."  For a few representative configurations on each machine,
// collect the iteration samples of full invocations and report:
//   * a terminal histogram,
//   * the Jarque–Bera normality verdict (from streaming moments),
//   * skewness / excess kurtosis,
//   * a two-sample KS test between two invocations (are two program runs
//     even drawn from the same distribution? — Georges et al.'s
//     invocation-level variation made visible).

#include <iostream>
#include <sstream>

#include "bench/common.hpp"
#include "simhw/sim_backend.hpp"
#include "stats/histogram.hpp"
#include "stats/ks_test.hpp"
#include "stats/normality.hpp"
#include "stats/welford.hpp"
#include "util/csv.hpp"
#include "util/strings.hpp"

int main() {
  using namespace rooftune;

  std::ostringstream csv_text;
  util::CsvWriter csv(csv_text);
  csv.header({"machine", "config", "jarque_bera", "jb_p", "normal_at_5pct",
              "skewness", "excess_kurtosis", "ks_between_invocations_p"});

  for (const char* name : {"2650v4", "2695v4", "gold6148"}) {
    const auto machine = simhw::machine_by_name(name);
    simhw::SimOptions sim;
    sim.sockets_used = 1;
    simhw::SimDgemmBackend backend(machine, sim);

    // The machine's optimum plus one mid-grid configuration.
    const auto anchor = simhw::dgemm_anchor(name, 1);
    const std::vector<core::Configuration> configs = {
        core::dgemm_config(anchor.n, anchor.m, anchor.k),
        core::dgemm_config(1000, 1024, 512)};

    for (const auto& config : configs) {
      stats::OnlineMoments moments;
      stats::Histogram histogram(24);
      std::vector<double> invocation_a, invocation_b;

      for (std::uint64_t inv = 0; inv < 6; ++inv) {
        backend.begin_invocation(config, inv);
        for (int i = 0; i < 200; ++i) {
          const double v = backend.run_iteration().value;
          moments.add(v);
          histogram.add(v);
          if (inv == 0) invocation_a.push_back(v);
          if (inv == 1) invocation_b.push_back(v);
        }
        backend.end_invocation();
      }

      const auto jb = stats::jarque_bera(moments);
      const auto ks = stats::ks_two_sample(invocation_a, invocation_b);

      std::cout << name << "  " << config.to_string() << "  (1200 samples)\n";
      std::cout << util::format(
          "  JB = %.1f (p = %.3g) => %s at 5%%;  skew %+.2f, ex-kurtosis %+.2f\n",
          jb.jarque_bera, jb.p_value,
          jb.reject_at_5pct ? "NON-normal" : "normal-looking", moments.skewness(),
          moments.excess_kurtosis());
      std::cout << util::format(
          "  KS between invocation 0 and 1: D = %.3f (p = %.3g) => %s\n",
          ks.statistic, ks.p_value,
          ks.reject_at_5pct ? "distributions DIFFER (invocation-level bias)"
                            : "compatible");
      std::cout << histogram.render(40) << '\n';

      csv.cell(std::string(name)).cell(config.to_string());
      csv.cell(jb.jarque_bera).cell(jb.p_value);
      csv.cell(std::string(jb.reject_at_5pct ? "no" : "yes"));
      csv.cell(moments.skewness()).cell(moments.excess_kurtosis());
      csv.cell(ks.p_value);
      csv.end_row();
    }
  }

  std::cout << "reading (SS III-C.3): warm-up ramps and invocation bias leave\n"
               "left tails and shifted modes — the distributions are usually\n"
               "non-normal, yet the normal-theory CI still guides the stop\n"
               "conditions well (the paper's pragmatic position).\n";
  bench::write_artifact("study_distributions.csv", csv_text.str());
  return 0;
}
