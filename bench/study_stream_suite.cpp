// Full STREAM-suite study: the paper measures only TRIAD (§III-B); the
// classic STREAM report covers copy/scale/add/triad.  This bench autotunes
// the vector length for each kernel on every machine and prints the
// four-kernel table (DRAM-resident), the way McCalpin's stream.c reports it
// — demonstrating that the tool generalizes to the whole suite.

#include <iostream>
#include <sstream>

#include "bench/common.hpp"
#include "core/autotuner.hpp"
#include "core/spaces.hpp"
#include "core/techniques.hpp"
#include "simhw/sim_backend.hpp"
#include "util/csv.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main() {
  using namespace rooftune;

  std::ostringstream csv_text;
  util::CsvWriter csv(csv_text);
  csv.header({"machine", "kernel", "dram_gbps", "relative_to_triad"});

  for (const char* name : {"2650v4", "2695v4", "gold6132", "gold6148"}) {
    const auto machine = simhw::machine_by_name(name);

    util::TextTable table;
    table.columns({"Kernel", "B_DRAM [GB/s]", "vs. triad"}, {util::Align::Left});

    // DRAM-resident subspace only (the STREAM convention: arrays >> cache).
    const auto space = core::triad_space(
        util::Bytes{8 * machine.l3_capacity(2).value}, util::Bytes::MiB(768));
    const auto options = core::technique_options(core::Technique::CIOuter, {}, 0, 10);

    std::vector<std::pair<stream::Kernel, double>> results;
    for (const auto kernel : {stream::Kernel::Copy, stream::Kernel::Scale,
                              stream::Kernel::Add, stream::Kernel::Triad}) {
      simhw::SimOptions sim;
      sim.sockets_used = 2;
      sim.affinity = util::AffinityPolicy::Spread;
      sim.stream_kernel = kernel;
      simhw::SimTriadBackend backend(machine, sim);
      const auto run = core::Autotuner(space, options).run(backend);
      results.emplace_back(kernel, run.best_value());
    }
    const double triad_bw = results.back().second;
    for (const auto& [kernel, bw] : results) {
      table.add_row({to_string(kernel), util::format("%.2f", bw),
                     util::format("%.3f", bw / triad_bw)});
      csv.cell(std::string(name)).cell(std::string(to_string(kernel)));
      csv.cell(bw).cell(bw / triad_bw);
      csv.end_row();
    }
    std::cout << "STREAM suite on " << name << " (2 sockets, DRAM-resident)\n"
              << table.render() << '\n';
  }

  std::cout << "shape check: copy < scale < add < triad, the classic STREAM\n"
               "ordering on multi-channel Xeons.\n";
  bench::write_artifact("study_stream_suite.csv", csv_text.str());
  return 0;
}
