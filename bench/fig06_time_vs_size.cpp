// Fig. 6: time spent on each configuration and its performance as a
// function of matrix size, in search order.  The paper's observation: the
// performance peaks are spread over the whole spectrum while the evaluation
// cost grows exponentially with the matrix volume — which is why reversing
// the search order hurts the pruning optimizations so much.

#include <algorithm>
#include <iostream>
#include <sstream>

#include "bench/common.hpp"
#include "util/csv.hpp"
#include "util/strings.hpp"

int main(int argc, char** argv) {
  using namespace rooftune;

  const std::string machine_name = argc > 1 ? argv[1] : "2650v4";
  const auto machine = simhw::machine_by_name(machine_name);

  // Default technique: a full fixed-sample-size evaluation per
  // configuration, so the per-configuration time is the honest cost.
  const auto run =
      bench::run_dgemm_technique(machine, 1, core::Technique::Default);

  std::ostringstream csv_text;
  util::CsvWriter csv(csv_text);
  csv.header({"index", "n", "m", "k", "volume_nmk", "time_seconds",
              "performance_gflops", "iterations"});

  double max_time = 0.0, max_perf = 0.0;
  for (const auto& r : run.results) {
    max_time = std::max(max_time, r.total_time.value);
    max_perf = std::max(max_perf, r.value());
  }

  std::cout << "Fig. 6: per-configuration time and performance vs. matrix size\n"
            << "machine " << machine.name << " (1 socket), search order\n\n"
            << "   idx  n,m,k               time     perf    t-bar / p-bar\n";
  for (std::size_t i = 0; i < run.results.size(); ++i) {
    const auto& r = run.results[i];
    const double volume = static_cast<double>(r.config.at("n")) *
                          static_cast<double>(r.config.at("m")) *
                          static_cast<double>(r.config.at("k"));
    csv.cell(i);
    csv.cell(static_cast<long long>(r.config.at("n")))
        .cell(static_cast<long long>(r.config.at("m")))
        .cell(static_cast<long long>(r.config.at("k")));
    csv.cell(volume).cell(r.total_time.value).cell(r.value()).cell(r.total_iterations);
    csv.end_row();

    if (i % 4 == 0) {  // keep the terminal plot readable
      const auto tbar = std::string(
          static_cast<std::size_t>(r.total_time.value / max_time * 30.0), 'T');
      const auto pbar =
          std::string(static_cast<std::size_t>(r.value() / max_perf * 30.0), 'P');
      std::cout << util::format("  %4zu  %-18s %8.2fs %7.1f  %s\n", i,
                                r.config.to_string().c_str(), r.total_time.value,
                                r.value(), (tbar + " | " + pbar).c_str());
    }
  }

  std::cout << "\nshape check: evaluation time grows with n*m*k while the\n"
               "performance peaks sit mid-spectrum (paper Fig. 6).\n";
  bench::write_artifact("fig06_time_vs_size_" + machine.name + ".csv",
                        csv_text.str());
  return 0;
}
