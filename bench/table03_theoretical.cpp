// Table III: theoretical maximum double-precision performance and DRAM
// bandwidth per system, computed from the Table II specifications via
// Eqs. 9-11.  The reproduction must match the paper exactly (these are
// closed-form, no measurement involved).

#include <iostream>
#include <sstream>

#include "bench/common.hpp"
#include "util/csv.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main() {
  using namespace rooftune;

  // Paper Table III reference values.
  struct Ref {
    const char* machine;
    double ft, bt;
  } refs[] = {{"2650v4", 422.4, 76.8},
              {"2695v4", 604.8, 76.8},
              {"gold6132", 1164.8, 127.968},
              {"gold6148", 1536.0, 127.968}};

  util::TextTable table;
  table.columns({"System", "F_t [GFLOP/s]", "B_t [GB/s]", "paper F_t", "paper B_t",
                 "match"},
                {util::Align::Left});

  std::ostringstream csv_text;
  util::CsvWriter csv(csv_text);
  csv.header({"machine", "ft_gflops", "bt_gbps", "paper_ft", "paper_bt"});

  bool all_match = true;
  for (const auto& ref : refs) {
    const auto m = simhw::machine_by_name(ref.machine);
    // Table III convention: F_t single-socket, B_t full-system (see
    // simhw/machine.hpp for why).
    const double ft = m.theoretical_flops(1).value;
    const double bt = m.theoretical_bandwidth(m.sockets).value;
    const bool match =
        std::abs(ft - ref.ft) < 1e-6 && std::abs(bt - ref.bt) < 1e-6;
    all_match = all_match && match;
    table.add_row({m.name, util::format("%.1f", ft), util::format("%.3f", bt),
                   util::format("%.1f", ref.ft), util::format("%.3f", ref.bt),
                   match ? "exact" : "MISMATCH"});
    csv.cell(std::string(m.name)).cell(ft).cell(bt).cell(ref.ft).cell(ref.bt);
    csv.end_row();
  }

  std::cout << "Table III: theoretical peaks from Eqs. 9-11\n" << table.render();
  std::cout << (all_match ? "all values match the paper exactly\n"
                          : "MISMATCH against the paper!\n");
  bench::write_artifact("table03_theoretical.csv", csv_text.str());
  return all_match ? 0 : 1;
}
