// Calibration-sensitivity ablation: how much do the headline speedups
// depend on the simulator's *assumed* overheads (process launch cost,
// operand-initialization bandwidth)?  The reproduction's claim is about
// shape, so the shape must be stable when those assumptions move: this
// sweep varies launch overhead 4x in both directions and init bandwidth
// 2x, and reports the Default time and the C+I+Outer speedup each time.

#include <iostream>
#include <sstream>

#include "bench/common.hpp"
#include "core/spaces.hpp"
#include "simhw/sim_backend.hpp"
#include "util/csv.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace {

using namespace rooftune;

double total_time(const simhw::MachineSpec& machine, core::Technique technique,
                  const simhw::SimOptions& base) {
  double total = 0.0;
  for (int sockets : {1, 2}) {
    simhw::SimOptions sim = base;
    sim.sockets_used = sockets;
    simhw::SimDgemmBackend backend(machine, sim);
    const auto options = core::technique_options(technique);
    total += core::Autotuner(core::dgemm_reduced_space(), options)
                 .run(backend)
                 .total_time.value;
  }
  return total;
}

}  // namespace

int main() {
  using namespace rooftune;

  const auto machine = simhw::machine_by_name("2650v4");

  std::ostringstream csv_text;
  util::CsvWriter csv(csv_text);
  csv.header({"launch_overhead_s", "init_bandwidth_gbps", "default_time_s",
              "cio_time_s", "speedup"});

  util::TextTable table;
  table.columns({"Launch ovh", "Init BW", "Default", "C+I+O", "Speedup"},
                {util::Align::Left});

  for (const double launch : {0.01, 0.04, 0.16}) {
    for (const double init_bw : {4.0, 8.0, 16.0}) {
      simhw::SimOptions sim;
      sim.launch_overhead_s = launch;
      sim.init_bandwidth_gbps = init_bw;
      const double t_default = total_time(machine, core::Technique::Default, sim);
      const double t_cio = total_time(machine, core::Technique::CIOuter, sim);
      table.add_row({util::format("%.2fs", launch), util::format("%.0f GB/s", init_bw),
                     util::format("%.0fs", t_default), util::format("%.1fs", t_cio),
                     util::format("%.1fx", t_default / t_cio)});
      csv.cell(launch).cell(init_bw).cell(t_default).cell(t_cio).cell(t_default / t_cio);
      csv.end_row();
    }
  }

  std::cout << "Overhead-sensitivity sweep (2650v4, S1+S2 tuning problem)\n"
            << table.render();
  std::cout << "\nreading: the Default/C+I+O speedup stays around two orders\n"
               "of magnitude across a 16x launch-overhead range and a 4x init\n"
               "bandwidth range — the headline is not an artifact of the\n"
               "simulator's overhead assumptions (it is dominated by kernel\n"
               "time saved through pruning).\n";
  bench::write_artifact("ablation_overhead_sensitivity.csv", csv_text.str());
  return 0;
}
