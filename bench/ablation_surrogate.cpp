// Ablation: surrogate-model search knobs on the enlarged DGEMM grid.
//
// The surrogate strategy (core/surrogate.hpp) buys its >= 10x invocation
// savings with two knobs: the Latin-hypercube seed budget (how much of the
// space the quadratic model sees) and the confirm-top count (how many
// predicted-best candidates the racing phase actually measures).  This
// bench sweeps both on the ~116x enlarged grid (dgemm_scaled_space(6),
// 11191 configs) against the exhaustive and racing baselines, reporting
// whether each setting still finds the exhaustive optimum and what it pays
// for it.  The sweep quantifies both failure modes: a starved seed batch
// misfits the response surface, while a narrow confirm set trusts the
// model's smooth peak and misses the measured winner sitting on a noise
// lump the quadratic cannot represent (docs/search-strategies.md).

#include <iostream>
#include <sstream>
#include <string>

#include "bench/common.hpp"
#include "core/autotuner.hpp"
#include "core/spaces.hpp"
#include "core/techniques.hpp"
#include "simhw/machine.hpp"
#include "simhw/sim_backend.hpp"
#include "util/csv.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace {

using namespace rooftune;

constexpr int kGridScale = 6;

/// The CLI-default schedule (c+i+o, 10 invocations, 200 iterations, seed
/// 2021) — the setting under which docs/search-strategies.md pins the
/// validated seed-budget/confirm-top recipe.
core::TunerOptions cli_defaults() {
  core::TunerOptions base;
  base.invocations = 10;
  base.iterations = 200;
  base.timeout = util::Seconds{10.0};
  auto options = core::technique_options(core::Technique::CIOuter, base, 0, 2);
  options.random_seed = 2021;
  options.racing_min_invocations = 3;
  return options;
}

core::TuningRun run_on(const simhw::MachineSpec& machine,
                       const core::SearchSpace& space,
                       const core::TunerOptions& options) {
  simhw::SimOptions sim;
  sim.grid_scale = kGridScale;
  simhw::SimDgemmBackend backend(machine, sim);
  return core::Autotuner(space, options).run(backend);
}

}  // namespace

int main() {
  using namespace rooftune;

  std::ostringstream csv_text;
  util::CsvWriter csv(csv_text);
  csv.header({"machine", "schedule", "seed_budget", "confirm_top",
              "best_gflops", "best_config", "found_exhaustive_optimum",
              "invocations", "savings_factor", "time_seconds"});

  const auto space = core::dgemm_scaled_space(kGridScale);
  std::cout << "Ablation: surrogate knobs, " << space.cardinality()
            << "-config DGEMM grid (scale " << kGridScale << ")\n";

  for (const char* name : {"2650v4", "gold6148"}) {
    const auto machine = simhw::machine_by_name(name);

    auto exhaustive_options = cli_defaults();
    const auto exhaustive = run_on(machine, space, exhaustive_options);

    util::TextTable table;
    table.columns({"Schedule", "F_S1", "Best config", "Hit", "Invocations",
                   "Savings", "Time"},
                  {util::Align::Left});

    const auto report = [&](const std::string& label, std::uint64_t seeds,
                            std::uint64_t top, const core::TuningRun& run) {
      const bool hit = run.best_config() == exhaustive.best_config();
      const double savings =
          static_cast<double>(exhaustive.total_invocations) /
          static_cast<double>(run.total_invocations);
      table.add_row({label, util::format("%.2f", run.best_value()),
                     run.best_config().to_string(), hit ? "yes" : "NO",
                     std::to_string(run.total_invocations),
                     util::format("%.1fx", savings),
                     util::format("%.2fs", run.total_time.value)});
      csv.cell(std::string(name)).cell(label);
      csv.cell(seeds).cell(top);
      csv.cell(run.best_value()).cell(run.best_config().to_string());
      csv.cell(hit ? 1 : 0).cell(run.total_invocations);
      csv.cell(savings).cell(run.total_time.value);
      csv.end_row();
    };

    report("exhaustive", 0, 0, exhaustive);

    auto racing_options = cli_defaults();
    racing_options.strategy = core::SearchStrategy::Racing;
    report("racing", 0, 0, run_on(machine, space, racing_options));

    // Seed-budget sweep at the validated confirm-top.
    for (const std::uint64_t seeds : {32ull, 64ull, 128ull, 256ull}) {
      auto options = cli_defaults();
      options.strategy = core::SearchStrategy::Surrogate;
      options.surrogate_seed_budget = seeds;
      options.surrogate_confirm_top = 160;
      report(util::format("surrogate sb=%llu ct=160",
                          static_cast<unsigned long long>(seeds)),
             seeds, 160, run_on(machine, space, options));
    }

    // Confirm-top sweep at the validated seed budget.
    for (const std::uint64_t top : {16ull, 40ull, 80ull, 160ull, 320ull}) {
      auto options = cli_defaults();
      options.strategy = core::SearchStrategy::Surrogate;
      options.surrogate_seed_budget = 128;
      options.surrogate_confirm_top = top;
      report(util::format("surrogate sb=128 ct=%llu",
                          static_cast<unsigned long long>(top)),
             128, top, run_on(machine, space, options));
    }

    std::cout << "\n" << name << " (1 socket)\n" << table.render();
  }

  std::cout << "\nreading: the seed budget buys model fidelity and the\n"
               "confirm top buys tolerance to model bias — the quadratic's\n"
               "smooth peak ranks the true (noise-lump) winner around rank\n"
               "100-150, so small confirm sets race the wrong candidates\n"
               "even when the fit is good.  The validated sb=128/ct=160\n"
               "recipe keeps >= 10x savings while reproducing the\n"
               "exhaustive optimum.\n";

  bench::write_artifact("ablation_surrogate.csv", csv_text.str());
  return 0;
}
