// Fig. 3: DGEMM compute performance vs. theoretical maximum for all systems
// and socket configurations — the bar-chart view of Table IV.  Emits the
// series as CSV and prints an ASCII bar chart.

#include <iostream>
#include <sstream>

#include "bench/common.hpp"
#include "util/csv.hpp"
#include "util/strings.hpp"

int main() {
  using namespace rooftune;

  std::ostringstream csv_text;
  util::CsvWriter csv(csv_text);
  csv.header({"machine", "sockets", "measured_gflops", "theoretical_gflops",
              "utilization", "paper_utilization"});

  std::cout << "Fig. 3: DGEMM compute performance vs. theoretical maximum\n\n";
  for (const auto& ref : bench::paper_table45()) {
    const auto machine = simhw::machine_by_name(ref.machine);
    const std::uint64_t min_count =
        std::string(ref.machine) == "2695v4" ? 100 : 2;
    const auto run = bench::run_dgemm_technique(machine, ref.sockets,
                                                core::Technique::CIOuter, min_count);
    const double peak = machine.theoretical_flops(ref.sockets).value;
    const double utilization = run.best_value() / peak;

    const auto bar = [](double fraction) {
      return std::string(static_cast<std::size_t>(fraction * 50.0), '#');
    };
    std::cout << util::format("%-9s S%d measured    %7.1f |%s\n", machine.name.c_str(),
                              ref.sockets, run.best_value(),
                              bar(utilization).c_str());
    std::cout << util::format("%-9s S%d theoretical %7.1f |%s\n", machine.name.c_str(),
                              ref.sockets, peak, bar(1.0).c_str());

    csv.cell(std::string(machine.name)).cell(ref.sockets);
    csv.cell(run.best_value()).cell(peak).cell(utilization).cell(ref.utilization);
    csv.end_row();
  }

  std::cout << "\nshape check (SS VI-A): AVX2 machines show higher utilization\n"
               "than AVX512 machines, and single-socket beats dual-socket.\n";
  bench::write_artifact("fig03_dgemm_utilization.csv", csv_text.str());
  return 0;
}
