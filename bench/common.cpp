#include "bench/common.hpp"

#include <filesystem>
#include <fstream>
#include <iostream>

#include "core/spaces.hpp"
#include "simhw/sim_backend.hpp"
#include "util/strings.hpp"

namespace rooftune::bench {

const std::vector<PaperDgemmRow>& paper_table45() {
  static const std::vector<PaperDgemmRow> rows = {
      {"2650v4", 1, 408.71, 0.9676, 1000, 4096, 128},
      {"2650v4", 2, 773.51, 0.9156, 2000, 2048, 64},
      {"2695v4", 1, 593.06, 0.9806, 2000, 4096, 128},
      {"2695v4", 2, 1112.08, 0.9193, 4000, 2048, 128},
      {"gold6132", 1, 1015.68, 0.8720, 1000, 4096, 128},
      {"gold6132", 2, 1750.24, 0.7513, 4000, 512, 128},
      {"gold6148", 1, 1422.24, 0.9259, 4000, 512, 128},
      {"gold6148", 2, 2407.33, 0.7836, 4000, 1024, 128},
  };
  return rows;
}

const std::vector<PaperTriadRow>& paper_table6() {
  static const std::vector<PaperTriadRow> rows = {
      {"2650v4", 1, 40.42, 1.0526, 256.07},
      {"2650v4", 2, 80.65, 1.0501, 452.05},
      {"2695v4", 1, 43.29, 1.1273, 371.41},
      {"2695v4", 2, 76.32, 0.9937, 661.68},
      {"gold6132", 1, 68.32, 1.0678, 422.87},
      {"gold6132", 2, 132.18, 1.0392, 814.82},
      {"gold6148", 1, 74.16, 1.1590, 547.11},
      {"gold6148", 2, 139.80, 1.0925, 1000.10},
  };
  return rows;
}

const std::vector<PaperTechniqueRow>& paper_technique_table(
    const std::string& machine, bool min_count_100) {
  // Tables VIII-XI, transcribed verbatim.
  static const std::vector<PaperTechniqueRow> t2650 = {
      {"Default", 408.47, 776.02, 3435.73, 1.0},
      {"Hand-tuned Time", 404.92, 765.58, 30.12, 114.07},
      {"Hand-tuned Accuracy", 407.29, 772.53, 56.45, 60.86},
      {"Single", 398.56, 719.72, 15.34, 223.91},
      {"Confidence", 407.26, 775.24, 1039.03, 3.31},
      {"C+Inner", 406.96, 775.65, 170.99, 20.09},
      {"C+Inner+R", 406.99, 774.92, 344.92, 9.96},
      {"C+I+Outer", 407.57, 771.19, 29.53, 116.33},
      {"C+I+O+R", 406.84, 775.08, 208.61, 16.47},
  };
  static const std::vector<PaperTechniqueRow> t2695 = {
      {"Default", 590.47, 1089.00, 2531.58, 1.0},
      {"Hand-tuned Time", 529.64, 872.70, 37.55, 67.42},
      {"Hand-tuned Accuracy", 581.87, 1064.24, 237.84, 10.64},
      {"Single", 436.35, 634.16, 19.24, 131.58},
      {"Confidence", 587.26, 1080.56, 882.14, 2.87},
      {"C+Inner", 467.48, 931.81, 201.34, 12.57},
      {"C+Inner+R", 550.95, 1018.42, 338.02, 7.49},
      {"C+I+Outer", 436.40, 1011.02, 35.94, 70.44},
      {"C+I+O+R", 546.77, 1013.77, 174.81, 14.48},
  };
  static const std::vector<PaperTechniqueRow> t2695_min100 = {
      {"C+Inner", 587.10, 1064.12, 845.43, 2.99},
      {"C+Inner+R", 587.05, 1087.98, 887.88, 2.85},
      {"C+I+Outer", 587.11, 1070.98, 157.13, 16.11},
      {"C+I+O+R", 586.77, 1089.67, 282.26, 8.97},
  };
  static const std::vector<PaperTechniqueRow> t6132 = {
      {"Default", 1009.56, 1756.06, 1696.37, 1.0},
      {"Hand-tuned Time", 992.36, 1740.20, 27.19, 62.39},
      {"Hand-tuned Accuracy", 1005.34, 1744.63, 207.23, 8.19},
      {"Single", 919.83, 1401.98, 12.78, 132.74},
      {"Confidence", 1007.89, 1748.46, 325.34, 5.21},
      {"C+Inner", 1007.27, 1747.95, 139.09, 12.20},
      {"C+Inner+R", 1004.44, 1745.84, 160.50, 10.57},
      {"C+I+Outer", 1006.51, 1747.42, 26.43, 64.17},
      {"C+I+O+R", 1002.06, 1745.60, 54.26, 31.27},
  };
  static const std::vector<PaperTechniqueRow> t6148 = {
      {"Default", 1408.14, 2373.35, 1409.28, 1.0},
      {"Hand-tuned Time", 1342.37, 2336.03, 32.46, 43.42},
      {"Hand-tuned Accuracy", 1405.02, 2363.48, 109.59, 12.86},
      {"Single", 1221.08, 1957.92, 13.86, 101.68},
      {"Confidence", 1403.46, 2370.84, 288.84, 4.88},
      {"C+Inner", 1405.47, 2368.21, 144.08, 9.78},
      {"C+Inner+R", 1402.60, 2369.58, 161.81, 8.71},
      {"C+I+Outer", 1403.92, 2373.57, 32.43, 43.45},
      {"C+I+O+R", 1403.13, 2372.15, 52.49, 26.85},
  };
  static const std::vector<PaperTechniqueRow> empty;

  if (machine == "2650v4") return t2650;
  if (machine == "2695v4") return min_count_100 ? t2695_min100 : t2695;
  if (machine == "gold6132") return t6132;
  if (machine == "gold6148") return t6148;
  return empty;
}

const std::vector<PaperHandTuneRow>& paper_table7() {
  static const std::vector<PaperHandTuneRow> rows = {
      {"2650v4", 7, 20},
      {"2695v4", 15, 180},
      {"gold6132", 18, 180},
      {"gold6148", 30, 150},
  };
  return rows;
}

core::TuningRun run_dgemm_technique(const simhw::MachineSpec& machine, int sockets,
                                    core::Technique technique,
                                    std::uint64_t min_count,
                                    std::uint64_t hand_tuned_iterations,
                                    std::uint64_t seed) {
  simhw::SimOptions sim;
  sim.sockets_used = sockets;
  sim.seed = seed;
  simhw::SimDgemmBackend backend(machine, sim);
  const auto options =
      core::technique_options(technique, {}, hand_tuned_iterations, min_count);
  const core::Autotuner tuner(core::dgemm_reduced_space(), options);
  return tuner.run(backend);
}

std::string relative_diff(double measured, double paper) {
  if (paper == 0.0) return "-";
  return util::format("%+.1f%%", 100.0 * (measured - paper) / paper);
}

void write_artifact(const std::string& name, const std::string& content) {
  std::filesystem::create_directories("bench_out");
  const std::string path = "bench_out/" + name;
  std::ofstream(path) << content;
  std::cout << "[artifact] wrote " << path << '\n';
}

}  // namespace rooftune::bench
