#!/usr/bin/env python3
"""Check relative links and heading anchors in markdown files.

Usage: check_links.py FILE.md [FILE.md ...]

For every inline markdown link or image whose target is not an absolute
URL, verify the referenced path exists relative to the linking file's
directory.  Anchors are checked too: an in-page `#section` target, or
the `#section` suffix of a relative link to another markdown file, must
match a heading in the target file (GitHub slug rules: lowercase,
punctuation stripped, spaces to hyphens, `-N` suffixes for duplicates).
Bare path mentions in backticks are not checked (they are prose, not
links).  Exits non-zero listing every broken link.  Stdlib only.
"""

import re
import sys
from pathlib import Path

# Inline links/images: [text](target) / ![alt](target).  Reference-style
# definitions ([id]: target) are rare in this repo and skipped.
LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
# Fenced code blocks must not contribute matches (snippets show example
# syntax, not real links), nor fake headings.
FENCE_RE = re.compile(r"^(```|~~~)")
HEADING_RE = re.compile(r"^(#{1,6})\s+(.+?)\s*#*\s*$")


def iter_lines_outside_fences(text):
    in_fence = False
    for lineno, line in enumerate(text.splitlines(), start=1):
        if FENCE_RE.match(line.strip()):
            in_fence = not in_fence
            continue
        if not in_fence:
            yield lineno, line


def iter_links(text):
    for lineno, line in iter_lines_outside_fences(text):
        for match in LINK_RE.finditer(line):
            yield lineno, match.group(1)


def slugify(heading):
    """GitHub's heading-to-anchor rule, close enough for ASCII docs."""
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", heading)  # [text](url)
    text = re.sub(r"[`*_]", "", text)  # inline emphasis/code markers
    text = text.strip().lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def heading_anchors(path, cache={}):
    """The set of anchors the rendered file exposes (with -N dedup)."""
    key = path.resolve()
    if key in cache:
        return cache[key]
    anchors = set()
    counts = {}
    for _, line in iter_lines_outside_fences(path.read_text(encoding="utf-8")):
        match = HEADING_RE.match(line)
        if not match:
            continue
        slug = slugify(match.group(2))
        n = counts.get(slug, 0)
        counts[slug] = n + 1
        anchors.add(slug if n == 0 else f"{slug}-{n}")
    cache[key] = anchors
    return anchors


def is_external(target):
    return target.startswith(("http://", "https://", "mailto:"))


def check_file(path):
    broken = []
    text = path.read_text(encoding="utf-8")
    for lineno, target in iter_links(text):
        if is_external(target):
            continue
        rel, _, anchor = target.partition("#")
        dest = path if not rel else (path.parent / rel).resolve()
        if rel and not dest.exists():
            broken.append((lineno, target))
            continue
        if anchor and dest.suffix == ".md":
            if anchor not in heading_anchors(dest):
                broken.append((lineno, f"{target} (no such heading)"))
    return broken


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    failures = 0
    for name in argv[1:]:
        path = Path(name)
        if not path.exists():
            print(f"{name}: file not found", file=sys.stderr)
            failures += 1
            continue
        for lineno, target in check_file(path):
            print(f"{name}:{lineno}: broken link -> {target}", file=sys.stderr)
            failures += 1
    if failures:
        print(f"{failures} broken link(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
