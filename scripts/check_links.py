#!/usr/bin/env python3
"""Check relative links in markdown files.

Usage: check_links.py FILE.md [FILE.md ...]

For every inline markdown link or image whose target is not an absolute
URL or an in-page anchor, verify the referenced path exists relative to
the linking file's directory.  Bare path mentions in backticks are not
checked (they are prose, not links).  Exits non-zero listing every broken
link.  Stdlib only.
"""

import re
import sys
from pathlib import Path

# Inline links/images: [text](target) / ![alt](target).  Reference-style
# definitions ([id]: target) are rare in this repo and skipped.
LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
# Fenced code blocks must not contribute matches (snippets show example
# syntax, not real links).
FENCE_RE = re.compile(r"^(```|~~~)")


def iter_links(text):
    in_fence = False
    for lineno, line in enumerate(text.splitlines(), start=1):
        if FENCE_RE.match(line.strip()):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for match in LINK_RE.finditer(line):
            yield lineno, match.group(1)


def is_external(target):
    return target.startswith(("http://", "https://", "mailto:", "#"))


def check_file(path):
    broken = []
    text = path.read_text(encoding="utf-8")
    for lineno, target in iter_links(text):
        if is_external(target):
            continue
        rel = target.split("#", 1)[0]  # strip in-page anchor
        if not rel:
            continue
        resolved = (path.parent / rel).resolve()
        if not resolved.exists():
            broken.append((lineno, target))
    return broken


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    failures = 0
    for name in argv[1:]:
        path = Path(name)
        if not path.exists():
            print(f"{name}: file not found", file=sys.stderr)
            failures += 1
            continue
        for lineno, target in check_file(path):
            print(f"{name}:{lineno}: broken link -> {target}", file=sys.stderr)
            failures += 1
    if failures:
        print(f"{failures} broken link(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
