// The journal's headline guarantee: on the simulated backends the
// serialized trace is byte-identical run to run and across ParallelEvaluator
// worker counts, and the analyzer's per-stop-condition accounting partitions
// the run totals exactly.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/autotuner.hpp"
#include "core/parallel_evaluator.hpp"
#include "core/spaces.hpp"
#include "simhw/machine.hpp"
#include "simhw/sim_backend.hpp"
#include "trace/analyze.hpp"
#include "trace/journal.hpp"
#include "trace/reader.hpp"

namespace rooftune::trace {
namespace {

core::TunerOptions traced_options(TraceJournal& journal) {
  core::TunerOptions options;
  options.invocations = 3;
  options.iterations = 25;
  options.inner_prune = true;
  options.outer_prune = true;
  options.trace = &journal;
  return options;
}

core::ParallelEvaluator::BackendFactory sim_factory() {
  return [] {
    simhw::SimOptions sim;
    sim.seed = 2021;
    return std::make_unique<simhw::SimDgemmBackend>(
        simhw::machine_by_name("gold6148"), sim);
  };
}

void finish(TraceJournal& journal, const core::TuningRun& run,
            const char* strategy) {
  journal.begin_run({"dgemm", "GFLOP/s", strategy});
  RunSummary summary;
  summary.configs = run.results.size();
  summary.pruned = run.pruned_configs;
  summary.invocations = run.total_invocations;
  summary.iterations = run.total_iterations;
  if (run.best_index.has_value()) summary.best = run.best_value();
  journal.finish_run(summary);
}

/// One traced parallel run over the reduced DGEMM space, serialized.
std::string parallel_journal(
    std::size_t workers, bool racing,
    core::SchedulerMode scheduler = core::SchedulerMode::Pipeline,
    std::size_t lookahead = 1,
    core::ParallelEvaluator::BackendFactory factory = sim_factory()) {
  TraceJournal journal;
  core::TunerOptions options = traced_options(journal);
  if (racing) options.strategy = core::SearchStrategy::Racing;

  core::ParallelOptions popts;
  popts.workers = workers;
  popts.deterministic = true;
  popts.wave = 8;
  popts.scheduler = scheduler;
  popts.lookahead = lookahead;
  const core::ParallelEvaluator evaluator(std::move(factory), options, popts);
  const core::TuningRun run =
      evaluator.run(core::dgemm_reduced_space().enumerate());
  finish(journal, run, racing ? "racing" : "exhaustive");
  return journal.str();
}

std::string serial_journal(bool racing) {
  TraceJournal journal;
  core::TunerOptions options = traced_options(journal);
  if (racing) options.strategy = core::SearchStrategy::Racing;
  auto backend = sim_factory()();
  const core::TuningRun run =
      core::Autotuner(core::dgemm_reduced_space(), options).run(*backend);
  finish(journal, run, racing ? "racing" : "exhaustive");
  return journal.str();
}

// --- counter-prune determinism -------------------------------------------
//
// A space built to exercise both counter-prune paths: the first 16 configs
// (n = 256, one racing block) are cache-resident and calibrate the analytic
// OI prediction; the second block mixes thin low-intensity shapes whose
// DRAM bound provably cannot reach the incumbent — skipped before their
// first invocation — with healthy shapes that keep racing.
core::SearchSpace counter_space() {
  core::SearchSpace space;
  space.add_range(core::ParameterRange("n", {256, 4000}));
  space.add_range(core::ParameterRange("m", {256, 4000}));
  space.add_range(core::ParameterRange("k", {1, 2, 4, 8, 64, 128, 192, 256}));
  return space;
}

core::TunerOptions counter_options(TraceJournal& journal) {
  core::TunerOptions options = traced_options(journal);
  options.strategy = core::SearchStrategy::Racing;
  options.counter_prune = true;
  const simhw::MachineSpec machine = simhw::machine_by_name("gold6148");
  options.counter_peak_gflops = machine.theoretical_flops(1).value;
  options.counter_dram_gbps = machine.theoretical_bandwidth(1).value;
  return options;
}

core::ParallelEvaluator::BackendFactory counter_factory() {
  return [] {
    simhw::SimOptions sim;
    sim.seed = 2021;
    sim.counter_model = true;
    return std::make_unique<simhw::SimDgemmBackend>(
        simhw::machine_by_name("gold6148"), sim);
  };
}

std::string counter_serial_journal() {
  TraceJournal journal;
  core::TunerOptions options = counter_options(journal);
  auto backend = counter_factory()();
  const core::TuningRun run =
      core::Autotuner(counter_space(), options).run(*backend);
  finish(journal, run, "racing");
  return journal.str();
}

std::string counter_parallel_journal(std::size_t workers) {
  TraceJournal journal;
  core::TunerOptions options = counter_options(journal);
  core::ParallelOptions popts;
  popts.workers = workers;
  popts.deterministic = true;
  popts.wave = 8;
  const core::ParallelEvaluator evaluator(counter_factory(), options, popts);
  const core::TuningRun run = evaluator.run(counter_space().enumerate());
  finish(journal, run, "racing");
  return journal.str();
}

TEST(TraceDeterminism, CounterPruneJournalIsBitIdenticalRunToRun) {
  const std::string first = counter_serial_journal();
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, counter_serial_journal());
}

// The prune/skip decisions are made on the coordinating thread against the
// block's frozen incumbent, so the journal — including which configurations
// were skipped with zero invocations — must not depend on worker count.
TEST(TraceDeterminism, CounterPruneJournalIsWorkerCountInvariant) {
  const std::string one = counter_parallel_journal(1);
  EXPECT_FALSE(one.empty());
  EXPECT_EQ(one, counter_parallel_journal(2));
  EXPECT_EQ(one, counter_parallel_journal(8));
}

// The journal must actually witness both paths (measured prunes and/or
// calibrated pre-invocation skips), the analyzer must account them, and
// pruning must not move the optimum on this space.
TEST(TraceDeterminism, CounterPruneJournalRecordsSkipsAndKeepsTheOptimum) {
  const Journal journal = read_journal(counter_serial_journal());
  std::uint64_t skips = 0;
  for (const auto& record : journal.records) {
    if (record.event.kind == core::TraceEvent::Kind::CounterPrune &&
        record.event.count == 0) {
      ++skips;
    }
  }
  EXPECT_GT(skips, 0u);

  const TraceAnalysis analysis = analyze(journal);
  ASSERT_TRUE(analysis.counter_prune.has_value());
  EXPECT_EQ(analysis.counter_prune->skipped, skips);
  EXPECT_GE(analysis.counter_prune->pruned, analysis.counter_prune->skipped);
  EXPECT_TRUE(analysis.inconsistencies.empty())
      << analysis.inconsistencies.front();

  // Same space, pruning off: the winner must agree.
  TraceJournal scratch;
  core::TunerOptions plain = counter_options(scratch);
  plain.counter_prune = false;
  auto backend = counter_factory()();
  const core::TuningRun unpruned =
      core::Autotuner(counter_space(), plain).run(*backend);
  auto pruned_backend = counter_factory()();
  TraceJournal scratch2;
  const core::TuningRun pruned =
      core::Autotuner(counter_space(), counter_options(scratch2))
          .run(*pruned_backend);
  ASSERT_TRUE(pruned.best_index.has_value());
  EXPECT_EQ(pruned.best_config(), unpruned.best_config());
  EXPECT_LT(pruned.total_invocations, unpruned.total_invocations);
}

TEST(TraceDeterminism, SerialJournalIsBitIdenticalRunToRun) {
  const std::string first = serial_journal(/*racing=*/false);
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, serial_journal(/*racing=*/false));
}

TEST(TraceDeterminism, RacingJournalIsBitIdenticalRunToRun) {
  const std::string first = serial_journal(/*racing=*/true);
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, serial_journal(/*racing=*/true));
}

TEST(TraceDeterminism, WaveJournalIsWorkerCountInvariant) {
  const std::string one = parallel_journal(1, /*racing=*/false);
  EXPECT_FALSE(one.empty());
  EXPECT_EQ(one, parallel_journal(2, /*racing=*/false));
  EXPECT_EQ(one, parallel_journal(8, /*racing=*/false));
}

TEST(TraceDeterminism, RacingJournalIsWorkerCountInvariant) {
  const std::string one = parallel_journal(1, /*racing=*/true);
  EXPECT_FALSE(one.empty());
  EXPECT_EQ(one, parallel_journal(2, /*racing=*/true));
  EXPECT_EQ(one, parallel_journal(8, /*racing=*/true));
}

// --- pipeline scheduler ----------------------------------------------------

// The pipeline at lookahead 1 runs the same logical schedule as the legacy
// wave engine, so the serialized journals must be byte-identical — for both
// strategies and any worker count.
TEST(TraceDeterminism, PipelineLookahead1JournalMatchesWaveJournal) {
  for (const bool racing : {false, true}) {
    const std::string wave =
        parallel_journal(4, racing, core::SchedulerMode::Wave);
    EXPECT_FALSE(wave.empty());
    EXPECT_EQ(wave, parallel_journal(1, racing, core::SchedulerMode::Pipeline))
        << (racing ? "racing" : "exhaustive");
    EXPECT_EQ(wave, parallel_journal(8, racing, core::SchedulerMode::Pipeline))
        << (racing ? "racing" : "exhaustive");
  }
}

// Lookahead > 1 changes which incumbent snapshot each epoch sees, so the
// journal differs from wave mode — but it must stay a pure function of the
// schedule: byte-identical across 1/2/8 workers and reruns.
TEST(TraceDeterminism, PipelineLookaheadJournalIsWorkerCountInvariant) {
  for (const bool racing : {false, true}) {
    const std::string one =
        parallel_journal(1, racing, core::SchedulerMode::Pipeline, 8);
    EXPECT_FALSE(one.empty());
    EXPECT_EQ(one, parallel_journal(2, racing, core::SchedulerMode::Pipeline, 8));
    EXPECT_EQ(one, parallel_journal(8, racing, core::SchedulerMode::Pipeline, 8));
    // Rerun at the same worker count: no hidden wall-clock dependence.
    EXPECT_EQ(one, parallel_journal(8, racing, core::SchedulerMode::Pipeline, 8));
  }
}

/// One traced surrogate run (seed waves + fit/prune + confirm race).
std::string surrogate_journal(std::size_t workers, std::size_t lookahead) {
  TraceJournal journal;
  core::TunerOptions options = traced_options(journal);
  options.strategy = core::SearchStrategy::Surrogate;
  options.surrogate_seed_budget = 24;
  options.surrogate_confirm_top = 8;

  core::ParallelOptions popts;
  popts.workers = workers;
  popts.deterministic = true;
  popts.wave = 8;
  popts.lookahead = lookahead;
  const core::ParallelEvaluator evaluator(sim_factory(), options, popts);
  const core::TuningRun run = evaluator.run(core::dgemm_reduced_space());
  finish(journal, run, "surrogate");
  return journal.str();
}

// The surrogate pipeline shares one pool across the seed and confirm
// phases; the fitted model, the confirm set, and every traced event must
// still be worker-count- and rerun-invariant at any fixed lookahead.
TEST(TraceDeterminism, SurrogateJournalIsWorkerCountInvariant) {
  for (const std::size_t lookahead : {std::size_t{1}, std::size_t{4}}) {
    const std::string one = surrogate_journal(1, lookahead);
    EXPECT_FALSE(one.empty());
    EXPECT_EQ(one, surrogate_journal(2, lookahead)) << lookahead;
    EXPECT_EQ(one, surrogate_journal(8, lookahead)) << lookahead;
    EXPECT_EQ(one, surrogate_journal(8, lookahead)) << lookahead;
  }
}

// The new kernels carry the same headline guarantee as DGEMM: their
// journals are byte-identical across worker counts (SpMV's hub-row hash,
// the stencil's tiling texture, and both counter models are pure functions
// of (config, seed), never of scheduling).
std::string kernel_parallel_journal(const std::string& kernel,
                                    std::size_t workers) {
  TraceJournal journal;
  const core::TunerOptions options = traced_options(journal);
  core::ParallelEvaluator::BackendFactory factory = [kernel] {
    simhw::SimOptions sim;
    sim.seed = 2021;
    const auto machine = simhw::machine_by_name("2650v4");
    return kernel == "spmv"
               ? std::unique_ptr<core::Backend>(
                     std::make_unique<simhw::SimSpmvBackend>(machine, sim))
               : std::unique_ptr<core::Backend>(
                     std::make_unique<simhw::SimStencilBackend>(machine, sim,
                                                                1024));
  };
  const core::SearchSpace space =
      kernel == "spmv" ? core::spmv_space() : core::stencil_space();
  core::ParallelOptions popts;
  popts.workers = workers;
  popts.deterministic = true;
  popts.wave = 8;
  const core::ParallelEvaluator evaluator(std::move(factory), options, popts);
  const core::TuningRun run = evaluator.run(space.enumerate());
  finish(journal, run, "exhaustive");
  return journal.str();
}

TEST(TraceDeterminism, SpmvJournalIsWorkerCountInvariant) {
  const std::string one = kernel_parallel_journal("spmv", 1);
  EXPECT_FALSE(one.empty());
  EXPECT_EQ(one, kernel_parallel_journal("spmv", 2));
  EXPECT_EQ(one, kernel_parallel_journal("spmv", 8));
}

TEST(TraceDeterminism, StencilJournalIsWorkerCountInvariant) {
  const std::string one = kernel_parallel_journal("stencil", 1);
  EXPECT_FALSE(one.empty());
  EXPECT_EQ(one, kernel_parallel_journal("stencil", 2));
  EXPECT_EQ(one, kernel_parallel_journal("stencil", 8));
}

// SimOptions::cost_skew stretches host wall-clock only: the virtual clock,
// samples, and journal bytes must be identical with the knob on or off.
TEST(TraceDeterminism, CostSkewLeavesJournalBytesUntouched) {
  const auto skewed_factory = [] {
    simhw::SimOptions sim;
    sim.seed = 2021;
    sim.cost_skew = 8.0;
    sim.cost_base_s = 1e-5;  // keep the test fast; any value must do
    return std::make_unique<simhw::SimDgemmBackend>(
        simhw::machine_by_name("gold6148"), sim);
  };
  for (const bool racing : {false, true}) {
    EXPECT_EQ(parallel_journal(4, racing, core::SchedulerMode::Pipeline, 2),
              parallel_journal(4, racing, core::SchedulerMode::Pipeline, 2,
                               skewed_factory))
        << (racing ? "racing" : "exhaustive");
  }
}

/// Every iteration the run spent must be accounted to exactly one
/// iteration-level stop decision, so the per-reason sums partition the
/// summary totals; analyze() flags any mismatch as an inconsistency.
TEST(TraceAnalysisTest, StopAccountingPartitionsSummaryTotals) {
  for (const bool racing : {false, true}) {
    const Journal journal = read_journal(serial_journal(racing));
    const TraceAnalysis analysis = analyze(journal);
    EXPECT_TRUE(analysis.inconsistencies.empty())
        << analysis.inconsistencies.front();

    std::uint64_t decisions = 0;
    std::uint64_t iterations = 0;
    for (const auto& [reason, accounting] : analysis.by_reason) {
      decisions += accounting.decisions;
      iterations += accounting.iterations;
    }
    ASSERT_TRUE(journal.summary.has_value());
    EXPECT_EQ(decisions, journal.summary->invocations);
    EXPECT_EQ(iterations, journal.summary->iterations);
    EXPECT_EQ(decisions, analysis.total_invocations);
    EXPECT_EQ(iterations, analysis.total_iterations);
    if (racing) {
      EXPECT_FALSE(analysis.rounds.empty());
      EXPECT_GT(analysis.saved_iterations, 0u);
    }
  }
}

/// The racing journal must record at least one elimination with the leader
/// it lost to, and the analyzer must surface it on the timeline.
TEST(TraceAnalysisTest, RacingTimelineRecordsEliminations) {
  const Journal journal = read_journal(serial_journal(/*racing=*/true));
  const TraceAnalysis analysis = analyze(journal);
  std::uint64_t eliminated = 0;
  for (const auto& config : analysis.configs) {
    if (config.outcome == "eliminated") {
      ++eliminated;
      EXPECT_TRUE(config.eliminated_round.has_value());
      EXPECT_FALSE(config.elimination_basis.empty());
    }
  }
  EXPECT_GT(eliminated, 0u);
}

}  // namespace
}  // namespace rooftune::trace
