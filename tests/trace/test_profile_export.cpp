#include "trace/profile_export.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "util/json_parse.hpp"

namespace rooftune::trace {
namespace {

using util::ProfileCategory;
using util::ProfileLane;
using util::ProfileRecord;
using util::ProfileSnapshot;

constexpr std::uint64_t kMs = 1'000'000;  // ns per millisecond

ProfileRecord span(ProfileCategory category, std::uint64_t start_ms,
                   std::uint64_t end_ms, double weight = 0.0,
                   std::uint64_t arg = 0) {
  ProfileRecord r;
  r.category = category;
  r.start_ns = start_ms * kMs;
  r.end_ns = end_ms * kMs;
  r.weight = weight;
  r.arg = arg;
  return r;
}

ProfileRecord instant(ProfileCategory category, std::uint64_t at_ms,
                      std::uint64_t arg = 0) {
  return span(category, at_ms, at_ms, 0.0, arg);
}

/// A fixed two-lane run whose cross-check anchors agree exactly: one task
/// on worker-0 (setup 0–5, kernel 5–30, teardown 30–35, all inside a
/// 0–40 ms task-exec), idle 40–100 ms; the coordinator runs one racing
/// round 0–100 ms with a 10 ms commit wait and a journal flush.
ProfileDocument synthetic_document() {
  ProfileDocument doc;

  ProfileLane coordinator;
  coordinator.thread_name = "coordinator";
  coordinator.records.push_back(span(ProfileCategory::RacingRound, 0, 100));
  coordinator.records.push_back(
      span(ProfileCategory::CommitWait, 10, 20, 0.0, 1));
  coordinator.records.push_back(span(ProfileCategory::JournalFlush, 90, 95));
  coordinator.records.push_back(instant(ProfileCategory::Incumbent, 50, 2));

  ProfileLane worker;
  worker.thread_name = "worker-0";
  worker.records.push_back(span(ProfileCategory::TaskExec, 0, 40));
  worker.records.push_back(span(ProfileCategory::Setup, 0, 5));
  worker.records.push_back(span(ProfileCategory::Kernel, 5, 30, 5.0));
  worker.records.push_back(span(ProfileCategory::Setup, 30, 35, 2.0));
  worker.records.push_back(span(ProfileCategory::PoolIdle, 40, 100));
  worker.records.push_back(instant(ProfileCategory::Steal, 1));
  worker.records.push_back(instant(ProfileCategory::Park, 45));

  doc.snapshot.lanes.push_back(std::move(coordinator));
  doc.snapshot.lanes.push_back(std::move(worker));
  doc.snapshot.overhead_ns_per_record = 50.0;

  doc.meta.benchmark = "synthetic";
  doc.meta.strategy = "racing";
  doc.meta.have_sums = true;
  doc.meta.kernel_s_sum = 5.0;
  doc.meta.setup_s_sum = 2.0;
  core::SchedulerStats sched;
  sched.mode = "pipeline";
  sched.workers = 1;
  sched.lookahead = 1;
  sched.tasks = 1;
  sched.steals = 1;
  sched.parks = 1;
  sched.busy_ns = 40 * kMs;
  sched.idle_ns = 60 * kMs;
  sched.commit_wait_ns = 10 * kMs;
  sched.span_ns = 100 * kMs;
  doc.meta.sched = sched;
  doc.meta.overhead_ns_per_record = 50.0;
  return doc;
}

TEST(ProfileExportTest, RoundTripPreservesEveryField) {
  const ProfileDocument original = synthetic_document();
  const std::string json =
      write_profile_json(original.snapshot, original.meta);
  const ProfileDocument parsed = parse_profile(json);

  EXPECT_EQ(parsed.meta.schema_version, kProfileSchemaVersion);
  EXPECT_EQ(parsed.meta.benchmark, "synthetic");
  EXPECT_EQ(parsed.meta.strategy, "racing");
  EXPECT_TRUE(parsed.meta.have_sums);
  EXPECT_DOUBLE_EQ(parsed.meta.kernel_s_sum, 5.0);
  EXPECT_DOUBLE_EQ(parsed.meta.setup_s_sum, 2.0);
  EXPECT_DOUBLE_EQ(parsed.meta.overhead_ns_per_record, 50.0);
  ASSERT_TRUE(parsed.meta.sched.has_value());
  EXPECT_EQ(parsed.meta.sched->mode, "pipeline");
  EXPECT_EQ(parsed.meta.sched->workers, 1u);
  EXPECT_EQ(parsed.meta.sched->lookahead, 1u);
  EXPECT_EQ(parsed.meta.sched->tasks, 1u);
  EXPECT_EQ(parsed.meta.sched->steals, 1u);
  EXPECT_EQ(parsed.meta.sched->parks, 1u);
  EXPECT_EQ(parsed.meta.sched->busy_ns, 40 * kMs);
  EXPECT_EQ(parsed.meta.sched->idle_ns, 60 * kMs);
  EXPECT_EQ(parsed.meta.sched->commit_wait_ns, 10 * kMs);
  EXPECT_EQ(parsed.meta.sched->span_ns, 100 * kMs);

  ASSERT_EQ(parsed.snapshot.lanes.size(), 2u);
  for (std::size_t lane = 0; lane < 2; ++lane) {
    const ProfileLane& got = parsed.snapshot.lanes[lane];
    const ProfileLane& want = original.snapshot.lanes[lane];
    EXPECT_EQ(got.thread_name, want.thread_name);
    EXPECT_EQ(got.dropped, want.dropped);
    ASSERT_EQ(got.records.size(), want.records.size()) << got.thread_name;
    for (std::size_t i = 0; i < want.records.size(); ++i) {
      EXPECT_EQ(got.records[i].category, want.records[i].category);
      EXPECT_EQ(got.records[i].start_ns, want.records[i].start_ns);
      EXPECT_EQ(got.records[i].end_ns, want.records[i].end_ns);
      EXPECT_EQ(got.records[i].arg, want.records[i].arg);
      EXPECT_DOUBLE_EQ(got.records[i].weight, want.records[i].weight);
    }
  }
}

TEST(ProfileExportTest, WritesChromeTraceEventShapes) {
  const ProfileDocument doc = synthetic_document();
  const std::string json = write_profile_json(doc.snapshot, doc.meta);
  // Loadable by Perfetto: complete events, thread-scoped instants, and
  // metadata events naming the lanes.
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(json.find("\"process_name\""), std::string::npos);
  // Kernel span 5–30 ms: ts/dur are microseconds in this format.
  EXPECT_NE(json.find("\"ts\":5000,\"dur\":25000"), std::string::npos);
  // Document parses as plain JSON too.
  EXPECT_NO_THROW(util::parse_json(json));
}

TEST(ProfileExportTest, RejectsDroppedRecordsOnlyInCounters) {
  ProfileDocument doc = synthetic_document();
  doc.snapshot.lanes[1].dropped = 17;
  const std::string json = write_profile_json(doc.snapshot, doc.meta);
  const ProfileDocument parsed = parse_profile(json);
  EXPECT_EQ(parsed.snapshot.lanes[1].dropped, 17u);
  EXPECT_EQ(parsed.snapshot.total_dropped(), 17u);
}

TEST(ProfileExportTest, MalformedJsonReportsLineAndColumn) {
  try {
    parse_profile("{\n  \"traceEvents\": [,]\n}");
    FAIL() << "expected parse failure";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("profile: malformed JSON"), std::string::npos) << what;
    EXPECT_NE(what.find("line 2"), std::string::npos) << what;
    EXPECT_NE(what.find("column"), std::string::npos) << what;
  }
}

TEST(ProfileExportTest, RejectsNonProfileDocuments) {
  EXPECT_THROW(parse_profile("{\"other\":1}"), std::runtime_error);
}

TEST(ProfileExportTest, RejectsNewerSchemaVersions) {
  const ProfileDocument doc = synthetic_document();
  std::string json = write_profile_json(doc.snapshot, doc.meta);
  const std::string needle = "\"schema_version\":1";
  const auto pos = json.find(needle);
  ASSERT_NE(pos, std::string::npos);
  json.replace(pos, needle.size(), "\"schema_version\":999");
  try {
    parse_profile(json);
    FAIL() << "expected schema rejection";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("999"), std::string::npos);
  }
}

// Golden render of the fixed synthetic document: the category hierarchy
// (with nesting and self time), the worker-lane Gantt, the longest-spans
// table, critical path, overhead, and a cross-check where every anchor
// agrees exactly.  Any intentional format change updates this in one place.
TEST(ProfileReportTest, GoldenRender) {
  ProfileReportOptions options;
  options.top_spans = 3;
  options.gantt_width = 20;
  const std::string rendered =
      render_profile_report(synthetic_document(), options);
  const std::string golden = R"(self-profile: synthetic / racing
  lanes 2, spans 8, wall 100.000 ms

category hierarchy (host time; self = minus nested spans)
+-----------------+-------+----------+---------+--------+
| category        | count | total ms | self ms | % wall |
+-----------------+-------+----------+---------+--------+
| task-exec       |     1 |   40.000 |   5.000 |  40.0% |
|   setup         |     2 |   10.000 |  10.000 |  10.0% |
|   kernel        |     1 |   25.000 |  25.000 |  25.0% |
| pool-idle       |     1 |   60.000 |  60.000 |  60.0% |
| racing-round    |     1 |  100.000 |  85.000 | 100.0% |
|   commit-wait   |     1 |   10.000 |  10.000 |  10.0% |
|   journal-flush |     1 |    5.000 |   5.000 |   5.0% |
+-----------------+-------+----------+---------+--------+
instants: steal=1 park=1 incumbent=1

worker lanes (20 cols, 5.000 ms/col)
  coordinator |rrccrrrrrrrrrrrrrrjr| busy 100.0%
  worker-0    |skkkkks#............| busy 40.0%
  legend: #=task s=setup k=kernel .=idle c=commit-wait r=racing-round S=seed F=fit C=confirm j=journal w=checkpoint

top 3 longest spans
+--------------+-------------+----------+---------+-----+
| category     | lane        | start ms |  dur ms | arg |
+--------------+-------------+----------+---------+-----+
| racing-round | coordinator |    0.000 | 100.000 |   0 |
| pool-idle    | worker-0    |   40.000 |  60.000 |   0 |
| task-exec    | worker-0    |    0.000 |  40.000 |   0 |
+--------------+-------------+----------+---------+-----+

critical-path estimate: 100.000 ms covered by work (wall 100.000 ms, parallelism 1.30x)
profiler self-overhead: ~0.001 ms (11 records x 50 ns), dropped 0

cross-check (profiler vs report/scheduler accounting)
+-------------------------+----------+-----------+-------+----+
| quantity                | profiler | reference | delta |    |
+-------------------------+----------+-----------+-------+----+
| kernel time (backend s) |      5 s |       5 s | 0.00% | ok |
| setup time (backend s)  |      2 s |       2 s | 0.00% | ok |
| worker busy (host ms)   |    40 ms |     40 ms | 0.00% | ok |
| worker idle (host ms)   |    60 ms |     60 ms | 0.00% | ok |
| commit wait (host ms)   |    10 ms |     10 ms | 0.00% | ok |
| steals (count)          |        1 |         1 | 0.00% | ok |
| parks (count)           |        1 |         1 | 0.00% | ok |
+-------------------------+----------+-----------+-------+----+
)";
  EXPECT_EQ(rendered, golden);
}

TEST(ProfileReportTest, FlagsDriftAgainstReference) {
  ProfileDocument doc = synthetic_document();
  doc.meta.kernel_s_sum = 6.0;  // profiler weights still sum to 5.0
  const std::string rendered = render_profile_report(doc);
  EXPECT_NE(rendered.find("DRIFT"), std::string::npos);
}

TEST(ProfileReportTest, RendersWithoutRunContext) {
  ProfileDocument doc = synthetic_document();
  doc.meta.have_sums = false;
  doc.meta.sched.reset();
  const std::string rendered = render_profile_report(doc);
  EXPECT_NE(rendered.find("category hierarchy"), std::string::npos);
  EXPECT_NE(rendered.find("worker lanes"), std::string::npos);
}

}  // namespace
}  // namespace rooftune::trace
