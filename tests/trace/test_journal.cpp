// TraceJournal serialization: golden-file schema stability, stop-reason
// round-tripping through the parser, and reader strictness.

#include "trace/journal.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "core/autotuner.hpp"
#include "core/search_space.hpp"
#include "core/trace_events.hpp"
#include "trace/reader.hpp"
#include "../core/fake_backend.hpp"

namespace rooftune::trace {
namespace {

using core::StopReason;
using Kind = core::TraceEvent::Kind;

core::Configuration config_x(std::int64_t x) {
  return core::Configuration({{"x", x}});
}

/// Serialized journal of a tiny scripted run: two configurations, two
/// invocations each, on the fully deterministic FakeBackend.
std::string scripted_journal() {
  core::SearchSpace space;
  space.add_range(core::ParameterRange("x", {1, 2}));

  core::TunerOptions options;
  options.invocations = 2;
  options.iterations = 3;

  core::testing::FakeBackend backend(100.0);
  backend.set_value(config_x(2), 150.0);

  TraceJournal journal;
  options.trace = &journal;
  const core::TuningRun run = core::Autotuner(space, options).run(backend);

  journal.begin_run({"fake", backend.metric_name(), "exhaustive"});
  RunSummary summary;
  summary.configs = run.results.size();
  summary.pruned = run.pruned_configs;
  summary.invocations = run.total_invocations;
  summary.iterations = run.total_iterations;
  summary.best = run.best_value();
  journal.finish_run(summary);
  return journal.str();
}

// The serialized journal for the scripted run above, checked in verbatim.
// FakeBackend values are programmed constants and every duration is exact
// in binary floating point, so this text is portable; a diff here means
// the schema changed and docs/observability.md must change with it.
const char kGoldenJournal[] =
    R"({"t":"run","v":1,"benchmark":"fake","metric":"widgets/s","strategy":"exhaustive"}
{"t":"stop","epoch":0,"ord":0,"inv":0,"rank":1,"cfg":{"x":1},"level":"iteration","reason":"max-count","count":3,"mean":100,"ci":[100,100],"kernel_s":0.03,"incumbent":null}
{"t":"invocation","epoch":0,"ord":0,"inv":0,"rank":2,"cfg":{"x":1},"reason":"max-count","iterations":3,"kernel_s":0.03,"setup_s":0.1,"wall_s":0.13,"det":false,"mean":100,"stddev":0,"rising":false}
{"t":"stop","epoch":0,"ord":0,"inv":1,"rank":1,"cfg":{"x":1},"level":"iteration","reason":"max-count","count":3,"mean":100,"ci":[100,100],"kernel_s":0.03,"incumbent":null}
{"t":"invocation","epoch":0,"ord":0,"inv":1,"rank":2,"cfg":{"x":1},"reason":"max-count","iterations":3,"kernel_s":0.03,"setup_s":0.1,"wall_s":0.13,"det":false,"mean":100,"stddev":0,"rising":false}
{"t":"stop","epoch":0,"ord":0,"inv":1,"rank":3,"cfg":{"x":1},"level":"invocation","reason":"max-count","count":2,"mean":100,"ci":[100,100],"incumbent":null}
{"t":"config-done","epoch":0,"ord":0,"inv":1,"rank":4,"cfg":{"x":1},"reason":"max-count","value":100,"pruned":false,"iterations":6,"kernel_s":0.06,"setup_s":0.2}
{"t":"incumbent","epoch":0,"ord":0,"inv":1,"rank":7,"cfg":{"x":1},"value":100}
{"t":"stop","epoch":1,"ord":1,"inv":0,"rank":1,"cfg":{"x":2},"level":"iteration","reason":"max-count","count":3,"mean":150,"ci":[150,150],"kernel_s":0.03,"incumbent":100}
{"t":"invocation","epoch":1,"ord":1,"inv":0,"rank":2,"cfg":{"x":2},"reason":"max-count","iterations":3,"kernel_s":0.03,"setup_s":0.1,"wall_s":0.13,"det":false,"mean":150,"stddev":0,"rising":false}
{"t":"stop","epoch":1,"ord":1,"inv":1,"rank":1,"cfg":{"x":2},"level":"iteration","reason":"max-count","count":3,"mean":150,"ci":[150,150],"kernel_s":0.03,"incumbent":100}
{"t":"invocation","epoch":1,"ord":1,"inv":1,"rank":2,"cfg":{"x":2},"reason":"max-count","iterations":3,"kernel_s":0.03,"setup_s":0.1,"wall_s":0.13,"det":false,"mean":150,"stddev":0,"rising":false}
{"t":"stop","epoch":1,"ord":1,"inv":1,"rank":3,"cfg":{"x":2},"level":"invocation","reason":"max-count","count":2,"mean":150,"ci":[150,150],"incumbent":100}
{"t":"config-done","epoch":1,"ord":1,"inv":1,"rank":4,"cfg":{"x":2},"reason":"max-count","value":150,"pruned":false,"iterations":6,"kernel_s":0.06,"setup_s":0.2}
{"t":"incumbent","epoch":1,"ord":1,"inv":1,"rank":7,"cfg":{"x":2},"value":150}
{"t":"summary","configs":2,"pruned":0,"invocations":4,"iterations":12,"best":150}
)";

TEST(TraceJournal, GoldenFile) {
  EXPECT_EQ(scripted_journal(), kGoldenJournal);
}

TEST(TraceJournal, GoldenFileIsStableAcrossRuns) {
  EXPECT_EQ(scripted_journal(), scripted_journal());
}

TEST(TraceJournal, GoldenFileRoundTripsThroughReader) {
  const Journal parsed = read_journal(scripted_journal());
  EXPECT_EQ(parsed.header.benchmark, "fake");
  EXPECT_EQ(parsed.header.metric, "widgets/s");
  EXPECT_EQ(parsed.header.strategy, "exhaustive");
  EXPECT_EQ(parsed.header.version, 1);
  ASSERT_TRUE(parsed.summary.has_value());
  EXPECT_EQ(parsed.summary->configs, 2u);
  EXPECT_EQ(parsed.summary->invocations, 4u);
  EXPECT_EQ(parsed.summary->iterations, 12u);
  ASSERT_TRUE(parsed.summary->best.has_value());
  EXPECT_EQ(*parsed.summary->best, 150.0);

  // 2 configs x (2 invocations x (stop + span) + outer stop + config-done)
  // + 2 incumbent updates.
  EXPECT_EQ(parsed.records.size(), 14u);
}

TEST(TraceJournal, EveryStopReasonRoundTrips) {
  for (const StopReason reason :
       {StopReason::None, StopReason::MaxTime, StopReason::MaxCount,
        StopReason::Converged, StopReason::PrunedByBest}) {
    TraceJournal journal;
    journal.begin_run({"fake", "widgets/s", "exhaustive"});

    core::TraceEvent stop;
    stop.kind = Kind::StopDecision;
    stop.rank = 1;
    stop.reason = reason;
    stop.config = config_x(1);
    journal.emit(stop);

    core::TraceEvent done;
    done.kind = Kind::ConfigDone;
    done.rank = 4;
    done.reason = reason;
    done.config = config_x(1);
    journal.emit(done);

    const Journal parsed = read_journal(journal.str());
    ASSERT_EQ(parsed.records.size(), 2u) << core::to_string(reason);
    EXPECT_EQ(parsed.records[0].event.reason, reason) << core::to_string(reason);
    EXPECT_EQ(parsed.records[1].event.reason, reason) << core::to_string(reason);
  }
}

TEST(TraceReader, RejectsUnknownStopReason) {
  const std::string text =
      "{\"t\":\"run\",\"v\":1,\"benchmark\":\"fake\",\"metric\":\"m\","
      "\"strategy\":\"exhaustive\"}\n"
      "{\"t\":\"config-done\",\"epoch\":0,\"ord\":0,\"inv\":0,\"rank\":4,"
      "\"reason\":\"coffee-break\",\"value\":1,\"pruned\":false,"
      "\"iterations\":1,\"kernel_s\":0,\"setup_s\":0}\n";
  EXPECT_THROW((void)read_journal(text), std::runtime_error);
}

TEST(TraceReader, RejectsUnknownRecordType) {
  const std::string text =
      "{\"t\":\"run\",\"v\":1,\"benchmark\":\"fake\",\"metric\":\"m\","
      "\"strategy\":\"exhaustive\"}\n"
      "{\"t\":\"mystery\",\"epoch\":0,\"ord\":0,\"inv\":0,\"rank\":0}\n";
  EXPECT_THROW((void)read_journal(text), std::runtime_error);
}

// Counter-prune records — both shapes: the measured-signature prune
// (count > 0, rank 5) and the calibrated pre-invocation skip (count == 0,
// rank 1) — must survive the strict reader with every field intact.
TEST(TraceJournal, CounterPruneRecordsRoundTrip) {
  TraceJournal journal;
  journal.begin_run({"dgemm", "GFLOP/s", "racing"});

  core::TraceEvent prune;
  prune.kind = Kind::CounterPrune;
  prune.epoch = 2;
  prune.config_ordinal = 7;
  prune.invocation = 2;
  prune.rank = 5;
  prune.config = config_x(7);
  prune.basis = "dram-bound";
  prune.bound = 61.25;
  prune.margin = 0.25;
  prune.oi = 0.957;
  prune.widened = true;
  prune.incumbent = 412.5;
  prune.count = 2;
  prune.mean = 44.875;
  journal.emit(prune);

  core::TraceEvent skip;
  skip.kind = Kind::CounterPrune;
  skip.epoch = 3;
  skip.config_ordinal = 21;
  skip.invocation = 3;
  skip.rank = 1;  // pre-invocation: before the round's invocation span
  skip.config = config_x(21);
  skip.basis = "dram-bound";
  skip.bound = 12.5;
  skip.margin = 0.25;
  skip.oi = 0.195;  // predicted, not measured
  skip.widened = false;
  skip.incumbent = 412.5;
  skip.count = 0;  // never invoked
  skip.mean = 0.0;
  journal.emit(skip);

  const Journal parsed = read_journal(journal.str());
  ASSERT_EQ(parsed.records.size(), 2u);
  const core::TraceEvent& p = parsed.records[0].event;
  EXPECT_EQ(p.kind, Kind::CounterPrune);
  EXPECT_EQ(p.epoch, 2u);
  EXPECT_EQ(p.config_ordinal, 7u);
  EXPECT_EQ(p.rank, 5);
  EXPECT_EQ(p.basis, "dram-bound");
  EXPECT_DOUBLE_EQ(p.bound, 61.25);
  EXPECT_DOUBLE_EQ(p.margin, 0.25);
  ASSERT_TRUE(p.oi.has_value());
  EXPECT_DOUBLE_EQ(*p.oi, 0.957);
  EXPECT_TRUE(p.widened);
  ASSERT_TRUE(p.incumbent.has_value());
  EXPECT_DOUBLE_EQ(*p.incumbent, 412.5);
  EXPECT_EQ(p.count, 2u);
  EXPECT_DOUBLE_EQ(p.mean, 44.875);

  const core::TraceEvent& s = parsed.records[1].event;
  EXPECT_EQ(s.rank, 1);
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.bound, 12.5);
  ASSERT_TRUE(s.oi.has_value());
  EXPECT_DOUBLE_EQ(*s.oi, 0.195);
  EXPECT_FALSE(s.widened);
}

TEST(TraceReader, ParsesPerfDegradedRunHeader) {
  const std::string text =
      "{\"t\":\"run\",\"v\":1,\"benchmark\":\"dgemm\",\"metric\":\"GFLOP/s\","
      "\"strategy\":\"racing\",\"perf_degraded\":"
      "\"perf_event_paranoid forbids counters\"}\n";
  const Journal parsed = read_journal(text);
  EXPECT_EQ(parsed.header.perf_degraded,
            "perf_event_paranoid forbids counters");
}

TEST(TraceReader, RequiresHeader) {
  EXPECT_THROW((void)read_journal("{\"t\":\"round\",\"epoch\":0,\"ord\":0,"
                                  "\"inv\":0,\"rank\":6,\"before\":1,"
                                  "\"after\":1,\"eliminated\":0,"
                                  "\"finished\":0}\n"),
               std::runtime_error);
}

// Every parse failure — malformed JSON, a missing key caught by the
// JsonValue accessors, an unknown tag — names the journal line and shows a
// prefix of the offending text, so a truncated or hand-edited journal is
// diagnosable without opening it in an editor.
TEST(TraceReader, ParseErrorsReportLineNumberAndOffendingLine) {
  const std::string header =
      "{\"t\":\"run\",\"v\":1,\"benchmark\":\"fake\",\"metric\":\"m\","
      "\"strategy\":\"exhaustive\"}\n";

  const auto expect_context = [](const std::string& text,
                                 const std::string& line_tag,
                                 const std::string& prefix_fragment) {
    try {
      (void)read_journal(text);
      FAIL() << "expected read_journal to throw";
    } catch (const std::runtime_error& e) {
      const std::string what = e.what();
      EXPECT_NE(what.find(line_tag), std::string::npos) << what;
      EXPECT_NE(what.find("offending line:"), std::string::npos) << what;
      EXPECT_NE(what.find(prefix_fragment), std::string::npos) << what;
    }
  };

  // Malformed JSON on line 2.
  expect_context(header + "{\"t\":\"round\",,,\n", "trace journal line 2",
                 "{\"t\":\"round\",,,");
  // Missing required key ("value") on line 2: the accessor throw gets the
  // same context.
  expect_context(header +
                     "{\"t\":\"incumbent\",\"epoch\":0,\"ord\":0,\"inv\":0,"
                     "\"rank\":3}\n",
                 "trace journal line 2", "\"t\":\"incumbent\"");
  // Unknown record type on line 3 (after a blank line-free record).
  expect_context(header +
                     "{\"t\":\"round\",\"epoch\":0,\"ord\":0,\"inv\":0,"
                     "\"rank\":6,\"before\":1,\"after\":1,\"eliminated\":0,"
                     "\"finished\":0}\n"
                     "{\"t\":\"mystery\"}\n",
                 "trace journal line 3", "mystery");
}

TEST(TraceReader, LongOffendingLinesAreTruncatedInErrors) {
  std::string long_line = "{\"t\":\"mystery\",\"pad\":\"";
  long_line.append(300, 'x');
  long_line += "\"}";
  try {
    (void)read_journal(
        "{\"t\":\"run\",\"v\":1,\"benchmark\":\"fake\",\"metric\":\"m\","
        "\"strategy\":\"exhaustive\"}\n" +
        long_line + "\n");
    FAIL() << "expected read_journal to throw";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("..."), std::string::npos) << what;
    EXPECT_LT(what.size(), long_line.size()) << "error must truncate";
  }
}

}  // namespace
}  // namespace rooftune::trace
