// The portable tuning export (schema v1, docs/formats.md): live-run and
// journal-sourced writers, the parse -> re-export byte-identity guarantee,
// bit-identical replay of the recorded optimum under all three search
// strategies and all three simulated kernels, the pinned golden fixture,
// and the newer-schema rejections (export document and trace journal).

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "core/autotuner.hpp"
#include "core/spaces.hpp"
#include "simhw/machine.hpp"
#include "simhw/sim_backend.hpp"
#include "telemetry/environment.hpp"
#include "trace/export.hpp"
#include "trace/journal.hpp"
#include "trace/reader.hpp"

namespace rooftune::trace {
namespace {

core::TunerOptions small_options(core::SearchStrategy strategy) {
  core::TunerOptions options;
  options.invocations = 3;
  options.iterations = 20;
  options.inner_prune = true;
  options.outer_prune = true;
  options.strategy = strategy;
  return options;
}

std::unique_ptr<core::Backend> backend_for(const std::string& benchmark) {
  simhw::SimOptions sim;
  sim.sockets_used = 1;
  sim.seed = 2021;
  const auto machine = simhw::machine_by_name("2650v4");
  if (benchmark == "spmv") {
    return std::make_unique<simhw::SimSpmvBackend>(machine, sim);
  }
  if (benchmark == "stencil") {
    return std::make_unique<simhw::SimStencilBackend>(machine, sim, 1024);
  }
  return std::make_unique<simhw::SimDgemmBackend>(machine, sim);
}

core::SearchSpace space_for(const std::string& benchmark) {
  if (benchmark == "spmv") return core::spmv_space();
  if (benchmark == "stencil") return core::stencil_space();
  return core::dgemm_narrowed_space();
}

/// The tentpole guarantee: export -> parse -> replay reproduces every
/// configuration value and the optimum bit-identically, and a re-export of
/// the parsed document is byte-identical.
void expect_round_trip(const std::string& benchmark,
                       core::SearchStrategy strategy) {
  const auto space = space_for(benchmark);
  const auto options = small_options(strategy);
  const auto backend = backend_for(benchmark);
  const auto run = core::Autotuner(space, options).run(*backend);
  ASSERT_TRUE(run.best_index.has_value());

  const ExportDocument doc = make_export(
      run, space, benchmark, backend->metric_name(), options,
      telemetry::EnvironmentFingerprint::capture());
  const std::string text = write_export(doc);
  const ExportDocument parsed = parse_export(text);
  EXPECT_EQ(write_export(parsed), text) << benchmark << ": re-export differs";

  const ReplayOutcome outcome = replay_export(parsed);
  EXPECT_TRUE(outcome.ok()) << benchmark << ": " << outcome.first_mismatch;
  EXPECT_EQ(outcome.configs, run.results.size());
  EXPECT_EQ(outcome.replayed_best_index, run.best_index);
  EXPECT_EQ(outcome.replayed_best_value, run.best_value());
}

TEST(Export, RoundTripSpmvAllStrategies) {
  expect_round_trip("spmv", core::SearchStrategy::Exhaustive);
  expect_round_trip("spmv", core::SearchStrategy::Racing);
  expect_round_trip("spmv", core::SearchStrategy::Surrogate);
}

TEST(Export, RoundTripStencilAllStrategies) {
  expect_round_trip("stencil", core::SearchStrategy::Exhaustive);
  expect_round_trip("stencil", core::SearchStrategy::Racing);
  expect_round_trip("stencil", core::SearchStrategy::Surrogate);
}

TEST(Export, RoundTripDgemmAllStrategies) {
  expect_round_trip("dgemm", core::SearchStrategy::Exhaustive);
  expect_round_trip("dgemm", core::SearchStrategy::Racing);
  expect_round_trip("dgemm", core::SearchStrategy::Surrogate);
}

TEST(Export, JournalReconstructionReplaysBitIdentically) {
  TraceJournal journal;
  auto options = small_options(core::SearchStrategy::Exhaustive);
  options.trace = &journal;
  const auto space = core::spmv_space();
  const auto backend = backend_for("spmv");
  const auto run = core::Autotuner(space, options).run(*backend);
  journal.begin_run({"spmv", backend->metric_name(),
                     core::to_string(options.strategy)});
  journal.finish_run({});

  const Journal parsed_journal = read_journal(journal.str());
  const ExportDocument doc =
      export_from_journal(parsed_journal, core::spmv_space());
  EXPECT_EQ(doc.benchmark, "spmv");
  EXPECT_EQ(doc.results.size(), run.results.size());
  EXPECT_EQ(doc.best_index, run.best_index);

  const ReplayOutcome outcome = replay_export(doc);
  EXPECT_TRUE(outcome.ok()) << outcome.first_mismatch;

  // Byte-identity holds for journal-sourced documents too.
  EXPECT_EQ(write_export(parse_export(write_export(doc))), write_export(doc));
}

TEST(Export, EnvironmentFingerprintRoundTrips) {
  telemetry::EnvironmentFingerprint env;
  env.cpu_model = "Test CPU";
  env.uarch = "testarch";
  env.logical_cpus = 8;
  env.physical_cores = 4;
  env.smt = 2;
  env.numa_nodes = 1;
  env.governor = "performance";
  env.freq_min_khz = 1200000;
  env.freq_max_khz = 3000000;
  env.turbo = "off";
  env.thp = "madvise";
  env.aslr = "2";
  env.compiler = "g++ 13";
  env.build = "Release";

  ExportDocument doc;
  doc.benchmark = "env";
  doc.metric = "GFLOP/s";
  doc.technique.strategy = "exhaustive";
  doc.environment = env;
  doc.space.add_range(core::ParameterRange("n", {1}));

  const ExportDocument parsed = parse_export(write_export(doc));
  ASSERT_TRUE(parsed.environment.has_value());
  EXPECT_EQ(parsed.environment->stable_hash(), env.stable_hash());
  EXPECT_EQ(parsed.environment->cpu_model, "Test CPU");
}

// Pinned schema-v1 fixture: these exact bytes must keep parsing (and
// re-serializing to themselves) for as long as kExportSchemaVersion == 1.
// A failure here means the written format changed without a version bump.
constexpr const char kGoldenV1[] =
    R"({"format":"rooftune-export","version":1,"benchmark":"golden","metric":"GFLOP/s","technique":{"strategy":"exhaustive","order":"forward","invocations":2,"iterations":4,"timeout_s":10},"environment":null,"space":{"params":[{"name":"n","values":[1,2]}],"constraints":[]},"results":[{"config":{"n":1},"value":10.5,"pruned":false,"stop":"max-count","iterations":8,"kernel_s":0.5,"setup_s":1,"invocations":[{"mean":10.5,"stddev":0,"iterations":4,"stop":"max-count","kernel_s":0.25,"setup_s":0.5,"wall_s":1},{"mean":10.5,"stddev":0,"iterations":4,"stop":"max-count","kernel_s":0.25,"setup_s":0.5,"wall_s":1}]},{"config":{"n":2},"value":12.25,"pruned":false,"stop":"max-count","iterations":8,"kernel_s":0.5,"setup_s":1,"invocations":[{"mean":12.25,"stddev":0,"iterations":4,"stop":"max-count","kernel_s":0.25,"setup_s":0.5,"wall_s":1},{"mean":12.25,"stddev":0,"iterations":4,"stop":"max-count","kernel_s":0.25,"setup_s":0.5,"wall_s":1}]}],"best":{"index":1,"config":{"n":2},"value":12.25}})";

ExportDocument golden_document() {
  ExportDocument doc;
  doc.benchmark = "golden";
  doc.metric = "GFLOP/s";
  doc.technique.strategy = "exhaustive";
  doc.technique.order = "forward";
  doc.technique.invocations = 2;
  doc.technique.iterations = 4;
  doc.technique.timeout_s = 10.0;
  doc.space.add_range(core::ParameterRange("n", {1, 2}));
  for (int n = 1; n <= 2; ++n) {
    ExportConfigResult r;
    r.config = core::Configuration({{"n", n}});
    r.value = n == 1 ? 10.5 : 12.25;
    r.stop = "max-count";
    r.iterations = 8;
    r.kernel_s = 0.5;
    r.setup_s = 1.0;
    for (int j = 0; j < 2; ++j) {
      ExportInvocation inv;
      inv.mean = r.value;
      inv.iterations = 4;
      inv.stop = "max-count";
      inv.kernel_s = 0.25;
      inv.setup_s = 0.5;
      inv.wall_s = 1.0;
      r.invocations.push_back(inv);
    }
    doc.results.push_back(std::move(r));
  }
  doc.best_index = 1;
  return doc;
}

TEST(Export, GoldenV1FixtureIsPinned) {
  EXPECT_EQ(write_export(golden_document()), kGoldenV1);
  const ExportDocument parsed = parse_export(kGoldenV1);
  EXPECT_EQ(parsed.version, 1);
  EXPECT_EQ(parsed.benchmark, "golden");
  ASSERT_EQ(parsed.results.size(), 2u);
  EXPECT_EQ(parsed.best_index, std::optional<std::size_t>(1));
  EXPECT_EQ(write_export(parsed), kGoldenV1);
  const ReplayOutcome outcome = replay_export(parsed);
  EXPECT_TRUE(outcome.ok()) << outcome.first_mismatch;
}

TEST(Export, RejectsNewerSchemaVersionWithDistinctError) {
  std::string newer = kGoldenV1;
  const auto pos = newer.find("\"version\":1");
  ASSERT_NE(pos, std::string::npos);
  newer.replace(pos, 11, "\"version\":99");
  try {
    (void)parse_export(newer);
    FAIL() << "expected parse_export to throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("schema version 99"),
              std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("newer"), std::string::npos);
  }
}

TEST(Export, RejectsNonExportDocuments) {
  EXPECT_THROW((void)parse_export("{\"format\":\"something-else\"}"),
               std::runtime_error);
  EXPECT_THROW((void)parse_export("not json at all"), std::runtime_error);
}

TEST(Export, MalformedJsonReportsLineAndColumn) {
  try {
    (void)parse_export("{\n  \"format\": \"rooftune-export\",\n  oops\n}");
    FAIL() << "expected parse_export to throw";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("export: malformed JSON"), std::string::npos) << what;
    EXPECT_NE(what.find("line 3"), std::string::npos) << what;
    EXPECT_NE(what.find("column"), std::string::npos) << what;
  }
}

TEST(Export, ReplayFlagsTamperedValues) {
  std::string tampered = kGoldenV1;
  const auto pos = tampered.find("\"value\":10.5");
  ASSERT_NE(pos, std::string::npos);
  tampered.replace(pos, 12, "\"value\":11.5");
  const ReplayOutcome outcome = replay_export(parse_export(tampered));
  EXPECT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.value_mismatches, 1u);
  EXPECT_NE(outcome.first_mismatch.find("n=1"), std::string::npos)
      << outcome.first_mismatch;
}

TEST(JournalReader, RejectsNewerSchemaVersionWithDistinctError) {
  const std::string newer =
      "{\"t\":\"run\",\"v\":99,\"benchmark\":\"dgemm\",\"metric\":\"GFLOP/"
      "s\",\"strategy\":\"exhaustive\"}\n";
  try {
    (void)read_journal(newer);
    FAIL() << "expected read_journal to throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("journal schema version 99"),
              std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("upgrade rooftune"), std::string::npos);
  }
}

TEST(JournalReader, AcceptsCurrentSchemaVersion) {
  const std::string current =
      "{\"t\":\"run\",\"v\":" + std::to_string(kJournalSchemaVersion) +
      ",\"benchmark\":\"dgemm\",\"metric\":\"GFLOP/s\",\"strategy\":"
      "\"exhaustive\"}\n";
  EXPECT_EQ(read_journal(current).header.version, kJournalSchemaVersion);
}

}  // namespace
}  // namespace rooftune::trace
