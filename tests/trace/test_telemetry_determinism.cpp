// Telemetry's determinism boundary: simulated telemetry spans are pure
// functions of per-invocation accounted durations, so the sidecar is
// byte-identical run to run and across ParallelEvaluator worker counts —
// while the journal itself stays byte-identical whether or not telemetry
// (or provenance) rides along, because spans are routed to the sidecar and
// never serialized into journal records.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/autotuner.hpp"
#include "core/parallel_evaluator.hpp"
#include "core/spaces.hpp"
#include "simhw/machine.hpp"
#include "simhw/sim_backend.hpp"
#include "telemetry/environment.hpp"
#include "telemetry/report.hpp"
#include "telemetry/sidecar.hpp"
#include "trace/journal.hpp"
#include "trace/reader.hpp"

namespace rooftune::trace {
namespace {

core::ParallelEvaluator::BackendFactory thermal_factory() {
  return [] {
    simhw::SimOptions sim;
    sim.seed = 2021;
    sim.thermal_tau_s = 0.2;
    sim.throttle_factor = 0.8;
    sim.pkg_power_w = 105.0;
    sim.dram_power_w = 12.0;
    return std::make_unique<simhw::SimDgemmBackend>(
        simhw::machine_by_name("gold6148"), sim);
  };
}

core::TunerOptions traced_options(TraceJournal& journal) {
  core::TunerOptions options;
  options.invocations = 3;
  options.iterations = 25;
  options.inner_prune = true;
  options.outer_prune = true;
  options.trace = &journal;
  return options;
}

struct TracedRun {
  std::string journal;
  std::string sidecar;
};

/// One traced run over the narrowed DGEMM space with a telemetry sidecar
/// attached; workers == 0 means the serial Autotuner.
TracedRun traced_run(std::size_t workers,
                     bool with_provenance = false) {
  telemetry::TelemetrySidecar sidecar;
  JournalOptions journal_options;
  journal_options.sidecar = &sidecar;
  if (with_provenance) {
    journal_options.provenance = telemetry::EnvironmentFingerprint::capture();
  }
  TraceJournal journal(journal_options);
  core::TunerOptions options = traced_options(journal);

  core::TuningRun run;
  if (workers == 0) {
    auto backend = thermal_factory()();
    run = core::Autotuner(core::dgemm_narrowed_space(), options).run(*backend);
  } else {
    core::ParallelOptions popts;
    popts.workers = workers;
    popts.deterministic = true;
    popts.wave = 8;
    const core::ParallelEvaluator evaluator(thermal_factory(), options, popts);
    run = evaluator.run(core::dgemm_narrowed_space().enumerate());
  }
  journal.begin_run({"dgemm", "GFLOP/s", "exhaustive"});
  RunSummary summary;
  summary.configs = run.results.size();
  if (run.best_index.has_value()) summary.best = run.best_value();
  journal.finish_run(summary);
  return {journal.str(), sidecar.str()};
}

TEST(TelemetryDeterminism, SidecarIsBitIdenticalRunToRun) {
  const TracedRun first = traced_run(0);
  EXPECT_FALSE(first.sidecar.empty());
  EXPECT_EQ(first.sidecar, traced_run(0).sidecar);
}

TEST(TelemetryDeterminism, SidecarIsWorkerCountInvariant) {
  const TracedRun one = traced_run(1);
  EXPECT_FALSE(one.sidecar.empty());
  EXPECT_EQ(one.sidecar, traced_run(2).sidecar);
  EXPECT_EQ(one.sidecar, traced_run(8).sidecar);
}

TEST(TelemetryDeterminism, JournalBytesAreUnchangedByTelemetry) {
  // The same schedule without any sidecar or provenance.
  TraceJournal bare;
  core::TunerOptions options = traced_options(bare);
  auto backend = thermal_factory()();
  const core::TuningRun run =
      core::Autotuner(core::dgemm_narrowed_space(), options).run(*backend);
  bare.begin_run({"dgemm", "GFLOP/s", "exhaustive"});
  RunSummary summary;
  summary.configs = run.results.size();
  if (run.best_index.has_value()) summary.best = run.best_value();
  bare.finish_run(summary);

  EXPECT_EQ(bare.str(), traced_run(0).journal);
}

TEST(TelemetryDeterminism, SyntheticDriftProducesThrottleAndEnergyFigures) {
  const TracedRun run = traced_run(0);
  const telemetry::StabilityReport report =
      telemetry::analyze_stability(telemetry::read_sidecar(run.sidecar));
  ASSERT_FALSE(report.empty());
  EXPECT_GE(report.throttle_events, 1);
  EXPECT_GT(report.worst_drift, telemetry::kDefaultDriftThreshold);
  bool any_energy = false;
  for (const auto& config : report.configs) {
    if (config.joules_per_gflop > 0.0) {
      any_energy = true;
      EXPECT_GT(config.gflops_per_watt, 0.0);
    }
  }
  EXPECT_TRUE(any_energy);
}

TEST(TelemetryDeterminism, ProvenanceHeadsTheJournalAndReadsBack) {
  const TracedRun run = traced_run(0, /*with_provenance=*/true);
  EXPECT_EQ(run.journal.rfind(R"({"t":"provenance")", 0), 0u)
      << run.journal.substr(0, 80);

  const Journal parsed = read_journal(run.journal);
  ASSERT_TRUE(parsed.provenance.has_value());
  EXPECT_EQ(parsed.provenance->stable_hash(),
            telemetry::EnvironmentFingerprint::capture().stable_hash());
}

TEST(TelemetryDeterminism, ReaderRejectsMisplacedProvenance) {
  const TracedRun run = traced_run(0, /*with_provenance=*/true);
  // Move the provenance line behind the run header.
  const auto newline = run.journal.find('\n');
  ASSERT_NE(newline, std::string::npos);
  const std::string provenance = run.journal.substr(0, newline + 1);
  const std::string rest = run.journal.substr(newline + 1);
  const auto second = rest.find('\n');
  ASSERT_NE(second, std::string::npos);
  const std::string reordered =
      rest.substr(0, second + 1) + provenance + rest.substr(second + 1);
  EXPECT_THROW(static_cast<void>(read_journal(reordered)), std::runtime_error);
}

}  // namespace
}  // namespace rooftune::trace
