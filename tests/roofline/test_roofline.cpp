#include "roofline/roofline.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace rooftune::roofline {
namespace {

RooflineModel sample_model() {
  RooflineModel model;
  model.machine_name = "test";
  ComputeCeiling c1{"DGEMM 1S", util::GFlops{400.0}, util::GFlops{422.4}, {}, {}};
  ComputeCeiling c2{"DGEMM 2S", util::GFlops{800.0}, util::GFlops{844.8}, {}, {}};
  MemoryCeiling dram{"DRAM", util::GBps{40.0}, util::GBps{38.4}, {}, {}};
  MemoryCeiling l3{"L3", util::GBps{256.0}, util::GBps{0.0}, {}, {}};
  model.add_compute(c1);
  model.add_compute(c2);
  model.add_memory(dram);
  model.add_memory(l3);
  return model;
}

TEST(RooflineModel, AttainableIsEq2) {
  const auto m = sample_model();
  // Memory-bound region: F = B * I.
  EXPECT_DOUBLE_EQ(m.attainable(util::Intensity{1.0}, 0, 0).value, 40.0);
  EXPECT_DOUBLE_EQ(m.attainable(util::Intensity{5.0}, 0, 0).value, 200.0);
  // Compute-bound region: F = F_p.
  EXPECT_DOUBLE_EQ(m.attainable(util::Intensity{100.0}, 0, 0).value, 400.0);
  // TRIAD's I = 1/12 is deep in the memory-bound region.
  EXPECT_NEAR(m.attainable(util::Intensity{1.0 / 12.0}, 0, 0).value, 40.0 / 12.0,
              1e-12);
}

TEST(RooflineModel, RidgePoint) {
  const auto m = sample_model();
  // I_ridge = F_p / B = 400/40 = 10.
  EXPECT_DOUBLE_EQ(m.ridge_point(0, 0).value, 10.0);
  // At the ridge both formulas agree.
  EXPECT_DOUBLE_EQ(m.attainable(util::Intensity{10.0}, 0, 0).value, 400.0);
  // Faster memory (L3) moves the ridge left.
  EXPECT_LT(m.ridge_point(0, 1).value, m.ridge_point(0, 0).value);
}

TEST(RooflineModel, MemoryBoundClassification) {
  const auto m = sample_model();
  EXPECT_TRUE(m.memory_bound(util::Intensity{1.0 / 12.0}, 0, 0));  // TRIAD
  EXPECT_FALSE(m.memory_bound(util::Intensity{50.0}, 0, 0));       // DGEMM-like
}

TEST(RooflineModel, AttainableIsMonotoneInIntensity) {
  const auto m = sample_model();
  double prev = 0.0;
  for (double i = 0.01; i < 100.0; i *= 1.3) {
    const double f = m.attainable(util::Intensity{i}, 1, 1).value;
    EXPECT_GE(f, prev);
    prev = f;
  }
}

TEST(RooflineModel, Utilization) {
  const auto m = sample_model();
  ASSERT_TRUE(m.compute()[0].utilization().has_value());
  EXPECT_NEAR(*m.compute()[0].utilization(), 400.0 / 422.4, 1e-12);
  // DRAM overestimation shows as > 100 % (paper Table VI).
  EXPECT_GT(*m.memory()[0].utilization(), 1.0);
  // L3 has no theoretical peak (paper: "unable to calculate").
  EXPECT_FALSE(m.memory()[1].utilization().has_value());
}

TEST(RooflineModel, BadIndicesThrow) {
  const auto m = sample_model();
  EXPECT_THROW(static_cast<void>(m.attainable(util::Intensity{1.0}, 9, 0)), std::out_of_range);
  EXPECT_THROW(static_cast<void>(m.attainable(util::Intensity{1.0}, 0, 9)), std::out_of_range);
  EXPECT_THROW(static_cast<void>(m.ridge_point(5, 0)), std::out_of_range);
}

TEST(RooflineModel, NegativeIntensityThrows) {
  const auto m = sample_model();
  EXPECT_THROW(static_cast<void>(m.attainable(util::Intensity{-1.0}, 0, 0)), std::invalid_argument);
}

}  // namespace
}  // namespace rooftune::roofline
