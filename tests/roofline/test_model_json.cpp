#include <gtest/gtest.h>

#include <stdexcept>

#include "roofline/advisor.hpp"
#include "roofline/builder.hpp"
#include "roofline/plot.hpp"

namespace rooftune::roofline {
namespace {

TEST(ModelJson, RoundTripsSimulatedModel) {
  BuilderOptions options;
  options.prune_min_count = 10;
  const auto model = build_simulated(simhw::machine_by_name("2650v4"), options);
  const auto restored = model_from_json(to_json(model));

  EXPECT_EQ(restored.machine_name, model.machine_name);
  ASSERT_EQ(restored.compute().size(), model.compute().size());
  ASSERT_EQ(restored.memory().size(), model.memory().size());
  for (std::size_t i = 0; i < model.compute().size(); ++i) {
    EXPECT_EQ(restored.compute()[i].name, model.compute()[i].name);
    EXPECT_NEAR(restored.compute()[i].value.value, model.compute()[i].value.value,
                1e-6);
    EXPECT_EQ(restored.compute()[i].best_config, model.compute()[i].best_config);
    ASSERT_TRUE(restored.compute()[i].utilization().has_value());
    EXPECT_NEAR(*restored.compute()[i].utilization(),
                *model.compute()[i].utilization(), 1e-9);
  }
  // The restored model answers roofline queries identically.
  EXPECT_NEAR(restored.attainable(util::Intensity{1.0}, 0, 1).value,
              model.attainable(util::Intensity{1.0}, 0, 1).value, 1e-6);
  EXPECT_NEAR(restored.ridge_point(1, 3).value, model.ridge_point(1, 3).value, 1e-9);
}

TEST(ModelJson, RestoredModelWorksWithAdvisor) {
  BuilderOptions options;
  options.prune_min_count = 10;
  const auto model = build_simulated(simhw::machine_by_name("gold6148"), options);
  const auto restored = model_from_json(to_json(model));
  const auto a = assess(restored, util::Intensity{1.0 / 12.0});
  EXPECT_TRUE(a.memory_bound);
  EXPECT_GT(a.attainable.value, 0.0);
}

TEST(ModelJson, L3CeilingsHaveNoUtilizationAfterRoundTrip) {
  BuilderOptions options;
  options.prune_min_count = 10;
  const auto restored = model_from_json(
      to_json(build_simulated(simhw::machine_by_name("2695v4"), options)));
  // Memory ceilings alternate [L3, DRAM, L3, DRAM].
  EXPECT_FALSE(restored.memory()[0].utilization().has_value());
  EXPECT_TRUE(restored.memory()[1].utilization().has_value());
}

TEST(ModelJson, MalformedInputsThrow) {
  EXPECT_THROW(model_from_json("not json"), std::invalid_argument);
  EXPECT_THROW(model_from_json("{}"), std::out_of_range);
  EXPECT_THROW(model_from_json(R"({"machine":"x","compute_ceilings":[{}],)"
                               R"("memory_ceilings":[]})"),
               std::out_of_range);
}

TEST(PlotPoints, RenderedIntoSvg) {
  RooflineModel model;
  model.machine_name = "pts";
  model.add_compute({"C", util::GFlops{400.0}, util::GFlops{0.0}, {}, {}});
  model.add_memory({"M", util::GBps{40.0}, util::GBps{0.0}, {}, {}});
  PlotOptions options;
  options.points.push_back({"DGEMM", 50.0, 390.0});
  options.points.push_back({"TRIAD", 1.0 / 12.0, 3.3});
  options.points.push_back({"invalid", -1.0, 5.0});  // skipped silently
  const std::string svg = render_svg(model, options);
  std::size_t circles = 0;
  for (std::size_t pos = svg.find("<circle"); pos != std::string::npos;
       pos = svg.find("<circle", pos + 1)) {
    ++circles;
  }
  EXPECT_EQ(circles, 2u);
  EXPECT_NE(svg.find(">DGEMM</text>"), std::string::npos);
  EXPECT_NE(svg.find(">TRIAD</text>"), std::string::npos);
}

}  // namespace
}  // namespace rooftune::roofline
