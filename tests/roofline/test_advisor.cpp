#include "roofline/advisor.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace rooftune::roofline {
namespace {

RooflineModel model_for(const std::string& name, double gflops, double dram,
                        double l3) {
  RooflineModel m;
  m.machine_name = name;
  m.add_compute({"DGEMM", util::GFlops{gflops}, util::GFlops{gflops * 1.1}, {}, {}});
  m.add_memory({"L3", util::GBps{l3}, util::GBps{0.0}, {}, {}});
  m.add_memory({"DRAM", util::GBps{dram}, util::GBps{dram * 0.95}, {}, {}});
  return m;
}

TEST(Assess, TriadIsMemoryBoundEverywhere) {
  const auto model = model_for("a", 400.0, 40.0, 256.0);
  const auto a = assess(model, util::Intensity{1.0 / 12.0});
  EXPECT_TRUE(a.memory_bound);
  EXPECT_NEAR(a.attainable.value, 40.0 / 12.0, 1e-9);
  EXPECT_LT(a.compute_fraction, 0.01);
  EXPECT_NEAR(a.ridge.value, 400.0 / 40.0, 1e-9);
}

TEST(Assess, DgemmLikeIntensityIsComputeBound) {
  const auto model = model_for("a", 400.0, 40.0, 256.0);
  const auto a = assess(model, util::Intensity{60.0});
  EXPECT_FALSE(a.memory_bound);
  EXPECT_NEAR(a.attainable.value, 400.0, 1e-9);
  EXPECT_NEAR(a.compute_fraction, 1.0, 1e-9);
}

TEST(Assess, DefaultsToDramCeiling) {
  // L3 is memory ceiling 0, DRAM is 1: the default must pick DRAM.
  const auto model = model_for("a", 400.0, 40.0, 256.0);
  const auto a = assess(model, util::Intensity{1.0});
  EXPECT_NEAR(a.attainable.value, 40.0, 1e-9);
}

TEST(Assess, ExplicitCeilingIndices) {
  const auto model = model_for("a", 400.0, 40.0, 256.0);
  const auto a = assess(model, util::Intensity{1.0}, 0, 0);  // L3 roof
  EXPECT_NEAR(a.attainable.value, 256.0, 1e-9);
}

TEST(Assess, EmptyModelThrows) {
  RooflineModel empty;
  EXPECT_THROW(assess(empty, util::Intensity{1.0}), std::invalid_argument);
}

TEST(RankMachines, MemoryBoundKernelRanksByBandwidth) {
  // big-compute has more FLOPS, big-memory more bandwidth: a TRIAD-like
  // kernel must prefer the bandwidth machine.
  const std::vector<RooflineModel> models = {
      model_for("big-compute", 2000.0, 50.0, 400.0),
      model_for("big-memory", 500.0, 140.0, 900.0),
  };
  const auto ranking = rank_machines(models, util::Intensity{1.0 / 12.0});
  ASSERT_EQ(ranking.size(), 2u);
  EXPECT_EQ(ranking[0].machine, "big-memory");
  EXPECT_TRUE(ranking[0].memory_bound);
}

TEST(RankMachines, ComputeBoundKernelRanksByFlops) {
  const std::vector<RooflineModel> models = {
      model_for("big-compute", 2000.0, 50.0, 400.0),
      model_for("big-memory", 500.0, 140.0, 900.0),
  };
  const auto ranking = rank_machines(models, util::Intensity{100.0});
  EXPECT_EQ(ranking[0].machine, "big-compute");
  EXPECT_FALSE(ranking[0].memory_bound);
}

TEST(RankMachines, SkipsEmptyModels) {
  std::vector<RooflineModel> models = {model_for("ok", 100.0, 10.0, 50.0),
                                       RooflineModel{}};
  const auto ranking = rank_machines(models, util::Intensity{1.0});
  EXPECT_EQ(ranking.size(), 1u);
}

TEST(AdvisorJson, ContainsCeilingsAndUtilization) {
  const auto model = model_for("2650v4", 408.71, 40.42, 256.07);
  const std::string json = to_json(model);
  EXPECT_NE(json.find("\"machine\":\"2650v4\""), std::string::npos);
  EXPECT_NE(json.find("\"gflops\":408.71"), std::string::npos);
  EXPECT_NE(json.find("\"utilization\""), std::string::npos);
  EXPECT_NE(json.find("\"gbps\":40.42"), std::string::npos);
  // L3 has no theoretical value: its object must not claim one... both
  // memory entries serialize, only DRAM with utilization.
  std::size_t util_count = 0;
  for (std::size_t pos = json.find("\"utilization\""); pos != std::string::npos;
       pos = json.find("\"utilization\"", pos + 1)) {
    ++util_count;
  }
  EXPECT_EQ(util_count, 2u);  // compute + DRAM, not L3
}

TEST(KernelProfile, IntensityFromCounts) {
  KernelProfile triad{"triad", util::Flops{2.0}, util::Bytes{24}};
  EXPECT_NEAR(triad.intensity().value, 1.0 / 12.0, 1e-15);
}

}  // namespace
}  // namespace rooftune::roofline
