#include "roofline/plot.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "util/csv.hpp"

namespace rooftune::roofline {
namespace {

RooflineModel sample_model() {
  RooflineModel model;
  model.machine_name = "2650v4";
  model.add_compute({"DGEMM 1S", util::GFlops{408.71}, util::GFlops{422.4}, {}, {}});
  model.add_compute({"DGEMM 2S", util::GFlops{773.51}, util::GFlops{844.8}, {}, {}});
  model.add_memory({"DRAM 1S", util::GBps{40.42}, util::GBps{38.4}, {}, {}});
  model.add_memory({"L3 1S", util::GBps{256.07}, util::GBps{0.0}, {}, {}});
  return model;
}

TEST(RenderSvg, WellFormedDocument) {
  const std::string svg = render_svg(sample_model());
  EXPECT_EQ(svg.rfind("<svg", 0), 0u);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
  EXPECT_NE(svg.find("Roofline: 2650v4"), std::string::npos);
  // One polyline per (compute x memory) pair = 4.
  std::size_t polylines = 0;
  for (std::size_t pos = svg.find("<polyline"); pos != std::string::npos;
       pos = svg.find("<polyline", pos + 1)) {
    ++polylines;
  }
  EXPECT_EQ(polylines, 4u);
}

TEST(RenderSvg, BalancedTags) {
  const std::string svg = render_svg(sample_model());
  // Every opened element is closed or self-closing; spot check counts.
  std::size_t open_text = 0, close_text = 0;
  for (std::size_t pos = svg.find("<text"); pos != std::string::npos;
       pos = svg.find("<text", pos + 1)) {
    ++open_text;
  }
  for (std::size_t pos = svg.find("</text>"); pos != std::string::npos;
       pos = svg.find("</text>", pos + 1)) {
    ++close_text;
  }
  EXPECT_EQ(open_text, close_text);
}

TEST(RenderSvg, DashedTheoreticalRoofsOnlyWhereKnown) {
  const std::string svg = render_svg(sample_model());
  std::size_t dashes = 0;
  for (std::size_t pos = svg.find("stroke-dasharray"); pos != std::string::npos;
       pos = svg.find("stroke-dasharray", pos + 1)) {
    ++dashes;
  }
  EXPECT_EQ(dashes, 2u);  // both compute ceilings have theoretical peaks
}

TEST(RenderSvg, EmptyModelThrows) {
  RooflineModel empty;
  EXPECT_THROW(render_svg(empty), std::invalid_argument);
}

TEST(RenderAscii, HasLegendAndGrid) {
  const std::string out = render_ascii(sample_model(), 60, 16);
  EXPECT_NE(out.find("Roofline: 2650v4"), std::string::npos);
  EXPECT_NE(out.find("a: DGEMM 1S / DRAM 1S"), std::string::npos);
  EXPECT_NE(out.find("d: DGEMM 2S / L3 1S"), std::string::npos);
  // 16 grid rows framed by '|'.
  std::size_t rows = 0;
  for (std::size_t pos = out.find("|"); pos != std::string::npos;
       pos = out.find("\n|", pos + 1)) {
    ++rows;
  }
  EXPECT_GE(rows, 16u);
}

TEST(RenderCsv, ParsesAndIsMonotone) {
  const std::string csv = render_csv(sample_model());
  const auto rows = util::parse_csv(csv);
  ASSERT_GT(rows.size(), 10u);
  EXPECT_EQ(rows[0].size(), 1u + 4u);  // intensity + 4 series
  // The attainable curves are non-decreasing down the rows.
  double prev = 0.0;
  for (std::size_t r = 1; r < rows.size(); ++r) {
    const double v = std::stod(rows[r][1]);
    EXPECT_GE(v, prev);
    prev = v;
  }
}

TEST(UtilizationReport, ContainsAllCeilings) {
  const std::string report = utilization_report(sample_model());
  EXPECT_NE(report.find("DGEMM 1S"), std::string::npos);
  EXPECT_NE(report.find("96.76%"), std::string::npos);   // 408.71/422.4
  EXPECT_NE(report.find("105.26%"), std::string::npos);  // 40.42/38.4
  EXPECT_NE(report.find("L3 1S"), std::string::npos);
  // L3 has no theoretical value: rendered as '-'.
  EXPECT_NE(report.find(" - "), std::string::npos);
}

}  // namespace
}  // namespace rooftune::roofline
