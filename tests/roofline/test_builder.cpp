#include "roofline/builder.hpp"

#include <gtest/gtest.h>

#include "core/spaces.hpp"

namespace rooftune::roofline {
namespace {

BuilderOptions fast_options() {
  BuilderOptions o;
  o.prune_min_count = 10;
  return o;
}

TEST(Builder, SimulatedModelHasFig1Structure) {
  // Fig. 1: two compute configurations + four memory subsystems for a
  // dual-socket machine.
  const auto model =
      build_simulated(simhw::machine_by_name("gold6148"), fast_options());
  EXPECT_EQ(model.compute().size(), 2u);
  EXPECT_EQ(model.memory().size(), 4u);
  EXPECT_EQ(model.machine_name, "gold6148");
}

TEST(Builder, CeilingsOrderedSingleThenDual) {
  const auto model =
      build_simulated(simhw::machine_by_name("2650v4"), fast_options());
  EXPECT_LT(model.compute()[0].value.value, model.compute()[1].value.value);
  // Memory: [L3 1S, DRAM 1S, L3 2S, DRAM 2S].
  EXPECT_GT(model.memory()[0].value.value, model.memory()[1].value.value);
  EXPECT_GT(model.memory()[2].value.value, model.memory()[3].value.value);
  EXPECT_NE(model.memory()[0].name.find("L3"), std::string::npos);
  EXPECT_NE(model.memory()[1].name.find("DRAM"), std::string::npos);
}

TEST(Builder, UtilizationMatchesPaperShape) {
  const auto model =
      build_simulated(simhw::machine_by_name("2650v4"), fast_options());
  // Table IV: ~96.8 % single socket, ~91.6 % dual.
  ASSERT_TRUE(model.compute()[0].utilization().has_value());
  EXPECT_NEAR(*model.compute()[0].utilization(), 0.9676, 0.03);
  EXPECT_NEAR(*model.compute()[1].utilization(), 0.9156, 0.03);
  // Table VI: DRAM measured above theoretical.
  EXPECT_GT(*model.memory()[1].utilization(), 1.0);
  EXPECT_LT(*model.memory()[1].utilization(), 1.2);
}

TEST(Builder, DramConfigHasLargeWorkingSet) {
  const auto model =
      build_simulated(simhw::machine_by_name("gold6132"), fast_options());
  const auto& dram = model.memory()[1];  // DRAM 1 socket
  const auto ws = core::triad_working_set(dram.best_config);
  EXPECT_GE(ws.value, 8u * simhw::machine_by_name("gold6132").l3_capacity(1).value);
  // L3 best config fits in cache.
  const auto& l3 = model.memory()[0];
  EXPECT_LE(core::triad_working_set(l3.best_config).value,
            simhw::machine_by_name("gold6132").l3_capacity(1).value);
}

TEST(Builder, DeterministicForSameSeed) {
  const auto a = build_simulated(simhw::machine_by_name("2695v4"), fast_options());
  const auto b = build_simulated(simhw::machine_by_name("2695v4"), fast_options());
  EXPECT_DOUBLE_EQ(a.compute()[0].value.value, b.compute()[0].value.value);
  EXPECT_DOUBLE_EQ(a.memory()[3].value.value, b.memory()[3].value.value);
}

TEST(Builder, SeedChangesMeasurementsSlightly) {
  auto options = fast_options();
  const auto a = build_simulated(simhw::machine_by_name("2695v4"), options);
  options.seed = 777;
  const auto b = build_simulated(simhw::machine_by_name("2695v4"), options);
  EXPECT_NE(a.compute()[0].value.value, b.compute()[0].value.value);
  // But not by much (< 2 %): the methodology's accuracy claim.
  EXPECT_NEAR(a.compute()[0].value.value, b.compute()[0].value.value,
              0.02 * a.compute()[0].value.value);
}

TEST(Builder, SpaceOverridesAreRespected) {
  auto options = fast_options();
  core::SearchSpace small;
  small.add_range(core::ParameterRange("n", {500, 1000}));
  small.add_range(core::ParameterRange("m", {512}));
  small.add_range(core::ParameterRange("k", {128}));
  options.dgemm_space = small;
  options.triad_space = core::triad_space(util::Bytes::MiB(1), util::Bytes::MiB(512));

  simhw::SimOptions sim;
  simhw::SimDgemmBackend backend(simhw::machine_by_name("2650v4"), sim);
  const auto ceiling = measure_dgemm_ceiling(backend, "test", util::GFlops{422.4},
                                             options);
  // Best must come from the restricted space.
  EXPECT_EQ(ceiling.best_config.at("m"), 512);
  EXPECT_LE(ceiling.best_config.at("n"), 1000);
}

}  // namespace
}  // namespace rooftune::roofline
