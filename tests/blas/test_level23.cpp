#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "blas/blas.hpp"
#include "blas/matrix.hpp"

namespace rooftune::blas {
namespace {

TEST(Dgemv, NoTransBasic) {
  // A = [[1,2],[3,4],[5,6]] (3x2), x = [1,1] => A*x = [3,7,11].
  const std::vector<double> a{1, 2, 3, 4, 5, 6};
  const std::vector<double> x{1, 1};
  std::vector<double> y{10, 10, 10};
  dgemv(Layout::RowMajor, Trans::NoTrans, 3, 2, 1.0, a.data(), 2, x.data(), 1, 0.0,
        y.data(), 1);
  EXPECT_DOUBLE_EQ(y[0], 3.0);
  EXPECT_DOUBLE_EQ(y[1], 7.0);
  EXPECT_DOUBLE_EQ(y[2], 11.0);
}

TEST(Dgemv, TransBasic) {
  // A^T * x with A 3x2, x length 3: A^T*[1,1,1] = [9,12].
  const std::vector<double> a{1, 2, 3, 4, 5, 6};
  const std::vector<double> x{1, 1, 1};
  std::vector<double> y{0, 0};
  dgemv(Layout::RowMajor, Trans::Trans, 3, 2, 1.0, a.data(), 2, x.data(), 1, 0.0,
        y.data(), 1);
  EXPECT_DOUBLE_EQ(y[0], 9.0);
  EXPECT_DOUBLE_EQ(y[1], 12.0);
}

TEST(Dgemv, AlphaBetaAccumulate) {
  const std::vector<double> a{1, 0, 0, 1};  // identity 2x2
  const std::vector<double> x{3, 4};
  std::vector<double> y{10, 20};
  dgemv(Layout::RowMajor, Trans::NoTrans, 2, 2, 2.0, a.data(), 2, x.data(), 1, 0.5,
        y.data(), 1);
  EXPECT_DOUBLE_EQ(y[0], 2.0 * 3.0 + 0.5 * 10.0);
  EXPECT_DOUBLE_EQ(y[1], 2.0 * 4.0 + 0.5 * 20.0);
}

TEST(Dgemv, MatchesDgemmWithSingleColumn) {
  // y = A x is C = A * X with X an n x 1 matrix: cross-check vs. dgemm.
  const std::int64_t m = 7, n = 5;
  Matrix a(m, n);
  a.fill_random(1);
  std::vector<double> x(static_cast<std::size_t>(n));
  for (std::size_t i = 0; i < x.size(); ++i) x[i] = 0.3 * static_cast<double>(i) - 1.0;

  std::vector<double> y_gemv(static_cast<std::size_t>(m), 0.0);
  dgemv(Layout::RowMajor, Trans::NoTrans, m, n, 1.5, a.data(), a.ld(), x.data(), 1,
        0.0, y_gemv.data(), 1);

  std::vector<double> y_gemm(static_cast<std::size_t>(m), 0.0);
  dgemm(Layout::RowMajor, Trans::NoTrans, Trans::NoTrans, m, 1, n, 1.5, a.data(),
        a.ld(), x.data(), 1, 0.0, y_gemm.data(), 1, DgemmVariant::Naive);

  for (std::int64_t i = 0; i < m; ++i) {
    EXPECT_NEAR(y_gemv[static_cast<std::size_t>(i)],
                y_gemm[static_cast<std::size_t>(i)], 1e-12);
  }
}

TEST(Dgemv, ColMajorConsistent) {
  // Column-major 2x2 A = [[1,3],[2,4]] stored as {1,2,3,4}; A*[1,1] = [4,6].
  const std::vector<double> a{1, 2, 3, 4};
  const std::vector<double> x{1, 1};
  std::vector<double> y{0, 0};
  dgemv(Layout::ColMajor, Trans::NoTrans, 2, 2, 1.0, a.data(), 2, x.data(), 1, 0.0,
        y.data(), 1);
  EXPECT_DOUBLE_EQ(y[0], 4.0);
  EXPECT_DOUBLE_EQ(y[1], 6.0);
}

TEST(Dgemv, Validation) {
  double d = 0.0;
  EXPECT_THROW(dgemv(Layout::RowMajor, Trans::NoTrans, -1, 2, 1.0, &d, 2, &d, 1,
                     0.0, &d, 1),
               std::invalid_argument);
  EXPECT_THROW(dgemv(Layout::RowMajor, Trans::NoTrans, 2, 3, 1.0, &d, 2, &d, 1, 0.0,
                     &d, 1),
               std::invalid_argument);  // lda < n
  EXPECT_THROW(dgemv(Layout::RowMajor, Trans::NoTrans, 2, 2, 1.0, &d, 2, &d, 0, 0.0,
                     &d, 1),
               std::invalid_argument);  // incx == 0
}

TEST(Dsyrk, MatchesDgemmOnBothTriangles) {
  const std::int64_t n = 6, k = 4;
  Matrix a(n, k);
  a.fill_random(2);

  // Reference: full C = A * A^T via dgemm.
  Matrix ref(n, n);
  ref.fill(0.0);
  dgemm(Layout::RowMajor, Trans::NoTrans, Trans::Trans, n, n, k, 1.0, a.data(),
        a.ld(), a.data(), a.ld(), 0.0, ref.data(), ref.ld(), DgemmVariant::Naive);

  for (const Uplo uplo : {Uplo::Upper, Uplo::Lower}) {
    Matrix c(n, n);
    c.fill(-99.0);
    dsyrk(Layout::RowMajor, uplo, Trans::NoTrans, n, k, 1.0, a.data(), a.ld(), 0.0,
          c.data(), c.ld());
    for (std::int64_t i = 0; i < n; ++i) {
      for (std::int64_t j = 0; j < n; ++j) {
        const bool in_triangle = uplo == Uplo::Upper ? j >= i : j <= i;
        if (in_triangle) {
          EXPECT_NEAR(c.at(i, j), ref.at(i, j), 1e-12) << i << "," << j;
        } else {
          EXPECT_DOUBLE_EQ(c.at(i, j), -99.0) << "triangle overwritten";
        }
      }
    }
  }
}

TEST(Dsyrk, TransFormsGram) {
  // C = A^T A with A 4x3: a 3x3 Gram matrix with positive diagonal.
  const std::int64_t n = 3, k = 4;
  Matrix a(k, n);
  a.fill_random(3);
  Matrix c(n, n);
  c.fill(0.0);
  dsyrk(Layout::RowMajor, Uplo::Upper, Trans::Trans, n, k, 1.0, a.data(), a.ld(),
        0.0, c.data(), c.ld());
  for (std::int64_t i = 0; i < n; ++i) {
    double expected = 0.0;
    for (std::int64_t p = 0; p < k; ++p) expected += a.at(p, i) * a.at(p, i);
    EXPECT_NEAR(c.at(i, i), expected, 1e-12);
    EXPECT_GT(c.at(i, i), 0.0);
  }
}

TEST(Dsyrk, BetaScalesTriangleOnly) {
  Matrix c(2, 2);
  c.fill(4.0);
  double dummy = 0.0;
  dsyrk(Layout::RowMajor, Uplo::Lower, Trans::NoTrans, 2, 0, 1.0, &dummy, 1, 0.5,
        c.data(), c.ld());
  EXPECT_DOUBLE_EQ(c.at(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(c.at(1, 0), 2.0);
  EXPECT_DOUBLE_EQ(c.at(1, 1), 2.0);
  EXPECT_DOUBLE_EQ(c.at(0, 1), 4.0);  // upper triangle untouched
}

TEST(Dsyrk, Validation) {
  double d = 0.0;
  EXPECT_THROW(dsyrk(Layout::RowMajor, Uplo::Upper, Trans::NoTrans, -1, 2, 1.0, &d,
                     2, 0.0, &d, 1),
               std::invalid_argument);
  EXPECT_THROW(dsyrk(Layout::RowMajor, Uplo::Upper, Trans::NoTrans, 4, 2, 1.0, &d,
                     1, 0.0, &d, 4),
               std::invalid_argument);  // lda < k
}

}  // namespace
}  // namespace rooftune::blas
