#include "blas/matrix.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>

#include "util/rng.hpp"

namespace rooftune::blas {
namespace {

TEST(Matrix, DimensionsAndAccess) {
  Matrix m(3, 4);
  EXPECT_EQ(m.rows(), 3);
  EXPECT_EQ(m.cols(), 4);
  EXPECT_EQ(m.ld(), 4);
  m.at(2, 3) = 7.0;
  EXPECT_DOUBLE_EQ(m.at(2, 3), 7.0);
}

TEST(Matrix, PaddedLeadingDimension) {
  Matrix m(2, 3, 10);
  EXPECT_EQ(m.ld(), 10);
  m.at(1, 2) = 5.0;
  EXPECT_DOUBLE_EQ(m.data()[1 * 10 + 2], 5.0);
}

TEST(Matrix, RejectsInvalidShapes) {
  EXPECT_THROW(Matrix(-1, 2), std::invalid_argument);
  EXPECT_THROW(Matrix(2, 3, 2), std::invalid_argument);  // ld < cols
}

TEST(Matrix, FillSetsEveryElement) {
  Matrix m(4, 4);
  m.fill(2.5);
  for (std::int64_t r = 0; r < 4; ++r) {
    for (std::int64_t c = 0; c < 4; ++c) EXPECT_DOUBLE_EQ(m.at(r, c), 2.5);
  }
}

TEST(Matrix, FillRandomIsDeterministicPerSeed) {
  Matrix a(5, 5), b(5, 5), c(5, 5);
  a.fill_random(42);
  b.fill_random(42);
  c.fill_random(43);
  EXPECT_DOUBLE_EQ(Matrix::max_abs_diff(a, b), 0.0);
  EXPECT_GT(Matrix::max_abs_diff(a, c), 0.0);
}

TEST(Matrix, FillRandomInRange) {
  Matrix m(20, 20);
  m.fill_random(7);
  for (std::int64_t r = 0; r < 20; ++r) {
    for (std::int64_t c = 0; c < 20; ++c) {
      EXPECT_GE(m.at(r, c), -1.0);
      EXPECT_LT(m.at(r, c), 1.0);
    }
  }
}

TEST(Matrix, FillRandomMatchesPerRowCounterStreams) {
  // fill_random is parallelized with one counter-seeded RNG stream per row;
  // the bytes must equal what a serial walk of the same streams produces,
  // independent of thread count or execution order.
  Matrix m(17, 9);
  m.fill_random(123);
  for (std::int64_t r = 0; r < 17; ++r) {
    util::Xoshiro256 rng(util::hash_seed(123, static_cast<std::uint64_t>(r)));
    for (std::int64_t c = 0; c < 9; ++c) {
      const double expected = rng.uniform(-1.0, 1.0);
      ASSERT_EQ(m.at(r, c), expected) << r << "," << c;
    }
  }
}

TEST(Matrix, FreeFillRandomHonorsLeadingDimension) {
  // The raw-pointer overload (used by the arena-leased backends) must fill
  // only the logical cols of each row, leaving padding alone.
  Matrix padded(4, 3, 8);
  padded.fill(99.0);
  fill_random(padded.data(), 4, 3, 8, 7);
  Matrix dense(4, 3);
  dense.fill_random(7);
  EXPECT_DOUBLE_EQ(Matrix::max_abs_diff(padded, dense), 0.0);
  EXPECT_DOUBLE_EQ(padded.data()[3], 99.0);  // padding untouched
}

TEST(Matrix, FreeFillRandomRejectsBadDimensions) {
  double buffer[4] = {};
  EXPECT_THROW(fill_random(buffer, -1, 2, 2, 0), std::invalid_argument);
  EXPECT_THROW(fill_random(buffer, 2, 2, 1, 0), std::invalid_argument);  // ld < cols
}

TEST(Matrix, MaxAbsDiffIgnoresPadding) {
  Matrix a(2, 2, 8);
  Matrix b(2, 2, 2);
  a.fill(1.0);
  b.fill(1.0);
  a.data()[2] = 99.0;  // padding element, outside the logical 2x2 region
  EXPECT_DOUBLE_EQ(Matrix::max_abs_diff(a, b), 0.0);
}

TEST(Matrix, MaxAbsDiffShapeMismatchThrows) {
  Matrix a(2, 2), b(2, 3);
  EXPECT_THROW(Matrix::max_abs_diff(a, b), std::invalid_argument);
}

TEST(Matrix, AlignedStorage) {
  Matrix m(7, 13);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(m.data()) % 64, 0u);
}

}  // namespace
}  // namespace rooftune::blas
