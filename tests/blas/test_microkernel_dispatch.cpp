#include "blas/microkernel.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "blas/blas.hpp"
#include "blas/matrix.hpp"

namespace rooftune::blas::detail {
namespace {

// Every test restores auto-detection and a clean environment, so the
// dispatch state never leaks into the other suites of this binary.
class MicrokernelDispatch : public ::testing::Test {
 protected:
  void TearDown() override {
    unsetenv("ROOFTUNE_KERNEL");
    force_kernel_plan(nullptr);
  }
};

void run_packed(std::int64_t m, std::int64_t n, std::int64_t k, Matrix& c) {
  Matrix a(m, k), b(k, n);
  a.fill_random(7);
  b.fill_random(8);
  c.fill(0.0);
  dgemm(Layout::RowMajor, Trans::NoTrans, Trans::NoTrans, m, n, k, 1.0, a.data(),
        a.ld(), b.data(), b.ld(), 0.0, c.data(), c.ld(), DgemmVariant::Packed);
}

TEST_F(MicrokernelDispatch, ScalarPlanIsAlwaysCompiledAndSupported) {
  const auto& compiled = compiled_kernel_plans();
  ASSERT_FALSE(compiled.empty());
  EXPECT_STREQ(compiled.front()->name, "scalar");
  const auto supported = supported_kernel_plans();
  ASSERT_FALSE(supported.empty());
  EXPECT_STREQ(supported.front()->name, "scalar");
}

TEST_F(MicrokernelDispatch, PlanLookupByName) {
  ASSERT_NE(kernel_plan_by_name("scalar"), nullptr);
  EXPECT_EQ(kernel_plan_by_name("scalar")->mr, 4);
  EXPECT_EQ(kernel_plan_by_name("scalar")->nr, 8);
  EXPECT_EQ(kernel_plan_by_name("neon"), nullptr);
}

// Each variant the CPU can run must agree with the naive reference on
// shapes that exercise full tiles and fringes of every geometry.
TEST_F(MicrokernelDispatch, EveryVariantMatchesNaive) {
  const std::vector<std::tuple<std::int64_t, std::int64_t, std::int64_t>> shapes{
      {1, 1, 1},    {5, 7, 3},     {6, 8, 16},   {8, 16, 32},
      {96, 64, 256}, {97, 65, 257}, {13, 31, 300}, {200, 1, 3}};
  for (const KernelPlan* plan : supported_kernel_plans()) {
    force_kernel_plan(plan);
    for (const auto& [m, n, k] : shapes) {
      Matrix a(m, k), b(k, n), c_ref(m, n), c_out(m, n);
      a.fill_random(1);
      b.fill_random(2);
      c_ref.fill(0.0);
      c_out.fill(0.0);
      dgemm(Layout::RowMajor, Trans::NoTrans, Trans::NoTrans, m, n, k, 1.0,
            a.data(), a.ld(), b.data(), b.ld(), 0.0, c_ref.data(), c_ref.ld(),
            DgemmVariant::Naive);
      dgemm(Layout::RowMajor, Trans::NoTrans, Trans::NoTrans, m, n, k, 1.0,
            a.data(), a.ld(), b.data(), b.ld(), 0.0, c_out.data(), c_out.ld(),
            DgemmVariant::Packed);
      EXPECT_LT(Matrix::max_abs_diff(c_ref, c_out),
                1e-10 * static_cast<double>(k + 1))
          << plan->name << " at m=" << m << " n=" << n << " k=" << k;
    }
  }
}

// A variant must be bit-for-bit reproducible run to run: same inputs, same
// floating-point evaluation order, identical C.
TEST_F(MicrokernelDispatch, EachVariantIsBitReproducible) {
  const std::int64_t m = 97, n = 65, k = 130;
  for (const KernelPlan* plan : supported_kernel_plans()) {
    force_kernel_plan(plan);
    Matrix c1(m, n), c2(m, n);
    run_packed(m, n, k, c1);
    run_packed(m, n, k, c2);
    EXPECT_EQ(std::memcmp(c1.data(), c2.data(),
                          sizeof(double) * static_cast<std::size_t>(m) *
                              static_cast<std::size_t>(n)),
              0)
        << plan->name;
  }
}

TEST_F(MicrokernelDispatch, EnvOverrideForcesScalar) {
  setenv("ROOFTUNE_KERNEL", "scalar", 1);
  EXPECT_STREQ(redetect_kernel_plan().name, "scalar");
}

TEST_F(MicrokernelDispatch, EnvOverrideIsCaseInsensitive) {
  setenv("ROOFTUNE_KERNEL", " SCALAR ", 1);
  EXPECT_STREQ(redetect_kernel_plan().name, "scalar");
}

TEST_F(MicrokernelDispatch, UnknownEnvValueFallsBackToWidestSupported) {
  setenv("ROOFTUNE_KERNEL", "quantum", 1);
  EXPECT_STREQ(redetect_kernel_plan().name, supported_kernel_plans().back()->name);
}

TEST_F(MicrokernelDispatch, AutoSelectsWidestSupported) {
  unsetenv("ROOFTUNE_KERNEL");
  EXPECT_STREQ(redetect_kernel_plan().name, supported_kernel_plans().back()->name);
}

TEST_F(MicrokernelDispatch, ForcedPlanWinsUntilReset) {
  const KernelPlan* scalar = kernel_plan_by_name("scalar");
  force_kernel_plan(scalar);
  EXPECT_EQ(&active_kernel_plan(), scalar);
  force_kernel_plan(nullptr);
  EXPECT_STREQ(active_kernel_plan().name, supported_kernel_plans().back()->name);
}

}  // namespace
}  // namespace rooftune::blas::detail
