#include "blas/blas.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <tuple>

#include "blas/matrix.hpp"

namespace rooftune::blas {
namespace {

// Run one DGEMM through `variant` and through the naive reference, compare.
void check_variant_against_naive(DgemmVariant variant, Trans ta, Trans tb,
                                 std::int64_t m, std::int64_t n, std::int64_t k,
                                 double alpha, double beta) {
  // Stored shapes depend on transposition (row-major).
  const std::int64_t a_rows = ta == Trans::NoTrans ? m : k;
  const std::int64_t a_cols = ta == Trans::NoTrans ? k : m;
  const std::int64_t b_rows = tb == Trans::NoTrans ? k : n;
  const std::int64_t b_cols = tb == Trans::NoTrans ? n : k;

  Matrix a(a_rows, a_cols);
  Matrix b(b_rows, b_cols);
  Matrix c_ref(m, n);
  Matrix c_out(m, n);
  a.fill_random(1);
  b.fill_random(2);
  c_ref.fill_random(3);
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) c_out.at(i, j) = c_ref.at(i, j);
  }

  dgemm(Layout::RowMajor, ta, tb, m, n, k, alpha, a.data(), a.ld(), b.data(), b.ld(),
        beta, c_ref.data(), c_ref.ld(), DgemmVariant::Naive);
  dgemm(Layout::RowMajor, ta, tb, m, n, k, alpha, a.data(), a.ld(), b.data(), b.ld(),
        beta, c_out.data(), c_out.ld(), variant);

  const double err = Matrix::max_abs_diff(c_ref, c_out);
  EXPECT_LT(err, 1e-10 * static_cast<double>(k + 1))
      << "variant mismatch at m=" << m << " n=" << n << " k=" << k;
}

using ShapeCase = std::tuple<std::int64_t, std::int64_t, std::int64_t>;

class DgemmVariantShapes
    : public ::testing::TestWithParam<std::tuple<DgemmVariant, ShapeCase>> {};

TEST_P(DgemmVariantShapes, MatchesNaive) {
  const auto [variant, shape] = GetParam();
  const auto [m, n, k] = shape;
  check_variant_against_naive(variant, Trans::NoTrans, Trans::NoTrans, m, n, k, 1.0,
                              0.0);
}

INSTANTIATE_TEST_SUITE_P(
    BlockedAndPacked, DgemmVariantShapes,
    ::testing::Combine(
        ::testing::Values(DgemmVariant::Blocked, DgemmVariant::Packed),
        ::testing::Values(ShapeCase{1, 1, 1}, ShapeCase{2, 3, 4},
                          ShapeCase{5, 8, 13},      // fringe tiles everywhere
                          ShapeCase{4, 8, 16},      // exact micro-kernel tiles
                          ShapeCase{96, 64, 256},   // one full macro block
                          ShapeCase{97, 65, 257},   // macro block + fringes
                          ShapeCase{130, 100, 70}, ShapeCase{33, 129, 65},
                          ShapeCase{1, 200, 3}, ShapeCase{200, 1, 3},
                          ShapeCase{7, 7, 300})));

TEST(Dgemm, AlphaBetaCombinations) {
  for (double alpha : {0.0, 1.0, -0.5, 2.5}) {
    for (double beta : {0.0, 1.0, 0.5}) {
      check_variant_against_naive(DgemmVariant::Packed, Trans::NoTrans,
                                  Trans::NoTrans, 17, 23, 9, alpha, beta);
      check_variant_against_naive(DgemmVariant::Blocked, Trans::NoTrans,
                                  Trans::NoTrans, 17, 23, 9, alpha, beta);
    }
  }
}

TEST(Dgemm, TransposeCombinations) {
  for (Trans ta : {Trans::NoTrans, Trans::Trans}) {
    for (Trans tb : {Trans::NoTrans, Trans::Trans}) {
      check_variant_against_naive(DgemmVariant::Packed, ta, tb, 21, 34, 19, 1.5, 0.5);
      check_variant_against_naive(DgemmVariant::Blocked, ta, tb, 21, 34, 19, 1.5, 0.5);
    }
  }
}

TEST(Dgemm, LeadingDimensionsLargerThanWidth) {
  // Stored with padding: ld > cols.
  const std::int64_t m = 10, n = 12, k = 8;
  Matrix a(m, k, k + 5);
  Matrix b(k, n, n + 3);
  Matrix c_ref(m, n, n + 7);
  Matrix c_out(m, n, n + 7);
  a.fill_random(4);
  b.fill_random(5);
  c_ref.fill(0.0);
  c_out.fill(0.0);

  dgemm(Layout::RowMajor, Trans::NoTrans, Trans::NoTrans, m, n, k, 1.0, a.data(),
        a.ld(), b.data(), b.ld(), 0.0, c_ref.data(), c_ref.ld(), DgemmVariant::Naive);
  dgemm(Layout::RowMajor, Trans::NoTrans, Trans::NoTrans, m, n, k, 1.0, a.data(),
        a.ld(), b.data(), b.ld(), 0.0, c_out.data(), c_out.ld(), DgemmVariant::Packed);
  EXPECT_LT(Matrix::max_abs_diff(c_ref, c_out), 1e-10);
}

TEST(Dgemm, ColMajorMatchesTransposedRowMajor) {
  // Column-major C = A*B equals row-major on the same buffers interpreted as
  // the transposed problem; verify against an explicit element-wise check.
  const std::int64_t m = 7, n = 5, k = 4;
  std::vector<double> a(static_cast<std::size_t>(k * m));  // col-major m x k: ld=m
  std::vector<double> b(static_cast<std::size_t>(n * k));  // col-major k x n: ld=k
  std::vector<double> c(static_cast<std::size_t>(n * m), 0.0);  // m x n: ld=m
  for (std::size_t i = 0; i < a.size(); ++i) a[i] = 0.1 * static_cast<double>(i) - 1.0;
  for (std::size_t i = 0; i < b.size(); ++i) b[i] = 0.2 * static_cast<double>(i) - 2.0;

  dgemm(Layout::ColMajor, Trans::NoTrans, Trans::NoTrans, m, n, k, 1.0, a.data(), m,
        b.data(), k, 0.0, c.data(), m);

  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      double expected = 0.0;
      for (std::int64_t p = 0; p < k; ++p) {
        expected += a[static_cast<std::size_t>(p * m + i)] *
                    b[static_cast<std::size_t>(j * k + p)];
      }
      EXPECT_NEAR(c[static_cast<std::size_t>(j * m + i)], expected, 1e-12)
          << i << "," << j;
    }
  }
}

TEST(Dgemm, ZeroSizedProblemsAreNoops) {
  double dummy = 42.0;
  EXPECT_NO_THROW(dgemm(Layout::RowMajor, Trans::NoTrans, Trans::NoTrans, 0, 0, 0,
                        1.0, &dummy, 1, &dummy, 1, 0.0, &dummy, 1));
  EXPECT_DOUBLE_EQ(dummy, 42.0);
}

TEST(Dgemm, KZeroScalesCByBeta) {
  Matrix c(2, 2);
  c.fill(3.0);
  double dummy = 0.0;
  dgemm(Layout::RowMajor, Trans::NoTrans, Trans::NoTrans, 2, 2, 0, 1.0, &dummy, 1,
        &dummy, 2, 0.5, c.data(), c.ld(), DgemmVariant::Packed);
  EXPECT_DOUBLE_EQ(c.at(0, 0), 1.5);
  EXPECT_DOUBLE_EQ(c.at(1, 1), 1.5);
}

TEST(Dgemm, ValidationRejectsBadArguments) {
  double dummy = 0.0;
  EXPECT_THROW(dgemm(Layout::RowMajor, Trans::NoTrans, Trans::NoTrans, -1, 1, 1, 1.0,
                     &dummy, 1, &dummy, 1, 0.0, &dummy, 1),
               std::invalid_argument);
  // lda too small: A is 2x3, lda must be >= 3.
  EXPECT_THROW(dgemm(Layout::RowMajor, Trans::NoTrans, Trans::NoTrans, 2, 2, 3, 1.0,
                     &dummy, 2, &dummy, 2, 0.0, &dummy, 2),
               std::invalid_argument);
  // ldc too small.
  EXPECT_THROW(dgemm(Layout::RowMajor, Trans::NoTrans, Trans::NoTrans, 2, 4, 2, 1.0,
                     &dummy, 2, &dummy, 4, 0.0, &dummy, 2),
               std::invalid_argument);
}

TEST(DgemmAccounting, FlopsFormula) {
  // Paper: FLOPs of one DGEMM = 2*m*n*k.
  EXPECT_DOUBLE_EQ(dgemm_flops(1000, 4096, 128).value, 2.0 * 1000 * 4096 * 128);
  EXPECT_DOUBLE_EQ(dgemm_flops(0, 10, 10).value, 0.0);
}

TEST(DgemmAccounting, BytesFormula) {
  // A (m*k) + B (k*n) + C read+write (2*m*n), 8 bytes each.
  EXPECT_EQ(dgemm_bytes(2, 3, 4).value, 8u * (2 * 4 + 4 * 3 + 2 * 2 * 3));
}

TEST(Dgemm, AutoVariantMatchesNaive) {
  check_variant_against_naive(DgemmVariant::Auto, Trans::NoTrans, Trans::NoTrans, 3,
                              3, 3, 1.0, 0.0);
  check_variant_against_naive(DgemmVariant::Auto, Trans::NoTrans, Trans::NoTrans, 64,
                              64, 64, 1.0, 0.0);
}

}  // namespace
}  // namespace rooftune::blas
