#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "blas/blas.hpp"

namespace rooftune::blas {
namespace {

TEST(Daxpy, BasicAccumulate) {
  std::vector<double> x{1.0, 2.0, 3.0};
  std::vector<double> y{10.0, 20.0, 30.0};
  daxpy(3, 2.0, x.data(), 1, y.data(), 1);
  EXPECT_DOUBLE_EQ(y[0], 12.0);
  EXPECT_DOUBLE_EQ(y[1], 24.0);
  EXPECT_DOUBLE_EQ(y[2], 36.0);
}

TEST(Daxpy, ZeroAlphaIsNoop) {
  std::vector<double> x{1.0};
  std::vector<double> y{5.0};
  daxpy(1, 0.0, x.data(), 1, y.data(), 1);
  EXPECT_DOUBLE_EQ(y[0], 5.0);
}

TEST(Daxpy, StridedAccess) {
  std::vector<double> x{1.0, 99.0, 2.0, 99.0, 3.0};
  std::vector<double> y{0.0, 0.0, 0.0};
  daxpy(3, 1.0, x.data(), 2, y.data(), 1);
  EXPECT_DOUBLE_EQ(y[0], 1.0);
  EXPECT_DOUBLE_EQ(y[1], 2.0);
  EXPECT_DOUBLE_EQ(y[2], 3.0);
}

TEST(Daxpy, NegativeStrideReverses) {
  std::vector<double> x{1.0, 2.0, 3.0};
  std::vector<double> y{0.0, 0.0, 0.0};
  daxpy(3, 1.0, x.data(), -1, y.data(), 1);
  EXPECT_DOUBLE_EQ(y[0], 3.0);
  EXPECT_DOUBLE_EQ(y[2], 1.0);
}

TEST(Dscal, ScalesInPlace) {
  std::vector<double> x{1.0, -2.0, 4.0};
  dscal(3, -0.5, x.data(), 1);
  EXPECT_DOUBLE_EQ(x[0], -0.5);
  EXPECT_DOUBLE_EQ(x[1], 1.0);
  EXPECT_DOUBLE_EQ(x[2], -2.0);
}

TEST(Dcopy, CopiesWithStrides) {
  std::vector<double> x{1.0, 2.0, 3.0, 4.0};
  std::vector<double> y(8, 0.0);
  dcopy(4, x.data(), 1, y.data(), 2);
  EXPECT_DOUBLE_EQ(y[0], 1.0);
  EXPECT_DOUBLE_EQ(y[2], 2.0);
  EXPECT_DOUBLE_EQ(y[6], 4.0);
  EXPECT_DOUBLE_EQ(y[1], 0.0);
}

TEST(Ddot, InnerProduct) {
  std::vector<double> x{1.0, 2.0, 3.0};
  std::vector<double> y{4.0, 5.0, 6.0};
  EXPECT_DOUBLE_EQ(ddot(3, x.data(), 1, y.data(), 1), 32.0);
  EXPECT_DOUBLE_EQ(ddot(0, x.data(), 1, y.data(), 1), 0.0);
}

TEST(Dnrm2, EuclideanNorm) {
  std::vector<double> x{3.0, 4.0};
  EXPECT_DOUBLE_EQ(dnrm2(2, x.data(), 1), 5.0);
}

TEST(Dnrm2, OverflowSafe) {
  std::vector<double> x{1e200, 1e200};
  EXPECT_NEAR(dnrm2(2, x.data(), 1), 1e200 * std::sqrt(2.0), 1e188);
}

TEST(Dnrm2, UnderflowSafe) {
  std::vector<double> x{1e-200, 1e-200};
  EXPECT_NEAR(dnrm2(2, x.data(), 1), 1e-200 * std::sqrt(2.0), 1e-212);
}

TEST(Dnrm2, ZeroVector) {
  std::vector<double> x{0.0, 0.0, 0.0};
  EXPECT_DOUBLE_EQ(dnrm2(3, x.data(), 1), 0.0);
}

TEST(Idamax, FindsLargestMagnitude) {
  std::vector<double> x{1.0, -7.0, 3.0, 7.0};
  EXPECT_EQ(idamax(4, x.data(), 1), 1);  // first of ties wins (|-7| at index 1)
  EXPECT_EQ(idamax(0, x.data(), 1), -1);
}

TEST(Idamax, StridedSearch) {
  std::vector<double> x{1.0, 100.0, 2.0, 100.0, -9.0};
  EXPECT_EQ(idamax(3, x.data(), 2), 2);  // elements 1.0, 2.0, -9.0
}

}  // namespace
}  // namespace rooftune::blas
