#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <sstream>

#include "cli/commands.hpp"

namespace rooftune::cli {
namespace {

struct CliResult {
  int code;
  std::string out;
  std::string err;
};

CliResult run(std::initializer_list<std::string> args) {
  std::ostringstream out, err;
  const int code = run_cli(std::vector<std::string>(args), out, err);
  return {code, out.str(), err.str()};
}

TEST(CliPipe, TunesExternalCommand) {
  const auto r = run({"pipe", "--command",
                      "printf '{x}\\n{x}\\n{x}\\n{x}\\n{x}\\n'", "--param",
                      "x=3,9,6", "--iterations", "4", "--invocations", "2",
                      "--metric", "widgets/s"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("x=9"), std::string::npos) << r.out;
  EXPECT_NE(r.out.find("widgets/s"), std::string::npos);
}

TEST(CliPipe, MultipleParams) {
  // Value = concatenation-ish: use x*1 printed; just verify it parses two
  // axes and runs the product space (2*2 = 4 configs).
  const auto r = run({"pipe", "--command", "printf '{x}{y}\\n{x}{y}\\n{x}{y}\\n'",
                      "--param", "x=1,2;y=3,4", "--iterations", "2",
                      "--invocations", "1", "--csv"});
  EXPECT_EQ(r.code, 0) << r.err;
  // CSV: header + 4 config rows; best is x=2,y=4 -> value 24.
  EXPECT_NE(r.out.find("24"), std::string::npos);
}

TEST(CliPipe, MissingArgumentsFail) {
  EXPECT_EQ(run({"pipe", "--param", "x=1"}).code, 1);
  EXPECT_EQ(run({"pipe", "--command", "printf '1\\n'"}).code, 1);
  EXPECT_EQ(run({"pipe", "--command", "c", "--param", "bad-spec"}).code, 1);
  EXPECT_EQ(run({"pipe", "--command", "c", "--param", "x=1,notanumber"}).code, 1);
}

TEST(CliStream, SimulatedSuiteShowsClassicOrdering) {
  const auto r = run({"stream", "--machine", "gold6148", "--sockets", "2",
                      "--technique", "c+i+o", "--min-count", "10"});
  EXPECT_EQ(r.code, 0) << r.err;
  for (const char* kernel : {"copy", "scale", "add", "triad"}) {
    EXPECT_NE(r.out.find(kernel), std::string::npos) << kernel;
  }
  // copy listed before triad, and triad's Table VI plateau (~139.8 GB/s)
  // reproduced within 1 % (the exact noise draw depends on the RNG stream).
  EXPECT_LT(r.out.find("copy"), r.out.find("triad"));
  const std::size_t row = r.out.find("triad");
  ASSERT_NE(row, std::string::npos);
  const double rate = std::strtod(r.out.c_str() + r.out.find('|', row) + 1, nullptr);
  EXPECT_NEAR(rate, 139.8, 0.01 * 139.8) << r.out;
}

TEST(CliCheckpoint, WritesAndConsumesCheckpoint) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "rooftune_cli_ckpt.json").string();
  std::filesystem::remove(path);
  const auto r = run({"dgemm", "--machine", "gold6132", "--technique", "c+i+o",
                      "--checkpoint", path});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("n=1000,m=4096,k=128"), std::string::npos);
  // Completed runs clean their checkpoint up.
  EXPECT_FALSE(std::filesystem::exists(path));
}

}  // namespace
}  // namespace rooftune::cli
