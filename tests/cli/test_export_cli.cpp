// CLI wiring for the kernel-suite additions and the portable export:
// the spmv/stencil subcommands, --export on tuning runs, `rooftune export`
// (journal reconstruction), `rooftune import --replay` verification, the
// byte-identical re-export, and the schema-version rejections.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "cli/commands.hpp"

namespace rooftune::cli {
namespace {

struct CliResult {
  int code;
  std::string out;
  std::string err;
};

CliResult run(const std::vector<std::string>& args) {
  std::ostringstream out, err;
  const int code = run_cli(args, out, err);
  return {code, out.str(), err.str()};
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// Per-test scratch paths under the system temp dir, removed on teardown.
class ExportCliTest : public ::testing::Test {
 protected:
  std::string path(const std::string& suffix) {
    const std::string p =
        (std::filesystem::temp_directory_path() /
         ("rooftune_export_cli_" +
          std::to_string(::testing::UnitTest::GetInstance()
                             ->current_test_info()
                             ->line()) +
          suffix))
            .string();
    cleanup_.push_back(p);
    std::filesystem::remove(p);
    return p;
  }

  void TearDown() override {
    for (const auto& p : cleanup_) std::filesystem::remove(p);
  }

  std::vector<std::string> cleanup_;
};

TEST_F(ExportCliTest, UsageListsTheNewCommands) {
  const auto r = run({"help"});
  EXPECT_EQ(r.code, 0);
  for (const char* command : {"spmv", "stencil", "export", "import"}) {
    EXPECT_NE(r.out.find(command), std::string::npos) << command;
  }
}

TEST_F(ExportCliTest, SpmvTunesOnSimulatedMachine) {
  const auto r = run({"spmv", "--invocations", "2", "--iterations", "10"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("GFLOP/s"), std::string::npos);
  EXPECT_NE(r.out.find("format="), std::string::npos) << r.out;
}

TEST_F(ExportCliTest, StencilTunesWithGridFlag) {
  const auto r = run({"stencil", "--grid-n", "512", "--invocations", "2",
                      "--iterations", "10"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("ti="), std::string::npos) << r.out;
}

TEST_F(ExportCliTest, NewKernelsRejectNative) {
  for (const char* kernel : {"spmv", "stencil"}) {
    const auto r = run({kernel, "--native"});
    EXPECT_EQ(r.code, 1) << kernel;
    EXPECT_NE(r.err.find("--native is not supported"), std::string::npos)
        << kernel;
  }
}

TEST_F(ExportCliTest, ExportImportReplayRoundTripsByteIdentically) {
  const std::string exported = path(".json");
  const std::string reexported = path(".re.json");
  const auto tune = run({"spmv", "--invocations", "2", "--iterations", "10",
                         "--export", exported});
  ASSERT_EQ(tune.code, 0) << tune.err;
  EXPECT_NE(tune.out.find("wrote tuning export"), std::string::npos);

  const auto imported =
      run({"import", exported, "--replay", "-o", reexported});
  EXPECT_EQ(imported.code, 0) << imported.err;
  EXPECT_NE(imported.out.find("0 value mismatch(es)"), std::string::npos)
      << imported.out;
  EXPECT_NE(imported.out.find("reproduced bit-identically"), std::string::npos)
      << imported.out;
  EXPECT_EQ(read_file(exported), read_file(reexported));
}

TEST_F(ExportCliTest, ExportCommandReconstructsFromJournal) {
  const std::string journal = path(".jsonl");
  const std::string exported = path(".json");
  const auto tune = run({"stencil", "--grid-n", "512", "--invocations", "2",
                         "--iterations", "10", "--trace", journal});
  ASSERT_EQ(tune.code, 0) << tune.err;

  const auto exported_r = run({"export", "--journal", journal, "-o", exported});
  ASSERT_EQ(exported_r.code, 0) << exported_r.err;
  EXPECT_NE(exported_r.out.find("benchmark stencil"), std::string::npos)
      << exported_r.out;

  const auto imported = run({"import", exported, "--replay"});
  EXPECT_EQ(imported.code, 0) << imported.err;
  EXPECT_NE(imported.out.find("reproduced bit-identically"), std::string::npos)
      << imported.out;
}

TEST_F(ExportCliTest, ImportRejectsNewerSchemaVersion) {
  const std::string exported = path(".json");
  {
    std::ofstream out(exported);
    out << "{\"format\":\"rooftune-export\",\"version\":99}";
  }
  const auto r = run({"import", exported, "--replay"});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("schema version 99"), std::string::npos) << r.err;
}

TEST_F(ExportCliTest, TraceRejectsNewerJournalWithClearError) {
  const std::string journal = path(".jsonl");
  {
    std::ofstream out(journal);
    out << "{\"t\":\"run\",\"v\":99,\"benchmark\":\"dgemm\",\"metric\":"
           "\"GFLOP/s\",\"strategy\":\"exhaustive\"}\n";
  }
  const auto r = run({"trace", journal});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("journal schema version 99"), std::string::npos)
      << r.err;
  EXPECT_NE(r.err.find("upgrade rooftune"), std::string::npos) << r.err;
}

TEST_F(ExportCliTest, ExportRequiresJournalAndOutput) {
  EXPECT_EQ(run({"export"}).code, 1);
  EXPECT_EQ(run({"export", "--journal", "missing.jsonl"}).code, 1);
  EXPECT_EQ(run({"import"}).code, 1);
}

}  // namespace
}  // namespace rooftune::cli
