#include "cli/commands.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace rooftune::cli {
namespace {

struct CliResult {
  int code;
  std::string out;
  std::string err;
};

CliResult run(std::initializer_list<std::string> args) {
  std::ostringstream out, err;
  const int code = run_cli(std::vector<std::string>(args), out, err);
  return {code, out.str(), err.str()};
}

TEST(Cli, NoArgsShowsUsageAndFails) {
  const auto r = run({});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.out.find("usage:"), std::string::npos);
}

TEST(Cli, HelpSucceeds) {
  const auto r = run({"help"});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("roofline"), std::string::npos);
}

TEST(Cli, UnknownCommandFails) {
  const auto r = run({"frobnicate"});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("unknown command"), std::string::npos);
}

TEST(Cli, MachinesListsAllFive) {
  const auto r = run({"machines"});
  EXPECT_EQ(r.code, 0);
  for (const char* name :
       {"2650v4", "2695v4", "gold6132", "gold6148", "silver4110"}) {
    EXPECT_NE(r.out.find(name), std::string::npos) << name;
  }
  // Table III peaks visible.
  EXPECT_NE(r.out.find("422.4"), std::string::npos);
  EXPECT_NE(r.out.find("127.968"), std::string::npos);
}

TEST(Cli, DgemmOnSimulatedMachine) {
  const auto r =
      run({"dgemm", "--machine", "2650v4", "--technique", "c+i+o", "--min-count", "10"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("n=1000,m=4096,k=128"), std::string::npos) << r.out;
  EXPECT_NE(r.out.find("GFLOP/s"), std::string::npos);
}

TEST(Cli, DgemmJsonOutput) {
  const auto r = run({"dgemm", "--machine", "gold6132", "--json", "--min-count", "10"});
  EXPECT_EQ(r.code, 0);
  EXPECT_EQ(r.out.rfind("{", 0), 0u);
  EXPECT_NE(r.out.find("\"best\""), std::string::npos);
}

TEST(Cli, DgemmCsvOutput) {
  const auto r = run({"dgemm", "--machine", "gold6132", "--csv", "--min-count", "10"});
  EXPECT_EQ(r.code, 0);
  EXPECT_EQ(r.out.rfind("n,m,k,", 0), 0u);
}

TEST(Cli, TriadRunsAndFindsCacheResidentPeak) {
  const auto r = run({"triad", "--machine", "2650v4", "--sockets", "2"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("GB/s"), std::string::npos);
}

TEST(Cli, RejectsUnknownMachine) {
  const auto r = run({"dgemm", "--machine", "m2max"});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("unknown machine"), std::string::npos);
}

TEST(Cli, RejectsUnknownTechnique) {
  const auto r = run({"dgemm", "--machine", "2650v4", "--technique", "magic"});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("unknown technique"), std::string::npos);
}

TEST(Cli, RejectsUnknownOrder) {
  const auto r = run({"dgemm", "--machine", "2650v4", "--order", "spiral"});
  EXPECT_EQ(r.code, 1);
}

TEST(Cli, RooflineProducesUtilizationTable) {
  const auto r = run({"roofline", "--machine", "gold6148", "--min-count", "10"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("DGEMM 1 socket"), std::string::npos);
  EXPECT_NE(r.out.find("DRAM 2 sockets"), std::string::npos);
  EXPECT_NE(r.out.find("Utilization"), std::string::npos);
  EXPECT_NE(r.out.find("Roofline: gold6148"), std::string::npos);  // ASCII plot
}

}  // namespace
}  // namespace rooftune::cli
