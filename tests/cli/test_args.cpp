#include "cli/args.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace rooftune::cli {
namespace {

ArgParser make_parser() {
  ArgParser p;
  p.add_option("machine", "machine name");
  p.add_option("timeout", "seconds", "t");
  p.add_flag("json", "emit json");
  return p;
}

TEST(ArgParser, LongOptionsWithSeparateValue) {
  auto p = make_parser();
  p.parse({"--machine", "2650v4", "--timeout", "5"});
  EXPECT_EQ(p.get_or("machine", ""), "2650v4");
  EXPECT_EQ(p.get_int("timeout", 0), 5);
}

TEST(ArgParser, EqualsSyntax) {
  auto p = make_parser();
  p.parse({"--machine=gold6148", "--timeout=2.5"});
  EXPECT_EQ(p.get_or("machine", ""), "gold6148");
  EXPECT_DOUBLE_EQ(p.get_double("timeout", 0.0), 2.5);
}

TEST(ArgParser, ShortAlias) {
  // The paper's tool exposes the timeout as -t (§III-C.1).
  auto p = make_parser();
  p.parse({"-t", "10"});
  EXPECT_EQ(p.get_int("timeout", 0), 10);
}

TEST(ArgParser, Flags) {
  auto p = make_parser();
  p.parse({"--json"});
  EXPECT_TRUE(p.has("json"));
  EXPECT_FALSE(p.has("machine"));
}

TEST(ArgParser, PositionalArguments) {
  auto p = make_parser();
  p.parse({"first", "--json", "second"});
  EXPECT_EQ(p.positional(), (std::vector<std::string>{"first", "second"}));
}

TEST(ArgParser, DefaultsWhenAbsent) {
  auto p = make_parser();
  p.parse({});
  EXPECT_EQ(p.get_or("machine", "2650v4"), "2650v4");
  EXPECT_EQ(p.get_int("timeout", 10), 10);
  EXPECT_FALSE(p.get("machine").has_value());
}

TEST(ArgParser, Errors) {
  auto p = make_parser();
  EXPECT_THROW(p.parse({"--unknown", "x"}), std::invalid_argument);
  auto p2 = make_parser();
  EXPECT_THROW(p2.parse({"--machine"}), std::invalid_argument);
  auto p3 = make_parser();
  EXPECT_THROW(p3.parse({"--json=true"}), std::invalid_argument);
  auto p4 = make_parser();
  EXPECT_THROW(p4.parse({"-x"}), std::invalid_argument);
  auto p5 = make_parser();
  p5.parse({"--timeout", "abc"});
  EXPECT_THROW(static_cast<void>(p5.get_int("timeout", 0)), std::invalid_argument);
  EXPECT_THROW(static_cast<void>(p5.get_double("timeout", 0.0)), std::invalid_argument);
}

TEST(ArgParser, HelpListsOptions) {
  const auto p = make_parser();
  const std::string help = p.help();
  EXPECT_NE(help.find("--machine"), std::string::npos);
  EXPECT_NE(help.find("(-t)"), std::string::npos);
  EXPECT_NE(help.find("emit json"), std::string::npos);
}

}  // namespace
}  // namespace rooftune::cli
