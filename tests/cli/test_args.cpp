#include "cli/args.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace rooftune::cli {
namespace {

ArgParser make_parser() {
  ArgParser p;
  p.add_option("machine", "machine name");
  p.add_option("timeout", "seconds", "t");
  p.add_flag("json", "emit json");
  return p;
}

TEST(ArgParser, LongOptionsWithSeparateValue) {
  auto p = make_parser();
  p.parse({"--machine", "2650v4", "--timeout", "5"});
  EXPECT_EQ(p.get_or("machine", ""), "2650v4");
  EXPECT_EQ(p.get_int("timeout", 0), 5);
}

TEST(ArgParser, EqualsSyntax) {
  auto p = make_parser();
  p.parse({"--machine=gold6148", "--timeout=2.5"});
  EXPECT_EQ(p.get_or("machine", ""), "gold6148");
  EXPECT_DOUBLE_EQ(p.get_double("timeout", 0.0), 2.5);
}

TEST(ArgParser, ShortAlias) {
  // The paper's tool exposes the timeout as -t (§III-C.1).
  auto p = make_parser();
  p.parse({"-t", "10"});
  EXPECT_EQ(p.get_int("timeout", 0), 10);
}

TEST(ArgParser, Flags) {
  auto p = make_parser();
  p.parse({"--json"});
  EXPECT_TRUE(p.has("json"));
  EXPECT_FALSE(p.has("machine"));
}

TEST(ArgParser, PositionalArguments) {
  auto p = make_parser();
  p.parse({"first", "--json", "second"});
  EXPECT_EQ(p.positional(), (std::vector<std::string>{"first", "second"}));
}

TEST(ArgParser, DefaultsWhenAbsent) {
  auto p = make_parser();
  p.parse({});
  EXPECT_EQ(p.get_or("machine", "2650v4"), "2650v4");
  EXPECT_EQ(p.get_int("timeout", 10), 10);
  EXPECT_FALSE(p.get("machine").has_value());
}

TEST(ArgParser, Errors) {
  auto p = make_parser();
  EXPECT_THROW(p.parse({"--unknown", "x"}), std::invalid_argument);
  auto p2 = make_parser();
  EXPECT_THROW(p2.parse({"--machine"}), std::invalid_argument);
  auto p3 = make_parser();
  EXPECT_THROW(p3.parse({"--json=true"}), std::invalid_argument);
  auto p4 = make_parser();
  EXPECT_THROW(p4.parse({"-x"}), std::invalid_argument);
  auto p5 = make_parser();
  p5.parse({"--timeout", "abc"});
  EXPECT_THROW(static_cast<void>(p5.get_int("timeout", 0)), std::invalid_argument);
  EXPECT_THROW(static_cast<void>(p5.get_double("timeout", 0.0)), std::invalid_argument);
}

// --counter-prune style options: the value is optional, and only a
// whole-token numeric is consumed as one (so a following option or
// positional is never swallowed).
TEST(ArgParser, OptionalValueTakesNumericLookahead) {
  ArgParser p;
  p.add_optional_value("counter-prune", "margin");
  p.add_flag("json", "emit json");
  p.parse({"--counter-prune", "0.1", "--json"});
  EXPECT_TRUE(p.has("counter-prune"));
  EXPECT_DOUBLE_EQ(p.get_double("counter-prune", 0.25), 0.1);
  EXPECT_TRUE(p.has("json"));
}

TEST(ArgParser, OptionalValueBareFallsBackToDefault) {
  ArgParser p;
  p.add_optional_value("counter-prune", "margin");
  p.add_flag("json", "emit json");
  p.parse({"--counter-prune", "--json"});
  EXPECT_TRUE(p.has("counter-prune"));
  // No numeric followed: callers read their own default back.
  EXPECT_DOUBLE_EQ(p.get_double("counter-prune", 0.25), 0.25);
  EXPECT_TRUE(p.has("json"));
}

TEST(ArgParser, OptionalValueAtEndOfLineAndEqualsSyntax) {
  ArgParser p;
  p.add_optional_value("counter-prune", "margin");
  p.parse({"--counter-prune"});
  EXPECT_TRUE(p.has("counter-prune"));
  EXPECT_DOUBLE_EQ(p.get_double("counter-prune", 0.25), 0.25);

  ArgParser q;
  q.add_optional_value("counter-prune", "margin");
  q.parse({"--counter-prune=-0.1"});  // negative margin (ablation mode)
  EXPECT_DOUBLE_EQ(q.get_double("counter-prune", 0.25), -0.1);
}

TEST(ArgParser, OptionalValueDoesNotSwallowNonNumericTokens) {
  ArgParser p;
  p.add_optional_value("counter-prune", "margin");
  p.parse({"--counter-prune", "positional"});
  EXPECT_TRUE(p.has("counter-prune"));
  EXPECT_DOUBLE_EQ(p.get_double("counter-prune", 0.25), 0.25);
  ASSERT_EQ(p.positional().size(), 1u);
  EXPECT_EQ(p.positional()[0], "positional");
}

TEST(ArgParser, HelpListsOptions) {
  const auto p = make_parser();
  const std::string help = p.help();
  EXPECT_NE(help.find("--machine"), std::string::npos);
  EXPECT_NE(help.find("(-t)"), std::string::npos);
  EXPECT_NE(help.find("emit json"), std::string::npos);
}

}  // namespace
}  // namespace rooftune::cli
