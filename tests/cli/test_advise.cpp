#include <gtest/gtest.h>

#include <sstream>

#include "cli/commands.hpp"

namespace rooftune::cli {
namespace {

struct CliResult {
  int code;
  std::string out;
  std::string err;
};

CliResult run(std::initializer_list<std::string> args) {
  std::ostringstream out, err;
  const int code = run_cli(std::vector<std::string>(args), out, err);
  return {code, out.str(), err.str()};
}

TEST(CliAdvise, SingleMachineTriadIsMemoryBound) {
  const auto r = run({"advise", "--machine", "2650v4", "--intensity", "0.0833"});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("memory-bound"), std::string::npos);
  EXPECT_NE(r.out.find("2650v4"), std::string::npos);
}

TEST(CliAdvise, RanksAllPaperMachines) {
  const auto r = run({"advise", "--intensity", "50"});
  EXPECT_EQ(r.code, 0) << r.err;
  for (const char* name : {"2650v4", "2695v4", "gold6132", "gold6148"}) {
    EXPECT_NE(r.out.find(name), std::string::npos) << name;
  }
  // Compute-bound at I=50: the AVX512 gold6148 must rank first.
  const auto rank1 = r.out.find("| 1 ");
  ASSERT_NE(rank1, std::string::npos);
  EXPECT_NE(r.out.find("gold6148", rank1), std::string::npos);
  EXPECT_NE(r.out.find("compute"), std::string::npos);
}

TEST(CliAdvise, MemoryBoundRankingDiffersFromComputeBound) {
  const auto lo = run({"advise", "--intensity", "0.05"});
  ASSERT_EQ(lo.code, 0);
  // At TRIAD-like intensity everything is memory-bound.
  EXPECT_NE(lo.out.find("memory"), std::string::npos);
}

TEST(CliAdvise, RejectsNonPositiveIntensity) {
  const auto r = run({"advise", "--intensity", "0"});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("positive"), std::string::npos);
}

}  // namespace
}  // namespace rooftune::cli
