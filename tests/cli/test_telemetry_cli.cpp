// CLI wiring for --telemetry/--energy and the trace stability report:
// flag guards, the sidecar next to the journal, the provenance head line,
// and the pipe backend's perf-counter refusal.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "cli/commands.hpp"

namespace rooftune::cli {
namespace {

struct CliResult {
  int code;
  std::string out;
  std::string err;
};

CliResult run(const std::vector<std::string>& args) {
  std::ostringstream out, err;
  const int code = run_cli(args, out, err);
  return {code, out.str(), err.str()};
}

class TelemetryCliTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = (std::filesystem::temp_directory_path() /
             ("rooftune_tel_cli_" +
              std::to_string(::testing::UnitTest::GetInstance()
                                 ->current_test_info()
                                 ->line()) +
              ".jsonl"))
                .string();
    std::filesystem::remove(path_);
    std::filesystem::remove(sidecar_path());
  }
  void TearDown() override {
    std::filesystem::remove(path_);
    std::filesystem::remove(sidecar_path());
  }

  [[nodiscard]] std::string sidecar_path() const {
    return path_ + ".telemetry.jsonl";
  }

  /// A fast simulated dgemm run with synthetic drift strong enough to
  /// trip the 5 % throttle line.
  [[nodiscard]] CliResult traced_run() const {
    return run({"dgemm", "--machine", "gold6148", "--small-space",
                "--invocations", "2", "--iterations", "20", "--trace", path_,
                "--telemetry", "--energy", "--thermal-tau", "0.2",
                "--throttle-factor", "0.8", "--pkg-power", "105"});
  }

  std::string path_;
};

TEST_F(TelemetryCliTest, TelemetryRequiresTrace) {
  const auto r = run({"dgemm", "--machine", "2650v4", "--telemetry"});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("--telemetry requires --trace"), std::string::npos);
}

TEST_F(TelemetryCliTest, EnergyRequiresTelemetry) {
  const auto r =
      run({"dgemm", "--machine", "2650v4", "--trace", path_, "--energy"});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("--energy requires --telemetry"), std::string::npos);
}

TEST_F(TelemetryCliTest, TelemetryPeriodRequiresTelemetry) {
  const auto r = run({"dgemm", "--machine", "2650v4", "--trace", path_,
                      "--telemetry-period", "50"});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("--telemetry-period requires --telemetry"),
            std::string::npos);
}

TEST_F(TelemetryCliTest, PipeRefusesPerfCounters) {
  const auto r = run({"pipe", "--command", "echo {n}", "--param", "n=1,2",
                      "--trace", path_, "--perf-counters"});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("--perf-counters is not supported"), std::string::npos);
}

TEST_F(TelemetryCliTest, SimRunWritesProvenanceHeadedJournalAndSidecar) {
  const auto r = traced_run();
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("wrote telemetry sidecar"), std::string::npos) << r.out;
  EXPECT_NE(r.out.find("run quality:"), std::string::npos) << r.out;
  EXPECT_NE(r.out.find("best config energy:"), std::string::npos) << r.out;
  EXPECT_NE(r.out.find("J/GFLOP"), std::string::npos) << r.out;

  std::ifstream journal(path_);
  ASSERT_TRUE(journal.good());
  std::string first;
  std::getline(journal, first);
  EXPECT_EQ(first.rfind(R"({"t":"provenance")", 0), 0u) << first;

  std::ifstream sidecar(sidecar_path());
  ASSERT_TRUE(sidecar.good());
  std::getline(sidecar, first);
  EXPECT_EQ(first, R"({"t":"telemetry","v":1})");
}

TEST_F(TelemetryCliTest, SyntheticDriftTriggersTheQualityWarning) {
  const auto r = traced_run();
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("run quality: WARN"), std::string::npos) << r.out;
  EXPECT_NE(r.out.find("drifted"), std::string::npos) << r.out;
}

TEST_F(TelemetryCliTest, TraceCommandPrintsTheStabilityReport) {
  ASSERT_EQ(traced_run().code, 0);
  const auto r = run({"trace", path_});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("env:"), std::string::npos) << r.out;
  EXPECT_NE(r.out.find("Freq CV"), std::string::npos) << r.out;
  EXPECT_NE(r.out.find("Throttle events:"), std::string::npos) << r.out;
  EXPECT_NE(r.out.find("J/GFLOP"), std::string::npos) << r.out;
  EXPECT_NE(r.out.find("run quality:"), std::string::npos) << r.out;
}

TEST_F(TelemetryCliTest, TraceReportIsByteIdenticalAcrossReruns) {
  ASSERT_EQ(traced_run().code, 0);
  const auto first = run({"trace", path_});
  ASSERT_EQ(first.code, 0);
  std::filesystem::remove(path_);
  std::filesystem::remove(sidecar_path());
  ASSERT_EQ(traced_run().code, 0);
  const auto second = run({"trace", path_});
  EXPECT_EQ(first.out, second.out);
}

TEST_F(TelemetryCliTest, TraceHelpDocumentsTheSidecar) {
  const auto r = run({"trace", "--help"});
  EXPECT_EQ(r.code, 0);
  EXPECT_NE(r.out.find("telemetry"), std::string::npos);
  EXPECT_NE(r.out.find("provenance"), std::string::npos);
}

}  // namespace
}  // namespace rooftune::cli
