// CLI wiring for the self-profiler: --profile on tuning runs writes a
// parseable Chrome trace-event sidecar, `rooftune profile` renders the
// analysis report, `rooftune version` pins build and schema versions, and
// the journal's bytes never depend on whether profiling was on.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "cli/commands.hpp"
#include "trace/profile_export.hpp"

namespace rooftune::cli {
namespace {

struct CliResult {
  int code;
  std::string out;
  std::string err;
};

CliResult run(const std::vector<std::string>& args) {
  std::ostringstream out, err;
  const int code = run_cli(args, out, err);
  return {code, out.str(), err.str()};
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// Per-test scratch paths under the system temp dir, removed on teardown.
class ProfileCliTest : public ::testing::Test {
 protected:
  std::string path(const std::string& suffix) {
    const std::string p =
        (std::filesystem::temp_directory_path() /
         ("rooftune_profile_cli_" +
          std::to_string(::testing::UnitTest::GetInstance()
                             ->current_test_info()
                             ->line()) +
          suffix))
            .string();
    cleanup_.push_back(p);
    std::filesystem::remove(p);
    return p;
  }

  void TearDown() override {
    for (const auto& p : cleanup_) std::filesystem::remove(p);
  }

  std::vector<std::string> cleanup_;
};

TEST(VersionCliTest, PrintsBuildAndSchemaVersions) {
  for (const char* spelling : {"version", "--version"}) {
    const auto r = run({spelling});
    EXPECT_EQ(r.code, 0) << r.err;
    EXPECT_NE(r.out.find("build:"), std::string::npos) << r.out;
    EXPECT_NE(r.out.find("compiler:"), std::string::npos);
    EXPECT_NE(r.out.find("simd dispatch:"), std::string::npos);
    EXPECT_NE(r.out.find("journal schema:  v1"), std::string::npos);
    EXPECT_NE(r.out.find("export schema:   v1"), std::string::npos);
    EXPECT_NE(r.out.find("profile schema:  v1"), std::string::npos);
  }
}

TEST(VersionCliTest, ListedInUsage) {
  const auto r = run({"help"});
  EXPECT_NE(r.out.find("profile"), std::string::npos);
  EXPECT_NE(r.out.find("version"), std::string::npos);
}

TEST_F(ProfileCliTest, TuningRunWritesParseableSidecar) {
  const std::string profile = path(".json");
  const auto r = run({"dgemm", "--machine", "2650v4", "--grid-scale", "4",
                      "--strategy", "racing", "--workers", "2",
                      "--sched-stats", "--profile", profile});
  ASSERT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("wrote profile"), std::string::npos) << r.out;

  const trace::ProfileDocument doc = trace::parse_profile_file(profile);
  EXPECT_EQ(doc.meta.benchmark, "dgemm");
  EXPECT_EQ(doc.meta.strategy, "racing");
  EXPECT_TRUE(doc.meta.have_sums);
  ASSERT_TRUE(doc.meta.sched.has_value());
  EXPECT_EQ(doc.meta.sched->workers, 2u);
  EXPECT_GT(doc.snapshot.total_records(), 0u);
  // Worker lanes and the coordinator both registered.
  bool saw_worker = false;
  bool saw_coordinator = false;
  for (const auto& lane : doc.snapshot.lanes) {
    saw_worker |= lane.thread_name.rfind("worker-", 0) == 0;
    saw_coordinator |= lane.thread_name == "coordinator";
  }
  EXPECT_TRUE(saw_worker);
  EXPECT_TRUE(saw_coordinator);
}

TEST_F(ProfileCliTest, ProfileSubcommandRendersReport) {
  const std::string profile = path(".json");
  ASSERT_EQ(run({"triad", "--machine", "2650v4", "--strategy", "racing",
                 "--workers", "2", "--sched-stats", "--profile", profile})
                .code,
            0);
  const auto r = run({"profile", profile});
  EXPECT_EQ(r.code, 0) << r.err;
  EXPECT_NE(r.out.find("self-profile: triad / racing"), std::string::npos)
      << r.out;
  EXPECT_NE(r.out.find("category hierarchy"), std::string::npos);
  EXPECT_NE(r.out.find("worker lanes"), std::string::npos);
  EXPECT_NE(r.out.find("cross-check"), std::string::npos);
}

TEST(ProfileCliTest2, NoArgsShowsUsage) {
  const auto r = run({"profile"});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.out.find("usage: rooftune profile"), std::string::npos);
}

TEST(ProfileCliTest2, MissingFileFails) {
  const auto r = run({"profile", "/nonexistent/profile.json"});
  EXPECT_EQ(r.code, 1);
  EXPECT_FALSE(r.err.empty());
}

TEST(ProfileCliTest2, EmptyProfilePathIsRejected) {
  const auto r = run({"dgemm", "--machine", "2650v4", "--profile", ""});
  EXPECT_EQ(r.code, 1);
  EXPECT_NE(r.err.find("--profile"), std::string::npos);
}

TEST_F(ProfileCliTest, JournalBytesIdenticalWithProfilingOnAndOff) {
  const std::string journal_off = path(".off.jsonl");
  const std::string journal_on = path(".on.jsonl");
  const std::string profile = path(".json");
  ASSERT_EQ(run({"dgemm", "--machine", "2650v4", "--grid-scale", "4",
                 "--strategy", "racing", "--workers", "2", "--trace",
                 journal_off})
                .code,
            0);
  ASSERT_EQ(run({"dgemm", "--machine", "2650v4", "--grid-scale", "4",
                 "--strategy", "racing", "--workers", "2", "--trace",
                 journal_on, "--profile", profile})
                .code,
            0);
  EXPECT_EQ(read_file(journal_off), read_file(journal_on));
}

}  // namespace
}  // namespace rooftune::cli
