// The stencil response surface: tiered traffic model (L1/L2 spill
// penalties), the cache-driven ridge in the tiling landscape, argument
// validation, and the backend's counter signatures agreeing with
// analytic_intensity.

#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <stdexcept>

#include "core/config.hpp"
#include "core/spaces.hpp"
#include "simhw/machine.hpp"
#include "simhw/sim_backend.hpp"
#include "simhw/stencil_model.hpp"

namespace rooftune::simhw {
namespace {

constexpr double kOiTolerance = 0.05;

StencilSurface surface_2650(std::int64_t grid_n = 4096) {
  return StencilSurface(machine_by_name("2650v4"), 1, grid_n);
}

TEST(StencilSurface, RejectsBadArguments) {
  EXPECT_THROW(StencilSurface(machine_by_name("2650v4"), 1, 4),
               std::invalid_argument);
  const auto surface = surface_2650();
  EXPECT_THROW(surface.mean_gflops(0, 64, 1), std::invalid_argument);
  EXPECT_THROW(surface.mean_gflops(64, 0, 1), std::invalid_argument);
  EXPECT_THROW(surface.mean_gflops(64, 64, 3), std::invalid_argument);
}

TEST(StencilSurface, TrafficTiersTrackTheCaches) {
  const auto surface = surface_2650();
  const double n2 = static_cast<double>(surface.grid_n()) *
                    static_cast<double>(surface.grid_n());
  // A small tile keeps all reuse: compulsory 16 B/point only.
  EXPECT_DOUBLE_EQ(surface.sweep_bytes(16, 64), 16.0 * n2);
  // Rows too wide for L1 (tile still inside L2): the top neighbour is
  // re-fetched, +8 B/point.
  EXPECT_DOUBLE_EQ(surface.sweep_bytes(8, 2048), 24.0 * n2);
  // A tall tile past L2 with L1-resident rows streams its halo, +4 B/point.
  EXPECT_DOUBLE_EQ(surface.sweep_bytes(1024, 256), 20.0 * n2);
  // Both spills stack.
  EXPECT_DOUBLE_EQ(surface.sweep_bytes(1024, 2048), 28.0 * n2);
  EXPECT_DOUBLE_EQ(surface.sweep_flops(), 6.0 * n2);
  EXPECT_DOUBLE_EQ(surface.grid_bytes(), 16.0 * n2);
}

TEST(StencilSurface, RidgeBeatsTheCorners) {
  // The optimum sits where rows fit L1 and the tile fits L2; degenerate
  // corner tilings collapse.  Matches the CLI landscape on 2650v4.
  const auto surface = surface_2650();
  const double ridge = surface.mean_gflops(64, 256, 4);
  EXPECT_GT(ridge, 2.0 * surface.mean_gflops(8, 4, 1));
  EXPECT_GT(ridge, surface.mean_gflops(1024, 512, 8));
  // Unroll peaks at 4: register pressure costs at 8, overhead at 1.
  EXPECT_GT(surface.mean_gflops(64, 256, 4), surface.mean_gflops(64, 256, 1));
  EXPECT_GT(surface.mean_gflops(64, 256, 4), surface.mean_gflops(64, 256, 8));
}

TEST(StencilSurface, GridSizePicksTheBandwidthRegime) {
  // A resident grid tunes like a cache benchmark (fraction < 1), the
  // default 4096^2 grid against DRAM (fraction 1).
  const auto small = surface_2650(256);
  const auto large = surface_2650(4096);
  EXPECT_LT(small.dram_fraction(), 1.0);
  EXPECT_DOUBLE_EQ(large.dram_fraction(), 1.0);
  EXPECT_GT(small.mean_gflops(64, 256, 4), 2.0 * large.mean_gflops(64, 256, 4));
}

TEST(StencilSurface, DeterministicAcrossInstances) {
  const auto a = surface_2650();
  const auto b = surface_2650();
  for (const std::int64_t ti : {8, 64, 1024}) {
    for (const std::int64_t tj : {4, 256, 512}) {
      EXPECT_EQ(a.mean_gflops(ti, tj, 2), b.mean_gflops(ti, tj, 2));
    }
  }
}

SimStencilBackend stencil_backend(bool counter_model,
                                  std::int64_t grid_n = 4096) {
  SimOptions options;
  options.sockets_used = 1;
  options.seed = 2021;
  options.counter_model = counter_model;
  return SimStencilBackend(machine_by_name("2650v4"), options, grid_n);
}

TEST(SimStencilBackend, MeasuredOiMatchesAnalyticIntensity) {
  auto backend = stencil_backend(/*counter_model=*/true);
  const core::Configuration config({{"ti", 64}, {"tj", 256}, {"unroll", 4}});
  const int iterations = 4;
  backend.begin_invocation(config, 0);
  for (int i = 0; i < iterations; ++i) backend.run_iteration();
  backend.end_invocation();
  const auto sample = backend.last_invocation_counters();
  ASSERT_TRUE(sample.has_value());
  ASSERT_GT(sample->llc_misses, 0u);
  const auto predicted = backend.analytic_intensity(config);
  ASSERT_TRUE(predicted.has_value());
  const double flops = *backend.flops_per_iteration() * iterations;
  const double oi = flops / (64.0 * static_cast<double>(sample->llc_misses));
  EXPECT_NEAR(oi, *predicted, kOiTolerance * *predicted);
}

TEST(SimStencilBackend, RateStaysUnderCounterRoofline) {
  const auto machine = machine_by_name("2650v4");
  const double bw = machine.theoretical_bandwidth(1).value;
  for (const std::int64_t grid_n : {1024, 4096}) {
    auto backend = stencil_backend(/*counter_model=*/true, grid_n);
    const core::Configuration config({{"ti", 8}, {"tj", 4}, {"unroll", 1}});
    backend.begin_invocation(config, 0);
    const auto sample = backend.run_iteration();
    backend.end_invocation();
    const auto oi = backend.analytic_intensity(config);
    ASSERT_TRUE(oi.has_value());
    EXPECT_LE(sample.value, bw * *oi * 1.01) << "grid_n=" << grid_n;
  }
}

TEST(SimStencilBackend, AnalyticIntensityRejectsInvalidConfigs) {
  auto backend = stencil_backend(/*counter_model=*/true);
  EXPECT_FALSE(backend
                   .analytic_intensity(core::Configuration(
                       {{"ti", 64}, {"tj", 256}, {"unroll", 3}}))
                   .has_value());
  EXPECT_FALSE(
      backend.analytic_intensity(core::Configuration({{"n", 64}})).has_value());
}

TEST(StencilSpace, ConstraintPrunesWideUnrolls) {
  const auto space = core::stencil_space();
  // 8 ti x 8 tj x 4 unroll = 256, minus the 8 (tj=4, unroll=8) combinations.
  EXPECT_EQ(space.cartesian_cardinality(), 256u);
  EXPECT_EQ(space.cardinality(), 248u);
}

}  // namespace
}  // namespace rooftune::simhw
