#include "simhw/machine.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace rooftune::simhw {
namespace {

// Paper Table III: theoretical peaks implied by Eqs. 9-11 and Table II.
struct PeakCase {
  const char* machine;
  double ft_single;   // GFLOP/s, single socket (Table III convention)
  double bt_system;   // GB/s, full system (Table III convention)
};

class TheoreticalPeakTest : public ::testing::TestWithParam<PeakCase> {};

TEST_P(TheoreticalPeakTest, MatchesTableIII) {
  const auto& c = GetParam();
  const MachineSpec m = machine_by_name(c.machine);
  EXPECT_NEAR(m.theoretical_flops(1).value, c.ft_single, 1e-9);
  EXPECT_NEAR(m.theoretical_flops(2).value, 2.0 * c.ft_single, 1e-9);
  EXPECT_NEAR(m.theoretical_bandwidth(2).value, c.bt_system, 1e-9);
  EXPECT_NEAR(m.theoretical_bandwidth(1).value, c.bt_system / 2.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(PaperMachines, TheoreticalPeakTest,
                         ::testing::Values(PeakCase{"2650v4", 422.4, 76.8},
                                           PeakCase{"2695v4", 604.8, 76.8},
                                           PeakCase{"gold6132", 1164.8, 127.968},
                                           PeakCase{"gold6148", 1536.0, 127.968}));

TEST(MachineSpec, OpsPerCycle) {
  const MachineSpec avx2 = machine_by_name("2650v4");
  const MachineSpec avx512 = machine_by_name("gold6132");
  // Paper Eq. 10: AVX512 = 16 DP ops/cycle per unit; AVX2 = 8.
  EXPECT_EQ(avx2.ops_per_cycle(), 8 * avx2.fma_units);
  EXPECT_EQ(avx512.ops_per_cycle(), 16 * avx512.fma_units);
  // Single precision doubles the lane count.
  EXPECT_EQ(avx512.ops_per_cycle(Precision::Single),
            2 * avx512.ops_per_cycle(Precision::Double));
}

TEST(MachineSpec, SilverEq12SinglePrecisionPeak) {
  // Paper Eq. 12: F_t = 2.1 * 8 * 32 * 1 * 2 = 1075.2 SP GFLOP/s (both
  // sockets; the Silver 4110 has a single FMA unit).
  const MachineSpec silver = machine_by_name("silver4110");
  EXPECT_EQ(silver.fma_units, 1);
  EXPECT_NEAR(silver.theoretical_flops(2, Precision::Single).value, 1075.2, 1e-9);
  EXPECT_NEAR(silver.theoretical_flops(2, Precision::Double).value, 537.6, 1e-9);
}

TEST(MachineSpec, L3Capacity) {
  const MachineSpec m = machine_by_name("2650v4");
  EXPECT_EQ(m.l3_capacity(1).value, util::Bytes::MiB(30).value);
  EXPECT_EQ(m.l3_capacity(2).value, util::Bytes::MiB(60).value);
}

TEST(MachineSpec, InvalidSocketCountsThrow) {
  const MachineSpec m = machine_by_name("2650v4");
  EXPECT_THROW(static_cast<void>(m.theoretical_flops(0)), std::invalid_argument);
  EXPECT_THROW(static_cast<void>(m.theoretical_flops(3)), std::invalid_argument);
  EXPECT_THROW(static_cast<void>(m.theoretical_bandwidth(0)), std::invalid_argument);
}

TEST(MachineRegistry, LookupIsCaseInsensitive) {
  EXPECT_EQ(machine_by_name("GOLD6132").name, "gold6132");
  EXPECT_EQ(machine_by_name(" 2650v4 ").name, "2650v4");
}

TEST(MachineRegistry, UnknownNameThrows) {
  EXPECT_THROW(machine_by_name("epyc7742"), std::invalid_argument);
}

TEST(MachineRegistry, PaperMachinesAreFour) {
  EXPECT_EQ(paper_machines().size(), 4u);
  EXPECT_EQ(all_machines().size(), 5u);
}

TEST(MachineSpec, TotalCores) {
  EXPECT_EQ(machine_by_name("gold6148").total_cores(), 40);
}

}  // namespace
}  // namespace rooftune::simhw
