// The synthetic hardware-counter model (SimOptions::counter_model): counter
// signatures must agree with the analytic traffic model — measured OI
// recovers Backend::analytic_intensity within tolerance — and the timing
// surface must stay consistent with the counters (value <= DRAM_bw x
// modelled OI), which is the property the counter-prune policy's soundness
// rests on.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <optional>

#include "core/spaces.hpp"
#include "simhw/machine.hpp"
#include "simhw/sim_backend.hpp"

namespace rooftune::simhw {
namespace {

constexpr double kOiTolerance = 0.05;  // matches RacingScheduler::kOiTolerance

SimDgemmBackend counter_dgemm(bool model = true, double exponent = 2.0) {
  SimOptions options;
  options.sockets_used = 1;
  options.seed = 2021;
  options.counter_model = model;
  options.counter_spill_exponent = exponent;
  return SimDgemmBackend(machine_by_name("gold6148"), options);
}

/// One complete invocation of `iterations` kernel iterations; returns the
/// counter signature the backend accounted for it.
std::optional<core::CounterSample> run_invocation(SimDgemmBackend& backend,
                                                  const core::Configuration& c,
                                                  int iterations = 4) {
  backend.begin_invocation(c, 0);
  for (int i = 0; i < iterations; ++i) backend.run_iteration();
  backend.end_invocation();
  return backend.last_invocation_counters();
}

/// OI recovered from a signature: analytic flops over 64 x LLC misses.
double measured_oi(const SimDgemmBackend& backend,
                   const core::CounterSample& sample, int iterations) {
  const double flops = *backend.flops_per_iteration() * iterations;
  return flops / (64.0 * static_cast<double>(sample.llc_misses));
}

TEST(SimCounterModel, OffByDefaultReportsNoCounters) {
  auto backend = counter_dgemm(/*model=*/false);
  const auto sample = run_invocation(backend, core::dgemm_config(256, 256, 256));
  EXPECT_FALSE(sample.has_value());
}

TEST(SimCounterModel, CacheResidentOiMatchesAnalyticIntensity) {
  auto backend = counter_dgemm();
  const auto config = core::dgemm_config(256, 256, 256);  // ~1.6 MB << L3
  const int iterations = 4;
  const auto sample = run_invocation(backend, config, iterations);
  ASSERT_TRUE(sample.has_value());
  ASSERT_GT(sample->llc_misses, 0u);

  const auto predicted = backend.analytic_intensity(config);
  ASSERT_TRUE(predicted.has_value());
  const double oi = measured_oi(backend, *sample, iterations);
  EXPECT_NEAR(oi, *predicted, kOiTolerance * *predicted);
  // Resident working sets see compulsory traffic only: the prediction is
  // the plain 2nmk / 8(nk+km+nm).
  EXPECT_NEAR(*predicted, 2.0 * 256.0 / (8.0 * 3.0), 1e-9);
}

TEST(SimCounterModel, SpilledWorkingSetDivergesFromCompulsoryOi) {
  auto backend = counter_dgemm();
  // 8(nk+km+nm) = 136 MB >> 31.8 MiB L3: deep in the spill regime.
  const auto config = core::dgemm_config(4000, 4000, 128);
  const int iterations = 4;
  const auto sample = run_invocation(backend, config, iterations);
  ASSERT_TRUE(sample.has_value());

  const double oi = measured_oi(backend, *sample, iterations);
  const auto predicted = backend.analytic_intensity(config);
  ASSERT_TRUE(predicted.has_value());
  // Counters and prediction still agree (same traffic model) ...
  EXPECT_NEAR(oi, *predicted, kOiTolerance * *predicted);
  // ... but both sit far below the compulsory-traffic OI: the spill
  // multiplier (ws / L3)^2 has cut the intensity by >4x here.
  const double compulsory =
      *backend.flops_per_iteration() / *backend.bytes_per_iteration();
  EXPECT_LT(*predicted, compulsory / 4.0);
}

TEST(SimCounterModel, AnalyticIntensityIgnoresSpillWhenModelOff) {
  auto on = counter_dgemm(/*model=*/true);
  auto off = counter_dgemm(/*model=*/false);
  const auto config = core::dgemm_config(4000, 4000, 128);
  const auto with_spill = on.analytic_intensity(config);
  const auto compulsory = off.analytic_intensity(config);
  ASSERT_TRUE(with_spill.has_value());
  ASSERT_TRUE(compulsory.has_value());
  EXPECT_LT(*with_spill, *compulsory);
  EXPECT_NEAR(*compulsory,
              2.0 * 4000.0 * 4000.0 * 128.0 /
                  (8.0 * (4000.0 * 128.0 * 2.0 + 4000.0 * 4000.0)),
              1e-9);
}

// The clamp that keeps counters and timings telling one story: a spilled
// configuration's rate cannot exceed what its modelled traffic admits.
TEST(SimCounterModel, TimingSurfaceClampedByImpliedRoofline) {
  auto backend = counter_dgemm();
  const auto config = core::dgemm_config(4000, 4000, 128);
  const double bw =
      machine_by_name("gold6148").theoretical_bandwidth(1).value;  // GB/s
  const double cap = bw * *backend.analytic_intensity(config);

  backend.begin_invocation(config, 0);
  for (int i = 0; i < 6; ++i) {
    // 2% headroom for the +-0.5% deterministic sample texture.
    EXPECT_LE(backend.run_iteration().value, cap * 1.02);
  }
  backend.end_invocation();
}

TEST(SimCounterModel, ResidentTimingsUnchangedByTheModel) {
  auto on = counter_dgemm(/*model=*/true);
  auto off = counter_dgemm(/*model=*/false);
  const auto config = core::dgemm_config(724, 4000, 128);  // 28 MB < L3
  on.begin_invocation(config, 0);
  off.begin_invocation(config, 0);
  for (int i = 0; i < 8; ++i) {
    EXPECT_DOUBLE_EQ(on.run_iteration().value, off.run_iteration().value);
  }
}

TEST(SimCounterModel, SignaturesAreDeterministic) {
  auto a = counter_dgemm();
  auto b = counter_dgemm();
  const auto config = core::dgemm_config(1000, 1024, 256);
  const auto sa = run_invocation(a, config);
  const auto sb = run_invocation(b, config);
  ASSERT_TRUE(sa.has_value());
  ASSERT_TRUE(sb.has_value());
  EXPECT_EQ(sa->cycles, sb->cycles);
  EXPECT_EQ(sa->instructions, sb->instructions);
  EXPECT_EQ(sa->llc_misses, sb->llc_misses);
  EXPECT_EQ(sa->time_enabled_ns, sb->time_enabled_ns);
  EXPECT_FALSE(sa->scaled);
  EXPECT_TRUE(sa->valid);
}

}  // namespace
}  // namespace rooftune::simhw
