// The simulated thermal/energy model behind telemetry spans: a pure
// function of per-invocation accounted time, so sidecars stay
// bit-identical, and strictly decoupled from the rate model, so turning
// telemetry on never changes what the tuner measures.

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "core/spaces.hpp"
#include "simhw/sim_backend.hpp"

namespace rooftune::simhw {
namespace {

SimOptions thermal_options(double tau, double floor_factor, double pkg_w,
                           double dram_w = 0.0) {
  SimOptions options;
  options.seed = 11;
  options.thermal_tau_s = tau;
  options.throttle_factor = floor_factor;
  options.pkg_power_w = pkg_w;
  options.dram_power_w = dram_w;
  return options;
}

core::TelemetrySpan run_one(SimDgemmBackend& backend, int iterations = 5) {
  backend.begin_invocation(core::dgemm_config(1000, 1024, 128), 0);
  for (int i = 0; i < iterations; ++i) static_cast<void>(backend.run_iteration());
  backend.end_invocation();
  const auto span = backend.last_invocation_telemetry();
  EXPECT_TRUE(span.has_value());
  return span.value_or(core::TelemetrySpan{});
}

TEST(ThermalModel, DisabledByDefault) {
  SimOptions options;
  options.seed = 11;
  SimDgemmBackend backend(machine_by_name("gold6148"), options);
  backend.begin_invocation(core::dgemm_config(1000, 1024, 128), 0);
  static_cast<void>(backend.run_iteration());
  backend.end_invocation();
  EXPECT_FALSE(backend.last_invocation_telemetry().has_value());
}

TEST(ThermalModel, FrequencyDecaysTowardTheFloor) {
  const auto machine = machine_by_name("gold6148");
  SimDgemmBackend backend(machine, thermal_options(0.1, 0.8, 0.0));
  const auto span = run_one(backend);
  const double base = machine.cpu_freq_ghz * 1000.0;
  EXPECT_DOUBLE_EQ(span.freq_begin_mhz, base);
  EXPECT_LT(span.freq_end_mhz, base);
  EXPECT_GE(span.freq_end_mhz, 0.8 * base);
  // The time-averaged frequency sits between the endpoints.
  EXPECT_GT(span.freq_mean_mhz, span.freq_end_mhz);
  EXPECT_LT(span.freq_mean_mhz, span.freq_begin_mhz);
  // Temperature rises with throttle progress, from the 40 C idle floor.
  EXPECT_GT(span.temp_c, 40.0);
  EXPECT_LT(span.temp_c, 95.0);
}

TEST(ThermalModel, EnergyIsPowerTimesAccountedTime) {
  SimDgemmBackend backend(machine_by_name("gold6148"),
                          thermal_options(0.0, 1.0, 105.0, 10.0));
  backend.begin_invocation(core::dgemm_config(1000, 1024, 128), 0);
  static_cast<void>(backend.run_iteration());
  backend.end_invocation();
  const auto timing = backend.last_invocation_timing();
  ASSERT_TRUE(timing.has_value());
  const auto span = backend.last_invocation_telemetry();
  ASSERT_TRUE(span.has_value());
  const double wall = timing->wall.value;
  EXPECT_NEAR(span->pkg_joules, 105.0 * wall, 1e-9);
  EXPECT_NEAR(span->dram_joules, 10.0 * wall, 1e-9);
  // pkg power alone engages the model; without tau there is no drift.
  EXPECT_DOUBLE_EQ(span->freq_begin_mhz, span->freq_end_mhz);
}

TEST(ThermalModel, ResetsPerInvocation) {
  SimDgemmBackend backend(machine_by_name("gold6148"),
                          thermal_options(0.1, 0.8, 0.0));
  const auto first = run_one(backend);
  const auto second = run_one(backend);
  // Per-invocation thermal reset: spans depend only on that invocation's
  // accounted durations, never on history — the determinism contract.
  EXPECT_DOUBLE_EQ(first.freq_begin_mhz, second.freq_begin_mhz);
  // Modelled noise moves the invocation's duration a little, so the
  // endpoints only match to a few percent — the point is that the second
  // invocation starts cold again instead of continuing the first's decay.
  EXPECT_NEAR(first.freq_end_mhz, second.freq_end_mhz,
              0.05 * first.freq_end_mhz);
}

TEST(ThermalModel, DoesNotPerturbMeasuredRates) {
  SimOptions plain;
  plain.seed = 11;
  SimDgemmBackend cold(machine_by_name("gold6148"), plain);
  SimDgemmBackend hot(machine_by_name("gold6148"),
                      thermal_options(0.05, 0.5, 200.0, 20.0));
  const auto config = core::dgemm_config(2000, 2048, 256);
  cold.begin_invocation(config, 0);
  hot.begin_invocation(config, 0);
  for (int i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(cold.run_iteration().value, hot.run_iteration().value);
  }
  cold.end_invocation();
  hot.end_invocation();
}

TEST(ThermalModel, LongerInvocationsDriftFurther) {
  SimDgemmBackend backend(machine_by_name("gold6148"),
                          thermal_options(0.2, 0.7, 0.0));
  const auto short_span = run_one(backend, 2);
  const auto long_span = run_one(backend, 40);
  EXPECT_LT(long_span.freq_end_mhz, short_span.freq_end_mhz);
  EXPECT_GT(long_span.temp_c, short_span.temp_c);
}

TEST(ThermalModel, RejectsInvalidOptions) {
  const auto machine = machine_by_name("gold6148");
  EXPECT_THROW(SimDgemmBackend(machine, thermal_options(-1.0, 0.8, 0.0)),
               std::invalid_argument);
  EXPECT_THROW(SimDgemmBackend(machine, thermal_options(0.1, 0.0, 0.0)),
               std::invalid_argument);
  EXPECT_THROW(SimDgemmBackend(machine, thermal_options(0.1, 1.5, 0.0)),
               std::invalid_argument);
  EXPECT_THROW(SimDgemmBackend(machine, thermal_options(0.1, 0.8, -5.0)),
               std::invalid_argument);
}

}  // namespace
}  // namespace rooftune::simhw
