#include "simhw/triad_model.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace rooftune::simhw {
namespace {

TriadSurface make(const char* machine, int sockets,
                  util::AffinityPolicy affinity = util::AffinityPolicy::Close) {
  return TriadSurface(machine_by_name(machine), sockets, affinity);
}

TEST(TriadSurface, CacheResidentHitsL3Peak) {
  const auto s = make("2650v4", 1);
  // A fifth of the L3: deep in the cache regime, past the startup penalty
  // (Table VI B_L3,S1 = 256.07).
  const auto bw = s.mean_bandwidth(util::Bytes::MiB(6));
  EXPECT_NEAR(bw.value, 256.07, 8.0);
}

TEST(TriadSurface, LargeWorkingSetsHitDramPlateau) {
  struct Case {
    const char* machine;
    int sockets;
    double expected;  // Table VI B_DRAM
  } cases[] = {{"2650v4", 1, 40.42},  {"2650v4", 2, 80.65},
               {"2695v4", 1, 43.29},  {"2695v4", 2, 76.32},
               {"gold6132", 1, 68.32}, {"gold6132", 2, 132.18},
               {"gold6148", 1, 74.16}, {"gold6148", 2, 139.80}};
  for (const auto& c : cases) {
    const auto s = make(c.machine, c.sockets,
                        c.sockets == 2 ? util::AffinityPolicy::Spread
                                       : util::AffinityPolicy::Close);
    const auto bw = s.mean_bandwidth(util::Bytes::MiB(768));
    EXPECT_NEAR(bw.value, c.expected, 0.02 * c.expected)
        << c.machine << " S" << c.sockets;
  }
}

TEST(TriadSurface, DramOverestimatesTheoretical) {
  // §VI-B: "the TRIAD kernel slightly overestimates the memory bandwidth" —
  // the measured plateau sits above Eq. 11 for S1 on every machine.
  for (const char* name : {"2650v4", "2695v4", "gold6132", "gold6148"}) {
    const MachineSpec m = machine_by_name(name);
    const TriadSurface s(m, 1, util::AffinityPolicy::Close);
    const double plateau = s.mean_bandwidth(util::Bytes::MiB(768)).value;
    EXPECT_GT(plateau, m.theoretical_bandwidth(1).value) << name;
    EXPECT_LT(plateau, 1.20 * m.theoretical_bandwidth(1).value) << name;
  }
}

TEST(TriadSurface, TinyVectorsPayStartupOverhead) {
  const auto s = make("gold6148", 1);
  const double tiny = s.mean_bandwidth(util::Bytes::KiB(3)).value;
  const double sweet = s.mean_bandwidth(util::Bytes::MiB(12)).value;
  EXPECT_LT(tiny, 0.2 * sweet);
}

TEST(TriadSurface, BandwidthCurveDecreasesThroughTransition) {
  const auto s = make("2695v4", 1);
  const double in_cache = s.mean_bandwidth(util::Bytes::MiB(20)).value;
  const double at_edge = s.mean_bandwidth(util::Bytes::MiB(45)).value;
  const double beyond = s.mean_bandwidth(util::Bytes::MiB(180)).value;
  EXPECT_GT(in_cache, at_edge);
  EXPECT_GT(at_edge, beyond);
}

TEST(TriadSurface, DualSocketDoublesL3Capacity) {
  const auto s1 = make("gold6132", 1);
  const auto s2 = make("gold6132", 2, util::AffinityPolicy::Spread);
  EXPECT_EQ(s2.l3_capacity().value, 2 * s1.l3_capacity().value);
  // A working set that spills one socket's L3 still fits in two.
  const auto ws = util::Bytes{static_cast<std::uint64_t>(
      1.1 * static_cast<double>(s1.l3_capacity().value))};
  const double bw1 = s1.mean_bandwidth(ws).value;
  const double bw2 = s2.mean_bandwidth(ws).value;
  EXPECT_GT(bw2, 2.0 * bw1);
}

TEST(TriadSurface, ClosePolicyOnTwoSocketsLosesBandwidth) {
  // §III-B: close placement on a dual-socket run leaves remote memory
  // behind the interconnect.
  const MachineSpec m = machine_by_name("gold6148");
  const TriadSurface spread(m, 2, util::AffinityPolicy::Spread);
  const TriadSurface close(m, 2, util::AffinityPolicy::Close);
  const auto ws = util::Bytes::MiB(768);
  EXPECT_GT(spread.mean_bandwidth(ws).value, close.mean_bandwidth(ws).value);
}

TEST(TriadSurface, RejectsBadArguments) {
  EXPECT_THROW(make("2650v4", 0), std::invalid_argument);
  EXPECT_THROW(make("2650v4", 5), std::invalid_argument);
  EXPECT_THROW(triad_anchor("unknown", 1), std::invalid_argument);
  const auto s = make("2650v4", 1);
  EXPECT_THROW(static_cast<void>(s.mean_bandwidth(util::Bytes{0})), std::invalid_argument);
}

}  // namespace
}  // namespace rooftune::simhw
