#include <gtest/gtest.h>

#include <stdexcept>

#include "simhw/machine.hpp"

namespace rooftune::simhw {
namespace {

TEST(ParseMachineSpec, FullSpec) {
  const auto m =
      parse_machine_spec("epyc7543:2.8:32:2:avx2:2:256MiB:3200:8");
  EXPECT_EQ(m.name, "epyc7543");
  EXPECT_DOUBLE_EQ(m.cpu_freq_ghz, 2.8);
  EXPECT_EQ(m.cores_per_socket, 32);
  EXPECT_EQ(m.sockets, 2);
  EXPECT_EQ(m.avx, AvxType::Avx2);
  EXPECT_EQ(m.fma_units, 2);
  EXPECT_EQ(m.l3_per_socket.value, util::Bytes::MiB(256).value);
  EXPECT_DOUBLE_EQ(m.dram_freq_mhz, 3200.0);
  EXPECT_EQ(m.dram_channels_system, 8);
}

TEST(ParseMachineSpec, PeaksComputeCorrectly) {
  // 2.8 GHz * 32 cores * 8 ops * 2 units = 1433.6 GFLOP/s per socket.
  const auto m = parse_machine_spec("epyc:2.8:32:2:avx2:2:256MiB:3200:8");
  EXPECT_NEAR(m.theoretical_flops(1).value, 1433.6, 1e-9);
  // 3200 MT/s * 8 channels * 8 B = 204.8 GB/s system.
  EXPECT_NEAR(m.theoretical_bandwidth(2).value, 204.8, 1e-9);
}

TEST(ParseMachineSpec, Avx512AndWhitespaceTolerant) {
  const auto m = parse_machine_spec(" spr : 2.0 : 48 : 1 : AVX512 : 2 : 105MiB : 4800 : 8 ");
  EXPECT_EQ(m.name, "spr");
  EXPECT_EQ(m.avx, AvxType::Avx512);
  EXPECT_EQ(m.sockets, 1);
}

TEST(ParseMachineSpec, ReproducesBuiltinPeaks) {
  const auto m = parse_machine_spec("x2650v4:2.2:12:2:avx2:2:30MiB:2400:4");
  const auto builtin = machine_by_name("2650v4");
  EXPECT_DOUBLE_EQ(m.theoretical_flops(1).value,
                   builtin.theoretical_flops(1).value);
  EXPECT_DOUBLE_EQ(m.theoretical_bandwidth(2).value,
                   builtin.theoretical_bandwidth(2).value);
}

TEST(ParseMachineSpec, Rejections) {
  EXPECT_THROW(parse_machine_spec(""), std::invalid_argument);
  EXPECT_THROW(parse_machine_spec("too:few:fields"), std::invalid_argument);
  EXPECT_THROW(parse_machine_spec("n:abc:12:2:avx2:2:30MiB:2400:4"),
               std::invalid_argument);  // bad frequency
  EXPECT_THROW(parse_machine_spec("n:2.2:12:2:sse:2:30MiB:2400:4"),
               std::invalid_argument);  // unknown ISA
  EXPECT_THROW(parse_machine_spec("n:2.2:12:2:avx2:2:30XB:2400:4"),
               std::invalid_argument);  // bad size suffix
  EXPECT_THROW(parse_machine_spec("n:2.2:0:2:avx2:2:30MiB:2400:4"),
               std::invalid_argument);  // zero cores
  EXPECT_THROW(parse_machine_spec(":2.2:12:2:avx2:2:30MiB:2400:4"),
               std::invalid_argument);  // empty name
}

}  // namespace
}  // namespace rooftune::simhw
