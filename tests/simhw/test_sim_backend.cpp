#include "simhw/sim_backend.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "core/spaces.hpp"
#include "stats/welford.hpp"

namespace rooftune::simhw {
namespace {

SimDgemmBackend make_dgemm(const char* machine = "2650v4", int sockets = 1,
                           std::uint64_t seed = 7) {
  SimOptions options;
  options.sockets_used = sockets;
  options.seed = seed;
  return SimDgemmBackend(machine_by_name(machine), options);
}

TEST(SimDgemmBackend, ChargesInvocationOverheadToClock) {
  auto backend = make_dgemm();
  EXPECT_DOUBLE_EQ(backend.now().value, 0.0);
  backend.begin_invocation(core::dgemm_config(1000, 1024, 128), 0);
  // Launch + init + pre-heat must all cost simulated time.
  EXPECT_GT(backend.now().value, 0.04);
  backend.end_invocation();
}

TEST(SimDgemmBackend, IterationAdvancesClockByKernelTime) {
  auto backend = make_dgemm();
  backend.begin_invocation(core::dgemm_config(1000, 1024, 128), 0);
  const auto before = backend.now();
  const core::Sample s = backend.run_iteration();
  EXPECT_GT(s.kernel_time.value, 0.0);
  EXPECT_NEAR((backend.now() - before).value, s.kernel_time.value, 1e-12);
  backend.end_invocation();
}

TEST(SimDgemmBackend, SampleValueConsistentWithKernelTime) {
  auto backend = make_dgemm();
  backend.begin_invocation(core::dgemm_config(2000, 2048, 256), 0);
  const core::Sample s = backend.run_iteration();
  const double flops = 2.0 * 2000 * 2048 * 256;
  EXPECT_NEAR(s.value, flops / 1e9 / s.kernel_time.value, 1e-6 * s.value);
  backend.end_invocation();
}

TEST(SimDgemmBackend, DeterministicPerSeed) {
  auto a = make_dgemm("gold6132", 2, 42);
  auto b = make_dgemm("gold6132", 2, 42);
  const auto config = core::dgemm_config(1000, 1024, 256);
  a.begin_invocation(config, 3);
  b.begin_invocation(config, 3);
  for (int i = 0; i < 20; ++i) {
    EXPECT_DOUBLE_EQ(a.run_iteration().value, b.run_iteration().value);
  }
}

TEST(SimDgemmBackend, DifferentSeedsDiffer) {
  auto a = make_dgemm("gold6132", 1, 1);
  auto b = make_dgemm("gold6132", 1, 2);
  const auto config = core::dgemm_config(1000, 1024, 256);
  a.begin_invocation(config, 0);
  b.begin_invocation(config, 0);
  EXPECT_NE(a.run_iteration().value, b.run_iteration().value);
}

TEST(SimDgemmBackend, InvocationsHaveIndependentBias) {
  auto backend = make_dgemm();
  const auto config = core::dgemm_config(1000, 1024, 128);
  std::vector<double> means;
  for (std::uint64_t inv = 0; inv < 4; ++inv) {
    backend.begin_invocation(config, inv);
    stats::OnlineMoments m;
    for (int i = 0; i < 200; ++i) m.add(backend.run_iteration().value);
    backend.end_invocation();
    means.push_back(m.mean());
  }
  // Invocation-level variance (Georges et al.): not all means identical.
  EXPECT_NE(means[0], means[1]);
  EXPECT_NE(means[1], means[2]);
}

TEST(SimDgemmBackend, LongRunMeanTracksSurface) {
  auto backend = make_dgemm("2650v4", 1, 11);
  const auto config = core::dgemm_config(1000, 4096, 128);
  const double surface_mean = backend.surface().mean_gflops(1000, 4096, 128).value;

  stats::OnlineMoments m;
  for (std::uint64_t inv = 0; inv < 10; ++inv) {
    backend.begin_invocation(config, inv);
    for (int i = 0; i < 200; ++i) m.add(backend.run_iteration().value);
    backend.end_invocation();
  }
  // Within ~2 % (warm-up ramp + noise pull the mean slightly down).
  EXPECT_NEAR(m.mean(), surface_mean, 0.02 * surface_mean);
}

TEST(SimDgemmBackend, WarmupRampVisibleOn2695v4) {
  SimOptions options;
  options.seed = 5;
  SimDgemmBackend backend(machine_by_name("2695v4"), options);
  // The 2695v4 S1 anchor configuration is high-efficiency => ramped.
  backend.begin_invocation(core::dgemm_config(2000, 4096, 128), 0);
  const double first = backend.run_iteration().value;
  double sum_late = 0.0;
  for (int i = 0; i < 199; ++i) {
    const double v = backend.run_iteration().value;
    if (i >= 149) sum_late += v;
  }
  backend.end_invocation();
  const double late_mean = sum_late / 50.0;
  EXPECT_LT(first, 0.85 * late_mean);  // first iteration reads far below steady
}

TEST(SimDgemmBackend, RunIterationOutsideInvocationThrows) {
  auto backend = make_dgemm();
  EXPECT_THROW(backend.run_iteration(), std::logic_error);
  backend.begin_invocation(core::dgemm_config(512, 512, 64), 0);
  backend.run_iteration();
  backend.end_invocation();
  EXPECT_THROW(backend.run_iteration(), std::logic_error);
}

TEST(SimDgemmBackend, MetricName) {
  EXPECT_EQ(make_dgemm().metric_name(), "GFLOP/s");
}

TEST(SimTriadBackend, BandwidthSamplesNearSurface) {
  SimOptions options;
  options.sockets_used = 1;
  options.seed = 3;
  SimTriadBackend backend(machine_by_name("gold6148"), options);
  const auto config = core::triad_config(1 << 17);  // ws = 3 MiB, cache-resident
  const double surface_bw =
      backend.surface().mean_bandwidth(core::triad_working_set(config)).value;

  // Average over several invocations so one invocation's bias draw cannot
  // dominate (invocation-level sigma is ~1.4 %).
  stats::OnlineMoments m;
  for (std::uint64_t inv = 0; inv < 6; ++inv) {
    backend.begin_invocation(config, inv);
    for (int i = 0; i < 200; ++i) m.add(backend.run_iteration().value);
    backend.end_invocation();
  }
  EXPECT_NEAR(m.mean(), surface_bw, 0.03 * surface_bw);
}

TEST(SimTriadBackend, KernelTimeMatchesBytesOverRate) {
  SimOptions options;
  SimTriadBackend backend(machine_by_name("2650v4"), options);
  const auto config = core::triad_config(1 << 20);
  backend.begin_invocation(config, 0);
  const core::Sample s = backend.run_iteration();
  const double bytes = 24.0 * (1 << 20);
  EXPECT_NEAR(s.kernel_time.value, bytes / (s.value * 1e9), 1e-12);
  backend.end_invocation();
}

TEST(SimTriadBackend, MetricName) {
  SimTriadBackend backend(machine_by_name("2650v4"), SimOptions{});
  EXPECT_EQ(backend.metric_name(), "GB/s");
}

TEST(SimBackends, TimerOverheadBiasesSingleIterationsDown) {
  // With a modelled timer cost, each run_iteration pays one timer pair: the
  // measured time inflates by exactly the overhead and the rate drops by
  // t / (t + o).  The clock advertises the overhead for the evaluator.
  const double o = 1e-3;
  SimOptions with;
  with.seed = 7;
  with.timer_overhead_s = o;
  SimOptions without;
  without.seed = 7;
  const auto config = core::dgemm_config(1000, 1024, 128);

  SimDgemmBackend biased(machine_by_name("2650v4"), with);
  SimDgemmBackend clean(machine_by_name("2650v4"), without);
  EXPECT_DOUBLE_EQ(biased.clock().overhead().value, o);
  EXPECT_DOUBLE_EQ(clean.clock().overhead().value, 0.0);

  biased.begin_invocation(config, 0);
  clean.begin_invocation(config, 0);
  const core::Sample sb = biased.run_iteration();
  const core::Sample sc = clean.run_iteration();
  EXPECT_LT(sb.value, sc.value);
  EXPECT_NEAR(sb.kernel_time.value, sc.kernel_time.value + o, 1e-12);
  const double t = sc.kernel_time.value;
  EXPECT_NEAR(sb.value, sc.value * t / (t + o), 1e-9 * sc.value);
}

TEST(SimBackends, BatchingAmortizesTimerOverhead) {
  // One timer pair around a group of k iterations pays the overhead once:
  // the group-mean rate must sit much closer to the unbiased rate than a
  // per-iteration measurement does.  Same seed => identical noise stream.
  const double o = 1e-3;
  const std::uint64_t k = 8;
  SimOptions with;
  with.seed = 11;
  with.timer_overhead_s = o;
  SimOptions without;
  without.seed = 11;
  const auto config = core::dgemm_config(1000, 1024, 128);

  SimDgemmBackend clean(machine_by_name("2650v4"), without);
  clean.begin_invocation(config, 0);
  const core::BatchSample truth = clean.run_batch(k);

  SimDgemmBackend batched(machine_by_name("2650v4"), with);
  batched.begin_invocation(config, 0);
  const core::BatchSample group = batched.run_batch(k);

  SimDgemmBackend single(machine_by_name("2650v4"), with);
  single.begin_invocation(config, 0);
  const core::Sample first = single.run_iteration();
  const core::Sample truth_first_alike = [&] {
    SimDgemmBackend c2(machine_by_name("2650v4"), without);
    c2.begin_invocation(config, 0);
    return c2.run_iteration();
  }();

  EXPECT_EQ(group.count, k);
  EXPECT_NEAR(group.kernel_time.value, truth.kernel_time.value + o, 1e-12);
  const double batch_error = (truth.value - group.value) / truth.value;
  const double single_error =
      (truth_first_alike.value - first.value) / truth_first_alike.value;
  EXPECT_GT(batch_error, 0.0);               // still biased low...
  EXPECT_LT(batch_error, single_error / 2);  // ...but far less so
}

TEST(SimBackends, RejectNegativeTimerOverhead) {
  SimOptions options;
  options.timer_overhead_s = -1e-6;
  EXPECT_THROW(SimDgemmBackend(machine_by_name("2650v4"), options),
               std::invalid_argument);
  EXPECT_THROW(SimTriadBackend(machine_by_name("2650v4"), options),
               std::invalid_argument);
}

TEST(SimBackends, SetupOverheadChargesPerInvocationWithoutReuse) {
  // Without arena reuse every invocation re-materializes its working set:
  // the clock gains exactly setup_overhead_s per invocation over a baseline
  // backend, and no modelled arena stats are surfaced.
  SimOptions with;
  with.seed = 7;
  with.setup_overhead_s = 0.5;
  SimOptions without;
  without.seed = 7;
  const auto config = core::dgemm_config(1000, 1024, 128);
  SimDgemmBackend a(machine_by_name("2650v4"), with);
  SimDgemmBackend b(machine_by_name("2650v4"), without);
  for (std::uint64_t inv = 0; inv < 3; ++inv) {
    a.begin_invocation(config, inv);
    a.run_iteration();
    a.end_invocation();
    b.begin_invocation(config, inv);
    b.run_iteration();
    b.end_invocation();
  }
  EXPECT_NEAR((a.now() - b.now()).value, 3 * 0.5, 1e-12);
  EXPECT_FALSE(a.arena_stats().has_value());
}

TEST(SimBackends, ArenaReuseSkipsSetupWithinHighWater) {
  // Same seed => identical noise streams, so the only clock difference
  // between a reuse-on backend and its reuse-off twin is the setup charge:
  // under reuse only the first invocation misses; the baseline pays every
  // time.
  SimOptions reuse;
  reuse.seed = 7;
  reuse.setup_overhead_s = 0.5;
  reuse.arena_reuse = true;
  SimOptions fresh = reuse;
  fresh.arena_reuse = false;
  const auto config = core::dgemm_config(1000, 1024, 128);
  SimDgemmBackend a(machine_by_name("2650v4"), reuse);
  SimDgemmBackend b(machine_by_name("2650v4"), fresh);
  for (std::uint64_t inv = 0; inv < 3; ++inv) {
    a.begin_invocation(config, inv);
    a.end_invocation();
    b.begin_invocation(config, inv);
    b.end_invocation();
  }
  EXPECT_NEAR((b.now() - a.now()).value, 2 * 0.5, 1e-12);
}

TEST(SimBackends, ArenaReuseModelsSlabCounters) {
  SimOptions options;
  options.seed = 3;
  options.setup_overhead_s = 0.1;
  options.arena_reuse = true;
  SimTriadBackend backend(machine_by_name("gold6148"), options);
  const auto run_one = [&](std::int64_t n, std::uint64_t inv) {
    backend.begin_invocation(core::triad_config(n), inv);
    backend.end_invocation();
  };
  run_one(1 << 16, 0);  // cold: one modelled lease, one miss
  ASSERT_TRUE(backend.arena_stats().has_value());
  auto stats = *backend.arena_stats();
  EXPECT_EQ(stats.leases, 1u);
  EXPECT_EQ(stats.slab_misses, 1u);
  EXPECT_EQ(stats.slab_hits, 0u);
  EXPECT_EQ(stats.bytes_reserved, 3u * 8u * (1u << 16));

  run_one(1 << 16, 1);  // repeat: hit
  run_one(1 << 14, 0);  // smaller: hit
  run_one(1 << 17, 0);  // grows past high water: miss
  stats = *backend.arena_stats();
  EXPECT_EQ(stats.leases, 4u);
  EXPECT_EQ(stats.slab_hits, 2u);
  EXPECT_EQ(stats.slab_misses, 2u);
  EXPECT_EQ(stats.bytes_reserved, 3u * 8u * (1u << 17));
}

TEST(SimBackends, SetupModelLeavesSamplesBitIdentical) {
  // The setup model only moves the clock between invocations; the noise
  // streams and therefore every sample must stay bit-identical, so tuning
  // decisions cannot change.
  SimOptions with;
  with.seed = 13;
  with.setup_overhead_s = 1.0;
  with.arena_reuse = true;
  SimOptions without;
  without.seed = 13;
  SimDgemmBackend a(machine_by_name("gold6132"), with);
  SimDgemmBackend b(machine_by_name("gold6132"), without);
  const auto config = core::dgemm_config(1000, 1024, 256);
  for (std::uint64_t inv = 0; inv < 3; ++inv) {
    a.begin_invocation(config, inv);
    b.begin_invocation(config, inv);
    for (int i = 0; i < 20; ++i) {
      const core::Sample sa = a.run_iteration();
      const core::Sample sb = b.run_iteration();
      ASSERT_EQ(sa.value, sb.value);
      ASSERT_EQ(sa.kernel_time.value, sb.kernel_time.value);
    }
    a.end_invocation();
    b.end_invocation();
  }
}

TEST(SimBackends, RejectNegativeSetupOverhead) {
  SimOptions options;
  options.setup_overhead_s = -0.1;
  EXPECT_THROW(SimDgemmBackend(machine_by_name("2650v4"), options),
               std::invalid_argument);
  EXPECT_THROW(SimTriadBackend(machine_by_name("2650v4"), options),
               std::invalid_argument);
}

// --- host-cost skew --------------------------------------------------------

TEST(SimBackends, CostSkewMultiplierIsDeterministicAndBimodal) {
  SimOptions options;
  options.cost_skew = 8.0;
  const auto space = core::dgemm_reduced_space().enumerate();
  std::size_t stragglers = 0;
  for (const auto& config : space) {
    const double m = invocation_cost_multiplier(config, options);
    EXPECT_TRUE(m == 1.0 || m == 8.0) << config.to_string();
    // Pure function of the config hash: stable across calls and seeds.
    EXPECT_EQ(m, invocation_cost_multiplier(config, options));
    if (m == 8.0) ++stragglers;
  }
  // ~1 in 8 configs is a straggler; on 96 configs demand a sane band.
  EXPECT_GT(stragglers, 2u);
  EXPECT_LT(stragglers, space.size() / 2);
}

TEST(SimBackends, CostSkewDisabledByDefault) {
  SimOptions options;  // cost_skew = 0
  for (const auto& config : core::dgemm_reduced_space().enumerate()) {
    EXPECT_EQ(invocation_cost_multiplier(config, options), 1.0);
  }
}

TEST(SimBackends, CostSkewLeavesSamplesBitIdentical) {
  // The sleep occupies the host thread only; virtual clock and samples must
  // not move.
  SimOptions plain;
  plain.seed = 11;
  SimOptions skewed = plain;
  skewed.cost_skew = 4.0;
  skewed.cost_base_s = 1e-6;
  SimDgemmBackend a(machine_by_name("gold6148"), plain);
  SimDgemmBackend b(machine_by_name("gold6148"), skewed);
  const auto config = core::dgemm_config(1000, 1024, 256);
  a.begin_invocation(config, 0);
  b.begin_invocation(config, 0);
  EXPECT_DOUBLE_EQ(a.now().value, b.now().value);
  for (int i = 0; i < 10; ++i) {
    EXPECT_DOUBLE_EQ(a.run_iteration().value, b.run_iteration().value);
  }
  a.end_invocation();
  b.end_invocation();
  EXPECT_DOUBLE_EQ(a.now().value, b.now().value);
}

TEST(SimBackends, RejectNegativeCostSkew) {
  SimOptions options;
  options.cost_skew = -1.0;
  EXPECT_THROW(SimDgemmBackend(machine_by_name("2650v4"), options),
               std::invalid_argument);
  SimOptions base;
  base.cost_base_s = -0.5;
  EXPECT_THROW(SimDgemmBackend(machine_by_name("2650v4"), base),
               std::invalid_argument);
}

TEST(SimBackends, RejectBadSocketCount) {
  SimOptions options;
  options.sockets_used = 9;
  EXPECT_THROW(SimDgemmBackend(machine_by_name("2650v4"), options),
               std::invalid_argument);
  EXPECT_THROW(SimTriadBackend(machine_by_name("2650v4"), options),
               std::invalid_argument);
}

}  // namespace
}  // namespace rooftune::simhw
