// The synthetic SpMV surface: exact deterministic matrix statistics, the
// format traffic model's accounting identities, and the backend's counter
// signatures agreeing with analytic_intensity — the soundness property the
// counter-prune policy needs on an irregular, bandwidth-bound kernel.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <optional>
#include <stdexcept>

#include "core/config.hpp"
#include "core/spaces.hpp"
#include "simhw/machine.hpp"
#include "simhw/sim_backend.hpp"
#include "simhw/spmv_model.hpp"

namespace rooftune::simhw {
namespace {

constexpr double kOiTolerance = 0.05;

TEST(SpmvMatrix, RowPatternIsPeriodicAndDeterministic) {
  for (std::int64_t row = 0; row < 64; ++row) {
    EXPECT_EQ(spmv_row_nnz(row), spmv_row_nnz(row + 4096)) << row;
    EXPECT_EQ(spmv_row_nnz(row), spmv_row_nnz(row)) << row;
    EXPECT_GE(spmv_row_nnz(row), 6u);
  }
}

TEST(SpmvMatrix, StatsSumThePeriodExactly) {
  const auto stats = spmv_matrix_stats(4096);
  std::uint64_t nnz = 0;
  std::uint64_t max_nnz = 0;
  for (std::int64_t row = 0; row < 4096; ++row) {
    nnz += spmv_row_nnz(row);
    max_nnz = std::max(max_nnz, spmv_row_nnz(row));
  }
  EXPECT_EQ(stats.nnz, nnz);
  EXPECT_EQ(stats.max_row_nnz, max_nnz);
  // A whole number of periods scales nnz exactly.
  EXPECT_EQ(spmv_matrix_stats(8192).nnz, 2 * nnz);
  EXPECT_THROW(spmv_matrix_stats(0), std::invalid_argument);
}

TEST(SpmvMatrix, SkewedRowDistribution) {
  // Hubs make the max row far heavier than the average — the property that
  // sinks plain ELL padding.
  const auto stats = spmv_matrix_stats(65536);
  EXPECT_GT(static_cast<double>(stats.max_row_nnz), 3.0 * stats.avg_row_nnz());
}

TEST(SpmvTrafficModel, CsrAccountingIdentity) {
  const auto stats = spmv_matrix_stats(16384);
  const auto traffic = spmv_traffic(stats, SpmvFormat::Csr, 4);
  const double nnz = static_cast<double>(stats.nnz);
  EXPECT_DOUBLE_EQ(traffic.value_bytes, 8.0 * nnz);
  EXPECT_DOUBLE_EQ(traffic.index_bytes,
                   4.0 * nnz + 4.0 * static_cast<double>(stats.rows + 1));
  EXPECT_DOUBLE_EQ(traffic.vector_bytes, 24.0 * static_cast<double>(stats.rows));
  // CSR's block parameter is a pure unroll factor: no traffic effect.
  EXPECT_DOUBLE_EQ(spmv_traffic(stats, SpmvFormat::Csr, 1).total(),
                   traffic.total());
}

TEST(SpmvTrafficModel, EllPaddingShrinksWithSliceHeight) {
  const auto stats = spmv_matrix_stats(16384);
  const double w1 = spmv_traffic(stats, SpmvFormat::Ell, 1).value_bytes;
  const double w8 = spmv_traffic(stats, SpmvFormat::Ell, 8).value_bytes;
  // Global-width ELL pads every row to the hub width; slicing recovers it.
  EXPECT_GT(w1, w8);
  EXPECT_GE(w8, 8.0 * static_cast<double>(stats.nnz));
}

TEST(SpmvTrafficModel, BcsrTradesValuePaddingForIndexSavings) {
  const auto stats = spmv_matrix_stats(16384);
  const auto csr = spmv_traffic(stats, SpmvFormat::Csr, 1);
  const auto b2 = spmv_traffic(stats, SpmvFormat::Bcsr, 2);
  EXPECT_GT(b2.value_bytes, csr.value_bytes);  // fill < 1 pads values
  EXPECT_LT(b2.index_bytes, csr.index_bytes);  // one index per block
  EXPECT_EQ(spmv_bcsr_fill(1), 1.0);
  EXPECT_GT(spmv_bcsr_fill(2), spmv_bcsr_fill(4));
  EXPECT_GT(spmv_bcsr_fill(4), spmv_bcsr_fill(8));
}

TEST(SpmvSurface, DeterministicAcrossInstances) {
  const auto machine = machine_by_name("2650v4");
  const SpmvSurface a(machine, 1);
  const SpmvSurface b(machine, 1);
  const auto stats = spmv_matrix_stats(65536);
  for (const auto format : {SpmvFormat::Csr, SpmvFormat::Ell, SpmvFormat::Bcsr}) {
    for (const int block : {1, 2, 4, 8}) {
      EXPECT_EQ(a.mean_gflops(stats, format, block),
                b.mean_gflops(stats, format, block));
    }
  }
}

TEST(SpmvSurface, FormatLandscapeHasDistinctWinners) {
  // The landscape property the kernel exists for: plain ELL loses badly to
  // CSR on the skewed matrix, slicing recovers it, and small BCSR blocks
  // beat CSR in the DRAM regime (index-traffic savings dominate there).
  const SpmvSurface surface(machine_by_name("2650v4"), 1);
  const auto small = spmv_matrix_stats(4096);
  EXPECT_LT(surface.mean_gflops(small, SpmvFormat::Ell, 1),
            0.5 * surface.mean_gflops(small, SpmvFormat::Csr, 4));
  EXPECT_GT(surface.mean_gflops(small, SpmvFormat::Ell, 8),
            2.0 * surface.mean_gflops(small, SpmvFormat::Ell, 1));
  const auto large = spmv_matrix_stats(1048576);
  EXPECT_GT(surface.mean_gflops(large, SpmvFormat::Bcsr, 2),
            surface.mean_gflops(large, SpmvFormat::Csr, 4));
}

TEST(SpmvSurface, DramFractionRegimes) {
  const SpmvSurface surface(machine_by_name("2650v4"), 1);
  const double l3 = static_cast<double>(surface.l3_capacity().value);
  EXPECT_LT(surface.dram_fraction(0.01 * l3), 0.2);
  EXPECT_NEAR(surface.dram_fraction(l3), 1.0, 1e-9);
  const double deep = surface.dram_fraction(64.0 * l3);
  EXPECT_GT(deep, 1.0);   // gather re-fetch
  EXPECT_LE(deep, 2.0);   // capped
}

SimSpmvBackend spmv_backend(bool counter_model) {
  SimOptions options;
  options.sockets_used = 1;
  options.seed = 2021;
  options.counter_model = counter_model;
  return SimSpmvBackend(machine_by_name("2650v4"), options);
}

std::optional<core::CounterSample> run_invocation(SimSpmvBackend& backend,
                                                  const core::Configuration& c,
                                                  int iterations = 4) {
  backend.begin_invocation(c, 0);
  for (int i = 0; i < iterations; ++i) backend.run_iteration();
  backend.end_invocation();
  return backend.last_invocation_counters();
}

TEST(SimSpmvBackend, MeasuredOiMatchesAnalyticIntensity) {
  auto backend = spmv_backend(/*counter_model=*/true);
  for (const std::int64_t rows : {4096, 65536, 1048576}) {
    const core::Configuration config({{"rows", rows}, {"format", 2}, {"block", 2}});
    const int iterations = 4;
    const auto sample = run_invocation(backend, config, iterations);
    ASSERT_TRUE(sample.has_value());
    ASSERT_GT(sample->llc_misses, 0u);
    const auto predicted = backend.analytic_intensity(config);
    ASSERT_TRUE(predicted.has_value());
    const double flops = *backend.flops_per_iteration() * iterations;
    const double oi = flops / (64.0 * static_cast<double>(sample->llc_misses));
    EXPECT_NEAR(oi, *predicted, kOiTolerance * *predicted) << "rows=" << rows;
  }
}

TEST(SimSpmvBackend, RateStaysUnderCounterRoofline) {
  // The clamp the counter-prune policy's soundness rests on: the sampled
  // rate never exceeds DRAM_bw x OI (with OI under the counter model's
  // DRAM-fraction traffic, so L3-resident configs are not falsely capped).
  auto backend = spmv_backend(/*counter_model=*/true);
  const auto machine = machine_by_name("2650v4");
  const double bw = machine.theoretical_bandwidth(1).value;
  for (const std::int64_t rows : {4096, 65536, 1048576}) {
    const core::Configuration config({{"rows", rows}, {"format", 0}, {"block", 1}});
    backend.begin_invocation(config, 0);
    const auto sample = backend.run_iteration();
    backend.end_invocation();
    const auto oi = backend.analytic_intensity(config);
    ASSERT_TRUE(oi.has_value());
    EXPECT_LE(sample.value, bw * *oi * 1.01) << "rows=" << rows;
  }
}

TEST(SimSpmvBackend, AnalyticIntensityRejectsInvalidConfigs) {
  auto backend = spmv_backend(/*counter_model=*/true);
  EXPECT_FALSE(backend
                   .analytic_intensity(core::Configuration(
                       {{"rows", 4096}, {"format", 7}, {"block", 1}}))
                   .has_value());
  EXPECT_FALSE(
      backend.analytic_intensity(core::Configuration({{"n", 4096}})).has_value());
}

TEST(SimSpmvBackend, CountersAbsentWithoutModel) {
  auto backend = spmv_backend(/*counter_model=*/false);
  const core::Configuration config({{"rows", 4096}, {"format", 0}, {"block", 1}});
  EXPECT_FALSE(run_invocation(backend, config).has_value());
}

TEST(SpmvSpace, EnumeratesTheDocumentedCardinality) {
  const auto space = core::spmv_space();
  EXPECT_EQ(space.cardinality(), 108u);
}

}  // namespace
}  // namespace rooftune::simhw
