#include "simhw/noise.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace rooftune::simhw {
namespace {

TEST(NoiseProfile, EveryMachineHasOne) {
  for (const char* name :
       {"2650v4", "2695v4", "gold6132", "gold6148", "silver4110"}) {
    const NoiseProfile p = noise_profile(name);
    EXPECT_GT(p.iter_sigma, 0.0) << name;
    EXPECT_GT(p.invocation_sigma, 0.0) << name;
    EXPECT_GE(p.ramp_d1, 0.0) << name;
  }
  EXPECT_THROW(noise_profile("unknown"), std::invalid_argument);
}

TEST(RampFactor, StartsLowRecoversToOne) {
  const NoiseProfile p = noise_profile("gold6148");
  const double first = ramp_factor(p, 0.9, 1);
  EXPECT_NEAR(first, 1.0 - p.ramp_d1, 1e-12);
  EXPECT_LT(first, ramp_factor(p, 0.9, 2));
  EXPECT_NEAR(ramp_factor(p, 0.9, 1000), 1.0, 1e-6);
}

TEST(RampFactor, MonotoneNonDecreasing) {
  const NoiseProfile p = noise_profile("2695v4");
  double prev = 0.0;
  for (std::uint64_t it = 1; it <= 300; ++it) {
    const double f = ramp_factor(p, 0.95, it);
    EXPECT_GE(f, prev);
    prev = f;
  }
}

TEST(RampFactor, The2695v4ThresholdGating) {
  // Only high-throughput configurations ramp on the 2695 v4 — the mechanism
  // behind the paper's min-count=100 fix (§III-C.4, §VI-C).
  const NoiseProfile p = noise_profile("2695v4");
  EXPECT_GT(p.ramp_eff_threshold, 0.0);
  EXPECT_DOUBLE_EQ(ramp_factor(p, p.ramp_eff_threshold - 0.01, 1), 1.0);
  EXPECT_LT(ramp_factor(p, p.ramp_eff_threshold + 0.01, 1), 0.8);
}

TEST(RampFactor, The2695v4RampIsTheStrongest) {
  const double f2695 = ramp_factor(noise_profile("2695v4"), 0.95, 1);
  for (const char* other : {"2650v4", "gold6132", "gold6148"}) {
    EXPECT_LT(f2695, ramp_factor(noise_profile(other), 0.95, 1)) << other;
  }
}

TEST(RampFactor, RejectsZeroIteration) {
  EXPECT_THROW(ramp_factor(noise_profile("2650v4"), 0.9, 0), std::invalid_argument);
}

TEST(NoiseProfile, SingleDeficitOrdering) {
  // Paper "Single" rows: first-iteration deficit is tiny on 2650v4 (~2 %),
  // mid on gold6132 (~9 %), larger on gold6148 (~13 %).
  EXPECT_LT(noise_profile("2650v4").ramp_d1, noise_profile("gold6132").ramp_d1);
  EXPECT_LT(noise_profile("gold6132").ramp_d1, noise_profile("gold6148").ramp_d1);
}

}  // namespace
}  // namespace rooftune::simhw
