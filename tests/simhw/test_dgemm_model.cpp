#include "simhw/dgemm_model.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "core/spaces.hpp"

namespace rooftune::simhw {
namespace {

// Table V: the surface's argmax over the paper's 96-point grid must be the
// reported optimal dimensions, and Table IV: the efficiency there must match
// the reported utilization.
struct AnchorCase {
  const char* machine;
  int sockets;
  std::int64_t n, m, k;
  double peak_eff;
};

class SurfaceAnchorTest : public ::testing::TestWithParam<AnchorCase> {};

TEST_P(SurfaceAnchorTest, GridArgmaxMatchesTableV) {
  const auto& c = GetParam();
  const DgemmSurface surface(machine_by_name(c.machine), c.sockets);

  double best = -1.0;
  core::Configuration best_config;
  for (const auto& config : core::dgemm_reduced_space().enumerate()) {
    const double eff =
        surface.efficiency(config.at("n"), config.at("m"), config.at("k"));
    if (eff > best) {
      best = eff;
      best_config = config;
    }
  }
  EXPECT_EQ(best_config.at("n"), c.n) << best_config.to_string();
  EXPECT_EQ(best_config.at("m"), c.m) << best_config.to_string();
  EXPECT_EQ(best_config.at("k"), c.k) << best_config.to_string();
  // Table IV utilization within the +/-0.5 % surface texture.
  EXPECT_NEAR(best, c.peak_eff, 0.006);
}

INSTANTIATE_TEST_SUITE_P(
    PaperTableV, SurfaceAnchorTest,
    ::testing::Values(AnchorCase{"2650v4", 1, 1000, 4096, 128, 0.9676},
                      AnchorCase{"2650v4", 2, 2000, 2048, 64, 0.9156},
                      AnchorCase{"2695v4", 1, 2000, 4096, 128, 0.9806},
                      AnchorCase{"2695v4", 2, 4000, 2048, 128, 0.9194},
                      AnchorCase{"gold6132", 1, 1000, 4096, 128, 0.8720},
                      AnchorCase{"gold6132", 2, 4000, 512, 128, 0.7513},
                      AnchorCase{"gold6148", 1, 4000, 512, 128, 0.9259},
                      AnchorCase{"gold6148", 2, 4000, 1024, 128, 0.7836}));

TEST(DgemmSurface, IntelSquareChoiceIsPoor) {
  // §VI-A: n=m=k=1000 on gold6132 dual-socket reads ~55.7 % of peak —
  // Intel's published square configuration badly underuses the machine.
  const DgemmSurface surface(machine_by_name("gold6132"), 2);
  EXPECT_NEAR(surface.efficiency(1000, 1000, 1000), 0.5569, 0.03);
  // And the autotuned anchor beats it by the paper's ~35 % margin.
  EXPECT_GT(surface.efficiency(4000, 512, 128) / surface.efficiency(1000, 1000, 1000),
            1.25);
}

TEST(DgemmSurface, MeanGflopsMatchesTableIV) {
  const DgemmSurface s1(machine_by_name("2650v4"), 1);
  EXPECT_NEAR(s1.mean_gflops(1000, 4096, 128).value, 408.71, 3.0);
  const DgemmSurface s2(machine_by_name("2650v4"), 2);
  EXPECT_NEAR(s2.mean_gflops(2000, 2048, 64).value, 773.51, 5.0);
  const DgemmSurface g2(machine_by_name("gold6148"), 2);
  EXPECT_NEAR(g2.mean_gflops(4000, 1024, 128).value, 2407.33, 15.0);
}

TEST(DgemmSurface, SmallDimensionsPerformPoorly) {
  // §IV-A: "low values for n, m and k performed poorly" — the reason the
  // initial 539-point space was narrowed.
  const DgemmSurface surface(machine_by_name("2650v4"), 1);
  EXPECT_LT(surface.efficiency(64, 64, 2), 0.15);
  EXPECT_LT(surface.efficiency(64, 64, 2), surface.efficiency(512, 512, 64));
  EXPECT_LT(surface.efficiency(128, 128, 8), 0.5 * surface.efficiency(1000, 4096, 128));
}

TEST(DgemmSurface, NonSquareBeatsSquare) {
  // §IV-A: "in most cases non-square matrices yield significantly higher
  // performance compared to square matrices."
  for (const char* name : {"2650v4", "2695v4", "gold6132", "gold6148"}) {
    const DgemmSurface surface(machine_by_name(name), 1);
    const auto& a = surface.anchor();
    const double square = surface.efficiency(1024, 1024, 1024);
    const double tuned = surface.efficiency(a.n, a.m, a.k);
    EXPECT_GT(tuned, square * 1.05) << name;
  }
}

TEST(DgemmSurface, DeterministicAcrossInstances) {
  const DgemmSurface a(machine_by_name("gold6132"), 1);
  const DgemmSurface b(machine_by_name("gold6132"), 1);
  for (std::int64_t k : {64, 256, 2048}) {
    EXPECT_DOUBLE_EQ(a.efficiency(1000, 1024, k), b.efficiency(1000, 1024, k));
  }
}

TEST(DgemmSurface, EfficiencyBounded) {
  const DgemmSurface surface(machine_by_name("gold6148"), 2);
  for (const auto& config : core::dgemm_initial_space().enumerate()) {
    const double eff =
        surface.efficiency(config.at("n"), config.at("m"), config.at("k"));
    EXPECT_GT(eff, 0.0);
    EXPECT_LE(eff, 0.995);
  }
}

TEST(DgemmSurface, DifferentMachinesDiffer) {
  const DgemmSurface a(machine_by_name("2650v4"), 1);
  const DgemmSurface b(machine_by_name("gold6132"), 1);
  EXPECT_NE(a.efficiency(2000, 2048, 256), b.efficiency(2000, 2048, 256));
}

TEST(DgemmSurface, RejectsBadArguments) {
  EXPECT_THROW(DgemmSurface(machine_by_name("2650v4"), 0), std::invalid_argument);
  EXPECT_THROW(DgemmSurface(machine_by_name("2650v4"), 3), std::invalid_argument);
  const DgemmSurface surface(machine_by_name("2650v4"), 1);
  EXPECT_THROW(static_cast<void>(surface.efficiency(0, 10, 10)), std::invalid_argument);
  EXPECT_THROW(dgemm_anchor("unknown", 1), std::invalid_argument);
}

}  // namespace
}  // namespace rooftune::simhw
