#include <gtest/gtest.h>

#include <stdexcept>

#include "roofline/builder.hpp"
#include "simhw/sim_backend.hpp"
#include "simhw/triad_model.hpp"

namespace rooftune::simhw {
namespace {

TriadSurface inner(const char* machine, int sockets = 1) {
  return TriadSurface(machine_by_name(machine), sockets,
                      util::AffinityPolicy::Close, /*model_inner_caches=*/true);
}

TEST(InnerCaches, CapacitiesAggregateOverCores) {
  const auto m = machine_by_name("2650v4");
  EXPECT_EQ(m.l1_capacity(1).value, 12u * 32u * 1024u);
  EXPECT_EQ(m.l2_capacity(1).value, 12u * 256u * 1024u);
  EXPECT_EQ(m.l1_capacity(2).value, 2u * 12u * 32u * 1024u);
}

TEST(InnerCaches, BandwidthHierarchyOrdered) {
  const auto s = inner("2650v4");
  // Representative working sets deep inside each level (L1agg 384 KiB,
  // L2agg 3 MiB, L3 30 MiB).
  const double b_l1 = s.mean_bandwidth(util::Bytes::KiB(96)).value;
  const double b_l2 = s.mean_bandwidth(util::Bytes::MiB(1)).value;
  const double b_l3 = s.mean_bandwidth(util::Bytes::MiB(10)).value;
  const double b_dram = s.mean_bandwidth(util::Bytes::MiB(768)).value;
  EXPECT_GT(b_l1, b_l2);
  EXPECT_GT(b_l2, b_l3);
  EXPECT_GT(b_l3, b_dram);
}

TEST(InnerCaches, MatchesPlainSurfaceBeyondL2) {
  // With working sets much larger than the private caches, the extension
  // must agree with the calibrated Table VI surface (same L3/DRAM terms).
  const auto plain = TriadSurface(machine_by_name("2650v4"), 1,
                                  util::AffinityPolicy::Close, false);
  const auto extended = inner("2650v4");
  for (const auto ws : {util::Bytes::MiB(12), util::Bytes::MiB(96),
                        util::Bytes::MiB(768)}) {
    EXPECT_NEAR(extended.mean_bandwidth(ws).value, plain.mean_bandwidth(ws).value,
                0.02 * plain.mean_bandwidth(ws).value)
        << ws.value;
  }
}

TEST(InnerCaches, PlainSurfaceHasNoInnerBoost) {
  const auto plain = TriadSurface(machine_by_name("2650v4"), 1,
                                  util::AffinityPolicy::Close, false);
  // Without the extension, a tiny L1-resident working set cannot exceed the
  // L3 peak.
  EXPECT_LE(plain.mean_bandwidth(util::Bytes::KiB(128)).value,
            plain.anchor().l3_peak_gbps);
  EXPECT_FALSE(plain.models_inner_caches());
  EXPECT_TRUE(inner("2650v4").models_inner_caches());
}

TEST(InnerCaches, SyntheticPeakRatios) {
  const auto s = inner("2695v4");
  EXPECT_GT(s.l1_peak_gbps(), s.l2_peak_gbps());
  EXPECT_GT(s.l2_peak_gbps(), s.anchor().l3_peak_gbps);
}

TEST(InnerCaches, RequiresPerCoreSizes) {
  MachineSpec custom = machine_by_name("2650v4");
  custom.l1_per_core = util::Bytes{0};
  EXPECT_THROW(TriadSurface(custom, 1, util::AffinityPolicy::Close, true),
               std::invalid_argument);
}

TEST(InnerCaches, SkylakeL3WindowIsUnmeasurable) {
  // A genuine finding of the windowed method: on Skylake-SP the aggregate
  // private L2 (20 cores x 1 MiB) nearly equals the 31.75 MiB L3, so no
  // working set sits comfortably past L2 yet inside L3 — the L3 level is
  // (correctly) skipped rather than reported from polluted samples.
  const auto machine = machine_by_name("gold6148");
  SimOptions sim;
  sim.sockets_used = 1;
  sim.model_inner_caches = true;
  SimTriadBackend backend(machine, sim);
  roofline::BuilderOptions options;
  options.prune_min_count = 10;
  const auto hierarchy =
      roofline::measure_cache_hierarchy(backend, machine, 1, options);
  ASSERT_EQ(hierarchy.size(), 3u);  // L1, L2, DRAM
  EXPECT_NE(hierarchy[0].name.find("L1"), std::string::npos);
  EXPECT_NE(hierarchy[1].name.find("L2"), std::string::npos);
  EXPECT_NE(hierarchy[2].name.find("DRAM"), std::string::npos);
}

TEST(InnerCaches, HierarchyMeasurementOrderedAndWindowed) {
  const auto machine = machine_by_name("2650v4");  // Broadwell: clean windows
  SimOptions sim;
  sim.sockets_used = 1;
  sim.model_inner_caches = true;
  SimTriadBackend backend(machine, sim);

  roofline::BuilderOptions options;
  options.prune_min_count = 10;
  const auto hierarchy =
      roofline::measure_cache_hierarchy(backend, machine, 1, options);

  ASSERT_EQ(hierarchy.size(), 4u);  // L1, L2, L3, DRAM
  EXPECT_NE(hierarchy[0].name.find("L1"), std::string::npos);
  EXPECT_NE(hierarchy[3].name.find("DRAM"), std::string::npos);
  for (std::size_t i = 1; i < hierarchy.size(); ++i) {
    EXPECT_GT(hierarchy[i - 1].value.value, hierarchy[i].value.value) << i;
  }
  // Each level's winning working set respects its capacity window.
  EXPECT_LE(24u * static_cast<std::uint64_t>(hierarchy[0].best_config.at("N")),
            machine.l1_capacity(1).value);
  EXPECT_GE(24u * static_cast<std::uint64_t>(hierarchy[3].best_config.at("N")),
            8u * machine.l3_capacity(1).value);
  // DRAM carries the Eq. 11 theoretical peak, inner levels do not.
  EXPECT_GT(hierarchy[3].theoretical.value, 0.0);
  EXPECT_DOUBLE_EQ(hierarchy[0].theoretical.value, 0.0);
}

TEST(InnerCaches, HierarchyRejectsUnknownCaches) {
  MachineSpec custom = machine_by_name("2650v4");
  custom.l1_per_core = util::Bytes{0};
  custom.name = "2650v4";  // anchors still resolve
  SimOptions sim;
  SimTriadBackend backend(machine_by_name("2650v4"), sim);
  roofline::BuilderOptions options;
  EXPECT_THROW(static_cast<void>(
                   roofline::measure_cache_hierarchy(backend, custom, 1, options)),
               std::invalid_argument);
}

}  // namespace
}  // namespace rooftune::simhw
