#include "util/json_parse.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "util/json.hpp"

namespace rooftune::util {
namespace {

TEST(JsonParse, Scalars) {
  EXPECT_TRUE(parse_json("null").is_null());
  EXPECT_TRUE(parse_json("true").as_bool());
  EXPECT_FALSE(parse_json("false").as_bool());
  EXPECT_DOUBLE_EQ(parse_json("42").as_number(), 42.0);
  EXPECT_DOUBLE_EQ(parse_json("-3.25").as_number(), -3.25);
  EXPECT_DOUBLE_EQ(parse_json("1e3").as_number(), 1000.0);
  EXPECT_DOUBLE_EQ(parse_json("2.5E-2").as_number(), 0.025);
  EXPECT_EQ(parse_json("\"hi\"").as_string(), "hi");
}

TEST(JsonParse, IntAccessor) {
  EXPECT_EQ(parse_json("7").as_int(), 7);
  EXPECT_THROW(static_cast<void>(parse_json("7.5").as_int()), std::runtime_error);
}

TEST(JsonParse, NestedStructures) {
  const auto doc = parse_json(R"({"a": [1, 2, {"b": true}], "c": null})");
  EXPECT_EQ(doc.size(), 2u);
  EXPECT_EQ(doc.at("a").size(), 3u);
  EXPECT_DOUBLE_EQ(doc.at("a").at(1).as_number(), 2.0);
  EXPECT_TRUE(doc.at("a").at(2).at("b").as_bool());
  EXPECT_TRUE(doc.at("c").is_null());
  EXPECT_TRUE(doc.has("a"));
  EXPECT_FALSE(doc.has("z"));
}

TEST(JsonParse, EmptyContainers) {
  EXPECT_EQ(parse_json("{}").size(), 0u);
  EXPECT_EQ(parse_json("[]").size(), 0u);
  EXPECT_EQ(parse_json("[ ]").size(), 0u);
}

TEST(JsonParse, StringEscapes) {
  EXPECT_EQ(parse_json(R"("a\"b")").as_string(), "a\"b");
  EXPECT_EQ(parse_json(R"("tab\there")").as_string(), "tab\there");
  EXPECT_EQ(parse_json(R"("back\\slash")").as_string(), "back\\slash");
  EXPECT_EQ(parse_json(R"("A")").as_string(), "A");
  EXPECT_EQ(parse_json(R"("é")").as_string(), "\xc3\xa9");  // é in UTF-8
  EXPECT_EQ(parse_json(R"("new\nline")").as_string(), "new\nline");
}

TEST(JsonParse, WhitespaceTolerant) {
  const auto doc = parse_json("  {\n\t\"x\" :  [ 1 ,\r\n 2 ]\n}  ");
  EXPECT_EQ(doc.at("x").size(), 2u);
}

TEST(JsonParse, RoundTripsWriterOutput) {
  JsonWriter w;
  w.begin_object();
  w.key("name").value("run \"quoted\"\n");
  w.key("values").begin_array().value(1.5).value(-2).value(true).null().end_array();
  w.key("nested").begin_object().key("deep").value(99).end_object();
  w.end_object();

  const auto doc = parse_json(w.str());
  EXPECT_EQ(doc.at("name").as_string(), "run \"quoted\"\n");
  EXPECT_DOUBLE_EQ(doc.at("values").at(0).as_number(), 1.5);
  EXPECT_TRUE(doc.at("values").at(3).is_null());
  EXPECT_EQ(doc.at("nested").at("deep").as_int(), 99);
}

TEST(JsonParse, MalformedInputs) {
  for (const char* bad :
       {"", "{", "}", "[1,", "{\"a\":}", "{\"a\" 1}", "tru", "nul", "01x",
        "\"unterminated", "{\"a\":1} garbage", "[1 2]", "{'a':1}", "- 1",
        "\"bad\\escape\\q\"", "1.", "1e", "[1,]"}) {
    EXPECT_THROW(parse_json(bad), std::invalid_argument) << bad;
  }
}

TEST(JsonParse, TypeMismatchesThrow) {
  const auto doc = parse_json(R"({"n": 1})");
  EXPECT_THROW(static_cast<void>(doc.at("n").as_string()), std::runtime_error);
  EXPECT_THROW(static_cast<void>(doc.at("n").as_array()), std::runtime_error);
  EXPECT_THROW(static_cast<void>(doc.at("missing")), std::out_of_range);
  EXPECT_THROW(static_cast<void>(parse_json("[1]").at(5)), std::out_of_range);
}

TEST(JsonParse, DeeplyNested) {
  std::string deep;
  for (int i = 0; i < 50; ++i) deep += "[";
  deep += "1";
  for (int i = 0; i < 50; ++i) deep += "]";
  const auto doc = parse_json(deep);
  const JsonValue* v = &doc;
  for (int i = 0; i < 50; ++i) v = &v->at(0);
  EXPECT_DOUBLE_EQ(v->as_number(), 1.0);
}

}  // namespace
}  // namespace rooftune::util
