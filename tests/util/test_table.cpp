#include "util/table.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace rooftune::util {
namespace {

TEST(TextTable, RendersAlignedColumns) {
  TextTable t;
  t.columns({"Technique", "Time"}, {Align::Left, Align::Right});
  t.add_row({"Default", "3435.73s"});
  t.add_row({"C+I+O", "29.53s"});
  const std::string out = t.render();
  EXPECT_NE(out.find("| Technique |     Time |"), std::string::npos);
  EXPECT_NE(out.find("| Default   | 3435.73s |"), std::string::npos);
  EXPECT_NE(out.find("| C+I+O     |   29.53s |"), std::string::npos);
}

TEST(TextTable, WidensToFitContent) {
  TextTable t;
  t.columns({"a"});
  t.add_row({"a very long cell"});
  EXPECT_NE(t.render().find("| a very long cell |"), std::string::npos);
}

TEST(TextTable, SeparatorAddsRule) {
  TextTable t;
  t.columns({"x"});
  t.add_row({"1"});
  t.add_separator();
  t.add_row({"2"});
  const std::string out = t.render();
  // top + header-sep + mid-sep + bottom = 4 rules.
  std::size_t rules = 0;
  for (std::size_t pos = out.find("+-"); pos != std::string::npos;
       pos = out.find("+-", pos + 1)) {
    ++rules;
  }
  EXPECT_EQ(rules, 4u);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(TextTable, RejectsWrongArity) {
  TextTable t;
  t.columns({"a", "b"});
  EXPECT_THROW(t.add_row({"only one"}), std::invalid_argument);
}

TEST(TextTable, RejectsColumnsAfterRows) {
  TextTable t;
  t.columns({"a"});
  t.add_row({"1"});
  EXPECT_THROW(t.columns({"b"}), std::logic_error);
}

}  // namespace
}  // namespace rooftune::util
