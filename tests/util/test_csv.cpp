#include "util/csv.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace rooftune::util {
namespace {

TEST(CsvWriter, WritesSimpleRows) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.header({"a", "b"});
  csv.cell(1).cell(2.5);
  csv.end_row();
  EXPECT_EQ(out.str(), "a,b\n1,2.5\n");
  EXPECT_EQ(csv.rows_written(), 2u);
}

TEST(CsvWriter, QuotesSpecialCharacters) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.cell(std::string("a,b")).cell(std::string("say \"hi\"")).cell(std::string("line\nbreak"));
  csv.end_row();
  EXPECT_EQ(out.str(), "\"a,b\",\"say \"\"hi\"\"\",\"line\nbreak\"\n");
}

TEST(CsvWriter, NumericFormatting) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.cell(static_cast<long long>(-42)).cell(static_cast<unsigned long long>(7));
  csv.cell(0.1);
  csv.end_row();
  EXPECT_EQ(out.str(), "-42,7,0.1\n");
}

TEST(ParseCsv, RoundTripsWriterOutput) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.header({"x", "note"});
  csv.cell(std::string("1")).cell(std::string("plain")).end_row();
  csv.cell(std::string("2")).cell(std::string("with,comma")).end_row();
  csv.cell(std::string("3")).cell(std::string("with \"quote\"")).end_row();

  const auto rows = parse_csv(out.str());
  ASSERT_EQ(rows.size(), 4u);
  EXPECT_EQ(rows[0], (std::vector<std::string>{"x", "note"}));
  EXPECT_EQ(rows[2][1], "with,comma");
  EXPECT_EQ(rows[3][1], "with \"quote\"");
}

TEST(ParseCsv, HandlesCrLfAndTrailingContent) {
  const auto rows = parse_csv("a,b\r\nc,d");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0], (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(rows[1], (std::vector<std::string>{"c", "d"}));
}

TEST(ParseCsv, EmptyFieldsPreserved) {
  const auto rows = parse_csv("a,,c\n");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0], (std::vector<std::string>{"a", "", "c"}));
}

TEST(ParseCsv, QuotedNewlineStaysInCell) {
  const auto rows = parse_csv("\"1\n2\",x\n");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], "1\n2");
}

TEST(ParseCsv, EmptyInputYieldsNoRows) {
  EXPECT_TRUE(parse_csv("").empty());
}

}  // namespace
}  // namespace rooftune::util
