#include "util/units.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <tuple>

namespace rooftune::util {
namespace {

TEST(Units, SecondsArithmetic) {
  Seconds a{1.5}, b{0.5};
  EXPECT_DOUBLE_EQ((a + b).value, 2.0);
  EXPECT_DOUBLE_EQ((a - b).value, 1.0);
  EXPECT_DOUBLE_EQ((a * 2.0).value, 3.0);
  EXPECT_DOUBLE_EQ((a / 3.0).value, 0.5);
  EXPECT_DOUBLE_EQ(a / b, 3.0);
  a += b;
  EXPECT_DOUBLE_EQ(a.value, 2.0);
  EXPECT_LT(b, a);
}

TEST(Units, BytesFactories) {
  EXPECT_EQ(Bytes::KiB(3).value, 3072u);
  EXPECT_EQ(Bytes::MiB(1).value, 1048576u);
  EXPECT_EQ(Bytes::GiB(2).value, 2147483648u);
  EXPECT_EQ((Bytes{10} + Bytes{5}).value, 15u);
  EXPECT_EQ((Bytes{10} * 3).value, 30u);
}

TEST(Units, RateComputesGFlops) {
  // 2e9 FLOPs in 1 second = 2 GFLOP/s.
  EXPECT_DOUBLE_EQ(rate(Flops{2e9}, Seconds{1.0}).value, 2.0);
  EXPECT_DOUBLE_EQ(rate(Flops{1e9}, Seconds{0.5}).value, 2.0);
}

TEST(Units, BandwidthComputesGBps) {
  EXPECT_DOUBLE_EQ(bandwidth(Bytes{3'000'000'000ull}, Seconds{1.0}).value, 3.0);
  EXPECT_DOUBLE_EQ(bandwidth(Bytes{1'500'000'000ull}, Seconds{0.5}).value, 3.0);
}

TEST(Units, TriadIntensityIsOneTwelfth) {
  // Paper §I: TRIAD does 2 FLOPs per 24 bytes = 1/12 FLOP/byte.
  const Intensity i = intensity(Flops{2.0}, Bytes{24});
  EXPECT_NEAR(i.value, 1.0 / 12.0, 1e-15);
}

struct ParseCase {
  const char* text;
  std::uint64_t expected;
};

class ParseBytesTest : public ::testing::TestWithParam<ParseCase> {};

TEST_P(ParseBytesTest, Parses) {
  EXPECT_EQ(parse_bytes(GetParam().text).value, GetParam().expected);
}

INSTANTIATE_TEST_SUITE_P(
    Suffixes, ParseBytesTest,
    ::testing::Values(ParseCase{"0", 0}, ParseCase{"123", 123},
                      ParseCase{"123B", 123}, ParseCase{"3KiB", 3072},
                      ParseCase{"3K", 3072}, ParseCase{"768MiB", 805306368},
                      ParseCase{"768 MiB", 805306368},
                      ParseCase{"1.5KiB", 1536}, ParseCase{"2GiB", 2147483648},
                      ParseCase{"0.5M", 524288}));

TEST(ParseBytes, RejectsMalformed) {
  EXPECT_THROW(parse_bytes(""), std::invalid_argument);
  EXPECT_THROW(parse_bytes("abc"), std::invalid_argument);
  EXPECT_THROW(parse_bytes("12XB"), std::invalid_argument);
  EXPECT_THROW(parse_bytes("-5K"), std::invalid_argument);
}

TEST(FormatBytes, PicksHumanUnit) {
  EXPECT_EQ(format_bytes(Bytes{512}), "512 B");
  EXPECT_EQ(format_bytes(Bytes::KiB(3)), "3.0 KiB");
  EXPECT_EQ(format_bytes(Bytes::MiB(768)), "768.0 MiB");
  EXPECT_EQ(format_bytes(Bytes::GiB(2)), "2.0 GiB");
}

TEST(FormatSeconds, PicksHumanUnit) {
  EXPECT_EQ(format_seconds(Seconds{0.0000005}), "0.5us");
  EXPECT_EQ(format_seconds(Seconds{0.0123}), "12.30ms");
  EXPECT_EQ(format_seconds(Seconds{3.456}), "3.46s");
  EXPECT_EQ(format_seconds(Seconds{127.0}), "2m07s");
  EXPECT_EQ(format_seconds(Seconds{-3.0}), "-3.00s");
}

}  // namespace
}  // namespace rooftune::util
