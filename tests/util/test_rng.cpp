#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

namespace rooftune::util {
namespace {

TEST(SplitMix64, KnownSequenceIsDeterministic) {
  std::uint64_t s1 = 0, s2 = 0;
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(splitmix64(s1), splitmix64(s2));
  }
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  std::uint64_t a = 1, b = 2;
  EXPECT_NE(splitmix64(a), splitmix64(b));
}

TEST(HashSeed, OrderMatters) {
  EXPECT_NE(hash_seed(1, 2), hash_seed(2, 1));
  EXPECT_NE(hash_seed(1, 2, 3), hash_seed(1, 3, 2));
}

TEST(HashSeed, MoreComponentsChangeHash) {
  EXPECT_NE(hash_seed(7ull), hash_seed(7ull, 0ull));
}

TEST(Xoshiro256, SameSeedSameStream) {
  Xoshiro256 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Xoshiro256, ReseedRestartsStream) {
  Xoshiro256 a(42);
  const auto first = a();
  a.reseed(42);
  EXPECT_EQ(a(), first);
}

TEST(Xoshiro256, UniformInUnitInterval) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Xoshiro256, UniformRangeRespectsBounds) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Xoshiro256, UniformMeanIsCentered) {
  Xoshiro256 rng(123);
  double sum = 0.0;
  constexpr int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.005);
}

TEST(Xoshiro256, NormalMomentsMatch) {
  Xoshiro256 rng(99);
  double sum = 0.0, sumsq = 0.0;
  constexpr int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double z = rng.normal();
    sum += z;
    sumsq += z * z;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sumsq / n, 1.0, 0.03);
}

TEST(Xoshiro256, NormalWithParams) {
  Xoshiro256 rng(5);
  double sum = 0.0;
  constexpr int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(Xoshiro256, LognormalMedianIsExpMu) {
  Xoshiro256 rng(11);
  std::vector<double> xs;
  constexpr int n = 50001;
  xs.reserve(n);
  for (int i = 0; i < n; ++i) xs.push_back(rng.lognormal(1.0, 0.5));
  std::nth_element(xs.begin(), xs.begin() + n / 2, xs.end());
  EXPECT_NEAR(xs[n / 2], std::exp(1.0), 0.06);
}

TEST(Xoshiro256, LognormalIsPositive) {
  Xoshiro256 rng(13);
  for (int i = 0; i < 10000; ++i) EXPECT_GT(rng.lognormal(0.0, 3.0), 0.0);
}

TEST(Xoshiro256, BelowStaysInRange) {
  Xoshiro256 rng(17);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(rng.below(7), 7u);
  EXPECT_EQ(rng.below(0), 0u);
  EXPECT_EQ(rng.below(1), 0u);
}

TEST(Xoshiro256, BelowHitsAllResidues) {
  Xoshiro256 rng(19);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.below(5));
  EXPECT_EQ(seen.size(), 5u);
}

}  // namespace
}  // namespace rooftune::util
