// Robustness sweep for the JSON parser: random byte soup and mutated valid
// documents must either parse or throw std::invalid_argument — never crash,
// hang, or return garbage silently.  (The parser guards checkpoint restore,
// which reads files that may be torn or hand-edited.)

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "util/json.hpp"
#include "util/json_parse.hpp"
#include "util/rng.hpp"

namespace rooftune::util {
namespace {

TEST(JsonFuzz, RandomBytesNeverCrash) {
  Xoshiro256 rng(0xF00D);
  for (int trial = 0; trial < 2000; ++trial) {
    const std::size_t len = rng.below(64);
    std::string input;
    input.reserve(len);
    for (std::size_t i = 0; i < len; ++i) {
      input += static_cast<char>(rng.below(256));
    }
    try {
      const JsonValue v = parse_json(input);
      (void)v;  // rarely a valid scalar — fine
    } catch (const std::invalid_argument&) {
      // expected for almost every input
    }
  }
}

TEST(JsonFuzz, RandomPrintableSoupNeverCrashes) {
  Xoshiro256 rng(0xBEEF);
  const std::string alphabet = R"({}[]",:0123456789.eE+-truefalsenull \n)";
  for (int trial = 0; trial < 3000; ++trial) {
    const std::size_t len = rng.below(48);
    std::string input;
    for (std::size_t i = 0; i < len; ++i) {
      input += alphabet[rng.below(alphabet.size())];
    }
    try {
      (void)parse_json(input);
    } catch (const std::invalid_argument&) {
    }
  }
}

TEST(JsonFuzz, MutatedValidDocuments) {
  // Start from a representative checkpoint-like document, flip bytes.
  JsonWriter w;
  w.begin_object();
  w.key("fingerprint").value("00ffee0011223344");
  w.key("elapsed_seconds").value(123.5);
  w.key("results").begin_array();
  for (int i = 0; i < 3; ++i) {
    w.begin_object();
    w.key("value").value(100.0 + i);
    w.key("pruned").value(i % 2 == 0);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  const std::string base = w.str();

  Xoshiro256 rng(0xCAFE);
  int parsed_ok = 0;
  for (int trial = 0; trial < 3000; ++trial) {
    std::string mutated = base;
    const std::size_t edits = 1 + rng.below(3);
    for (std::size_t e = 0; e < edits; ++e) {
      mutated[rng.below(mutated.size())] = static_cast<char>(rng.below(128));
    }
    try {
      (void)parse_json(mutated);
      ++parsed_ok;
    } catch (const std::invalid_argument&) {
    }
  }
  // Some mutations stay valid (e.g. digit swaps); most must be rejected.
  EXPECT_LT(parsed_ok, 3000);
}

TEST(JsonFuzz, PathologicalNestingRejectedOrParsed) {
  // Unbalanced deep nesting must throw, not overflow silently.
  std::string open(2000, '[');
  EXPECT_THROW((void)parse_json(open), std::invalid_argument);
}

}  // namespace
}  // namespace rooftune::util
