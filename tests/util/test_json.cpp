#include "util/json.hpp"

#include <gtest/gtest.h>

namespace rooftune::util {
namespace {

TEST(JsonWriter, EmptyObject) {
  JsonWriter w;
  w.begin_object().end_object();
  EXPECT_EQ(w.str(), "{}");
}

TEST(JsonWriter, SimpleObject) {
  JsonWriter w;
  w.begin_object();
  w.key("name").value("dgemm");
  w.key("count").value(3);
  w.key("ok").value(true);
  w.key("missing").null();
  w.end_object();
  EXPECT_EQ(w.str(), R"({"name":"dgemm","count":3,"ok":true,"missing":null})");
}

TEST(JsonWriter, NestedContainers) {
  JsonWriter w;
  w.begin_object();
  w.key("dims").begin_array().value(1000).value(4096).value(128).end_array();
  w.key("nested").begin_object().key("x").value(1.5).end_object();
  w.end_object();
  EXPECT_EQ(w.str(), R"({"dims":[1000,4096,128],"nested":{"x":1.5}})");
}

TEST(JsonWriter, ArrayOfObjects) {
  JsonWriter w;
  w.begin_array();
  w.begin_object().key("a").value(1).end_object();
  w.begin_object().key("a").value(2).end_object();
  w.end_array();
  EXPECT_EQ(w.str(), R"([{"a":1},{"a":2}])");
}

TEST(JsonWriter, EscapesStrings) {
  EXPECT_EQ(JsonWriter::escape("tab\there"), "tab\\there");
  EXPECT_EQ(JsonWriter::escape("quote\"backslash\\"), "quote\\\"backslash\\\\");
  EXPECT_EQ(JsonWriter::escape(std::string("ctrl\x01")), "ctrl\\u0001");
  EXPECT_EQ(JsonWriter::escape("new\nline"), "new\\nline");
}

TEST(JsonWriter, NonFiniteDoublesBecomeNull) {
  JsonWriter w;
  w.begin_array().value(std::numeric_limits<double>::infinity()).end_array();
  EXPECT_EQ(w.str(), "[null]");
}

TEST(JsonWriter, TopLevelScalars) {
  JsonWriter w;
  w.value(42);
  EXPECT_EQ(w.str(), "42");
}

}  // namespace
}  // namespace rooftune::util
