#include "util/affinity.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace rooftune::util {
namespace {

TEST(Affinity, ParsesPolicies) {
  EXPECT_EQ(parse_affinity("close"), AffinityPolicy::Close);
  EXPECT_EQ(parse_affinity("SPREAD"), AffinityPolicy::Spread);
  EXPECT_EQ(parse_affinity("  Close "), AffinityPolicy::Close);
}

TEST(Affinity, RejectsUnknown) {
  EXPECT_THROW(parse_affinity("scatter"), std::invalid_argument);
  EXPECT_THROW(parse_affinity(""), std::invalid_argument);
}

TEST(Affinity, RoundTripsNames) {
  EXPECT_EQ(parse_affinity(to_string(AffinityPolicy::Close)), AffinityPolicy::Close);
  EXPECT_EQ(parse_affinity(to_string(AffinityPolicy::Spread)), AffinityPolicy::Spread);
}

TEST(Affinity, NativeThreadCountPositive) {
  EXPECT_GE(native_thread_count(), 1);
}

TEST(Affinity, ApplyNativeAffinityDoesNotThrow) {
  EXPECT_NO_THROW(apply_native_affinity(AffinityPolicy::Close));
  EXPECT_NO_THROW(apply_native_affinity(AffinityPolicy::Spread));
}

}  // namespace
}  // namespace rooftune::util
