#include "util/strings.hpp"

#include <gtest/gtest.h>

namespace rooftune::util {
namespace {

TEST(Split, BasicAndEmptyFields) {
  EXPECT_EQ(split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(split("abc", ','), (std::vector<std::string>{"abc"}));
  EXPECT_EQ(split(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(Trim, RemovesEdges) {
  EXPECT_EQ(trim("  hi  "), "hi");
  EXPECT_EQ(trim("\t\nx\r "), "x");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("inner space kept"), "inner space kept");
}

TEST(ToLower, Lowercases) {
  EXPECT_EQ(to_lower("AbC123"), "abc123");
  EXPECT_EQ(to_lower(""), "");
}

TEST(StartsWith, Matches) {
  EXPECT_TRUE(starts_with("--flag", "--"));
  EXPECT_FALSE(starts_with("-", "--"));
  EXPECT_TRUE(starts_with("abc", ""));
}

TEST(Format, PrintfStyle) {
  EXPECT_EQ(format("%d + %d = %d", 1, 2, 3), "1 + 2 = 3");
  EXPECT_EQ(format("%.2f%%", 91.557), "91.56%");
  EXPECT_EQ(format("%s", "plain"), "plain");
}

TEST(WithThousands, InsertsSeparators) {
  EXPECT_EQ(with_thousands(1234567.891, 2), "1,234,567.89");
  EXPECT_EQ(with_thousands(999.0, 0), "999");
  EXPECT_EQ(with_thousands(1000.0, 0), "1,000");
  EXPECT_EQ(with_thousands(-12345.6, 1), "-12,345.6");
  EXPECT_EQ(with_thousands(0.5, 2), "0.50");
}

}  // namespace
}  // namespace rooftune::util
