#include "util/log.hpp"

#include <gtest/gtest.h>

#include <utility>
#include <vector>

namespace rooftune::util {
namespace {

class LogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    previous_level_ = Log::level();
    previous_sink_ = Log::set_sink([this](LogLevel level, const std::string& message) {
      captured_.emplace_back(level, message);
    });
  }
  void TearDown() override {
    Log::set_sink(std::move(previous_sink_));
    Log::set_level(previous_level_);
  }

  std::vector<std::pair<LogLevel, std::string>> captured_;
  Log::Sink previous_sink_;
  LogLevel previous_level_ = LogLevel::Warn;
};

TEST_F(LogTest, RespectsLevelThreshold) {
  Log::set_level(LogLevel::Warn);
  log_debug() << "hidden";
  log_info() << "hidden too";
  log_warn() << "visible";
  log_error() << "also visible";
  ASSERT_EQ(captured_.size(), 2u);
  EXPECT_EQ(captured_[0].second, "visible");
  EXPECT_EQ(captured_[1].first, LogLevel::Error);
}

TEST_F(LogTest, StreamsMixedTypes) {
  Log::set_level(LogLevel::Debug);
  log_info() << "x=" << 42 << " y=" << 1.5;
  ASSERT_EQ(captured_.size(), 1u);
  EXPECT_EQ(captured_[0].second, "x=42 y=1.5");
}

TEST_F(LogTest, OffSilencesEverything) {
  Log::set_level(LogLevel::Off);
  log_error() << "nope";
  EXPECT_TRUE(captured_.empty());
}

TEST(LogLevelNames, ToString) {
  EXPECT_STREQ(to_string(LogLevel::Debug), "DEBUG");
  EXPECT_STREQ(to_string(LogLevel::Info), "INFO");
  EXPECT_STREQ(to_string(LogLevel::Warn), "WARN");
  EXPECT_STREQ(to_string(LogLevel::Error), "ERROR");
}

}  // namespace
}  // namespace rooftune::util
