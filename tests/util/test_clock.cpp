#include "util/clock.hpp"

#include <gtest/gtest.h>

namespace rooftune::util {
namespace {

TEST(WallClock, IsMonotonic) {
  WallClock clock;
  const Seconds a = clock.now();
  const Seconds b = clock.now();
  EXPECT_GE(b.value, a.value);
}

TEST(VirtualClock, StartsAtZero) {
  VirtualClock clock;
  EXPECT_DOUBLE_EQ(clock.now().value, 0.0);
}

TEST(VirtualClock, AdvancesByDelta) {
  VirtualClock clock;
  clock.advance(Seconds{1.25});
  clock.advance(Seconds{0.75});
  EXPECT_DOUBLE_EQ(clock.now().value, 2.0);
}

TEST(VirtualClock, IgnoresNegativeDeltas) {
  VirtualClock clock;
  clock.advance(Seconds{5.0});
  clock.advance(Seconds{-3.0});  // a buggy cost model must not rewind time
  EXPECT_DOUBLE_EQ(clock.now().value, 5.0);
}

TEST(VirtualClock, ResetReturnsToZero) {
  VirtualClock clock;
  clock.advance(Seconds{9.0});
  clock.reset();
  EXPECT_DOUBLE_EQ(clock.now().value, 0.0);
}

TEST(Stopwatch, MeasuresVirtualTime) {
  VirtualClock clock;
  Stopwatch watch(clock);
  clock.advance(Seconds{2.5});
  EXPECT_DOUBLE_EQ(watch.elapsed().value, 2.5);
  watch.restart();
  EXPECT_DOUBLE_EQ(watch.elapsed().value, 0.0);
  clock.advance(Seconds{1.0});
  EXPECT_DOUBLE_EQ(watch.elapsed().value, 1.0);
}

}  // namespace
}  // namespace rooftune::util
