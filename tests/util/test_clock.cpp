#include "util/clock.hpp"

#include <gtest/gtest.h>

namespace rooftune::util {
namespace {

TEST(WallClock, IsMonotonic) {
  WallClock clock;
  const Seconds a = clock.now();
  const Seconds b = clock.now();
  EXPECT_GE(b.value, a.value);
}

TEST(VirtualClock, StartsAtZero) {
  VirtualClock clock;
  EXPECT_DOUBLE_EQ(clock.now().value, 0.0);
}

TEST(VirtualClock, AdvancesByDelta) {
  VirtualClock clock;
  clock.advance(Seconds{1.25});
  clock.advance(Seconds{0.75});
  EXPECT_DOUBLE_EQ(clock.now().value, 2.0);
}

TEST(VirtualClock, IgnoresNegativeDeltas) {
  VirtualClock clock;
  clock.advance(Seconds{5.0});
  clock.advance(Seconds{-3.0});  // a buggy cost model must not rewind time
  EXPECT_DOUBLE_EQ(clock.now().value, 5.0);
}

TEST(VirtualClock, ResetReturnsToZero) {
  VirtualClock clock;
  clock.advance(Seconds{9.0});
  clock.reset();
  EXPECT_DOUBLE_EQ(clock.now().value, 0.0);
}

// Deterministic clock whose now() costs exactly one fixed tick — the
// calibration must recover that tick as the per-call overhead.
class TickingClock final : public Clock {
 public:
  explicit TickingClock(double tick) : tick_(tick) {}
  [[nodiscard]] Seconds now() const override {
    now_ += tick_;
    return Seconds{now_};
  }

 private:
  double tick_;
  mutable double now_ = 0.0;
};

TEST(CalibrateClockOverhead, RecoversKnownFixedOverhead) {
  const double tick = 1e-6;
  const TickingClock clock(tick);
  const Seconds estimate = calibrate_clock_overhead(clock);
  EXPECT_NEAR(estimate.value, tick, 0.1 * tick);  // within 10 %
}

TEST(CalibrateClockOverhead, SmallBatchStillWithinTolerance) {
  const double tick = 2.5e-7;
  const TickingClock clock(tick);
  const Seconds estimate = calibrate_clock_overhead(clock, 16, 4);
  EXPECT_NEAR(estimate.value, tick, 0.1 * tick);
}

TEST(VirtualClock, OverheadDefaultsToZeroAndRoundTrips) {
  VirtualClock clock;
  EXPECT_DOUBLE_EQ(clock.overhead().value, 0.0);
  clock.set_overhead(Seconds{3e-7});
  EXPECT_DOUBLE_EQ(clock.overhead().value, 3e-7);
  // Reading the virtual clock stays free: overhead is a model parameter.
  const Seconds before = clock.now();
  EXPECT_DOUBLE_EQ(clock.now().value, before.value);
}

TEST(WallClock, OverheadIsNonNegativeAndCached) {
  const WallClock clock;
  const Seconds first = clock.overhead();
  EXPECT_GE(first.value, 0.0);
  EXPECT_LT(first.value, 1e-3);  // a timer call is far below a millisecond
  EXPECT_DOUBLE_EQ(clock.overhead().value, first.value);  // process-wide cache
}

TEST(Stopwatch, MeasuresVirtualTime) {
  VirtualClock clock;
  Stopwatch watch(clock);
  clock.advance(Seconds{2.5});
  EXPECT_DOUBLE_EQ(watch.elapsed().value, 2.5);
  watch.restart();
  EXPECT_DOUBLE_EQ(watch.elapsed().value, 0.0);
  clock.advance(Seconds{1.0});
  EXPECT_DOUBLE_EQ(watch.elapsed().value, 1.0);
}

}  // namespace
}  // namespace rooftune::util
