#include "util/aligned_buffer.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <utility>

namespace rooftune::util {
namespace {

TEST(AlignedBuffer, AllocatesAligned) {
  AlignedBuffer<double> buf(100);
  EXPECT_EQ(buf.size(), 100u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(buf.data()) % AlignedBuffer<double>::alignment,
            0u);
}

TEST(AlignedBuffer, OddSizesStillAligned) {
  for (std::size_t n : {1u, 3u, 7u, 13u, 100u, 1001u}) {
    AlignedBuffer<float> buf(n);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(buf.data()) % 64, 0u) << n;
    EXPECT_EQ(buf.size(), n);
  }
}

TEST(AlignedBuffer, EmptyIsValid) {
  AlignedBuffer<double> buf;
  EXPECT_TRUE(buf.empty());
  EXPECT_EQ(buf.data(), nullptr);
  AlignedBuffer<double> zero(0);
  EXPECT_TRUE(zero.empty());
}

TEST(AlignedBuffer, ElementAccessAndIteration) {
  AlignedBuffer<int> buf(10);
  std::iota(buf.begin(), buf.end(), 0);
  EXPECT_EQ(buf[0], 0);
  EXPECT_EQ(buf[9], 9);
  int sum = 0;
  for (int v : buf) sum += v;
  EXPECT_EQ(sum, 45);
}

TEST(AlignedBuffer, MoveTransfersOwnership) {
  AlignedBuffer<double> a(5);
  a[0] = 42.0;
  double* raw = a.data();
  AlignedBuffer<double> b(std::move(a));
  EXPECT_EQ(b.data(), raw);
  EXPECT_DOUBLE_EQ(b[0], 42.0);
  EXPECT_EQ(a.data(), nullptr);  // NOLINT(bugprone-use-after-move): documented post-state
  EXPECT_EQ(a.size(), 0u);
}

TEST(AlignedBuffer, OverflowingCountThrowsBadAlloc) {
  // count * sizeof(T) must not wrap: a wrapped product would allocate a few
  // bytes and hand out a buffer claiming billions of elements.
  constexpr std::size_t max = ~std::size_t{0};
  EXPECT_THROW(AlignedBuffer<double> buf(max / sizeof(double) + 1), std::bad_alloc);
  EXPECT_THROW(AlignedBuffer<double> buf(max), std::bad_alloc);
  EXPECT_THROW(AlignedBuffer<std::uint16_t> buf(max / 2 + 1), std::bad_alloc);
}

TEST(AlignedBuffer, MoveAssignReleasesOld) {
  AlignedBuffer<double> a(5);
  AlignedBuffer<double> b(3);
  b = std::move(a);
  EXPECT_EQ(b.size(), 5u);
  b = AlignedBuffer<double>(2);
  EXPECT_EQ(b.size(), 2u);
}

}  // namespace
}  // namespace rooftune::util
