#include "util/workspace_arena.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <new>

namespace rooftune::util {
namespace {

ArenaOptions quiet() {
  ArenaOptions options;
  options.first_touch = false;  // tiny test slabs; no OpenMP team needed
  return options;
}

TEST(WorkspaceArena, LeaseIsPageAligned) {
  WorkspaceArena arena(quiet());
  void* p = arena.lease("a", 100);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % WorkspaceArena::page_size(), 0u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % WorkspaceArena::alignment, 0u);
}

TEST(WorkspaceArena, RepeatLeaseIsSlabHitSamePointer) {
  WorkspaceArena arena(quiet());
  void* first = arena.lease("a", 4096);
  void* second = arena.lease("a", 4096);
  void* smaller = arena.lease("a", 128);
  EXPECT_EQ(first, second);
  EXPECT_EQ(first, smaller);
  EXPECT_EQ(arena.stats().leases, 3u);
  EXPECT_EQ(arena.stats().slab_misses, 1u);
  EXPECT_EQ(arena.stats().slab_hits, 2u);
  EXPECT_EQ(arena.stats().allocations, 1u);
}

TEST(WorkspaceArena, GrowthIsMonotonePerRole) {
  WorkspaceArena arena(quiet());
  arena.lease("a", 100);
  const std::uint64_t after_small = arena.stats().bytes_reserved;
  arena.lease("a", 10 * WorkspaceArena::page_size());
  const std::uint64_t after_large = arena.stats().bytes_reserved;
  EXPECT_GT(after_large, after_small);
  // Shrinking the request never shrinks the slab.
  arena.lease("a", 100);
  EXPECT_EQ(arena.stats().bytes_reserved, after_large);
  EXPECT_EQ(arena.stats().allocations, 2u);
}

TEST(WorkspaceArena, RolesAreIndependent) {
  WorkspaceArena arena(quiet());
  void* a = arena.lease("a", 256);
  void* b = arena.lease("b", 256);
  EXPECT_NE(a, b);
  EXPECT_EQ(arena.slab_count(), 2u);
}

TEST(WorkspaceArena, ContentsSurviveEqualOrSmallerLeases) {
  WorkspaceArena arena(quiet());
  auto* p = arena.lease_array<std::uint32_t>("a", 64);
  for (std::uint32_t i = 0; i < 64; ++i) p[i] = i * 7u;
  auto* again = arena.lease_array<std::uint32_t>("a", 64);
  ASSERT_EQ(p, again);
  for (std::uint32_t i = 0; i < 64; ++i) EXPECT_EQ(again[i], i * 7u) << i;
}

TEST(WorkspaceArena, ZeroByteLeaseReturnsExistingSlabOrNull) {
  WorkspaceArena arena(quiet());
  EXPECT_EQ(arena.lease("fresh", 0), nullptr);
  void* p = arena.lease("a", 64);
  EXPECT_EQ(arena.lease("a", 0), p);
}

TEST(WorkspaceArena, ReleaseAllFreesButKeepsCounting) {
  WorkspaceArena arena(quiet());
  arena.lease("a", 4096);
  arena.release_all();
  EXPECT_EQ(arena.slab_count(), 0u);
  EXPECT_EQ(arena.stats().bytes_reserved, 0u);
  // Next lease is a miss again (legacy per-invocation mode goes through
  // here), and history keeps accumulating.
  arena.lease("a", 4096);
  EXPECT_EQ(arena.stats().slab_misses, 2u);
  EXPECT_EQ(arena.stats().allocations, 2u);
}

TEST(WorkspaceArena, ResetStatsKeepsReservation) {
  WorkspaceArena arena(quiet());
  arena.lease("a", 4096);
  const std::uint64_t reserved = arena.stats().bytes_reserved;
  arena.reset_stats();
  EXPECT_EQ(arena.stats().leases, 0u);
  EXPECT_EQ(arena.stats().bytes_reserved, reserved);
}

TEST(WorkspaceArena, SteadyStateIsAllocationFree) {
  // The acceptance criterion of the arena: after the high-water working set
  // has been seen, an arbitrary interleaving of equal-or-smaller leases
  // performs zero new allocations and zero misses.
  WorkspaceArena arena(quiet());
  arena.lease("a", 8 * 4096);
  arena.lease("b", 4 * 4096);
  const ArenaStats warm = arena.stats();
  for (int invocation = 0; invocation < 100; ++invocation) {
    arena.lease("a", 8 * 4096);
    arena.lease("b", 4 * 4096);
    arena.lease("a", 4096);
  }
  EXPECT_EQ(arena.stats().allocations, warm.allocations);
  EXPECT_EQ(arena.stats().slab_misses, warm.slab_misses);
  EXPECT_EQ(arena.stats().slab_hits, warm.slab_hits + 300u);
}

TEST(WorkspaceArena, OverflowingLeaseThrowsBadAlloc) {
  WorkspaceArena arena(quiet());
  EXPECT_THROW(arena.lease("a", ~std::size_t{0} - 5), std::bad_alloc);
  EXPECT_THROW(arena.lease_array<double>("a", ~std::size_t{0} / 4), std::bad_alloc);
}

TEST(WorkspaceArena, FirstTouchZeroesNewSlabs) {
  ArenaOptions options;
  options.first_touch = true;
  WorkspaceArena arena(options);
  auto* p = arena.lease_array<unsigned char>("a", 4096);
  for (std::size_t i = 0; i < 4096; ++i) ASSERT_EQ(p[i], 0u) << i;
}

TEST(WorkspaceArena, HugePageOptionIsAccepted) {
  // THP availability is host-dependent; the madvise is advisory, so the
  // lease must succeed either way.
  ArenaOptions options;
  options.huge_pages = true;
  options.first_touch = false;
  WorkspaceArena arena(options);
  auto* p = arena.lease_array<double>("a", 1024);
  ASSERT_NE(p, nullptr);
  p[0] = 1.0;
  p[1023] = 2.0;
  EXPECT_DOUBLE_EQ(p[0] + p[1023], 3.0);
  EXPECT_TRUE(arena.options().huge_pages);
}

TEST(WorkspaceArena, StatsAggregateWithPlusEquals) {
  ArenaStats a;
  a.leases = 2;
  a.slab_hits = 1;
  a.bytes_reserved = 100;
  ArenaStats b;
  b.leases = 3;
  b.slab_misses = 3;
  b.bytes_reserved = 50;
  a += b;
  EXPECT_EQ(a.leases, 5u);
  EXPECT_EQ(a.slab_hits, 1u);
  EXPECT_EQ(a.slab_misses, 3u);
  EXPECT_EQ(a.bytes_reserved, 150u);
}

}  // namespace
}  // namespace rooftune::util
