#include "util/env.hpp"

#include <gtest/gtest.h>

#include <cstdlib>

namespace rooftune::util {
namespace {

class EnvTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ::unsetenv("KMP_AFFINITY");
    ::unsetenv("OMP_PROC_BIND");
    ::unsetenv("OMP_NUM_THREADS");
  }
  void TearDown() override { SetUp(); }

  static void set(const char* name, const char* value) {
    ::setenv(name, value, /*overwrite=*/1);
  }
};

TEST_F(EnvTest, EnvStringUnsetOrEmptyIsNullopt) {
  EXPECT_FALSE(env_string("ROOFTUNE_DOES_NOT_EXIST").has_value());
  set("ROOFTUNE_EMPTY", "");
  EXPECT_FALSE(env_string("ROOFTUNE_EMPTY").has_value());
  set("ROOFTUNE_SET", "x");
  EXPECT_EQ(env_string("ROOFTUNE_SET").value(), "x");
  ::unsetenv("ROOFTUNE_EMPTY");
  ::unsetenv("ROOFTUNE_SET");
}

TEST_F(EnvTest, KmpAffinityPaperSpellings) {
  set("KMP_AFFINITY", "close");  // the paper's DGEMM setting (§III-A)
  EXPECT_EQ(affinity_from_environment(), AffinityPolicy::Close);
  set("KMP_AFFINITY", "spread");  // the paper's TRIAD setting (§III-B)
  EXPECT_EQ(affinity_from_environment(), AffinityPolicy::Spread);
}

TEST_F(EnvTest, KmpAffinityWithModifiers) {
  set("KMP_AFFINITY", "granularity=fine,compact,1,0");
  EXPECT_EQ(affinity_from_environment(), AffinityPolicy::Close);
  set("KMP_AFFINITY", "verbose,scatter");
  EXPECT_EQ(affinity_from_environment(), AffinityPolicy::Spread);
}

TEST_F(EnvTest, OmpProcBindFallback) {
  set("OMP_PROC_BIND", "spread");
  EXPECT_EQ(affinity_from_environment(), AffinityPolicy::Spread);
  set("OMP_PROC_BIND", "close");
  EXPECT_EQ(affinity_from_environment(), AffinityPolicy::Close);
  set("OMP_PROC_BIND", "master");
  EXPECT_EQ(affinity_from_environment(), AffinityPolicy::Close);
}

TEST_F(EnvTest, KmpWinsOverOmp) {
  set("KMP_AFFINITY", "spread");
  set("OMP_PROC_BIND", "close");
  EXPECT_EQ(affinity_from_environment(), AffinityPolicy::Spread);
}

TEST_F(EnvTest, UnrecognizedIsNullopt) {
  EXPECT_FALSE(affinity_from_environment().has_value());
  set("KMP_AFFINITY", "disabled");
  set("OMP_PROC_BIND", "true");
  EXPECT_FALSE(affinity_from_environment().has_value());
}

TEST_F(EnvTest, ThreadsFromEnvironment) {
  EXPECT_FALSE(threads_from_environment().has_value());
  set("OMP_NUM_THREADS", "8");
  EXPECT_EQ(threads_from_environment(), 8);
  set("OMP_NUM_THREADS", " 12 ");
  EXPECT_EQ(threads_from_environment(), 12);
  set("OMP_NUM_THREADS", "zero");
  EXPECT_FALSE(threads_from_environment().has_value());
  set("OMP_NUM_THREADS", "0");
  EXPECT_FALSE(threads_from_environment().has_value());
}

}  // namespace
}  // namespace rooftune::util
