#include "util/profiler.hpp"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

namespace rooftune::util {
namespace {

// The profiler is a process-wide singleton; every test disables it on the
// way out so the rest of the suite sees the default (off) state.
struct ProfilerTest : ::testing::Test {
  void TearDown() override { Profiler::instance().disable(); }
};

TEST_F(ProfilerTest, DisabledByDefaultAndRecordsNothing) {
  Profiler& profiler = Profiler::instance();
  ASSERT_FALSE(profiler.enabled());
  profiler.record(ProfileCategory::Kernel, 0, 10);
  profiler.instant(ProfileCategory::Steal);
  profiler.set_thread_name("ignored");
  { ProfileSpan span(ProfileCategory::Setup); }
  const ProfileSnapshot snapshot = profiler.snapshot();
  EXPECT_EQ(snapshot.total_records(), 0u);
  EXPECT_TRUE(snapshot.lanes.empty());
}

TEST_F(ProfilerTest, RecordsSpansWithAllFields) {
  Profiler& profiler = Profiler::instance();
  profiler.enable();
  profiler.set_thread_name("main");
  profiler.record(ProfileCategory::Kernel, 100, 250, 3.5, 42);
  profiler.instant(ProfileCategory::Incumbent, 7);

  const ProfileSnapshot snapshot = profiler.snapshot();
  ASSERT_EQ(snapshot.lanes.size(), 1u);
  const ProfileLane& lane = snapshot.lanes[0];
  EXPECT_EQ(lane.thread_name, "main");
  ASSERT_EQ(lane.records.size(), 2u);
  EXPECT_EQ(lane.records[0].category, ProfileCategory::Kernel);
  EXPECT_EQ(lane.records[0].start_ns, 100u);
  EXPECT_EQ(lane.records[0].end_ns, 250u);
  EXPECT_EQ(lane.records[0].arg, 42u);
  EXPECT_DOUBLE_EQ(lane.records[0].weight, 3.5);
  EXPECT_EQ(lane.records[1].category, ProfileCategory::Incumbent);
  EXPECT_EQ(lane.records[1].start_ns, lane.records[1].end_ns);
  EXPECT_EQ(lane.records[1].arg, 7u);
  EXPECT_GT(snapshot.overhead_ns_per_record, 0.0);
}

TEST_F(ProfilerTest, SpanIsRaiiAndFinishIsIdempotent) {
  Profiler& profiler = Profiler::instance();
  profiler.enable();
  {
    ProfileSpan span(ProfileCategory::Setup, 9);
    EXPECT_TRUE(span.active());
    span.finish(1.25);
    EXPECT_FALSE(span.active());
    span.finish(99.0);  // second finish (and the destructor) must not record
  }
  { ProfileSpan inactive; EXPECT_FALSE(inactive.active()); }
  const ProfileSnapshot snapshot = profiler.snapshot();
  ASSERT_EQ(snapshot.total_records(), 1u);
  const ProfileRecord& record = snapshot.lanes[0].records[0];
  EXPECT_EQ(record.category, ProfileCategory::Setup);
  EXPECT_EQ(record.arg, 9u);
  EXPECT_DOUBLE_EQ(record.weight, 1.25);
  EXPECT_GE(record.end_ns, record.start_ns);
}

TEST_F(ProfilerTest, FullLaneCountsDropsInsteadOfGrowing) {
  Profiler& profiler = Profiler::instance();
  profiler.enable(/*lane_capacity=*/4);
  for (int i = 0; i < 10; ++i) {
    profiler.record(ProfileCategory::TaskExec, 0, 1);
  }
  const ProfileSnapshot snapshot = profiler.snapshot();
  EXPECT_EQ(snapshot.total_records(), 4u);
  EXPECT_EQ(snapshot.total_dropped(), 6u);
}

TEST_F(ProfilerTest, ReEnableDropsPreviousLanes) {
  Profiler& profiler = Profiler::instance();
  profiler.enable();
  profiler.record(ProfileCategory::TaskExec, 0, 1);
  EXPECT_EQ(profiler.snapshot().total_records(), 1u);

  profiler.enable();  // new generation: the stale thread-local cache must
                      // not write into a freed lane
  profiler.record(ProfileCategory::Kernel, 0, 1);
  const ProfileSnapshot snapshot = profiler.snapshot();
  EXPECT_EQ(snapshot.total_records(), 1u);
  EXPECT_EQ(snapshot.lanes[0].records[0].category, ProfileCategory::Kernel);
}

TEST_F(ProfilerTest, EachThreadGetsItsOwnLane) {
  Profiler& profiler = Profiler::instance();
  profiler.enable();
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      profiler.set_thread_name("thread-" + std::to_string(t));
      for (int i = 0; i <= t; ++i) {
        profiler.record(ProfileCategory::TaskExec, 0, 1, 0.0,
                        static_cast<std::uint64_t>(t));
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  const ProfileSnapshot snapshot = profiler.snapshot();
  ASSERT_EQ(snapshot.lanes.size(), static_cast<std::size_t>(kThreads));
  EXPECT_EQ(snapshot.total_records(), 1u + 2u + 3u + 4u);
  for (const ProfileLane& lane : snapshot.lanes) {
    ASSERT_FALSE(lane.records.empty());
    const std::uint64_t owner = lane.records[0].arg;
    EXPECT_EQ(lane.thread_name, "thread-" + std::to_string(owner));
    EXPECT_EQ(lane.records.size(), owner + 1);
    for (const ProfileRecord& record : lane.records) {
      EXPECT_EQ(record.arg, owner);
    }
  }
}

TEST_F(ProfilerTest, ClockConversionMatchesNow) {
  Profiler& profiler = Profiler::instance();
  profiler.enable();
  const auto raw = std::chrono::steady_clock::now();
  const std::uint64_t converted = profiler.to_ticks(raw);
  const std::uint64_t now = profiler.now_ns();
  EXPECT_LE(converted, now + 1);  // raw was read before now_ns()
  EXPECT_LT(now, 1'000'000'000u) << "tick epoch should restart at enable()";
}

TEST(ProfileCategoryTest, NamesRoundTripForEveryCategory) {
  for (std::size_t i = 0; i < kProfileCategoryCount; ++i) {
    const auto category = static_cast<ProfileCategory>(i);
    const std::string name = to_string(category);
    EXPECT_FALSE(name.empty());
    ProfileCategory parsed = ProfileCategory::TaskExec;
    ASSERT_TRUE(profile_category_from_string(name, parsed)) << name;
    EXPECT_EQ(parsed, category) << name;
  }
  ProfileCategory parsed = ProfileCategory::TaskExec;
  EXPECT_FALSE(profile_category_from_string("no-such-category", parsed));
}

TEST(ProfileCategoryTest, InstantClassification) {
  EXPECT_FALSE(profile_category_is_instant(ProfileCategory::TaskExec));
  EXPECT_FALSE(profile_category_is_instant(ProfileCategory::Kernel));
  EXPECT_FALSE(profile_category_is_instant(ProfileCategory::Checkpoint));
  EXPECT_TRUE(profile_category_is_instant(ProfileCategory::Steal));
  EXPECT_TRUE(profile_category_is_instant(ProfileCategory::Park));
  EXPECT_TRUE(profile_category_is_instant(ProfileCategory::Epoch));
}

}  // namespace
}  // namespace rooftune::util
