#include "stats/descriptive.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace rooftune::stats {
namespace {

TEST(Percentile, SingleElement) {
  EXPECT_DOUBLE_EQ(percentile({7.0}, 0.0), 7.0);
  EXPECT_DOUBLE_EQ(percentile({7.0}, 50.0), 7.0);
  EXPECT_DOUBLE_EQ(percentile({7.0}, 100.0), 7.0);
}

TEST(Percentile, EndpointsAreMinMax) {
  const std::vector<double> xs{5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100.0), 5.0);
}

TEST(Percentile, LinearInterpolation) {
  // numpy.percentile([1,2,3,4], 25) == 1.75 (type-7).
  EXPECT_DOUBLE_EQ(percentile({1.0, 2.0, 3.0, 4.0}, 25.0), 1.75);
  EXPECT_DOUBLE_EQ(percentile({1.0, 2.0, 3.0, 4.0}, 50.0), 2.5);
  EXPECT_DOUBLE_EQ(percentile({1.0, 2.0, 3.0, 4.0}, 75.0), 3.25);
}

TEST(Percentile, UnsortedInputHandled) {
  EXPECT_DOUBLE_EQ(percentile({9.0, 1.0, 5.0}, 50.0), 5.0);
}

TEST(Percentile, Rejections) {
  EXPECT_THROW(percentile({}, 50.0), std::invalid_argument);
  EXPECT_THROW(percentile({1.0}, -1.0), std::invalid_argument);
  EXPECT_THROW(percentile({1.0}, 101.0), std::invalid_argument);
}

TEST(Median, OddAndEven) {
  EXPECT_DOUBLE_EQ(median({3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(median({4.0, 1.0, 3.0, 2.0}), 2.5);
}

TEST(Mad, EstimatesSigmaForSymmetricData) {
  // MAD of {1..7} around median 4 is 2; scaled: 2 * 1.4826.
  EXPECT_NEAR(median_absolute_deviation({1, 2, 3, 4, 5, 6, 7}), 2.0 * 1.4826, 1e-12);
}

TEST(Mad, RobustToOutlier) {
  const double clean = median_absolute_deviation({1, 2, 3, 4, 5, 6, 7});
  const double dirty = median_absolute_deviation({1, 2, 3, 4, 5, 6, 1e9});
  EXPECT_NEAR(clean, dirty, 1.5);  // one outlier barely moves the MAD
}

TEST(Summarize, FullSummary) {
  const auto s = summarize({1.0, 2.0, 3.0, 4.0, 5.0});
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  EXPECT_DOUBLE_EQ(s.p25, 2.0);
  EXPECT_DOUBLE_EQ(s.p75, 4.0);
  EXPECT_NEAR(s.stddev, 1.5811388300841898, 1e-12);
}

TEST(Summarize, EmptyIsAllZero) {
  const auto s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
}

}  // namespace
}  // namespace rooftune::stats
