#include "stats/bootstrap.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

#include "util/rng.hpp"

namespace rooftune::stats {
namespace {

std::vector<double> normal_samples(std::uint64_t seed, std::size_t n, double mean,
                                   double sd) {
  util::Xoshiro256 rng(seed);
  std::vector<double> xs(n);
  for (auto& x : xs) x = rng.normal(mean, sd);
  return xs;
}

TEST(Bootstrap, MeanIntervalContainsSampleMean) {
  const auto xs = normal_samples(1, 200, 50.0, 5.0);
  const auto ci = bootstrap_mean_interval(xs);
  EXPECT_LE(ci.lower, ci.mean);
  EXPECT_GE(ci.upper, ci.mean);
  EXPECT_NEAR(ci.mean, 50.0, 1.5);
}

TEST(Bootstrap, Deterministic) {
  const auto xs = normal_samples(2, 50, 0.0, 1.0);
  BootstrapOptions opts;
  opts.seed = 99;
  const auto a = bootstrap_mean_interval(xs, opts);
  const auto b = bootstrap_mean_interval(xs, opts);
  EXPECT_DOUBLE_EQ(a.lower, b.lower);
  EXPECT_DOUBLE_EQ(a.upper, b.upper);
}

TEST(Bootstrap, WidthShrinksWithSampleSize) {
  const auto small = bootstrap_mean_interval(normal_samples(3, 20, 0.0, 1.0));
  const auto large = bootstrap_mean_interval(normal_samples(3, 2000, 0.0, 1.0));
  EXPECT_GT(small.upper - small.lower, large.upper - large.lower);
}

TEST(Bootstrap, HigherConfidenceIsWider) {
  const auto xs = normal_samples(4, 100, 0.0, 1.0);
  BootstrapOptions narrow, wide;
  narrow.confidence = 0.80;
  wide.confidence = 0.99;
  const auto a = bootstrap_mean_interval(xs, narrow);
  const auto b = bootstrap_mean_interval(xs, wide);
  EXPECT_LT(a.upper - a.lower, b.upper - b.lower);
}

TEST(Bootstrap, MedianIntervalOnSkewedData) {
  util::Xoshiro256 rng(5);
  std::vector<double> xs(500);
  for (auto& x : xs) x = rng.lognormal(0.0, 1.0);
  const auto ci = bootstrap_median_interval(xs);
  // Median of lognormal(0,1) is exp(0) = 1.
  EXPECT_GT(ci.upper, 0.8);
  EXPECT_LT(ci.lower, 1.2);
  EXPECT_LE(ci.lower, ci.upper);
}

TEST(Bootstrap, CustomStatistic) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0, 5.0};
  const auto ci = bootstrap_interval(
      xs, [](const std::vector<double>& v) { return *std::max_element(v.begin(), v.end()); });
  EXPECT_DOUBLE_EQ(ci.mean, 5.0);
  EXPECT_LE(ci.upper, 5.0);  // resample max cannot exceed sample max
}

TEST(Bootstrap, AgreesWithNormalTheoryOnNormalData) {
  const auto xs = normal_samples(6, 500, 10.0, 2.0);
  OnlineMoments m;
  for (double x : xs) m.add(x);
  const auto z_ci = mean_confidence_interval(m, 0.95);
  BootstrapOptions opts;
  opts.confidence = 0.95;
  opts.resamples = 4000;
  const auto b_ci = bootstrap_mean_interval(xs, opts);
  EXPECT_NEAR(b_ci.lower, z_ci.lower, 0.05);
  EXPECT_NEAR(b_ci.upper, z_ci.upper, 0.05);
}

TEST(Bootstrap, Rejections) {
  EXPECT_THROW(bootstrap_mean_interval({}), std::invalid_argument);
  BootstrapOptions opts;
  opts.resamples = 0;
  EXPECT_THROW(bootstrap_mean_interval({1.0}, opts), std::invalid_argument);
}

}  // namespace
}  // namespace rooftune::stats
