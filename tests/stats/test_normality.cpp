#include "stats/normality.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace rooftune::stats {
namespace {

OnlineMoments sample_moments(std::uint64_t seed, int n, bool lognormal) {
  util::Xoshiro256 rng(seed);
  OnlineMoments m;
  for (int i = 0; i < n; ++i) {
    m.add(lognormal ? rng.lognormal(0.0, 1.0) : rng.normal(0.0, 1.0));
  }
  return m;
}

TEST(JarqueBera, AcceptsNormalDataMostOfTheTime) {
  // A 5 % test rejects ~5 % of truly normal samples; check the aggregate
  // rejection rate over many independent draws instead of one lucky seed.
  int rejections = 0;
  constexpr int trials = 40;
  for (std::uint64_t seed = 100; seed < 100 + trials; ++seed) {
    if (jarque_bera(sample_moments(seed, 2000, /*lognormal=*/false)).reject_at_5pct) {
      ++rejections;
    }
  }
  EXPECT_LE(rejections, trials / 5);  // well under 20 %
}

TEST(JarqueBera, RejectsLognormalData) {
  // The paper observes benchmark runtimes are usually non-normal; JB must
  // flag a clearly skewed distribution.
  const auto result = jarque_bera(sample_moments(2, 5000, /*lognormal=*/true));
  EXPECT_TRUE(result.reject_at_5pct);
  EXPECT_LT(result.p_value, 1e-6);
  EXPECT_GT(result.jarque_bera, 100.0);
}

TEST(JarqueBera, TinySamplesNeverReject) {
  const auto result = jarque_bera(sample_moments(3, 5, /*lognormal=*/true));
  EXPECT_FALSE(result.reject_at_5pct);
  EXPECT_DOUBLE_EQ(result.p_value, 1.0);
}

TEST(JarqueBera, StatisticGrowsWithSampleSize) {
  const auto small = jarque_bera(sample_moments(4, 200, true));
  const auto large = jarque_bera(sample_moments(4, 20000, true));
  EXPECT_GT(large.jarque_bera, small.jarque_bera);
}

TEST(JarqueBera, PValueInUnitInterval) {
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    const auto r = jarque_bera(sample_moments(seed, 100, seed % 2 == 0));
    EXPECT_GE(r.p_value, 0.0);
    EXPECT_LE(r.p_value, 1.0);
    EXPECT_GE(r.jarque_bera, 0.0);
  }
}

}  // namespace
}  // namespace rooftune::stats
