#include "stats/trend.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "util/rng.hpp"

namespace rooftune::stats {
namespace {

TEST(TrendDetector, EmptyHasNoTrend) {
  TrendDetector t(8);
  EXPECT_DOUBLE_EQ(t.slope(), 0.0);
  EXPECT_FALSE(t.rising());
}

TEST(TrendDetector, ExactLinearSlope) {
  TrendDetector t(16);
  for (int i = 0; i < 16; ++i) t.add(3.0 + 2.0 * i);
  EXPECT_NEAR(t.slope(), 2.0, 1e-12);
}

TEST(TrendDetector, FlatDataHasZeroSlope) {
  TrendDetector t(8);
  for (int i = 0; i < 8; ++i) t.add(100.0);
  EXPECT_NEAR(t.slope(), 0.0, 1e-12);
  EXPECT_FALSE(t.rising());
}

TEST(TrendDetector, DetectsWarmupRamp) {
  // The §VII future-work scenario: performance rising during evaluation.
  TrendDetector t(16);
  for (int i = 0; i < 16; ++i) t.add(400.0 * (1.0 - 0.2 * std::exp(-i / 8.0)));
  EXPECT_TRUE(t.rising());
  EXPECT_GT(t.relative_slope(), 1e-3);
}

TEST(TrendDetector, SteadyNoisyDataNotRising) {
  TrendDetector t(16);
  util::Xoshiro256 rng(9);
  // Alternating noise around a constant: slope fitted over the window is
  // far below the 0.1 %/iteration threshold.
  for (int i = 0; i < 64; ++i) t.add(100.0 + rng.normal(0.0, 0.1));
  EXPECT_FALSE(t.rising());
}

TEST(TrendDetector, FallingTrendIsNotRising) {
  TrendDetector t(8);
  for (int i = 0; i < 8; ++i) t.add(100.0 - 5.0 * i);
  EXPECT_LT(t.slope(), 0.0);
  EXPECT_FALSE(t.rising());
}

TEST(TrendDetector, WindowSlides) {
  TrendDetector t(4);
  // Rising prefix followed by a flat tail longer than the window.
  for (int i = 0; i < 10; ++i) t.add(static_cast<double>(i));
  for (int i = 0; i < 8; ++i) t.add(10.0);
  EXPECT_NEAR(t.slope(), 0.0, 1e-12);
  EXPECT_EQ(t.size(), 4u);
}

TEST(TrendDetector, NeedsHalfFullWindow) {
  TrendDetector t(16);
  for (int i = 0; i < 5; ++i) t.add(static_cast<double>(i * 100));
  EXPECT_FALSE(t.rising());  // only 5 of 16 samples seen
}

TEST(TrendDetector, ResetClears) {
  TrendDetector t(8);
  for (int i = 0; i < 8; ++i) t.add(static_cast<double>(i));
  t.reset();
  EXPECT_EQ(t.size(), 0u);
  EXPECT_DOUBLE_EQ(t.slope(), 0.0);
}

TEST(TrendDetector, RejectsTinyWindow) {
  EXPECT_THROW(TrendDetector(3), std::invalid_argument);
}

}  // namespace
}  // namespace rooftune::stats
