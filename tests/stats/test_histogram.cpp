#include "stats/histogram.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <stdexcept>

#include "util/rng.hpp"

namespace rooftune::stats {
namespace {

std::uint64_t total_binned(const Histogram& h) {
  return std::accumulate(h.bins().begin(), h.bins().end(), std::uint64_t{0});
}

TEST(Histogram, CountsEverySample) {
  Histogram h(16);
  util::Xoshiro256 rng(1);
  for (int i = 0; i < 5000; ++i) h.add(rng.normal(10.0, 2.0));
  EXPECT_EQ(h.count(), 5000u);
  EXPECT_EQ(total_binned(h), 5000u);
}

TEST(Histogram, RangeCoversData) {
  Histogram h(8);
  for (double x : {-5.0, 0.0, 17.0, 3.0}) h.add(x);
  EXPECT_LE(h.range_min(), -5.0);
  EXPECT_GT(h.range_max(), 17.0);
}

TEST(Histogram, AdaptsToOutliers) {
  Histogram h(8);
  for (int i = 0; i < 100; ++i) h.add(1.0 + i * 0.001);
  h.add(1000.0);  // forces a rebin
  EXPECT_EQ(h.count(), 101u);
  EXPECT_EQ(total_binned(h), 101u);
  EXPECT_GT(h.range_max(), 1000.0);
}

TEST(Histogram, BinEdgesAreMonotone) {
  Histogram h(10);
  for (int i = 0; i < 50; ++i) h.add(static_cast<double>(i));
  for (std::size_t b = 1; b < h.bin_count(); ++b) {
    EXPECT_GT(h.bin_edge(b), h.bin_edge(b - 1));
  }
}

TEST(Histogram, FractionsSumToOne) {
  Histogram h(12);
  util::Xoshiro256 rng(3);
  for (int i = 0; i < 1000; ++i) h.add(rng.uniform());
  double sum = 0.0;
  for (std::size_t b = 0; b < h.bin_count(); ++b) sum += h.bin_fraction(b);
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(Histogram, LognormalMassIsLeftHeavy) {
  // The paper's observation: runtime distributions are usually non-normal;
  // the histogram is how the tool shows it.
  Histogram h(32);
  util::Xoshiro256 rng(4);
  for (int i = 0; i < 20000; ++i) h.add(rng.lognormal(0.0, 0.8));
  // More than half the mass in the lower third of the range.
  double low_mass = 0.0;
  for (std::size_t b = 0; b < h.bin_count() / 3; ++b) low_mass += h.bin_fraction(b);
  EXPECT_GT(low_mass, 0.5);
}

TEST(Histogram, RenderProducesOneLinePerBin) {
  Histogram h(6);
  for (int i = 0; i < 30; ++i) h.add(static_cast<double>(i % 7));
  const std::string out = h.render(20);
  std::size_t lines = 0;
  for (char c : out) {
    if (c == '\n') ++lines;
  }
  EXPECT_EQ(lines, 6u);
}

TEST(Histogram, RejectsTooFewBins) {
  EXPECT_THROW(Histogram(1), std::invalid_argument);
}

TEST(Histogram, ConstantDataAllInOneRegion) {
  Histogram h(4);
  for (int i = 0; i < 10; ++i) h.add(5.0);
  EXPECT_EQ(h.count(), 10u);
  EXPECT_EQ(total_binned(h), 10u);
}

}  // namespace
}  // namespace rooftune::stats
