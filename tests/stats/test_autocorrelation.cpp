#include "stats/autocorrelation.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "util/rng.hpp"

namespace rooftune::stats {
namespace {

TEST(Autocorrelation, WhiteNoiseLooksIndependent) {
  Autocorrelation ac(64);
  util::Xoshiro256 rng(1);
  for (int i = 0; i < 64; ++i) ac.add(rng.normal());
  EXPECT_LT(std::fabs(ac.lag1()), 0.3);
  EXPECT_TRUE(ac.independent(0.35));
}

TEST(Autocorrelation, WarmupRampIsStronglyCorrelated) {
  // The 2695 v4 scenario: monotone drift produces lag-1 correlation near 1.
  Autocorrelation ac(64);
  for (int i = 0; i < 64; ++i) {
    ac.add(100.0 * (1.0 - 0.3 * std::exp(-i / 20.0)));
  }
  EXPECT_GT(ac.lag1(), 0.8);
  EXPECT_FALSE(ac.independent());
}

TEST(Autocorrelation, AlternatingSeriesIsNegativelyCorrelated) {
  Autocorrelation ac(32);
  for (int i = 0; i < 32; ++i) ac.add(i % 2 == 0 ? 1.0 : -1.0);
  EXPECT_LT(ac.lag1(), -0.8);
}

TEST(Autocorrelation, Lag0IsOne) {
  Autocorrelation ac(16);
  for (int i = 0; i < 16; ++i) ac.add(static_cast<double>(i * i % 7));
  EXPECT_DOUBLE_EQ(ac.at_lag(0), 1.0);
}

TEST(Autocorrelation, PeriodTwoSignalHasPositiveLag2) {
  Autocorrelation ac(64);
  for (int i = 0; i < 64; ++i) ac.add(i % 2 == 0 ? 1.0 : -1.0);
  EXPECT_GT(ac.at_lag(2), 0.8);
}

TEST(Autocorrelation, InsufficientDataSafe) {
  Autocorrelation ac(16);
  EXPECT_DOUBLE_EQ(ac.lag1(), 0.0);
  ac.add(1.0);
  ac.add(2.0);
  EXPECT_DOUBLE_EQ(ac.at_lag(5), 0.0);
  EXPECT_FALSE(ac.independent());  // window not full yet
}

TEST(Autocorrelation, ConstantSeriesIsZero) {
  Autocorrelation ac(16);
  for (int i = 0; i < 16; ++i) ac.add(5.0);
  EXPECT_DOUBLE_EQ(ac.lag1(), 0.0);
}

TEST(Autocorrelation, WindowSlidesPastWarmup) {
  Autocorrelation ac(16);
  // Ramp followed by a long white-noise tail: the window forgets the ramp.
  for (int i = 0; i < 10; ++i) ac.add(static_cast<double>(i) * 10.0);
  util::Xoshiro256 rng(3);
  for (int i = 0; i < 48; ++i) ac.add(100.0 + rng.normal());
  EXPECT_LT(std::fabs(ac.lag1()), 0.5);
}

TEST(Autocorrelation, ResetClears) {
  Autocorrelation ac(16);
  for (int i = 0; i < 16; ++i) ac.add(static_cast<double>(i));
  ac.reset();
  EXPECT_EQ(ac.size(), 0u);
  EXPECT_DOUBLE_EQ(ac.lag1(), 0.0);
}

TEST(Autocorrelation, RejectsTinyWindow) {
  EXPECT_THROW(Autocorrelation(4), std::invalid_argument);
}

}  // namespace
}  // namespace rooftune::stats
