#include "stats/normal.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace rooftune::stats {
namespace {

TEST(NormalCdf, KnownValues) {
  EXPECT_NEAR(normal_cdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(normal_cdf(1.0), 0.8413447460685429, 1e-10);
  EXPECT_NEAR(normal_cdf(-1.0), 1.0 - 0.8413447460685429, 1e-10);
  EXPECT_NEAR(normal_cdf(1.959963984540054), 0.975, 1e-9);
  EXPECT_NEAR(normal_cdf(-6.0), 9.865876e-10, 1e-12);
}

TEST(NormalPdf, KnownValues) {
  EXPECT_NEAR(normal_pdf(0.0), 0.3989422804014327, 1e-14);
  EXPECT_NEAR(normal_pdf(1.0), 0.24197072451914337, 1e-14);
  EXPECT_DOUBLE_EQ(normal_pdf(2.0), normal_pdf(-2.0));
}

TEST(NormalQuantile, KnownCriticalValues) {
  EXPECT_NEAR(normal_quantile(0.5), 0.0, 1e-12);
  EXPECT_NEAR(normal_quantile(0.975), 1.959963984540054, 1e-8);
  EXPECT_NEAR(normal_quantile(0.995), 2.5758293035489004, 1e-8);  // the paper's 99 %
  EXPECT_NEAR(normal_quantile(0.841344746068543), 1.0, 1e-8);
  EXPECT_NEAR(normal_quantile(0.05), -1.6448536269514722, 1e-8);
}

TEST(NormalQuantile, InverseOfCdfAcrossRange) {
  for (double p = 0.0005; p < 1.0; p += 0.0117) {
    const double z = normal_quantile(p);
    EXPECT_NEAR(normal_cdf(z), p, 1e-10) << "p=" << p;
  }
}

TEST(NormalQuantile, ExtremeTailsFinite) {
  EXPECT_LT(normal_quantile(1e-12), -6.0);
  EXPECT_GT(normal_quantile(1.0 - 1e-12), 6.0);
  EXPECT_TRUE(std::isfinite(normal_quantile(1e-15)));
}

TEST(NormalQuantile, RejectsOutOfDomain) {
  EXPECT_THROW(normal_quantile(0.0), std::domain_error);
  EXPECT_THROW(normal_quantile(1.0), std::domain_error);
  EXPECT_THROW(normal_quantile(-0.1), std::domain_error);
  EXPECT_THROW(normal_quantile(1.1), std::domain_error);
}

TEST(NormalQuantile, Symmetry) {
  for (double p : {0.01, 0.1, 0.25, 0.4}) {
    EXPECT_NEAR(normal_quantile(p), -normal_quantile(1.0 - p), 1e-9);
  }
}

TEST(TwoSidedCritical, PaperValue) {
  // 99 % two-sided critical value used by stop conditions 3 and 4.
  EXPECT_NEAR(normal_two_sided_critical(0.99), 2.5758293035489004, 1e-8);
  EXPECT_NEAR(normal_two_sided_critical(0.95), 1.959963984540054, 1e-8);
}

TEST(TwoSidedCritical, RejectsBadConfidence) {
  EXPECT_THROW(normal_two_sided_critical(0.0), std::domain_error);
  EXPECT_THROW(normal_two_sided_critical(1.0), std::domain_error);
}

}  // namespace
}  // namespace rooftune::stats
