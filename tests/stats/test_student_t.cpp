#include "stats/student_t.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "stats/normal.hpp"

namespace rooftune::stats {
namespace {

TEST(IncompleteBeta, BoundaryValues) {
  EXPECT_DOUBLE_EQ(regularized_incomplete_beta(2.0, 3.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(regularized_incomplete_beta(2.0, 3.0, 1.0), 1.0);
}

TEST(IncompleteBeta, UniformSpecialCase) {
  // I_x(1,1) = x.
  for (double x : {0.1, 0.25, 0.5, 0.9}) {
    EXPECT_NEAR(regularized_incomplete_beta(1.0, 1.0, x), x, 1e-12);
  }
}

TEST(IncompleteBeta, SymmetryRelation) {
  // I_x(a,b) = 1 - I_{1-x}(b,a).
  EXPECT_NEAR(regularized_incomplete_beta(2.5, 1.5, 0.3),
              1.0 - regularized_incomplete_beta(1.5, 2.5, 0.7), 1e-12);
}

TEST(StudentTCdf, SymmetricAroundZero) {
  for (double dof : {1.0, 3.0, 10.0, 30.0}) {
    EXPECT_NEAR(student_t_cdf(0.0, dof), 0.5, 1e-12);
    EXPECT_NEAR(student_t_cdf(1.5, dof) + student_t_cdf(-1.5, dof), 1.0, 1e-12);
  }
}

TEST(StudentTCdf, Dof1IsCauchy) {
  // t with 1 dof is the Cauchy distribution: F(1) = 3/4.
  EXPECT_NEAR(student_t_cdf(1.0, 1.0), 0.75, 1e-9);
}

// Table check: classic two-sided 95 % and 99 % critical values.
struct TCase {
  double dof;
  double confidence;
  double expected;
};

class StudentTTableTest : public ::testing::TestWithParam<TCase> {};

TEST_P(StudentTTableTest, MatchesPublishedTables) {
  const auto& c = GetParam();
  EXPECT_NEAR(student_t_two_sided_critical(c.confidence, c.dof), c.expected, 2e-3);
}

INSTANTIATE_TEST_SUITE_P(
    ClassicTables, StudentTTableTest,
    ::testing::Values(TCase{1, 0.95, 12.706}, TCase{2, 0.95, 4.303},
                      TCase{5, 0.95, 2.571}, TCase{9, 0.95, 2.262},
                      TCase{9, 0.99, 3.250},  // 10 invocations => 9 dof
                      TCase{29, 0.95, 2.045}, TCase{29, 0.99, 2.756},
                      TCase{100, 0.95, 1.984}, TCase{1000, 0.99, 2.581}));

TEST(StudentTQuantile, ConvergesToNormalForLargeDof) {
  EXPECT_NEAR(student_t_quantile(0.975, 1e6), normal_quantile(0.975), 1e-4);
}

TEST(StudentTQuantile, InverseOfCdf) {
  for (double dof : {2.0, 7.0, 25.0}) {
    for (double p : {0.01, 0.2, 0.5, 0.8, 0.99}) {
      const double t = student_t_quantile(p, dof);
      EXPECT_NEAR(student_t_cdf(t, dof), p, 1e-9) << "dof=" << dof << " p=" << p;
    }
  }
}

TEST(StudentTQuantile, WiderThanNormalForSmallDof) {
  // Small-sample intervals must be wider — the reason the t option exists.
  EXPECT_GT(student_t_two_sided_critical(0.99, 9.0),
            normal_two_sided_critical(0.99));
}

TEST(StudentT, RejectsBadArguments) {
  EXPECT_THROW(student_t_cdf(0.0, 0.0), std::domain_error);
  EXPECT_THROW(student_t_quantile(0.0, 5.0), std::domain_error);
  EXPECT_THROW(student_t_quantile(0.5, -1.0), std::domain_error);
  EXPECT_THROW(student_t_two_sided_critical(1.5, 5.0), std::domain_error);
}

}  // namespace
}  // namespace rooftune::stats
