#include "stats/ks_test.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "util/rng.hpp"

namespace rooftune::stats {
namespace {

std::vector<double> normals(std::uint64_t seed, int n, double mean, double sd) {
  util::Xoshiro256 rng(seed);
  std::vector<double> xs(static_cast<std::size_t>(n));
  for (auto& x : xs) x = rng.normal(mean, sd);
  return xs;
}

TEST(KolmogorovSurvival, KnownValues) {
  // Q(1.36) ~ 0.049 (the classic 5 % critical value).
  EXPECT_NEAR(kolmogorov_survival(1.36), 0.049, 0.002);
  EXPECT_NEAR(kolmogorov_survival(1.63), 0.010, 0.002);
  EXPECT_DOUBLE_EQ(kolmogorov_survival(0.0), 1.0);
  EXPECT_LT(kolmogorov_survival(3.0), 1e-6);
}

TEST(KolmogorovSurvival, MonotoneDecreasing) {
  double prev = 1.0;
  for (double l = 0.1; l < 3.0; l += 0.1) {
    const double q = kolmogorov_survival(l);
    EXPECT_LE(q, prev);
    prev = q;
  }
}

TEST(KsTwoSample, SameDistributionAccepted) {
  const auto a = normals(1, 500, 100.0, 10.0);
  const auto b = normals(2, 500, 100.0, 10.0);
  const auto r = ks_two_sample(a, b);
  EXPECT_FALSE(r.reject_at_5pct);
  EXPECT_LT(r.statistic, 0.1);
}

TEST(KsTwoSample, ShiftedDistributionRejected) {
  const auto a = normals(3, 500, 100.0, 10.0);
  const auto b = normals(4, 500, 110.0, 10.0);
  const auto r = ks_two_sample(a, b);
  EXPECT_TRUE(r.reject_at_5pct);
  EXPECT_LT(r.p_value, 1e-6);
  EXPECT_GT(r.statistic, 0.3);
}

TEST(KsTwoSample, DifferentShapeSameMeanRejected) {
  // Same mean, very different spread — a mean-based test cannot see this;
  // KS can (the paper's non-parametric motivation).
  const auto a = normals(5, 800, 100.0, 1.0);
  const auto b = normals(6, 800, 100.0, 20.0);
  const auto r = ks_two_sample(a, b);
  EXPECT_TRUE(r.reject_at_5pct);
}

TEST(KsTwoSample, IdenticalSamplesStatisticZero) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  const auto r = ks_two_sample(xs, xs);
  EXPECT_DOUBLE_EQ(r.statistic, 0.0);
  EXPECT_FALSE(r.reject_at_5pct);
}

TEST(KsTwoSample, DisjointSupportsStatisticOne) {
  const auto r = ks_two_sample({1.0, 2.0, 3.0}, {10.0, 11.0, 12.0});
  EXPECT_DOUBLE_EQ(r.statistic, 1.0);
}

TEST(KsTwoSample, FalsePositiveRateNearNominal) {
  int rejections = 0;
  constexpr int trials = 300;
  for (int t = 0; t < trials; ++t) {
    const auto a = normals(1000 + 2 * static_cast<std::uint64_t>(t), 80, 0.0, 1.0);
    const auto b = normals(1001 + 2 * static_cast<std::uint64_t>(t), 80, 0.0, 1.0);
    if (ks_two_sample(a, b).reject_at_5pct) ++rejections;
  }
  // KS is conservative with discrete ECDF steps; allow 0-10 %.
  EXPECT_LE(rejections, trials / 10);
}

TEST(KsTwoSample, UnequalSampleSizes) {
  const auto a = normals(7, 50, 0.0, 1.0);
  const auto b = normals(8, 2000, 0.0, 1.0);
  EXPECT_NO_THROW(ks_two_sample(a, b));
}

TEST(KsTwoSample, RejectsEmpty) {
  EXPECT_THROW(ks_two_sample({}, {1.0}), std::invalid_argument);
  EXPECT_THROW(ks_two_sample({1.0}, {}), std::invalid_argument);
}

}  // namespace
}  // namespace rooftune::stats
