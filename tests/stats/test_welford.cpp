#include "stats/welford.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/rng.hpp"

namespace rooftune::stats {
namespace {

// Two-pass reference implementations.
double two_pass_mean(const std::vector<double>& xs) {
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double two_pass_variance(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  const double mean = two_pass_mean(xs);
  double c = 0.0;
  for (double x : xs) c += (x - mean) * (x - mean);
  return c / static_cast<double>(xs.size() - 1);
}

std::vector<double> random_samples(std::uint64_t seed, std::size_t n, double scale) {
  util::Xoshiro256 rng(seed);
  std::vector<double> xs(n);
  for (auto& x : xs) x = scale * rng.normal(5.0, 2.0);
  return xs;
}

TEST(OnlineMoments, EmptyIsZero) {
  OnlineMoments m;
  EXPECT_EQ(m.count(), 0u);
  EXPECT_DOUBLE_EQ(m.mean(), 0.0);
  EXPECT_DOUBLE_EQ(m.variance(), 0.0);
  EXPECT_DOUBLE_EQ(m.standard_error(), 0.0);
}

TEST(OnlineMoments, SingleSample) {
  OnlineMoments m;
  m.add(7.5);
  EXPECT_EQ(m.count(), 1u);
  EXPECT_DOUBLE_EQ(m.mean(), 7.5);
  EXPECT_DOUBLE_EQ(m.variance(), 0.0);  // paper Eq. 7 base case: C_1 = 0
  EXPECT_DOUBLE_EQ(m.min(), 7.5);
  EXPECT_DOUBLE_EQ(m.max(), 7.5);
}

TEST(OnlineMoments, TwoSamples) {
  OnlineMoments m;
  m.add(1.0);
  m.add(3.0);
  EXPECT_DOUBLE_EQ(m.mean(), 2.0);
  EXPECT_DOUBLE_EQ(m.variance(), 2.0);  // ((1-2)^2 + (3-2)^2) / 1
  EXPECT_DOUBLE_EQ(m.stddev(), std::sqrt(2.0));
}

TEST(OnlineMoments, MinMaxTracked) {
  OnlineMoments m;
  for (double x : {3.0, -1.0, 4.0, 1.0, 5.0}) m.add(x);
  EXPECT_DOUBLE_EQ(m.min(), -1.0);
  EXPECT_DOUBLE_EQ(m.max(), 5.0);
}

// Property sweep: Welford matches two-pass across sizes and scales.
class WelfordPropertyTest
    : public ::testing::TestWithParam<std::tuple<std::size_t, double>> {};

TEST_P(WelfordPropertyTest, MatchesTwoPass) {
  const auto [n, scale] = GetParam();
  const auto xs = random_samples(n * 31 + 7, n, scale);
  OnlineMoments m;
  for (double x : xs) m.add(x);

  EXPECT_EQ(m.count(), n);
  const double ref_mean = two_pass_mean(xs);
  const double ref_var = two_pass_variance(xs);
  EXPECT_NEAR(m.mean(), ref_mean, 1e-9 * std::max(1.0, std::fabs(ref_mean)));
  EXPECT_NEAR(m.variance(), ref_var, 1e-8 * std::max(1.0, ref_var));
}

INSTANTIATE_TEST_SUITE_P(
    SizesAndScales, WelfordPropertyTest,
    ::testing::Combine(::testing::Values<std::size_t>(2, 3, 10, 100, 1000, 10000),
                       ::testing::Values(1e-6, 1.0, 1e6)));

TEST(OnlineMoments, MergeEqualsSequential) {
  const auto xs = random_samples(99, 500, 1.0);
  OnlineMoments whole, left, right;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    whole.add(xs[i]);
    (i < 200 ? left : right).add(xs[i]);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-10);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-8);
  EXPECT_NEAR(left.skewness(), whole.skewness(), 1e-6);
  EXPECT_NEAR(left.excess_kurtosis(), whole.excess_kurtosis(), 1e-6);
  EXPECT_DOUBLE_EQ(left.min(), whole.min());
  EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(OnlineMoments, MergeWithEmptyIsIdentity) {
  OnlineMoments m, empty;
  m.add(1.0);
  m.add(2.0);
  const double mean = m.mean();
  m.merge(empty);
  EXPECT_DOUBLE_EQ(m.mean(), mean);
  EXPECT_EQ(m.count(), 2u);

  OnlineMoments target;
  target.merge(m);
  EXPECT_DOUBLE_EQ(target.mean(), mean);
  EXPECT_EQ(target.count(), 2u);
}

TEST(OnlineMoments, MergeAssociativity) {
  const auto xs = random_samples(1234, 300, 2.0);
  OnlineMoments a, b, c;
  for (std::size_t i = 0; i < 100; ++i) a.add(xs[i]);
  for (std::size_t i = 100; i < 200; ++i) b.add(xs[i]);
  for (std::size_t i = 200; i < 300; ++i) c.add(xs[i]);

  OnlineMoments ab = a;
  ab.merge(b);
  OnlineMoments ab_c = ab;
  ab_c.merge(c);

  OnlineMoments bc = b;
  bc.merge(c);
  OnlineMoments a_bc = a;
  a_bc.merge(bc);

  EXPECT_NEAR(ab_c.mean(), a_bc.mean(), 1e-10);
  EXPECT_NEAR(ab_c.variance(), a_bc.variance(), 1e-8);
}

TEST(OnlineMoments, CoefficientOfVariation) {
  OnlineMoments m;
  for (double x : {9.0, 10.0, 11.0}) m.add(x);
  EXPECT_NEAR(m.coefficient_of_variation(), 1.0 / 10.0, 1e-12);
}

TEST(OnlineMoments, SkewnessSignOnAsymmetricData) {
  OnlineMoments right_skewed;
  util::Xoshiro256 rng(7);
  for (int i = 0; i < 20000; ++i) right_skewed.add(rng.lognormal(0.0, 1.0));
  EXPECT_GT(right_skewed.skewness(), 1.0);
  EXPECT_GT(right_skewed.excess_kurtosis(), 1.0);
}

TEST(OnlineMoments, NormalDataHasSmallSkewKurtosis) {
  OnlineMoments m;
  util::Xoshiro256 rng(21);
  for (int i = 0; i < 50000; ++i) m.add(rng.normal());
  EXPECT_NEAR(m.skewness(), 0.0, 0.05);
  EXPECT_NEAR(m.excess_kurtosis(), 0.0, 0.1);
}

TEST(OnlineMoments, NumericallyStableWithLargeOffset) {
  // Classic catastrophic-cancellation scenario: large mean, tiny variance.
  OnlineMoments m;
  const double base = 1e9;
  for (double d : {0.1, 0.2, 0.3, 0.4}) m.add(base + d);
  EXPECT_NEAR(m.variance(), two_pass_variance({base + 0.1, base + 0.2, base + 0.3,
                                               base + 0.4}),
              1e-6);
  EXPECT_GT(m.variance(), 0.0);
}

TEST(OnlineMoments, ResetClearsState) {
  OnlineMoments m;
  m.add(5.0);
  m.reset();
  EXPECT_EQ(m.count(), 0u);
  EXPECT_DOUBLE_EQ(m.mean(), 0.0);
}

TEST(OnlineMoments, StandardErrorShrinksWithN) {
  OnlineMoments small, large;
  util::Xoshiro256 rng(3);
  for (int i = 0; i < 10; ++i) small.add(rng.normal(0.0, 1.0));
  for (int i = 0; i < 1000; ++i) large.add(rng.normal(0.0, 1.0));
  EXPECT_GT(small.standard_error(), large.standard_error());
}

}  // namespace
}  // namespace rooftune::stats
