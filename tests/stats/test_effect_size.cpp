#include "stats/effect_size.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "util/rng.hpp"

namespace rooftune::stats {
namespace {

OnlineMoments sample(std::uint64_t seed, int n, double mean, double sd) {
  util::Xoshiro256 rng(seed);
  OnlineMoments m;
  for (int i = 0; i < n; ++i) m.add(rng.normal(mean, sd));
  return m;
}

TEST(RatioOfMeans, EstimateIsRatio) {
  const auto a = sample(1, 200, 120.0, 5.0);
  const auto b = sample(2, 200, 100.0, 5.0);
  const auto ri = ratio_of_means_interval(a, b);
  EXPECT_NEAR(ri.estimate, 1.2, 0.02);
  EXPECT_TRUE(ri.bounded);
  EXPECT_LT(ri.lower, ri.estimate);
  EXPECT_GT(ri.upper, ri.estimate);
}

TEST(RatioOfMeans, ClearDifferenceExcludesOne) {
  const auto a = sample(3, 100, 120.0, 5.0);
  const auto b = sample(4, 100, 100.0, 5.0);
  const auto ri = ratio_of_means_interval(a, b, 0.99);
  EXPECT_GT(ri.lower, 1.0);
}

TEST(RatioOfMeans, SameDistributionContainsOne) {
  const auto a = sample(5, 50, 100.0, 10.0);
  const auto b = sample(6, 50, 100.0, 10.0);
  const auto ri = ratio_of_means_interval(a, b, 0.99);
  EXPECT_LT(ri.lower, 1.0);
  EXPECT_GT(ri.upper, 1.0);
}

TEST(RatioOfMeans, WiderConfidenceWiderInterval) {
  const auto a = sample(7, 60, 110.0, 8.0);
  const auto b = sample(8, 60, 100.0, 8.0);
  const auto narrow = ratio_of_means_interval(a, b, 0.90);
  const auto wide = ratio_of_means_interval(a, b, 0.99);
  EXPECT_GT(wide.upper - wide.lower, narrow.upper - narrow.lower);
}

TEST(RatioOfMeans, NoisyDenominatorNearZeroIsUnbounded) {
  // Denominator mean indistinguishable from 0: Fieller's degenerate case.
  const auto a = sample(9, 10, 100.0, 5.0);
  const auto b = sample(10, 10, 0.1, 5.0);
  const auto ri = ratio_of_means_interval(a, b, 0.99);
  EXPECT_FALSE(ri.bounded);
}

TEST(RatioOfMeans, CoverageNearNominal) {
  // Monte Carlo: the 95 % ratio CI contains the true ratio ~95 % of the time.
  util::Xoshiro256 rng(42);
  int covered = 0;
  constexpr int trials = 1500;
  const double truth = 1.1;
  for (int t = 0; t < trials; ++t) {
    OnlineMoments a, b;
    for (int i = 0; i < 30; ++i) {
      a.add(rng.normal(110.0, 8.0));
      b.add(rng.normal(100.0, 8.0));
    }
    const auto ri = ratio_of_means_interval(a, b, 0.95);
    if (ri.bounded && ri.lower <= truth && truth <= ri.upper) ++covered;
  }
  EXPECT_NEAR(static_cast<double>(covered) / trials, 0.95, 0.025);
}

TEST(RatioOfMeans, RejectsTooFewSamples) {
  OnlineMoments a, b;
  a.add(1.0);
  b.add(1.0);
  b.add(2.0);
  EXPECT_THROW(ratio_of_means_interval(a, b), std::invalid_argument);
}

TEST(CompareMeans, Verdicts) {
  const auto big = sample(11, 100, 200.0, 5.0);
  const auto small = sample(12, 100, 100.0, 5.0);
  const auto similar = sample(13, 100, 100.5, 5.0);
  EXPECT_EQ(compare_means(big, small), Comparison::AGreater);
  EXPECT_EQ(compare_means(small, big), Comparison::BGreater);
  EXPECT_EQ(compare_means(small, similar), Comparison::Indistinguishable);
}

TEST(CompareMeans, Names) {
  EXPECT_STREQ(to_string(Comparison::AGreater), "A>B");
  EXPECT_STREQ(to_string(Comparison::BGreater), "B>A");
  EXPECT_STREQ(to_string(Comparison::Indistinguishable), "A~B");
}

}  // namespace
}  // namespace rooftune::stats
