#include "stats/p2_quantile.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "stats/descriptive.hpp"
#include "util/rng.hpp"

namespace rooftune::stats {
namespace {

std::vector<double> normal_samples(std::uint64_t seed, std::size_t n) {
  util::Xoshiro256 rng(seed);
  std::vector<double> xs(n);
  for (auto& x : xs) x = rng.normal(100.0, 15.0);
  return xs;
}

TEST(P2Quantile, ExactForSmallSamples) {
  P2Quantile median(0.5);
  median.add(3.0);
  EXPECT_DOUBLE_EQ(median.value(), 3.0);
  median.add(1.0);
  EXPECT_DOUBLE_EQ(median.value(), 2.0);
  median.add(5.0);
  EXPECT_DOUBLE_EQ(median.value(), 3.0);
  EXPECT_EQ(median.count(), 3u);
}

TEST(P2Quantile, EmptyIsZero) {
  EXPECT_DOUBLE_EQ(P2Quantile(0.5).value(), 0.0);
}

TEST(P2Quantile, MedianOfNormalData) {
  P2Quantile median(0.5);
  const auto xs = normal_samples(1, 20000);
  for (double x : xs) median.add(x);
  EXPECT_NEAR(median.value(), percentile(xs, 50.0), 0.5);
  EXPECT_NEAR(median.value(), 100.0, 1.0);
}

// Property sweep: P² tracks the exact percentile within ~2 % of sigma
// across quantiles and distributions.
class P2AccuracyTest
    : public ::testing::TestWithParam<std::tuple<double, bool>> {};

TEST_P(P2AccuracyTest, TracksExactQuantile) {
  const auto [q, lognormal] = GetParam();
  util::Xoshiro256 rng(99);
  P2Quantile estimator(q);
  std::vector<double> xs;
  xs.reserve(30000);
  for (int i = 0; i < 30000; ++i) {
    const double x = lognormal ? rng.lognormal(0.0, 0.5) : rng.normal(0.0, 1.0);
    estimator.add(x);
    xs.push_back(x);
  }
  const double exact = percentile(xs, 100.0 * q);
  const double spread = percentile(xs, 97.5) - percentile(xs, 2.5);
  EXPECT_NEAR(estimator.value(), exact, 0.02 * spread)
      << "q=" << q << " lognormal=" << lognormal;
}

INSTANTIATE_TEST_SUITE_P(
    QuantilesAndShapes, P2AccuracyTest,
    ::testing::Combine(::testing::Values(0.05, 0.25, 0.5, 0.75, 0.95),
                       ::testing::Bool()));

TEST(P2Quantile, MonotoneAcrossQuantiles) {
  P2Quantile q10(0.10), q50(0.50), q90(0.90);
  util::Xoshiro256 rng(5);
  for (int i = 0; i < 5000; ++i) {
    const double x = rng.lognormal(1.0, 1.0);
    q10.add(x);
    q50.add(x);
    q90.add(x);
  }
  EXPECT_LT(q10.value(), q50.value());
  EXPECT_LT(q50.value(), q90.value());
}

TEST(P2Quantile, ConstantStream) {
  P2Quantile median(0.5);
  for (int i = 0; i < 100; ++i) median.add(7.0);
  EXPECT_DOUBLE_EQ(median.value(), 7.0);
}

TEST(P2Quantile, RejectsBadQuantile) {
  EXPECT_THROW(P2Quantile(0.0), std::invalid_argument);
  EXPECT_THROW(P2Quantile(1.0), std::invalid_argument);
  EXPECT_THROW(P2Quantile(-0.5), std::invalid_argument);
}

TEST(P2Summary, QuartilesOrderedAndAccurate) {
  P2Summary summary;
  const auto xs = normal_samples(7, 20000);
  for (double x : xs) summary.add(x);
  EXPECT_EQ(summary.count(), 20000u);
  EXPECT_LT(summary.q25(), summary.median());
  EXPECT_LT(summary.median(), summary.q75());
  // Normal(100, 15): IQR = 2 * 0.6745 * 15 ~ 20.2.
  EXPECT_NEAR(summary.iqr(), 20.2, 1.5);
}

}  // namespace
}  // namespace rooftune::stats
