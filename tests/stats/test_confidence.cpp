#include "stats/confidence.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "stats/normal.hpp"
#include "util/rng.hpp"

namespace rooftune::stats {
namespace {

OnlineMoments from(std::initializer_list<double> xs) {
  OnlineMoments m;
  for (double x : xs) m.add(x);
  return m;
}

TEST(ConfidenceInterval, DegeneratesWithFewSamples) {
  OnlineMoments m;
  m.add(5.0);
  const auto ci = mean_confidence_interval(m, 0.99);
  EXPECT_DOUBLE_EQ(ci.lower, 5.0);
  EXPECT_DOUBLE_EQ(ci.upper, 5.0);
  EXPECT_DOUBLE_EQ(ci.margin(), 0.0);
}

TEST(ConfidenceInterval, MatchesManualFormula) {
  const auto m = from({10.0, 12.0, 11.0, 9.0, 13.0});
  const auto ci = mean_confidence_interval(m, 0.99);
  const double z = normal_two_sided_critical(0.99);
  const double half = z * m.stddev() / std::sqrt(5.0);
  EXPECT_NEAR(ci.lower, m.mean() - half, 1e-12);
  EXPECT_NEAR(ci.upper, m.mean() + half, 1e-12);
  EXPECT_NEAR(ci.margin(), half, 1e-12);
  EXPECT_DOUBLE_EQ(ci.confidence, 0.99);
}

TEST(ConfidenceInterval, StudentTWiderThanNormal) {
  const auto m = from({10.0, 12.0, 11.0, 9.0, 13.0});
  const auto z_ci = mean_confidence_interval(m, 0.99, IntervalMethod::Normal);
  const auto t_ci = mean_confidence_interval(m, 0.99, IntervalMethod::StudentT);
  EXPECT_GT(t_ci.margin(), z_ci.margin());
  EXPECT_DOUBLE_EQ(t_ci.mean, z_ci.mean);
}

TEST(ConfidenceInterval, RelativeHalfWidth) {
  ConfidenceInterval ci;
  ci.mean = 100.0;
  ci.lower = 99.0;
  ci.upper = 101.0;
  EXPECT_NEAR(ci.relative_half_width(), 0.01, 1e-12);

  ci.mean = 0.0;
  ci.lower = ci.upper = 0.0;
  EXPECT_DOUBLE_EQ(ci.relative_half_width(), 0.0);
  ci.upper = 1.0;
  EXPECT_TRUE(std::isinf(ci.relative_half_width()));
}

TEST(ConfidenceInterval, OverlapAndContainment) {
  ConfidenceInterval a{.mean = 1.0, .lower = 0.0, .upper = 2.0};
  ConfidenceInterval b{.mean = 2.5, .lower = 1.5, .upper = 3.5};
  ConfidenceInterval c{.mean = 5.0, .lower = 4.0, .upper = 6.0};
  EXPECT_TRUE(a.overlaps(b));
  EXPECT_TRUE(b.overlaps(a));
  EXPECT_FALSE(a.overlaps(c));
  EXPECT_TRUE(a.contains(1.5));
  EXPECT_FALSE(a.contains(2.5));
}

TEST(HasConverged, FiresOnceIntervalIsTight) {
  // Tiny spread around 100: CI is far inside +/-1 %.
  const auto tight = from({100.0, 100.01, 99.99, 100.02, 99.98, 100.0});
  EXPECT_TRUE(has_converged(tight, 0.99, 0.01));

  const auto loose = from({80.0, 120.0, 95.0, 110.0});
  EXPECT_FALSE(has_converged(loose, 0.99, 0.01));
}

TEST(HasConverged, RespectsMinSamples) {
  const auto tight = from({100.0, 100.0001});
  EXPECT_TRUE(has_converged(tight, 0.99, 0.01, 2));
  EXPECT_FALSE(has_converged(tight, 0.99, 0.01, 5));
}

TEST(HasConverged, NeverWithOneSample) {
  OnlineMoments m;
  m.add(50.0);
  EXPECT_FALSE(has_converged(m, 0.99, 0.01));
}

// Monte-Carlo coverage: the 95 % normal CI over n=100 normal samples should
// contain the true mean in roughly 95 % of trials.
TEST(ConfidenceInterval, CoverageIsApproximatelyNominal) {
  util::Xoshiro256 rng(20210615);
  int covered = 0;
  constexpr int trials = 2000;
  for (int t = 0; t < trials; ++t) {
    OnlineMoments m;
    for (int i = 0; i < 100; ++i) m.add(rng.normal(42.0, 5.0));
    if (mean_confidence_interval(m, 0.95).contains(42.0)) ++covered;
  }
  const double coverage = static_cast<double>(covered) / trials;
  EXPECT_NEAR(coverage, 0.95, 0.02);
}

// With only n=5 samples, normal-based intervals under-cover while t-based
// intervals stay near nominal — the motivation for IntervalMethod::StudentT.
TEST(ConfidenceInterval, SmallSampleTBeatsNormalCoverage) {
  util::Xoshiro256 rng(77);
  int covered_z = 0, covered_t = 0;
  constexpr int trials = 4000;
  for (int t = 0; t < trials; ++t) {
    OnlineMoments m;
    for (int i = 0; i < 5; ++i) m.add(rng.normal(0.0, 1.0));
    if (mean_confidence_interval(m, 0.95, IntervalMethod::Normal).contains(0.0)) {
      ++covered_z;
    }
    if (mean_confidence_interval(m, 0.95, IntervalMethod::StudentT).contains(0.0)) {
      ++covered_t;
    }
  }
  EXPECT_LT(covered_z, covered_t);
  EXPECT_NEAR(static_cast<double>(covered_t) / trials, 0.95, 0.025);
  EXPECT_LT(static_cast<double>(covered_z) / trials, 0.93);
}

}  // namespace
}  // namespace rooftune::stats
