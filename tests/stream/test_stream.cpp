#include "stream/stream.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace rooftune::stream {
namespace {

TEST(StreamAccounting, BytesPerElement) {
  EXPECT_EQ(bytes_per_element(Kernel::Copy).value, 16u);
  EXPECT_EQ(bytes_per_element(Kernel::Scale).value, 16u);
  EXPECT_EQ(bytes_per_element(Kernel::Add).value, 24u);
  EXPECT_EQ(bytes_per_element(Kernel::Triad).value, 24u);
}

TEST(StreamAccounting, FlopsPerElement) {
  EXPECT_DOUBLE_EQ(flops_per_element(Kernel::Copy).value, 0.0);
  EXPECT_DOUBLE_EQ(flops_per_element(Kernel::Scale).value, 1.0);
  EXPECT_DOUBLE_EQ(flops_per_element(Kernel::Add).value, 1.0);
  EXPECT_DOUBLE_EQ(flops_per_element(Kernel::Triad).value, 2.0);
}

TEST(StreamAccounting, TriadIntensityIsOneTwelfth) {
  // Paper §I / §III-B: I = 2 FLOP / 24 byte = 1/12.
  EXPECT_NEAR(kernel_intensity(Kernel::Triad).value, 1.0 / 12.0, 1e-15);
}

TEST(StreamArrays, InitialValues) {
  StreamArrays s(100);
  for (std::int64_t i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(s.a()[i], 1.0);
    EXPECT_DOUBLE_EQ(s.b()[i], 2.0);
    EXPECT_DOUBLE_EQ(s.c()[i], 0.0);
  }
}

TEST(StreamArrays, WorkingSetIsThreeVectors) {
  StreamArrays s(1000);
  EXPECT_EQ(s.working_set().value, 3u * 8u * 1000u);
}

TEST(StreamArrays, TriadComputesEq4) {
  // C <- A + gamma*B in the paper's naming; our kernel writes a = b + q*c.
  StreamArrays s(64);
  const auto moved = s.run(Kernel::Triad, 3.0);
  EXPECT_EQ(moved.value, 24u * 64u);
  for (std::int64_t i = 0; i < 64; ++i) {
    EXPECT_DOUBLE_EQ(s.a()[i], 2.0 + 3.0 * 0.0);
  }
  EXPECT_DOUBLE_EQ(s.verify(Kernel::Triad, 1, 3.0), 0.0);
}

TEST(StreamArrays, CopyScaleAddSemantics) {
  StreamArrays s(16);
  s.run(Kernel::Copy);  // c = a = 1
  for (std::int64_t i = 0; i < 16; ++i) EXPECT_DOUBLE_EQ(s.c()[i], 1.0);
  s.run(Kernel::Scale, 3.0);  // b = 3*c = 3
  for (std::int64_t i = 0; i < 16; ++i) EXPECT_DOUBLE_EQ(s.b()[i], 3.0);
  s.run(Kernel::Add);  // c = a + b = 4
  for (std::int64_t i = 0; i < 16; ++i) EXPECT_DOUBLE_EQ(s.c()[i], 4.0);
}

TEST(StreamArrays, VerifyDetectsWrongKernel) {
  // From the canonical start, repeated TRIAD is a fixpoint (c stays 0), so
  // verify() is exercised against a *different* kernel's effect instead.
  StreamArrays s(32);
  s.run(Kernel::Add);                                // c = a + b = 3
  EXPECT_DOUBLE_EQ(s.verify(Kernel::Add, 1), 0.0);   // matches what ran
  EXPECT_GT(s.verify(Kernel::Triad, 1, 3.0), 0.0);   // triad would differ
  EXPECT_GT(s.verify(Kernel::Add, 0), 0.0);          // wrong count detected
}

TEST(StreamArrays, FullStreamCycleMatchesScalarReplay) {
  // The classic STREAM ordering: copy, scale, add, triad, repeated.
  StreamArrays s(8);
  double a = 1.0, b = 2.0, c = 0.0;
  const double q = 3.0;
  for (int round = 0; round < 3; ++round) {
    s.run(Kernel::Copy);
    c = a;
    s.run(Kernel::Scale, q);
    b = q * c;
    s.run(Kernel::Add);
    c = a + b;
    s.run(Kernel::Triad, q);
    a = b + q * c;
  }
  for (std::int64_t i = 0; i < 8; ++i) {
    EXPECT_DOUBLE_EQ(s.a()[i], a);
    EXPECT_DOUBLE_EQ(s.b()[i], b);
    EXPECT_DOUBLE_EQ(s.c()[i], c);
  }
}

TEST(StreamArrays, RejectsEmpty) {
  EXPECT_THROW(StreamArrays(0), std::invalid_argument);
  EXPECT_THROW(StreamArrays(-5), std::invalid_argument);
}

TEST(StreamKernelNames, ToString) {
  EXPECT_STREQ(to_string(Kernel::Copy), "copy");
  EXPECT_STREQ(to_string(Kernel::Scale), "scale");
  EXPECT_STREQ(to_string(Kernel::Add), "add");
  EXPECT_STREQ(to_string(Kernel::Triad), "triad");
}

TEST(StorePolicyNames, ToString) {
  EXPECT_STREQ(to_string(StorePolicy::Regular), "regular");
  EXPECT_STREQ(to_string(StorePolicy::Streaming), "streaming");
}

// The streaming path changes *how* stores reach memory, never the values
// stored or the STREAM byte accounting.  Sizes straddle the 4096-element
// chunk boundary and exercise the unaligned scalar tails.
TEST(StreamStorePolicy, StreamingMatchesRegularForAllKernels) {
  for (const std::int64_t n : {7, 64, 4096, 4100, 10000}) {
    for (const Kernel kernel :
         {Kernel::Copy, Kernel::Scale, Kernel::Add, Kernel::Triad}) {
      StreamArrays regular(n), streaming(n);
      const auto moved_regular = regular.run(kernel, 3.0, StorePolicy::Regular);
      const auto moved_streaming =
          streaming.run(kernel, 3.0, StorePolicy::Streaming);
      EXPECT_EQ(moved_regular.value, moved_streaming.value)
          << to_string(kernel) << " n=" << n;
      for (std::int64_t i = 0; i < n; ++i) {
        ASSERT_DOUBLE_EQ(regular.a()[i], streaming.a()[i])
            << to_string(kernel) << " n=" << n << " i=" << i;
        ASSERT_DOUBLE_EQ(regular.b()[i], streaming.b()[i])
            << to_string(kernel) << " n=" << n << " i=" << i;
        ASSERT_DOUBLE_EQ(regular.c()[i], streaming.c()[i])
            << to_string(kernel) << " n=" << n << " i=" << i;
      }
    }
  }
}

TEST(StreamStorePolicy, StreamingTriadVerifies) {
  StreamArrays s(5000);
  s.run(Kernel::Add, 3.0, StorePolicy::Streaming);
  EXPECT_DOUBLE_EQ(s.verify(Kernel::Add, 1), 0.0);
}

TEST(StreamArenaLease, MatchesOwningStorageBitExactly) {
  util::WorkspaceArena arena;
  const std::int64_t n = 4096;
  StreamArrays owned(n);
  StreamArrays leased(n, arena);
  for (int pass = 0; pass < 3; ++pass) {
    owned.run(Kernel::Triad, 3.0);
    leased.run(Kernel::Triad, 3.0);
  }
  for (std::int64_t i = 0; i < n; ++i) {
    ASSERT_EQ(owned.a()[i], leased.a()[i]) << i;
    ASSERT_EQ(owned.b()[i], leased.b()[i]) << i;
    ASSERT_EQ(owned.c()[i], leased.c()[i]) << i;
  }
  EXPECT_DOUBLE_EQ(leased.verify(Kernel::Triad, 3), 0.0);
}

TEST(StreamArenaLease, ReconstructionReusesSlabs) {
  util::WorkspaceArena arena;
  {
    StreamArrays first(1 << 12, arena);
    first.run(Kernel::Triad, 3.0);
  }
  const auto warm = arena.stats();
  EXPECT_EQ(warm.slab_misses, 3u);
  // Rebuilding (the per-invocation pattern) and shrinking both hit.
  for (int i = 0; i < 5; ++i) {
    StreamArrays again(1 << 12, arena);
    StreamArrays smaller(1 << 10, arena);
  }
  EXPECT_EQ(arena.stats().allocations, warm.allocations);
  EXPECT_EQ(arena.stats().slab_misses, warm.slab_misses);
  EXPECT_EQ(arena.stats().slab_hits, warm.slab_hits + 30u);
}

}  // namespace
}  // namespace rooftune::stream
