#include "core/process_doc.hpp"

#include <gtest/gtest.h>

#include "core/techniques.hpp"

namespace rooftune::core {
namespace {

TEST(ProcessDoc, DefaultDescribesFixedBudgets) {
  const std::string doc = describe_process(technique_options(Technique::Default));
  EXPECT_NE(doc.find("200 iterations"), std::string::npos);
  EXPECT_NE(doc.find("10 invocations"), std::string::npos);
  EXPECT_NE(doc.find("cond. 1"), std::string::npos);
  EXPECT_EQ(doc.find("cond. 3"), std::string::npos);  // confidence disabled
  EXPECT_EQ(doc.find("cond. 4"), std::string::npos);  // pruning disabled
}

TEST(ProcessDoc, CioDescribesAllFourConditions) {
  const std::string doc = describe_process(technique_options(Technique::CIOuter));
  EXPECT_NE(doc.find("cond. 1"), std::string::npos);
  EXPECT_NE(doc.find("cond. 2"), std::string::npos);
  EXPECT_NE(doc.find("cond. 3"), std::string::npos);
  EXPECT_NE(doc.find("cond. 4"), std::string::npos);
  EXPECT_NE(doc.find("99%"), std::string::npos);
  EXPECT_NE(doc.find("pruned invocation"), std::string::npos);
}

TEST(ProcessDoc, MinCountAppears) {
  const auto options = technique_options(Technique::CInner, {}, 0, 100);
  EXPECT_NE(describe_process(options).find(">= 100 samples"), std::string::npos);
}

TEST(ProcessDoc, TrendGuardNoted) {
  auto options = technique_options(Technique::CInner);
  options.trend_guard = true;
  EXPECT_NE(describe_process(options).find("trend"), std::string::npos);
}

TEST(ProcessDoc, DotIsStructurallySound) {
  const std::string dot = process_dot(technique_options(Technique::CIOuter));
  EXPECT_EQ(dot.rfind("digraph", 0), 0u);
  EXPECT_NE(dot.find("inner_stop"), std::string::npos);
  EXPECT_NE(dot.find("outer_stop"), std::string::npos);
  EXPECT_NE(dot.find("incumbent -> done"), std::string::npos);
  // Balanced braces.
  int depth = 0;
  for (char c : dot) {
    if (c == '{') ++depth;
    if (c == '}') --depth;
  }
  EXPECT_EQ(depth, 0);
  // Quotes are balanced (even count outside escapes).
  std::size_t quotes = 0;
  for (std::size_t i = 0; i < dot.size(); ++i) {
    if (dot[i] == '"' && (i == 0 || dot[i - 1] != '\\')) ++quotes;
  }
  EXPECT_EQ(quotes % 2, 0u);
}

TEST(ProcessDoc, ReverseOrderShown) {
  auto options = technique_options(Technique::CInnerReverse);
  EXPECT_NE(describe_process(options).find("reverse"), std::string::npos);
  EXPECT_NE(process_dot(options).find("reverse"), std::string::npos);
}

}  // namespace
}  // namespace rooftune::core
