#include "core/handtune.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "fake_backend.hpp"

namespace rooftune::core {
namespace {

using testing::FakeBackend;

SearchSpace tiny_space() {
  SearchSpace space;
  space.add_range(ParameterRange("a", {1, 2, 3}));
  return space;
}

TEST(HandTuneTime, FindsLargestCountWithinBudget) {
  // Cost per exhaustive pass: 3 configs * (0.1 overhead + count * 0.01).
  FakeBackend backend(100.0, 0.01, 0.1);
  TunerOptions base;  // iterations cap 200
  // Budget 1.5 s: 3*(0.1 + c*0.01) <= 1.5  =>  c <= 40.
  const auto result =
      hand_tune_time(backend, tiny_space(), base, util::Seconds{1.5});
  // Accumulated floating-point rounding may land on 39 or 40.
  EXPECT_GE(result.iterations, 39u);
  EXPECT_LE(result.iterations, 40u);
  EXPECT_LE(result.run.total_time.value, 1.5 + 1e-9);
}

TEST(HandTuneTime, SingleIterationWhenBudgetTiny) {
  FakeBackend backend(100.0, 0.5, 0.5);
  TunerOptions base;
  const auto result =
      hand_tune_time(backend, tiny_space(), base, util::Seconds{0.1});
  EXPECT_EQ(result.iterations, 1u);
}

TEST(HandTuneTime, CapsAtInnerIterationLimit) {
  FakeBackend backend(100.0, 1e-6, 1e-6);
  TunerOptions base;
  base.iterations = 50;
  const auto result =
      hand_tune_time(backend, tiny_space(), base, util::Seconds{1e6});
  EXPECT_EQ(result.iterations, 50u);
}

TEST(HandTuneTime, RejectsNonPositiveTarget) {
  FakeBackend backend;
  EXPECT_THROW(hand_tune_time(backend, tiny_space(), {}, util::Seconds{0.0}),
               std::invalid_argument);
}

TEST(HandTuneAccuracy, StopsAtFirstAccurateCount) {
  // Configuration a=3 is best with steady value 30 but needs several
  // iterations before its running mean converges: value dips early.
  FakeBackend backend(10.0, 0.001, 0.01);
  for (std::int64_t a = 1; a <= 3; ++a) {
    const double steady = 10.0 * static_cast<double>(a);
    backend.set_generator(Configuration({{"a", a}}), [steady](std::uint64_t it) {
      // Warm-up: first ~20 iterations read 30 % low.
      return steady * (1.0 - 0.3 * std::exp(-static_cast<double>(it - 1) / 8.0));
    });
  }
  TunerOptions base;
  const auto result = hand_tune_accuracy(backend, tiny_space(), base, 30.0, 0.05);
  EXPECT_GT(result.iterations, 5u);  // 5 iterations are not enough
  EXPECT_NEAR(result.run.best_value(), 30.0, 0.05 * 30.0);
}

TEST(HandTuneAccuracy, ImmediateWhenNoiseless) {
  FakeBackend backend(100.0, 0.001);
  const auto result = hand_tune_accuracy(backend, tiny_space(), {}, 100.0, 0.01);
  EXPECT_EQ(result.iterations, 5u);  // first grid point suffices
}

TEST(HandTuneAccuracy, ReturnsLargestTriedWhenUnreachable) {
  FakeBackend backend(100.0, 0.001);
  TunerOptions base;
  base.iterations = 40;
  // Reference far from anything achievable: scan exhausts the grid.
  const auto result = hand_tune_accuracy(backend, tiny_space(), base, 500.0, 0.01);
  EXPECT_EQ(result.iterations, 40u);
}

TEST(HandTuneAccuracy, RejectsBadReference) {
  FakeBackend backend;
  EXPECT_THROW(hand_tune_accuracy(backend, tiny_space(), {}, 0.0),
               std::invalid_argument);
}

}  // namespace
}  // namespace rooftune::core
