#include "core/eval_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

#include "util/work_steal.hpp"

namespace rooftune::core {
namespace {

/// Wait until `count` reaches `target` (tasks completing asynchronously).
void await(std::atomic<std::uint64_t>& count, std::uint64_t target) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (count.load() < target) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline) << "pool stalled";
    std::this_thread::yield();
  }
}

TEST(EvalPoolTest, RunsEverySubmittedTaskExactlyOnce) {
  EvalPool pool({.workers = 4});
  EXPECT_EQ(pool.workers(), 4u);

  constexpr std::uint64_t kTasks = 500;
  std::vector<std::atomic<int>> ran(kTasks);
  std::atomic<std::uint64_t> done{0};
  for (std::uint64_t i = 0; i < kTasks; ++i) {
    pool.submit([&, i](std::size_t) {
      ran[i].fetch_add(1);
      done.fetch_add(1);
    });
  }
  await(done, kTasks);
  for (std::uint64_t i = 0; i < kTasks; ++i) EXPECT_EQ(ran[i].load(), 1) << i;
  EXPECT_EQ(pool.stats().tasks, kTasks);
}

TEST(EvalPoolTest, WorkerIndexStaysInRange) {
  EvalPool pool({.workers = 3});
  std::atomic<std::uint64_t> done{0};
  std::atomic<bool> out_of_range{false};
  for (int i = 0; i < 200; ++i) {
    pool.submit([&](std::size_t w) {
      if (w >= 3) out_of_range.store(true);
      done.fetch_add(1);
    });
  }
  await(done, 200);
  EXPECT_FALSE(out_of_range.load());
}

TEST(EvalPoolTest, TasksSubmittedFromTasksComplete) {
  // The racing pipeline dispatches block b+L from the commit of block b,
  // which runs on the coordinator — but nothing forbids submission from a
  // worker; exercise it.
  EvalPool pool({.workers = 2});
  std::atomic<std::uint64_t> done{0};
  for (int i = 0; i < 50; ++i) {
    pool.submit([&pool, &done](std::size_t) {
      pool.submit([&done](std::size_t) { done.fetch_add(1); });
    });
  }
  await(done, 50);
  EXPECT_EQ(pool.stats().tasks, 100u);
}

TEST(EvalPoolTest, DestructionJoinsIdleWorkers) {
  // Parked workers must wake and exit when the pool dies; a hang here is
  // the classic lost-wakeup bug.
  for (int round = 0; round < 20; ++round) {
    EvalPool pool({.workers = 4});
    std::atomic<std::uint64_t> done{0};
    pool.submit([&](std::size_t) { done.fetch_add(1); });
    await(done, 1);
  }
}

TEST(EvalPoolTest, PinningIsASoftNoOp) {
  // pin_threads must never fail construction, whatever the host allows.
  EvalPool pool({.workers = 2, .pin_threads = true});
  std::atomic<std::uint64_t> done{0};
  pool.submit([&](std::size_t) { done.fetch_add(1); });
  await(done, 1);
}

TEST(EvalPoolTest, StatsCountParksAndSpan) {
  EvalPool pool({.workers = 2});
  // Give workers time to go idle and park at least once.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  std::atomic<std::uint64_t> done{0};
  pool.submit([&](std::size_t) { done.fetch_add(1); });
  await(done, 1);
  const SchedulerStats stats = pool.stats();
  EXPECT_GE(stats.parks, 1u);
  EXPECT_GT(stats.span_ns, 0u);
  EXPECT_EQ(stats.workers, 2u);
}

// --- Chase-Lev deque -------------------------------------------------------

TEST(WorkStealDequeTest, LifoOwnerFifoThief) {
  util::WorkStealDeque<int> deque;
  for (int i = 1; i <= 3; ++i) deque.push(i);
  EXPECT_EQ(deque.steal(), 1);   // thief takes the oldest
  EXPECT_EQ(deque.pop(), 3);     // owner takes the newest
  EXPECT_EQ(deque.pop(), 2);
  EXPECT_EQ(deque.pop(), std::nullopt);
  EXPECT_EQ(deque.steal(), std::nullopt);
}

TEST(WorkStealDequeTest, GrowsPastInitialCapacity) {
  util::WorkStealDeque<std::uint64_t> deque;
  constexpr std::uint64_t kCount = 10000;  // forces several ring growths
  for (std::uint64_t i = 0; i < kCount; ++i) deque.push(i);
  for (std::uint64_t i = kCount; i-- > 0;) {
    const auto got = deque.pop();
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(*got, i);
  }
  EXPECT_EQ(deque.pop(), std::nullopt);
}

// The stress test the TSan CI job leans on: one owner pushing/popping, many
// thieves stealing concurrently, every element accounted for exactly once.
TEST(WorkStealDequeTest, ConcurrentStealStress) {
  constexpr std::uint64_t kItems = 20000;
  constexpr std::size_t kThieves = 3;

  util::WorkStealDeque<std::uint64_t> deque;
  std::atomic<std::uint64_t> taken{0};
  std::atomic<std::uint64_t> sum{0};
  std::atomic<bool> owner_done{false};

  std::vector<std::thread> thieves;
  thieves.reserve(kThieves);
  for (std::size_t t = 0; t < kThieves; ++t) {
    thieves.emplace_back([&] {
      for (;;) {
        if (auto item = deque.steal()) {
          sum.fetch_add(*item + 1);
          taken.fetch_add(1);
        } else if (owner_done.load()) {
          if (!deque.steal().has_value()) return;
        } else {
          std::this_thread::yield();
        }
      }
    });
  }

  // Owner: interleave pushes with occasional pops, like a worker draining
  // its own deque between steals.
  for (std::uint64_t i = 0; i < kItems; ++i) {
    deque.push(i);
    if (i % 7 == 0) {
      if (auto item = deque.pop()) {
        sum.fetch_add(*item + 1);
        taken.fetch_add(1);
      }
    }
  }
  for (;;) {
    auto item = deque.pop();
    if (!item.has_value()) break;
    sum.fetch_add(*item + 1);
    taken.fetch_add(1);
  }
  owner_done.store(true);
  for (std::thread& thief : thieves) thief.join();
  // Stragglers the owner's final pop raced with:
  while (auto item = deque.steal()) {
    sum.fetch_add(*item + 1);
    taken.fetch_add(1);
  }

  EXPECT_EQ(taken.load(), kItems);
  // Each item i contributes i+1, so the sum pins content, not just count.
  EXPECT_EQ(sum.load(), kItems * (kItems + 1) / 2);
}

}  // namespace
}  // namespace rooftune::core
