#include "core/pipe_backend.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "core/autotuner.hpp"
#include "core/evaluator.hpp"

namespace rooftune::core {
namespace {

TEST(PipeBackendExpand, SubstitutesParameters) {
  const auto config = dgemm_config(1000, 4096, 128);
  EXPECT_EQ(PipeBackend::expand("./bench --n {n} --m {m} --k {k} -i {invocation}",
                                config, 3),
            "./bench --n 1000 --m 4096 --k 128 -i 3");
}

TEST(PipeBackendExpand, RepeatedPlaceholders) {
  const auto config = triad_config(64);
  EXPECT_EQ(PipeBackend::expand("a={N} b={N}", config, 0), "a=64 b=64");
}

TEST(PipeBackendExpand, UnresolvedPlaceholderThrows) {
  const auto config = triad_config(64);
  EXPECT_THROW(PipeBackend::expand("a={N} b={missing}", config, 0),
               std::invalid_argument);
}

TEST(PipeBackend, EmptyTemplateRejected) {
  EXPECT_THROW(PipeBackend(PipeBackend::Options{}), std::invalid_argument);
}

TEST(PipeBackend, ReadsValueAndKernelTimeLines) {
  PipeBackend::Options options;
  // Child prints two iterations: "value kernel_seconds".
  options.command_template = "printf '{N}.5 0.25\\n7 0.5\\n'";
  options.metric_name = "widgets/s";
  PipeBackend backend(options);
  EXPECT_EQ(backend.metric_name(), "widgets/s");

  backend.begin_invocation(triad_config(3), 0);
  const Sample s1 = backend.run_iteration();
  EXPECT_DOUBLE_EQ(s1.value, 3.5);
  EXPECT_DOUBLE_EQ(s1.kernel_time.value, 0.25);
  const Sample s2 = backend.run_iteration();
  EXPECT_DOUBLE_EQ(s2.value, 7.0);
  EXPECT_DOUBLE_EQ(s2.kernel_time.value, 0.5);
  backend.end_invocation();
  EXPECT_NE(backend.last_command().find("3.5"), std::string::npos);
}

TEST(PipeBackend, WallClockFallbackWhenNoKernelTime) {
  PipeBackend::Options options;
  options.command_template = "printf '42\\n43\\n'";
  PipeBackend backend(options);
  backend.begin_invocation(triad_config(1), 0);
  const Sample s = backend.run_iteration();
  EXPECT_DOUBLE_EQ(s.value, 42.0);
  EXPECT_GE(s.kernel_time.value, 0.0);  // wall-clock delta, tiny but valid
  backend.end_invocation();
}

TEST(PipeBackend, PrematureEofThrows) {
  PipeBackend::Options options;
  options.command_template = "printf '1\\n'";
  PipeBackend backend(options);
  backend.begin_invocation(triad_config(1), 0);
  backend.run_iteration();
  EXPECT_THROW(backend.run_iteration(), std::runtime_error);
  backend.end_invocation();
}

TEST(PipeBackend, MalformedLineThrows) {
  PipeBackend::Options options;
  options.command_template = "printf 'not-a-number\\n'";
  PipeBackend backend(options);
  backend.begin_invocation(triad_config(1), 0);
  EXPECT_THROW(backend.run_iteration(), std::runtime_error);
  backend.end_invocation();
}

TEST(PipeBackend, IterationOutsideInvocationThrows) {
  PipeBackend::Options options;
  options.command_template = "printf '1\\n'";
  PipeBackend backend(options);
  EXPECT_THROW(backend.run_iteration(), std::logic_error);
}

TEST(PipeBackend, DrivesFullAutotune) {
  // A shell "benchmark" whose performance is its parameter value: the tuner
  // must find x = 8.  Each invocation prints 4 samples; the evaluator reads
  // exactly the 3 it is configured for.
  PipeBackend::Options options;
  options.command_template = "printf '{x} 0.01\\n{x} 0.01\\n{x} 0.01\\n{x} 0.01\\n'";
  PipeBackend backend(options);

  SearchSpace space;
  space.add_range(ParameterRange("x", {2, 8, 5}));
  TunerOptions tuner_options;
  tuner_options.invocations = 2;
  tuner_options.iterations = 3;
  const auto run = Autotuner(space, tuner_options).run(backend);

  EXPECT_EQ(run.best_config().at("x"), 8);
  EXPECT_DOUBLE_EQ(run.best_value(), 8.0);
  EXPECT_EQ(run.total_iterations, 3u * 2u * 3u);
}

}  // namespace
}  // namespace rooftune::core
