#include "core/autotuner.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "fake_backend.hpp"

namespace rooftune::core {
namespace {

using testing::FakeBackend;

SearchSpace small_space() {
  SearchSpace space;
  space.add_range(ParameterRange("a", {1, 2, 3, 4, 5}));
  return space;
}

/// Value = 10 * a: argmax is a=5.
void program_linear(FakeBackend& backend) {
  for (std::int64_t a = 1; a <= 5; ++a) {
    backend.set_value(Configuration({{"a", a}}), 10.0 * static_cast<double>(a));
  }
}

TunerOptions quick_options() {
  TunerOptions o;
  o.invocations = 2;
  o.iterations = 5;
  return o;
}

TEST(Autotuner, FindsArgmaxExhaustively) {
  FakeBackend backend;
  program_linear(backend);
  const Autotuner tuner(small_space(), quick_options());
  const auto run = tuner.run(backend);
  ASSERT_TRUE(run.best_index.has_value());
  EXPECT_EQ(run.best_config().at("a"), 5);
  EXPECT_DOUBLE_EQ(run.best_value(), 50.0);
  EXPECT_EQ(run.results.size(), 5u);
}

TEST(Autotuner, ReverseOrderVisitsSameSetFindsSameBest) {
  FakeBackend fwd_backend, rev_backend;
  program_linear(fwd_backend);
  program_linear(rev_backend);

  auto options = quick_options();
  const Autotuner fwd(small_space(), options);
  options.order = SearchOrder::Reverse;
  const Autotuner rev(small_space(), options);

  const auto fwd_run = fwd.run(fwd_backend);
  const auto rev_run = rev.run(rev_backend);
  EXPECT_EQ(fwd_run.best_config(), rev_run.best_config());
  EXPECT_EQ(rev_run.results.front().config.at("a"), 5);
  EXPECT_EQ(fwd_run.results.front().config.at("a"), 1);
}

TEST(Autotuner, PruningSkipsLosersButKeepsWinner) {
  FakeBackend backend;
  program_linear(backend);
  auto options = quick_options();
  options.inner_prune = true;
  options.outer_prune = true;
  const Autotuner tuner(small_space(), options);
  const auto run = tuner.run(backend);
  EXPECT_EQ(run.best_config().at("a"), 5);
  // Forward order with rising values: nothing can be pruned (each new config
  // beats the incumbent).  Reverse order prunes everything after a=5.
  EXPECT_EQ(run.pruned_configs, 0u);

  FakeBackend rev_backend;
  program_linear(rev_backend);
  options.order = SearchOrder::Reverse;
  const Autotuner rev(small_space(), options);
  const auto rev_run = rev.run(rev_backend);
  EXPECT_EQ(rev_run.best_config().at("a"), 5);
  EXPECT_EQ(rev_run.pruned_configs, 4u);
  EXPECT_LT(rev_run.total_iterations, run.total_iterations);
}

TEST(Autotuner, TotalTimeIsSumOfWork) {
  FakeBackend backend(100.0, /*iteration_cost=*/0.01, /*invocation_overhead=*/0.1);
  const Autotuner tuner(small_space(), quick_options());
  const auto run = tuner.run(backend);
  // 5 configs * 2 invocations * (0.1 + 5 * 0.01).
  EXPECT_NEAR(run.total_time.value, 5 * 2 * 0.15, 1e-9);
  EXPECT_EQ(run.total_invocations, 10u);
  EXPECT_EQ(run.total_iterations, 50u);
}

TEST(Autotuner, ProgressCallbackSeesEveryConfig) {
  FakeBackend backend;
  Autotuner tuner(small_space(), quick_options());
  std::size_t calls = 0;
  std::size_t last_total = 0;
  tuner.set_progress_callback(
      [&](std::size_t index, std::size_t total, const ConfigResult& result) {
        EXPECT_EQ(index, calls);
        EXPECT_FALSE(result.config.empty());
        last_total = total;
        ++calls;
      });
  static_cast<void>(tuner.run(backend));
  EXPECT_EQ(calls, 5u);
  EXPECT_EQ(last_total, 5u);
}

TEST(Autotuner, RandomSearchSamplesWithoutReplacement) {
  FakeBackend backend;
  program_linear(backend);
  auto options = quick_options();
  options.random_seed = 7;
  const Autotuner tuner(small_space(), options);
  const auto run = tuner.run_random(backend, 3);
  EXPECT_EQ(run.results.size(), 3u);
  // No duplicates.
  for (std::size_t i = 0; i < run.results.size(); ++i) {
    for (std::size_t j = i + 1; j < run.results.size(); ++j) {
      EXPECT_NE(run.results[i].config, run.results[j].config);
    }
  }
}

TEST(Autotuner, RandomSearchBudgetAboveSpaceIsExhaustive) {
  FakeBackend backend;
  program_linear(backend);
  const Autotuner tuner(small_space(), quick_options());
  const auto run = tuner.run_random(backend, 100);
  EXPECT_EQ(run.results.size(), 5u);
  EXPECT_EQ(run.best_config().at("a"), 5);
}

TEST(Autotuner, TieGoesToFirstVisited) {
  FakeBackend backend(42.0);  // every config identical
  const Autotuner tuner(small_space(), quick_options());
  const auto run = tuner.run(backend);
  EXPECT_EQ(*run.best_index, 0u);
}

TEST(TuningRun, BestThrowsWhenEmpty) {
  TuningRun run;
  EXPECT_THROW(static_cast<void>(run.best()), std::logic_error);
}

TEST(Autotuner, PrunedConfigValueNeverBeatsIncumbentAtPruneTime) {
  // Property: a pruned configuration's recorded value is below the best
  // value of the run (the pruning condition guarantees it with high
  // confidence; with deterministic streams it is exact).
  FakeBackend backend;
  program_linear(backend);
  auto options = quick_options();
  options.inner_prune = true;
  options.outer_prune = true;
  options.order = SearchOrder::Reverse;
  const Autotuner tuner(small_space(), options);
  const auto run = tuner.run(backend);
  for (const auto& r : run.results) {
    if (r.pruned()) EXPECT_LT(r.value(), run.best_value());
  }
}

}  // namespace
}  // namespace rooftune::core
