#include "core/parallel_evaluator.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <stdexcept>
#include <vector>

#include "core/autotuner.hpp"
#include "core/spaces.hpp"
#include "fake_backend.hpp"
#include "simhw/machine.hpp"
#include "simhw/sim_backend.hpp"

namespace rooftune::core {
namespace {

// Small but non-trivial tuner budget so pruning has something to cut.
TunerOptions fast_options(bool prune) {
  TunerOptions options;
  options.invocations = 3;
  options.iterations = 25;
  options.inner_prune = prune;
  options.outer_prune = prune;
  return options;
}

ParallelEvaluator::BackendFactory sim_factory() {
  return [] {
    simhw::SimOptions sim;
    sim.seed = 2021;
    return std::make_unique<simhw::SimDgemmBackend>(
        simhw::machine_by_name("gold6148"), sim);
  };
}

std::vector<Configuration> reduced_configs() {
  return dgemm_reduced_space().enumerate();
}

// Bitwise comparison of two runs: same best, same per-config statistics.
void expect_identical_runs(const TuningRun& lhs, const TuningRun& rhs) {
  ASSERT_EQ(lhs.results.size(), rhs.results.size());
  EXPECT_EQ(lhs.best_index, rhs.best_index);
  EXPECT_EQ(lhs.total_iterations, rhs.total_iterations);
  EXPECT_EQ(lhs.total_invocations, rhs.total_invocations);
  EXPECT_EQ(lhs.pruned_configs, rhs.pruned_configs);
  for (std::size_t i = 0; i < lhs.results.size(); ++i) {
    const ConfigResult& a = lhs.results[i];
    const ConfigResult& b = rhs.results[i];
    EXPECT_EQ(a.config, b.config) << i;
    EXPECT_EQ(a.value(), b.value()) << i;  // bit-equal doubles
    EXPECT_EQ(a.total_iterations, b.total_iterations) << i;
    EXPECT_EQ(a.invocations.size(), b.invocations.size()) << i;
    EXPECT_EQ(a.outer_stop, b.outer_stop) << i;
  }
}

TEST(ParallelEvaluator, RejectsNullFactory) {
  EXPECT_THROW(ParallelEvaluator(nullptr, TunerOptions{}), std::invalid_argument);
}

TEST(ParallelEvaluator, EmptyConfigListYieldsEmptyRun) {
  ParallelEvaluator evaluator(sim_factory(), fast_options(false));
  const TuningRun run = evaluator.run(std::vector<Configuration>{});
  EXPECT_TRUE(run.results.empty());
  EXPECT_FALSE(run.best_index.has_value());
}

// The headline determinism guarantee: identical best configuration AND
// identical per-configuration statistics for any worker count.
TEST(ParallelEvaluator, DeterministicModeIsWorkerCountInvariant) {
  const auto configs = reduced_configs();
  std::vector<TuningRun> runs;
  for (std::size_t workers : {1u, 2u, 4u}) {
    ParallelOptions popts;
    popts.workers = workers;
    popts.deterministic = true;
    popts.wave = 8;
    ParallelEvaluator evaluator(sim_factory(), fast_options(true), popts);
    runs.push_back(evaluator.run(configs));
  }
  expect_identical_runs(runs[0], runs[1]);
  expect_identical_runs(runs[0], runs[2]);
  EXPECT_GT(runs[0].pruned_configs, 0u);  // pruning stayed active
}

// Without pruning the incumbent is irrelevant, so deterministic-parallel
// must reproduce the serial evaluator bit for bit.
TEST(ParallelEvaluator, DeterministicModeMatchesSerialWithoutPruning) {
  const auto configs = reduced_configs();
  const TunerOptions options = fast_options(false);

  Autotuner tuner(dgemm_reduced_space(), options);
  auto backend = sim_factory()();
  const TuningRun serial = tuner.run(*backend);

  ParallelOptions popts;
  popts.workers = 4;
  popts.deterministic = true;
  ParallelEvaluator evaluator(sim_factory(), options, popts);
  const TuningRun parallel = evaluator.run(configs);

  expect_identical_runs(serial, parallel);
}

// With pruning, deterministic mode sees a slightly lagged incumbent, so
// pruned configs may differ from serial — but the optimum must not.
TEST(ParallelEvaluator, DeterministicModeFindsSerialBestWithPruning) {
  const TunerOptions options = fast_options(true);

  Autotuner tuner(dgemm_reduced_space(), options);
  auto backend = sim_factory()();
  const TuningRun serial = tuner.run(*backend);

  ParallelOptions popts;
  popts.workers = 4;
  popts.deterministic = true;
  popts.wave = 8;
  ParallelEvaluator evaluator(sim_factory(), options, popts);
  const TuningRun parallel = evaluator.run(reduced_configs());

  ASSERT_TRUE(parallel.best_index.has_value());
  EXPECT_EQ(parallel.best_config(), serial.best_config());
  EXPECT_EQ(parallel.best_value(), serial.best_value());
}

// Live mode trades reproducibility of pruned-config stats for wall clock;
// the optimum it returns must still be the serial optimum.
TEST(ParallelEvaluator, LiveModeFindsSerialBest) {
  const TunerOptions options = fast_options(true);

  Autotuner tuner(dgemm_reduced_space(), options);
  auto backend = sim_factory()();
  const TuningRun serial = tuner.run(*backend);

  ParallelOptions popts;
  popts.workers = 4;
  ParallelEvaluator evaluator(sim_factory(), options, popts);
  const TuningRun live = evaluator.run(reduced_configs());

  ASSERT_TRUE(live.best_index.has_value());
  EXPECT_EQ(live.best_config(), serial.best_config());
}

// A non-reentrant backend (FakeBackend keeps the Backend default) must
// degrade to one worker instead of racing.
TEST(ParallelEvaluator, NonReentrantBackendDegradesToSerial) {
  const TunerOptions options = fast_options(false);
  const auto factory = [] {
    auto backend = std::make_unique<core::testing::FakeBackend>(100.0);
    return backend;
  };
  ASSERT_FALSE(core::testing::FakeBackend(1.0).reentrant());

  ParallelOptions popts;
  popts.workers = 8;
  ParallelEvaluator evaluator(factory, options, popts);
  const std::vector<Configuration> configs{dgemm_config(1, 1, 1),
                                           dgemm_config(2, 2, 2)};
  const TuningRun run = evaluator.run(configs);
  ASSERT_EQ(run.results.size(), 2u);
  EXPECT_DOUBLE_EQ(run.best_value(), 100.0);
}

TEST(ParallelEvaluator, SearchSpaceOverloadHonoursOrder) {
  TunerOptions options = fast_options(false);
  options.order = SearchOrder::Reverse;
  ParallelOptions popts;
  popts.workers = 2;
  popts.deterministic = true;
  ParallelEvaluator evaluator(sim_factory(), options, popts);
  const TuningRun run = evaluator.run(dgemm_reduced_space());
  const auto expected =
      ordered(dgemm_reduced_space().enumerate(), SearchOrder::Reverse, 0);
  ASSERT_EQ(run.results.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(run.results[i].config, expected[i]) << i;
  }
}

ParallelEvaluator::BackendFactory arena_sim_factory() {
  return [] {
    simhw::SimOptions sim;
    sim.seed = 2021;
    sim.setup_overhead_s = 0.05;
    sim.arena_reuse = true;
    return std::make_unique<simhw::SimDgemmBackend>(
        simhw::machine_by_name("gold6148"), sim);
  };
}

// The arena setup model only moves the per-worker clocks, so the sample
// statistics must stay bit-identical across 1/2/8 workers, and the modelled
// arena counters must aggregate across the per-worker backends.
TEST(ParallelEvaluator, SetupModelIsWorkerCountInvariant) {
  const auto configs = reduced_configs();
  std::vector<TuningRun> runs;
  for (std::size_t workers : {1u, 2u, 8u}) {
    ParallelOptions popts;
    popts.workers = workers;
    popts.deterministic = true;
    popts.wave = 8;
    ParallelEvaluator evaluator(arena_sim_factory(), fast_options(false), popts);
    runs.push_back(evaluator.run(configs));
  }
  expect_identical_runs(runs[0], runs[1]);
  expect_identical_runs(runs[0], runs[2]);
  for (const TuningRun& run : runs) {
    ASSERT_TRUE(run.arena.has_value());
    // One modelled lease per invocation, independent of worker count.
    EXPECT_EQ(run.arena->leases, run.total_invocations);
    EXPECT_GT(run.arena->slab_hits, 0u);
    EXPECT_GT(run.total_setup_time.value, 0.0);
  }
  // Splitting the sequence across workers can only create more cold arenas:
  // every full-sequence high-water record is still a record in its worker's
  // subsequence, so a lone worker reuses at least as often.
  EXPECT_GE(runs[0].arena->slab_hits, runs[2].arena->slab_hits);
}

TEST(ParallelEvaluator, ArenaStatsAbsentWithoutModel) {
  ParallelEvaluator evaluator(sim_factory(), fast_options(false));
  const TuningRun run = evaluator.run(reduced_configs());
  EXPECT_FALSE(run.arena.has_value());
}

// --- pipeline scheduler ----------------------------------------------------

// The pipeline at lookahead 1 must reproduce the legacy wave schedule bit
// for bit: same frozen incumbents, same pruning decisions, same statistics.
TEST(ParallelEvaluator, PipelineLookahead1MatchesWaveBitwise) {
  const auto configs = reduced_configs();
  ParallelOptions wave;
  wave.workers = 4;
  wave.deterministic = true;
  wave.wave = 8;
  wave.scheduler = SchedulerMode::Wave;
  ParallelOptions pipeline = wave;
  pipeline.scheduler = SchedulerMode::Pipeline;
  pipeline.lookahead = 1;

  const TuningRun wave_run =
      ParallelEvaluator(sim_factory(), fast_options(true), wave).run(configs);
  const TuningRun pipe_run =
      ParallelEvaluator(sim_factory(), fast_options(true), pipeline).run(configs);
  expect_identical_runs(wave_run, pipe_run);
  EXPECT_GT(wave_run.pruned_configs, 0u);
}

// Lookahead > 1 lags the frozen incumbent, so the schedule differs from
// wave — but it must still be a pure function of (configs, lookahead):
// bit-identical across worker counts and reruns.
TEST(ParallelEvaluator, PipelineLookaheadIsWorkerCountInvariant) {
  const auto configs = reduced_configs();
  std::vector<TuningRun> runs;
  for (std::size_t workers : {1u, 2u, 8u, 2u}) {  // repeat w=2: rerun check
    ParallelOptions popts;
    popts.workers = workers;
    popts.deterministic = true;
    popts.wave = 8;
    popts.lookahead = 4;
    ParallelEvaluator evaluator(sim_factory(), fast_options(true), popts);
    runs.push_back(evaluator.run(configs));
  }
  expect_identical_runs(runs[0], runs[1]);
  expect_identical_runs(runs[0], runs[2]);
  expect_identical_runs(runs[1], runs[3]);
}

// Deep lookahead weakens pruning (laggier incumbent) but must never change
// which configuration wins.
TEST(ParallelEvaluator, PipelineLookaheadFindsWaveBest) {
  const auto configs = reduced_configs();
  ParallelOptions wave;
  wave.workers = 4;
  wave.deterministic = true;
  wave.scheduler = SchedulerMode::Wave;
  const TuningRun wave_run =
      ParallelEvaluator(sim_factory(), fast_options(true), wave).run(configs);

  ParallelOptions deep;
  deep.workers = 4;
  deep.deterministic = true;
  deep.lookahead = 8;
  const TuningRun deep_run =
      ParallelEvaluator(sim_factory(), fast_options(true), deep).run(configs);
  ASSERT_TRUE(deep_run.best_index.has_value());
  EXPECT_EQ(deep_run.best_config(), wave_run.best_config());
  EXPECT_EQ(deep_run.best_value(), wave_run.best_value());
}

ParallelEvaluator::BackendFactory counting_factory(
    std::shared_ptr<std::atomic<int>> created) {
  return [created] {
    created->fetch_add(1);
    simhw::SimOptions sim;
    sim.seed = 2021;
    return std::make_unique<simhw::SimDgemmBackend>(
        simhw::machine_by_name("gold6148"), sim);
  };
}

// The oversubscription fix: a grid smaller than the worker count must not
// instantiate (or thread) more backends than configurations.
TEST(ParallelEvaluator, SmallGridDoesNotOversubscribe) {
  auto created = std::make_shared<std::atomic<int>>(0);
  ParallelOptions popts;
  popts.workers = 8;
  popts.deterministic = true;
  ParallelEvaluator evaluator(counting_factory(created), fast_options(false),
                              popts);
  const std::vector<Configuration> configs{dgemm_config(512, 512, 128),
                                           dgemm_config(1024, 1024, 128)};
  const TuningRun run = evaluator.run(configs);
  EXPECT_EQ(run.results.size(), 2u);
  EXPECT_LE(created->load(), 2);
}

// Same for racing: the block size (not the population) bounds concurrency.
TEST(ParallelEvaluator, RacingSmallPopulationDoesNotOversubscribe) {
  auto created = std::make_shared<std::atomic<int>>(0);
  TunerOptions options = fast_options(true);
  options.strategy = SearchStrategy::Racing;
  ParallelOptions popts;
  popts.workers = 16;
  ParallelEvaluator evaluator(counting_factory(created), options, popts);
  const std::vector<Configuration> configs{dgemm_config(512, 512, 128),
                                           dgemm_config(1024, 1024, 128),
                                           dgemm_config(2048, 2048, 128)};
  const TuningRun run = evaluator.run(configs);
  EXPECT_EQ(run.results.size(), 3u);
  EXPECT_LE(created->load(), 3);
}

// ParallelOptions::sched_stats opts into scheduler accounting; off by
// default so nothing wall-clock-dependent leaks into ordinary runs.
TEST(ParallelEvaluator, SchedStatsOptIn) {
  const auto configs = reduced_configs();
  ParallelOptions popts;
  popts.workers = 2;
  popts.deterministic = true;
  {
    ParallelEvaluator evaluator(sim_factory(), fast_options(false), popts);
    EXPECT_FALSE(evaluator.run(configs).sched.has_value());
  }
  popts.sched_stats = true;
  ParallelEvaluator evaluator(sim_factory(), fast_options(false), popts);
  const TuningRun run = evaluator.run(configs);
  ASSERT_TRUE(run.sched.has_value());
  EXPECT_EQ(run.sched->mode, "pipeline");
  EXPECT_EQ(run.sched->workers, 2u);
  EXPECT_EQ(run.sched->lookahead, 1u);
  EXPECT_EQ(run.sched->tasks, configs.size());
  EXPECT_GT(run.sched->span_ns, 0u);
}

// A worker exception must surface to the caller, not crash the process.
TEST(ParallelEvaluator, WorkerExceptionPropagates) {
  const auto factory = []() -> std::unique_ptr<Backend> {
    return std::make_unique<simhw::SimDgemmBackend>(
        simhw::machine_by_name("gold6148"), simhw::SimOptions{});
  };
  ParallelOptions popts;
  popts.workers = 2;
  ParallelEvaluator evaluator(factory, fast_options(false), popts);
  // "N" configs are TRIAD-shaped: SimDgemmBackend::begin_invocation throws.
  const std::vector<Configuration> configs{triad_config(1024), triad_config(2048)};
  EXPECT_THROW((void)evaluator.run(configs), std::exception);
}

}  // namespace
}  // namespace rooftune::core
