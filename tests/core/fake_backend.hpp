#pragma once
// Deterministic scripted backend for evaluator/autotuner tests.
//
// The sample stream per (configuration, invocation) is programmable:
// either a fixed value, an explicit sequence (cycled), or a function of
// the iteration index.  Every iteration costs a configurable amount of
// virtual kernel time, and invocation overhead is charged to the clock so
// time accounting can be asserted exactly.

#include <functional>
#include <map>
#include <string>
#include <utility>

#include "core/backend.hpp"
#include "util/clock.hpp"

namespace rooftune::core::testing {

class FakeBackend : public Backend {
 public:
  using Generator = std::function<double(std::uint64_t iteration)>;  // 1-based

  /// Default: every configuration yields `value` per iteration.
  explicit FakeBackend(double value = 100.0, double iteration_cost = 0.01,
                       double invocation_overhead = 0.1)
      : default_value_(value),
        iteration_cost_(iteration_cost),
        invocation_overhead_(invocation_overhead) {}

  /// Program a per-configuration constant value.
  void set_value(const Configuration& config, double value) {
    generators_[config.to_string()] = [value](std::uint64_t) { return value; };
  }

  /// Program a per-configuration generator (receives the 1-based iteration).
  void set_generator(const Configuration& config, Generator generator) {
    generators_[config.to_string()] = std::move(generator);
  }

  void set_iteration_cost(double seconds) { iteration_cost_ = seconds; }

  /// Advertise a per-timer-pair clock cost (the evaluator reads it via
  /// clock().overhead() to decide when to batch iterations).  The scripted
  /// samples themselves stay exact.
  void set_clock_overhead(double seconds) {
    clock_.set_overhead(util::Seconds{seconds});
  }

  void begin_invocation(const Configuration& config,
                        std::uint64_t invocation_index) override {
    current_ = config;
    invocation_index_ = invocation_index;
    iteration_ = 0;
    clock_.advance(util::Seconds{invocation_overhead_});
    ++invocations_started_;
  }

  Sample run_iteration() override {
    ++iteration_;
    ++total_iterations_;
    Sample s;
    const auto it = generators_.find(current_.to_string());
    s.value = (it != generators_.end()) ? it->second(iteration_) : default_value_;
    s.kernel_time = util::Seconds{iteration_cost_};
    clock_.advance(s.kernel_time);
    return s;
  }

  void end_invocation() override { ++invocations_ended_; }

  [[nodiscard]] const util::Clock& clock() const override { return clock_; }
  [[nodiscard]] std::string metric_name() const override { return "widgets/s"; }

  [[nodiscard]] std::uint64_t invocations_started() const { return invocations_started_; }
  [[nodiscard]] std::uint64_t invocations_ended() const { return invocations_ended_; }
  [[nodiscard]] std::uint64_t total_iterations() const { return total_iterations_; }
  [[nodiscard]] std::uint64_t last_invocation_index() const { return invocation_index_; }

 private:
  double default_value_;
  double iteration_cost_;
  double invocation_overhead_;
  std::map<std::string, Generator> generators_;
  Configuration current_;
  std::uint64_t invocation_index_ = 0;
  std::uint64_t iteration_ = 0;
  std::uint64_t invocations_started_ = 0;
  std::uint64_t invocations_ended_ = 0;
  std::uint64_t total_iterations_ = 0;
  util::VirtualClock clock_;
};

}  // namespace rooftune::core::testing
