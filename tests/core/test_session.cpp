#include "core/session.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <stdexcept>

#include "fake_backend.hpp"
#include "simhw/sim_backend.hpp"
#include "core/spaces.hpp"
#include "core/techniques.hpp"

namespace rooftune::core {
namespace {

using testing::FakeBackend;

class SessionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = (std::filesystem::temp_directory_path() /
             ("rooftune_ckpt_" +
              std::to_string(::testing::UnitTest::GetInstance()
                                 ->current_test_info()
                                 ->line())))
                .string();
    std::filesystem::remove(path_);
  }
  void TearDown() override {
    std::filesystem::remove(path_);
    std::filesystem::remove(path_ + ".tmp");
  }

  std::string path_;
};

SearchSpace small_space() {
  SearchSpace space;
  space.add_range(ParameterRange("a", {1, 2, 3, 4}));
  return space;
}

TunerOptions quick() {
  TunerOptions o;
  o.invocations = 2;
  o.iterations = 3;
  return o;
}

void program(FakeBackend& backend) {
  for (std::int64_t a = 1; a <= 4; ++a) {
    backend.set_value(Configuration({{"a", a}}), 10.0 * static_cast<double>(a));
  }
}

TEST_F(SessionTest, FreshRunMatchesAutotunerAndCleansUp) {
  FakeBackend b1, b2;
  program(b1);
  program(b2);
  TuningSession session(small_space(), quick(), path_);
  const auto run = session.run(b1);
  const auto reference = Autotuner(small_space(), quick()).run(b2);

  EXPECT_EQ(session.resumed_configs(), 0u);
  EXPECT_EQ(run.best_config(), reference.best_config());
  EXPECT_DOUBLE_EQ(run.best_value(), reference.best_value());
  EXPECT_EQ(run.results.size(), reference.results.size());
  EXPECT_FALSE(std::filesystem::exists(path_));  // removed on completion
}

// A backend that throws after N invocations — simulates a SLURM kill.
class DyingBackend final : public FakeBackend {
 public:
  explicit DyingBackend(std::uint64_t die_after) : die_after_(die_after) {}

  void begin_invocation(const Configuration& config,
                        std::uint64_t invocation_index) override {
    if (invocations_started() >= die_after_) throw std::runtime_error("killed");
    FakeBackend::begin_invocation(config, invocation_index);
  }

 private:
  std::uint64_t die_after_;
};

TEST_F(SessionTest, ResumesAfterInterruption) {
  // First attempt dies after the 5th invocation (mid-config 3 of 4).
  {
    DyingBackend dying(5);
    program(dying);
    TuningSession session(small_space(), quick(), path_);
    EXPECT_THROW(static_cast<void>(session.run(dying)), std::runtime_error);
    EXPECT_TRUE(std::filesystem::exists(path_));  // partial checkpoint kept
  }

  // Resume with a healthy backend: only the remaining configs run.
  FakeBackend healthy;
  program(healthy);
  TuningSession session(small_space(), quick(), path_);
  const auto run = session.run(healthy);

  EXPECT_EQ(session.resumed_configs(), 2u);  // configs 1 and 2 were complete
  EXPECT_EQ(healthy.invocations_started(), 2u * 2u);  // only configs 3 and 4
  EXPECT_EQ(run.results.size(), 4u);
  EXPECT_EQ(run.best_config().at("a"), 4);
  EXPECT_DOUBLE_EQ(run.best_value(), 40.0);
  // Restored results kept their values.
  EXPECT_DOUBLE_EQ(run.results[0].value(), 10.0);
  EXPECT_DOUBLE_EQ(run.results[1].value(), 20.0);
}

TEST_F(SessionTest, SimulatedSessionMatchesAutotunerExactly) {
  // On the deterministic simulator a checkpointed session must land on
  // exactly the same results as the plain autotuner: per-config noise
  // streams are seeded independently of evaluation history.
  const auto machine = simhw::machine_by_name("gold6132");
  const auto options = technique_options(Technique::CIOuter);
  SearchSpace space;
  space.add_range(ParameterRange::doubling("n", 500, 4));
  space.add_range(ParameterRange("m", {512, 4096}));
  space.add_range(ParameterRange("k", {128, 512}));

  simhw::SimDgemmBackend straight(machine, {});
  const auto reference = Autotuner(space, options).run(straight);

  simhw::SimDgemmBackend sessioned(machine, {});
  TuningSession session(space, options, path_);
  const auto run = session.run(sessioned);

  EXPECT_DOUBLE_EQ(run.best_value(), reference.best_value());
  EXPECT_EQ(run.best_config(), reference.best_config());
  ASSERT_EQ(run.results.size(), reference.results.size());
  for (std::size_t i = 0; i < run.results.size(); ++i) {
    EXPECT_DOUBLE_EQ(run.results[i].value(), reference.results[i].value()) << i;
  }
}

TEST_F(SessionTest, RejectsForeignCheckpoint) {
  // Checkpoint written with different options must not be resumed.
  {
    FakeBackend backend;
    program(backend);
    DyingBackend dying(3);
    program(dying);
    TuningSession session(small_space(), quick(), path_);
    EXPECT_THROW(static_cast<void>(session.run(dying)), std::runtime_error);
  }
  TunerOptions different = quick();
  different.iterations = 99;
  TuningSession session(small_space(), different, path_);
  FakeBackend backend;
  EXPECT_THROW(static_cast<void>(session.run(backend)), std::runtime_error);
}

TEST_F(SessionTest, RejectsCorruptCheckpoint) {
  std::ofstream(path_) << "{ not json";
  TuningSession session(small_space(), quick(), path_);
  FakeBackend backend;
  EXPECT_THROW(static_cast<void>(session.run(backend)), std::invalid_argument);
}

TEST_F(SessionTest, FingerprintSensitivity) {
  const TuningSession a(small_space(), quick(), path_);
  TunerOptions other = quick();
  other.prune_min_count = 100;
  const TuningSession b(small_space(), other, path_);
  EXPECT_NE(a.fingerprint(), b.fingerprint());

  SearchSpace bigger = small_space();
  bigger.add_range(ParameterRange("b", {1, 2}));
  const TuningSession c(bigger, quick(), path_);
  EXPECT_NE(a.fingerprint(), c.fingerprint());

  const TuningSession same(small_space(), quick(), path_ + "x");
  EXPECT_EQ(a.fingerprint(), same.fingerprint());
}

TEST_F(SessionTest, EmptyPathRejected) {
  EXPECT_THROW(TuningSession(small_space(), quick(), ""), std::invalid_argument);
}

TEST_F(SessionTest, PrunedFlagSurvivesRoundTrip) {
  // Run a pruning session that dies right after a pruned config completes,
  // then resume and check pruned bookkeeping.
  auto options = quick();
  options.inner_prune = true;
  options.outer_prune = true;
  options.order = SearchOrder::Reverse;  // best config first => rest pruned
  {
    DyingBackend dying(/*die after 1st config's 1 invocation + 1 more*/ 2);
    program(dying);
    TuningSession session(small_space(), options, path_);
    EXPECT_THROW(static_cast<void>(session.run(dying)), std::runtime_error);
  }
  FakeBackend healthy;
  program(healthy);
  TuningSession session(small_space(), options, path_);
  const auto run = session.run(healthy);
  EXPECT_EQ(run.results.size(), 4u);
  EXPECT_EQ(run.pruned_configs, 3u);  // a=3,2,1 all pruned against a=4
  EXPECT_DOUBLE_EQ(run.best_value(), 40.0);
}

TEST_F(SessionTest, RejectsResumeUnderDifferentEnvironment) {
  auto options = quick();
  options.env_fingerprint = 0x1234u;
  {
    DyingBackend dying(3);
    program(dying);
    TuningSession session(small_space(), options, path_);
    EXPECT_THROW(static_cast<void>(session.run(dying)), std::runtime_error);
  }
  // Identical search, different machine environment: refused with a message
  // naming the fingerprints — not the generic foreign-checkpoint error.
  options.env_fingerprint = 0x5678u;
  {
    TuningSession session(small_space(), options, path_);
    FakeBackend backend;
    program(backend);
    try {
      static_cast<void>(session.run(backend));
      FAIL() << "expected environment mismatch";
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find("environment"), std::string::npos)
          << e.what();
    }
  }
  // Re-established original environment: resume completes.
  options.env_fingerprint = 0x1234u;
  FakeBackend healthy;
  program(healthy);
  TuningSession session(small_space(), options, path_);
  EXPECT_EQ(session.run(healthy).results.size(), 4u);
}

TEST_F(SessionTest, ZeroEnvFingerprintSkipsTheEnvironmentCheck) {
  auto options = quick();
  options.env_fingerprint = 0x1234u;
  {
    DyingBackend dying(3);
    program(dying);
    TuningSession session(small_space(), options, path_);
    EXPECT_THROW(static_cast<void>(session.run(dying)), std::runtime_error);
  }
  // An embedder without telemetry resumes checkpoints from stamped runs.
  options.env_fingerprint = 0;
  FakeBackend healthy;
  program(healthy);
  TuningSession session(small_space(), options, path_);
  EXPECT_EQ(session.run(healthy).results.size(), 4u);
}

}  // namespace
}  // namespace rooftune::core
