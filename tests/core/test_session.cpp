#include "core/session.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <stdexcept>

#include "fake_backend.hpp"
#include "simhw/sim_backend.hpp"
#include "core/spaces.hpp"
#include "core/techniques.hpp"

namespace rooftune::core {
namespace {

using testing::FakeBackend;

class SessionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = (std::filesystem::temp_directory_path() /
             ("rooftune_ckpt_" +
              std::to_string(::testing::UnitTest::GetInstance()
                                 ->current_test_info()
                                 ->line())))
                .string();
    std::filesystem::remove(path_);
  }
  void TearDown() override {
    std::filesystem::remove(path_);
    std::filesystem::remove(path_ + ".tmp");
  }

  std::string path_;
};

SearchSpace small_space() {
  SearchSpace space;
  space.add_range(ParameterRange("a", {1, 2, 3, 4}));
  return space;
}

TunerOptions quick() {
  TunerOptions o;
  o.invocations = 2;
  o.iterations = 3;
  return o;
}

void program(FakeBackend& backend) {
  for (std::int64_t a = 1; a <= 4; ++a) {
    backend.set_value(Configuration({{"a", a}}), 10.0 * static_cast<double>(a));
  }
}

TEST_F(SessionTest, FreshRunMatchesAutotunerAndCleansUp) {
  FakeBackend b1, b2;
  program(b1);
  program(b2);
  TuningSession session(small_space(), quick(), path_);
  const auto run = session.run(b1);
  const auto reference = Autotuner(small_space(), quick()).run(b2);

  EXPECT_EQ(session.resumed_configs(), 0u);
  EXPECT_EQ(run.best_config(), reference.best_config());
  EXPECT_DOUBLE_EQ(run.best_value(), reference.best_value());
  EXPECT_EQ(run.results.size(), reference.results.size());
  EXPECT_FALSE(std::filesystem::exists(path_));  // removed on completion
}

// A backend that throws after N invocations — simulates a SLURM kill.
class DyingBackend final : public FakeBackend {
 public:
  explicit DyingBackend(std::uint64_t die_after) : die_after_(die_after) {}

  void begin_invocation(const Configuration& config,
                        std::uint64_t invocation_index) override {
    if (invocations_started() >= die_after_) throw std::runtime_error("killed");
    FakeBackend::begin_invocation(config, invocation_index);
  }

 private:
  std::uint64_t die_after_;
};

TEST_F(SessionTest, ResumesAfterInterruption) {
  // First attempt dies after the 5th invocation (mid-config 3 of 4).
  {
    DyingBackend dying(5);
    program(dying);
    TuningSession session(small_space(), quick(), path_);
    EXPECT_THROW(static_cast<void>(session.run(dying)), std::runtime_error);
    EXPECT_TRUE(std::filesystem::exists(path_));  // partial checkpoint kept
  }

  // Resume with a healthy backend: only the remaining configs run.
  FakeBackend healthy;
  program(healthy);
  TuningSession session(small_space(), quick(), path_);
  const auto run = session.run(healthy);

  EXPECT_EQ(session.resumed_configs(), 2u);  // configs 1 and 2 were complete
  EXPECT_EQ(healthy.invocations_started(), 2u * 2u);  // only configs 3 and 4
  EXPECT_EQ(run.results.size(), 4u);
  EXPECT_EQ(run.best_config().at("a"), 4);
  EXPECT_DOUBLE_EQ(run.best_value(), 40.0);
  // Restored results kept their values.
  EXPECT_DOUBLE_EQ(run.results[0].value(), 10.0);
  EXPECT_DOUBLE_EQ(run.results[1].value(), 20.0);
}

TEST_F(SessionTest, SimulatedSessionMatchesAutotunerExactly) {
  // On the deterministic simulator a checkpointed session must land on
  // exactly the same results as the plain autotuner: per-config noise
  // streams are seeded independently of evaluation history.
  const auto machine = simhw::machine_by_name("gold6132");
  const auto options = technique_options(Technique::CIOuter);
  SearchSpace space;
  space.add_range(ParameterRange::doubling("n", 500, 4));
  space.add_range(ParameterRange("m", {512, 4096}));
  space.add_range(ParameterRange("k", {128, 512}));

  simhw::SimDgemmBackend straight(machine, {});
  const auto reference = Autotuner(space, options).run(straight);

  simhw::SimDgemmBackend sessioned(machine, {});
  TuningSession session(space, options, path_);
  const auto run = session.run(sessioned);

  EXPECT_DOUBLE_EQ(run.best_value(), reference.best_value());
  EXPECT_EQ(run.best_config(), reference.best_config());
  ASSERT_EQ(run.results.size(), reference.results.size());
  for (std::size_t i = 0; i < run.results.size(); ++i) {
    EXPECT_DOUBLE_EQ(run.results[i].value(), reference.results[i].value()) << i;
  }
}

TEST_F(SessionTest, RejectsForeignCheckpoint) {
  // Checkpoint written with different options must not be resumed.
  {
    FakeBackend backend;
    program(backend);
    DyingBackend dying(3);
    program(dying);
    TuningSession session(small_space(), quick(), path_);
    EXPECT_THROW(static_cast<void>(session.run(dying)), std::runtime_error);
  }
  TunerOptions different = quick();
  different.iterations = 99;
  TuningSession session(small_space(), different, path_);
  FakeBackend backend;
  EXPECT_THROW(static_cast<void>(session.run(backend)), std::runtime_error);
}

TEST_F(SessionTest, RejectsCorruptCheckpoint) {
  std::ofstream(path_) << "{ not json";
  TuningSession session(small_space(), quick(), path_);
  FakeBackend backend;
  EXPECT_THROW(static_cast<void>(session.run(backend)), std::invalid_argument);
}

TEST_F(SessionTest, FingerprintSensitivity) {
  const TuningSession a(small_space(), quick(), path_);
  TunerOptions other = quick();
  other.prune_min_count = 100;
  const TuningSession b(small_space(), other, path_);
  EXPECT_NE(a.fingerprint(), b.fingerprint());

  SearchSpace bigger = small_space();
  bigger.add_range(ParameterRange("b", {1, 2}));
  const TuningSession c(bigger, quick(), path_);
  EXPECT_NE(a.fingerprint(), c.fingerprint());

  const TuningSession same(small_space(), quick(), path_ + "x");
  EXPECT_EQ(a.fingerprint(), same.fingerprint());
}

TEST_F(SessionTest, EmptyPathRejected) {
  EXPECT_THROW(TuningSession(small_space(), quick(), ""), std::invalid_argument);
}

TEST_F(SessionTest, PrunedFlagSurvivesRoundTrip) {
  // Run a pruning session that dies right after a pruned config completes,
  // then resume and check pruned bookkeeping.
  auto options = quick();
  options.inner_prune = true;
  options.outer_prune = true;
  options.order = SearchOrder::Reverse;  // best config first => rest pruned
  {
    DyingBackend dying(/*die after 1st config's 1 invocation + 1 more*/ 2);
    program(dying);
    TuningSession session(small_space(), options, path_);
    EXPECT_THROW(static_cast<void>(session.run(dying)), std::runtime_error);
  }
  FakeBackend healthy;
  program(healthy);
  TuningSession session(small_space(), options, path_);
  const auto run = session.run(healthy);
  EXPECT_EQ(run.results.size(), 4u);
  EXPECT_EQ(run.pruned_configs, 3u);  // a=3,2,1 all pruned against a=4
  EXPECT_DOUBLE_EQ(run.best_value(), 40.0);
}

// --- counter-prune across a resume ---------------------------------------

/// Same shape as the trace-determinism counter space: block one (n = 256)
/// calibrates the analytic OI prediction, block two mixes skip targets with
/// healthy shapes.
SearchSpace counter_space() {
  SearchSpace space;
  space.add_range(ParameterRange("n", {256, 4000}));
  space.add_range(ParameterRange("m", {256, 4000}));
  space.add_range(ParameterRange("k", {1, 2, 4, 8, 64, 128, 192, 256}));
  return space;
}

TunerOptions counter_racing_options() {
  TunerOptions o;
  o.invocations = 3;
  o.iterations = 25;
  o.strategy = SearchStrategy::Racing;
  o.counter_prune = true;
  const simhw::MachineSpec machine = simhw::machine_by_name("gold6148");
  o.counter_peak_gflops = machine.theoretical_flops(1).value;
  o.counter_dram_gbps = machine.theoretical_bandwidth(1).value;
  return o;
}

std::unique_ptr<simhw::SimDgemmBackend> counter_sim() {
  simhw::SimOptions sim;
  sim.seed = 2021;
  sim.counter_model = true;
  return std::make_unique<simhw::SimDgemmBackend>(
      simhw::machine_by_name("gold6148"), sim);
}

/// Forwards everything to a fresh simulated backend but throws after N
/// begin_invocation calls — a SLURM kill mid-race.  (SimDgemmBackend is
/// final, hence the decorator.)
class DyingSimBackend final : public Backend {
 public:
  explicit DyingSimBackend(std::uint64_t die_after)
      : inner_(counter_sim()), die_after_(die_after) {}

  void begin_invocation(const Configuration& config,
                        std::uint64_t invocation_index) override {
    if (started_++ >= die_after_) throw std::runtime_error("killed");
    inner_->begin_invocation(config, invocation_index);
  }
  Sample run_iteration() override { return inner_->run_iteration(); }
  BatchSample run_batch(std::uint64_t count) override {
    return inner_->run_batch(count);
  }
  void end_invocation() override { inner_->end_invocation(); }
  [[nodiscard]] const util::Clock& clock() const override {
    return inner_->clock();
  }
  [[nodiscard]] std::string metric_name() const override {
    return inner_->metric_name();
  }
  [[nodiscard]] std::optional<Backend::InvocationTiming>
  last_invocation_timing() const override {
    return inner_->last_invocation_timing();
  }
  [[nodiscard]] std::optional<CounterSample> last_invocation_counters()
      const override {
    return inner_->last_invocation_counters();
  }
  [[nodiscard]] std::optional<double> analytic_intensity(
      const Configuration& config) const override {
    return inner_->analytic_intensity(config);
  }
  [[nodiscard]] std::optional<double> flops_per_iteration() const override {
    return inner_->flops_per_iteration();
  }
  [[nodiscard]] std::optional<double> bytes_per_iteration() const override {
    return inner_->bytes_per_iteration();
  }

 private:
  std::unique_ptr<simhw::SimDgemmBackend> inner_;
  std::uint64_t die_after_;
  std::uint64_t started_ = 0;
};

// An interrupted counter-prune racing session must resume into exactly the
// run an uninterrupted session produces: same values, same stop reasons —
// including which configurations the counter bound eliminated.  The
// calibration state is recomputed from the restored invocation evidence,
// never persisted, so this holds by construction; the test pins it.
TEST_F(SessionTest, CounterPruneRacingResumesBitIdentically) {
  const std::string ref_path = path_ + ".ref";
  TuningSession reference_session(counter_space(), counter_racing_options(),
                                  ref_path);
  auto ref_backend = counter_sim();
  const TuningRun reference = reference_session.run(*ref_backend);
  std::filesystem::remove(ref_path);

  {
    // Die a few invocations short of the finish line: by then at least one
    // round boundary — and its checkpoint — has passed.
    ASSERT_GT(reference.total_invocations, 8u);
    DyingSimBackend dying(reference.total_invocations - 4);
    TuningSession session(counter_space(), counter_racing_options(), path_);
    EXPECT_THROW(static_cast<void>(session.run(dying)), std::runtime_error);
    EXPECT_TRUE(std::filesystem::exists(path_));
  }
  auto healthy = counter_sim();
  TuningSession session(counter_space(), counter_racing_options(), path_);
  const TuningRun resumed = session.run(*healthy);

  ASSERT_EQ(resumed.results.size(), reference.results.size());
  EXPECT_EQ(resumed.best_config(), reference.best_config());
  EXPECT_DOUBLE_EQ(resumed.best_value(), reference.best_value());
  std::uint64_t counter_stops = 0;
  std::uint64_t skipped = 0;
  for (std::size_t i = 0; i < resumed.results.size(); ++i) {
    EXPECT_EQ(resumed.results[i].config, reference.results[i].config);
    EXPECT_EQ(resumed.results[i].outer_stop, reference.results[i].outer_stop);
    EXPECT_DOUBLE_EQ(resumed.results[i].value(), reference.results[i].value());
    EXPECT_EQ(resumed.results[i].invocations.size(),
              reference.results[i].invocations.size());
    if (resumed.results[i].outer_stop == StopReason::CounterBound) {
      ++counter_stops;
      if (resumed.results[i].invocations.empty()) ++skipped;
    }
  }
  EXPECT_GT(counter_stops, 0u);
  EXPECT_GT(skipped, 0u);  // the pre-invocation path fired and survived
}

// A session killed mid-epoch (between checkpoints, inside a config's
// invocation sequence) must resume into bit-identical results: the resumed
// run and an uninterrupted run agree on every value, stop reason, and the
// invocation counts the incumbent-dependent pruning produced.
TEST_F(SessionTest, MidEpochResumeIsBitIdenticalToUninterruptedRun) {
  auto options = counter_racing_options();
  options.counter_prune = false;  // plain racing; counter path has its own test
  const std::string ref_path = path_ + ".ref";
  TuningSession reference_session(counter_space(), options, ref_path);
  auto ref_backend = counter_sim();
  const TuningRun reference = reference_session.run(*ref_backend);
  std::filesystem::remove(ref_path);

  // Die mid-race, off any round boundary, so the resume replays a partial
  // epoch rather than restarting cleanly at one.
  ASSERT_GT(reference.total_invocations, 11u);
  {
    DyingSimBackend dying(reference.total_invocations / 2 + 1);
    TuningSession session(counter_space(), options, path_);
    EXPECT_THROW(static_cast<void>(session.run(dying)), std::runtime_error);
    EXPECT_TRUE(std::filesystem::exists(path_));
  }
  auto healthy = counter_sim();
  TuningSession session(counter_space(), options, path_);
  const TuningRun resumed = session.run(*healthy);

  ASSERT_EQ(resumed.results.size(), reference.results.size());
  EXPECT_EQ(resumed.best_config(), reference.best_config());
  EXPECT_EQ(resumed.best_value(), reference.best_value());  // bit-equal
  EXPECT_EQ(resumed.total_invocations, reference.total_invocations);
  EXPECT_EQ(resumed.total_iterations, reference.total_iterations);
  for (std::size_t i = 0; i < resumed.results.size(); ++i) {
    EXPECT_EQ(resumed.results[i].config, reference.results[i].config) << i;
    EXPECT_EQ(resumed.results[i].value(), reference.results[i].value()) << i;
    EXPECT_EQ(resumed.results[i].outer_stop, reference.results[i].outer_stop) << i;
    EXPECT_EQ(resumed.results[i].invocations.size(),
              reference.results[i].invocations.size())
        << i;
  }
}

TEST_F(SessionTest, RejectsResumeUnderDifferentEnvironment) {
  auto options = quick();
  options.env_fingerprint = 0x1234u;
  {
    DyingBackend dying(3);
    program(dying);
    TuningSession session(small_space(), options, path_);
    EXPECT_THROW(static_cast<void>(session.run(dying)), std::runtime_error);
  }
  // Identical search, different machine environment: refused with a message
  // naming the fingerprints — not the generic foreign-checkpoint error.
  options.env_fingerprint = 0x5678u;
  {
    TuningSession session(small_space(), options, path_);
    FakeBackend backend;
    program(backend);
    try {
      static_cast<void>(session.run(backend));
      FAIL() << "expected environment mismatch";
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find("environment"), std::string::npos)
          << e.what();
    }
  }
  // Re-established original environment: resume completes.
  options.env_fingerprint = 0x1234u;
  FakeBackend healthy;
  program(healthy);
  TuningSession session(small_space(), options, path_);
  EXPECT_EQ(session.run(healthy).results.size(), 4u);
}

TEST_F(SessionTest, ZeroEnvFingerprintSkipsTheEnvironmentCheck) {
  auto options = quick();
  options.env_fingerprint = 0x1234u;
  {
    DyingBackend dying(3);
    program(dying);
    TuningSession session(small_space(), options, path_);
    EXPECT_THROW(static_cast<void>(session.run(dying)), std::runtime_error);
  }
  // An embedder without telemetry resumes checkpoints from stamped runs.
  options.env_fingerprint = 0;
  FakeBackend healthy;
  program(healthy);
  TuningSession session(small_space(), options, path_);
  EXPECT_EQ(session.run(healthy).results.size(), 4u);
}

}  // namespace
}  // namespace rooftune::core
