// Robustness sweep: extreme but legal TunerOptions must never crash, hang,
// or corrupt the run's bookkeeping invariants.

#include <gtest/gtest.h>

#include "core/autotuner.hpp"
#include "fake_backend.hpp"

namespace rooftune::core {
namespace {

using testing::FakeBackend;

SearchSpace tiny_space() {
  SearchSpace space;
  space.add_range(ParameterRange("a", {1, 2, 3}));
  return space;
}

void check_invariants(const TuningRun& run, std::size_t expected_configs) {
  ASSERT_EQ(run.results.size(), expected_configs);
  ASSERT_TRUE(run.best_index.has_value());
  // Best is the max over all recorded values.
  double max_value = run.results.front().value();
  for (const auto& r : run.results) max_value = std::max(max_value, r.value());
  EXPECT_DOUBLE_EQ(run.best_value(), max_value);
  // Totals are consistent with the per-config records.
  std::uint64_t iterations = 0, invocations = 0, pruned = 0;
  double time = 0.0;
  for (const auto& r : run.results) {
    iterations += r.total_iterations;
    invocations += r.invocations.size();
    if (r.pruned()) ++pruned;
    time += r.total_time.value;
    EXPECT_GT(r.total_iterations, 0u);
    EXPECT_FALSE(r.invocations.empty());
  }
  EXPECT_EQ(run.total_iterations, iterations);
  EXPECT_EQ(run.total_invocations, invocations);
  EXPECT_EQ(run.pruned_configs, pruned);
  EXPECT_NEAR(run.total_time.value, time, 1e-9);
}

TEST(AutotunerRobustness, MinimalBudgets) {
  FakeBackend backend;
  TunerOptions options;
  options.invocations = 1;
  options.iterations = 1;
  check_invariants(Autotuner(tiny_space(), options).run(backend), 3);
}

TEST(AutotunerRobustness, TinyTimeout) {
  FakeBackend backend(100.0, /*iteration_cost=*/1.0);  // every iteration 1 s
  TunerOptions options;
  options.timeout = util::Seconds{1e-9};  // fires after the first sample
  const auto run = Autotuner(tiny_space(), options).run(backend);
  check_invariants(run, 3);
  for (const auto& r : run.results) {
    for (const auto& inv : r.invocations) {
      EXPECT_EQ(inv.iterations, 1u);
      EXPECT_EQ(inv.stop_reason, StopReason::MaxTime);
    }
  }
}

TEST(AutotunerRobustness, HugePruneMinCountNeverExceedsCaps) {
  FakeBackend backend(50.0, 0.001);
  TunerOptions options;
  options.inner_prune = true;
  options.outer_prune = true;
  options.prune_min_count = 1'000'000;  // far beyond the iteration cap
  const auto run = Autotuner(tiny_space(), options).run(backend);
  check_invariants(run, 3);
  for (const auto& r : run.results) {
    EXPECT_LE(r.total_iterations, options.invocations * options.iterations);
  }
}

TEST(AutotunerRobustness, AllStopsEnabledTogether) {
  FakeBackend backend(100.0, 0.001);
  TunerOptions options;
  options.confidence_stop = true;
  options.inner_prune = true;
  options.outer_prune = true;
  options.trend_guard = true;
  options.interval_method = stats::IntervalMethod::StudentT;
  options.order = SearchOrder::Random;
  check_invariants(Autotuner(tiny_space(), options).run(backend), 3);
}

TEST(AutotunerRobustness, ZeroValuedMetric) {
  // A backend that reports 0 everywhere (e.g. a broken counter) must not
  // divide by zero anywhere in the statistics.
  FakeBackend backend(0.0, 0.001);
  TunerOptions options;
  options.confidence_stop = true;
  options.invocations = 2;
  options.iterations = 5;
  const auto run = Autotuner(tiny_space(), options).run(backend);
  EXPECT_DOUBLE_EQ(run.best_value(), 0.0);
}

TEST(AutotunerRobustness, IdenticalValuesWithPruning) {
  // All configs equal: the upper-bound condition compares mean + 0 margin
  // against an equal incumbent — strict inequality means no pruning.
  FakeBackend backend(42.0, 0.001);
  TunerOptions options;
  options.inner_prune = true;
  options.outer_prune = true;
  const auto run = Autotuner(tiny_space(), options).run(backend);
  EXPECT_EQ(run.pruned_configs, 0u);
  check_invariants(run, 3);
}

TEST(AutotunerRobustness, SingleConfigSpace) {
  FakeBackend backend;
  SearchSpace space;
  space.add_range(ParameterRange("only", {7}));
  TunerOptions options;
  options.inner_prune = true;
  options.outer_prune = true;
  const auto run = Autotuner(space, options).run(backend);
  check_invariants(run, 1);
  EXPECT_EQ(run.best_config().at("only"), 7);
}

TEST(AutotunerRobustness, RandomBudgetZero) {
  FakeBackend backend;
  const auto run = Autotuner(tiny_space(), {}).run_random(backend, 0);
  EXPECT_TRUE(run.results.empty());
  EXPECT_FALSE(run.best_index.has_value());
}

}  // namespace
}  // namespace rooftune::core
