#include "core/config.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace rooftune::core {
namespace {

TEST(Configuration, DgemmFactory) {
  const auto c = dgemm_config(1000, 4096, 128);
  EXPECT_EQ(c.size(), 3u);
  EXPECT_EQ(c.at("n"), 1000);
  EXPECT_EQ(c.at("m"), 4096);
  EXPECT_EQ(c.at("k"), 128);
  EXPECT_TRUE(c.has("n"));
  EXPECT_FALSE(c.has("N"));
}

TEST(Configuration, TriadFactory) {
  const auto c = triad_config(1 << 20);
  EXPECT_EQ(c.at("N"), 1 << 20);
  EXPECT_EQ(c.size(), 1u);
}

TEST(Configuration, AtThrowsForUnknown) {
  const auto c = dgemm_config(1, 2, 3);
  EXPECT_THROW(static_cast<void>(c.at("x")), std::out_of_range);
}

TEST(Configuration, ToStringFormat) {
  EXPECT_EQ(dgemm_config(1000, 4096, 128).to_string(), "n=1000,m=4096,k=128");
  EXPECT_EQ(Configuration{}.to_string(), "");
}

TEST(Configuration, EqualityAndOrdering) {
  const auto a = dgemm_config(1, 2, 3);
  const auto b = dgemm_config(1, 2, 3);
  const auto c = dgemm_config(1, 2, 4);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_LT(a, c);
}

TEST(Configuration, HashStableAndDiscriminating) {
  const auto a = dgemm_config(1000, 4096, 128);
  EXPECT_EQ(a.hash(), dgemm_config(1000, 4096, 128).hash());
  EXPECT_NE(a.hash(), dgemm_config(1000, 4096, 256).hash());
  EXPECT_NE(a.hash(), dgemm_config(4096, 1000, 128).hash());  // order matters
  EXPECT_NE(a.hash(), triad_config(1000).hash());
}

TEST(Configuration, EmptyConfiguration) {
  Configuration c;
  EXPECT_TRUE(c.empty());
  EXPECT_EQ(c.size(), 0u);
}

}  // namespace
}  // namespace rooftune::core
