#include <gtest/gtest.h>

#include <stdexcept>

#include "core/autotuner.hpp"
#include "fake_backend.hpp"

namespace rooftune::core {
namespace {

using testing::FakeBackend;

SearchSpace grid_space() {
  SearchSpace space;
  space.add_range(ParameterRange("x", {0, 1, 2, 3, 4}));
  space.add_range(ParameterRange("y", {0, 1, 2, 3, 4}));
  return space;
}

/// Separable concave surface: value = 100 - (x-3)^2 - (y-1)^2; argmax (3,1).
void program_concave(FakeBackend& backend) {
  for (std::int64_t x = 0; x <= 4; ++x) {
    for (std::int64_t y = 0; y <= 4; ++y) {
      const double v = 100.0 - static_cast<double>((x - 3) * (x - 3)) -
                       static_cast<double>((y - 1) * (y - 1));
      backend.set_value(Configuration({{"x", x}, {"y", y}}), v);
    }
  }
}

TunerOptions quick() {
  TunerOptions o;
  o.invocations = 1;
  o.iterations = 3;
  return o;
}

TEST(CoordinateDescent, FindsSeparableOptimum) {
  FakeBackend backend;
  program_concave(backend);
  const Autotuner tuner(grid_space(), quick());
  const auto run = tuner.run_coordinate_descent(backend);
  EXPECT_EQ(run.best_config().at("x"), 3);
  EXPECT_EQ(run.best_config().at("y"), 1);
  EXPECT_DOUBLE_EQ(run.best_value(), 100.0);
}

TEST(CoordinateDescent, EvaluatesFewerConfigsThanExhaustive) {
  FakeBackend cd_backend, ex_backend;
  program_concave(cd_backend);
  program_concave(ex_backend);
  const Autotuner tuner(grid_space(), quick());
  const auto cd = tuner.run_coordinate_descent(cd_backend);
  const auto ex = tuner.run(ex_backend);
  EXPECT_LT(cd.results.size(), ex.results.size());
  EXPECT_EQ(cd.best_value(), ex.best_value());
}

TEST(CoordinateDescent, NeverEvaluatesSameConfigTwice) {
  FakeBackend backend;
  program_concave(backend);
  const Autotuner tuner(grid_space(), quick());
  const auto run = tuner.run_coordinate_descent(backend);
  for (std::size_t i = 0; i < run.results.size(); ++i) {
    for (std::size_t j = i + 1; j < run.results.size(); ++j) {
      EXPECT_NE(run.results[i].config, run.results[j].config);
    }
  }
}

TEST(CoordinateDescent, ExplicitStartPoint) {
  FakeBackend backend;
  program_concave(backend);
  const Autotuner tuner(grid_space(), quick());
  const auto run = tuner.run_coordinate_descent(
      backend, Configuration({{"x", 0}, {"y", 4}}));
  EXPECT_EQ(run.best_config().at("x"), 3);  // still reaches the optimum
  EXPECT_EQ(run.best_config().at("y"), 1);
}

TEST(CoordinateDescent, StartNotInRangeThrows) {
  FakeBackend backend;
  const Autotuner tuner(grid_space(), quick());
  EXPECT_THROW(static_cast<void>(tuner.run_coordinate_descent(
                   backend, Configuration({{"x", 99}, {"y", 0}}))),
               std::invalid_argument);
}

TEST(CoordinateDescent, CanBeTrappedByNonSeparableSurface) {
  // A deliberately coupled surface with a local optimum at (0,0) and the
  // global one at (4,4), zero elsewhere: coordinate moves from (2,2) can't
  // see either diagonal corner improvement... but single-axis sweeps DO
  // evaluate (2,4)/(4,2), which are zero, so the search settles locally.
  FakeBackend backend(0.0);
  backend.set_value(Configuration({{"x", 0}, {"y", 0}}), 50.0);
  backend.set_value(Configuration({{"x", 4}, {"y", 4}}), 100.0);
  backend.set_value(Configuration({{"x", 2}, {"y", 2}}), 10.0);
  const Autotuner tuner(grid_space(), quick());
  const auto run = tuner.run_coordinate_descent(
      backend, Configuration({{"x", 2}, {"y", 2}}));
  // It finds *a* mode, not necessarily the global one — the limitation
  // exhaustive search avoids (§IV-C).
  EXPECT_GE(run.best_value(), 10.0);
  EXPECT_LT(run.results.size(), 25u);
}

TEST(CoordinateDescent, RespectsConstraints) {
  FakeBackend backend;
  program_concave(backend);
  SearchSpace space = grid_space();
  space.add_constraint({"x!=3", [](const Configuration& c) { return c.at("x") != 3; }});
  const Autotuner tuner(space, quick());
  const auto run = tuner.run_coordinate_descent(
      backend, Configuration({{"x", 2}, {"y", 2}}));
  for (const auto& r : run.results) EXPECT_NE(r.config.at("x"), 3);
  EXPECT_EQ(run.best_config().at("x"), 2);  // best admissible x
  EXPECT_EQ(run.best_config().at("y"), 1);
}

TEST(CoordinateDescent, EmptySpaceYieldsEmptyRun) {
  FakeBackend backend;
  const Autotuner tuner(SearchSpace{}, quick());
  const auto run = tuner.run_coordinate_descent(backend);
  EXPECT_TRUE(run.results.empty());
  EXPECT_FALSE(run.best_index.has_value());
}

}  // namespace
}  // namespace rooftune::core
