#include "core/surrogate.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <memory>
#include <stdexcept>
#include <vector>

#include "core/autotuner.hpp"
#include "core/parallel_evaluator.hpp"
#include "core/session.hpp"
#include "core/spaces.hpp"
#include "core/techniques.hpp"
#include "simhw/machine.hpp"
#include "simhw/sim_backend.hpp"
#include "trace/journal.hpp"

namespace rooftune::core {
namespace {

TunerOptions quick_options() {
  TunerOptions options;
  options.invocations = 3;
  options.iterations = 25;
  options.inner_prune = true;
  options.outer_prune = true;
  options.surrogate_seed_budget = 16;
  options.surrogate_confirm_top = 4;
  options.strategy = SearchStrategy::Surrogate;
  return options;
}

/// The paper-default schedule the CLI runs (c+i+o technique), with the
/// surrogate knobs validated against the enlarged grid.
TunerOptions cli_default_surrogate() {
  TunerOptions base;
  base.invocations = 10;
  base.iterations = 200;
  base.timeout = util::Seconds{10.0};
  auto options = technique_options(Technique::CIOuter, base, 0, 2);
  options.random_seed = 2021;  // CLI --seed default; seeds the LHS batch
  options.racing_min_invocations = 3;
  options.strategy = SearchStrategy::Surrogate;
  options.surrogate_seed_budget = 128;
  options.surrogate_confirm_top = 160;
  return options;
}

std::unique_ptr<simhw::SimDgemmBackend> sim_backend() {
  simhw::SimOptions sim;
  sim.seed = 2021;
  return std::make_unique<simhw::SimDgemmBackend>(
      simhw::machine_by_name("2650v4"), sim);
}

// ---------------------------------------------------------------------------
// SurrogateModel

// The feature basis contains every term of a 2-D quadratic, so a ridge fit
// with tiny lambda must reproduce a noiseless quadratic target near-exactly
// — including on points that were not in the training set.
TEST(SurrogateModel, RecoversNoiselessQuadratic) {
  SearchSpace space;
  space.add_range(ParameterRange("a", {0, 1, 2, 3, 4, 5, 6, 7}));
  space.add_range(ParameterRange("b", {0, 1, 2, 3, 4, 5, 6, 7}));

  const auto target = [](double x, double y) {
    // Crosses zero on the grid, which pins the fit to raw scale.
    return 2.0 + 3.0 * x - 2.0 * y - 4.0 * (x - 0.6) * (x - 0.6) +
           1.5 * x * y - 2.5 * y * y;
  };
  std::vector<std::uint64_t> train;
  std::vector<double> values;
  for (std::uint64_t i = 0; i < 64; i += 3) {  // sparse training subset
    const Configuration c = space.config_at(i);
    train.push_back(i);
    values.push_back(target(static_cast<double>(c.at("a")) / 7.0,
                            static_cast<double>(c.at("b")) / 7.0));
  }

  const SurrogateModel model = SurrogateModel::fit(space, train, values);
  EXPECT_FALSE(model.log_scale());  // targets cross zero -> raw-scale fit
  EXPECT_GT(model.train_r2(), 0.999);
  for (std::uint64_t i = 0; i < 64; ++i) {
    const Configuration c = space.config_at(i);
    const double expected = target(static_cast<double>(c.at("a")) / 7.0,
                                   static_cast<double>(c.at("b")) / 7.0);
    EXPECT_NEAR(model.predict(space, i), expected, 1e-4) << i;
  }
}

TEST(SurrogateModel, PositiveTargetsFitInLogSpace) {
  SearchSpace space;
  space.add_range(ParameterRange("a", {1, 2, 4, 8, 16, 32, 64, 128}));
  std::vector<std::uint64_t> train{0, 1, 2, 3, 4, 5, 6, 7};
  std::vector<double> values;
  for (const auto i : train) {
    const double x = static_cast<double>(i) / 7.0;
    values.push_back(100.0 * std::exp(-2.0 * (x - 0.5) * (x - 0.5)));
  }
  const SurrogateModel model = SurrogateModel::fit(space, train, values);
  EXPECT_TRUE(model.log_scale());
  EXPECT_GT(model.train_r2(), 0.999);  // Gaussian is exactly log-quadratic
  for (std::size_t i = 0; i < train.size(); ++i) {
    EXPECT_NEAR(model.predict(space, train[i]), values[i],
                1e-4 * values[i]) << i;
  }
}

TEST(SurrogateModel, StateRoundTripPreservesPredictions) {
  SearchSpace space;
  space.add_range(ParameterRange("a", {1, 2, 3, 4, 5}));
  const std::vector<std::uint64_t> train{0, 1, 2, 3, 4};
  const std::vector<double> values{1.0, 4.0, 9.0, 6.0, 2.0};
  const SurrogateModel model = SurrogateModel::fit(space, train, values);
  const SurrogateModel restored = SurrogateModel::from_state(
      model.coefficients(), model.log_scale(), model.train_r2());
  for (const auto i : train) {
    EXPECT_EQ(model.predict(space, i), restored.predict(space, i));
  }
}

// ---------------------------------------------------------------------------
// SurrogateScheduler

TEST(SurrogateScheduler, RejectsBadOptions) {
  TunerOptions zero_seed = quick_options();
  zero_seed.surrogate_seed_budget = 0;
  EXPECT_THROW(SurrogateScheduler{zero_seed}, std::invalid_argument);
  TunerOptions zero_inv = quick_options();
  zero_inv.invocations = 0;
  EXPECT_THROW(SurrogateScheduler{zero_inv}, std::invalid_argument);
}

TEST(SurrogateScheduler, SeedBatchIsCappedAtSpaceCardinality) {
  SearchSpace space;
  space.add_range(ParameterRange("a", {1, 2, 3}));
  const SurrogateScheduler scheduler(quick_options());
  const auto state = scheduler.init(space);
  EXPECT_EQ(state.seed_indices.size(), 3u);
}

// The headline validation (ISSUE acceptance criterion): on the ~116x
// enlarged DGEMM grid the surrogate must land on the exhaustive optimum
// while spending >= 10x fewer kernel invocations.
TEST(SurrogateScheduler, EnlargedGridMatchesExhaustiveOptimumAtTenthCost) {
  const SearchSpace space = dgemm_scaled_space(6);
  ASSERT_EQ(space.cardinality(), 11191u);

  auto exhaustive_options = cli_default_surrogate();
  exhaustive_options.strategy = SearchStrategy::Exhaustive;
  auto exhaustive_backend = sim_backend();
  const TuningRun exhaustive =
      Autotuner(space, exhaustive_options).run(*exhaustive_backend);

  auto surrogate_backend = sim_backend();
  const TuningRun surrogate =
      Autotuner(space, cli_default_surrogate()).run(*surrogate_backend);

  ASSERT_TRUE(surrogate.best_index.has_value());
  EXPECT_EQ(surrogate.best_config(), exhaustive.best_config());
  EXPECT_GE(exhaustive.total_invocations, 10 * surrogate.total_invocations)
      << "exhaustive " << exhaustive.total_invocations << " vs surrogate "
      << surrogate.total_invocations;
  // The whole point: evaluation count decoupled from |space|.
  EXPECT_LT(surrogate.results.size(), space.cardinality() / 10);
}

TEST(SurrogateScheduler, RerunIsBitIdentical) {
  const SearchSpace space = dgemm_scaled_space(2);
  auto b1 = sim_backend();
  auto b2 = sim_backend();
  const TuningRun r1 = Autotuner(space, quick_options()).run(*b1);
  const TuningRun r2 = Autotuner(space, quick_options()).run(*b2);
  ASSERT_EQ(r1.results.size(), r2.results.size());
  EXPECT_EQ(r1.best_index, r2.best_index);
  EXPECT_EQ(r1.total_invocations, r2.total_invocations);
  for (std::size_t i = 0; i < r1.results.size(); ++i) {
    EXPECT_EQ(r1.results[i].config, r2.results[i].config) << i;
    EXPECT_EQ(r1.results[i].value(), r2.results[i].value()) << i;
  }
}

// Trace journals must be byte-identical across reruns AND across 1/2/8
// deterministic workers — the surrogate seed phase always runs in fixed
// waves, so the fitted model (and everything downstream) is a pure function
// of the seed batch.
TEST(SurrogateScheduler, JournalIsByteIdenticalAcrossWorkerCounts) {
  const SearchSpace space = dgemm_scaled_space(2);
  const auto journal_for = [&](std::size_t workers) {
    trace::TraceJournal journal;
    journal.begin_run({"dgemm", "GFLOP/s", "surrogate"});
    TunerOptions options = quick_options();
    options.trace = &journal;
    ParallelOptions popts;
    popts.workers = workers;
    popts.deterministic = true;
    ParallelEvaluator evaluator(
        [] {
          simhw::SimOptions sim;
          sim.seed = 2021;
          return std::make_unique<simhw::SimDgemmBackend>(
              simhw::machine_by_name("2650v4"), sim);
        },
        options, popts);
    const TuningRun run = evaluator.run(space);
    journal.finish_run({run.results.size(), run.pruned_configs,
                        run.total_invocations, run.total_iterations,
                        run.best_index.has_value()
                            ? std::optional<double>(run.best_value())
                            : std::nullopt});
    return journal.str();
  };

  const std::string one = journal_for(1);
  EXPECT_FALSE(one.empty());
  EXPECT_NE(one.find("surrogate-fit"), std::string::npos);
  EXPECT_NE(one.find("prune-batch"), std::string::npos);
  EXPECT_EQ(one, journal_for(1));  // rerun
  EXPECT_EQ(one, journal_for(2));
  EXPECT_EQ(one, journal_for(8));
}

// The parallel surrogate freezes the pruning incumbent per wave, so its
// per-config statistics are a pure function of the schedule — the whole
// TuningRun must be bit-identical for any worker count (the serial
// Autotuner driver may differ: its incumbent updates config-by-config,
// changing which invocations the pruner truncates).
TEST(SurrogateScheduler, ParallelRunIsBitIdenticalAcrossWorkerCounts) {
  const SearchSpace space = dgemm_scaled_space(2);
  const auto run_with = [&](std::size_t workers) {
    ParallelOptions popts;
    popts.workers = workers;
    ParallelEvaluator evaluator(
        [] {
          simhw::SimOptions sim;
          sim.seed = 2021;
          return std::make_unique<simhw::SimDgemmBackend>(
              simhw::machine_by_name("2650v4"), sim);
        },
        quick_options(), popts);
    return evaluator.run(space);
  };
  const TuningRun one = run_with(1);
  const TuningRun four = run_with(4);
  ASSERT_TRUE(one.best_index.has_value());
  ASSERT_EQ(one.results.size(), four.results.size());
  EXPECT_EQ(one.best_index, four.best_index);
  EXPECT_EQ(one.total_invocations, four.total_invocations);
  EXPECT_EQ(one.total_iterations, four.total_iterations);
  for (std::size_t i = 0; i < one.results.size(); ++i) {
    EXPECT_EQ(one.results[i].config, four.results[i].config) << i;
    EXPECT_EQ(one.results[i].value(), four.results[i].value()) << i;
  }
}

TEST(SurrogateScheduler, RunVectorOverloadIsRejected) {
  ParallelEvaluator evaluator(
      [] {
        return std::make_unique<simhw::SimDgemmBackend>(
            simhw::machine_by_name("2650v4"), simhw::SimOptions{});
      },
      quick_options());
  EXPECT_THROW((void)evaluator.run(std::vector<Configuration>{
                   dgemm_config(512, 512, 64)}),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Checkpoint / resume

/// Forwards to a real simulated backend but throws after `die_after`
/// invocation starts — a deterministic stand-in for a SLURM kill.
class DyingSimBackend final : public Backend {
 public:
  DyingSimBackend(std::unique_ptr<Backend> inner, std::uint64_t die_after)
      : inner_(std::move(inner)), die_after_(die_after) {}

  void begin_invocation(const Configuration& config,
                        std::uint64_t invocation_index) override {
    if (started_ >= die_after_) throw std::runtime_error("killed");
    ++started_;
    inner_->begin_invocation(config, invocation_index);
  }
  Sample run_iteration() override { return inner_->run_iteration(); }
  BatchSample run_batch(std::uint64_t count) override {
    return inner_->run_batch(count);
  }
  void end_invocation() override { inner_->end_invocation(); }
  [[nodiscard]] const util::Clock& clock() const override {
    return inner_->clock();
  }
  [[nodiscard]] std::optional<InvocationTiming> last_invocation_timing()
      const override {
    return inner_->last_invocation_timing();
  }
  [[nodiscard]] std::optional<double> flops_per_iteration() const override {
    return inner_->flops_per_iteration();
  }
  [[nodiscard]] std::optional<double> bytes_per_iteration() const override {
    return inner_->bytes_per_iteration();
  }
  [[nodiscard]] std::string metric_name() const override {
    return inner_->metric_name();
  }
  [[nodiscard]] std::uint64_t started() const { return started_; }

 private:
  std::unique_ptr<Backend> inner_;
  std::uint64_t die_after_;
  std::uint64_t started_ = 0;
};

class SurrogateSessionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = (std::filesystem::temp_directory_path() /
             ("rooftune_surrogate_ckpt_" +
              std::to_string(::testing::UnitTest::GetInstance()
                                 ->current_test_info()
                                 ->line())))
                .string();
    std::filesystem::remove(path_);
  }
  void TearDown() override {
    std::filesystem::remove(path_);
    std::filesystem::remove(path_ + ".tmp");
  }

  /// Uninterrupted reference, plus the invocation count of its seed phase
  /// (the first seed_budget results of the merged run).
  TuningRun reference_run(const SearchSpace& space) {
    auto backend = sim_backend();
    return Autotuner(space, quick_options()).run(*backend);
  }

  void expect_bit_identical(const TuningRun& a, const TuningRun& b) {
    ASSERT_EQ(a.results.size(), b.results.size());
    EXPECT_EQ(a.best_index, b.best_index);
    EXPECT_EQ(a.total_invocations, b.total_invocations);
    EXPECT_EQ(a.total_iterations, b.total_iterations);
    EXPECT_EQ(a.pruned_configs, b.pruned_configs);
    EXPECT_EQ(a.total_time.value, b.total_time.value);  // bit-equal doubles
    for (std::size_t i = 0; i < a.results.size(); ++i) {
      EXPECT_EQ(a.results[i].config, b.results[i].config) << i;
      EXPECT_EQ(a.results[i].value(), b.results[i].value()) << i;
      EXPECT_EQ(a.results[i].invocations.size(), b.results[i].invocations.size())
          << i;
      EXPECT_EQ(a.results[i].total_iterations, b.results[i].total_iterations)
          << i;
    }
  }

  /// Kill the session after `die_after` invocations, then resume with a
  /// healthy backend and demand bit-identity with the uninterrupted run.
  void run_interrupted_and_compare(const SearchSpace& space,
                                   std::uint64_t die_after) {
    const TuningRun reference = reference_run(space);
    ASSERT_GT(reference.total_invocations, die_after)
        << "die_after must interrupt the run";

    {
      DyingSimBackend dying(sim_backend(), die_after);
      TuningSession session(space, quick_options(), path_);
      EXPECT_THROW(static_cast<void>(session.run(dying)), std::runtime_error);
      EXPECT_TRUE(std::filesystem::exists(path_));
    }

    auto healthy = sim_backend();
    TuningSession session(space, quick_options(), path_);
    const TuningRun resumed = session.run(*healthy);
    EXPECT_GT(session.resumed_configs(), 0u);
    expect_bit_identical(reference, resumed);
    EXPECT_FALSE(std::filesystem::exists(path_));
  }

  std::string path_;
};

TEST_F(SurrogateSessionTest, FreshSessionMatchesAutotuner) {
  const SearchSpace space = dgemm_scaled_space(2);
  const TuningRun reference = reference_run(space);
  auto backend = sim_backend();
  TuningSession session(space, quick_options(), path_);
  const TuningRun run = session.run(*backend);
  EXPECT_EQ(session.resumed_configs(), 0u);
  expect_bit_identical(reference, run);
}

TEST_F(SurrogateSessionTest, ResumesMidSeedBitIdentical) {
  const SearchSpace space = dgemm_scaled_space(2);
  // 16 seed configs x up to 3 invocations: invocation 10 is mid-seed.
  run_interrupted_and_compare(space, 10);
}

TEST_F(SurrogateSessionTest, ResumesMidConfirmBitIdentical) {
  const SearchSpace space = dgemm_scaled_space(2);
  const TuningRun reference = reference_run(space);
  // Seed invocations = everything before the confirm entries at the tail.
  std::uint64_t seed_invocations = 0;
  const std::size_t seeds = quick_options().surrogate_seed_budget;
  ASSERT_GT(reference.results.size(), seeds);
  for (std::size_t i = 0; i < seeds; ++i) {
    seed_invocations += reference.results[i].invocations.size();
  }
  ASSERT_GT(reference.total_invocations, seed_invocations + 2);
  run_interrupted_and_compare(space, seed_invocations + 2);
}

TEST_F(SurrogateSessionTest, ConfirmResumeDoesNotRefit) {
  const SearchSpace space = dgemm_scaled_space(2);
  const TuningRun reference = reference_run(space);
  std::uint64_t seed_invocations = 0;
  for (std::size_t i = 0; i < quick_options().surrogate_seed_budget; ++i) {
    seed_invocations += reference.results[i].invocations.size();
  }
  {
    DyingSimBackend dying(sim_backend(), seed_invocations + 1);
    TuningSession session(space, quick_options(), path_);
    EXPECT_THROW(static_cast<void>(session.run(dying)), std::runtime_error);
  }
  // The resumed run may only execute confirm-phase work: every seed
  // invocation must come from the checkpoint, not the backend.  (The one
  // confirm invocation the dying run completed may re-run — confirm
  // checkpoints land on block boundaries — so bound, don't pin.)
  DyingSimBackend counting(sim_backend(), ~0ull);
  TuningSession session(space, quick_options(), path_);
  const TuningRun resumed = session.run(counting);
  expect_bit_identical(reference, resumed);
  EXPECT_GT(counting.started(), 0u);
  EXPECT_LE(counting.started(),
            reference.total_invocations - seed_invocations);
}

TEST_F(SurrogateSessionTest, SurrogateKnobsChangeTheFingerprint) {
  const SearchSpace space = dgemm_scaled_space(2);
  const TuningSession a(space, quick_options(), path_);
  TunerOptions other = quick_options();
  other.surrogate_seed_budget = 17;
  const TuningSession b(space, other, path_);
  EXPECT_NE(a.fingerprint(), b.fingerprint());

  TunerOptions seeded = quick_options();
  seeded.random_seed = 99;  // moves the LHS seed batch -> different search
  const TuningSession c(space, seeded, path_);
  EXPECT_NE(a.fingerprint(), c.fingerprint());

  // Exhaustive fingerprints must not move with the surrogate knobs (or the
  // seed, in Forward order): existing checkpoints stay resumable.
  TunerOptions ex = quick_options();
  ex.strategy = SearchStrategy::Exhaustive;
  TunerOptions ex_other = ex;
  ex_other.surrogate_seed_budget = 17;
  ex_other.random_seed = 99;
  EXPECT_EQ(TuningSession(space, ex, path_).fingerprint(),
            TuningSession(space, ex_other, path_).fingerprint());
}

}  // namespace
}  // namespace rooftune::core
