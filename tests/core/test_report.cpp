#include "core/report.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "fake_backend.hpp"
#include "util/csv.hpp"

namespace rooftune::core {
namespace {

using testing::FakeBackend;

TuningRun sample_run() {
  SearchSpace space;
  space.add_range(ParameterRange("a", {1, 2, 3}));
  FakeBackend backend;
  for (std::int64_t a = 1; a <= 3; ++a) {
    backend.set_value(Configuration({{"a", a}}), 10.0 * static_cast<double>(a));
  }
  TunerOptions options;
  options.invocations = 2;
  options.iterations = 4;
  return Autotuner(space, options).run(backend);
}

TEST(Report, JsonContainsBestAndAllConfigs) {
  const auto run = sample_run();
  const std::string json = to_json(run, "dgemm", "GFLOP/s");
  EXPECT_NE(json.find("\"benchmark\":\"dgemm\""), std::string::npos);
  EXPECT_NE(json.find("\"metric\":\"GFLOP/s\""), std::string::npos);
  EXPECT_NE(json.find("\"best\":{"), std::string::npos);
  EXPECT_NE(json.find("\"value\":30"), std::string::npos);
  // Three configuration entries.
  std::size_t entries = 0;
  for (std::size_t pos = json.find("\"outer_stop\""); pos != std::string::npos;
       pos = json.find("\"outer_stop\"", pos + 1)) {
    ++entries;
  }
  EXPECT_EQ(entries, 3u);
}

TEST(Report, JsonBalancedBraces) {
  const std::string json = to_json(sample_run(), "x", "y");
  int depth = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < json.size(); ++i) {
    const char c = json[i];
    if (c == '"' && (i == 0 || json[i - 1] != '\\')) in_string = !in_string;
    if (in_string) continue;
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    EXPECT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

TEST(Report, CsvHasHeaderAndRowPerConfig) {
  const auto run = sample_run();
  std::ostringstream out;
  write_csv(out, run);
  const auto rows = util::parse_csv(out.str());
  ASSERT_EQ(rows.size(), 4u);  // header + 3 configs
  EXPECT_EQ(rows[0][0], "a");
  EXPECT_EQ(rows[0][1], "value");
  EXPECT_EQ(rows[1][0], "1");
  EXPECT_EQ(rows[1][1], "10");
  EXPECT_EQ(rows[3][1], "30");
}

TEST(Report, SummaryMentionsBestAndTotals) {
  const auto run = sample_run();
  const std::string s = summary(run, "GFLOP/s");
  EXPECT_NE(s.find("a=3"), std::string::npos);
  EXPECT_NE(s.find("30.00 GFLOP/s"), std::string::npos);
  EXPECT_NE(s.find("3 configs"), std::string::npos);
}

TEST(Report, EmptyRunSummary) {
  TuningRun run;
  EXPECT_EQ(summary(run, "x"), "no configurations evaluated");
  const std::string json = to_json(run, "b", "m");
  EXPECT_NE(json.find("\"best\":null"), std::string::npos);
}

}  // namespace
}  // namespace rooftune::core
