#include "core/techniques.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace rooftune::core {
namespace {

TEST(Techniques, PaperRowNames) {
  EXPECT_EQ(technique_name(Technique::Default), "Default");
  EXPECT_EQ(technique_name(Technique::Single), "Single");
  EXPECT_EQ(technique_name(Technique::HandTunedTime), "Hand-tuned Time");
  EXPECT_EQ(technique_name(Technique::HandTunedAccuracy), "Hand-tuned Accuracy");
  EXPECT_EQ(technique_name(Technique::Confidence), "Confidence");
  EXPECT_EQ(technique_name(Technique::CInner), "C+Inner");
  EXPECT_EQ(technique_name(Technique::CInnerReverse), "C+Inner+R");
  EXPECT_EQ(technique_name(Technique::CIOuter), "C+I+Outer");
  EXPECT_EQ(technique_name(Technique::CIOuterReverse), "C+I+O+R");
}

TEST(Techniques, AllTechniquesMatchesTableRowCount) {
  EXPECT_EQ(all_techniques().size(), 9u);  // rows of Tables VIII-XI
  EXPECT_EQ(automatic_techniques().size(), 7u);
}

TEST(Techniques, DefaultIsFixedSampleSize) {
  const auto o = technique_options(Technique::Default);
  EXPECT_EQ(o.invocations, 10u);     // Table I
  EXPECT_EQ(o.iterations, 200u);     // Table I
  EXPECT_DOUBLE_EQ(o.timeout.value, 10.0);
  EXPECT_FALSE(o.confidence_stop);   // Table I "Error 100" = disabled
  EXPECT_FALSE(o.inner_prune);
  EXPECT_FALSE(o.outer_prune);
  EXPECT_EQ(o.order, SearchOrder::Forward);
}

TEST(Techniques, SingleIsOneByOne) {
  const auto o = technique_options(Technique::Single);
  EXPECT_EQ(o.invocations, 1u);
  EXPECT_EQ(o.iterations, 1u);
}

TEST(Techniques, ConfidenceEnablesCondition3Only) {
  const auto o = technique_options(Technique::Confidence);
  EXPECT_TRUE(o.confidence_stop);
  EXPECT_FALSE(o.inner_prune);
  EXPECT_FALSE(o.outer_prune);
  EXPECT_DOUBLE_EQ(o.confidence, 0.99);
  EXPECT_DOUBLE_EQ(o.tolerance, 0.01);
}

TEST(Techniques, StackedOptimizations) {
  const auto ci = technique_options(Technique::CInner);
  EXPECT_TRUE(ci.confidence_stop);
  EXPECT_TRUE(ci.inner_prune);
  EXPECT_FALSE(ci.outer_prune);

  const auto cio = technique_options(Technique::CIOuter);
  EXPECT_TRUE(cio.inner_prune);
  EXPECT_TRUE(cio.outer_prune);

  EXPECT_EQ(technique_options(Technique::CInnerReverse).order, SearchOrder::Reverse);
  EXPECT_EQ(technique_options(Technique::CIOuterReverse).order, SearchOrder::Reverse);
  EXPECT_TRUE(technique_options(Technique::CIOuterReverse).outer_prune);
}

TEST(Techniques, MinCountPassesThrough) {
  const auto o = technique_options(Technique::CInner, {}, 0, 100);
  EXPECT_EQ(o.prune_min_count, 100u);  // the 2695 v4 fix
}

TEST(Techniques, HandTunedRequireIterationCount) {
  EXPECT_THROW(technique_options(Technique::HandTunedTime), std::invalid_argument);
  EXPECT_THROW(technique_options(Technique::HandTunedAccuracy), std::invalid_argument);
  const auto o = technique_options(Technique::HandTunedTime, {}, 30);
  EXPECT_EQ(o.invocations, 1u);
  EXPECT_EQ(o.iterations, 30u);
  EXPECT_FALSE(o.confidence_stop);
}

TEST(Techniques, BaseOptionsArePreserved) {
  TunerOptions base;
  base.timeout = util::Seconds{5.0};
  base.invocations = 4;
  const auto o = technique_options(Technique::Confidence, base);
  EXPECT_DOUBLE_EQ(o.timeout.value, 5.0);
  EXPECT_EQ(o.invocations, 4u);
}

}  // namespace
}  // namespace rooftune::core
