#include "core/racing.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/autotuner.hpp"
#include "core/parallel_evaluator.hpp"
#include "core/session.hpp"
#include "core/spaces.hpp"
#include "core/techniques.hpp"
#include "fake_backend.hpp"
#include "simhw/machine.hpp"
#include "simhw/sim_backend.hpp"

namespace rooftune::core {
namespace {

using testing::FakeBackend;

TunerOptions racing_options() {
  TunerOptions options = technique_options(Technique::CIOuter);
  options.strategy = SearchStrategy::Racing;
  return options;
}

// Bitwise comparison of two racing runs: identical best and per-config
// statistics.  Clock spans are compared to round-off instead: a backend's
// virtual clock accumulates at a different base depending on which
// invocations it ran before, so `end - start` can differ in the last ulp
// between worker assignments even though every sample is bit-equal.
void expect_identical_runs(const TuningRun& lhs, const TuningRun& rhs) {
  ASSERT_EQ(lhs.results.size(), rhs.results.size());
  EXPECT_EQ(lhs.best_index, rhs.best_index);
  EXPECT_EQ(lhs.total_iterations, rhs.total_iterations);
  EXPECT_EQ(lhs.total_invocations, rhs.total_invocations);
  EXPECT_EQ(lhs.pruned_configs, rhs.pruned_configs);
  EXPECT_NEAR(lhs.total_time.value, rhs.total_time.value,
              1e-9 * lhs.total_time.value);
  for (std::size_t i = 0; i < lhs.results.size(); ++i) {
    const ConfigResult& a = lhs.results[i];
    const ConfigResult& b = rhs.results[i];
    EXPECT_EQ(a.config, b.config) << i;
    EXPECT_EQ(a.value(), b.value()) << i;  // bit-equal doubles
    EXPECT_EQ(a.total_iterations, b.total_iterations) << i;
    EXPECT_NEAR(a.total_time.value, b.total_time.value,
                1e-9 * a.total_time.value + 1e-15)
        << i;
    EXPECT_EQ(a.outer_stop, b.outer_stop) << i;
    ASSERT_EQ(a.invocations.size(), b.invocations.size()) << i;
    for (std::size_t j = 0; j < a.invocations.size(); ++j) {
      EXPECT_EQ(a.invocations[j].mean(), b.invocations[j].mean()) << i;
      EXPECT_EQ(a.invocations[j].iterations, b.invocations[j].iterations) << i;
      EXPECT_EQ(a.invocations[j].stop_reason, b.invocations[j].stop_reason) << i;
    }
  }
}

TEST(RacingScheduler, RejectsZeroInvocations) {
  TunerOptions options;
  options.invocations = 0;
  EXPECT_THROW(RacingScheduler{options}, std::invalid_argument);
}

TEST(RacingScheduler, RejectsExtraOuterStops) {
  TunerOptions options;
  options.extra_outer_stops.push_back(
      [] { return std::shared_ptr<const StopCondition>(); });
  EXPECT_THROW(RacingScheduler{options}, std::invalid_argument);
}

TEST(RacingScheduler, EliminatesClearLosersAfterOneRound) {
  // Four configurations with distinct zero-variance values: the first round
  // already carries a degenerate iteration-level CI, so every loser dies
  // after exactly one sample batch while the leader runs to its cap.
  FakeBackend backend;
  std::vector<Configuration> configs;
  for (std::int64_t a = 1; a <= 4; ++a) {
    configs.emplace_back(Configuration({{"a", a}}));
    backend.set_value(configs.back(), 10.0 * static_cast<double>(a));
  }

  TunerOptions options;
  options.invocations = 5;
  options.iterations = 8;
  const TuningRun run = RacingScheduler(options).run(backend, configs);

  ASSERT_EQ(run.results.size(), 4u);
  EXPECT_EQ(run.best_config().at("a"), 4);
  EXPECT_DOUBLE_EQ(run.best_value(), 40.0);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(run.results[i].invocations.size(), 1u) << i;
    EXPECT_EQ(run.results[i].outer_stop, StopReason::PrunedByBest) << i;
  }
  EXPECT_EQ(run.results[3].invocations.size(), 5u);
  EXPECT_EQ(run.results[3].outer_stop, StopReason::MaxCount);
  EXPECT_EQ(run.total_invocations, 3u + 5u);
}

TEST(RacingScheduler, WarmupTrendDefersRoundOneElimination) {
  // a=1 ramps upward within its first batch (warm-up not settled): round-one
  // elimination must skip it even though its mean is hopeless.  Once it has
  // racing_min_invocations identical invocation means, the invocation-level
  // CI removes it.  a=2 is flat and hopeless: gone after round one.
  FakeBackend backend;
  const Configuration ramp({{"a", 1}});
  const Configuration flat({{"a", 2}});
  const Configuration leader({{"a", 3}});
  backend.set_generator(ramp, [](std::uint64_t iteration) {
    return 50.0 + 10.0 * static_cast<double>(iteration);
  });
  backend.set_value(flat, 30.0);
  backend.set_value(leader, 200.0);

  TunerOptions options;
  options.invocations = 5;
  options.iterations = 8;
  const TuningRun run =
      RacingScheduler(options).run(backend, {ramp, flat, leader});

  ASSERT_EQ(run.results.size(), 3u);
  EXPECT_TRUE(run.results[0].invocations.front().trend_rising);
  EXPECT_EQ(run.results[0].invocations.size(), options.racing_min_invocations);
  EXPECT_EQ(run.results[0].outer_stop, StopReason::PrunedByBest);
  EXPECT_FALSE(run.results[1].invocations.front().trend_rising);
  EXPECT_EQ(run.results[1].invocations.size(), 1u);
  EXPECT_EQ(run.best_config().at("a"), 3);
}

// Acceptance: on the simulated 96-config DGEMM space, racing must land on
// the same optimum as the sequential C+I+O technique with at least 2x fewer
// total iterations and less total tuning time.  (These are the machines
// where C+I+O itself finds a stable optimum; 2695v4's pathological warm-up
// trips both schedules equally — see docs/racing.md.)
TEST(Racing, MatchesExhaustiveCIOWithFarFewerIterations) {
  for (const char* name : {"2650v4", "gold6148", "gold6132"}) {
    const auto machine = simhw::machine_by_name(name);
    simhw::SimOptions sim;
    sim.sockets_used = 1;

    simhw::SimDgemmBackend sequential_backend(machine, sim);
    const TuningRun sequential =
        Autotuner(dgemm_reduced_space(), technique_options(Technique::CIOuter))
            .run(sequential_backend);

    simhw::SimDgemmBackend racing_backend(machine, sim);
    const TuningRun racing =
        Autotuner(dgemm_reduced_space(), racing_options()).run(racing_backend);

    EXPECT_EQ(racing.best_config(), sequential.best_config()) << name;
    EXPECT_LE(2 * racing.total_iterations, sequential.total_iterations) << name;
    EXPECT_LT(racing.total_time.value, sequential.total_time.value) << name;
  }
}

// Acceptance: racing under the ParallelEvaluator's wave mode is
// bit-identical for 1, 2, and 8 workers — and matches the serial scheduler.
TEST(Racing, ParallelWaveIsWorkerCountInvariant) {
  const auto factory = [] {
    simhw::SimOptions sim;
    sim.sockets_used = 1;
    return std::make_unique<simhw::SimDgemmBackend>(
        simhw::machine_by_name("gold6132"), sim);
  };
  const auto configs = dgemm_reduced_space().enumerate();

  auto serial_backend = factory();
  const TuningRun serial =
      Autotuner(dgemm_reduced_space(), racing_options()).run(*serial_backend);

  for (const std::size_t workers : {1u, 2u, 8u}) {
    ParallelOptions popts;
    popts.workers = workers;
    ParallelEvaluator evaluator(factory, racing_options(), popts);
    const TuningRun parallel = evaluator.run(configs);
    expect_identical_runs(serial, parallel);
  }
}

// --- Checkpoint round-tripping of partial racing state -----------------

class RacingSessionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = (std::filesystem::temp_directory_path() /
             ("rooftune_racing_ckpt_" +
              std::to_string(::testing::UnitTest::GetInstance()
                                 ->current_test_info()
                                 ->line())))
                .string();
    std::filesystem::remove(path_);
  }
  void TearDown() override {
    std::filesystem::remove(path_);
    std::filesystem::remove(path_ + ".tmp");
  }

  std::string path_;
};

// 24 configurations: round one spans two racing blocks (kBlock = 16), so an
// interruption inside the second block exercises a genuine mid-round resume.
SearchSpace session_space() {
  SearchSpace space;
  space.add_range(ParameterRange::doubling("n", 500, 4));
  space.add_range(ParameterRange("m", {512, 2048, 4096}));
  space.add_range(ParameterRange("k", {128, 512}));
  return space;
}

// Simulated backend that dies after a fixed number of invocation launches —
// the racing analogue of test_session.cpp's DyingBackend.
class DyingSimBackend final : public Backend {
 public:
  DyingSimBackend(const simhw::MachineSpec& machine, std::uint64_t die_after)
      : inner_(machine, {}), die_after_(die_after) {}

  void begin_invocation(const Configuration& config,
                        std::uint64_t invocation_index) override {
    if (started_ >= die_after_) throw std::runtime_error("killed");
    ++started_;
    inner_.begin_invocation(config, invocation_index);
  }
  Sample run_iteration() override { return inner_.run_iteration(); }
  BatchSample run_batch(std::uint64_t count) override {
    return inner_.run_batch(count);
  }
  void end_invocation() override { inner_.end_invocation(); }
  [[nodiscard]] const util::Clock& clock() const override {
    return inner_.clock();
  }
  [[nodiscard]] std::string metric_name() const override {
    return inner_.metric_name();
  }

 private:
  simhw::SimDgemmBackend inner_;
  std::uint64_t die_after_;
  std::uint64_t started_ = 0;
};

TEST_F(RacingSessionTest, UninterruptedSessionMatchesSchedulerExactly) {
  const auto machine = simhw::machine_by_name("gold6132");

  simhw::SimDgemmBackend straight(machine, {});
  const TuningRun reference =
      Autotuner(session_space(), racing_options()).run(straight);

  simhw::SimDgemmBackend sessioned(machine, {});
  TuningSession session(session_space(), racing_options(), path_);
  const TuningRun run = session.run(sessioned);

  EXPECT_EQ(session.resumed_configs(), 0u);
  EXPECT_FALSE(std::filesystem::exists(path_));  // removed on completion
  expect_identical_runs(reference, run);
}

TEST_F(RacingSessionTest, ResumesMidRoundBitIdentical) {
  const auto machine = simhw::machine_by_name("gold6132");

  simhw::SimDgemmBackend straight(machine, {});
  const TuningRun reference =
      Autotuner(session_space(), racing_options()).run(straight);

  // Die inside round one's second block: the surviving checkpoint holds the
  // first block's 16 single-invocation entries.
  {
    DyingSimBackend dying(machine, /*die_after=*/18);
    TuningSession session(session_space(), racing_options(), path_);
    EXPECT_THROW(static_cast<void>(session.run(dying)), std::runtime_error);
    EXPECT_TRUE(std::filesystem::exists(path_));
  }

  simhw::SimDgemmBackend healthy(machine, {});
  TuningSession session(session_space(), racing_options(), path_);
  const TuningRun resumed = session.run(healthy);

  EXPECT_EQ(session.resumed_configs(), RacingScheduler::kBlock);
  EXPECT_FALSE(std::filesystem::exists(path_));
  expect_identical_runs(reference, resumed);
}

TEST_F(RacingSessionTest, RejectsCheckpointFromDifferentStrategy) {
  // A racing checkpoint must not resume an exhaustive session (and vice
  // versa): strategy is part of the fingerprint.
  {
    DyingSimBackend dying(simhw::machine_by_name("gold6132"), 18);
    TuningSession session(session_space(), racing_options(), path_);
    EXPECT_THROW(static_cast<void>(session.run(dying)), std::runtime_error);
  }
  TuningSession exhaustive(session_space(),
                           technique_options(Technique::CIOuter), path_);
  simhw::SimDgemmBackend backend(simhw::machine_by_name("gold6132"), {});
  EXPECT_THROW(static_cast<void>(exhaustive.run(backend)), std::runtime_error);
}

}  // namespace
}  // namespace rooftune::core
