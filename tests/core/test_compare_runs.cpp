#include <gtest/gtest.h>

#include "core/analysis.hpp"
#include "core/spaces.hpp"
#include "core/techniques.hpp"
#include "fake_backend.hpp"
#include "simhw/sim_backend.hpp"

namespace rooftune::core {
namespace {

using testing::FakeBackend;

TuningRun sim_run(const char* machine, std::uint64_t seed,
                  Technique technique = Technique::Default) {
  simhw::SimOptions sim;
  sim.seed = seed;
  simhw::SimDgemmBackend backend(simhw::machine_by_name(machine), sim);
  SearchSpace space;
  space.add_range(ParameterRange::doubling("n", 500, 4));
  space.add_range(ParameterRange("m", {512, 4096}));
  space.add_range(ParameterRange("k", {128, 1024}));
  return Autotuner(space, technique_options(technique)).run(backend);
}

TEST(CompareRuns, SameMachineDifferentSeedsMostlyIndistinguishable) {
  const auto a = sim_run("gold6132", 1);
  const auto b = sim_run("gold6132", 2);
  const auto cmp = compare_runs(a, b, 0.99);
  EXPECT_EQ(cmp.compared, 16u);
  EXPECT_EQ(cmp.skipped, 0u);
  // Two noise realizations of the same machine: at most a couple of
  // marginal calls.
  EXPECT_LE(cmp.significant.size(), 3u);
  EXPECT_TRUE(cmp.best_config_matches);
  EXPECT_NEAR(cmp.best_ratio, 1.0, 0.02);
}

TEST(CompareRuns, DifferentMachinesDifferEverywhere) {
  const auto a = sim_run("gold6148", 1);
  const auto b = sim_run("2650v4", 1);
  const auto cmp = compare_runs(a, b, 0.95);
  EXPECT_EQ(cmp.compared, 16u);
  // gold6148 is ~3.5x faster: every configuration is significantly higher.
  EXPECT_EQ(cmp.significant.size(), 16u);
  for (const auto& delta : cmp.significant) {
    EXPECT_EQ(delta.verdict, stats::Comparison::AGreater);
    EXPECT_GT(delta.ratio, 1.5);
  }
}

TEST(CompareRuns, PrunedConfigsSkipped) {
  const auto a = sim_run("gold6132", 3, Technique::Default);
  const auto b = sim_run("gold6132", 3, Technique::CIOuter);  // mostly pruned
  const auto cmp = compare_runs(a, b);
  EXPECT_GT(cmp.skipped, 0u);
  EXPECT_EQ(cmp.compared + cmp.skipped, 16u);
}

TEST(CompareRuns, MissingConfigsCountAsSkipped) {
  FakeBackend backend(100.0, 0.001);
  SearchSpace big, small;
  big.add_range(ParameterRange("a", {1, 2, 3}));
  small.add_range(ParameterRange("a", {1}));
  TunerOptions options;
  options.invocations = 3;
  options.iterations = 3;
  const auto a = Autotuner(big, options).run(backend);
  const auto b = Autotuner(small, options).run(backend);
  const auto cmp = compare_runs(a, b);
  EXPECT_EQ(cmp.compared, 1u);
  EXPECT_EQ(cmp.skipped, 2u);
}

TEST(CompareRuns, DetectsInjectedRegression) {
  // Same "machine", but run B is 10 % slower on one configuration — the
  // comparison must flag exactly that config.
  FakeBackend fast(100.0, 0.001);
  FakeBackend slow(100.0, 0.001);
  SearchSpace space;
  space.add_range(ParameterRange("a", {1, 2, 3}));
  slow.set_value(Configuration({{"a", 2}}), 90.0);

  TunerOptions options;
  options.invocations = 4;
  options.iterations = 4;
  const auto a = Autotuner(space, options).run(fast);
  const auto b = Autotuner(space, options).run(slow);
  const auto cmp = compare_runs(a, b);
  ASSERT_EQ(cmp.significant.size(), 1u);
  EXPECT_EQ(cmp.significant[0].config.at("a"), 2);
  EXPECT_EQ(cmp.significant[0].verdict, stats::Comparison::AGreater);
  EXPECT_NEAR(cmp.significant[0].ratio, 100.0 / 90.0, 1e-9);
}

}  // namespace
}  // namespace rooftune::core
