#include "core/search_space.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <stdexcept>

namespace rooftune::core {
namespace {

TEST(ParameterRange, PowersOfTwo) {
  const auto r = ParameterRange::powers_of_two("k", 2, 2048);
  EXPECT_EQ(r.size(), 11u);  // 2,4,...,2048 — paper Eq. 8's k axis
  EXPECT_EQ(r.values().front(), 2);
  EXPECT_EQ(r.values().back(), 2048);
}

TEST(ParameterRange, PowersOfTwoValidation) {
  EXPECT_THROW(ParameterRange::powers_of_two("x", 3, 8), std::invalid_argument);
  EXPECT_THROW(ParameterRange::powers_of_two("x", 8, 6), std::invalid_argument);
  EXPECT_THROW(ParameterRange::powers_of_two("x", 0, 8), std::invalid_argument);
}

TEST(ParameterRange, Doubling) {
  const auto r = ParameterRange::doubling("n", 500, 4);
  EXPECT_EQ(r.values(), (std::vector<std::int64_t>{500, 1000, 2000, 4000}));
}

TEST(ParameterRange, RejectsEmpty) {
  EXPECT_THROW(ParameterRange("x", {}), std::invalid_argument);
  EXPECT_THROW(ParameterRange::doubling("x", 0, 3), std::invalid_argument);
}

TEST(SearchSpace, CartesianCardinality) {
  SearchSpace space;
  space.add_range(ParameterRange("a", {1, 2, 3}));
  space.add_range(ParameterRange("b", {10, 20}));
  EXPECT_EQ(space.cartesian_cardinality(), 6u);
  EXPECT_EQ(space.cardinality(), 6u);
  EXPECT_EQ(space.enumerate().size(), 6u);
}

TEST(SearchSpace, EnumerationOrderLastRangeFastest) {
  SearchSpace space;
  space.add_range(ParameterRange("a", {1, 2}));
  space.add_range(ParameterRange("b", {10, 20}));
  const auto configs = space.enumerate();
  ASSERT_EQ(configs.size(), 4u);
  EXPECT_EQ(configs[0].at("a"), 1);
  EXPECT_EQ(configs[0].at("b"), 10);
  EXPECT_EQ(configs[1].at("b"), 20);
  EXPECT_EQ(configs[2].at("a"), 2);
}

TEST(SearchSpace, ConstraintsFilter) {
  SearchSpace space;
  space.add_range(ParameterRange("a", {1, 2, 3}));
  space.add_range(ParameterRange("b", {1, 2, 3}));
  space.add_constraint({"a==b", [](const Configuration& c) {
                          return c.at("a") == c.at("b");
                        }});
  EXPECT_EQ(space.cardinality(), 3u);
  for (const auto& c : space.enumerate()) EXPECT_EQ(c.at("a"), c.at("b"));
  EXPECT_TRUE(space.admits(Configuration({{"a", 2}, {"b", 2}})));
  EXPECT_FALSE(space.admits(Configuration({{"a", 1}, {"b", 2}})));
}

TEST(SearchSpace, MultipleConstraintsAllMustHold) {
  SearchSpace space;
  space.add_range(ParameterRange("a", {1, 2, 3, 4}));
  space.add_constraint({"even", [](const Configuration& c) { return c.at("a") % 2 == 0; }});
  space.add_constraint({">2", [](const Configuration& c) { return c.at("a") > 2; }});
  const auto configs = space.enumerate();
  ASSERT_EQ(configs.size(), 1u);
  EXPECT_EQ(configs[0].at("a"), 4);
}

TEST(SearchSpace, EmptySpace) {
  SearchSpace space;
  EXPECT_TRUE(space.enumerate().empty());
}

TEST(Ordered, ReverseFlips) {
  SearchSpace space;
  space.add_range(ParameterRange("a", {1, 2, 3}));
  const auto fwd = ordered(space.enumerate(), SearchOrder::Forward);
  const auto rev = ordered(space.enumerate(), SearchOrder::Reverse);
  ASSERT_EQ(rev.size(), 3u);
  EXPECT_EQ(rev.front(), fwd.back());
  EXPECT_EQ(rev.back(), fwd.front());
}

TEST(Ordered, RandomIsSeededPermutation) {
  SearchSpace space;
  space.add_range(ParameterRange("a", {1, 2, 3, 4, 5, 6, 7, 8}));
  const auto base = space.enumerate();
  const auto r1 = ordered(base, SearchOrder::Random, 42);
  const auto r2 = ordered(base, SearchOrder::Random, 42);
  const auto r3 = ordered(base, SearchOrder::Random, 43);
  EXPECT_EQ(r1, r2);
  EXPECT_NE(r1, r3);
  // Same multiset of elements.
  auto sorted1 = r1, sorted_base = base;
  std::sort(sorted1.begin(), sorted1.end());
  std::sort(sorted_base.begin(), sorted_base.end());
  EXPECT_EQ(sorted1, sorted_base);
}

TEST(Ordered, Names) {
  EXPECT_STREQ(to_string(SearchOrder::Forward), "forward");
  EXPECT_STREQ(to_string(SearchOrder::Reverse), "reverse");
  EXPECT_STREQ(to_string(SearchOrder::Random), "random");
}

}  // namespace
}  // namespace rooftune::core
