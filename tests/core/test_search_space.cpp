#include "core/search_space.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <stdexcept>

namespace rooftune::core {
namespace {

TEST(ParameterRange, PowersOfTwo) {
  const auto r = ParameterRange::powers_of_two("k", 2, 2048);
  EXPECT_EQ(r.size(), 11u);  // 2,4,...,2048 — paper Eq. 8's k axis
  EXPECT_EQ(r.values().front(), 2);
  EXPECT_EQ(r.values().back(), 2048);
}

TEST(ParameterRange, PowersOfTwoValidation) {
  EXPECT_THROW(ParameterRange::powers_of_two("x", 3, 8), std::invalid_argument);
  EXPECT_THROW(ParameterRange::powers_of_two("x", 8, 6), std::invalid_argument);
  EXPECT_THROW(ParameterRange::powers_of_two("x", 0, 8), std::invalid_argument);
}

TEST(ParameterRange, Doubling) {
  const auto r = ParameterRange::doubling("n", 500, 4);
  EXPECT_EQ(r.values(), (std::vector<std::int64_t>{500, 1000, 2000, 4000}));
}

TEST(ParameterRange, RejectsEmpty) {
  EXPECT_THROW(ParameterRange("x", {}), std::invalid_argument);
  EXPECT_THROW(ParameterRange::doubling("x", 0, 3), std::invalid_argument);
}

TEST(SearchSpace, CartesianCardinality) {
  SearchSpace space;
  space.add_range(ParameterRange("a", {1, 2, 3}));
  space.add_range(ParameterRange("b", {10, 20}));
  EXPECT_EQ(space.cartesian_cardinality(), 6u);
  EXPECT_EQ(space.cardinality(), 6u);
  EXPECT_EQ(space.enumerate().size(), 6u);
}

TEST(SearchSpace, EnumerationOrderLastRangeFastest) {
  SearchSpace space;
  space.add_range(ParameterRange("a", {1, 2}));
  space.add_range(ParameterRange("b", {10, 20}));
  const auto configs = space.enumerate();
  ASSERT_EQ(configs.size(), 4u);
  EXPECT_EQ(configs[0].at("a"), 1);
  EXPECT_EQ(configs[0].at("b"), 10);
  EXPECT_EQ(configs[1].at("b"), 20);
  EXPECT_EQ(configs[2].at("a"), 2);
}

TEST(SearchSpace, ConstraintsFilter) {
  SearchSpace space;
  space.add_range(ParameterRange("a", {1, 2, 3}));
  space.add_range(ParameterRange("b", {1, 2, 3}));
  space.add_constraint({"a==b", [](const Configuration& c) {
                          return c.at("a") == c.at("b");
                        }});
  EXPECT_EQ(space.cardinality(), 3u);
  for (const auto& c : space.enumerate()) EXPECT_EQ(c.at("a"), c.at("b"));
  EXPECT_TRUE(space.admits(Configuration({{"a", 2}, {"b", 2}})));
  EXPECT_FALSE(space.admits(Configuration({{"a", 1}, {"b", 2}})));
}

TEST(SearchSpace, MultipleConstraintsAllMustHold) {
  SearchSpace space;
  space.add_range(ParameterRange("a", {1, 2, 3, 4}));
  space.add_constraint({"even", [](const Configuration& c) { return c.at("a") % 2 == 0; }});
  space.add_constraint({">2", [](const Configuration& c) { return c.at("a") > 2; }});
  const auto configs = space.enumerate();
  ASSERT_EQ(configs.size(), 1u);
  EXPECT_EQ(configs[0].at("a"), 4);
}

TEST(SearchSpace, EmptySpace) {
  SearchSpace space;
  EXPECT_TRUE(space.enumerate().empty());
}

TEST(Ordered, ReverseFlips) {
  SearchSpace space;
  space.add_range(ParameterRange("a", {1, 2, 3}));
  const auto fwd = ordered(space.enumerate(), SearchOrder::Forward);
  const auto rev = ordered(space.enumerate(), SearchOrder::Reverse);
  ASSERT_EQ(rev.size(), 3u);
  EXPECT_EQ(rev.front(), fwd.back());
  EXPECT_EQ(rev.back(), fwd.front());
}

TEST(Ordered, RandomIsSeededPermutation) {
  SearchSpace space;
  space.add_range(ParameterRange("a", {1, 2, 3, 4, 5, 6, 7, 8}));
  const auto base = space.enumerate();
  const auto r1 = ordered(base, SearchOrder::Random, 42);
  const auto r2 = ordered(base, SearchOrder::Random, 42);
  const auto r3 = ordered(base, SearchOrder::Random, 43);
  EXPECT_EQ(r1, r2);
  EXPECT_NE(r1, r3);
  // Same multiset of elements.
  auto sorted1 = r1, sorted_base = base;
  std::sort(sorted1.begin(), sorted1.end());
  std::sort(sorted_base.begin(), sorted_base.end());
  EXPECT_EQ(sorted1, sorted_base);
}

TEST(Ordered, Names) {
  EXPECT_STREQ(to_string(SearchOrder::Forward), "forward");
  EXPECT_STREQ(to_string(SearchOrder::Reverse), "reverse");
  EXPECT_STREQ(to_string(SearchOrder::Random), "random");
}

SearchSpace two_axis_space() {
  SearchSpace space;
  space.add_range(ParameterRange("a", {1, 2, 3}));
  space.add_range(ParameterRange("b", {10, 20}));
  return space;
}

// config_at must walk the exact sequence enumerate() produces (last range
// fastest), and index_of must invert it at every point.
TEST(SearchSpace, IndexBijectionMatchesEnumeration) {
  const SearchSpace space = two_axis_space();
  const auto configs = space.enumerate();
  ASSERT_EQ(configs.size(), space.cartesian_cardinality());
  for (std::uint64_t i = 0; i < configs.size(); ++i) {
    EXPECT_EQ(space.config_at(i), configs[i]) << i;
    EXPECT_EQ(space.index_of(configs[i]), i) << i;
  }
  EXPECT_THROW((void)space.config_at(space.cartesian_cardinality()),
               std::out_of_range);
}

TEST(SearchSpace, IndexOfNamesTheProblem) {
  const SearchSpace space = two_axis_space();
  try {
    (void)space.index_of(Configuration({{"a", 1}, {"b", 15}}));
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("b"), std::string::npos) << what;
    EXPECT_NE(what.find("15"), std::string::npos) << what;
  }
  EXPECT_THROW((void)space.index_of(Configuration({{"a", 1}})),
               std::invalid_argument);
}

TEST(SearchSpace, ConstraintSpecFiltersLikePredicate) {
  SearchSpace space;
  space.add_range(ParameterRange("m", {512, 1024, 2048}));
  space.add_range(ParameterRange("n", {512, 1024, 2048}));
  space.add_constraint(ConstraintSpec{"m", ConstraintSpec::Op::Eq, "n", 0});
  EXPECT_TRUE(space.has_constraints());
  EXPECT_EQ(space.cardinality(), 3u);
  for (const auto& c : space.enumerate()) EXPECT_EQ(c.at("m"), c.at("n"));

  SearchSpace literal;
  literal.add_range(ParameterRange("k", {64, 128, 256, 512}));
  literal.add_constraint(ConstraintSpec{"k", ConstraintSpec::Op::Le, "", 128});
  EXPECT_EQ(literal.cardinality(), 2u);
}

TEST(SearchSpace, RequireAdmissibleNamesConstraintAndConfig) {
  SearchSpace space;
  space.add_range(ParameterRange("m", {512, 1024}));
  space.add_range(ParameterRange("n", {512, 1024}));
  space.add_constraint(ConstraintSpec{"m", ConstraintSpec::Op::Eq, "n", 0});
  EXPECT_NO_THROW(space.require_admissible(Configuration({{"m", 512}, {"n", 512}})));
  try {
    space.require_admissible(Configuration({{"m", 512}, {"n", 1024}}));
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("m==n"), std::string::npos) << what;
    EXPECT_NE(what.find("n=1024"), std::string::npos) << what;
  }
}

// The serialization satellite: a JSON round trip must preserve the
// enumeration order AND the index mapping exactly — checkpoints and trace
// ordinals recorded against the original space stay valid against the
// deserialized one.
TEST(SearchSpace, JsonRoundTripPreservesOrderAndIndexMapping) {
  SearchSpace space;
  space.add_range(ParameterRange("n", {500, 1000, 2000, 4000}));
  space.add_range(ParameterRange("m", {512, 1024, 2048}));
  space.add_range(ParameterRange("k", {64, 128}));
  space.add_constraint(ConstraintSpec{"m", ConstraintSpec::Op::Ge, "k", 0});
  space.add_constraint(ConstraintSpec{"n", ConstraintSpec::Op::Ne, "", 1000});

  const SearchSpace restored = SearchSpace::from_json(space.to_json());
  EXPECT_EQ(restored.enumerate(), space.enumerate());
  EXPECT_EQ(restored.cardinality(), space.cardinality());
  ASSERT_EQ(restored.constraint_specs().size(), 2u);
  for (std::uint64_t i = 0; i < space.cartesian_cardinality(); ++i) {
    const Configuration config = space.config_at(i);
    EXPECT_EQ(restored.config_at(i), config) << i;
    EXPECT_EQ(restored.index_of(config), i) << i;
  }
}

TEST(SearchSpace, ToJsonRejectsOpaquePredicates) {
  SearchSpace space;
  space.add_range(ParameterRange("a", {1, 2}));
  space.add_constraint({"odd", [](const Configuration& c) { return c.at("a") % 2 == 1; }});
  EXPECT_THROW((void)space.to_json(), std::invalid_argument);
}

TEST(SearchSpace, SampleIndicesDeterministicAndDistinct) {
  SearchSpace space;
  space.add_range(ParameterRange("a", {1, 2, 3, 4, 5, 6, 7, 8}));
  space.add_range(ParameterRange("b", {1, 2, 3, 4, 5, 6, 7, 8}));
  const auto s1 = space.sample_indices(12, 7);
  const auto s2 = space.sample_indices(12, 7);
  const auto s3 = space.sample_indices(12, 8);
  EXPECT_EQ(s1, s2);
  EXPECT_NE(s1, s3);
  EXPECT_EQ(s1.size(), 12u);
  EXPECT_EQ(std::set<std::uint64_t>(s1.begin(), s1.end()).size(), s1.size());
  // Budget >= cardinality degenerates to every admissible index.
  EXPECT_EQ(space.sample_indices(1000, 7).size(), 64u);
}

TEST(SearchSpace, SampleIndicesRespectConstraints) {
  SearchSpace space;
  space.add_range(ParameterRange("a", {1, 2, 3, 4, 5, 6, 7, 8}));
  space.add_constraint(ConstraintSpec{"a", ConstraintSpec::Op::Le, "", 4});
  for (const auto index : space.sample_indices(3, 11)) {
    EXPECT_TRUE(space.admits(space.config_at(index)));
  }
}

TEST(SearchSpace, LatinHypercubeCoversEveryAxisEvenly) {
  SearchSpace space;
  space.add_range(ParameterRange("a", {1, 2, 3, 4, 5, 6, 7, 8}));
  space.add_range(ParameterRange("b", {10, 20, 30, 40, 50, 60, 70, 80}));
  const auto sample = space.latin_hypercube_indices(8, 2021);
  ASSERT_EQ(sample.size(), 8u);
  EXPECT_EQ(std::set<std::uint64_t>(sample.begin(), sample.end()).size(), 8u);
  // 8 samples over 8-value axes: proper LHS hits every value of each axis
  // exactly once.
  std::set<std::int64_t> a_values, b_values;
  for (const auto index : sample) {
    const Configuration config = space.config_at(index);
    a_values.insert(config.at("a"));
    b_values.insert(config.at("b"));
  }
  EXPECT_EQ(a_values.size(), 8u);
  EXPECT_EQ(b_values.size(), 8u);
  EXPECT_EQ(space.latin_hypercube_indices(8, 2021), sample);  // deterministic
  EXPECT_NE(space.latin_hypercube_indices(8, 2022), sample);
}

TEST(SpaceView, LazyOrdersMatchMaterializedPaths) {
  SearchSpace space;
  space.add_range(ParameterRange("a", {1, 2, 3, 4}));
  space.add_range(ParameterRange("b", {10, 20, 30}));
  for (const auto order :
       {SearchOrder::Forward, SearchOrder::Reverse, SearchOrder::Random}) {
    const SpaceView view(space, order, 42);
    const auto expected = ordered(space.enumerate(), order, 42);
    ASSERT_EQ(view.size(), expected.size()) << to_string(order);
    for (std::size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(view.at(i), expected[i]) << to_string(order) << " rank " << i;
    }
  }
  EXPECT_THROW((void)SpaceView(space, SearchOrder::Forward).at(12),
               std::out_of_range);
}

TEST(SpaceView, ConstrainedViewWalksAdmissibleOnly) {
  SearchSpace space;
  space.add_range(ParameterRange("a", {1, 2, 3, 4}));
  space.add_constraint(ConstraintSpec{"a", ConstraintSpec::Op::Gt, "", 2});
  const SpaceView view(space, SearchOrder::Forward);
  ASSERT_EQ(view.size(), 2u);
  EXPECT_EQ(view.at(0).at("a"), 3);
  EXPECT_EQ(view.at(1).at("a"), 4);
}

TEST(SpaceView, ExplicitIndexListIsWalkedVerbatim) {
  const SearchSpace space = two_axis_space();
  const SpaceView view(space, {4, 0, 2});
  ASSERT_EQ(view.size(), 3u);
  EXPECT_EQ(view.index_at(0), 4u);
  EXPECT_EQ(view.at(1), space.config_at(0));
  EXPECT_EQ(view.at(2), space.config_at(2));
}

}  // namespace
}  // namespace rooftune::core
