#include "core/analysis.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "fake_backend.hpp"

namespace rooftune::core {
namespace {

using testing::FakeBackend;

SearchSpace two_param_space() {
  SearchSpace space;
  space.add_range(ParameterRange("a", {1, 2}));
  space.add_range(ParameterRange("b", {10, 20, 30}));
  return space;
}

/// value = 100*a + b: parameter a moves the metric by 100, b by 20.
TuningRun analyzed_run() {
  FakeBackend backend;
  for (std::int64_t a = 1; a <= 2; ++a) {
    for (std::int64_t b = 10; b <= 30; b += 10) {
      backend.set_value(Configuration({{"a", a}, {"b", b}}),
                        100.0 * static_cast<double>(a) + static_cast<double>(b));
    }
  }
  TunerOptions options;
  options.invocations = 1;
  options.iterations = 2;
  return Autotuner(two_param_space(), options).run(backend);
}

TEST(ParameterEffects, LevelMeansExact) {
  const auto effects = parameter_effects(analyzed_run());
  ASSERT_EQ(effects.size(), 2u);
  const auto& a = effects[0].name == "a" ? effects[0] : effects[1];
  ASSERT_EQ(a.levels.size(), 2u);
  // a=1: mean of {110,120,130} = 120; a=2: mean of {210,220,230} = 220.
  EXPECT_DOUBLE_EQ(a.levels[0].mean, 120.0);
  EXPECT_DOUBLE_EQ(a.levels[1].mean, 220.0);
  EXPECT_EQ(a.levels[0].count, 3u);
  EXPECT_DOUBLE_EQ(a.levels[1].best, 230.0);
  EXPECT_EQ(a.best_level, 2);
}

TEST(ParameterEffects, RankingOrdersByImportance) {
  const auto ranked = ranked_parameter_effects(analyzed_run());
  ASSERT_EQ(ranked.size(), 2u);
  EXPECT_EQ(ranked[0].name, "a");  // 100-unit swing beats b's 20-unit swing
  EXPECT_EQ(ranked[1].name, "b");
  EXPECT_GT(ranked[0].effect_range, ranked[1].effect_range);
  // a's range: (220-120)/170 overall mean.
  EXPECT_NEAR(ranked[0].effect_range, 100.0 / 170.0, 1e-12);
}

TEST(ParameterEffects, PrunedConfigsExcludedByDefault) {
  FakeBackend backend;
  for (std::int64_t a = 1; a <= 2; ++a) {
    for (std::int64_t b = 10; b <= 30; b += 10) {
      backend.set_value(Configuration({{"a", a}, {"b", b}}),
                        100.0 * static_cast<double>(a) + static_cast<double>(b));
    }
  }
  TunerOptions options;
  options.invocations = 1;
  options.iterations = 4;
  options.inner_prune = true;
  options.outer_prune = true;
  options.order = SearchOrder::Reverse;  // best first => later configs pruned
  const auto run = Autotuner(two_param_space(), options).run(backend);
  ASSERT_GT(run.pruned_configs, 0u);

  const auto without = parameter_effects(run, false);
  const auto with = parameter_effects(run, true);
  // Excluding pruned configs reduces the analyzed count for some level.
  std::size_t n_without = 0, n_with = 0;
  for (const auto& level : without[0].levels) n_without += level.count;
  for (const auto& level : with[0].levels) n_with += level.count;
  EXPECT_LT(n_without, n_with);
}

TEST(ParameterEffects, EmptyRunThrows) {
  TuningRun run;
  EXPECT_THROW(static_cast<void>(parameter_effects(run)), std::invalid_argument);
}

TEST(ParameterEffects, ReportMentionsDominantParameter) {
  const std::string report = effects_report(analyzed_run());
  EXPECT_NE(report.find("Parameter"), std::string::npos);
  EXPECT_NE(report.find("a"), std::string::npos);
  // a's effect range 58.8 % printed before b's.
  EXPECT_LT(report.find("58.8%"), report.find("11.8%"));
}

}  // namespace
}  // namespace rooftune::core
