#include "core/stop_condition_ext.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <stdexcept>

#include "core/evaluator.hpp"
#include "fake_backend.hpp"
#include "util/rng.hpp"

namespace rooftune::core {
namespace {

using testing::FakeBackend;

EvalState empty_state() { return EvalState{}; }

// ---- OnlineMedianStop --------------------------------------------------------

TEST(OnlineMedianStop, ConvergesOnTightDistribution) {
  const OnlineMedianStop stop{0.01, 20};
  util::Xoshiro256 rng(1);
  for (int i = 0; i < 100; ++i) stop.observe(rng.normal(100.0, 0.2));
  EXPECT_EQ(stop.check(empty_state()), StopReason::Converged);
  EXPECT_NEAR(stop.median(), 100.0, 0.5);
}

TEST(OnlineMedianStop, HoldsOnWideDistribution) {
  const OnlineMedianStop stop{0.01, 20};
  util::Xoshiro256 rng(2);
  for (int i = 0; i < 200; ++i) stop.observe(rng.normal(100.0, 20.0));
  EXPECT_EQ(stop.check(empty_state()), StopReason::None);
}

TEST(OnlineMedianStop, RespectsMinSamples) {
  const OnlineMedianStop stop{0.01, 50};
  for (int i = 0; i < 30; ++i) stop.observe(100.0);
  EXPECT_EQ(stop.check(empty_state()), StopReason::None);
}

TEST(OnlineMedianStop, ResetClearsState) {
  const OnlineMedianStop stop{0.01, 20};
  for (int i = 0; i < 50; ++i) stop.observe(100.0);
  stop.reset();
  EXPECT_EQ(stop.check(empty_state()), StopReason::None);
}

TEST(OnlineMedianStop, RobustToOutliersWhereMeanIsNot) {
  // The §VII motivation: occasional huge outliers barely move the median
  // band, so the median stop converges where a mean-based rule would not.
  const OnlineMedianStop stop{0.01, 20};
  util::Xoshiro256 rng(3);
  for (int i = 0; i < 300; ++i) {
    const double x = (i % 50 == 0) ? 1000.0 : rng.normal(100.0, 0.3);
    stop.observe(x);
  }
  EXPECT_EQ(stop.check(empty_state()), StopReason::Converged);
  EXPECT_NEAR(stop.median(), 100.0, 1.0);
}

TEST(OnlineMedianStop, Validation) {
  EXPECT_THROW(OnlineMedianStop(0.0), std::invalid_argument);
}

// ---- SteadyStateStop ---------------------------------------------------------

TEST(SteadyStateStop, FiresWhenCovBelowThreshold) {
  const SteadyStateStop stop{0.02, 10};
  util::Xoshiro256 rng(4);
  for (int i = 0; i < 10; ++i) stop.observe(rng.normal(100.0, 0.5));  // CoV 0.5 %
  EXPECT_EQ(stop.check(empty_state()), StopReason::Converged);
}

TEST(SteadyStateStop, HoldsWhileVolatile) {
  const SteadyStateStop stop{0.02, 10};
  util::Xoshiro256 rng(5);
  for (int i = 0; i < 40; ++i) stop.observe(rng.normal(100.0, 10.0));  // CoV 10 %
  EXPECT_EQ(stop.check(empty_state()), StopReason::None);
}

TEST(SteadyStateStop, WindowMustFill) {
  const SteadyStateStop stop{0.02, 10};
  for (int i = 0; i < 9; ++i) stop.observe(100.0);
  EXPECT_EQ(stop.check(empty_state()), StopReason::None);
  stop.observe(100.0);
  EXPECT_EQ(stop.check(empty_state()), StopReason::Converged);
}

TEST(SteadyStateStop, DetectsSteadyStateAfterWarmup) {
  // Georges et al.'s use case: a drifting prefix, then steady samples.
  const SteadyStateStop stop{0.01, 12};
  for (int i = 0; i < 20; ++i) {
    stop.observe(100.0 * (1.0 - 0.5 * std::exp(-i / 5.0)));
    // During the drift the window CoV stays high.
  }
  EXPECT_EQ(stop.check(empty_state()), StopReason::None);
  for (int i = 0; i < 12; ++i) stop.observe(100.0);
  EXPECT_EQ(stop.check(empty_state()), StopReason::Converged);
}

TEST(SteadyStateStop, Validation) {
  EXPECT_THROW(SteadyStateStop(0.0), std::invalid_argument);
  EXPECT_THROW(SteadyStateStop(0.01, 2), std::invalid_argument);
}

// ---- IndependenceStop --------------------------------------------------------

TEST(IndependenceStop, FiresOnWhiteNoise) {
  const IndependenceStop stop{32, 0.35};
  util::Xoshiro256 rng(6);
  for (int i = 0; i < 32; ++i) stop.observe(rng.normal());
  EXPECT_EQ(stop.check(empty_state()), StopReason::Converged);
}

TEST(IndependenceStop, HoldsDuringDrift) {
  const IndependenceStop stop{32};
  for (int i = 0; i < 32; ++i) stop.observe(static_cast<double>(i));
  EXPECT_EQ(stop.check(empty_state()), StopReason::None);
}

TEST(IndependenceStop, ResetRestartsWindow) {
  const IndependenceStop stop{32, 0.35};
  util::Xoshiro256 rng(7);
  for (int i = 0; i < 32; ++i) stop.observe(rng.normal());
  stop.reset();
  EXPECT_EQ(stop.check(empty_state()), StopReason::None);
}

// ---- integration through TunerOptions::extra_inner_stops --------------------

TEST(ExtraStops, InjectedConditionTerminatesInnerLoop) {
  FakeBackend backend(100.0, 0.001);
  TunerOptions options;  // Default would run 200 iterations
  options.extra_inner_stops.push_back(
      [] { return std::make_shared<const SteadyStateStop>(0.05, 10); });
  const auto result = run_invocation(backend, dgemm_config(1, 1, 1), 0, options, {});
  EXPECT_EQ(result.stop_reason, StopReason::Converged);
  EXPECT_EQ(result.iterations, 10u);  // constant stream: fires when window fills
}

TEST(ExtraStops, FreshConditionPerInvocation) {
  // The stateful condition must not leak samples between invocations: every
  // invocation needs exactly `window` fresh samples to fire again.
  FakeBackend backend(100.0, 0.001);
  TunerOptions options;
  options.invocations = 3;
  options.extra_inner_stops.push_back(
      [] { return std::make_shared<const SteadyStateStop>(0.05, 10); });
  const auto result = run_configuration(backend, dgemm_config(1, 1, 1), options, {});
  EXPECT_EQ(result.total_iterations, 30u);
  for (const auto& inv : result.invocations) {
    EXPECT_EQ(inv.iterations, 10u);
  }
}

TEST(ExtraStops, OuterInjectionStopsInvocationLoop) {
  FakeBackend backend(100.0, 0.001);
  TunerOptions options;
  options.extra_outer_stops.push_back(
      [] { return std::make_shared<const SteadyStateStop>(0.05, 4); });
  const auto result = run_configuration(backend, dgemm_config(1, 1, 1), options, {});
  EXPECT_EQ(result.invocations.size(), 4u);
  EXPECT_EQ(result.outer_stop, StopReason::Converged);
}

TEST(ExtraStops, NamesAreDescriptive) {
  EXPECT_NE(OnlineMedianStop(0.01).name().find("median"), std::string::npos);
  EXPECT_NE(SteadyStateStop(0.01).name().find("steady"), std::string::npos);
  EXPECT_NE(IndependenceStop(32).name().find("independence"), std::string::npos);
}

}  // namespace
}  // namespace rooftune::core
