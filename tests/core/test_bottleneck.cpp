#include "core/bottleneck.hpp"

#include <gtest/gtest.h>

#include <limits>

namespace rooftune::core {
namespace {

constexpr double kPeak = 100.0;  // GFLOP/s compute roof
constexpr double kBw = 50.0;     // GB/s DRAM roof

BottleneckClassifier classifier() { return {kPeak, kBw}; }

/// A healthy signature: `misses` LLC misses against `flops` analytic work.
CounterSample sample(std::uint64_t misses) {
  CounterSample s;
  s.cycles = 1'000'000'000;
  s.instructions = 2'000'000'000;
  s.llc_misses = misses;
  s.valid = true;
  return s;
}

TEST(BottleneckClass, StringsRoundTripThroughFromString) {
  for (const auto cls : {BottleneckClass::Unknown, BottleneckClass::Compute,
                         BottleneckClass::Dram, BottleneckClass::Latency}) {
    const auto back = bottleneck_class_from_string(to_string(cls));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, cls);
  }
  EXPECT_FALSE(bottleneck_class_from_string("network-bound").has_value());
  EXPECT_FALSE(bottleneck_class_from_string("").has_value());
}

TEST(BottleneckClassifier, RejectsNonPositiveCeilings) {
  EXPECT_THROW(BottleneckClassifier(0.0, kBw), std::invalid_argument);
  EXPECT_THROW(BottleneckClassifier(kPeak, -1.0), std::invalid_argument);
}

// An invocation that retired zero instructions says nothing about the
// configuration: no class, an infinite bound, and the policy must never
// prune on it.
TEST(BottleneckClassifier, ZeroInstructionInvocationDerivesNoBound) {
  CounterSample s = sample(100);
  s.instructions = 0;
  const BottleneckVerdict v = classifier().classify(s, 6400.0, 0.0);
  EXPECT_EQ(v.cls, BottleneckClass::Unknown);
  EXPECT_EQ(v.bound_gflops, std::numeric_limits<double>::infinity());
  EXPECT_FALSE(v.oi.has_value());
  EXPECT_FALSE(CounterPrunePolicy{}.should_prune(v, v.bound_gflops, 1.0, 1));
}

TEST(BottleneckClassifier, InvalidOrZeroCycleSamplesDeriveNoBound) {
  CounterSample invalid = sample(100);
  invalid.valid = false;
  EXPECT_EQ(classifier().classify(invalid, 6400.0, 0.0).cls,
            BottleneckClass::Unknown);

  CounterSample no_cycles = sample(100);
  no_cycles.cycles = 0;
  EXPECT_EQ(classifier().classify(no_cycles, 6400.0, 0.0).cls,
            BottleneckClass::Unknown);

  // No analytic FLOP count — OI is undefined, so no bound either.
  const BottleneckVerdict v = classifier().classify(sample(100), 0.0, 0.0);
  EXPECT_EQ(v.cls, BottleneckClass::Unknown);
  EXPECT_EQ(v.bound_gflops, std::numeric_limits<double>::infinity());
}

// A PMU without an LLC-miss event reports zero misses; the safe reading is
// cache-resident — the memory roof cannot bind and the bound is the
// compute roof, never something tighter.
TEST(BottleneckClassifier, MissingLlcMissEventFallsBackToComputeRoof) {
  const BottleneckVerdict v = classifier().classify(sample(0), 6400.0, 0.0);
  EXPECT_EQ(v.cls, BottleneckClass::Compute);
  EXPECT_DOUBLE_EQ(v.bound_gflops, kPeak);
  EXPECT_FALSE(v.oi.has_value());
  EXPECT_FALSE(v.widened);
}

TEST(BottleneckClassifier, LowIntensitySignatureIsDramBound) {
  // 100 misses = 6400 bytes; flops 6400 -> OI = 1.0 flop/byte, memory roof
  // 50 GFLOP/s, below the 100 GFLOP/s compute roof.
  const BottleneckVerdict v = classifier().classify(sample(100), 6400.0, 0.0);
  EXPECT_EQ(v.cls, BottleneckClass::Dram);
  ASSERT_TRUE(v.oi.has_value());
  EXPECT_DOUBLE_EQ(*v.oi, 1.0);
  EXPECT_DOUBLE_EQ(v.bound_gflops, kBw * 1.0);
  EXPECT_DOUBLE_EQ(v.ipc, 2.0);
}

TEST(BottleneckClassifier, HighIntensitySignatureIsComputeBound) {
  // One miss: OI = flops/64 = 100 flop/byte, memory roof 5000 >> peak.
  const BottleneckVerdict v = classifier().classify(sample(1), 6400.0, 0.0);
  EXPECT_EQ(v.cls, BottleneckClass::Compute);
  EXPECT_DOUBLE_EQ(v.bound_gflops, kPeak);
}

// Multiplex-scaled counts are extrapolations: the true miss count could be
// lower by up to time_enabled/time_running, which would raise the memory
// bound — so the classifier widens its bound by exactly that ratio.
TEST(BottleneckClassifier, MultiplexScalingWidensTheBoundByTheRatio) {
  // OI = 0.2 -> unwidened memory roof 10 GFLOP/s.
  CounterSample s = sample(500);        // 32000 bytes
  const double flops = 6400.0;          // OI = 0.2
  const BottleneckVerdict exact = classifier().classify(s, flops, 0.0);
  EXPECT_DOUBLE_EQ(exact.bound_gflops, 10.0);
  EXPECT_FALSE(exact.widened);

  s.scaled = true;
  s.time_enabled_ns = 4'000'000;  // group ran 1/4 of the window
  s.time_running_ns = 1'000'000;
  const BottleneckVerdict widened = classifier().classify(s, flops, 0.0);
  EXPECT_TRUE(widened.widened);
  EXPECT_EQ(widened.cls, BottleneckClass::Dram);
  EXPECT_DOUBLE_EQ(widened.bound_gflops, 4.0 * exact.bound_gflops);

  // Fully-running groups widen nothing even when flagged scaled.
  s.time_running_ns = s.time_enabled_ns;
  const BottleneckVerdict full = classifier().classify(s, flops, 0.0);
  EXPECT_FALSE(full.widened);
  EXPECT_DOUBLE_EQ(full.bound_gflops, exact.bound_gflops);
}

TEST(BottleneckClassifier, WidenedBoundStaysCappedAtThePeak) {
  CounterSample s = sample(100);  // OI 1.0, roof 50
  s.scaled = true;
  s.time_enabled_ns = 10'000'000;
  s.time_running_ns = 1'000'000;  // x10 widening -> 500, capped at peak
  const BottleneckVerdict v = classifier().classify(s, 6400.0, 0.0);
  EXPECT_DOUBLE_EQ(v.bound_gflops, kPeak);
  EXPECT_EQ(v.cls, BottleneckClass::Compute);
}

TEST(BottleneckClassifier, LatencyOverlayMarksLowIpcLowBandwidth) {
  CounterSample s = sample(100);
  s.instructions = 100'000'000;  // IPC 0.1 < 0.25
  // 6400 bytes over a full second: achieved bandwidth ~0 << 0.25 * roof.
  const BottleneckVerdict v = classifier().classify(s, 6400.0, 1.0);
  EXPECT_EQ(v.cls, BottleneckClass::Latency);
  // The prune bound stays the (safe) roofline ceiling.
  EXPECT_DOUBLE_EQ(v.bound_gflops, kBw * 1.0);
}

TEST(CounterPrunePolicy, MarginGatesThePruneDecision) {
  const BottleneckVerdict v = classifier().classify(sample(100), 6400.0, 0.0);
  ASSERT_DOUBLE_EQ(v.bound_gflops, 50.0);

  CounterPrunePolicy policy;  // margin 0.25, window 2
  // 50 * 1.25 = 62.5 < 100: provably short of the incumbent.
  EXPECT_TRUE(policy.should_prune(v, v.bound_gflops, 100.0, 1));
  EXPECT_TRUE(policy.should_prune(v, v.bound_gflops, 100.0, 2));
  // 50 * 1.25 = 62.5, incumbent 60: margin saves it.
  EXPECT_FALSE(policy.should_prune(v, v.bound_gflops, 60.0, 1));
  policy.margin = 0.0;
  EXPECT_TRUE(policy.should_prune(v, v.bound_gflops, 60.0, 1));
}

TEST(CounterPrunePolicy, WindowAndIncumbentGateThePruneDecision) {
  const BottleneckVerdict v = classifier().classify(sample(100), 6400.0, 0.0);
  const CounterPrunePolicy policy;
  EXPECT_FALSE(policy.should_prune(v, v.bound_gflops, std::nullopt, 1));
  EXPECT_FALSE(policy.should_prune(v, v.bound_gflops, 100.0, 0));
  EXPECT_FALSE(policy.should_prune(v, v.bound_gflops, 100.0, policy.window + 1));
}

// Negative margins are the false-prune failure mode the ablation
// quantifies: a bound *above* the incumbent can still trigger.
TEST(CounterPrunePolicy, NegativeMarginPrunesConfigsThatCouldWin) {
  const BottleneckVerdict v = classifier().classify(sample(40), 6400.0, 0.0);
  ASSERT_GT(v.bound_gflops, 100.0 - 1e-9);  // bound 125 > incumbent
  CounterPrunePolicy policy;
  policy.margin = -0.5;
  EXPECT_TRUE(policy.should_prune(v, v.bound_gflops, 100.0, 1));
  policy.margin = 0.0;
  EXPECT_FALSE(policy.should_prune(v, v.bound_gflops, 100.0, 1));
}

TEST(CounterPrunePolicy, ShouldSkipMirrorsTheMarginWithoutAWindow) {
  CounterPrunePolicy policy;  // margin 0.25
  EXPECT_TRUE(policy.should_skip(50.0, 100.0));
  EXPECT_FALSE(policy.should_skip(90.0, 100.0));
  EXPECT_FALSE(policy.should_skip(50.0, std::nullopt));
  EXPECT_FALSE(policy.should_skip(0.0, 100.0));
  EXPECT_FALSE(
      policy.should_skip(std::numeric_limits<double>::infinity(), 100.0));
}

}  // namespace
}  // namespace rooftune::core
