#include "core/evaluator.hpp"

#include <gtest/gtest.h>

#include "fake_backend.hpp"

namespace rooftune::core {
namespace {

using testing::FakeBackend;

TunerOptions default_options() {
  TunerOptions o;  // Table I defaults
  return o;
}

TEST(RunInvocation, DefaultRunsToIterationCap) {
  FakeBackend backend(100.0, /*iteration_cost=*/0.001);
  const auto result =
      run_invocation(backend, dgemm_config(1, 1, 1), 0, default_options(), {});
  EXPECT_EQ(result.iterations, 200u);
  EXPECT_EQ(result.stop_reason, StopReason::MaxCount);
  EXPECT_DOUBLE_EQ(result.mean(), 100.0);
  EXPECT_NEAR(result.kernel_time.value, 0.2, 1e-12);
}

TEST(RunInvocation, TimeoutCapsLongIterations) {
  FakeBackend backend(100.0, /*iteration_cost=*/0.5);  // 20 iterations hit 10 s
  const auto result =
      run_invocation(backend, dgemm_config(1, 1, 1), 0, default_options(), {});
  EXPECT_EQ(result.stop_reason, StopReason::MaxTime);
  EXPECT_EQ(result.iterations, 20u);
}

TEST(RunInvocation, ConfidenceStopsEarlyOnSteadySamples) {
  FakeBackend backend(100.0, 0.001);  // zero variance => converges at min count
  auto options = default_options();
  options.confidence_stop = true;
  const auto result =
      run_invocation(backend, dgemm_config(1, 1, 1), 0, options, {});
  EXPECT_EQ(result.stop_reason, StopReason::Converged);
  EXPECT_LT(result.iterations, 200u);
  EXPECT_GE(result.iterations, 2u);
}

TEST(RunInvocation, InnerPruneAgainstIncumbent) {
  FakeBackend backend(50.0, 0.001);
  auto options = default_options();
  options.inner_prune = true;
  const auto result =
      run_invocation(backend, dgemm_config(1, 1, 1), 0, options, 100.0);
  EXPECT_EQ(result.stop_reason, StopReason::PrunedByBest);
  EXPECT_EQ(result.iterations, options.prune_min_count);
}

TEST(RunInvocation, NoPruneWithoutIncumbent) {
  FakeBackend backend(50.0, 0.001);
  auto options = default_options();
  options.inner_prune = true;
  const auto result =
      run_invocation(backend, dgemm_config(1, 1, 1), 0, options, {});
  EXPECT_EQ(result.stop_reason, StopReason::MaxCount);
}

TEST(RunInvocation, PruneMinCountDelaysPruning) {
  FakeBackend backend(50.0, 0.001);
  auto options = default_options();
  options.inner_prune = true;
  options.prune_min_count = 100;  // the paper's 2695 v4 guard
  const auto result =
      run_invocation(backend, dgemm_config(1, 1, 1), 0, options, 100.0);
  EXPECT_EQ(result.stop_reason, StopReason::PrunedByBest);
  EXPECT_EQ(result.iterations, 100u);
}

TEST(RunInvocation, WallTimeIncludesOverheadKernelTimeDoesNot) {
  FakeBackend backend(100.0, 0.01, /*invocation_overhead=*/0.5);
  const auto result =
      run_invocation(backend, dgemm_config(1, 1, 1), 0, default_options(), {});
  EXPECT_NEAR(result.kernel_time.value, 2.0, 1e-9);       // 200 * 0.01
  EXPECT_NEAR(result.wall_time.value, 2.5, 1e-9);         // + 0.5 overhead
}

TEST(RunConfiguration, DefaultRunsAllInvocations) {
  FakeBackend backend(100.0, 0.001);
  const auto result =
      run_configuration(backend, dgemm_config(1, 1, 1), default_options(), {});
  EXPECT_EQ(result.invocations.size(), 10u);
  EXPECT_EQ(result.outer_stop, StopReason::MaxCount);
  EXPECT_EQ(result.total_iterations, 2000u);
  EXPECT_DOUBLE_EQ(result.value(), 100.0);
  EXPECT_FALSE(result.pruned());
  EXPECT_EQ(backend.invocations_started(), 10u);
  EXPECT_EQ(backend.invocations_ended(), 10u);
}

TEST(RunConfiguration, InnerAloneRepruneEveryInvocation) {
  // "Inner" without "Outer": every one of the 10 invocations is launched
  // and pruned after min_count iterations (paper Tables: C+Inner is ~6x
  // slower than C+I+Outer).
  FakeBackend backend(50.0, 0.001);
  auto options = default_options();
  options.inner_prune = true;
  const auto result =
      run_configuration(backend, dgemm_config(1, 1, 1), options, 100.0);
  EXPECT_EQ(result.invocations.size(), 10u);
  EXPECT_EQ(result.total_iterations, 10 * options.prune_min_count);
  EXPECT_TRUE(result.pruned());
  EXPECT_EQ(result.outer_stop, StopReason::MaxCount);
}

TEST(RunConfiguration, OuterAbandonsAfterInnerPrune) {
  FakeBackend backend(50.0, 0.001);
  auto options = default_options();
  options.inner_prune = true;
  options.outer_prune = true;
  const auto result =
      run_configuration(backend, dgemm_config(1, 1, 1), options, 100.0);
  EXPECT_EQ(result.invocations.size(), 1u);  // first invocation pruned => stop
  EXPECT_EQ(result.outer_stop, StopReason::PrunedByBest);
  EXPECT_TRUE(result.pruned());
}

TEST(RunConfiguration, OuterPrunesViaInvocationLevelCI) {
  // A configuration whose iteration samples are too noisy for the inner CI
  // to prune, but whose invocation means are steady losers: the outer
  // upper-bound condition catches it after two invocations.
  FakeBackend backend(100.0, 0.001);
  const auto config = dgemm_config(1, 1, 1);
  backend.set_generator(config, [](std::uint64_t it) {
    return 50.0 + (it % 2 == 0 ? 30.0 : -30.0);  // mean 50, huge iter variance
  });
  auto options = default_options();
  options.outer_prune = true;
  const auto result = run_configuration(backend, config, options, 100.0);
  EXPECT_EQ(result.outer_stop, StopReason::PrunedByBest);
  EXPECT_EQ(result.invocations.size(), 2u);
  EXPECT_TRUE(result.pruned());
}

TEST(RunConfiguration, ConfidenceStopsInvocationLoopOnSteadyMeans) {
  FakeBackend backend(100.0, 0.001);  // identical means => outer CI width 0
  auto options = default_options();
  options.confidence_stop = true;
  const auto result =
      run_configuration(backend, dgemm_config(1, 1, 1), options, {});
  EXPECT_LT(result.invocations.size(), 10u);
  EXPECT_EQ(result.outer_stop, StopReason::Converged);
}

TEST(RunConfiguration, ValueIsMeanOfInvocationMeans) {
  FakeBackend backend(0.0, 0.001);
  const auto config = dgemm_config(1, 1, 1);
  // Mean depends on invocation index via the backend's scripted stream:
  // iteration value = 10 * (iteration % 2): mean 5 over 200 iterations.
  backend.set_generator(config, [](std::uint64_t it) {
    return it % 2 == 0 ? 10.0 : 0.0;
  });
  const auto result = run_configuration(backend, config, default_options(), {});
  EXPECT_DOUBLE_EQ(result.value(), 5.0);
  EXPECT_EQ(result.outer_moments.count(), 10u);
}

TEST(RunConfiguration, TotalTimeIsClockSpan) {
  FakeBackend backend(100.0, 0.01, 0.5);
  const auto result =
      run_configuration(backend, dgemm_config(1, 1, 1), default_options(), {});
  // 10 invocations * (0.5 overhead + 200 * 0.01 kernel).
  EXPECT_NEAR(result.total_time.value, 10 * (0.5 + 2.0), 1e-9);
}

TEST(RunInvocation, AdaptiveBatchingGroupsIterationsUnderClockOverhead) {
  // Per-iteration time (1 ns) is far inside 100x the advertised clock
  // overhead (1 us): the inner loop must switch to geometrically growing
  // timing batches, recording one sample per group.
  FakeBackend backend(100.0, /*iteration_cost=*/1e-9);
  backend.set_clock_overhead(1e-6);
  auto options = default_options();
  options.iterations = 64;
  const auto result =
      run_invocation(backend, dgemm_config(1, 1, 1), 0, options, {});
  EXPECT_EQ(result.iterations, 64u);
  EXPECT_EQ(result.stop_reason, StopReason::MaxCount);
  // Batch sizes 1,2,4,...,32, then a final 1-iteration remainder: the 64
  // iterations collapse into 7 recorded samples.
  EXPECT_EQ(result.moments.count(), 7u);
  EXPECT_DOUBLE_EQ(result.mean(), 100.0);  // group means stay unbiased
}

TEST(RunInvocation, ZeroOverheadClockKeepsPerIterationTiming) {
  // The legacy bit-identical path: a free clock never triggers batching.
  FakeBackend backend(100.0, 1e-9);
  auto options = default_options();
  options.iterations = 64;
  const auto result =
      run_invocation(backend, dgemm_config(1, 1, 1), 0, options, {});
  EXPECT_EQ(result.iterations, 64u);
  EXPECT_EQ(result.moments.count(), 64u);
}

TEST(RunInvocation, BatchOverheadRatioZeroDisablesBatching) {
  FakeBackend backend(100.0, 1e-9);
  backend.set_clock_overhead(1e-6);
  auto options = default_options();
  options.iterations = 64;
  options.batch_overhead_ratio = 0.0;
  const auto result =
      run_invocation(backend, dgemm_config(1, 1, 1), 0, options, {});
  EXPECT_EQ(result.moments.count(), 64u);
}

TEST(RunInvocation, ZeroCostKernelReportsZeroTimeUnderBatching) {
  // A kernel that takes no time at all: after overhead subtraction the
  // batched timing must report zero kernel time, not the timer cost.
  FakeBackend backend(100.0, /*iteration_cost=*/0.0);
  backend.set_clock_overhead(1e-6);
  auto options = default_options();
  options.iterations = 64;
  const auto result =
      run_invocation(backend, dgemm_config(1, 1, 1), 0, options, {});
  EXPECT_EQ(result.iterations, 64u);
  EXPECT_DOUBLE_EQ(result.kernel_time.value, 0.0);
  EXPECT_DOUBLE_EQ(result.mean(), 100.0);
}

TEST(RunInvocation, SetupTimeIsInvocationOverhead) {
  // FakeBackend charges its overhead inside begin_invocation and nothing in
  // end_invocation, so the measured setup time must equal it exactly and the
  // wall time must decompose into setup + kernel.
  FakeBackend backend(100.0, /*iteration_cost=*/0.01,
                      /*invocation_overhead=*/0.25);
  const auto result =
      run_invocation(backend, dgemm_config(1, 1, 1), 0, default_options(), {});
  EXPECT_DOUBLE_EQ(result.setup_time.value, 0.25);
  EXPECT_NEAR(result.kernel_time.value, 200 * 0.01, 1e-9);
  EXPECT_NEAR(result.wall_time.value,
              result.setup_time.value + result.kernel_time.value, 1e-9);
}

TEST(RunConfiguration, AccumulatesSetupAndKernelTotals) {
  FakeBackend backend(100.0, /*iteration_cost=*/0.01,
                      /*invocation_overhead=*/0.5);
  const auto result =
      run_configuration(backend, dgemm_config(1, 1, 1), default_options(), {});
  // 10 invocations, each 0.5 s setup + 200 * 0.01 s kernel.
  EXPECT_NEAR(result.total_setup_time.value, 10 * 0.5, 1e-9);
  EXPECT_NEAR(result.total_kernel_time.value, 10 * 2.0, 1e-9);
  EXPECT_NEAR(result.total_time.value,
              result.total_setup_time.value + result.total_kernel_time.value,
              1e-9);
}

TEST(RunConfiguration, SingleTechniqueShape) {
  FakeBackend backend(100.0, 0.01);
  auto options = default_options();
  options.invocations = 1;
  options.iterations = 1;
  const auto result =
      run_configuration(backend, dgemm_config(1, 1, 1), options, {});
  EXPECT_EQ(result.invocations.size(), 1u);
  EXPECT_EQ(result.total_iterations, 1u);
  EXPECT_DOUBLE_EQ(result.value(), 100.0);
}

}  // namespace
}  // namespace rooftune::core
