#include "core/sched_stats.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "core/eval_pool.hpp"
#include "trace/journal.hpp"
#include "trace/reader.hpp"

namespace rooftune::core {
namespace {

TEST(SchedulerStatsTest, IdleFractionIsZeroWhenDenominatorIsZero) {
  SchedulerStats stats;
  EXPECT_DOUBLE_EQ(stats.idle_fraction(), 0.0);  // all-default: 0 / (0 * 0)

  stats.idle_ns = 1'000'000;  // idle time but no span recorded
  stats.workers = 4;
  EXPECT_DOUBLE_EQ(stats.idle_fraction(), 0.0);

  stats.span_ns = 2'000'000;
  stats.workers = 0;  // span but no workers
  EXPECT_DOUBLE_EQ(stats.idle_fraction(), 0.0);
}

TEST(SchedulerStatsTest, IdleFractionBoundaries) {
  SchedulerStats stats;
  stats.workers = 2;
  stats.span_ns = 1'000'000;

  stats.idle_ns = 0;
  EXPECT_DOUBLE_EQ(stats.idle_fraction(), 0.0);

  stats.idle_ns = 2'000'000;  // every worker idle the whole span
  EXPECT_DOUBLE_EQ(stats.idle_fraction(), 1.0);

  stats.idle_ns = 500'000;  // one quarter of 2 workers x 1 ms
  EXPECT_DOUBLE_EQ(stats.idle_fraction(), 0.25);
}

TEST(SchedulerStatsTest, SingleWorkerPoolNeverSteals) {
  EvalPool pool({.workers = 1});
  std::atomic<std::uint64_t> done{0};
  constexpr std::uint64_t kTasks = 64;
  for (std::uint64_t i = 0; i < kTasks; ++i) {
    pool.submit([&](std::size_t w) {
      EXPECT_EQ(w, 0u);
      done.fetch_add(1);
    });
  }
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (done.load() < kTasks) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline) << "pool stalled";
    std::this_thread::yield();
  }
  const SchedulerStats stats = pool.stats();
  EXPECT_EQ(stats.workers, 1u);
  EXPECT_EQ(stats.tasks, kTasks);
  EXPECT_EQ(stats.steals, 0u) << "a lone worker has nobody to steal from";
  EXPECT_GT(stats.span_ns, 0u);
  EXPECT_LE(stats.idle_fraction(), 1.0);
}

TEST(SchedulerStatsTest, ZeroTaskPoolReportsZeroWork) {
  SchedulerStats stats;
  {
    EvalPool pool({.workers = 2});
    stats = pool.stats();
  }
  EXPECT_EQ(stats.workers, 2u);
  EXPECT_EQ(stats.tasks, 0u);
  EXPECT_EQ(stats.steals, 0u);
  EXPECT_EQ(stats.busy_ns, 0u);
  EXPECT_GE(stats.span_ns, 0u);
}

TEST(SchedulerStatsTest, JournalRoundTripPreservesEveryField) {
  SchedulerStats stats;
  stats.mode = "pipeline";
  stats.workers = 8;
  stats.lookahead = 3;
  stats.tasks = 4242;
  stats.steals = 137;
  stats.parks = 29;
  stats.idle_ns = 123'456'789;
  stats.busy_ns = 987'654'321;
  stats.commit_wait_ns = 55'555;
  stats.span_ns = 1'111'111'111;

  trace::TraceJournal journal;
  journal.begin_run({"dgemm", "GFLOP/s", "racing"});
  trace::RunSummary summary;
  summary.scheduler = stats;
  journal.finish_run(summary);

  const trace::Journal parsed = trace::read_journal(journal.str());
  ASSERT_TRUE(parsed.scheduler.has_value());
  const SchedulerStats& got = *parsed.scheduler;
  EXPECT_EQ(got.mode, stats.mode);
  EXPECT_EQ(got.workers, stats.workers);
  EXPECT_EQ(got.lookahead, stats.lookahead);
  EXPECT_EQ(got.tasks, stats.tasks);
  EXPECT_EQ(got.steals, stats.steals);
  EXPECT_EQ(got.parks, stats.parks);
  EXPECT_EQ(got.idle_ns, stats.idle_ns);
  EXPECT_EQ(got.busy_ns, stats.busy_ns);
  EXPECT_EQ(got.commit_wait_ns, stats.commit_wait_ns);
  EXPECT_EQ(got.span_ns, stats.span_ns);
  EXPECT_DOUBLE_EQ(got.idle_fraction(), stats.idle_fraction());
}

TEST(SchedulerStatsTest, JournalOmitsSchedulerRecordByDefault) {
  trace::TraceJournal journal;
  journal.begin_run({"dgemm", "GFLOP/s", "racing"});
  journal.finish_run({});
  const trace::Journal parsed = trace::read_journal(journal.str());
  EXPECT_FALSE(parsed.scheduler.has_value());
}

}  // namespace
}  // namespace rooftune::core
