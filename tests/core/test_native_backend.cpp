#include "core/native_backend.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>

#include "core/evaluator.hpp"

namespace rooftune::core {
namespace {

TEST(NativeDgemmBackend, ProducesPlausibleSamples) {
  NativeDgemmBackend backend;
  backend.begin_invocation(dgemm_config(64, 64, 32), 0);
  for (int i = 0; i < 3; ++i) {
    const Sample s = backend.run_iteration();
    EXPECT_GT(s.value, 0.0);          // some GFLOP/s
    EXPECT_LT(s.value, 1e5);          // but not absurd
    EXPECT_GT(s.kernel_time.value, 0.0);
  }
  backend.end_invocation();
}

TEST(NativeDgemmBackend, MetricAndClock) {
  NativeDgemmBackend backend;
  EXPECT_EQ(backend.metric_name(), "GFLOP/s");
  const auto t0 = backend.clock().now();
  backend.begin_invocation(dgemm_config(32, 32, 32), 0);
  backend.run_iteration();
  backend.end_invocation();
  EXPECT_GT((backend.clock().now() - t0).value, 0.0);
}

TEST(NativeDgemmBackend, RejectsBadDimensions) {
  NativeDgemmBackend backend;
  EXPECT_THROW(backend.begin_invocation(dgemm_config(0, 10, 10), 0),
               std::invalid_argument);
}

TEST(NativeDgemmBackend, IterationOutsideInvocationThrows) {
  NativeDgemmBackend backend;
  EXPECT_THROW(backend.run_iteration(), std::logic_error);
}

TEST(NativeDgemmBackend, WorksWithEvaluator) {
  NativeDgemmBackend backend;
  TunerOptions options;
  options.invocations = 2;
  options.iterations = 3;
  options.timeout = util::Seconds{5.0};
  const auto result = run_configuration(backend, dgemm_config(48, 48, 48), options, {});
  EXPECT_EQ(result.invocations.size(), 2u);
  EXPECT_GT(result.value(), 0.0);
}

TEST(NativeDgemmBackend, BetaDoesNotCompoundAcrossIterations) {
  // Regression: with beta != 0 each timed call used to accumulate into the
  // C produced by the previous call — over a 200-iteration inner loop the
  // entries grew geometrically (|C| ~ beta^i) until they overflowed, so the
  // later "iterations" timed denormal/infinity arithmetic instead of the
  // benchmark.  C is now re-zeroed outside the timed region.
  NativeDgemmBackend::Options options;
  options.beta = 2.0;
  NativeDgemmBackend backend(options);
  backend.begin_invocation(dgemm_config(32, 32, 32), 0);
  for (int i = 0; i < 40; ++i) {
    const Sample s = backend.run_iteration();
    EXPECT_GT(s.value, 0.0);
  }
  // Every iteration computes C = alpha*A*B with |A|,|B| <= 1, so
  // |C| <= k = 32.  Compounding would have reached ~2^40 by now.
  EXPECT_LE(backend.max_abs_c(), 32.0);
  backend.end_invocation();
}

TEST(NativeDgemmBackend, ArenaReusesSlabAcrossInvocationsAndConfigs) {
  NativeDgemmBackend backend;
  const auto run_one = [&](std::int64_t n, std::uint64_t invocation) {
    backend.begin_invocation(dgemm_config(n, n, n), invocation);
    backend.run_iteration();
    backend.end_invocation();
  };

  run_one(64, 0);  // high-water working set: 3 slab misses
  const auto warm = *backend.arena_stats();
  EXPECT_EQ(warm.slab_misses, 3u);
  EXPECT_EQ(warm.allocations, 3u);

  // Steady state: repeated and *smaller* configurations perform zero new
  // allocations — every lease is a slab hit.
  run_one(64, 1);
  run_one(32, 0);
  run_one(48, 0);
  const auto steady = *backend.arena_stats();
  EXPECT_EQ(steady.allocations, warm.allocations);
  EXPECT_EQ(steady.slab_misses, warm.slab_misses);
  EXPECT_EQ(steady.slab_hits, warm.slab_hits + 9u);
}

TEST(NativeDgemmBackend, ReuseOffReallocatesEveryInvocation) {
  NativeDgemmBackend::Options options;
  options.reuse = false;  // the paper's allocate/free-per-invocation baseline
  NativeDgemmBackend backend(options);
  for (std::uint64_t inv = 0; inv < 3; ++inv) {
    backend.begin_invocation(dgemm_config(32, 32, 32), inv);
    backend.run_iteration();
    backend.end_invocation();
  }
  const auto stats = *backend.arena_stats();
  EXPECT_EQ(stats.slab_misses, 9u);
  EXPECT_EQ(stats.slab_hits, 0u);
  EXPECT_EQ(stats.allocations, 9u);
  EXPECT_EQ(stats.bytes_reserved, 0u);  // released after the last invocation
}

TEST(NativeDgemmBackend, SharedArenaServesBothOperandsSets) {
  auto arena = std::make_shared<util::WorkspaceArena>();
  NativeDgemmBackend::Options options;
  options.arena = arena;
  NativeDgemmBackend backend(options);
  backend.begin_invocation(dgemm_config(16, 16, 16), 0);
  backend.run_iteration();
  backend.end_invocation();
  EXPECT_EQ(arena->stats().leases, 3u);
  EXPECT_EQ(backend.arena_stats()->leases, 3u);
}

TEST(NativeTriadBackend, ProducesPlausibleBandwidth) {
  NativeTriadBackend backend;
  backend.begin_invocation(triad_config(1 << 14), 0);
  const Sample s = backend.run_iteration();
  EXPECT_GT(s.value, 0.01);   // GB/s
  EXPECT_LT(s.value, 1e4);
  backend.end_invocation();
}

TEST(NativeTriadBackend, MetricName) {
  NativeTriadBackend backend;
  EXPECT_EQ(backend.metric_name(), "GB/s");
}

TEST(NativeTriadBackend, IterationOutsideInvocationThrows) {
  NativeTriadBackend backend;
  EXPECT_THROW(backend.run_iteration(), std::logic_error);
}

TEST(NativeTriadBackend, ArenaSteadyStateIsAllocationFree) {
  NativeTriadBackend backend;
  const auto run_one = [&](std::int64_t n, std::uint64_t invocation) {
    backend.begin_invocation(triad_config(n), invocation);
    backend.run_iteration();
    backend.end_invocation();
  };
  run_one(1 << 14, 0);
  const auto warm = *backend.arena_stats();
  EXPECT_EQ(warm.slab_misses, 3u);  // stream.a/b/c
  for (std::uint64_t inv = 1; inv <= 4; ++inv) run_one(1 << 14, inv);
  run_one(1 << 12, 0);
  const auto steady = *backend.arena_stats();
  EXPECT_EQ(steady.allocations, warm.allocations);
  EXPECT_EQ(steady.slab_misses, warm.slab_misses);
  EXPECT_EQ(steady.slab_hits, warm.slab_hits + 15u);
}

}  // namespace
}  // namespace rooftune::core
