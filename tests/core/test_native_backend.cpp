#include "core/native_backend.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "core/evaluator.hpp"

namespace rooftune::core {
namespace {

TEST(NativeDgemmBackend, ProducesPlausibleSamples) {
  NativeDgemmBackend backend;
  backend.begin_invocation(dgemm_config(64, 64, 32), 0);
  for (int i = 0; i < 3; ++i) {
    const Sample s = backend.run_iteration();
    EXPECT_GT(s.value, 0.0);          // some GFLOP/s
    EXPECT_LT(s.value, 1e5);          // but not absurd
    EXPECT_GT(s.kernel_time.value, 0.0);
  }
  backend.end_invocation();
}

TEST(NativeDgemmBackend, MetricAndClock) {
  NativeDgemmBackend backend;
  EXPECT_EQ(backend.metric_name(), "GFLOP/s");
  const auto t0 = backend.clock().now();
  backend.begin_invocation(dgemm_config(32, 32, 32), 0);
  backend.run_iteration();
  backend.end_invocation();
  EXPECT_GT((backend.clock().now() - t0).value, 0.0);
}

TEST(NativeDgemmBackend, RejectsBadDimensions) {
  NativeDgemmBackend backend;
  EXPECT_THROW(backend.begin_invocation(dgemm_config(0, 10, 10), 0),
               std::invalid_argument);
}

TEST(NativeDgemmBackend, IterationOutsideInvocationThrows) {
  NativeDgemmBackend backend;
  EXPECT_THROW(backend.run_iteration(), std::logic_error);
}

TEST(NativeDgemmBackend, WorksWithEvaluator) {
  NativeDgemmBackend backend;
  TunerOptions options;
  options.invocations = 2;
  options.iterations = 3;
  options.timeout = util::Seconds{5.0};
  const auto result = run_configuration(backend, dgemm_config(48, 48, 48), options, {});
  EXPECT_EQ(result.invocations.size(), 2u);
  EXPECT_GT(result.value(), 0.0);
}

TEST(NativeTriadBackend, ProducesPlausibleBandwidth) {
  NativeTriadBackend backend;
  backend.begin_invocation(triad_config(1 << 14), 0);
  const Sample s = backend.run_iteration();
  EXPECT_GT(s.value, 0.01);   // GB/s
  EXPECT_LT(s.value, 1e4);
  backend.end_invocation();
}

TEST(NativeTriadBackend, MetricName) {
  NativeTriadBackend backend;
  EXPECT_EQ(backend.metric_name(), "GB/s");
}

TEST(NativeTriadBackend, IterationOutsideInvocationThrows) {
  NativeTriadBackend backend;
  EXPECT_THROW(backend.run_iteration(), std::logic_error);
}

}  // namespace
}  // namespace rooftune::core
