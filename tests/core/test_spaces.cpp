#include "core/spaces.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <stdexcept>

namespace rooftune::core {
namespace {

TEST(DgemmSpaces, InitialCardinalityIs539) {
  // Paper Eq. 8: |S| = 7 * 7 * 11 = 539.
  const auto space = dgemm_initial_space();
  EXPECT_EQ(space.cardinality(), 539u);
  const auto configs = space.enumerate();
  EXPECT_EQ(configs.front().at("n"), 64);
  EXPECT_EQ(configs.front().at("k"), 2);
  EXPECT_EQ(configs.back().at("n"), 4096);
  EXPECT_EQ(configs.back().at("k"), 2048);
}

TEST(DgemmSpaces, NarrowedCardinalityIs96) {
  // §IV-A: 4 * 4 * 6 = 96 after narrowing to 512..4096 / 64..2048.
  EXPECT_EQ(dgemm_narrowed_space().cardinality(), 96u);
}

TEST(DgemmSpaces, ReducedSpaceUsesMultipleOf2LeadingDims) {
  // §IV-A: leading dimensions adjusted to 500, 1000, 2000, 4000.
  const auto space = dgemm_reduced_space();
  EXPECT_EQ(space.cardinality(), 96u);
  std::set<std::int64_t> ns, ms, ks;
  for (const auto& c : space.enumerate()) {
    ns.insert(c.at("n"));
    ms.insert(c.at("m"));
    ks.insert(c.at("k"));
  }
  EXPECT_EQ(ns, (std::set<std::int64_t>{500, 1000, 2000, 4000}));
  EXPECT_EQ(ms, (std::set<std::int64_t>{512, 1024, 2048, 4096}));
  EXPECT_EQ(ks, (std::set<std::int64_t>{64, 128, 256, 512, 1024, 2048}));
}

TEST(DgemmSpaces, AllTableVOptimaAreInReducedSpace) {
  const auto space = dgemm_reduced_space();
  const auto configs = space.enumerate();
  const auto contains = [&](std::int64_t n, std::int64_t m, std::int64_t k) {
    return std::find(configs.begin(), configs.end(), dgemm_config(n, m, k)) !=
           configs.end();
  };
  EXPECT_TRUE(contains(1000, 4096, 128));
  EXPECT_TRUE(contains(2000, 2048, 64));
  EXPECT_TRUE(contains(2000, 4096, 128));
  EXPECT_TRUE(contains(4000, 2048, 128));
  EXPECT_TRUE(contains(4000, 512, 128));
  EXPECT_TRUE(contains(4000, 1024, 128));
  EXPECT_TRUE(contains(500, 4096, 1024));  // the 2695v4 C+I mistuned pick
}

TEST(DgemmSpaces, ScaledSpaceDegeneratesToReducedAtScaleOne) {
  // Octave boundaries are exact (2^j is exact in double), so scale 1 must
  // reproduce the paper's reduced grid value-for-value, not just in count.
  const auto scaled = dgemm_scaled_space(1);
  const auto reduced = dgemm_reduced_space();
  EXPECT_EQ(scaled.cardinality(), 96u);
  EXPECT_EQ(scaled.enumerate(), reduced.enumerate());
}

TEST(DgemmSpaces, ScaledSpaceCardinalitiesAndMonotonicity) {
  EXPECT_EQ(dgemm_scaled_space(2).cardinality(), 7u * 7u * 11u);
  EXPECT_EQ(dgemm_scaled_space(6).cardinality(), 19u * 19u * 31u);  // 11191
  const auto fine = dgemm_scaled_space(6);
  for (const auto& range : fine.ranges()) {
    for (std::size_t i = 1; i < range.size(); ++i) {
      EXPECT_LT(range.values()[i - 1], range.values()[i]) << range.name();
    }
  }
}

TEST(DgemmSpaces, ScaledSpaceContainsReducedEndpoints) {
  // Every whole-octave value of the reduced grid survives any subdivision.
  const auto space = dgemm_scaled_space(6);
  const auto configs = space.enumerate();
  EXPECT_NE(std::find(configs.begin(), configs.end(),
                      dgemm_config(500, 512, 64)),
            configs.end());
  EXPECT_NE(std::find(configs.begin(), configs.end(),
                      dgemm_config(4000, 4096, 2048)),
            configs.end());
}

TEST(DgemmSpaces, ScaledSpaceRejectsBadScale) {
  EXPECT_THROW((void)dgemm_scaled_space(0), std::invalid_argument);
  EXPECT_THROW((void)dgemm_scaled_space(-3), std::invalid_argument);
}

TEST(DgemmSpaces, SquareConstraintSpace) {
  // §IV-A constraint-specification study: m == n.
  const auto space = dgemm_square_space();
  EXPECT_EQ(space.cardinality(), 4u * 6u);  // 4 square sizes x 6 k values
  for (const auto& c : space.enumerate()) EXPECT_EQ(c.at("m"), c.at("n"));
}

TEST(TriadSpace, PaperSweepRange) {
  // §IV-B: working sets from 3 KiB to 768 MiB, doubling.
  const auto space = triad_space();
  const auto configs = space.enumerate();
  ASSERT_FALSE(configs.empty());
  EXPECT_EQ(triad_working_set(configs.front()).value, util::Bytes::KiB(3).value);
  EXPECT_EQ(triad_working_set(configs.back()).value, util::Bytes::MiB(768).value);
  EXPECT_EQ(configs.size(), 19u);  // 2^7 .. 2^25 elements
  for (std::size_t i = 1; i < configs.size(); ++i) {
    EXPECT_EQ(configs[i].at("N"), 2 * configs[i - 1].at("N"));
  }
}

TEST(TriadSpace, CustomRange) {
  const auto space = triad_space(util::Bytes::KiB(24), util::Bytes::KiB(96));
  const auto configs = space.enumerate();
  ASSERT_EQ(configs.size(), 3u);
  EXPECT_EQ(triad_working_set(configs[0]).value, util::Bytes::KiB(24).value);
  EXPECT_EQ(triad_working_set(configs[2]).value, util::Bytes::KiB(96).value);
}

TEST(TriadSpace, WorkingSetFormula) {
  // 3 vectors of doubles: 24 bytes per element (§III-B).
  EXPECT_EQ(triad_working_set(triad_config(1000)).value, 24000u);
}

}  // namespace
}  // namespace rooftune::core
