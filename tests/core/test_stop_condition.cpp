#include "core/stop_condition.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>

namespace rooftune::core {
namespace {

stats::OnlineMoments from(std::initializer_list<double> xs) {
  stats::OnlineMoments m;
  for (double x : xs) m.add(x);
  return m;
}

EvalState state_of(const stats::OnlineMoments& m, double time = 0.0,
                   std::uint64_t count = 0) {
  EvalState s;
  s.moments = &m;
  s.accumulated_time = util::Seconds{time};
  s.count = count == 0 ? m.count() : count;
  return s;
}

// ---- Condition 1: max time --------------------------------------------------

TEST(MaxTimeStop, FiresAtBudget) {
  const MaxTimeStop stop{util::Seconds{10.0}};
  const auto m = from({1.0});
  EXPECT_EQ(stop.check(state_of(m, 9.99)), StopReason::None);
  EXPECT_EQ(stop.check(state_of(m, 10.0)), StopReason::MaxTime);
  EXPECT_EQ(stop.check(state_of(m, 50.0)), StopReason::MaxTime);
}

TEST(MaxTimeStop, RejectsNonPositiveBudget) {
  EXPECT_THROW(MaxTimeStop{util::Seconds{0.0}}, std::invalid_argument);
  EXPECT_THROW(MaxTimeStop{util::Seconds{-1.0}}, std::invalid_argument);
}

// ---- Condition 2: max count -------------------------------------------------

TEST(MaxCountStop, FiresAtCap) {
  const MaxCountStop stop{200};
  const auto m = from({1.0});
  EXPECT_EQ(stop.check(state_of(m, 0.0, 199)), StopReason::None);
  EXPECT_EQ(stop.check(state_of(m, 0.0, 200)), StopReason::MaxCount);
}

TEST(MaxCountStop, RejectsZeroCap) {
  EXPECT_THROW(MaxCountStop{0}, std::invalid_argument);
}

// ---- Condition 3: confidence ------------------------------------------------

TEST(ConfidenceStop, FiresWhenTight) {
  const ConfidenceStop stop{0.99, 0.01};
  const auto tight = from({100.0, 100.01, 99.99, 100.0, 100.02, 99.98});
  EXPECT_EQ(stop.check(state_of(tight)), StopReason::Converged);
  const auto loose = from({80.0, 120.0, 95.0});
  EXPECT_EQ(stop.check(state_of(loose)), StopReason::None);
}

TEST(ConfidenceStop, NeedsMinSamples) {
  const ConfidenceStop stop{0.99, 0.01, 10};
  const auto tight = from({100.0, 100.0001, 100.0});
  EXPECT_EQ(stop.check(state_of(tight)), StopReason::None);
}

TEST(ConfidenceStop, Validation) {
  EXPECT_THROW(ConfidenceStop(0.0, 0.01), std::invalid_argument);
  EXPECT_THROW(ConfidenceStop(1.0, 0.01), std::invalid_argument);
  EXPECT_THROW(ConfidenceStop(0.99, 0.0), std::invalid_argument);
}

// ---- Condition 4: upper bound vs. incumbent --------------------------------

TEST(UpperBoundStop, PrunesWhenCannotWin) {
  const UpperBoundStop stop{0.99, 2};
  auto m = from({50.0, 51.0, 49.0, 50.5});
  auto s = state_of(m);
  s.incumbent = 100.0;  // far above any CI upper bound of ~50 +/- small
  EXPECT_EQ(stop.check(s), StopReason::PrunedByBest);
}

TEST(UpperBoundStop, KeepsContenders) {
  const UpperBoundStop stop{0.99, 2};
  auto m = from({99.0, 101.0, 100.5, 99.5});
  auto s = state_of(m);
  s.incumbent = 100.0;  // inside the CI: could still win
  EXPECT_EQ(stop.check(s), StopReason::None);
}

TEST(UpperBoundStop, NoIncumbentNoPrune) {
  const UpperBoundStop stop{0.99, 2};
  const auto m = from({1.0, 1.0, 1.0});
  EXPECT_EQ(stop.check(state_of(m)), StopReason::None);
}

TEST(UpperBoundStop, RespectsMinCount) {
  // §III-C.4: "it can be useful to increase this minimum count" — the
  // 2695 v4 fix uses 100.
  const UpperBoundStop stop{0.99, 100};
  auto m = from({50.0, 50.0, 50.0});
  auto s = state_of(m);
  s.incumbent = 1000.0;
  EXPECT_EQ(stop.check(s), StopReason::None);  // only 3 < 100 samples
}

TEST(UpperBoundStop, ImplementsListing1) {
  // Paper Listing 1: stop iff mean + marg < best.
  auto m = from({10.0, 10.2, 9.8, 10.1, 9.9});
  const auto ci = stats::mean_confidence_interval(m, 0.99);
  const UpperBoundStop stop{0.99, 2};

  auto s = state_of(m);
  s.incumbent = ci.mean + ci.margin() + 1e-9;  // just above the upper bound
  EXPECT_EQ(stop.check(s), StopReason::PrunedByBest);
  s.incumbent = ci.mean + ci.margin() - 1e-9;  // just below
  EXPECT_EQ(stop.check(s), StopReason::None);
}

TEST(UpperBoundStop, TrendGuardDefersPruning) {
  // §VII future work: a rising trend defers pruning even when the CI says
  // the configuration loses.
  stats::TrendDetector trend(8);
  stats::OnlineMoments m;
  for (int i = 0; i < 8; ++i) {
    const double v = 50.0 + 5.0 * i;  // strongly rising
    trend.add(v);
    m.add(v);
  }
  auto s = state_of(m);
  s.incumbent = 1000.0;
  s.trend = &trend;

  const UpperBoundStop guarded{0.99, 2, /*trend_guard=*/true};
  const UpperBoundStop unguarded{0.99, 2, /*trend_guard=*/false};
  EXPECT_EQ(guarded.check(s), StopReason::None);
  EXPECT_EQ(unguarded.check(s), StopReason::PrunedByBest);
}

// ---- Median stability (future work, §VII) -----------------------------------

TEST(MedianStabilityStop, FiresOnStableMedian) {
  const MedianStabilityStop stop{0.01, 16};
  for (int i = 0; i < 16; ++i) stop.observe(100.0 + (i % 2 == 0 ? 0.1 : -0.1));
  const auto m = from({100.0});
  EXPECT_EQ(stop.check(state_of(m)), StopReason::Converged);
}

TEST(MedianStabilityStop, SilentWhileWindowFills) {
  const MedianStabilityStop stop{0.01, 16};
  for (int i = 0; i < 10; ++i) stop.observe(100.0);
  const auto m = from({100.0});
  EXPECT_EQ(stop.check(state_of(m)), StopReason::None);
}

TEST(MedianStabilityStop, DetectsDriftingMedian) {
  const MedianStabilityStop stop{0.01, 16};
  for (int i = 0; i < 16; ++i) stop.observe(100.0 + 3.0 * i);
  const auto m = from({100.0});
  EXPECT_EQ(stop.check(state_of(m)), StopReason::None);
}

TEST(MedianStabilityStop, Validation) {
  EXPECT_THROW(MedianStabilityStop(0.0, 16), std::invalid_argument);
  EXPECT_THROW(MedianStabilityStop(0.01, 4), std::invalid_argument);
}

// ---- StopSet ----------------------------------------------------------------

TEST(StopSet, FirstFiringConditionWins) {
  StopSet stops;
  stops.add(std::make_shared<MaxTimeStop>(util::Seconds{10.0}));
  stops.add(std::make_shared<MaxCountStop>(200));
  const auto m = from({1.0});
  // Both would fire; MaxTime is first.
  EXPECT_EQ(stops.check(state_of(m, 11.0, 500)), StopReason::MaxTime);
  // Only the count fires.
  EXPECT_EQ(stops.check(state_of(m, 1.0, 500)), StopReason::MaxCount);
  // Neither fires.
  EXPECT_EQ(stops.check(state_of(m, 1.0, 5)), StopReason::None);
}

TEST(StopSet, RejectsNull) {
  StopSet stops;
  EXPECT_THROW(stops.add(nullptr), std::invalid_argument);
}

TEST(StopConditions, NamesAreDescriptive) {
  EXPECT_NE(MaxTimeStop{util::Seconds{10.0}}.name().find("10"), std::string::npos);
  EXPECT_NE(MaxCountStop{200}.name().find("200"), std::string::npos);
  EXPECT_NE(ConfidenceStop(0.99, 0.01).name().find("99"), std::string::npos);
  EXPECT_NE(UpperBoundStop(0.99, 100).name().find("100"), std::string::npos);
}

TEST(StopReasonNames, ToString) {
  EXPECT_STREQ(to_string(StopReason::None), "none");
  EXPECT_STREQ(to_string(StopReason::MaxTime), "max-time");
  EXPECT_STREQ(to_string(StopReason::MaxCount), "max-count");
  EXPECT_STREQ(to_string(StopReason::Converged), "converged");
  EXPECT_STREQ(to_string(StopReason::PrunedByBest), "pruned-by-best");
}

}  // namespace
}  // namespace rooftune::core
