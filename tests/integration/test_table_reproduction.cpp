// ctest pins for the remaining paper tables: TRIAD bandwidths (Table VI)
// and the technique-time ordering on all four machines (Tables VIII-XI).
// The bench binaries print these with full paper-vs-measured detail; the
// tests here guard the reproduction against calibration regressions.

#include <gtest/gtest.h>

#include <map>

#include "core/autotuner.hpp"
#include "core/spaces.hpp"
#include "core/techniques.hpp"
#include "roofline/builder.hpp"
#include "simhw/sim_backend.hpp"

namespace rooftune {
namespace {

// ---- Table VI ---------------------------------------------------------------

struct TriadCase {
  const char* machine;
  int sockets;
  double dram;  // Table VI B_DRAM
  double l3;    // Table VI B_L3
};

class TableVIReproduction : public ::testing::TestWithParam<TriadCase> {};

TEST_P(TableVIReproduction, BandwidthsWithin3Percent) {
  const auto& c = GetParam();
  const auto machine = simhw::machine_by_name(c.machine);
  simhw::SimOptions sim;
  sim.sockets_used = c.sockets;
  sim.affinity = c.sockets == 1 ? util::AffinityPolicy::Close
                                : util::AffinityPolicy::Spread;
  simhw::SimTriadBackend backend(machine, sim);

  roofline::BuilderOptions options;
  options.prune_min_count = 10;
  auto [l3, dram] = roofline::measure_triad_ceilings(
      backend, "t", machine.theoretical_bandwidth(c.sockets),
      machine.l3_capacity(c.sockets), options);

  EXPECT_NEAR(dram.value.value, c.dram, 0.03 * c.dram);
  EXPECT_NEAR(l3.value.value, c.l3, 0.03 * c.l3);
  // The paper's signature observation: measured DRAM >= ~theoretical
  // (>100 % everywhere except the 2695v4-S2's 99.4 %).
  EXPECT_GT(dram.value.value, 0.96 * dram.theoretical.value);
}

INSTANTIATE_TEST_SUITE_P(PaperTableVI, TableVIReproduction,
                         ::testing::Values(TriadCase{"2650v4", 1, 40.42, 256.07},
                                           TriadCase{"2650v4", 2, 80.65, 452.05},
                                           TriadCase{"2695v4", 1, 43.29, 371.41},
                                           TriadCase{"2695v4", 2, 76.32, 661.68},
                                           TriadCase{"gold6132", 1, 68.32, 422.87},
                                           TriadCase{"gold6132", 2, 132.18, 814.82},
                                           TriadCase{"gold6148", 1, 74.16, 547.11},
                                           TriadCase{"gold6148", 2, 139.80, 1000.10}));

// ---- Tables VIII-XI time ordering on every machine ---------------------------

class TechniqueOrdering : public ::testing::TestWithParam<const char*> {};

TEST_P(TechniqueOrdering, HoldsOnEveryMachine) {
  const auto machine = simhw::machine_by_name(GetParam());
  const std::uint64_t min_count = machine.name == "2695v4" ? 100 : 2;

  std::map<core::Technique, double> time;
  for (const auto technique : {core::Technique::Default, core::Technique::Confidence,
                               core::Technique::CInner, core::Technique::CIOuter,
                               core::Technique::Single}) {
    simhw::SimOptions sim;
    sim.sockets_used = 1;
    simhw::SimDgemmBackend backend(machine, sim);
    const auto options = core::technique_options(technique, {}, 0, min_count);
    time[technique] = core::Autotuner(core::dgemm_reduced_space(), options)
                          .run(backend)
                          .total_time.value;
  }

  EXPECT_GT(time[core::Technique::Default], time[core::Technique::Confidence]);
  EXPECT_GT(time[core::Technique::Confidence], time[core::Technique::CInner]);
  EXPECT_GT(time[core::Technique::CInner], time[core::Technique::CIOuter]);
  EXPECT_GT(time[core::Technique::CIOuter], time[core::Technique::Single]);
  // Speedup magnitude: an order of magnitude at least, everywhere.
  EXPECT_GT(time[core::Technique::Default] / time[core::Technique::CIOuter], 10.0);
}

INSTANTIATE_TEST_SUITE_P(AllMachines, TechniqueOrdering,
                         ::testing::Values("2650v4", "2695v4", "gold6132",
                                           "gold6148"));

}  // namespace
}  // namespace rooftune
