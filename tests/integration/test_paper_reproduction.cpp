// End-to-end reproduction checks: the paper's headline claims, asserted
// against the simulated machines.  The bench/ binaries regenerate the full
// tables; these tests pin the *shape* so regressions are caught by ctest.

#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "core/autotuner.hpp"
#include "core/spaces.hpp"
#include "core/techniques.hpp"
#include "simhw/sim_backend.hpp"

namespace rooftune {
namespace {

core::TuningRun run_technique(const std::string& machine, int sockets,
                              core::Technique technique,
                              std::uint64_t min_count = 2) {
  simhw::SimOptions sim;
  sim.sockets_used = sockets;
  simhw::SimDgemmBackend backend(simhw::machine_by_name(machine), sim);
  const auto options = core::technique_options(technique, {}, 0, min_count);
  const core::Autotuner tuner(core::dgemm_reduced_space(), options);
  return tuner.run(backend);
}

// Table V: the autotuner recovers the paper's optimal dimensions.  The
// 2695 v4 needs the min-count=100 guard, exactly as in the paper (§VI-C).
struct TableVCase {
  const char* machine;
  int sockets;
  std::int64_t n, m, k;
  std::uint64_t min_count;
};

class TableVReproduction : public ::testing::TestWithParam<TableVCase> {};

TEST_P(TableVReproduction, FindsPaperOptimum) {
  const auto& c = GetParam();
  const auto run =
      run_technique(c.machine, c.sockets, core::Technique::CIOuter, c.min_count);
  EXPECT_EQ(run.best_config().at("n"), c.n) << run.best_config().to_string();
  EXPECT_EQ(run.best_config().at("m"), c.m) << run.best_config().to_string();
  EXPECT_EQ(run.best_config().at("k"), c.k) << run.best_config().to_string();
}

INSTANTIATE_TEST_SUITE_P(
    PaperMachines, TableVReproduction,
    ::testing::Values(TableVCase{"2650v4", 1, 1000, 4096, 128, 2},
                      TableVCase{"2650v4", 2, 2000, 2048, 64, 2},
                      TableVCase{"gold6132", 1, 1000, 4096, 128, 2},
                      TableVCase{"gold6132", 2, 4000, 512, 128, 2},
                      TableVCase{"gold6148", 1, 4000, 512, 128, 2},
                      TableVCase{"gold6148", 2, 4000, 1024, 128, 2},
                      TableVCase{"2695v4", 1, 2000, 4096, 128, 100},
                      TableVCase{"2695v4", 2, 4000, 2048, 128, 100}));

// Headline accuracy claim: every optimized technique reports the same
// benchmark result as Default within < 2 % (abstract, §VI-C) — on the
// machines without the 2695 v4 warm-up pathology.
TEST(PaperClaims, OptimizedTechniquesWithin2PercentOfDefault) {
  for (const char* machine : {"2650v4", "gold6132", "gold6148"}) {
    for (int sockets : {1, 2}) {
      const double reference =
          run_technique(machine, sockets, core::Technique::Default).best_value();
      for (const auto technique :
           {core::Technique::Confidence, core::Technique::CInner,
            core::Technique::CInnerReverse, core::Technique::CIOuter,
            core::Technique::CIOuterReverse}) {
        const double value = run_technique(machine, sockets, technique).best_value();
        EXPECT_NEAR(value, reference, 0.02 * reference)
            << machine << " S" << sockets << " "
            << core::technique_name(technique);
      }
    }
  }
}

// On the 2695 v4, the default min-count=2 degrades the result and the
// min-count=100 guard restores it (§VI-C, Table IX).
TEST(PaperClaims, MinCount100Fixes2695v4) {
  const double reference =
      run_technique("2695v4", 1, core::Technique::Default).best_value();
  const double degraded =
      run_technique("2695v4", 1, core::Technique::CInner, 2).best_value();
  const double fixed =
      run_technique("2695v4", 1, core::Technique::CInner, 100).best_value();
  EXPECT_LT(degraded, 0.95 * reference);   // visibly wrong (paper: 467 vs 590)
  EXPECT_NEAR(fixed, reference, 0.02 * reference);  // restored (paper: 587)
}

// Speedup ordering (Tables VIII-XI): Default is slowest; Confidence gives a
// moderate speedup; C+Inner much more; C+I+Outer the most among CI-based
// techniques; reversal slows the pruned searches down.
TEST(PaperClaims, SpeedupOrderingMatchesTables) {
  std::map<core::Technique, double> time;
  for (const auto technique : core::automatic_techniques()) {
    double total = 0.0;
    for (int sockets : {1, 2}) {
      total += run_technique("2650v4", sockets, technique).total_time.value;
    }
    time[technique] = total;
  }

  EXPECT_GT(time[core::Technique::Default], time[core::Technique::Confidence]);
  EXPECT_GT(time[core::Technique::Confidence], time[core::Technique::CInner]);
  EXPECT_GT(time[core::Technique::CInner], time[core::Technique::CIOuter]);
  // Reversal pays: expensive configurations run before an incumbent exists.
  EXPECT_GT(time[core::Technique::CInnerReverse], time[core::Technique::CInner]);
  EXPECT_GT(time[core::Technique::CIOuterReverse], time[core::Technique::CIOuter]);
  // Single is the fastest of all (and the least accurate).
  EXPECT_LT(time[core::Technique::Single], time[core::Technique::CIOuter]);

  // The headline: C+I+Outer is around two orders of magnitude faster than
  // Default (paper: 116.33x on this machine; accept a generous band).
  const double speedup = time[core::Technique::Default] / time[core::Technique::CIOuter];
  EXPECT_GT(speedup, 40.0);
  EXPECT_LT(speedup, 400.0);
}

// The Confidence-only speedup is modest (paper: 2.9-5.2x across machines).
TEST(PaperClaims, ConfidenceSpeedupIsModest) {
  for (const char* machine : {"2650v4", "gold6148"}) {
    double t_default = 0.0, t_confidence = 0.0;
    for (int sockets : {1, 2}) {
      t_default += run_technique(machine, sockets, core::Technique::Default)
                       .total_time.value;
      t_confidence += run_technique(machine, sockets, core::Technique::Confidence)
                          .total_time.value;
    }
    const double speedup = t_default / t_confidence;
    EXPECT_GT(speedup, 1.5) << machine;
    EXPECT_LT(speedup, 12.0) << machine;
  }
}

// "Single" underestimates performance (paper: -2 % to -26 % depending on
// machine warm-up behaviour).
TEST(PaperClaims, SingleUnderestimates) {
  for (const char* machine : {"gold6132", "gold6148", "2695v4"}) {
    const double reference =
        run_technique(machine, 1, core::Technique::Default).best_value();
    const double single =
        run_technique(machine, 1, core::Technique::Single).best_value();
    EXPECT_LT(single, reference) << machine;
  }
}

// §VI-A: Intel's published square configuration reaches only ~52-56 % of
// peak; the autotuned configuration far exceeds it.
TEST(PaperClaims, SquareConfigurationUnderperforms) {
  simhw::SimOptions sim;
  sim.sockets_used = 2;
  simhw::SimDgemmBackend backend(simhw::machine_by_name("gold6132"), sim);
  const auto square = core::run_configuration(
      backend, core::dgemm_config(1000, 1000, 1000),
      core::technique_options(core::Technique::Default), {});
  const double peak = simhw::machine_by_name("gold6132").theoretical_flops(2).value;
  EXPECT_NEAR(square.value() / peak, 0.5569, 0.04);

  const auto tuned = run_technique("gold6132", 2, core::Technique::Default);
  EXPECT_GT(tuned.best_value() / square.value(), 1.25);
}

// §VII / future work: with the trend guard enabled, the 2695 v4 warm-up
// configurations survive pruning even with min-count=2.
TEST(FutureWork, TrendGuardRescues2695v4) {
  simhw::SimOptions sim;
  sim.sockets_used = 1;
  simhw::SimDgemmBackend backend(simhw::machine_by_name("2695v4"), sim);
  auto options = core::technique_options(core::Technique::CInner, {}, 0, 2);
  options.trend_guard = true;
  const core::Autotuner tuner(core::dgemm_reduced_space(), options);
  const auto run = tuner.run(backend);

  const double reference =
      run_technique("2695v4", 1, core::Technique::Default).best_value();
  EXPECT_GT(run.best_value(), 0.95 * reference);
}

}  // namespace
}  // namespace rooftune
