// Seed-robustness sweeps: the reproduction must not hinge on one lucky
// noise realization.  Across independent seeds, the autotuner must keep
// finding the paper's Table V dimensions and keep the < 2 % accuracy claim.

#include <gtest/gtest.h>

#include "core/autotuner.hpp"
#include "core/spaces.hpp"
#include "core/techniques.hpp"
#include "simhw/sim_backend.hpp"

namespace rooftune {
namespace {

core::TuningRun run_seeded(const std::string& machine, int sockets,
                           core::Technique technique, std::uint64_t seed,
                           std::uint64_t min_count) {
  simhw::SimOptions sim;
  sim.sockets_used = sockets;
  sim.seed = seed;
  simhw::SimDgemmBackend backend(simhw::machine_by_name(machine), sim);
  const auto options = core::technique_options(technique, {}, 0, min_count);
  return core::Autotuner(core::dgemm_reduced_space(), options).run(backend);
}

struct SeedCase {
  const char* machine;
  int sockets;
  std::int64_t n, m, k;
  std::uint64_t min_count;
};

class SeedSweep : public ::testing::TestWithParam<SeedCase> {};

TEST_P(SeedSweep, ArgmaxStableAcrossSeeds) {
  const auto& c = GetParam();
  int hits = 0;
  constexpr int seeds = 7;
  for (std::uint64_t seed = 3000; seed < 3000 + seeds; ++seed) {
    const auto run =
        run_seeded(c.machine, c.sockets, core::Technique::CIOuter, seed, c.min_count);
    const auto& best = run.best_config();
    if (best.at("n") == c.n && best.at("m") == c.m && best.at("k") == c.k) ++hits;
  }
  // The paper's optimum must win in (almost) every noise realization; allow
  // one noise-flipped outlier out of seven.
  EXPECT_GE(hits, seeds - 1) << c.machine << " S" << c.sockets;
}

INSTANTIATE_TEST_SUITE_P(
    TableV, SeedSweep,
    ::testing::Values(SeedCase{"2650v4", 1, 1000, 4096, 128, 2},
                      SeedCase{"2650v4", 2, 2000, 2048, 64, 2},
                      SeedCase{"gold6132", 2, 4000, 512, 128, 2},
                      SeedCase{"gold6148", 1, 4000, 512, 128, 2},
                      SeedCase{"2695v4", 1, 2000, 4096, 128, 100}));

TEST(SeedSweep, AccuracyClaimHoldsAcrossSeeds) {
  // abstract: "error of less than 2 %" — checked across 5 seeds on a
  // well-behaved machine for the headline technique.
  for (std::uint64_t seed = 4000; seed < 4005; ++seed) {
    const double reference =
        run_seeded("gold6148", 1, core::Technique::Default, seed, 2).best_value();
    const double optimized =
        run_seeded("gold6148", 1, core::Technique::CIOuter, seed, 2).best_value();
    EXPECT_NEAR(optimized, reference, 0.02 * reference) << "seed " << seed;
  }
}

TEST(SeedSweep, SpeedupMagnitudeStableAcrossSeeds) {
  for (std::uint64_t seed = 5000; seed < 5003; ++seed) {
    const double t_default =
        run_seeded("2650v4", 1, core::Technique::Default, seed, 2).total_time.value;
    const double t_cio =
        run_seeded("2650v4", 1, core::Technique::CIOuter, seed, 2).total_time.value;
    const double speedup = t_default / t_cio;
    EXPECT_GT(speedup, 40.0) << "seed " << seed;
    EXPECT_LT(speedup, 400.0) << "seed " << seed;
  }
}

TEST(SeedSweep, SameSeedBitIdentical) {
  const auto a = run_seeded("gold6132", 1, core::Technique::CIOuter, 9999, 2);
  const auto b = run_seeded("gold6132", 1, core::Technique::CIOuter, 9999, 2);
  ASSERT_EQ(a.results.size(), b.results.size());
  for (std::size_t i = 0; i < a.results.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.results[i].value(), b.results[i].value());
  }
  EXPECT_DOUBLE_EQ(a.total_time.value, b.total_time.value);
}

}  // namespace
}  // namespace rooftune
