#include "telemetry/environment.hpp"

#include <gtest/gtest.h>

#include <set>
#include <stdexcept>
#include <string>

#include "util/json_parse.hpp"

namespace rooftune::telemetry {
namespace {

TEST(Environment, CaptureNeverFailsAndFillsBasics) {
  const auto env = EnvironmentFingerprint::capture();
  EXPECT_GE(env.logical_cpus, 1);
  EXPECT_GE(env.physical_cores, 1);
  EXPECT_GE(env.smt, 1);
  EXPECT_GE(env.numa_nodes, 1);
  EXPECT_FALSE(env.cpu_model.empty());
  // The compiler and build type come from macros, never from the machine.
  EXPECT_FALSE(env.compiler.empty());
  EXPECT_FALSE(env.build.empty());
  EXPECT_FALSE(env.governor.empty());
  EXPECT_FALSE(env.turbo.empty());
}

TEST(Environment, StableHashIsReproducible) {
  const auto a = EnvironmentFingerprint::capture();
  const auto b = EnvironmentFingerprint::capture();
  EXPECT_EQ(a.stable_hash(), b.stable_hash());
  EXPECT_NE(a.stable_hash(), 0u);
}

TEST(Environment, StableHashIsSensitiveToEveryKnob) {
  const auto base = EnvironmentFingerprint::capture();
  auto changed = base;
  changed.governor = base.governor + "x";
  EXPECT_NE(base.stable_hash(), changed.stable_hash());
  changed = base;
  changed.turbo = base.turbo == "on" ? "off" : "on";
  EXPECT_NE(base.stable_hash(), changed.stable_hash());
  changed = base;
  changed.smt = base.smt + 1;
  EXPECT_NE(base.stable_hash(), changed.stable_hash());
  changed = base;
  changed.freq_max_khz = base.freq_max_khz + 1;
  EXPECT_NE(base.stable_hash(), changed.stable_hash());
}

// Golden field-set test: the provenance record participates in the
// journal's bit-identity guarantee, so its key set is frozen — and it must
// never grow a wall-clock or host-identity field.
TEST(Environment, ProvenanceJsonHasExactlyTheGoldenFieldSet) {
  const auto doc =
      util::parse_json(EnvironmentFingerprint::capture().provenance_json());
  std::set<std::string> keys;
  for (const auto& [key, value] : doc.as_object()) keys.insert(key);

  const std::set<std::string> golden = {
      "t",        "v",        "cpu",          "uarch",        "logical_cpus",
      "cores",    "smt",      "numa",         "governor",     "freq_min_khz",
      "freq_max_khz", "turbo", "thp",         "aslr",         "compiler",
      "build",    "env"};
  EXPECT_EQ(keys, golden);
  for (const char* forbidden : {"time", "timestamp", "date", "hostname", "pid"}) {
    EXPECT_EQ(keys.count(forbidden), 0u) << forbidden;
  }
  EXPECT_EQ(doc.at("t").as_string(), "provenance");
  EXPECT_EQ(doc.at("v").as_int(), 1);
  // env is the stable hash as fixed-width hex (JSON doubles cannot carry
  // 64-bit integers exactly).
  EXPECT_EQ(doc.at("env").as_string().size(), 16u);
}

TEST(Environment, ProvenanceRoundTripsThroughParse) {
  const auto env = EnvironmentFingerprint::capture();
  const auto restored =
      parse_provenance(util::parse_json(env.provenance_json()));
  EXPECT_EQ(restored.cpu_model, env.cpu_model);
  EXPECT_EQ(restored.uarch, env.uarch);
  EXPECT_EQ(restored.logical_cpus, env.logical_cpus);
  EXPECT_EQ(restored.physical_cores, env.physical_cores);
  EXPECT_EQ(restored.smt, env.smt);
  EXPECT_EQ(restored.numa_nodes, env.numa_nodes);
  EXPECT_EQ(restored.governor, env.governor);
  EXPECT_EQ(restored.freq_min_khz, env.freq_min_khz);
  EXPECT_EQ(restored.freq_max_khz, env.freq_max_khz);
  EXPECT_EQ(restored.turbo, env.turbo);
  EXPECT_EQ(restored.thp, env.thp);
  EXPECT_EQ(restored.aslr, env.aslr);
  EXPECT_EQ(restored.compiler, env.compiler);
  EXPECT_EQ(restored.build, env.build);
  EXPECT_EQ(restored.stable_hash(), env.stable_hash());
}

TEST(Environment, ParseRejectsNonProvenanceRecords) {
  EXPECT_THROW(parse_provenance(util::parse_json(R"({"t":"run","v":1})")),
               std::runtime_error);
}

}  // namespace
}  // namespace rooftune::telemetry
