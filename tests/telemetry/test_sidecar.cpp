#include "telemetry/sidecar.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "core/trace_events.hpp"
#include "telemetry/report.hpp"

namespace rooftune::telemetry {
namespace {

core::TraceEvent invocation_event(std::uint64_t epoch, std::uint64_t ordinal,
                                  std::uint64_t invocation, double pkg_j) {
  core::TraceEvent event;
  event.kind = core::TraceEvent::Kind::Invocation;
  event.epoch = epoch;
  event.config_ordinal = ordinal;
  event.invocation = invocation;
  event.kernel_s = 0.25;
  event.wall_s = 0.5;
  event.flops = 2.0e9;
  core::TelemetrySpan span;
  span.freq_begin_mhz = 2400.0;
  span.freq_end_mhz = 2300.0;
  span.freq_mean_mhz = 2350.0;
  span.temp_c = 55.0;
  span.pkg_joules = pkg_j;
  span.dram_joules = pkg_j / 10.0;
  span.valid = true;
  event.telemetry = span;
  return event;
}

TEST(Sidecar, IgnoresNonInvocationAndInvalidTelemetry) {
  TelemetrySidecar sidecar;
  core::TraceEvent stop = invocation_event(0, 0, 0, 1.0);
  stop.kind = core::TraceEvent::Kind::StopDecision;
  sidecar.record_span(stop);

  core::TraceEvent bare = invocation_event(0, 0, 0, 1.0);
  bare.telemetry.reset();
  sidecar.record_span(bare);

  core::TraceEvent invalid = invocation_event(0, 0, 0, 1.0);
  invalid.telemetry->valid = false;
  sidecar.record_span(invalid);

  EXPECT_EQ(sidecar.span_count(), 0u);
}

TEST(Sidecar, HeaderFirstAndSpansSortedByLogicalKey) {
  TelemetrySidecar sidecar;
  // Arrival order deliberately scrambled, as parallel workers would emit.
  sidecar.record_span(invocation_event(1, 3, 0, 3.0));
  sidecar.record_span(invocation_event(0, 2, 1, 2.0));
  sidecar.record_span(invocation_event(0, 2, 0, 1.0));

  const std::string text = sidecar.str();
  std::istringstream lines(text);
  std::string line;
  ASSERT_TRUE(std::getline(lines, line));
  EXPECT_EQ(line, R"({"t":"telemetry","v":1})");

  const SidecarData data = read_sidecar(text);
  ASSERT_EQ(data.spans.size(), 3u);
  EXPECT_EQ(data.spans[0].epoch, 0u);
  EXPECT_EQ(data.spans[0].invocation, 0u);
  EXPECT_EQ(data.spans[1].invocation, 1u);
  EXPECT_EQ(data.spans[2].epoch, 1u);
  EXPECT_EQ(data.spans[2].config_ordinal, 3u);
}

TEST(Sidecar, SerializationNeverNamesTheJournalOrSidecarPath) {
  TelemetrySidecar sidecar("/tmp/rooftune_sidecar_path_test.jsonl");
  sidecar.record_span(invocation_event(0, 0, 0, 1.0));
  EXPECT_EQ(sidecar.str().find("rooftune_sidecar_path_test"), std::string::npos);
  std::remove("/tmp/rooftune_sidecar_path_test.jsonl");
}

TEST(Sidecar, RoundTripsSpansHostSamplesAndStats) {
  TelemetrySidecar sidecar;
  sidecar.record_span(invocation_event(0, 1, 0, 4.0));

  HostSample sample;
  sample.offset_s = 0.1;
  sample.freq_min_mhz = 2200.0;
  sample.freq_max_mhz = 2400.0;
  sample.freq_mean_mhz = 2300.0;
  sample.freq_valid = true;
  sample.pkg_j = 12.5;
  sample.energy_valid = true;
  sidecar.add_host_sample(sample);

  SamplerStats stats;
  stats.samples = 7;
  stats.dropped = 2;
  stats.period_s = 0.1;
  sidecar.set_sampler_stats(stats);

  const SidecarData data = read_sidecar(sidecar.str());
  ASSERT_EQ(data.spans.size(), 1u);
  EXPECT_DOUBLE_EQ(data.spans[0].span.pkg_joules, 4.0);
  EXPECT_DOUBLE_EQ(data.spans[0].span.freq_end_mhz, 2300.0);
  ASSERT_TRUE(data.spans[0].flops.has_value());
  EXPECT_DOUBLE_EQ(*data.spans[0].flops, 2.0e9);
  EXPECT_DOUBLE_EQ(data.spans[0].kernel_s, 0.25);

  ASSERT_EQ(data.host.size(), 1u);
  EXPECT_TRUE(data.host[0].freq_valid);
  EXPECT_DOUBLE_EQ(data.host[0].freq_mean_mhz, 2300.0);
  EXPECT_TRUE(data.host[0].energy_valid);
  EXPECT_DOUBLE_EQ(data.host[0].pkg_j, 12.5);
  EXPECT_FALSE(data.host[0].temp_valid);

  ASSERT_TRUE(data.sampler.has_value());
  EXPECT_EQ(data.sampler->samples, 7u);
  EXPECT_EQ(data.sampler->dropped, 2u);
}

TEST(Sidecar, SerializationIsArrivalOrderInvariant) {
  TelemetrySidecar forward, reverse;
  for (int i = 0; i < 6; ++i) {
    forward.record_span(
        invocation_event(0, static_cast<std::uint64_t>(i), 0, 1.0 + i));
  }
  for (int i = 5; i >= 0; --i) {
    reverse.record_span(
        invocation_event(0, static_cast<std::uint64_t>(i), 0, 1.0 + i));
  }
  EXPECT_EQ(forward.str(), reverse.str());
}

TEST(Sidecar, FlushWritesTheFile) {
  const std::string path = "/tmp/rooftune_sidecar_flush_test.jsonl";
  TelemetrySidecar sidecar(path);
  sidecar.record_span(invocation_event(0, 0, 0, 1.0));
  sidecar.flush();
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string first;
  std::getline(in, first);
  EXPECT_EQ(first, R"({"t":"telemetry","v":1})");
  in.close();
  std::remove(path.c_str());
}

}  // namespace
}  // namespace rooftune::telemetry
