#include "telemetry/report.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

namespace rooftune::telemetry {
namespace {

SpanRecord span(std::uint64_t ordinal, std::uint64_t invocation,
                double freq_begin, double freq_end, double pkg_j,
                double flops) {
  SpanRecord r;
  r.config_ordinal = ordinal;
  r.invocation = invocation;
  r.span.freq_begin_mhz = freq_begin;
  r.span.freq_end_mhz = freq_end;
  r.span.freq_mean_mhz = (freq_begin + freq_end) / 2.0;
  r.span.pkg_joules = pkg_j;
  r.span.valid = true;
  r.flops = flops;
  r.kernel_s = 0.1;
  r.wall_s = 0.2;
  return r;
}

TEST(ReadSidecar, RequiresTheHeaderFirst) {
  EXPECT_THROW(static_cast<void>(read_sidecar(
                   R"({"t":"span","epoch":0,"ord":0,"inv":0})")),
               std::runtime_error);
  EXPECT_THROW(static_cast<void>(read_sidecar("not json")), std::runtime_error);
}

TEST(ReadSidecar, ReportsTheOffendingLine) {
  const std::string text =
      "{\"t\":\"telemetry\",\"v\":1}\n"
      "{\"t\":\"span\",broken\n";
  try {
    static_cast<void>(read_sidecar(text));
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos)
        << e.what();
  }
}

TEST(ReadSidecar, EmptySidecarIsJustTheHeader) {
  const SidecarData data = read_sidecar("{\"t\":\"telemetry\",\"v\":1}\n");
  EXPECT_TRUE(data.spans.empty());
  EXPECT_TRUE(data.host.empty());
  EXPECT_FALSE(data.sampler.has_value());
}

TEST(AnalyzeStability, DetectsThrottleEventsAgainstTheSustainedMax) {
  SidecarData data;
  data.spans.push_back(span(0, 0, 2400.0, 2390.0, 10.0, 1e9));  // fine
  data.spans.push_back(span(0, 1, 2400.0, 2200.0, 10.0, 1e9));  // -8.3 %
  data.spans.push_back(span(1, 0, 2400.0, 2000.0, 10.0, 1e9));  // -16.7 %

  const StabilityReport report = analyze_stability(data, 0.05);
  EXPECT_DOUBLE_EQ(report.sustained_max_mhz, 2400.0);
  EXPECT_EQ(report.throttle_events, 2);
  EXPECT_NEAR(report.worst_drift, 1.0 - 2000.0 / 2400.0, 1e-12);
  ASSERT_EQ(report.configs.size(), 2u);
  EXPECT_EQ(report.configs[0].throttle_events, 1);
  EXPECT_EQ(report.configs[1].throttle_events, 1);
  // A looser threshold absorbs both drifts.
  EXPECT_EQ(analyze_stability(data, 0.20).throttle_events, 0);
}

TEST(AnalyzeStability, ComputesEnergyFigures) {
  SidecarData data;
  // 2 invocations, 5 J each over 2 GFLOP each: 2.5 J/GFLOP, 0.4 GFLOP/s/W.
  data.spans.push_back(span(3, 0, 2400.0, 2400.0, 5.0, 2e9));
  data.spans.push_back(span(3, 1, 2400.0, 2400.0, 5.0, 2e9));

  const StabilityReport report = analyze_stability(data);
  ASSERT_EQ(report.configs.size(), 1u);
  const ConfigStability& c = report.configs[0];
  EXPECT_EQ(c.config_ordinal, 3u);
  EXPECT_EQ(c.spans, 2u);
  EXPECT_DOUBLE_EQ(c.pkg_joules, 10.0);
  EXPECT_DOUBLE_EQ(c.gflop, 4.0);
  EXPECT_DOUBLE_EQ(c.joules_per_gflop, 2.5);
  EXPECT_DOUBLE_EQ(c.gflops_per_watt, 0.4);
  // GFLOP/s/W is GFLOP/J: the two figures are reciprocal.
  EXPECT_NEAR(c.joules_per_gflop * c.gflops_per_watt, 1.0, 1e-12);
}

TEST(AnalyzeStability, FrequencyCvNeedsTwoSpans) {
  SidecarData data;
  data.spans.push_back(span(0, 0, 2400.0, 2400.0, 0.0, 0.0));
  const StabilityReport one = analyze_stability(data);
  EXPECT_DOUBLE_EQ(one.configs[0].freq_cv, 0.0);

  data.spans.push_back(span(0, 1, 2000.0, 2000.0, 0.0, 0.0));
  const StabilityReport two = analyze_stability(data);
  EXPECT_GT(two.configs[0].freq_cv, 0.0);
}

TEST(AnalyzeStability, NoEnergyMeansNoEfficiencyFigures) {
  SidecarData data;
  data.spans.push_back(span(0, 0, 2400.0, 2400.0, 0.0, 1e9));
  const StabilityReport report = analyze_stability(data);
  EXPECT_DOUBLE_EQ(report.configs[0].joules_per_gflop, 0.0);
  EXPECT_DOUBLE_EQ(report.configs[0].gflops_per_watt, 0.0);
}

TEST(StabilityReport, RenderContainsTheFigures) {
  SidecarData data;
  data.spans.push_back(span(0, 0, 2400.0, 2100.0, 5.0, 2e9));
  const std::string text = render_stability_report(analyze_stability(data));
  EXPECT_NE(text.find("J/GFLOP"), std::string::npos);
  EXPECT_NE(text.find("GFLOP/s/W"), std::string::npos);
  EXPECT_NE(text.find("Throttle events: 1"), std::string::npos);
  EXPECT_TRUE(render_stability_report(analyze_stability(SidecarData{})).empty());
}

TEST(RunQuality, WarnsOnGovernorTurboAndDrift) {
  EnvironmentFingerprint env;
  env.governor = "powersave";
  env.turbo = "on";

  SidecarData data;
  data.spans.push_back(span(0, 0, 2400.0, 2000.0, 0.0, 0.0));
  const StabilityReport stability = analyze_stability(data);

  const RunQuality quality = assess_run_quality(env, &stability);
  EXPECT_FALSE(quality.ok());
  EXPECT_EQ(quality.warnings.size(), 3u);

  const std::string rendered = render_run_quality(quality);
  EXPECT_NE(rendered.find("WARN"), std::string::npos);
  EXPECT_NE(rendered.find("powersave"), std::string::npos);
}

TEST(RunQuality, CleanEnvironmentIsOk) {
  EnvironmentFingerprint env;
  env.governor = "performance";
  env.turbo = "off";
  const RunQuality quality = assess_run_quality(env, nullptr);
  EXPECT_TRUE(quality.ok());
  EXPECT_EQ(render_run_quality(quality), "run quality: ok\n");
}

TEST(RunQuality, UnknownEnvironmentDoesNotWarn) {
  // Containers without cpufreq must not drown every run in warnings.
  EnvironmentFingerprint env;
  env.governor = "unknown";
  env.turbo = "unknown";
  EXPECT_TRUE(assess_run_quality(env, nullptr).ok());
}

}  // namespace
}  // namespace rooftune::telemetry
