#include "telemetry/ring.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

namespace rooftune::telemetry {
namespace {

TEST(SpscRing, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(SpscRing<int>(1).capacity(), 1u);
  EXPECT_EQ(SpscRing<int>(5).capacity(), 8u);
  EXPECT_EQ(SpscRing<int>(64).capacity(), 64u);
  EXPECT_EQ(SpscRing<int>(65).capacity(), 128u);
}

TEST(SpscRing, FifoOrder) {
  SpscRing<int> ring(8);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(ring.try_push(i));
  EXPECT_EQ(ring.size(), 5u);
  int out = -1;
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(ring.try_pop(out));
    EXPECT_EQ(out, i);
  }
  EXPECT_FALSE(ring.try_pop(out));
  EXPECT_EQ(ring.size(), 0u);
}

TEST(SpscRing, FullRingDropsAndCounts) {
  SpscRing<int> ring(4);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(ring.try_push(i));
  EXPECT_FALSE(ring.try_push(99));
  EXPECT_FALSE(ring.try_push(100));
  EXPECT_EQ(ring.dropped(), 2u);
  int out = -1;
  ASSERT_TRUE(ring.try_pop(out));
  EXPECT_EQ(out, 0);
  // A freed slot accepts new pushes again.
  EXPECT_TRUE(ring.try_push(4));
}

TEST(SpscRing, WrapsAroundTheMask) {
  SpscRing<std::uint64_t> ring(4);
  std::uint64_t out = 0;
  for (std::uint64_t i = 0; i < 100; ++i) {
    ASSERT_TRUE(ring.try_push(i));
    ASSERT_TRUE(ring.try_pop(out));
    EXPECT_EQ(out, i);
  }
  EXPECT_EQ(ring.dropped(), 0u);
}

TEST(SpscRing, ConcurrentProducerConsumerLosesNothingWhenSized) {
  constexpr std::uint64_t kCount = 20000;
  SpscRing<std::uint64_t> ring(1 << 15);  // larger than kCount: no drops
  std::vector<std::uint64_t> seen;
  seen.reserve(kCount);

  std::thread producer([&ring] {
    for (std::uint64_t i = 0; i < kCount; ++i) {
      while (!ring.try_push(i)) std::this_thread::yield();
    }
  });
  std::uint64_t value = 0;
  while (seen.size() < kCount) {
    if (ring.try_pop(value)) {
      seen.push_back(value);
    } else {
      std::this_thread::yield();
    }
  }
  producer.join();

  ASSERT_EQ(seen.size(), kCount);
  for (std::uint64_t i = 0; i < kCount; ++i) EXPECT_EQ(seen[i], i);
  EXPECT_EQ(ring.dropped(), 0u);
}

}  // namespace
}  // namespace rooftune::telemetry
