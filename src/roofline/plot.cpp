#include "roofline/plot.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

#include "util/csv.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace rooftune::roofline {

namespace {

const char* kSeriesColors[] = {"#1f77b4", "#d62728", "#2ca02c", "#ff7f0e",
                               "#9467bd", "#8c564b", "#e377c2", "#7f7f7f"};

struct LogScale {
  double lo, hi;       // data range (log10)
  double px0, px1;     // pixel range

  [[nodiscard]] double map(double value) const {
    const double t = (std::log10(value) - lo) / (hi - lo);
    return px0 + t * (px1 - px0);
  }
};

double max_gflops(const RooflineModel& model) {
  double peak = 1.0;
  for (const auto& c : model.compute()) {
    peak = std::max({peak, c.value.value, c.theoretical.value});
  }
  return peak;
}

}  // namespace

std::string render_svg(const RooflineModel& model, const PlotOptions& options) {
  if (model.compute().empty() || model.memory().empty()) {
    throw std::invalid_argument("render_svg: model needs >=1 compute and memory ceiling");
  }
  const double peak = max_gflops(model);
  double min_perf = peak;
  for (const auto& m : model.memory()) {
    min_perf = std::min(min_perf, m.value.value * options.min_intensity);
  }

  const double margin = 60.0;
  const LogScale x{std::log10(options.min_intensity), std::log10(options.max_intensity),
                   margin, options.width_px - 20.0};
  // SVG y grows downward; flip by swapping the pixel endpoints.
  const LogScale y{std::log10(min_perf * 0.8), std::log10(peak * 1.6),
                   options.height_px - 45.0, 25.0};

  std::ostringstream svg;
  svg << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" << options.width_px
      << "\" height=\"" << options.height_px << "\" viewBox=\"0 0 "
      << options.width_px << ' ' << options.height_px << "\">\n";
  svg << "<rect width=\"100%\" height=\"100%\" fill=\"white\"/>\n";
  svg << "<text x=\"" << options.width_px / 2 << "\" y=\"16\" text-anchor=\"middle\" "
         "font-family=\"sans-serif\" font-size=\"14\">Roofline: "
      << model.machine_name << "</text>\n";

  // Decade gridlines + labels.
  for (int d = static_cast<int>(std::ceil(x.lo)); d <= static_cast<int>(std::floor(x.hi)); ++d) {
    const double px = x.map(std::pow(10.0, d));
    svg << util::format(
        "<line x1=\"%.1f\" y1=\"%.1f\" x2=\"%.1f\" y2=\"%.1f\" stroke=\"#ddd\"/>\n", px,
        y.px1, px, y.px0);
    svg << util::format(
        "<text x=\"%.1f\" y=\"%.1f\" text-anchor=\"middle\" font-family=\"sans-serif\" "
        "font-size=\"11\">1e%d</text>\n",
        px, y.px0 + 16.0, d);
  }
  for (int d = static_cast<int>(std::ceil(y.lo)); d <= static_cast<int>(std::floor(y.hi)); ++d) {
    const double py = y.map(std::pow(10.0, d));
    svg << util::format(
        "<line x1=\"%.1f\" y1=\"%.1f\" x2=\"%.1f\" y2=\"%.1f\" stroke=\"#ddd\"/>\n",
        x.px0, py, x.px1, py);
    svg << util::format(
        "<text x=\"%.1f\" y=\"%.1f\" text-anchor=\"end\" font-family=\"sans-serif\" "
        "font-size=\"11\">1e%d</text>\n",
        x.px0 - 6.0, py + 4.0, d);
  }
  svg << util::format(
      "<text x=\"%.1f\" y=\"%.1f\" text-anchor=\"middle\" font-family=\"sans-serif\" "
      "font-size=\"12\">Operational intensity [FLOP/byte]</text>\n",
      (x.px0 + x.px1) / 2.0, y.px0 + 34.0);
  svg << util::format(
      "<text x=\"16\" y=\"%.1f\" text-anchor=\"middle\" font-family=\"sans-serif\" "
      "font-size=\"12\" transform=\"rotate(-90 16 %.1f)\">GFLOP/s</text>\n",
      (y.px0 + y.px1) / 2.0, (y.px0 + y.px1) / 2.0);

  // One roof per (compute, memory) pair.
  std::size_t series = 0;
  for (std::size_t ci = 0; ci < model.compute().size(); ++ci) {
    for (std::size_t mi = 0; mi < model.memory().size(); ++mi) {
      const char* color = kSeriesColors[series % (sizeof kSeriesColors / sizeof *kSeriesColors)];
      svg << "<polyline fill=\"none\" stroke=\"" << color << "\" stroke-width=\"2\" points=\"";
      for (int i = 0; i <= options.samples_per_roof; ++i) {
        const double t = static_cast<double>(i) / options.samples_per_roof;
        const double intensity =
            std::pow(10.0, x.lo + t * (x.hi - x.lo));
        const double perf =
            model.attainable(util::Intensity{intensity}, ci, mi).value;
        svg << util::format("%.1f,%.1f ", x.map(intensity), y.map(perf));
      }
      svg << "\"/>\n";
      // Legend entry.
      const double ly = 40.0 + 16.0 * static_cast<double>(series);
      svg << util::format(
          "<line x1=\"%.1f\" y1=\"%.1f\" x2=\"%.1f\" y2=\"%.1f\" stroke=\"%s\" "
          "stroke-width=\"2\"/>\n",
          x.px0 + 10.0, ly, x.px0 + 34.0, ly, color);
      svg << util::format(
          "<text x=\"%.1f\" y=\"%.1f\" font-family=\"sans-serif\" font-size=\"11\">%s / "
          "%s</text>\n",
          x.px0 + 40.0, ly + 4.0,
          model.compute()[ci].name.c_str(), model.memory()[mi].name.c_str());
      ++series;
    }
  }

  // Dashed theoretical compute roofs where known.
  for (const auto& c : model.compute()) {
    if (c.theoretical.value <= 0.0) continue;
    const double py = y.map(c.theoretical.value);
    svg << util::format(
        "<line x1=\"%.1f\" y1=\"%.1f\" x2=\"%.1f\" y2=\"%.1f\" stroke=\"#999\" "
        "stroke-dasharray=\"6 4\"/>\n",
        x.px0, py, x.px1, py);
  }

  // Measured application points (clamped into the plotted window).
  for (const auto& point : options.points) {
    if (point.intensity <= 0.0 || point.gflops <= 0.0) continue;
    const double px = x.map(std::clamp(point.intensity, options.min_intensity,
                                       options.max_intensity));
    const double py = y.map(point.gflops);
    svg << util::format(
        "<circle cx=\"%.1f\" cy=\"%.1f\" r=\"5\" fill=\"#111\" stroke=\"white\" "
        "stroke-width=\"1.5\"/>\n",
        px, py);
    svg << util::format(
        "<text x=\"%.1f\" y=\"%.1f\" font-family=\"sans-serif\" font-size=\"11\" "
        "font-weight=\"bold\">%s</text>\n",
        px + 8.0, py - 6.0, point.name.c_str());
  }

  svg << "</svg>\n";
  return svg.str();
}

std::string render_ascii(const RooflineModel& model, int width, int height) {
  if (model.compute().empty() || model.memory().empty()) {
    throw std::invalid_argument("render_ascii: empty model");
  }
  const double xlo = std::log10(0.01), xhi = std::log10(100.0);
  const double peak = max_gflops(model);
  double min_perf = peak;
  for (const auto& m : model.memory()) min_perf = std::min(min_perf, m.value.value * 0.01);
  const double ylo = std::log10(min_perf * 0.8), yhi = std::log10(peak * 1.3);

  std::vector<std::string> grid(static_cast<std::size_t>(height),
                                std::string(static_cast<std::size_t>(width), ' '));
  std::size_t series = 0;
  for (std::size_t ci = 0; ci < model.compute().size(); ++ci) {
    for (std::size_t mi = 0; mi < model.memory().size(); ++mi) {
      const char mark = static_cast<char>('a' + (series % 26));
      for (int col = 0; col < width; ++col) {
        const double intensity =
            std::pow(10.0, xlo + (xhi - xlo) * col / std::max(1, width - 1));
        const double perf = model.attainable(util::Intensity{intensity}, ci, mi).value;
        const double t = (std::log10(perf) - ylo) / (yhi - ylo);
        const int row = height - 1 - static_cast<int>(t * (height - 1));
        if (row >= 0 && row < height) {
          grid[static_cast<std::size_t>(row)][static_cast<std::size_t>(col)] = mark;
        }
      }
      ++series;
    }
  }

  std::ostringstream out;
  out << "Roofline: " << model.machine_name << "  (log-log; x: " << 0.01 << ".."
      << 100.0 << " FLOP/byte)\n";
  for (const auto& row : grid) out << '|' << row << "|\n";
  out << '+' << std::string(static_cast<std::size_t>(width), '-') << "+\n";
  series = 0;
  for (std::size_t ci = 0; ci < model.compute().size(); ++ci) {
    for (std::size_t mi = 0; mi < model.memory().size(); ++mi) {
      out << "  " << static_cast<char>('a' + (series % 26)) << ": "
          << model.compute()[ci].name << " / " << model.memory()[mi].name << '\n';
      ++series;
    }
  }
  return out.str();
}

std::string render_csv(const RooflineModel& model, const PlotOptions& options) {
  std::ostringstream out;
  util::CsvWriter csv(out);
  std::vector<std::string> header{"intensity_flop_per_byte"};
  for (const auto& c : model.compute()) {
    for (const auto& m : model.memory()) {
      header.push_back(c.name + "/" + m.name + " [GFLOP/s]");
    }
  }
  csv.header(header);
  for (int i = 0; i <= options.samples_per_roof; ++i) {
    const double t = static_cast<double>(i) / options.samples_per_roof;
    const double intensity = options.min_intensity *
                             std::pow(options.max_intensity / options.min_intensity, t);
    csv.cell(intensity);
    for (std::size_t ci = 0; ci < model.compute().size(); ++ci) {
      for (std::size_t mi = 0; mi < model.memory().size(); ++mi) {
        csv.cell(model.attainable(util::Intensity{intensity}, ci, mi).value);
      }
    }
    csv.end_row();
  }
  return out.str();
}

std::string utilization_report(const RooflineModel& model) {
  util::TextTable table;
  table.columns({"Ceiling", "Measured", "Theoretical", "Utilization", "Best config"},
                {util::Align::Left, util::Align::Right, util::Align::Right,
                 util::Align::Right, util::Align::Left});
  const auto pct = [](std::optional<double> u) {
    return u ? util::format("%.2f%%", *u * 100.0) : std::string("-");
  };
  for (const auto& c : model.compute()) {
    table.add_row({c.name, util::format("%.2f GFLOP/s", c.value.value),
                   c.theoretical.value > 0.0
                       ? util::format("%.1f GFLOP/s", c.theoretical.value)
                       : "-",
                   pct(c.utilization()), c.best_config.to_string()});
  }
  for (const auto& m : model.memory()) {
    table.add_row({m.name, util::format("%.2f GB/s", m.value.value),
                   m.theoretical.value > 0.0 ? util::format("%.3f GB/s", m.theoretical.value)
                                             : "-",
                   pct(m.utilization()), m.best_config.to_string()});
  }
  if (model.energy().has_value()) {
    const EnergyCeiling& e = *model.energy();
    table.add_row({e.name, util::format("%.3f GFLOP/s/W", e.gflops_per_watt),
                   e.theoretical_gflops_per_watt > 0.0
                       ? util::format("%.3f GFLOP/s/W",
                                      e.theoretical_gflops_per_watt)
                       : "-",
                   pct(e.utilization()), util::format("TDP %.0f W", e.tdp_w)});
  }
  return table.render();
}

}  // namespace rooftune::roofline
