#pragma once
// Application advisor: the use case the paper's introduction motivates —
// "selecting ideal hardware architectures for the software's
// characteristics".  Given a kernel's operational intensity, rank machines
// by the performance their roofline models predict, and classify the
// kernel (memory- vs. compute-bound, with headroom estimates).

#include <string>
#include <vector>

#include "roofline/roofline.hpp"

namespace rooftune::roofline {

/// A kernel characterized by its work and traffic (Eq. 1 inputs).
struct KernelProfile {
  std::string name;
  util::Flops work_per_element{0.0};
  util::Bytes bytes_per_element{0};

  [[nodiscard]] util::Intensity intensity() const {
    return util::intensity(work_per_element, bytes_per_element);
  }
};

/// Classification of a kernel under one (compute, memory) ceiling pair.
struct KernelAssessment {
  util::Intensity intensity{0.0};
  bool memory_bound = false;
  util::GFlops attainable{0.0};
  /// Attainable / compute peak: how much of the machine the kernel can use.
  double compute_fraction = 0.0;
  /// Ridge point of the pair: where the kernel would need to get to become
  /// compute-bound.
  util::Intensity ridge{0.0};
};

/// Assess a kernel against a model's ceiling pair (defaults: first compute
/// ceiling, first DRAM-named memory ceiling, else memory ceiling 0).
KernelAssessment assess(const RooflineModel& model, util::Intensity intensity,
                        std::size_t compute_index = 0,
                        std::size_t memory_index = static_cast<std::size_t>(-1));

/// One row of a machine ranking.
struct RankedMachine {
  std::string machine;
  util::GFlops attainable{0.0};
  bool memory_bound = false;
};

/// Rank models by attainable performance at the given intensity (descending).
/// Each model is assessed with its *last* compute ceiling and matching DRAM
/// ceiling — i.e. the full-system configuration.
std::vector<RankedMachine> rank_machines(const std::vector<RooflineModel>& models,
                                         util::Intensity intensity);

/// JSON export of a full model (ceilings, theoretical peaks, best configs)
/// for downstream tooling.
std::string to_json(const RooflineModel& model);

/// Inverse of to_json: load a model saved earlier (e.g. an expensive native
/// measurement) so it can be advised against without re-benchmarking.
/// Best-config strings are preserved as single-parameter annotations.
/// Throws std::invalid_argument / std::runtime_error on malformed input.
RooflineModel model_from_json(const std::string& json);

}  // namespace rooftune::roofline
