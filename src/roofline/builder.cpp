#include "roofline/builder.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "core/native_backend.hpp"
#include "core/report.hpp"
#include "core/spaces.hpp"
#include "util/log.hpp"
#include "util/strings.hpp"

namespace rooftune::roofline {

namespace {

core::TunerOptions tuning_options(const BuilderOptions& options) {
  core::TunerOptions t = options.tuner;
  t.confidence_stop = options.confidence_stop;
  t.inner_prune = options.inner_prune;
  t.outer_prune = options.outer_prune;
  t.prune_min_count = options.prune_min_count;
  return t;
}

/// TRIAD space restricted to DRAM-resident working sets.
core::SearchSpace dram_subspace(const core::SearchSpace& full, util::Bytes l3_capacity,
                                double factor) {
  const auto configs = full.enumerate();
  if (configs.empty()) throw std::invalid_argument("dram_subspace: empty TRIAD space");

  std::uint64_t threshold = 0;
  if (l3_capacity.value > 0) {
    threshold = static_cast<std::uint64_t>(static_cast<double>(l3_capacity.value) * factor);
  } else {
    // Unknown cache size (native mode): take the top quarter of the sweep.
    std::uint64_t max_ws = 0;
    for (const auto& c : configs) {
      max_ws = std::max(max_ws, core::triad_working_set(c).value);
    }
    threshold = max_ws / 4;
  }

  std::vector<std::int64_t> lengths;
  for (const auto& c : configs) {
    if (core::triad_working_set(c).value >= threshold) lengths.push_back(c.at("N"));
  }
  if (lengths.empty()) {
    // Degenerate sweep (tiny max working set): fall back to the largest N.
    lengths.push_back(configs.back().at("N"));
  }
  core::SearchSpace space;
  space.add_range(core::ParameterRange("N", std::move(lengths)));
  return space;
}

/// Energy row anchored to the highest measured compute ceiling: the rated
/// TDP of the sockets that ceiling used bounds the draw, so measured-peak /
/// TDP is a floor on the machine's true GFLOP/s/W.
void attach_energy_ceiling(RooflineModel& model, double tdp_per_socket_w,
                           int sockets) {
  if (tdp_per_socket_w <= 0.0 || model.compute().empty()) return;
  const ComputeCeiling* best = &model.compute().front();
  for (const auto& c : model.compute()) {
    if (c.value.value > best->value.value) best = &c;
  }
  const double tdp = tdp_per_socket_w * sockets;
  EnergyCeiling energy;
  energy.name = best->name + " @ TDP";
  energy.tdp_w = tdp;
  energy.gflops_per_watt = best->value.value / tdp;
  if (best->theoretical.value > 0.0) {
    energy.theoretical_gflops_per_watt = best->theoretical.value / tdp;
  }
  model.set_energy(std::move(energy));
}

}  // namespace

ComputeCeiling measure_dgemm_ceiling(core::Backend& backend, const std::string& name,
                                     util::GFlops theoretical,
                                     const BuilderOptions& options) {
  const core::Autotuner tuner(
      options.dgemm_space.value_or(core::dgemm_reduced_space()),
      tuning_options(options));
  const core::TuningRun run = tuner.run(backend);

  ComputeCeiling ceiling;
  ceiling.name = name;
  ceiling.value = util::GFlops{run.best_value()};
  ceiling.theoretical = theoretical;
  ceiling.best_config = run.best_config();
  ceiling.tuning_time = run.total_time;
  util::log_info() << "compute ceiling " << name << ": "
                   << core::summary(run, backend.metric_name());
  return ceiling;
}

std::pair<MemoryCeiling, MemoryCeiling> measure_triad_ceilings(
    core::Backend& backend, const std::string& suffix, util::GBps dram_theoretical,
    util::Bytes l3_capacity, const BuilderOptions& options) {
  const core::SearchSpace full = options.triad_space.value_or(core::triad_space());
  const core::Autotuner full_tuner(full, tuning_options(options));
  const core::TuningRun full_run = full_tuner.run(backend);

  // The global optimum of the sweep is the cache-resident peak: even with
  // the high bandwidth of L3 the kernel stays memory-bound (§III-B), so the
  // best configuration is the largest vector that still fits in cache.
  MemoryCeiling l3;
  l3.name = "L3 " + suffix;
  l3.value = util::GBps{full_run.best_value()};
  l3.best_config = full_run.best_config();
  l3.tuning_time = full_run.total_time;

  // DRAM: re-tune over working sets far beyond the cache so cache hits
  // cannot inflate the estimate (and pruning competes only among
  // DRAM-resident configurations).
  const core::SearchSpace dram_space =
      dram_subspace(full, l3_capacity, options.dram_working_set_factor);
  const core::Autotuner dram_tuner(dram_space, tuning_options(options));
  const core::TuningRun dram_run = dram_tuner.run(backend);

  MemoryCeiling dram;
  dram.name = "DRAM " + suffix;
  dram.value = util::GBps{dram_run.best_value()};
  dram.theoretical = dram_theoretical;
  dram.best_config = dram_run.best_config();
  dram.tuning_time = dram_run.total_time;

  util::log_info() << "memory ceilings " << suffix << ": L3 " << l3.value.value
                   << " GB/s, DRAM " << dram.value.value << " GB/s";
  return {l3, dram};
}

std::vector<MemoryCeiling> measure_cache_hierarchy(core::Backend& backend,
                                                   const simhw::MachineSpec& machine,
                                                   int sockets_used,
                                                   const BuilderOptions& options) {
  struct LevelWindow {
    const char* name;
    std::uint64_t lo;  // inclusive working-set bounds in bytes
    std::uint64_t hi;
  };
  const std::uint64_t l1 = machine.l1_capacity(sockets_used).value;
  const std::uint64_t l2 = machine.l2_capacity(sockets_used).value;
  const std::uint64_t l3 = machine.l3_capacity(sockets_used).value;
  if (l1 == 0 || l2 == 0) {
    throw std::invalid_argument(
        "measure_cache_hierarchy: machine has no per-core cache sizes");
  }
  const auto frac = [](std::uint64_t cap, double f) {
    return static_cast<std::uint64_t>(static_cast<double>(cap) * f);
  };
  const std::vector<LevelWindow> levels = {
      {"L1", 0, frac(l1, 0.6)},
      {"L2", frac(l1, 1.5), frac(l2, 0.6)},
      {"L3", frac(l2, 1.5), frac(l3, 0.6)},
      {"DRAM", frac(l3, static_cast<double>(options.dram_working_set_factor)),
       ~0ull},
  };

  const auto sweep =
      options.triad_space.value_or(core::triad_space()).enumerate();
  std::vector<MemoryCeiling> ceilings;
  for (const auto& level : levels) {
    std::vector<std::int64_t> lengths;
    for (const auto& config : sweep) {
      const std::uint64_t ws = core::triad_working_set(config).value;
      if (ws >= level.lo && ws <= level.hi) lengths.push_back(config.at("N"));
    }
    if (lengths.empty()) {
      util::log_warn() << "cache hierarchy: no sweep point fits the " << level.name
                       << " window; level skipped";
      continue;
    }
    core::SearchSpace space;
    space.add_range(core::ParameterRange("N", std::move(lengths)));
    const core::Autotuner tuner(space, tuning_options(options));
    const core::TuningRun run = tuner.run(backend);

    MemoryCeiling ceiling;
    ceiling.name = std::string(level.name) + " " + std::to_string(sockets_used) +
                   (sockets_used == 1 ? " socket" : " sockets");
    ceiling.value = util::GBps{run.best_value()};
    if (std::string(level.name) == "DRAM") {
      ceiling.theoretical = machine.theoretical_bandwidth(sockets_used);
    }
    ceiling.best_config = run.best_config();
    ceiling.tuning_time = run.total_time;
    ceilings.push_back(std::move(ceiling));
  }
  return ceilings;
}

RooflineModel build_simulated(const simhw::MachineSpec& machine,
                              const BuilderOptions& options) {
  RooflineModel model;
  model.machine_name = machine.name;

  for (int s = 1; s <= machine.sockets; ++s) {
    const std::string suffix =
        std::to_string(s) + (s == 1 ? " socket" : " sockets");

    simhw::SimOptions sim;
    sim.sockets_used = s;
    sim.seed = options.seed;

    // DGEMM keeps threads near their data (§III-A: KMP_AFFINITY=close).
    sim.affinity = util::AffinityPolicy::Close;
    simhw::SimDgemmBackend dgemm(machine, sim);
    model.add_compute(measure_dgemm_ceiling(dgemm, "DGEMM " + suffix,
                                            machine.theoretical_flops(s), options));

    // TRIAD: close for single-socket (only that socket's channels), spread
    // across sockets otherwise (§III-B).
    sim.affinity = s == 1 ? util::AffinityPolicy::Close : util::AffinityPolicy::Spread;
    simhw::SimTriadBackend triad(machine, sim);
    auto [l3, dram] = measure_triad_ceilings(triad, suffix,
                                             machine.theoretical_bandwidth(s),
                                             machine.l3_capacity(s), options);
    model.add_memory(std::move(l3));
    model.add_memory(std::move(dram));
  }
  attach_energy_ceiling(model, machine.tdp_w, machine.sockets);
  return model;
}

RooflineModel build_native(const BuilderOptions& options) {
  RooflineModel model;
  // When the caller supplies a hardware description of the host, the model
  // gains theoretical peaks (Eqs. 9-11) and honest utilization figures;
  // without one we only report measurements.
  util::GFlops ft{0.0};
  util::GBps bt{0.0};
  util::Bytes l3_capacity{0};
  if (options.native_spec.has_value()) {
    const auto& spec = *options.native_spec;
    model.machine_name = spec.name + " (native)";
    ft = spec.theoretical_flops(spec.sockets);
    bt = spec.theoretical_bandwidth(spec.sockets);
    l3_capacity = spec.l3_capacity(spec.sockets);
  } else {
    model.machine_name = "native host";
  }

  core::NativeDgemmBackend dgemm;
  model.add_compute(measure_dgemm_ceiling(dgemm, "DGEMM host", ft, options));

  core::NativeTriadBackend triad;
  auto [l3, dram] = measure_triad_ceilings(triad, "host", bt, l3_capacity, options);
  model.add_memory(std::move(l3));
  model.add_memory(std::move(dram));
  if (options.native_spec.has_value()) {
    attach_energy_ceiling(model, options.native_spec->tdp_w,
                          options.native_spec->sockets);
  }
  return model;
}

}  // namespace rooftune::roofline
