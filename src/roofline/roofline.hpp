#pragma once
// The Roofline model itself (Williams et al.; paper §II).
//
//   F_alpha(I) = min(B_alpha * I, F_p)        (paper Eq. 2)
//
// A model holds one or more compute ceilings (e.g. single-socket and
// dual-socket peak DGEMM) and one or more memory ceilings (e.g. L3 and DRAM
// per socket configuration) — Fig. 1 of the paper shows exactly this: four
// memory subsystems and two compute configurations.

#include <optional>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "util/units.hpp"

namespace rooftune::roofline {

/// An empirically measured compute ceiling.
struct ComputeCeiling {
  std::string name;                     ///< e.g. "DGEMM 2 sockets"
  util::GFlops value{0.0};              ///< measured practical peak
  util::GFlops theoretical{0.0};        ///< Eq. 9 peak (0 when unknown)
  core::Configuration best_config;      ///< dimensions that achieved it
  util::Seconds tuning_time{0.0};

  /// value / theoretical, or nullopt when no theoretical peak is known.
  [[nodiscard]] std::optional<double> utilization() const;
};

/// An empirically measured memory-bandwidth ceiling.
struct MemoryCeiling {
  std::string name;                     ///< e.g. "DRAM 1 socket"
  util::GBps value{0.0};
  util::GBps theoretical{0.0};          ///< Eq. 11 peak (0 when unknown, e.g. L3)
  core::Configuration best_config;
  util::Seconds tuning_time{0.0};

  [[nodiscard]] std::optional<double> utilization() const;
};

/// An energy-efficiency ceiling: compute throughput per watt at the rated
/// package power.  The measured figure divides the measured compute peak
/// by the TDP of the sockets it ran on — a *floor* on true efficiency
/// (real draw under AVX load is at or below TDP), which is the honest
/// direction for a ceiling.  Per-run measured efficiency (RAPL
/// Joules/GFLOP) comes from the telemetry sidecar, not the model.
struct EnergyCeiling {
  std::string name;                          ///< e.g. "DGEMM 2 sockets @ TDP"
  double tdp_w = 0.0;                        ///< rated watts anchoring the row
  double gflops_per_watt = 0.0;              ///< measured peak / TDP
  double theoretical_gflops_per_watt = 0.0;  ///< Eq. 9 peak / TDP (0 = unknown)

  [[nodiscard]] std::optional<double> utilization() const;
};

class RooflineModel {
 public:
  void add_compute(ComputeCeiling ceiling) { compute_.push_back(std::move(ceiling)); }
  void add_memory(MemoryCeiling ceiling) { memory_.push_back(std::move(ceiling)); }
  void set_energy(EnergyCeiling ceiling) { energy_ = std::move(ceiling); }

  [[nodiscard]] const std::vector<ComputeCeiling>& compute() const { return compute_; }
  [[nodiscard]] const std::vector<MemoryCeiling>& memory() const { return memory_; }
  /// Present only when the machine's TDP is known (MachineSpec::tdp_w or a
  /// :tdpW field in --machine-spec).
  [[nodiscard]] const std::optional<EnergyCeiling>& energy() const { return energy_; }

  /// Attainable GFLOP/s at operational intensity I under the given ceiling
  /// pair (paper Eq. 2).  Throws std::out_of_range for bad indices.
  [[nodiscard]] util::GFlops attainable(util::Intensity intensity,
                                        std::size_t compute_index,
                                        std::size_t memory_index) const;

  /// The intensity where the given memory roof meets the given compute roof
  /// (the "ridge point": I = F_p / B).
  [[nodiscard]] util::Intensity ridge_point(std::size_t compute_index,
                                            std::size_t memory_index) const;

  /// True when a kernel with intensity I is memory-bound under the pair.
  [[nodiscard]] bool memory_bound(util::Intensity intensity, std::size_t compute_index,
                                  std::size_t memory_index) const;

  /// Machine label for reports/plots.
  std::string machine_name;

 private:
  std::vector<ComputeCeiling> compute_;
  std::vector<MemoryCeiling> memory_;
  std::optional<EnergyCeiling> energy_;
};

}  // namespace rooftune::roofline
