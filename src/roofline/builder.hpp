#pragma once
// End-to-end roofline construction: autotune DGEMM for each socket
// configuration (compute ceilings) and TRIAD over the working-set sweep
// (memory ceilings for L3 and DRAM), then assemble the model.  This is the
// tool the paper's title promises: "automatically obtaining system Roofline
// models" (§VII).

#include <cstdint>
#include <optional>
#include <utility>

#include "core/autotuner.hpp"
#include "core/evaluator.hpp"
#include "roofline/roofline.hpp"
#include "simhw/machine.hpp"
#include "simhw/sim_backend.hpp"

namespace rooftune::roofline {

struct BuilderOptions {
  core::TunerOptions tuner;   ///< Table I base configuration
  /// Technique for the DGEMM/TRIAD searches; the paper's recommended
  /// configuration is C+I+Outer with a minimum prune count.
  bool confidence_stop = true;
  bool inner_prune = true;
  bool outer_prune = true;
  std::uint64_t prune_min_count = 10;
  /// A TRIAD configuration counts as DRAM-resident when its working set is
  /// at least this multiple of the reachable L3 capacity.
  double dram_working_set_factor = 8.0;
  std::uint64_t seed = 2021;
  /// Space overrides (defaults: the paper's reduced DGEMM space and the
  /// 3 KiB–768 MiB TRIAD sweep).  Native runs on modest hosts should pass a
  /// smaller DGEMM space — the full 96-point sweep multiplies 10-second
  /// budgets by 96 configurations.
  std::optional<core::SearchSpace> dgemm_space;
  std::optional<core::SearchSpace> triad_space;
  /// For native runs: a hardware description of the host (e.g. from
  /// simhw::parse_machine_spec) so the report can include theoretical peaks
  /// and utilization, and so the DRAM working-set threshold can use the
  /// real L3 capacity.  Ignored by build_simulated.
  std::optional<simhw::MachineSpec> native_spec;
};

/// Build the full roofline model for a simulated machine: per socket count
/// 1..sockets, a DGEMM compute ceiling plus L3 and DRAM memory ceilings —
/// for a two-socket system this yields the paper's Fig. 1 structure (two
/// compute roofs, four memory roofs).
RooflineModel build_simulated(const simhw::MachineSpec& machine,
                              const BuilderOptions& options = {});

/// Build a roofline model on the host machine using the native backends.
/// Theoretical peaks are unknown (no vendor sheet is consulted), so
/// utilization fields are unset; sockets are treated as 1.
RooflineModel build_native(const BuilderOptions& options = {});

/// Measure one compute ceiling with the given backend (exposed so examples
/// can tune a single configuration set).
ComputeCeiling measure_dgemm_ceiling(core::Backend& backend, const std::string& name,
                                     util::GFlops theoretical,
                                     const BuilderOptions& options);

/// Measure the L3 and DRAM ceilings from one TRIAD sweep.
std::pair<MemoryCeiling, MemoryCeiling> measure_triad_ceilings(
    core::Backend& backend, const std::string& suffix, util::GBps dram_theoretical,
    util::Bytes l3_capacity, const BuilderOptions& options);

/// §VII future-work extension: measure the full L1 / L2 / L3 / DRAM
/// bandwidth hierarchy.  The backend must model inner caches
/// (simhw::SimOptions::model_inner_caches); each level is autotuned over
/// working sets confined to its capacity window so outer levels cannot
/// inflate it.  Levels whose window contains no sweep point are skipped.
std::vector<MemoryCeiling> measure_cache_hierarchy(core::Backend& backend,
                                                   const simhw::MachineSpec& machine,
                                                   int sockets_used,
                                                   const BuilderOptions& options);

}  // namespace rooftune::roofline
