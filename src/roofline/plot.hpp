#pragma once
// Roofline graph rendering: SVG (log-log, like the paper's Fig. 1), a
// terminal-friendly ASCII variant, and CSV series export for external
// plotting tools.

#include <string>
#include <vector>

#include "roofline/roofline.hpp"

namespace rooftune::roofline {

/// A measured application/kernel plotted as a point on the graph — the
/// canonical use of a roofline: where does my kernel sit relative to the
/// roofs?  (e.g. the autotuned DGEMM lands under the compute roof, TRIAD
/// on the memory roof.)
struct PlotPoint {
  std::string name;
  double intensity = 0.0;  ///< FLOP/byte
  double gflops = 0.0;     ///< achieved performance
};

struct PlotOptions {
  double min_intensity = 0.01;   ///< left edge of the X axis (FLOP/byte)
  double max_intensity = 100.0;  ///< right edge
  int width_px = 860;
  int height_px = 560;
  int samples_per_roof = 160;    ///< polyline resolution
  std::vector<PlotPoint> points; ///< measured kernels to overlay
};

/// Self-contained SVG document with one polyline per (compute, memory)
/// ceiling pair plus dashed theoretical roofs where known.
std::string render_svg(const RooflineModel& model, const PlotOptions& options = {});

/// Log-log ASCII plot (rows = GFLOP/s decades) for terminal output.
std::string render_ascii(const RooflineModel& model, int width = 72, int height = 24);

/// CSV with columns: intensity, then one attainable-GFLOP/s column per
/// (compute x memory) ceiling pair.
std::string render_csv(const RooflineModel& model, const PlotOptions& options = {});

/// Human-readable utilization report (the data behind Figs. 3 and 4).
std::string utilization_report(const RooflineModel& model);

}  // namespace rooftune::roofline
