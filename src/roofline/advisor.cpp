#include "roofline/advisor.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/json.hpp"
#include "util/json_parse.hpp"
#include "util/strings.hpp"

namespace rooftune::roofline {

namespace {

std::size_t default_memory_index(const RooflineModel& model) {
  for (std::size_t i = 0; i < model.memory().size(); ++i) {
    if (model.memory()[i].name.find("DRAM") != std::string::npos) return i;
  }
  return 0;
}

}  // namespace

KernelAssessment assess(const RooflineModel& model, util::Intensity intensity,
                        std::size_t compute_index, std::size_t memory_index) {
  if (model.compute().empty() || model.memory().empty()) {
    throw std::invalid_argument("assess: model has no ceilings");
  }
  if (memory_index == static_cast<std::size_t>(-1)) {
    memory_index = default_memory_index(model);
  }
  KernelAssessment a;
  a.intensity = intensity;
  a.attainable = model.attainable(intensity, compute_index, memory_index);
  a.memory_bound = model.memory_bound(intensity, compute_index, memory_index);
  a.ridge = model.ridge_point(compute_index, memory_index);
  const double peak = model.compute()[compute_index].value.value;
  a.compute_fraction = peak > 0.0 ? a.attainable.value / peak : 0.0;
  return a;
}

std::vector<RankedMachine> rank_machines(const std::vector<RooflineModel>& models,
                                         util::Intensity intensity) {
  std::vector<RankedMachine> ranking;
  ranking.reserve(models.size());
  for (const auto& model : models) {
    if (model.compute().empty() || model.memory().empty()) continue;
    const std::size_t ci = model.compute().size() - 1;  // full system
    // DRAM ceiling matching the last (largest) socket configuration: pick
    // the last DRAM-named ceiling, else the last memory ceiling.
    std::size_t mi = model.memory().size() - 1;
    for (std::size_t i = model.memory().size(); i-- > 0;) {
      if (model.memory()[i].name.find("DRAM") != std::string::npos) {
        mi = i;
        break;
      }
    }
    RankedMachine r;
    r.machine = model.machine_name;
    r.attainable = model.attainable(intensity, ci, mi);
    r.memory_bound = model.memory_bound(intensity, ci, mi);
    ranking.push_back(r);
  }
  std::sort(ranking.begin(), ranking.end(), [](const auto& a, const auto& b) {
    return a.attainable.value > b.attainable.value;
  });
  return ranking;
}

std::string to_json(const RooflineModel& model) {
  util::JsonWriter w;
  w.begin_object();
  w.key("machine").value(model.machine_name);
  w.key("compute_ceilings").begin_array();
  for (const auto& c : model.compute()) {
    w.begin_object();
    w.key("name").value(c.name);
    w.key("gflops").value(c.value.value);
    if (c.theoretical.value > 0.0) {
      w.key("theoretical_gflops").value(c.theoretical.value);
      w.key("utilization").value(*c.utilization());
    }
    w.key("best_config").value(c.best_config.to_string());
    w.key("tuning_time_seconds").value(c.tuning_time.value);
    w.end_object();
  }
  w.end_array();
  w.key("memory_ceilings").begin_array();
  for (const auto& m : model.memory()) {
    w.begin_object();
    w.key("name").value(m.name);
    w.key("gbps").value(m.value.value);
    if (m.theoretical.value > 0.0) {
      w.key("theoretical_gbps").value(m.theoretical.value);
      w.key("utilization").value(*m.utilization());
    }
    w.key("best_config").value(m.best_config.to_string());
    w.end_object();
  }
  w.end_array();
  if (model.energy().has_value()) {
    const EnergyCeiling& e = *model.energy();
    w.key("energy_ceiling").begin_object();
    w.key("name").value(e.name);
    w.key("tdp_w").value(e.tdp_w);
    w.key("gflops_per_watt").value(e.gflops_per_watt);
    if (e.theoretical_gflops_per_watt > 0.0) {
      w.key("theoretical_gflops_per_watt").value(e.theoretical_gflops_per_watt);
      w.key("utilization").value(*e.utilization());
    }
    w.end_object();
  }
  w.end_object();
  return w.str();
}

namespace {

/// "n=1000,m=4096,k=128" -> Configuration (inverse of Configuration::to_string).
core::Configuration config_from_string(const std::string& text) {
  std::vector<core::Parameter> params;
  if (!text.empty()) {
    for (const auto& part : util::split(text, ',')) {
      const auto eq = part.find('=');
      if (eq == std::string::npos) {
        throw std::invalid_argument("model_from_json: bad config '" + text + "'");
      }
      params.push_back(
          {part.substr(0, eq), std::stoll(part.substr(eq + 1))});
    }
  }
  return core::Configuration(std::move(params));
}

}  // namespace

RooflineModel model_from_json(const std::string& json) {
  const util::JsonValue doc = util::parse_json(json);
  RooflineModel model;
  model.machine_name = doc.at("machine").as_string();

  for (const auto& entry : doc.at("compute_ceilings").as_array()) {
    ComputeCeiling c;
    c.name = entry.at("name").as_string();
    c.value = util::GFlops{entry.at("gflops").as_number()};
    if (entry.has("theoretical_gflops")) {
      c.theoretical = util::GFlops{entry.at("theoretical_gflops").as_number()};
    }
    c.best_config = config_from_string(entry.at("best_config").as_string());
    if (entry.has("tuning_time_seconds")) {
      c.tuning_time = util::Seconds{entry.at("tuning_time_seconds").as_number()};
    }
    model.add_compute(std::move(c));
  }
  for (const auto& entry : doc.at("memory_ceilings").as_array()) {
    MemoryCeiling m;
    m.name = entry.at("name").as_string();
    m.value = util::GBps{entry.at("gbps").as_number()};
    if (entry.has("theoretical_gbps")) {
      m.theoretical = util::GBps{entry.at("theoretical_gbps").as_number()};
    }
    m.best_config = config_from_string(entry.at("best_config").as_string());
    model.add_memory(std::move(m));
  }
  if (doc.has("energy_ceiling")) {
    const auto& entry = doc.at("energy_ceiling");
    EnergyCeiling e;
    e.name = entry.at("name").as_string();
    e.tdp_w = entry.at("tdp_w").as_number();
    e.gflops_per_watt = entry.at("gflops_per_watt").as_number();
    if (entry.has("theoretical_gflops_per_watt")) {
      e.theoretical_gflops_per_watt =
          entry.at("theoretical_gflops_per_watt").as_number();
    }
    model.set_energy(std::move(e));
  }
  return model;
}

}  // namespace rooftune::roofline
