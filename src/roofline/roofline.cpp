#include "roofline/roofline.hpp"

#include <algorithm>
#include <stdexcept>

namespace rooftune::roofline {

std::optional<double> ComputeCeiling::utilization() const {
  if (theoretical.value <= 0.0) return std::nullopt;
  return value.value / theoretical.value;
}

std::optional<double> MemoryCeiling::utilization() const {
  if (theoretical.value <= 0.0) return std::nullopt;
  return value.value / theoretical.value;
}

std::optional<double> EnergyCeiling::utilization() const {
  if (theoretical_gflops_per_watt <= 0.0) return std::nullopt;
  return gflops_per_watt / theoretical_gflops_per_watt;
}

util::GFlops RooflineModel::attainable(util::Intensity intensity,
                                       std::size_t compute_index,
                                       std::size_t memory_index) const {
  const double fp = compute_.at(compute_index).value.value;
  const double bw = memory_.at(memory_index).value.value;
  if (intensity.value < 0.0) throw std::invalid_argument("attainable: negative intensity");
  return util::GFlops{std::min(bw * intensity.value, fp)};
}

util::Intensity RooflineModel::ridge_point(std::size_t compute_index,
                                           std::size_t memory_index) const {
  const double fp = compute_.at(compute_index).value.value;
  const double bw = memory_.at(memory_index).value.value;
  if (bw <= 0.0) throw std::domain_error("ridge_point: zero-bandwidth ceiling");
  return util::Intensity{fp / bw};
}

bool RooflineModel::memory_bound(util::Intensity intensity, std::size_t compute_index,
                                 std::size_t memory_index) const {
  return intensity.value < ridge_point(compute_index, memory_index).value;
}

}  // namespace rooftune::roofline
