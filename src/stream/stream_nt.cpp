// Non-temporal (streaming-store) STREAM kernel leaves.
//
// Regular stores trigger write-allocate: the destination line is read into
// cache before being overwritten, adding 8 hidden bytes/element to every
// kernel's write stream.  The `vmovntpd` stores here bypass the cache, so
// DRAM-resident working sets move only the algorithmic bytes — the reported
// (STREAM-convention) bandwidth rises by (bytes+8)/bytes, e.g. 4/3 for
// TRIAD.  Cache-resident sizes lose: NT stores force a DRAM round-trip.
//
// These leaves are plain functions so the OpenMP regions in stream.cpp can
// call them per contiguous chunk: GCC outlines `omp parallel` bodies into
// separate functions that would drop a `target` attribute, so the intrinsic
// code must live *outside* the parallel region.
//
// Caller contract: `dst` is 32-byte aligned (chunks start at multiples of
// the 64-byte-aligned StreamArrays buffers); the scalar tail handles
// n % 4 != 0.

#include "stream/stream_nt.hpp"

#if defined(__GNUC__) && (defined(__x86_64__) || defined(__i386__))

#include <immintrin.h>

namespace rooftune::stream::detail {

bool nt_store_supported() { return __builtin_cpu_supports("avx"); }

__attribute__((target("avx"))) void copy_nt_chunk(double* __restrict dst,
                                                  const double* __restrict src,
                                                  std::int64_t n) {
  std::int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_stream_pd(dst + i, _mm256_loadu_pd(src + i));
  }
  for (; i < n; ++i) dst[i] = src[i];
}

__attribute__((target("avx"))) void scale_nt_chunk(double* __restrict dst,
                                                   const double* __restrict src,
                                                   std::int64_t n, double gamma) {
  const __m256d g = _mm256_set1_pd(gamma);
  std::int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_stream_pd(dst + i, _mm256_mul_pd(g, _mm256_loadu_pd(src + i)));
  }
  for (; i < n; ++i) dst[i] = gamma * src[i];
}

__attribute__((target("avx"))) void add_nt_chunk(double* __restrict dst,
                                                 const double* __restrict x,
                                                 const double* __restrict y,
                                                 std::int64_t n) {
  std::int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_stream_pd(dst + i,
                     _mm256_add_pd(_mm256_loadu_pd(x + i), _mm256_loadu_pd(y + i)));
  }
  for (; i < n; ++i) dst[i] = x[i] + y[i];
}

__attribute__((target("avx"))) void triad_nt_chunk(double* __restrict dst,
                                                   const double* __restrict x,
                                                   const double* __restrict y,
                                                   std::int64_t n, double gamma) {
  const __m256d g = _mm256_set1_pd(gamma);
  std::int64_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm256_stream_pd(
        dst + i,
        _mm256_add_pd(_mm256_loadu_pd(x + i),
                      _mm256_mul_pd(g, _mm256_loadu_pd(y + i))));
  }
  for (; i < n; ++i) dst[i] = x[i] + gamma * y[i];
}

void nt_store_fence() { _mm_sfence(); }

}  // namespace rooftune::stream::detail

#else  // portable fallbacks: never selected (nt_store_supported() == false),
       // but keep the symbols defined and correct.

namespace rooftune::stream::detail {

bool nt_store_supported() { return false; }

void copy_nt_chunk(double* dst, const double* src, std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) dst[i] = src[i];
}

void scale_nt_chunk(double* dst, const double* src, std::int64_t n, double gamma) {
  for (std::int64_t i = 0; i < n; ++i) dst[i] = gamma * src[i];
}

void add_nt_chunk(double* dst, const double* x, const double* y, std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i) dst[i] = x[i] + y[i];
}

void triad_nt_chunk(double* dst, const double* x, const double* y, std::int64_t n,
                    double gamma) {
  for (std::int64_t i = 0; i < n; ++i) dst[i] = x[i] + gamma * y[i];
}

void nt_store_fence() {}

}  // namespace rooftune::stream::detail

#endif
