#include "stream/stream.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "stream/stream_nt.hpp"

namespace rooftune::stream {

const char* to_string(Kernel kernel) {
  switch (kernel) {
    case Kernel::Copy: return "copy";
    case Kernel::Scale: return "scale";
    case Kernel::Add: return "add";
    case Kernel::Triad: return "triad";
  }
  return "?";
}

const char* to_string(StorePolicy policy) {
  switch (policy) {
    case StorePolicy::Regular: return "regular";
    case StorePolicy::Streaming: return "streaming";
  }
  return "?";
}

bool streaming_stores_available() { return detail::nt_store_supported(); }

util::Bytes bytes_per_element(Kernel kernel) {
  switch (kernel) {
    case Kernel::Copy:
    case Kernel::Scale:
      return util::Bytes{16};
    case Kernel::Add:
    case Kernel::Triad:
      return util::Bytes{24};
  }
  return util::Bytes{0};
}

util::Flops flops_per_element(Kernel kernel) {
  switch (kernel) {
    case Kernel::Copy: return util::Flops{0.0};
    case Kernel::Scale:
    case Kernel::Add:
      return util::Flops{1.0};
    case Kernel::Triad:
      return util::Flops{2.0};
  }
  return util::Flops{0.0};
}

util::Intensity kernel_intensity(Kernel kernel) {
  return util::intensity(flops_per_element(kernel), bytes_per_element(kernel));
}

StreamArrays::StreamArrays(std::int64_t n) : n_(n) {
  if (n <= 0) throw std::invalid_argument("StreamArrays: n must be positive");
  own_a_ = util::AlignedBuffer<double>(static_cast<std::size_t>(n));
  own_b_ = util::AlignedBuffer<double>(static_cast<std::size_t>(n));
  own_c_ = util::AlignedBuffer<double>(static_cast<std::size_t>(n));
  pa_ = own_a_.data();
  pb_ = own_b_.data();
  pc_ = own_c_.data();
  init();
}

StreamArrays::StreamArrays(std::int64_t n, util::WorkspaceArena& arena) : n_(n) {
  if (n <= 0) throw std::invalid_argument("StreamArrays: n must be positive");
  const auto count = static_cast<std::size_t>(n);
  pa_ = arena.lease_array<double>("stream.a", count);
  pb_ = arena.lease_array<double>("stream.b", count);
  pc_ = arena.lease_array<double>("stream.c", count);
  init();
}

void StreamArrays::init() {
  const std::int64_t n = n_;
  double* pa = pa_;
  double* pb = pb_;
  double* pc = pc_;
  // First-touch init inside the parallel region: with OMP_PLACES/PROC_BIND
  // configured, pages land on the threads that later stream them (the
  // static schedule matches the kernels' schedule below).  On arena-leased
  // slabs the pages are already resident and this pass only writes the
  // canonical starting values.
#pragma omp parallel for schedule(static)
  for (std::int64_t i = 0; i < n; ++i) {
    pa[i] = 1.0;
    pb[i] = 2.0;
    pc[i] = 0.0;
  }
}

util::Bytes StreamArrays::run(Kernel kernel, double gamma, StorePolicy policy) {
  const std::int64_t n = n_;
  double* __restrict pa = pa_;
  double* __restrict pb = pb_;
  double* __restrict pc = pc_;

  if (policy == StorePolicy::Streaming && detail::nt_store_supported()) {
    // NT leaves live outside the parallel region (see stream_nt.cpp), so
    // parallelize over contiguous chunks.  Chunks are multiples of 4096
    // elements: destination stays 32-byte aligned and schedule(static)
    // hands each thread one contiguous span — the same pages it
    // first-touched in the constructor.
    constexpr std::int64_t kChunk = 4096;
    const std::int64_t chunks = (n + kChunk - 1) / kChunk;
    switch (kernel) {
      case Kernel::Copy:
#pragma omp parallel for schedule(static)
        for (std::int64_t blk = 0; blk < chunks; ++blk) {
          const std::int64_t lo = blk * kChunk;
          detail::copy_nt_chunk(pc + lo, pa + lo, std::min(kChunk, n - lo));
        }
        break;
      case Kernel::Scale:
#pragma omp parallel for schedule(static)
        for (std::int64_t blk = 0; blk < chunks; ++blk) {
          const std::int64_t lo = blk * kChunk;
          detail::scale_nt_chunk(pb + lo, pc + lo, std::min(kChunk, n - lo), gamma);
        }
        break;
      case Kernel::Add:
#pragma omp parallel for schedule(static)
        for (std::int64_t blk = 0; blk < chunks; ++blk) {
          const std::int64_t lo = blk * kChunk;
          detail::add_nt_chunk(pc + lo, pa + lo, pb + lo, std::min(kChunk, n - lo));
        }
        break;
      case Kernel::Triad:
#pragma omp parallel for schedule(static)
        for (std::int64_t blk = 0; blk < chunks; ++blk) {
          const std::int64_t lo = blk * kChunk;
          detail::triad_nt_chunk(pa + lo, pb + lo, pc + lo, std::min(kChunk, n - lo),
                                 gamma);
        }
        break;
    }
    detail::nt_store_fence();
    return util::Bytes{bytes_per_element(kernel).value *
                       static_cast<std::uint64_t>(n)};
  }

  switch (kernel) {
    case Kernel::Copy:
#pragma omp parallel for schedule(static)
      for (std::int64_t i = 0; i < n; ++i) pc[i] = pa[i];
      break;
    case Kernel::Scale:
#pragma omp parallel for schedule(static)
      for (std::int64_t i = 0; i < n; ++i) pb[i] = gamma * pc[i];
      break;
    case Kernel::Add:
#pragma omp parallel for schedule(static)
      for (std::int64_t i = 0; i < n; ++i) pc[i] = pa[i] + pb[i];
      break;
    case Kernel::Triad:
      // Paper Eq. 4: C <- A + gamma * B (STREAM writes it as a(i) = b(i) +
      // q*c(i); the algebra is identical).
#pragma omp parallel for schedule(static)
      for (std::int64_t i = 0; i < n; ++i) pa[i] = pb[i] + gamma * pc[i];
      break;
  }
  return util::Bytes{bytes_per_element(kernel).value * static_cast<std::uint64_t>(n)};
}

double StreamArrays::verify(Kernel kernel, std::int64_t iterations, double gamma) const {
  // Replay the kernel's effect on scalar stand-ins of the initial values
  // (every element follows the same recurrence).
  double a = 1.0, b = 2.0, c = 0.0;
  for (std::int64_t it = 0; it < iterations; ++it) {
    switch (kernel) {
      case Kernel::Copy: c = a; break;
      case Kernel::Scale: b = gamma * c; break;
      case Kernel::Add: c = a + b; break;
      case Kernel::Triad: a = b + gamma * c; break;
    }
  }
  double worst = 0.0;
  for (std::int64_t i = 0; i < n_; ++i) {
    worst = std::fmax(worst, std::fabs(pa_[i] - a));
    worst = std::fmax(worst, std::fabs(pb_[i] - b));
    worst = std::fmax(worst, std::fabs(pc_[i] - c));
  }
  return worst;
}

}  // namespace rooftune::stream
