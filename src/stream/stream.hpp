#pragma once
// The STREAM kernel suite (McCalpin), implemented portably with OpenMP.
//
// The paper uses TRIAD (§III-B):  C <- A + gamma * B, 2 FLOP and 24 bytes
// per element, I = 1/12 FLOP/byte.  The full suite (copy/scale/add/triad)
// is provided because the roofline builder can use any of them as the
// low-intensity ceiling probe, and the tests cross-check the per-kernel
// bytes/FLOP accounting.

#include <cstdint>

#include "util/aligned_buffer.hpp"
#include "util/units.hpp"
#include "util/workspace_arena.hpp"

namespace rooftune::stream {

enum class Kernel { Copy, Scale, Add, Triad };

const char* to_string(Kernel kernel);

/// How the kernel's write stream hits memory.  Regular stores read each
/// destination line into cache before writing it (write-allocate), which
/// costs an extra 8 bytes/element of hidden traffic in the DRAM regime.
/// Streaming uses non-temporal stores that bypass the cache hierarchy —
/// faster for DRAM-resident working sets, slower for cache-resident ones.
/// The tuner exposes this as the "nt" search dimension (0 = Regular,
/// 1 = Streaming), so the store policy is *tuned*, not guessed.
enum class StorePolicy { Regular, Streaming };

const char* to_string(StorePolicy policy);

/// True when the CPU can execute the 256-bit non-temporal store path.
/// When false, StorePolicy::Streaming silently degrades to Regular.
[[nodiscard]] bool streaming_stores_available();

/// Bytes moved per element for the kernel (assuming doubles and no
/// write-allocate accounting, as STREAM traditionally reports):
/// copy/scale = 16, add/triad = 24.
[[nodiscard]] util::Bytes bytes_per_element(Kernel kernel);

/// FLOPs per element: copy 0, scale 1, add 1, triad 2.
[[nodiscard]] util::Flops flops_per_element(Kernel kernel);

/// Operational intensity of the kernel (triad = 1/12, paper §I).
[[nodiscard]] util::Intensity kernel_intensity(Kernel kernel);

/// The three STREAM vectors and the kernels that run over them.  Storage is
/// either owned (fresh allocation per instance — the paper's per-invocation
/// behaviour) or leased from a util::WorkspaceArena, in which case repeated
/// construction reuses the same already-faulted slabs and only the value
/// re-initialization remains per invocation.
class StreamArrays {
 public:
  /// n = elements per vector.  First-touch initialization happens inside the
  /// parallel region so pages land on the executing threads' NUMA nodes.
  explicit StreamArrays(std::int64_t n);

  /// Lease the vectors from `arena` (roles "stream.a/b/c") instead of
  /// allocating.  The arena must outlive this object; the re-init pass
  /// still runs (canonical starting values), but allocation and page
  /// faults happen at most once per high-water working set.
  StreamArrays(std::int64_t n, util::WorkspaceArena& arena);

  [[nodiscard]] std::int64_t size() const { return n_; }

  /// Total working-set bytes (3 vectors of doubles) — what the tuner
  /// compares against the L3 capacity when choosing the sweep range.
  [[nodiscard]] util::Bytes working_set() const {
    return util::Bytes{3ull * static_cast<std::uint64_t>(n_) * 8ull};
  }

  /// Run one kernel pass; returns bytes moved (the STREAM 24/16-byte
  /// convention, independent of store policy).  `gamma` is the TRIAD/scale
  /// scalar (paper Eq. 4).
  util::Bytes run(Kernel kernel, double gamma = 3.0,
                  StorePolicy policy = StorePolicy::Regular);

  /// Verify array contents after `iterations` passes of `kernel` starting
  /// from the canonical initial values; returns max absolute error.
  double verify(Kernel kernel, std::int64_t iterations, double gamma = 3.0) const;

  [[nodiscard]] const double* a() const { return pa_; }
  [[nodiscard]] const double* b() const { return pb_; }
  [[nodiscard]] const double* c() const { return pc_; }

 private:
  void init();

  std::int64_t n_;
  /// Owned storage; empty when leased from an arena.
  util::AlignedBuffer<double> own_a_;
  util::AlignedBuffer<double> own_b_;
  util::AlignedBuffer<double> own_c_;
  double* pa_ = nullptr;
  double* pb_ = nullptr;
  double* pc_ = nullptr;
};

}  // namespace rooftune::stream
