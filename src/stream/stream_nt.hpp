#pragma once
// Internal non-temporal store leaves for the STREAM kernels; see
// stream_nt.cpp for the write-allocate rationale and the caller contract.

#include <cstdint>

namespace rooftune::stream::detail {

/// CPU can run the 256-bit NT-store path.
bool nt_store_supported();

void copy_nt_chunk(double* dst, const double* src, std::int64_t n);
void scale_nt_chunk(double* dst, const double* src, std::int64_t n, double gamma);
void add_nt_chunk(double* dst, const double* x, const double* y, std::int64_t n);
void triad_nt_chunk(double* dst, const double* x, const double* y, std::int64_t n,
                    double gamma);

/// Order NT stores before subsequent loads (one sfence per kernel pass).
void nt_store_fence();

}  // namespace rooftune::stream::detail
