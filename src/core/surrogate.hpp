#pragma once
// Surrogate-model search: seed → fit → prune → confirm.
//
// Exhaustive and racing both pay for at least one visit to every
// configuration, so their cost grows linearly with space size.  The
// surrogate strategy decouples search cost from cardinality: a
// Latin-hypercube seed batch (SearchSpace::latin_hypercube_indices) is
// measured with the ordinary evaluator, a ridge-regression surrogate is
// fitted on the seed (configuration features → measured metric), the model
// scores every unvisited point of the lazily enumerated space, and only the
// top-k predictions are *confirmed* through the racing/CI machinery — so the
// statistical guarantees on the reported optimum are exactly racing's.
// Total kernel invocations are O(seed + confirm) instead of O(|space|).
//
// Everything is deterministic: the seed sample is counter-seeded from
// TunerOptions::random_seed, the model fit is a fixed-pivot dense solve,
// and the prune keeps ties by ascending cartesian index.  Like racing, the
// scheduler is exposed as resumable primitives (init / fit_and_prune /
// finish) so the serial driver, ParallelEvaluator's deterministic waves and
// TuningSession checkpoints share one implementation — see
// docs/search-strategies.md for the trade-off discussion.

#include <cstdint>
#include <optional>
#include <vector>

#include "core/autotuner.hpp"
#include "core/backend.hpp"
#include "core/evaluator.hpp"
#include "core/racing.hpp"
#include "core/search_space.hpp"
#include "core/trace_events.hpp"

namespace rooftune::core {

/// Ridge regression over quadratic features of per-dimension normalized
/// value ranks.  The feature map for a d-dimensional space is
/// [1, x_1..x_d, x_1²..x_d², x_i·x_j for i<j] with x = rank/(size-1); the
/// simulated response surfaces are Gaussian in log coordinates, so when all
/// training targets are positive the fit runs in log space, where the
/// quadratic basis is exact up to the noise floor.
class SurrogateModel {
 public:
  [[nodiscard]] static std::size_t feature_count(std::size_t dims);
  [[nodiscard]] static std::vector<double> features(const SearchSpace& space,
                                                    std::uint64_t cartesian_index);

  /// Fit by ridge-regularized normal equations (intercept unpenalized,
  /// Gaussian elimination with partial pivoting; lambda escalates ×10 on a
  /// singular system).  Deterministic for fixed inputs.
  [[nodiscard]] static SurrogateModel fit(const SearchSpace& space,
                                          const std::vector<std::uint64_t>& indices,
                                          const std::vector<double>& values,
                                          double lambda = 1e-6);

  /// Rebuild from serialized state (checkpoint restore).
  [[nodiscard]] static SurrogateModel from_state(std::vector<double> coefficients,
                                                 bool log_scale, double r2);

  [[nodiscard]] double predict(const SearchSpace& space,
                               std::uint64_t cartesian_index) const;
  [[nodiscard]] const std::vector<double>& coefficients() const { return coef_; }
  [[nodiscard]] bool log_scale() const { return log_scale_; }
  /// Coefficient of determination on the training batch, in fit scale.
  [[nodiscard]] double train_r2() const { return r2_; }

 private:
  std::vector<double> coef_;
  bool log_scale_ = false;
  double r2_ = 0.0;
};

/// TraceSink adapter shifting the logical sort key of every event by fixed
/// epoch/ordinal offsets.  The confirm phase reuses the racing scheduler
/// verbatim — racing keys events by (round, entry index) from zero — and
/// this adapter is what files them after the seed phase in the journal
/// without colliding with seed config ordinals.
class OffsetTraceSink final : public TraceSink {
 public:
  OffsetTraceSink(TraceSink* inner, std::uint64_t epoch_offset,
                  std::uint64_t ordinal_offset)
      : inner_(inner), epoch_offset_(epoch_offset), ordinal_offset_(ordinal_offset) {}

  void emit(const TraceEvent& event) override;
  void kernel_phase_begin() override;
  void kernel_phase_end() override;

 private:
  TraceSink* inner_;
  std::uint64_t epoch_offset_;
  std::uint64_t ordinal_offset_;
};

class SurrogateScheduler {
 public:
  enum class Phase { Seed, Confirm };

  /// The whole search.  Seed results accumulate in seed_indices order; the
  /// confirm race is a plain RacingScheduler::State over the kept
  /// candidates, so checkpointing and wave execution reuse racing's.
  struct State {
    Phase phase = Phase::Seed;
    std::vector<std::uint64_t> seed_indices;
    std::vector<ConfigResult> seed_results;        ///< grows to seed_indices.size()
    std::optional<SurrogateModel> model;
    std::vector<std::uint64_t> confirm_indices;    ///< top-k by prediction
    std::vector<double> confirm_predicted;
    std::uint64_t scanned = 0;                     ///< unvisited configs scored
    RacingScheduler::State race;                   ///< confirm phase
  };

  explicit SurrogateScheduler(TunerOptions options);

  [[nodiscard]] const TunerOptions& options() const { return options_; }

  /// Draw the Latin-hypercube seed batch (capped at the space cardinality).
  [[nodiscard]] State init(const SearchSpace& space) const;

  /// Fit the model on the completed seed batch, score every unvisited
  /// cartesian index, keep the top-k (ties by ascending index), and
  /// initialize the confirm race.  Emits the surrogate-fit / prune-batch
  /// records at `trace_epoch` (one epoch past the seed phase).
  void fit_and_prune(const SearchSpace& space, State& state,
                     std::uint64_t trace_epoch) const;

  /// Options for the confirm race, with the trace redirected through an
  /// OffsetTraceSink (pass null to keep tracing off).
  [[nodiscard]] TunerOptions confirm_options(TraceSink* sink) const;

  /// Best seed value measured so far — the incumbent the confirm race and
  /// resumed seed evaluations prune against.
  [[nodiscard]] static std::optional<double> seed_incumbent(const State& state);

  /// Rebase a seed result's total_time to the sum of its invocation wall
  /// times (the racing convention).  run_configuration reports a clock-span
  /// instead, whose rounding depends on the clock's accumulated base — a
  /// quantity that changes across checkpoint resumes and worker
  /// assignments.  The wall-time sum is a pure function of the invocations,
  /// which is what the bit-identical resume/replay guarantee needs.
  static void normalize_seed_time(ConfigResult& result);

  /// Merge seed + confirm results into the final TuningRun (seed results
  /// first, then confirm entries; first strictly-greater value wins).
  [[nodiscard]] static TuningRun finish(State state);

  /// Serial driver: seed (epoch = seed position), fit/prune, confirm race,
  /// finish.
  [[nodiscard]] TuningRun run(Backend& backend, const SearchSpace& space) const;

 private:
  TunerOptions options_;
};

}  // namespace rooftune::core
