#pragma once
// Counter-guided bottleneck classification (the search-speed loop-closure
// over the PR 4 observability layer).
//
// A configuration's first invocations already carry a hardware-counter
// signature: cycles, instructions, LLC misses.  From the misses and the
// analytic FLOP count the *measured* operational intensity follows
// (OI = flops / 64·misses), and the roofline model turns that into a hard
// ceiling on what the configuration can ever deliver:
//
//     attainable = min(peak, DRAM_bw × OI)
//
// Crucially the ceiling is rate-independent: warm-up, frequency ramps and
// cold caches depress the measured *rate*, but OI is a ratio of counts, so
// the bound is trustworthy from the very first invocation — which is
// exactly when CI-based elimination is still blind (a rising trend defers
// it for rounds).  CounterPrunePolicy exploits that: a configuration whose
// class bound provably cannot beat the incumbent's measured mean is
// abandoned after its first few invocations, before any further samples
// are spent on it.
//
// core only sees plain-double ceilings (no dependency on simhw's
// MachineSpec); the CLI derives them from the machine model or
// --custom-machine.

#include <cstdint>
#include <optional>
#include <string>

namespace rooftune::core {

/// Hardware-counter deltas over one invocation's timed kernel phase.
/// Mirrors the perf_event_open group the observability layer samples
/// (trace::PerfSample) without depending on it: backends (the simulated
/// counter model) and the journal both convert into this seam type.
struct CounterSample {
  std::uint64_t cycles = 0;
  std::uint64_t instructions = 0;
  std::uint64_t llc_misses = 0;
  /// Multiplexing accounting: when the PMU rotated the group off-core,
  /// counts were extrapolated by time_enabled/time_running and `scaled` is
  /// set.  The classifier widens its bound by that ratio instead of
  /// trusting the extrapolation verbatim.
  std::uint64_t time_enabled_ns = 0;
  std::uint64_t time_running_ns = 0;
  bool scaled = false;
  bool valid = false;  ///< counters were actually read for this invocation
};

/// What limits a configuration, per its counter signature.
enum class BottleneckClass {
  Unknown,  ///< no/degenerate counters — no bound can be derived
  Compute,  ///< OI at or past the ridge: bounded by peak FLOP rate
  Dram,     ///< OI below the ridge: bounded by DRAM_bw × OI
  Latency,  ///< low IPC *and* low achieved bandwidth: overhead/latency bound
};

const char* to_string(BottleneckClass cls);

/// Inverse of to_string; empty for unrecognized text.  Checkpoints persist
/// the class by name, so restore round-trips through this.
[[nodiscard]] std::optional<BottleneckClass> bottleneck_class_from_string(
    const std::string& text);

/// One classification: the class, the roofline bound it implies, and the
/// evidence (measured OI, IPC) behind it.
struct BottleneckVerdict {
  BottleneckClass cls = BottleneckClass::Unknown;
  /// Attainable GFLOP/s ceiling for this signature.  Infinity when Unknown
  /// (no counters → no bound → never prune).
  double bound_gflops = 0.0;
  /// Measured operational intensity, flops / (64 × llc_misses).  Absent
  /// when misses are zero (cache-resident: OI is effectively unbounded and
  /// the compute roof binds).
  std::optional<double> oi;
  double ipc = 0.0;  ///< instructions per cycle (0 when cycles are 0)
  /// The bound was widened by the multiplex-scaling ratio (scaled counters
  /// are extrapolations; the widened bound is the conservative envelope).
  bool widened = false;
};

/// Maps counter signatures to bottleneck classes and roofline bounds.
/// Ceilings are the machine's roofline: `peak_gflops` the compute roof for
/// the sockets in use, `dram_gbps` the DRAM bandwidth roof.
class BottleneckClassifier {
 public:
  BottleneckClassifier(double peak_gflops, double dram_gbps);

  /// Classify one invocation: `flops` is the analytic work the counters
  /// cover (flops_per_iteration × iterations) and `kernel_s` the measured
  /// kernel time of the same span (feeds the achieved-bandwidth test for
  /// the latency class; pass 0 when unknown).
  [[nodiscard]] BottleneckVerdict classify(const CounterSample& sample,
                                           double flops,
                                           double kernel_s) const;

  [[nodiscard]] double peak_gflops() const { return peak_gflops_; }
  [[nodiscard]] double dram_gbps() const { return dram_gbps_; }

  /// IPC below this *and* achieved bandwidth below kLatencyBwFraction of
  /// the DRAM roof marks an invocation latency-bound: neither roof is near
  /// saturation, so the kernel is stalled on dependencies/overheads rather
  /// than throughput.  The prune bound stays the (safe) roofline ceiling.
  static constexpr double kLatencyIpc = 0.25;
  static constexpr double kLatencyBwFraction = 0.25;

 private:
  double peak_gflops_;
  double dram_gbps_;
};

/// The margin-gated prune decision.  A configuration is abandoned when its
/// class bound — inflated by `margin` as a safety factor — still cannot
/// reach the incumbent:  bound × (1 + margin) < incumbent.  Larger margins
/// prune less (safer); negative margins demonstrate the false-prune
/// failure mode (bench/ablation_counter_prune).  Only the first `window`
/// invocations are consulted: by then CI machinery has real samples and
/// the counter shortcut has nothing left to add.
struct CounterPrunePolicy {
  double margin = 0.25;
  std::uint64_t window = 2;

  /// `bound_metric` is the verdict's bound converted into the backend's
  /// metric (GFLOP/s passes through; byte metrics scale by bytes/flops).
  [[nodiscard]] bool should_prune(const BottleneckVerdict& verdict,
                                  double bound_metric,
                                  std::optional<double> incumbent,
                                  std::uint64_t invocations_done) const;

  /// Pre-invocation variant: the bound comes from the backend's *predicted*
  /// intensity (Backend::analytic_intensity) rather than a measured
  /// signature, so there is no verdict and no window — just the same
  /// margin-inflated comparison against the incumbent.  Callers gate this
  /// on calibration (measured OIs must have validated the prediction
  /// first); see RacingScheduler::apply_counter_skips.
  [[nodiscard]] bool should_skip(double bound_metric,
                                 std::optional<double> incumbent) const;
};

}  // namespace rooftune::core
