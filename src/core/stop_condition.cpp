#include "core/stop_condition.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/strings.hpp"

namespace rooftune::core {

const char* to_string(StopReason reason) {
  switch (reason) {
    case StopReason::None: return "none";
    case StopReason::MaxTime: return "max-time";
    case StopReason::MaxCount: return "max-count";
    case StopReason::Converged: return "converged";
    case StopReason::PrunedByBest: return "pruned-by-best";
    case StopReason::CounterBound: return "counter-bound";
  }
  return "?";
}

std::optional<StopReason> stop_reason_from_string(std::string_view text) {
  for (const StopReason reason :
       {StopReason::None, StopReason::MaxTime, StopReason::MaxCount,
        StopReason::Converged, StopReason::PrunedByBest,
        StopReason::CounterBound}) {
    if (text == to_string(reason)) return reason;
  }
  return std::nullopt;
}

// ---- MaxTimeStop -----------------------------------------------------------

MaxTimeStop::MaxTimeStop(util::Seconds budget) : budget_(budget) {
  if (budget.value <= 0.0) throw std::invalid_argument("MaxTimeStop: budget must be > 0");
}

StopReason MaxTimeStop::check(const EvalState& state) const {
  return state.accumulated_time >= budget_ ? StopReason::MaxTime : StopReason::None;
}

std::string MaxTimeStop::name() const {
  return util::format("max-time(%.3gs)", budget_.value);
}

// ---- MaxCountStop ----------------------------------------------------------

MaxCountStop::MaxCountStop(std::uint64_t cap) : cap_(cap) {
  if (cap == 0) throw std::invalid_argument("MaxCountStop: cap must be > 0");
}

StopReason MaxCountStop::check(const EvalState& state) const {
  return state.count >= cap_ ? StopReason::MaxCount : StopReason::None;
}

std::string MaxCountStop::name() const {
  return "max-count(" + std::to_string(cap_) + ")";
}

// ---- ConfidenceStop --------------------------------------------------------

ConfidenceStop::ConfidenceStop(double confidence, double tolerance,
                               std::uint64_t min_samples, stats::IntervalMethod method)
    : confidence_(confidence),
      tolerance_(tolerance),
      min_samples_(std::max<std::uint64_t>(min_samples, 2)),
      method_(method) {
  if (!(confidence > 0.0 && confidence < 1.0)) {
    throw std::invalid_argument("ConfidenceStop: confidence must be in (0,1)");
  }
  if (tolerance <= 0.0) throw std::invalid_argument("ConfidenceStop: tolerance must be > 0");
}

StopReason ConfidenceStop::check(const EvalState& state) const {
  if (state.moments == nullptr) return StopReason::None;
  return stats::has_converged(*state.moments, confidence_, tolerance_, min_samples_, method_)
             ? StopReason::Converged
             : StopReason::None;
}

std::string ConfidenceStop::name() const {
  return util::format("confidence(%.0f%%, +/-%.2g%%)", confidence_ * 100.0,
                      tolerance_ * 100.0);
}

// ---- UpperBoundStop --------------------------------------------------------

UpperBoundStop::UpperBoundStop(double confidence, std::uint64_t min_count,
                               bool trend_guard, stats::IntervalMethod method)
    : confidence_(confidence),
      min_count_(std::max<std::uint64_t>(min_count, 2)),
      trend_guard_(trend_guard),
      method_(method) {
  if (!(confidence > 0.0 && confidence < 1.0)) {
    throw std::invalid_argument("UpperBoundStop: confidence must be in (0,1)");
  }
}

StopReason UpperBoundStop::check(const EvalState& state) const {
  if (state.moments == nullptr || !state.incumbent.has_value()) return StopReason::None;
  if (state.count < min_count_) return StopReason::None;
  if (trend_guard_ && state.trend != nullptr &&
      (state.trend->size() < 8 || state.trend->rising())) {
    // §VII: performance still improving — hold off.  While the trend window
    // is too small to tell, pruning is also deferred (conservative: the
    // guard exists precisely because early samples can be misleading).
    return StopReason::None;
  }
  const auto ci = stats::mean_confidence_interval(*state.moments, confidence_, method_);
  // Paper Listing 1: terminate when mean + marg < best.
  return (ci.mean + ci.margin() < *state.incumbent) ? StopReason::PrunedByBest
                                                    : StopReason::None;
}

std::string UpperBoundStop::name() const {
  return util::format("upper-bound(%.0f%%, min=%llu%s)", confidence_ * 100.0,
                      static_cast<unsigned long long>(min_count_),
                      trend_guard_ ? ", trend-guard" : "");
}

// ---- MedianStabilityStop ---------------------------------------------------

MedianStabilityStop::MedianStabilityStop(double tolerance, std::uint64_t window)
    : tolerance_(tolerance), window_(window) {
  if (tolerance <= 0.0) throw std::invalid_argument("MedianStabilityStop: tolerance > 0");
  if (window < 8) throw std::invalid_argument("MedianStabilityStop: window >= 8");
}

void MedianStabilityStop::observe(double sample) const {
  recent_.push_back(sample);
  if (recent_.size() > window_) recent_.erase(recent_.begin());
}

void MedianStabilityStop::reset() const { recent_.clear(); }

StopReason MedianStabilityStop::check(const EvalState& state) const {
  (void)state;
  if (recent_.size() < window_) return StopReason::None;
  const std::size_t half = recent_.size() / 2;
  auto median_of = [](std::vector<double> xs) {
    std::nth_element(xs.begin(), xs.begin() + static_cast<std::ptrdiff_t>(xs.size() / 2),
                     xs.end());
    return xs[xs.size() / 2];
  };
  const double first = median_of({recent_.begin(), recent_.begin() + static_cast<std::ptrdiff_t>(half)});
  const double second = median_of({recent_.begin() + static_cast<std::ptrdiff_t>(half), recent_.end()});
  if (first == 0.0) return StopReason::None;
  return std::fabs(second - first) / std::fabs(first) <= tolerance_
             ? StopReason::Converged
             : StopReason::None;
}

std::string MedianStabilityStop::name() const {
  return util::format("median-stability(+/-%.2g%%, w=%llu)", tolerance_ * 100.0,
                      static_cast<unsigned long long>(window_));
}

// ---- StopSet ---------------------------------------------------------------

void StopSet::add(std::shared_ptr<const StopCondition> condition) {
  if (!condition) throw std::invalid_argument("StopSet::add: null condition");
  conditions_.push_back(std::move(condition));
}

StopReason StopSet::check(const EvalState& state) const {
  for (const auto& c : conditions_) {
    const StopReason r = c->check(state);
    if (r != StopReason::None) return r;
  }
  return StopReason::None;
}

void StopSet::observe(double sample) const {
  for (const auto& c : conditions_) c->observe(sample);
}

void StopSet::reset() const {
  for (const auto& c : conditions_) c->reset();
}

}  // namespace rooftune::core
