#pragma once
// The two-level evaluation loop of the paper (Fig. 2): an inner iteration
// loop inside each program invocation, and an outer invocation loop per
// configuration.  Both levels share the stop-condition machinery.

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "core/backend.hpp"
#include "core/bottleneck.hpp"
#include "core/config.hpp"
#include "core/search_space.hpp"
#include "core/stop_condition.hpp"
#include "core/trace_events.hpp"
#include "stats/welford.hpp"
#include "util/units.hpp"

namespace rooftune::core {

/// How the tuner schedules configuration evaluation.
///
///   Exhaustive — the paper's schedule: each configuration runs to
///                completion (all invocations) before the next starts.
///   Racing     — interleaved CI-elimination (core/racing.hpp): every round
///                grants each surviving configuration one invocation, then
///                eliminates survivors whose CI upper bound falls below the
///                leader's CI lower bound.  Losers die after a handful of
///                invocations instead of after a full sequential evaluation.
///   Surrogate  — model-guided seed → fit → prune → confirm
///                (core/surrogate.hpp): a Latin-hypercube seed batch is
///                measured, a ridge-regression surrogate predicts the rest
///                of the (lazily enumerated) space, and only the top
///                predicted candidates race for the optimum.  Search cost is
///                O(seed + confirm) instead of O(|space|).
enum class SearchStrategy { Exhaustive, Racing, Surrogate };

const char* to_string(SearchStrategy strategy);

/// All knobs of the benchmarking process.  Defaults are the paper's Table I
/// auto-tuner configuration: 10 invocations, 200 iterations, 10 s timeout,
/// error = 100 % (i.e. the confidence stop is effectively disabled — this is
/// the "Default" fixed-sample-size technique).
struct TunerOptions {
  std::uint64_t invocations = 10;    ///< outer loop cap (Table I)
  std::uint64_t iterations = 200;    ///< inner loop cap (Table I)
  util::Seconds timeout{10.0};       ///< per-invocation kernel-time budget (-t)
  double confidence = 0.99;          ///< CI level for conditions 3 and 4
  double tolerance = 0.01;           ///< ±1 % convergence width for condition 3

  bool confidence_stop = false;      ///< enable condition 3 ("C")
  /// Minimum samples before condition 3 may declare convergence.  A 99 % CI
  /// over two samples is frequently — and spuriously — tight, locking in a
  /// noisy mean; Georges et al. only trust the normality assumption for
  /// larger n, so a small guard is applied at both loop levels.
  std::uint64_t confidence_min_samples = 5;
  bool inner_prune = false;          ///< condition 4 on the iteration loop ("I")
  bool outer_prune = false;          ///< condition 4 on the invocation loop ("O")
  SearchOrder order = SearchOrder::Forward;  ///< "R" = Reverse
  std::uint64_t prune_min_count = 2; ///< min iterations before condition 4 may fire
  bool trend_guard = false;          ///< §VII trend-aware pruning guard
  stats::IntervalMethod interval_method = stats::IntervalMethod::Normal;
  std::uint64_t random_seed = 0x5EED04D3Bull;  ///< for SearchOrder::Random

  /// Evaluation schedule (see SearchStrategy).  Racing honours the same
  /// stop conditions per invocation/configuration; only the interleaving
  /// and the population-wide elimination differ.
  SearchStrategy strategy = SearchStrategy::Exhaustive;
  /// Minimum invocations a racing survivor must have before the CI
  /// elimination may remove it (guards against spuriously tight two-sample
  /// intervals, same rationale as confidence_min_samples).
  std::uint64_t racing_min_invocations = 3;
  /// Iteration cap per racing invocation (a racing round grants a *batch*
  /// of samples, not a fully converged evaluation — refinement comes from
  /// later rounds, and losers are gone before they ever run long).  0 means
  /// use the full `iterations` budget, which recovers warm-up-heavy optima
  /// (see docs/racing.md) at sequential-technique cost.
  std::uint64_t racing_iterations = 8;

  /// Surrogate strategy (core/surrogate.hpp): size of the Latin-hypercube
  /// seed batch measured before the model is fitted.  Budgets at or above
  /// the space cardinality degenerate to exhaustive search.
  std::uint64_t surrogate_seed_budget = 64;
  /// Number of top-predicted unvisited configurations confirmed through the
  /// racing/CI machinery after the prune (0 = trust the seed batch alone).
  std::uint64_t surrogate_confirm_top = 16;

  /// Counter-guided bottleneck pruning (core/bottleneck.hpp,
  /// --counter-prune): abandon a configuration after its first
  /// `counter_prune_window` invocations when the roofline bound derived
  /// from its hardware-counter signature — inflated by
  /// `counter_prune_margin` — cannot reach the incumbent.  Off by default;
  /// composes with every strategy (exhaustive checks per invocation,
  /// racing prunes before CI elimination spends further rounds, surrogate
  /// inherits it in the confirm race).  Requires the roofline ceilings
  /// below; without them the policy stays inert.
  bool counter_prune = false;
  double counter_prune_margin = 0.25;
  std::uint64_t counter_prune_window = 2;
  /// Roofline ceilings for the machine the run executes on, in the
  /// paper's convention (peak FLOP rate and DRAM bandwidth for the sockets
  /// in use).  Plain doubles so core needs no machine model: the CLI fills
  /// them from simhw::MachineSpec or --custom-machine.
  double counter_peak_gflops = 0.0;
  double counter_dram_gbps = 0.0;

  /// Adaptive timing batches: when the estimated per-iteration kernel time
  /// falls within `batch_overhead_ratio` x the backend clock's per-call
  /// overhead, the inner loop times groups of iterations with one timer
  /// pair, growing the group geometrically (Google Benchmark style) up to
  /// `max_timing_batch` iterations.  A clock with zero overhead (the
  /// simulated backends by default) never triggers batching, so existing
  /// schedules are bit-identical.
  double batch_overhead_ratio = 100.0;
  std::uint64_t max_timing_batch = 1024;

  /// Additional stop conditions (e.g. the core/stop_condition_ext.hpp
  /// future-work conditions).  Factories rather than instances: a fresh
  /// condition is created per evaluation loop so stateful conditions start
  /// clean.  Inner factories run once per invocation, outer once per
  /// configuration.
  using StopFactory = std::function<std::shared_ptr<const StopCondition>()>;
  std::vector<StopFactory> extra_inner_stops;
  std::vector<StopFactory> extra_outer_stops;

  /// Observability sink (src/trace).  Non-owning and null by default: every
  /// emission site guards with one pointer test, so tracing off costs
  /// nothing measurable (docs/observability.md records the A/B).  The sink
  /// must tolerate concurrent emission when used with ParallelEvaluator.
  /// Excluded from TuningSession fingerprints — attaching a journal never
  /// invalidates a checkpoint.
  TraceSink* trace = nullptr;
  /// Journal file path, recorded in checkpoints so a resumed session keeps
  /// appending to the trace it started (core/session.cpp refuses to resume
  /// under a different path).  Metadata only; core never opens it.
  std::string trace_path;
  /// Stable hash of the machine-environment fingerprint the run executes
  /// under (telemetry::EnvironmentFingerprint::stable_hash(), set by the
  /// CLI).  Recorded in TuningSession checkpoints; a resume whose
  /// environment hash differs is refused — measurements taken under a
  /// different governor/turbo/topology are not comparable, the same policy
  /// as the journal-path mismatch above.  0 means unknown: the check is
  /// skipped (old checkpoints, embedders without telemetry).
  std::uint64_t env_fingerprint = 0;
};

/// Outcome of one program invocation (one pass of the inner loop).
struct InvocationResult {
  stats::OnlineMoments moments;      ///< per-iteration samples
  std::uint64_t iterations = 0;
  StopReason stop_reason = StopReason::None;
  util::Seconds kernel_time{0.0};    ///< accumulated kernel time
  util::Seconds wall_time{0.0};      ///< backend-clock delta incl. overheads
  /// Backend-clock time spent in begin_invocation + end_invocation: buffer
  /// allocation, operand init, preheat, teardown.  wall_time - setup_time -
  /// kernel_time is timer/loop overhead.  This is the cost the workspace
  /// arena attacks; reports split it out so the effect is visible.
  util::Seconds setup_time{0.0};
  /// Samples were still trending upward when the invocation ended (warm-up /
  /// frequency ramp not settled) — the racing scheduler refuses to eliminate
  /// on such a mean (docs/racing.md).
  bool trend_rising = false;
  /// Hardware-counter deltas over the timed kernel phase, when available
  /// (backend counter model, else the trace sink's sampler).
  std::optional<CounterSample> counters;
  /// Counter-prune evidence, computed at invocation time while the backend
  /// is in scope (analytic flops + metric conversion need it); the
  /// schedulers only compare `counter_bound` against the incumbent.  Set
  /// only when TunerOptions::counter_prune is armed with valid ceilings.
  std::optional<BottleneckVerdict> bottleneck;
  std::optional<double> counter_bound;  ///< verdict bound in the run's metric

  [[nodiscard]] double mean() const { return moments.mean(); }
};

/// Outcome of fully evaluating one configuration (all invocations).
struct ConfigResult {
  Configuration config;
  std::vector<InvocationResult> invocations;
  stats::OnlineMoments outer_moments;  ///< across invocation means
  StopReason outer_stop = StopReason::None;
  util::Seconds total_time{0.0};
  util::Seconds total_setup_time{0.0};   ///< sum of invocation setup_time
  util::Seconds total_kernel_time{0.0};  ///< sum of invocation kernel_time
  std::uint64_t total_iterations = 0;

  /// The configuration's reported metric: mean of invocation means over
  /// *completed* invocations.  An invocation cut short by the inner
  /// upper-bound prune exited mid-benchmark, so its mean is a truncated,
  /// downward-biased estimate — evidence enough to abandon a loser, but
  /// not a measurement.  Mixing it in would let a falsely-pruned winner
  /// report a degraded value.  When every invocation was pruned (the
  /// config really cannot win), the biased mean is all there is and is
  /// reported as before.  Stop conditions keep using `outer_moments`,
  /// which includes all invocations, so pruning behaviour is unchanged.
  [[nodiscard]] double value() const;

  /// True when condition 4 cut evaluation short at either level.
  [[nodiscard]] bool pruned() const;
};

/// True when the counter-prune policy can actually fire: enabled and armed
/// with both roofline ceilings.  Shared by the schedulers (evaluator,
/// racing) so "on but ceilings unknown" degrades to a no-op everywhere.
[[nodiscard]] bool counter_prune_armed(const TunerOptions& options);

/// Build a CounterPrune trace event from the invocation evidence; the
/// caller fills the logical sort key (epoch/ordinal/invocation/rank).
/// Requires invocation.bottleneck and invocation.counter_bound.
[[nodiscard]] TraceEvent make_counter_prune_event(
    const InvocationResult& invocation, const ConfigResult& result,
    const TunerOptions& options, std::optional<double> incumbent);

/// Pre-invocation counter hint: the backend's predicted OI for `config`
/// (Backend::analytic_intensity) turned into a roofline ceiling in the
/// backend's metric, with the class the ridge point assigns it.  Only
/// GFLOP-family metrics convert without per-config byte counts, so other
/// backends get no hint (and are never skipped).  Requires armed options.
struct CounterHint {
  double oi = 0.0;            ///< predicted flops/byte
  double bound_metric = 0.0;  ///< min(peak, DRAM_bw × OI) in the metric
  BottleneckClass cls = BottleneckClass::Unknown;
};
[[nodiscard]] std::optional<CounterHint> counter_hint(
    const Backend& backend, const Configuration& config,
    const TunerOptions& options);

/// Run one invocation of `config`.  `incumbent` is the best configuration
/// value seen so far (enables inner pruning when options.inner_prune).
/// `trace_ctx` locates the invocation in the schedule for the journal;
/// callers without a sink can ignore it.
InvocationResult run_invocation(Backend& backend, const Configuration& config,
                                std::uint64_t invocation_index,
                                const TunerOptions& options,
                                std::optional<double> incumbent,
                                const TraceContext& trace_ctx = {});

/// Run the full outer loop for `config`.
ConfigResult run_configuration(Backend& backend, const Configuration& config,
                               const TunerOptions& options,
                               std::optional<double> incumbent,
                               const TraceContext& trace_ctx = {});

}  // namespace rooftune::core
