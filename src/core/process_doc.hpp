#pragma once
// Self-description of the benchmarking process (paper Fig. 2).
//
// Fig. 2 is a flowchart of the two-level evaluation loop with its stop
// conditions.  Rather than shipping a static picture, the tool generates
// the diagram *from the actual TunerOptions*, so the documented process is
// always the configured one: an indented ASCII description and a Graphviz
// DOT graph (bench/fig02_process renders both for each paper technique).

#include <string>

#include "core/evaluator.hpp"

namespace rooftune::core {

/// Indented plain-text description of the process the options configure.
std::string describe_process(const TunerOptions& options);

/// Graphviz DOT source of the Fig. 2 flowchart for these options.
std::string process_dot(const TunerOptions& options);

}  // namespace rooftune::core
