#include "core/session.hpp"

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/json.hpp"
#include "util/json_parse.hpp"
#include "util/log.hpp"
#include "util/profiler.hpp"
#include "util/strings.hpp"
#include "util/rng.hpp"

namespace rooftune::core {

TuningSession::TuningSession(SearchSpace space, TunerOptions options,
                             std::string checkpoint_path)
    : space_(std::move(space)), options_(options), path_(std::move(checkpoint_path)) {
  if (path_.empty()) throw std::invalid_argument("TuningSession: empty checkpoint path");
}

std::uint64_t TuningSession::fingerprint() const {
  std::uint64_t h = 0xF17E9B12ull;
  // Hash the walked configuration sequence through the lazy view (same
  // sequence ordered(enumerate()) used to produce, so existing checkpoint
  // fingerprints are preserved).
  const SpaceView view(space_, options_.order, options_.random_seed);
  for (std::size_t i = 0; i < view.size(); ++i) {
    h = util::hash_seed(h, view.at(i).hash());
  }
  h = util::hash_seed(h, options_.invocations, options_.iterations,
                      static_cast<std::uint64_t>(options_.timeout.value * 1e6),
                      static_cast<std::uint64_t>(options_.confidence * 1e6),
                      static_cast<std::uint64_t>(options_.tolerance * 1e6),
                      static_cast<std::uint64_t>(options_.confidence_stop),
                      static_cast<std::uint64_t>(options_.inner_prune),
                      static_cast<std::uint64_t>(options_.outer_prune),
                      options_.prune_min_count,
                      static_cast<std::uint64_t>(options_.strategy),
                      options_.racing_min_invocations, options_.racing_iterations);
  if (options_.strategy == SearchStrategy::Surrogate) {
    // The seed sample and confirm set depend on these knobs (and on the
    // random seed even in Forward order); mixed in only for the surrogate
    // strategy so pre-existing exhaustive/racing fingerprints are unchanged.
    h = util::hash_seed(h, options_.surrogate_seed_budget,
                        options_.surrogate_confirm_top, options_.random_seed);
  }
  if (options_.counter_prune) {
    // Counter-prune decisions depend on the margin/window and the roofline
    // ceilings; mixed in only when armed so pre-existing fingerprints are
    // unchanged.  Doubles enter as their IEEE-754 bit images.
    const auto bits = [](double v) {
      std::uint64_t b;
      std::memcpy(&b, &v, sizeof b);
      return b;
    };
    h = util::hash_seed(h, bits(options_.counter_prune_margin),
                        options_.counter_prune_window,
                        bits(options_.counter_peak_gflops),
                        bits(options_.counter_dram_gbps));
  }
  return h;
}

namespace {

/// Environment fingerprint (telemetry::EnvironmentFingerprint stable hash)
/// recorded so a resume on a changed machine state is refused.  Stored as a
/// hex string for the same reason as the space/options fingerprint.
void write_env_fingerprint(util::JsonWriter& w, std::uint64_t env) {
  if (env == 0) {
    w.key("env").null();
  } else {
    w.key("env").value(util::format("%016llx", static_cast<unsigned long long>(env)));
  }
}

/// Refuse to resume under a different machine environment.  DVFS governor,
/// turbo state, SMT topology and THP policy all move the ceilings being
/// measured, so mixing measurements across them corrupts the search.  The
/// check only fires when both sides carry a fingerprint (nonzero): old
/// checkpoints and embedders without telemetry keep resuming as before.
void check_env_fingerprint(const util::JsonValue& doc, std::uint64_t current,
                           const std::string& checkpoint_path) {
  if (current == 0 || !doc.has("env") || doc.at("env").is_null()) return;
  const std::string recorded = doc.at("env").as_string();
  const std::string ours =
      util::format("%016llx", static_cast<unsigned long long>(current));
  if (recorded != ours) {
    throw std::runtime_error(
        "TuningSession: checkpoint '" + checkpoint_path +
        "' records environment fingerprint " + recorded +
        " but this run executes under " + ours +
        "; the machine state (governor/turbo/topology/build) changed — "
        "measurements are not comparable.  Re-establish the original "
        "environment or delete the checkpoint to start over");
  }
}

StopReason stop_reason_from(const std::string& text) {
  if (const auto reason = stop_reason_from_string(text)) return *reason;
  throw std::runtime_error("TuningSession: unknown stop reason '" + text + "'");
}

/// Refuse to resume a traced run under a different journal path — the
/// journal would silently split across files.  Checkpoints predating the
/// trace field (no "trace" key) are treated as untraced.
void check_trace_path(const util::JsonValue& doc, const std::string& trace_path,
                      const std::string& checkpoint_path) {
  std::string recorded;
  if (doc.has("trace") && !doc.at("trace").is_null()) {
    recorded = doc.at("trace").as_string();
  }
  if (recorded != trace_path) {
    throw std::runtime_error(
        "TuningSession: checkpoint '" + checkpoint_path +
        "' records trace path '" + recorded + "' but this run uses '" +
        trace_path + "'; resume with the same --trace path");
  }
}

// Resumed racing/surrogate runs must be bit-identical, but JSON numbers
// round-trip through %.12g and lose low bits.  Doubles in those checkpoints
// are therefore stored as the hex image of their IEEE-754 bits (same
// precedent as the fingerprint field).
std::string double_bits(double v) {
  std::uint64_t bits;
  static_assert(sizeof bits == sizeof v);
  std::memcpy(&bits, &v, sizeof bits);
  return util::format("%016llx", static_cast<unsigned long long>(bits));
}

double bits_double(const std::string& hex) {
  const std::uint64_t bits = std::stoull(hex, nullptr, 16);
  double v;
  std::memcpy(&v, &bits, sizeof v);
  return v;
}

const char* to_string(RacingScheduler::Status status) {
  switch (status) {
    case RacingScheduler::Status::Racing: return "racing";
    case RacingScheduler::Status::Finished: return "finished";
    case RacingScheduler::Status::Eliminated: return "eliminated";
  }
  return "?";
}

RacingScheduler::Status racing_status_from(const std::string& text) {
  for (const auto s : {RacingScheduler::Status::Racing,
                       RacingScheduler::Status::Finished,
                       RacingScheduler::Status::Eliminated}) {
    if (text == to_string(s)) return s;
  }
  throw std::runtime_error("TuningSession: unknown racing status '" + text + "'");
}

/// One bit-exact record per completed invocation ("invocations": [...]).
/// Shared by the racing entries and the surrogate seed results.
void write_invocation_records(util::JsonWriter& w,
                              const std::vector<InvocationResult>& invocations) {
  w.key("invocations").begin_array();
  for (const auto& inv : invocations) {
    w.begin_object();
    w.key("count").value(inv.moments.count());
    w.key("mean_bits").value(double_bits(inv.moments.mean()));
    w.key("ssd_bits").value(double_bits(inv.moments.sum_squared_deviations()));
    w.key("iterations").value(inv.iterations);
    w.key("stop").value(to_string(inv.stop_reason));
    w.key("rising").value(inv.trend_rising);
    w.key("kernel_bits").value(double_bits(inv.kernel_time.value));
    w.key("wall_bits").value(double_bits(inv.wall_time.value));
    w.key("setup_bits").value(double_bits(inv.setup_time.value));
    if (inv.counter_bound.has_value() && inv.bottleneck.has_value()) {
      // Counter-prune evidence: a mid-round resume must reach the same
      // prune decisions, so the verdict-derived fields round-trip bit-exact.
      // Absent for runs without the policy — their checkpoint bytes are
      // unchanged.
      w.key("counter").begin_object();
      w.key("class").value(to_string(inv.bottleneck->cls));
      w.key("bound_bits").value(double_bits(*inv.counter_bound));
      if (inv.bottleneck->oi.has_value()) {
        w.key("oi_bits").value(double_bits(*inv.bottleneck->oi));
      } else {
        w.key("oi_bits").null();
      }
      w.key("widened").value(inv.bottleneck->widened);
      w.end_object();
    }
    w.end_object();
  }
  w.end_array();
}

/// Rebuild the derived per-configuration state (outer moments, totals,
/// optional trend window) by replaying the invocation records in order —
/// the same floating-point operation sequence the evaluator performed, so
/// the restored state is bit-identical to the uninterrupted one.
void replay_invocation_records(const util::JsonValue& record, ConfigResult& result,
                               stats::TrendDetector* trend) {
  for (const auto& inv_record : record.at("invocations").as_array()) {
    InvocationResult inv;
    inv.moments = stats::OnlineMoments::from_raw(
        static_cast<std::uint64_t>(inv_record.at("count").as_number()),
        bits_double(inv_record.at("mean_bits").as_string()),
        bits_double(inv_record.at("ssd_bits").as_string()));
    inv.iterations =
        static_cast<std::uint64_t>(inv_record.at("iterations").as_number());
    inv.stop_reason = stop_reason_from(inv_record.at("stop").as_string());
    inv.trend_rising = inv_record.at("rising").as_bool();
    inv.kernel_time = util::Seconds{bits_double(inv_record.at("kernel_bits").as_string())};
    inv.wall_time = util::Seconds{bits_double(inv_record.at("wall_bits").as_string())};
    inv.setup_time = util::Seconds{bits_double(inv_record.at("setup_bits").as_string())};
    if (inv_record.has("counter")) {
      const auto& counter = inv_record.at("counter");
      BottleneckVerdict verdict;
      const auto cls =
          bottleneck_class_from_string(counter.at("class").as_string());
      if (!cls.has_value()) {
        throw std::runtime_error("TuningSession: unknown bottleneck class '" +
                                 counter.at("class").as_string() + "'");
      }
      verdict.cls = *cls;
      const double bound = bits_double(counter.at("bound_bits").as_string());
      verdict.bound_gflops = bound;
      if (!counter.at("oi_bits").is_null()) {
        verdict.oi = bits_double(counter.at("oi_bits").as_string());
      }
      verdict.widened = counter.at("widened").as_bool();
      inv.bottleneck = verdict;
      inv.counter_bound = bound;
    }
    result.total_iterations += inv.iterations;
    result.outer_moments.add(inv.moments.mean());
    result.total_time += inv.wall_time;
    result.total_setup_time += inv.setup_time;
    result.total_kernel_time += inv.kernel_time;
    if (trend) trend->add(inv.moments.mean());
    result.invocations.push_back(std::move(inv));
  }
}

void write_config_object(util::JsonWriter& w, const Configuration& config) {
  w.key("config").begin_object();
  for (const auto& p : config.parameters()) {
    w.key(p.name).value(static_cast<long long>(p.value));
  }
  w.end_object();
}

}  // namespace

void TuningSession::check_fingerprint_and_context(const util::JsonValue& doc) const {
  if (doc.at("fingerprint").as_string() !=
      util::format("%016llx", static_cast<unsigned long long>(fingerprint()))) {
    throw std::runtime_error(
        "TuningSession: checkpoint '" + path_ +
        "' was written by a different space/options combination");
  }
  check_trace_path(doc, options_.trace_path, path_);
  check_env_fingerprint(doc, options_.env_fingerprint, path_);
}

std::string TuningSession::checkpoint_json(const TuningRun& run,
                                           std::optional<double> incumbent,
                                           util::Seconds prior_time) const {
  util::JsonWriter w;
  w.begin_object();
  // Stored as a hex string: JSON numbers round-trip through double, which
  // cannot represent all 64-bit hashes exactly.
  w.key("fingerprint").value(util::format("%016llx",
                                          static_cast<unsigned long long>(fingerprint())));
  // Journal path for the run this checkpoint belongs to.  Not part of the
  // fingerprint (attaching a trace never invalidates a checkpoint), but a
  // resume under a *different* path would silently split one run's journal
  // across two files, so restore refuses the mismatch.
  if (options_.trace_path.empty()) {
    w.key("trace").null();
  } else {
    w.key("trace").value(options_.trace_path);
  }
  write_env_fingerprint(w, options_.env_fingerprint);
  w.key("elapsed_seconds").value(prior_time.value);
  if (incumbent.has_value()) {
    w.key("incumbent").value(*incumbent);
  } else {
    w.key("incumbent").null();
  }
  if (run.best_index.has_value()) {
    w.key("best_index").value(*run.best_index);
  } else {
    w.key("best_index").null();
  }
  w.key("results").begin_array();
  for (const auto& r : run.results) {
    w.begin_object();
    write_config_object(w, r.config);
    w.key("outer_count").value(r.outer_moments.count());
    w.key("outer_mean").value(r.outer_moments.mean());
    w.key("outer_ssd").value(r.outer_moments.sum_squared_deviations());
    w.key("iterations").value(r.total_iterations);
    w.key("invocations").value(r.invocations.size());
    w.key("time_seconds").value(r.total_time.value);
    w.key("setup_seconds").value(r.total_setup_time.value);
    w.key("kernel_seconds").value(r.total_kernel_time.value);
    w.key("outer_stop").value(to_string(r.outer_stop));
    w.key("pruned").value(r.pruned());
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

void TuningSession::write_checkpoint_file(const std::string& content) const {
  const util::ProfileSpan span(util::ProfileCategory::Checkpoint,
                               content.size());
  const std::string tmp = path_ + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) throw std::runtime_error("TuningSession: cannot write " + tmp);
    out << content;
  }
  std::filesystem::rename(tmp, path_);
}

void TuningSession::save_checkpoint(const TuningRun& run,
                                    std::optional<double> incumbent,
                                    util::Seconds prior_time) const {
  write_checkpoint_file(checkpoint_json(run, incumbent, prior_time));
}

std::string TuningSession::racing_checkpoint_json(
    const RacingScheduler::State& state) const {
  util::JsonWriter w;
  w.begin_object();
  w.key("fingerprint").value(util::format("%016llx",
                                          static_cast<unsigned long long>(fingerprint())));
  if (options_.trace_path.empty()) {
    w.key("trace").null();
  } else {
    w.key("trace").value(options_.trace_path);
  }
  write_env_fingerprint(w, options_.env_fingerprint);
  w.key("strategy").value(to_string(options_.strategy));
  w.key("round").value(state.round);
  w.key("entries").begin_array();
  for (const auto& entry : state.entries) {
    w.begin_object();
    write_config_object(w, entry.result.config);
    w.key("status").value(to_string(entry.status));
    w.key("outer_stop").value(to_string(entry.result.outer_stop));
    write_invocation_records(w, entry.result.invocations);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

void TuningSession::save_racing_checkpoint(
    const RacingScheduler::State& state) const {
  write_checkpoint_file(racing_checkpoint_json(state));
}

void TuningSession::restore_racing(RacingScheduler::State& state,
                                   const std::string& text) {
  const util::JsonValue doc = util::parse_json(text);
  check_fingerprint_and_context(doc);
  const auto& entries = doc.at("entries").as_array();
  if (entries.size() != state.entries.size()) {
    throw std::runtime_error("TuningSession: racing checkpoint entry count mismatch");
  }
  state.round = static_cast<std::uint64_t>(doc.at("round").as_number());
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const auto& record = entries[i];
    RacingScheduler::Entry& entry = state.entries[i];
    entry.status = racing_status_from(record.at("status").as_string());
    entry.result.outer_stop = stop_reason_from(record.at("outer_stop").as_string());
    replay_invocation_records(record, entry.result, &entry.trend);
    if (!entry.result.invocations.empty()) ++resumed_;
  }
}

TuningRun TuningSession::run_racing(Backend& backend) {
  const RacingScheduler scheduler(options_);
  RacingScheduler::State state =
      scheduler.init(ordered(space_.enumerate(), options_.order, options_.random_seed));
  resumed_ = 0;

  if (std::filesystem::exists(path_)) {
    std::ifstream in(path_);
    std::stringstream buffer;
    buffer << in.rdbuf();
    restore_racing(state, buffer.str());
    util::log_info() << "TuningSession: resumed racing round " << state.round
                     << " (" << resumed_ << "/" << state.entries.size()
                     << " configurations in flight) from " << path_;
    if (options_.trace) {
      // Sorts at the head of the current round, before the first fresh
      // invocation (rank 0, ordinal 0).
      TraceEvent event;
      event.kind = TraceEvent::Kind::Resume;
      event.epoch = state.round;
      event.invocation = state.round;
      event.restored_configs = resumed_;
      options_.trace->emit(event);
    }
  }

  // The checkpoint is written after every block and after every concluded
  // round, so an interruption costs at most one block of re-work; entries
  // march in lockstep (survivors() skips entries that already ran the
  // current round), so a resumed race runs only the missing invocations —
  // bit-identical on the deterministic backends.
  for (;;) {
    const auto blocks = RacingScheduler::round_blocks(state);
    if (blocks.empty()) break;
    for (const auto& block : blocks) {
      const auto incumbent = RacingScheduler::frozen_incumbent(state);
      if (options_.trace && incumbent.has_value()) {
        TraceEvent event;
        event.kind = TraceEvent::Kind::IncumbentUpdate;
        event.epoch = state.round;
        event.config_ordinal = block.front();
        event.invocation = state.round;
        event.rank = 0;
        event.value = *incumbent;
        options_.trace->emit(event);
      }
      scheduler.apply_counter_skips(state, block, incumbent, backend);
      for (const std::size_t i : block) {
        if (state.entries[i].status != RacingScheduler::Status::Racing) continue;
        scheduler.run_entry_invocation(backend, state.entries[i], incumbent, i);
      }
      save_racing_checkpoint(state);
    }
    const bool active = scheduler.conclude_round(state);
    save_racing_checkpoint(state);
    if (!active) break;
  }

  TuningRun run = RacingScheduler::finish(std::move(state));
  run.arena = backend.arena_stats();
  std::filesystem::remove(path_);
  return run;
}

std::string TuningSession::surrogate_checkpoint_json(
    const SurrogateScheduler::State& state) const {
  util::JsonWriter w;
  w.begin_object();
  w.key("fingerprint").value(util::format("%016llx",
                                          static_cast<unsigned long long>(fingerprint())));
  if (options_.trace_path.empty()) {
    w.key("trace").null();
  } else {
    w.key("trace").value(options_.trace_path);
  }
  write_env_fingerprint(w, options_.env_fingerprint);
  w.key("strategy").value(to_string(options_.strategy));
  w.key("phase").value(state.phase == SurrogateScheduler::Phase::Seed ? "seed"
                                                                      : "confirm");
  // Seed indices are NOT stored: init() recomputes them deterministically
  // and the fingerprint pins every input they depend on.
  w.key("seed").begin_array();
  for (const auto& result : state.seed_results) {
    w.begin_object();
    write_config_object(w, result.config);
    w.key("outer_stop").value(to_string(result.outer_stop));
    write_invocation_records(w, result.invocations);
    w.end_object();
  }
  w.end_array();
  if (state.phase == SurrogateScheduler::Phase::Confirm) {
    w.key("model").begin_object();
    w.key("log_scale").value(state.model->log_scale());
    w.key("r2_bits").value(double_bits(state.model->train_r2()));
    w.key("coef_bits").begin_array();
    for (const double c : state.model->coefficients()) w.value(double_bits(c));
    w.end_array();
    w.end_object();
    w.key("scanned").value(state.scanned);
    w.key("confirm").begin_array();
    for (std::size_t i = 0; i < state.confirm_indices.size(); ++i) {
      w.begin_object();
      // Cartesian indices as strings: they can exceed the 2^53 range JSON
      // numbers carry exactly.
      w.key("index").value(util::format(
          "%llu", static_cast<unsigned long long>(state.confirm_indices[i])));
      w.key("predicted_bits").value(double_bits(state.confirm_predicted[i]));
      w.end_object();
    }
    w.end_array();
    w.key("round").value(state.race.round);
    w.key("entries").begin_array();
    for (const auto& entry : state.race.entries) {
      w.begin_object();
      write_config_object(w, entry.result.config);
      w.key("status").value(to_string(entry.status));
      w.key("outer_stop").value(to_string(entry.result.outer_stop));
      write_invocation_records(w, entry.result.invocations);
      w.end_object();
    }
    w.end_array();
  }
  w.end_object();
  return w.str();
}

void TuningSession::save_surrogate_checkpoint(
    const SurrogateScheduler::State& state) const {
  write_checkpoint_file(surrogate_checkpoint_json(state));
}

void TuningSession::restore_surrogate(const SurrogateScheduler& scheduler,
                                      SurrogateScheduler::State& state,
                                      const std::string& text) {
  const util::JsonValue doc = util::parse_json(text);
  check_fingerprint_and_context(doc);

  const auto& seed = doc.at("seed").as_array();
  if (seed.size() > state.seed_indices.size()) {
    throw std::runtime_error(
        "TuningSession: surrogate checkpoint has more seed results than the budget");
  }
  for (std::size_t i = 0; i < seed.size(); ++i) {
    ConfigResult result;
    // The fingerprint pins the seed sample, so position i is this index.
    result.config = space_.config_at(state.seed_indices[i]);
    result.outer_stop = stop_reason_from(seed[i].at("outer_stop").as_string());
    replay_invocation_records(seed[i], result, nullptr);
    state.seed_results.push_back(std::move(result));
    ++resumed_;
  }

  if (doc.at("phase").as_string() != "confirm") return;

  const auto& model = doc.at("model");
  std::vector<double> coef;
  for (const auto& bits : model.at("coef_bits").as_array()) {
    coef.push_back(bits_double(bits.as_string()));
  }
  state.model = SurrogateModel::from_state(std::move(coef),
                                           model.at("log_scale").as_bool(),
                                           bits_double(model.at("r2_bits").as_string()));
  state.scanned = static_cast<std::uint64_t>(doc.at("scanned").as_number());

  std::vector<Configuration> confirm_configs;
  for (const auto& candidate : doc.at("confirm").as_array()) {
    const std::uint64_t index = std::stoull(candidate.at("index").as_string());
    state.confirm_indices.push_back(index);
    state.confirm_predicted.push_back(
        bits_double(candidate.at("predicted_bits").as_string()));
    confirm_configs.push_back(space_.config_at(index));
  }
  state.race = RacingScheduler(options_).init(std::move(confirm_configs));
  state.race.round = static_cast<std::uint64_t>(doc.at("round").as_number());
  const auto& entries = doc.at("entries").as_array();
  if (entries.size() != state.race.entries.size()) {
    throw std::runtime_error(
        "TuningSession: surrogate checkpoint confirm entry count mismatch");
  }
  for (std::size_t i = 0; i < entries.size(); ++i) {
    RacingScheduler::Entry& entry = state.race.entries[i];
    entry.status = racing_status_from(entries[i].at("status").as_string());
    entry.result.outer_stop = stop_reason_from(entries[i].at("outer_stop").as_string());
    replay_invocation_records(entries[i], entry.result, &entry.trend);
    if (!entry.result.invocations.empty()) ++resumed_;
  }
  state.phase = SurrogateScheduler::Phase::Confirm;
  static_cast<void>(scheduler);
}

TuningRun TuningSession::run_surrogate(Backend& backend) {
  const SurrogateScheduler scheduler(options_);
  SurrogateScheduler::State state = scheduler.init(space_);
  resumed_ = 0;

  if (std::filesystem::exists(path_)) {
    std::ifstream in(path_);
    std::stringstream buffer;
    buffer << in.rdbuf();
    restore_surrogate(scheduler, state, buffer.str());
    const std::uint64_t seeds = state.seed_indices.size();
    util::log_info() << "TuningSession: resumed surrogate "
                     << (state.phase == SurrogateScheduler::Phase::Seed ? "seed"
                                                                        : "confirm")
                     << " phase (" << resumed_ << " configurations) from " << path_;
    if (options_.trace) {
      TraceEvent event;
      event.kind = TraceEvent::Kind::Resume;
      if (state.phase == SurrogateScheduler::Phase::Seed) {
        event.epoch = state.seed_results.size();
        event.config_ordinal = state.seed_results.size();
      } else {
        // Head of the current confirm round, past the fit/prune epoch.
        event.epoch = seeds + 1 + state.race.round;
        event.invocation = state.race.round;
      }
      event.restored_configs = resumed_;
      options_.trace->emit(event);
    }
  }

  // ---- seed remainder ------------------------------------------------------
  // Same serial schedule (and incumbent arithmetic) as the uninterrupted
  // SurrogateScheduler::run, checkpointing after every configuration.
  std::optional<double> incumbent = SurrogateScheduler::seed_incumbent(state);
  for (std::size_t i = state.seed_results.size(); i < state.seed_indices.size(); ++i) {
    TraceContext ctx;
    ctx.epoch = i;
    ctx.config_ordinal = i;
    const Configuration config = space_.config_at(state.seed_indices[i]);
    ConfigResult result = run_configuration(backend, config, options_, incumbent, ctx);
    SurrogateScheduler::normalize_seed_time(result);
    const double value = result.value();
    if (!incumbent.has_value() || value > *incumbent) {
      incumbent = value;
      if (options_.trace) {
        TraceEvent event;
        event.kind = TraceEvent::Kind::IncumbentUpdate;
        event.epoch = ctx.epoch;
        event.config_ordinal = ctx.config_ordinal;
        event.invocation =
            result.invocations.empty() ? 0 : result.invocations.size() - 1;
        event.rank = 7;
        event.config = config;
        event.value = value;
        options_.trace->emit(event);
      }
    }
    state.seed_results.push_back(std::move(result));
    save_surrogate_checkpoint(state);
  }

  const std::uint64_t seeds = state.seed_indices.size();
  if (state.phase == SurrogateScheduler::Phase::Seed) {
    scheduler.fit_and_prune(space_, state, seeds);
    save_surrogate_checkpoint(state);
  }
  // A confirm-phase resume restores the model and candidates instead of
  // refitting, so fit/prune trace records are never emitted twice.

  // ---- confirm race --------------------------------------------------------
  OffsetTraceSink sink(options_.trace, seeds + 1, seeds);
  const RacingScheduler confirm(
      scheduler.confirm_options(options_.trace ? &sink : nullptr));
  TraceSink* confirm_trace = confirm.options().trace;
  for (;;) {
    const auto blocks = RacingScheduler::round_blocks(state.race);
    if (blocks.empty()) break;
    for (const auto& block : blocks) {
      const auto frozen = RacingScheduler::frozen_incumbent(state.race);
      if (confirm_trace && frozen.has_value()) {
        TraceEvent event;
        event.kind = TraceEvent::Kind::IncumbentUpdate;
        event.epoch = state.race.round;
        event.config_ordinal = block.front();
        event.invocation = state.race.round;
        event.rank = 0;
        event.value = *frozen;
        confirm_trace->emit(event);
      }
      confirm.apply_counter_skips(state.race, block, frozen, backend);
      for (const std::size_t i : block) {
        if (state.race.entries[i].status != RacingScheduler::Status::Racing) {
          continue;
        }
        confirm.run_entry_invocation(backend, state.race.entries[i], frozen, i);
      }
      save_surrogate_checkpoint(state);
    }
    const bool active = confirm.conclude_round(state.race);
    save_surrogate_checkpoint(state);
    if (!active) break;
  }

  TuningRun run = SurrogateScheduler::finish(std::move(state));
  run.arena = backend.arena_stats();
  std::filesystem::remove(path_);
  return run;
}

TuningRun TuningSession::run(Backend& backend) {
  if (options_.strategy == SearchStrategy::Racing) return run_racing(backend);
  if (options_.strategy == SearchStrategy::Surrogate) return run_surrogate(backend);

  const SpaceView view(space_, options_.order, options_.random_seed);

  TuningRun run;
  std::optional<double> incumbent;
  util::Seconds prior_time{0.0};
  resumed_ = 0;

  // ---- restore --------------------------------------------------------------
  if (std::filesystem::exists(path_)) {
    std::ifstream in(path_);
    std::stringstream buffer;
    buffer << in.rdbuf();
    const util::JsonValue doc = util::parse_json(buffer.str());

    check_fingerprint_and_context(doc);
    prior_time = util::Seconds{doc.at("elapsed_seconds").as_number()};
    if (!doc.at("incumbent").is_null()) incumbent = doc.at("incumbent").as_number();

    const auto& results = doc.at("results").as_array();
    if (results.size() > view.size()) {
      throw std::runtime_error("TuningSession: checkpoint has more results than configs");
    }
    for (std::size_t i = 0; i < results.size(); ++i) {
      const auto& entry = results[i];
      ConfigResult r;
      r.config = view.at(i);  // fingerprint guarantees the order matches
      r.outer_moments = stats::OnlineMoments::from_raw(
          static_cast<std::uint64_t>(entry.at("outer_count").as_number()),
          entry.at("outer_mean").as_number(), entry.at("outer_ssd").as_number());
      r.total_iterations =
          static_cast<std::uint64_t>(entry.at("iterations").as_number());
      r.total_time = util::Seconds{entry.at("time_seconds").as_number()};
      r.total_setup_time = util::Seconds{entry.at("setup_seconds").as_number()};
      r.total_kernel_time = util::Seconds{entry.at("kernel_seconds").as_number()};
      r.outer_stop = stop_reason_from(entry.at("outer_stop").as_string());
      // Invocation details are not persisted; a pruned flag is preserved by
      // reconstructing the outer stop reason (which pruned() inspects).
      if (entry.at("pruned").as_bool() && r.outer_stop != StopReason::PrunedByBest) {
        // Inner-level prune: represent with one synthetic pruned invocation.
        InvocationResult inv;
        inv.stop_reason = StopReason::PrunedByBest;
        r.invocations.push_back(std::move(inv));
      }
      run.total_iterations += r.total_iterations;
      run.total_invocations +=
          static_cast<std::uint64_t>(entry.at("invocations").as_number());
      run.total_setup_time += r.total_setup_time;
      run.total_kernel_time += r.total_kernel_time;
      if (r.pruned()) ++run.pruned_configs;
      run.results.push_back(std::move(r));
    }
    if (!doc.at("best_index").is_null()) {
      run.best_index = static_cast<std::size_t>(doc.at("best_index").as_number());
    }
    resumed_ = run.results.size();
    util::log_info() << "TuningSession: resumed " << resumed_ << "/" << view.size()
                     << " configurations from " << path_;
    if (options_.trace) {
      TraceEvent event;
      event.kind = TraceEvent::Kind::Resume;
      event.epoch = resumed_;
      event.config_ordinal = resumed_;
      event.restored_configs = resumed_;
      options_.trace->emit(event);
    }
  }

  // ---- evaluate the remainder -------------------------------------------------
  const util::Seconds start = backend.clock().now();
  for (std::size_t i = run.results.size(); i < view.size(); ++i) {
    const Configuration config = view.at(i);
    TraceContext ctx;
    ctx.epoch = i;
    ctx.config_ordinal = i;
    ConfigResult result =
        run_configuration(backend, config, options_, incumbent, ctx);
    run.total_iterations += result.total_iterations;
    run.total_invocations += result.invocations.size();
    run.total_setup_time += result.total_setup_time;
    run.total_kernel_time += result.total_kernel_time;
    if (result.pruned()) ++run.pruned_configs;
    const double value = result.value();
    if (!incumbent.has_value() || value > *incumbent) {
      incumbent = value;
      run.best_index = i;
      if (options_.trace) {
        TraceEvent event;
        event.kind = TraceEvent::Kind::IncumbentUpdate;
        event.epoch = i;
        event.config_ordinal = i;
        event.invocation = result.invocations.empty()
                               ? 0
                               : result.invocations.size() - 1;
        event.rank = 7;
        event.config = config;
        event.value = value;
        options_.trace->emit(event);
      }
    }
    run.results.push_back(std::move(result));
    save_checkpoint(run, incumbent,
                    prior_time + (backend.clock().now() - start));
  }

  run.total_time = prior_time + (backend.clock().now() - start);
  run.arena = backend.arena_stats();
  std::filesystem::remove(path_);
  return run;
}

}  // namespace rooftune::core
