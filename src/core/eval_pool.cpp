#include "core/eval_pool.hpp"

#include "util/affinity.hpp"
#include "util/profiler.hpp"

namespace rooftune::core {

namespace {

using Clock = std::chrono::steady_clock;

std::uint64_t ns_between(Clock::time_point from, Clock::time_point to) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(to - from).count());
}

}  // namespace

EvalPool::EvalPool(Options options)
    : pin_threads_(options.pin_threads), start_(Clock::now()) {
  const std::size_t workers = options.workers > 0 ? options.workers : 1;
  contexts_.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    contexts_.push_back(std::make_unique<Context>());
  }
  threads_.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    threads_.emplace_back([this, w] { worker_main(w); });
  }
}

EvalPool::~EvalPool() {
  {
    const std::scoped_lock lock(park_mutex_);
    stop_.store(true, std::memory_order_release);
  }
  park_cv_.notify_all();
  for (std::thread& thread : threads_) thread.join();
  // All workers are gone; free anything the caller abandoned in flight.
  for (const auto& context : contexts_) {
    while (auto node = context->deque.pop()) delete *node;
    for (Node* node : context->inbox) delete node;
  }
}

void EvalPool::submit(Task task) {
  auto node = std::make_unique<Node>();
  node->fn = std::move(task);
  std::size_t target = 0;
  {
    const std::scoped_lock lock(submit_mutex_);
    target = next_inbox_++ % contexts_.size();
  }
  {
    const std::scoped_lock lock(contexts_[target]->inbox_mutex);
    contexts_[target]->inbox.push_back(node.release());
  }
  pending_.fetch_add(1, std::memory_order_release);
  // Empty critical section: a worker between its pending_ check and its
  // cv wait holds park_mutex_, so acquiring it here guarantees the worker
  // either saw the new pending_ value or is already waiting for notify.
  { const std::scoped_lock lock(park_mutex_); }
  park_cv_.notify_all();
}

EvalPool::Node* EvalPool::acquire(std::size_t w, bool& stolen) {
  Context& self = *contexts_[w];
  if (auto node = self.deque.pop()) {
    pending_.fetch_sub(1, std::memory_order_relaxed);
    return *node;
  }
  {
    const std::scoped_lock lock(self.inbox_mutex);
    for (Node* node : self.inbox) self.deque.push(node);
    self.inbox.clear();
  }
  if (auto node = self.deque.pop()) {
    pending_.fetch_sub(1, std::memory_order_relaxed);
    return *node;
  }
  const std::size_t n = contexts_.size();
  for (std::size_t k = 1; k < n; ++k) {
    Context& victim = *contexts_[(w + k) % n];
    if (auto node = victim.deque.steal()) {
      pending_.fetch_sub(1, std::memory_order_relaxed);
      stolen = true;
      return *node;
    }
  }
  for (std::size_t k = 1; k < n; ++k) {
    Context& victim = *contexts_[(w + k) % n];
    const std::scoped_lock lock(victim.inbox_mutex);
    if (!victim.inbox.empty()) {
      Node* node = victim.inbox.back();
      victim.inbox.pop_back();
      pending_.fetch_sub(1, std::memory_order_relaxed);
      stolen = true;
      return node;
    }
  }
  return nullptr;
}

void EvalPool::worker_main(std::size_t w) {
  if (pin_threads_) util::pin_current_thread(w);
  Context& self = *contexts_[w];
  util::Profiler& profiler = util::Profiler::instance();
  profiler.set_thread_name("worker-" + std::to_string(w));
  for (;;) {
    bool stolen = false;
    Node* node = acquire(w, stolen);
    if (node == nullptr) {
      if (stop_.load(std::memory_order_acquire)) return;
      const Clock::time_point idle_start = Clock::now();
      {
        std::unique_lock lock(park_mutex_);
        if (pending_.load(std::memory_order_acquire) == 0 &&
            !stop_.load(std::memory_order_acquire)) {
          self.parks.fetch_add(1, std::memory_order_relaxed);
          profiler.instant(util::ProfileCategory::Park, w);
          park_cv_.wait(lock, [this] {
            return pending_.load(std::memory_order_acquire) > 0 ||
                   stop_.load(std::memory_order_acquire);
          });
        }
      }
      // pending_ > 0 but our scan lost every race: yield before rescanning
      // so a one-core host lets the winner run.
      std::this_thread::yield();
      const Clock::time_point idle_end = Clock::now();
      self.idle_ns.fetch_add(ns_between(idle_start, idle_end),
                             std::memory_order_relaxed);
      // The profile's pool-idle span brackets exactly the interval idle_ns
      // accumulates, so the report's cross-check compares like for like.
      // The final park — ended by stop_, during pool destruction — is
      // excluded: the coordinator snapshots stats() before ~EvalPool, so
      // that tail interval never reaches the published idle_ns either.
      if (!stop_.load(std::memory_order_acquire)) {
        profiler.record(util::ProfileCategory::PoolIdle,
                        profiler.to_ticks(idle_start),
                        profiler.to_ticks(idle_end), 0.0, w);
      }
      continue;
    }
    if (stolen) {
      self.stolen.fetch_add(1, std::memory_order_relaxed);
      profiler.instant(util::ProfileCategory::Steal, w);
    }
    // Counted before the task body runs: the coordinator observes task
    // completion from inside the body (its own done flag), so a post-run
    // increment could read one short in stats() taken right after the last
    // commit.
    self.executed.fetch_add(1, std::memory_order_relaxed);
    const Clock::time_point busy_start = Clock::now();
    node->fn(w);
    const Clock::time_point busy_end = Clock::now();
    self.busy_ns.fetch_add(ns_between(busy_start, busy_end),
                           std::memory_order_relaxed);
    profiler.record(util::ProfileCategory::TaskExec,
                    profiler.to_ticks(busy_start), profiler.to_ticks(busy_end),
                    0.0, w);
    delete node;
  }
}

SchedulerStats EvalPool::stats() const {
  SchedulerStats stats;
  stats.workers = contexts_.size();
  for (const auto& context : contexts_) {
    stats.tasks += context->executed.load(std::memory_order_relaxed);
    stats.steals += context->stolen.load(std::memory_order_relaxed);
    stats.parks += context->parks.load(std::memory_order_relaxed);
    stats.idle_ns += context->idle_ns.load(std::memory_order_relaxed);
    stats.busy_ns += context->busy_ns.load(std::memory_order_relaxed);
  }
  stats.span_ns = ns_between(start_, Clock::now());
  return stats;
}

}  // namespace rooftune::core
