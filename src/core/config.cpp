#include "core/config.hpp"

#include <stdexcept>

#include "util/rng.hpp"

namespace rooftune::core {

std::int64_t Configuration::at(const std::string& name) const {
  for (const auto& p : params_) {
    if (p.name == name) return p.value;
  }
  throw std::out_of_range("Configuration: no parameter named '" + name + "'");
}

bool Configuration::has(const std::string& name) const {
  for (const auto& p : params_) {
    if (p.name == name) return true;
  }
  return false;
}

std::string Configuration::to_string() const {
  std::string out;
  for (const auto& p : params_) {
    if (!out.empty()) out += ',';
    out += p.name;
    out += '=';
    out += std::to_string(p.value);
  }
  return out;
}

std::uint64_t Configuration::hash() const {
  std::uint64_t h = 0x243F6A8885A308D3ull;  // pi digits, arbitrary non-zero
  for (const auto& p : params_) {
    for (char c : p.name) {
      h = util::hash_seed(h, static_cast<std::uint64_t>(static_cast<unsigned char>(c)));
    }
    h = util::hash_seed(h, static_cast<std::uint64_t>(p.value));
  }
  return h;
}

Configuration dgemm_config(std::int64_t n, std::int64_t m, std::int64_t k) {
  return Configuration({{"n", n}, {"m", m}, {"k", k}});
}

Configuration triad_config(std::int64_t n) {
  return Configuration({{"N", n}});
}

}  // namespace rooftune::core
