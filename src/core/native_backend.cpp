#include "core/native_backend.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/env.hpp"

namespace rooftune::core {

namespace {

std::shared_ptr<util::WorkspaceArena> make_arena(
    std::shared_ptr<util::WorkspaceArena> shared, const util::ArenaOptions& options) {
  if (shared != nullptr) return shared;
  return std::make_shared<util::WorkspaceArena>(options);
}

}  // namespace

// ---- NativeDgemmBackend ----------------------------------------------------

NativeDgemmBackend::NativeDgemmBackend(Options options)
    : options_(std::move(options)),
      arena_(make_arena(options_.arena, options_.arena_options)) {
  // Honour the paper's KMP_AFFINITY convention when the environment sets it.
  if (const auto env = util::affinity_from_environment()) options_.affinity = *env;
  util::apply_native_affinity(options_.affinity);
}

void NativeDgemmBackend::begin_invocation(const Configuration& config,
                                          std::uint64_t invocation_index) {
  n_ = config.at("n");
  m_ = config.at("m");
  k_ = config.at("k");
  if (n_ <= 0 || m_ <= 0 || k_ <= 0) {
    throw std::invalid_argument("NativeDgemmBackend: dimensions must be positive");
  }
  // A is n x k, B is k x m, C is n x m (paper §III-A naming).  Leases hit
  // warm slabs after the first (largest) working set of the sweep.
  a_ = arena_->lease_array<double>("dgemm.a",
                                   static_cast<std::size_t>(n_) * static_cast<std::size_t>(k_));
  b_ = arena_->lease_array<double>("dgemm.b",
                                   static_cast<std::size_t>(k_) * static_cast<std::size_t>(m_));
  c_ = arena_->lease_array<double>("dgemm.c",
                                   static_cast<std::size_t>(n_) * static_cast<std::size_t>(m_));
  blas::fill_random(a_, n_, k_, k_,
                    util::hash_seed(options_.seed, config.hash(), invocation_index, 1));
  blas::fill_random(b_, k_, m_, m_,
                    util::hash_seed(options_.seed, config.hash(), invocation_index, 2));
  const std::int64_t c_elems = n_ * m_;
  double* c = c_;
#pragma omp parallel for schedule(static)
  for (std::int64_t i = 0; i < c_elems; ++i) c[i] = 0.0;
  in_invocation_ = true;

  // Pre-heat: one untimed call so caches, page tables and the BLAS thread
  // pool are warm before measurements start (§III-A).
  blas::dgemm(blas::Layout::RowMajor, blas::Trans::NoTrans, blas::Trans::NoTrans,
              n_, m_, k_, options_.alpha, a_, k_, b_, m_,
              options_.beta, c_, m_, options_.variant);
}

Sample NativeDgemmBackend::run_iteration() {
  if (!in_invocation_) {
    throw std::logic_error("NativeDgemmBackend: run_iteration outside invocation");
  }
  if (options_.beta != 0.0) {
    // With beta != 0 each timed call would accumulate into the C the
    // previous call produced, compounding across the 200-iteration loop
    // until the values overflow.  Re-establish the canonical C = 0 operand
    // outside the timed region so every iteration measures the same
    // C <- alpha*A*B + beta*C_0 computation.
    const std::int64_t c_elems = n_ * m_;
    double* c = c_;
#pragma omp parallel for schedule(static)
    for (std::int64_t i = 0; i < c_elems; ++i) c[i] = 0.0;
  }
  const util::Seconds t0 = clock_.now();
  blas::dgemm(blas::Layout::RowMajor, blas::Trans::NoTrans, blas::Trans::NoTrans,
              n_, m_, k_, options_.alpha, a_, k_, b_, m_,
              options_.beta, c_, m_, options_.variant);
  const util::Seconds elapsed = clock_.now() - t0;

  Sample sample;
  sample.kernel_time = elapsed;
  sample.value = util::rate(blas::dgemm_flops(n_, m_, k_), elapsed).value;
  return sample;
}

void NativeDgemmBackend::end_invocation() {
  a_ = b_ = c_ = nullptr;
  in_invocation_ = false;
  if (!options_.reuse) arena_->release_all();
}

double NativeDgemmBackend::max_abs_c() const {
  if (!in_invocation_) {
    throw std::logic_error("NativeDgemmBackend: max_abs_c outside invocation");
  }
  double worst = 0.0;
  for (std::int64_t i = 0; i < n_ * m_; ++i) {
    worst = std::max(worst, std::fabs(c_[i]));
  }
  return worst;
}

// ---- NativeTriadBackend ----------------------------------------------------

NativeTriadBackend::NativeTriadBackend(Options options)
    : options_(std::move(options)),
      arena_(make_arena(options_.arena, options_.arena_options)) {
  if (const auto env = util::affinity_from_environment()) options_.affinity = *env;
  util::apply_native_affinity(options_.affinity);
}

void NativeTriadBackend::begin_invocation(const Configuration& config,
                                          std::uint64_t invocation_index) {
  (void)invocation_index;  // vectors are value-initialized; nothing varies
  policy_ = options_.store;
  if (config.has("nt")) {
    policy_ = config.at("nt") != 0 ? stream::StorePolicy::Streaming
                                   : stream::StorePolicy::Regular;
  }
  n_ = config.at("N");
  arrays_.emplace(config.at("N"), *arena_);
  // Pre-heat pass (pages are already resident on a slab hit; this warms
  // caches and, on a miss, faults in the fresh slab).
  arrays_->run(options_.kernel, options_.gamma, policy_);
}

Sample NativeTriadBackend::run_iteration() {
  if (!arrays_) throw std::logic_error("NativeTriadBackend: run_iteration outside invocation");
  const util::Seconds t0 = clock_.now();
  const util::Bytes moved = arrays_->run(options_.kernel, options_.gamma, policy_);
  const util::Seconds elapsed = clock_.now() - t0;

  Sample sample;
  sample.kernel_time = elapsed;
  sample.value = util::bandwidth(moved, elapsed).value;
  return sample;
}

void NativeTriadBackend::end_invocation() {
  arrays_.reset();
  if (!options_.reuse) arena_->release_all();
}

}  // namespace rooftune::core
