#include "core/native_backend.hpp"

#include <stdexcept>

#include "util/env.hpp"

namespace rooftune::core {

// ---- NativeDgemmBackend ----------------------------------------------------

NativeDgemmBackend::NativeDgemmBackend(Options options) : options_(options) {
  // Honour the paper's KMP_AFFINITY convention when the environment sets it.
  if (const auto env = util::affinity_from_environment()) options_.affinity = *env;
  util::apply_native_affinity(options_.affinity);
}

void NativeDgemmBackend::begin_invocation(const Configuration& config,
                                          std::uint64_t invocation_index) {
  n_ = config.at("n");
  m_ = config.at("m");
  k_ = config.at("k");
  if (n_ <= 0 || m_ <= 0 || k_ <= 0) {
    throw std::invalid_argument("NativeDgemmBackend: dimensions must be positive");
  }
  // A is n x k, B is k x m, C is n x m (paper §III-A naming).
  a_.emplace(n_, k_);
  b_.emplace(k_, m_);
  c_.emplace(n_, m_);
  a_->fill_random(util::hash_seed(options_.seed, config.hash(), invocation_index, 1));
  b_->fill_random(util::hash_seed(options_.seed, config.hash(), invocation_index, 2));
  c_->fill(0.0);

  // Pre-heat: one untimed call so caches, page tables and the BLAS thread
  // pool are warm before measurements start (§III-A).
  blas::dgemm(blas::Layout::RowMajor, blas::Trans::NoTrans, blas::Trans::NoTrans,
              n_, m_, k_, options_.alpha, a_->data(), a_->ld(), b_->data(), b_->ld(),
              options_.beta, c_->data(), c_->ld(), options_.variant);
}

Sample NativeDgemmBackend::run_iteration() {
  if (!a_) throw std::logic_error("NativeDgemmBackend: run_iteration outside invocation");
  const util::Seconds t0 = clock_.now();
  blas::dgemm(blas::Layout::RowMajor, blas::Trans::NoTrans, blas::Trans::NoTrans,
              n_, m_, k_, options_.alpha, a_->data(), a_->ld(), b_->data(), b_->ld(),
              options_.beta, c_->data(), c_->ld(), options_.variant);
  const util::Seconds elapsed = clock_.now() - t0;

  Sample sample;
  sample.kernel_time = elapsed;
  sample.value = util::rate(blas::dgemm_flops(n_, m_, k_), elapsed).value;
  return sample;
}

void NativeDgemmBackend::end_invocation() {
  a_.reset();
  b_.reset();
  c_.reset();
}

// ---- NativeTriadBackend ----------------------------------------------------

NativeTriadBackend::NativeTriadBackend(Options options) : options_(options) {
  if (const auto env = util::affinity_from_environment()) options_.affinity = *env;
  util::apply_native_affinity(options_.affinity);
}

void NativeTriadBackend::begin_invocation(const Configuration& config,
                                          std::uint64_t invocation_index) {
  (void)invocation_index;  // vectors are value-initialized; nothing varies
  policy_ = options_.store;
  if (config.has("nt")) {
    policy_ = config.at("nt") != 0 ? stream::StorePolicy::Streaming
                                   : stream::StorePolicy::Regular;
  }
  arrays_ = std::make_unique<stream::StreamArrays>(config.at("N"));
  // Pre-heat pass (also faults in any lazily mapped pages).
  arrays_->run(options_.kernel, options_.gamma, policy_);
}

Sample NativeTriadBackend::run_iteration() {
  if (!arrays_) throw std::logic_error("NativeTriadBackend: run_iteration outside invocation");
  const util::Seconds t0 = clock_.now();
  const util::Bytes moved = arrays_->run(options_.kernel, options_.gamma, policy_);
  const util::Seconds elapsed = clock_.now() - t0;

  Sample sample;
  sample.kernel_time = elapsed;
  sample.value = util::bandwidth(moved, elapsed).value;
  return sample;
}

void NativeTriadBackend::end_invocation() { arrays_.reset(); }

}  // namespace rooftune::core
