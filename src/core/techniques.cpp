#include "core/techniques.hpp"

#include <stdexcept>

namespace rooftune::core {

std::string technique_name(Technique technique) {
  switch (technique) {
    case Technique::Default: return "Default";
    case Technique::Single: return "Single";
    case Technique::HandTunedTime: return "Hand-tuned Time";
    case Technique::HandTunedAccuracy: return "Hand-tuned Accuracy";
    case Technique::Confidence: return "Confidence";
    case Technique::CInner: return "C+Inner";
    case Technique::CInnerReverse: return "C+Inner+R";
    case Technique::CIOuter: return "C+I+Outer";
    case Technique::CIOuterReverse: return "C+I+O+R";
  }
  return "?";
}

std::vector<Technique> all_techniques() {
  return {Technique::Default,       Technique::HandTunedTime,
          Technique::HandTunedAccuracy, Technique::Single,
          Technique::Confidence,    Technique::CInner,
          Technique::CInnerReverse, Technique::CIOuter,
          Technique::CIOuterReverse};
}

std::vector<Technique> automatic_techniques() {
  return {Technique::Default, Technique::Single, Technique::Confidence,
          Technique::CInner,  Technique::CInnerReverse, Technique::CIOuter,
          Technique::CIOuterReverse};
}

TunerOptions technique_options(Technique technique, const TunerOptions& base,
                               std::uint64_t hand_tuned_iterations,
                               std::uint64_t prune_min_count) {
  TunerOptions options = base;
  options.confidence_stop = false;
  options.inner_prune = false;
  options.outer_prune = false;
  options.order = SearchOrder::Forward;
  options.prune_min_count = prune_min_count;

  switch (technique) {
    case Technique::Default:
      break;
    case Technique::Single:
      options.invocations = 1;
      options.iterations = 1;
      break;
    case Technique::HandTunedTime:
    case Technique::HandTunedAccuracy:
      if (hand_tuned_iterations == 0) {
        throw std::invalid_argument(
            "technique_options: hand-tuned techniques need an iteration count");
      }
      options.invocations = 1;
      options.iterations = hand_tuned_iterations;
      break;
    case Technique::Confidence:
      options.confidence_stop = true;
      break;
    case Technique::CInner:
      options.confidence_stop = true;
      options.inner_prune = true;
      break;
    case Technique::CInnerReverse:
      options.confidence_stop = true;
      options.inner_prune = true;
      options.order = SearchOrder::Reverse;
      break;
    case Technique::CIOuter:
      options.confidence_stop = true;
      options.inner_prune = true;
      options.outer_prune = true;
      break;
    case Technique::CIOuterReverse:
      options.confidence_stop = true;
      options.inner_prune = true;
      options.outer_prune = true;
      options.order = SearchOrder::Reverse;
      break;
  }
  return options;
}

}  // namespace rooftune::core
