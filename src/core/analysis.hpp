#pragma once
// Post-tuning analysis of a TuningRun.
//
// Table V's pattern — "most hardware finds an optimal configuration with
// k = 128 and that n and m varies depending on the hardware" — is a
// statement about *parameter importance*: how much of the performance
// spread each search dimension explains.  parameter_effects() computes a
// per-parameter main-effect decomposition from the evaluated
// configurations, so that observation can be made quantitatively for any
// run (bench/study_parameter_effects regenerates it).

#include <string>
#include <vector>

#include "core/autotuner.hpp"
#include "stats/effect_size.hpp"

namespace rooftune::core {

/// Main-effect summary of one value of one parameter.
struct LevelEffect {
  std::int64_t value = 0;   ///< the parameter value (e.g. k = 128)
  double mean = 0.0;        ///< mean metric over all configs with this value
  double best = 0.0;        ///< best metric over those configs
  std::size_t count = 0;    ///< how many evaluated configs had this value
};

/// Main-effect summary of one parameter.
struct ParameterEffect {
  std::string name;
  std::vector<LevelEffect> levels;   ///< sorted by value ascending
  /// (max level mean - min level mean) / overall mean: the fraction of the
  /// performance scale this parameter's choice moves on average.
  double effect_range = 0.0;
  /// The level with the highest mean metric.
  std::int64_t best_level = 0;
};

/// Compute main effects for every parameter appearing in the run.
/// Pruned configurations are skipped by default — their recorded means are
/// truncated warm-up samples, which would bias level means downward.
/// Throws std::invalid_argument when no (unpruned) results exist.
std::vector<ParameterEffect> parameter_effects(const TuningRun& run,
                                               bool include_pruned = false);

/// Parameters sorted by descending effect_range (most important first).
std::vector<ParameterEffect> ranked_parameter_effects(const TuningRun& run,
                                                      bool include_pruned = false);

/// Human-readable report of the ranked effects.
std::string effects_report(const TuningRun& run);

// ---- run-to-run comparison ---------------------------------------------------

/// Statistically honest comparison of two tuning runs over the same space
/// (e.g. two techniques, or the same technique on two days): per matching
/// configuration, a Fieller ratio-of-means interval over the invocation
/// means decides whether the runs measured different performance — the
/// Kalibera & Jones methodology the paper cites, applied run-wide.
struct ConfigDelta {
  Configuration config;
  double value_a = 0.0;
  double value_b = 0.0;
  double ratio = 1.0;  ///< value_a / value_b
  stats::Comparison verdict = stats::Comparison::Indistinguishable;
};

struct RunComparison {
  std::vector<ConfigDelta> significant;  ///< configs with a real difference
  std::size_t compared = 0;              ///< configs tested
  std::size_t skipped = 0;  ///< missing from one run or < 2 invocations
  bool best_config_matches = false;
  double best_ratio = 1.0;  ///< best_a / best_b
};

RunComparison compare_runs(const TuningRun& a, const TuningRun& b,
                           double confidence = 0.95);

}  // namespace rooftune::core
