#include "core/report.hpp"

#include <ostream>

#include "util/csv.hpp"
#include "util/json.hpp"
#include "util/strings.hpp"
#include "util/units.hpp"

namespace rooftune::core {

std::string to_json(const TuningRun& run, const std::string& benchmark_name,
                    const std::string& metric_name) {
  util::JsonWriter w;
  w.begin_object();
  w.key("benchmark").value(benchmark_name);
  w.key("metric").value(metric_name);
  w.key("total_time_seconds").value(run.total_time.value);
  w.key("total_setup_seconds").value(run.total_setup_time.value);
  w.key("total_kernel_seconds").value(run.total_kernel_time.value);
  w.key("total_iterations").value(run.total_iterations);
  w.key("total_invocations").value(run.total_invocations);
  w.key("pruned_configs").value(run.pruned_configs);

  if (run.arena.has_value()) {
    const util::ArenaStats& a = *run.arena;
    w.key("arena").begin_object();
    w.key("leases").value(a.leases);
    w.key("slab_hits").value(a.slab_hits);
    w.key("slab_misses").value(a.slab_misses);
    w.key("allocations").value(a.allocations);
    w.key("bytes_leased").value(a.bytes_leased);
    w.key("bytes_reserved").value(a.bytes_reserved);
    w.key("pages_touched").value(a.pages_touched);
    w.end_object();
  } else {
    w.key("arena").null();
  }

  if (run.sched.has_value()) {
    const SchedulerStats& s = *run.sched;
    w.key("scheduler").begin_object();
    w.key("mode").value(s.mode);
    w.key("workers").value(s.workers);
    w.key("lookahead").value(s.lookahead);
    w.key("tasks").value(s.tasks);
    w.key("steals").value(s.steals);
    w.key("parks").value(s.parks);
    w.key("idle_ns").value(s.idle_ns);
    w.key("busy_ns").value(s.busy_ns);
    w.key("commit_wait_ns").value(s.commit_wait_ns);
    w.key("span_ns").value(s.span_ns);
    w.key("idle_fraction").value(s.idle_fraction());
    w.end_object();
  } else {
    w.key("scheduler").null();
  }

  if (run.best_index.has_value()) {
    const auto& best = run.best();
    w.key("best").begin_object();
    w.key("configuration").begin_object();
    for (const auto& p : best.config.parameters()) {
      w.key(p.name).value(static_cast<long long>(p.value));
    }
    w.end_object();
    w.key("value").value(best.value());
    w.key("invocations").value(best.invocations.size());
    w.key("iterations").value(best.total_iterations);
    w.end_object();
  } else {
    w.key("best").null();
  }

  w.key("configurations").begin_array();
  for (const auto& r : run.results) {
    w.begin_object();
    w.key("configuration").begin_object();
    for (const auto& p : r.config.parameters()) {
      w.key(p.name).value(static_cast<long long>(p.value));
    }
    w.end_object();
    w.key("value").value(r.value());
    w.key("stddev_across_invocations").value(r.outer_moments.stddev());
    w.key("invocations").value(r.invocations.size());
    w.key("iterations").value(r.total_iterations);
    w.key("time_seconds").value(r.total_time.value);
    w.key("kernel_seconds").value(r.total_kernel_time.value);
    w.key("setup_seconds").value(r.total_setup_time.value);
    w.key("outer_stop").value(to_string(r.outer_stop));
    w.key("pruned").value(r.pruned());
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

void write_csv(std::ostream& out, const TuningRun& run) {
  util::CsvWriter csv(out);
  std::vector<std::string> header;
  if (!run.results.empty()) {
    for (const auto& p : run.results.front().config.parameters()) header.push_back(p.name);
  }
  header.insert(header.end(), {"value", "stddev", "invocations", "iterations",
                               "time_seconds", "kernel_seconds", "setup_seconds",
                               "outer_stop", "pruned"});
  csv.header(header);
  for (const auto& r : run.results) {
    for (const auto& p : r.config.parameters()) csv.cell(static_cast<long long>(p.value));
    csv.cell(r.value())
        .cell(r.outer_moments.stddev())
        .cell(r.invocations.size())
        .cell(r.total_iterations)
        .cell(r.total_time.value)
        .cell(r.total_kernel_time.value)
        .cell(r.total_setup_time.value)
        .cell(std::string(to_string(r.outer_stop)))
        .cell(std::string(r.pruned() ? "yes" : "no"));
    csv.end_row();
  }
}

std::string summary(const TuningRun& run, const std::string& metric_name) {
  if (!run.best_index.has_value()) return "no configurations evaluated";
  const auto& best = run.best();
  std::string text = util::format(
      "best %s = %.2f %s  (time %s, %llu configs, %llu pruned, %llu iterations)",
      best.config.to_string().c_str(), best.value(), metric_name.c_str(),
      util::format_seconds(run.total_time).c_str(),
      static_cast<unsigned long long>(run.results.size()),
      static_cast<unsigned long long>(run.pruned_configs),
      static_cast<unsigned long long>(run.total_iterations));
  if (run.total_setup_time.value > 0.0) {
    const double share =
        run.total_time.value > 0.0
            ? 100.0 * run.total_setup_time.value / run.total_time.value
            : 0.0;
    text += util::format("\nsetup %s (%.1f%% of total), kernel %s",
                         util::format_seconds(run.total_setup_time).c_str(), share,
                         util::format_seconds(run.total_kernel_time).c_str());
  }
  if (run.arena.has_value()) {
    const util::ArenaStats& a = *run.arena;
    text += util::format(
        "\narena: %llu leases, %llu slab hits, %llu misses, %llu allocations, "
        "%.1f MiB reserved",
        static_cast<unsigned long long>(a.leases),
        static_cast<unsigned long long>(a.slab_hits),
        static_cast<unsigned long long>(a.slab_misses),
        static_cast<unsigned long long>(a.allocations),
        static_cast<double>(a.bytes_reserved) / (1024.0 * 1024.0));
  }
  if (run.sched.has_value()) {
    const SchedulerStats& s = *run.sched;
    text += util::format(
        "\nscheduler: %s, %llu workers, lookahead %llu — %llu tasks, "
        "%llu steals, %llu parks, idle %.1f%%",
        s.mode.c_str(), static_cast<unsigned long long>(s.workers),
        static_cast<unsigned long long>(s.lookahead),
        static_cast<unsigned long long>(s.tasks),
        static_cast<unsigned long long>(s.steals),
        static_cast<unsigned long long>(s.parks),
        100.0 * s.idle_fraction());
  }
  return text;
}

}  // namespace rooftune::core
