#include "core/bottleneck.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace rooftune::core {

const char* to_string(BottleneckClass cls) {
  switch (cls) {
    case BottleneckClass::Unknown: return "unknown";
    case BottleneckClass::Compute: return "compute-bound";
    case BottleneckClass::Dram: return "dram-bound";
    case BottleneckClass::Latency: return "latency-bound";
  }
  return "?";
}

std::optional<BottleneckClass> bottleneck_class_from_string(
    const std::string& text) {
  for (const auto cls : {BottleneckClass::Unknown, BottleneckClass::Compute,
                         BottleneckClass::Dram, BottleneckClass::Latency}) {
    if (text == to_string(cls)) return cls;
  }
  return std::nullopt;
}

BottleneckClassifier::BottleneckClassifier(double peak_gflops, double dram_gbps)
    : peak_gflops_(peak_gflops), dram_gbps_(dram_gbps) {
  if (!(peak_gflops > 0.0) || !(dram_gbps > 0.0)) {
    throw std::invalid_argument(
        "BottleneckClassifier: roofline ceilings must be > 0");
  }
}

BottleneckVerdict BottleneckClassifier::classify(const CounterSample& sample,
                                                 double flops,
                                                 double kernel_s) const {
  BottleneckVerdict verdict;
  verdict.bound_gflops = std::numeric_limits<double>::infinity();
  // Degenerate signatures derive no bound: an invocation that retired no
  // instructions (or whose counters were never read) says nothing about
  // the configuration, so the verdict must never prune it.
  if (!sample.valid || sample.cycles == 0 || sample.instructions == 0 ||
      !(flops > 0.0)) {
    return verdict;
  }
  verdict.ipc = static_cast<double>(sample.instructions) /
                static_cast<double>(sample.cycles);

  // Multiplex widening: a scaled count is value × enabled/running — an
  // extrapolation, not a measurement.  The true miss count could be lower
  // by up to that ratio, which would *raise* the memory bound, so the
  // conservative envelope multiplies the memory roof by the same factor.
  double widen = 1.0;
  if (sample.scaled && sample.time_running_ns > 0 &&
      sample.time_enabled_ns > sample.time_running_ns) {
    widen = static_cast<double>(sample.time_enabled_ns) /
            static_cast<double>(sample.time_running_ns);
    verdict.widened = true;
  }

  if (sample.llc_misses == 0) {
    // Cache-resident: no DRAM traffic observed, the memory roof cannot
    // bind.  (Also the safe answer when the PMU lacks an LLC-miss event
    // and the sampler reports zero.)
    verdict.cls = BottleneckClass::Compute;
    verdict.bound_gflops = peak_gflops_;
    return verdict;
  }

  const double bytes = 64.0 * static_cast<double>(sample.llc_misses);
  const double oi = flops / bytes;
  verdict.oi = oi;
  const double memory_roof_gflops = dram_gbps_ * oi * widen;
  verdict.bound_gflops = std::min(peak_gflops_, memory_roof_gflops);
  verdict.cls = memory_roof_gflops < peak_gflops_ ? BottleneckClass::Dram
                                                  : BottleneckClass::Compute;

  // Latency overlay: when the kernel saturates neither roof — IPC far
  // below issue width *and* achieved DRAM bandwidth far below the memory
  // roof — the limiter is dependency/overhead latency.  Informational
  // only: the prune bound stays the roofline ceiling above, which remains
  // a true upper bound regardless of what stalls the kernel today.
  if (kernel_s > 0.0 && verdict.ipc < kLatencyIpc) {
    const double achieved_gbps = bytes / kernel_s / 1e9;
    if (achieved_gbps < kLatencyBwFraction * dram_gbps_) {
      verdict.cls = BottleneckClass::Latency;
    }
  }
  return verdict;
}

bool CounterPrunePolicy::should_prune(const BottleneckVerdict& verdict,
                                      double bound_metric,
                                      std::optional<double> incumbent,
                                      std::uint64_t invocations_done) const {
  if (!incumbent.has_value()) return false;
  if (invocations_done == 0 || invocations_done > window) return false;
  if (verdict.cls == BottleneckClass::Unknown) return false;
  if (!(bound_metric > 0.0) ||
      bound_metric == std::numeric_limits<double>::infinity()) {
    return false;
  }
  return bound_metric * (1.0 + margin) < *incumbent;
}

bool CounterPrunePolicy::should_skip(double bound_metric,
                                     std::optional<double> incumbent) const {
  if (!incumbent.has_value()) return false;
  if (!(bound_metric > 0.0) ||
      bound_metric == std::numeric_limits<double>::infinity()) {
    return false;
  }
  return bound_metric * (1.0 + margin) < *incumbent;
}

}  // namespace rooftune::core
