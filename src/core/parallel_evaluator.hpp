#pragma once
// Concurrent configuration evaluation.
//
// The paper evaluates the 96-config DGEMM space strictly sequentially; on
// backends whose instances are independent (Backend::reentrant()) nothing
// forces that.  ParallelEvaluator gives every worker its own backend
// instance from a user factory and fans the configuration list out over
// them, while the CI-upper-bound pruning ("I"/"O" conditions) keeps
// working: the incumbent optimum is shared through an atomic, so a worker
// starting configuration i sees the best value any worker has finished by
// then.
//
// Scheduling, two axes:
//
//  * Live vs deterministic (ParallelOptions::deterministic).  Live workers
//    pull from a shared queue and publish incumbents as they finish —
//    fastest incumbent propagation, but *which* incumbent a pruned
//    configuration saw depends on completion order, so pruned
//    configurations' statistics may vary run to run.  Deterministic mode
//    freezes the incumbent per epoch (wave of `wave` configs, or racing
//    block), making results bit-reproducible for any worker count.
//
//  * Wave vs pipeline (ParallelOptions::scheduler), deterministic paths
//    only.  Wave is the legacy barrier schedule: spawn `workers` threads,
//    run one epoch, join, reduce, repeat — one straggler idles the whole
//    pool at every barrier and thread churn taxes every racing round.
//    Pipeline (the default) runs the same logical schedule on a persistent
//    work-stealing pool (core::EvalPool): tasks carry their logical sort
//    key (epoch, ordinal), complete out of order, and a coordinator-side
//    commit stage retires them strictly in key order.  With lookahead L,
//    epoch e may execute as soon as epoch e-L has fully committed, against
//    the incumbent snapshot recorded at that commit — so configs of epoch
//    e see the incumbent as of epoch e-L, a pure function of the schedule.
//    L = 1 reproduces the wave schedule's results AND trace journals bit
//    for bit (same frozen incumbents, same events, same sort keys) while
//    already eliminating per-epoch thread spawn/join; L > 1 additionally
//    overlaps epochs — workers start epoch e+1 while epoch e stragglers
//    finish — at the cost of an incumbent that lags L-1 extra epochs
//    (slightly less prune bite, still bit-reproducible for any worker
//    count at fixed L).
//
// Configurations are pulled lazily through an index-addressed getter (a
// SpaceView over the bijection, or a caller-supplied vector), so evaluating
// an enlarged grid never materializes the configuration list.
//
// Backends with process-global state (the native backends own the OpenMP
// runtime and thread affinity) report reentrant() == false; the evaluator
// then degrades to one worker and stays exactly equivalent to the serial
// loop.

#include <atomic>
#include <cstddef>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "core/autotuner.hpp"
#include "core/backend.hpp"
#include "core/eval_pool.hpp"
#include "core/evaluator.hpp"
#include "core/racing.hpp"
#include "core/search_space.hpp"

namespace rooftune::core {

/// How deterministic epochs are executed (see file comment).
enum class SchedulerMode {
  Wave,      ///< legacy: spawn/join a thread team per epoch (barrier)
  Pipeline,  ///< persistent pool, out-of-order execution, in-order commit
};

struct ParallelOptions {
  /// Worker count; 0 = std::thread::hardware_concurrency().
  std::size_t workers = 0;
  /// Bit-reproducible epoch scheduling (see file comment).
  bool deterministic = false;
  /// Configurations per wave in deterministic mode.  Smaller waves track
  /// the serial incumbent more closely (better pruning) but synchronize
  /// more often.  Must not depend on the worker count, or determinism
  /// across worker counts is lost.
  std::size_t wave = 16;
  /// Epoch execution engine for the deterministic paths (exhaustive waves,
  /// racing rounds, surrogate phases).  Pipeline at lookahead 1 is
  /// result- and journal-identical to Wave; Wave is kept for A/B
  /// measurement (bench/ablation_pipeline) and as an escape hatch.
  SchedulerMode scheduler = SchedulerMode::Pipeline;
  /// Pipeline mode: epochs allowed in flight at once.  1 = wave-equivalent
  /// commits; N lets workers start epoch e+1 while epoch e stragglers
  /// finish, with the frozen incumbent lagging N-1 extra epochs.  Results
  /// remain bit-reproducible across worker counts and reruns at any fixed
  /// value; journals are a function of the lookahead itself.
  std::size_t lookahead = 1;
  /// Pin pool workers to CPUs once at pool construction (pipeline mode;
  /// soft no-op where unsupported).
  bool pin_workers = false;
  /// Collect SchedulerStats into TuningRun::sched.  The counters are
  /// wall-clock measurements — nondeterministic by nature — which is why
  /// they live outside the journal's bit-identity boundary (a separate,
  /// optional record; see trace/journal.cpp).
  bool sched_stats = false;
};

class ParallelEvaluator {
 public:
  /// Creates one backend per worker.  Must be callable from the spawning
  /// thread; the produced backends are used from exactly one worker each.
  using BackendFactory = std::function<std::unique_ptr<Backend>()>;

  /// Index-addressed configuration source for the evaluation loops.  Called
  /// concurrently from workers; must be a pure function of the index.
  using ConfigAt = std::function<Configuration(std::size_t)>;

  ParallelEvaluator(BackendFactory factory, TunerOptions options,
                    ParallelOptions parallel = {});

  /// Evaluate `configs` (in the given order for reduction purposes) and
  /// reduce to a TuningRun.  total_time aggregates backend-clock time
  /// across workers (the cost metric of the paper's "Time" columns); the
  /// wall-clock win shows up in the caller's own clock.  Not available for
  /// the surrogate strategy, which needs the space itself — use
  /// run(const SearchSpace&).
  [[nodiscard]] TuningRun run(const std::vector<Configuration>& configs) const;

  /// Walk `space` per the TunerOptions (lazily, through a SpaceView), then
  /// evaluate.  Dispatches to the racing or surrogate schedulers when the
  /// strategy asks for them.
  [[nodiscard]] TuningRun run(const SearchSpace& space) const;

 private:
  /// Coordinator-side pipeline accounting (commit latency, committed
  /// tasks); merged into SchedulerStats when ParallelOptions::sched_stats.
  struct CommitAccounting {
    std::uint64_t commit_wait_ns = 0;
    std::uint64_t tasks = 0;
  };

  /// Clamped ParallelOptions::lookahead (>= 1; 1 in wave mode).
  [[nodiscard]] std::size_t lookahead() const;

  /// Spawn the worker backend pool: probes reentrancy with the first
  /// backend and caps the pool at `max_workers` — callers pass the
  /// schedule's true concurrency ceiling (epoch size x lookahead), not
  /// just the config count, so small grids and racing blocks never
  /// oversubscribe backends that could not run concurrently anyway.
  [[nodiscard]] std::vector<std::unique_ptr<Backend>> make_backends(
      std::size_t max_workers) const;

  /// The persistent pool for the pipeline scheduler, or null when the
  /// schedule is serial (one backend) or in wave/live mode.  Null pool =
  /// the pipeline drivers run tasks inline on the coordinator, which is
  /// exactly the serial schedule.
  [[nodiscard]] std::unique_ptr<EvalPool> make_pool(
      const std::vector<std::unique_ptr<Backend>>& backends) const;

  /// Fill TuningRun::sched from pool counters + commit accounting.
  void attach_sched_stats(TuningRun& run, const EvalPool* pool,
                          std::size_t backend_count,
                          const CommitAccounting& accounting) const;

  /// Sum of per-worker arena counters (nullopt when no backend has one).
  [[nodiscard]] static std::optional<util::ArenaStats> aggregate_arena_stats(
      const std::vector<std::unique_ptr<Backend>>& backends);

  /// Exhaustive schedule over configurations [0, n) pulled from `config_at`.
  [[nodiscard]] TuningRun run_impl(const ConfigAt& config_at, std::size_t n) const;

  /// Deterministic wave loop: epoch = wave index, frozen incumbent per
  /// wave, ordered reduction emitting rank-7 incumbent updates.  Fills
  /// `results[0, n)`; `incumbent` carries state in and out.
  void evaluate_waves(std::vector<std::unique_ptr<Backend>>& backends,
                      const ConfigAt& config_at, std::size_t n,
                      std::atomic<double>& incumbent,
                      std::vector<std::optional<ConfigResult>>& results) const;

  /// The same logical schedule as evaluate_waves on the persistent pool:
  /// out-of-order execution, in-order commit, `lookahead` epochs in
  /// flight.  Epoch e's frozen incumbent is the snapshot recorded when
  /// epoch e-lookahead fully committed (the wave value at lookahead 1).
  void evaluate_pipeline(EvalPool* pool,
                         std::vector<std::unique_ptr<Backend>>& backends,
                         const ConfigAt& config_at, std::size_t n,
                         std::atomic<double>& incumbent,
                         std::vector<std::optional<ConfigResult>>& results,
                         CommitAccounting* accounting) const;

  /// Drive one race to completion over the pool (rounds = waves; see
  /// run_racing).  Shared by the racing strategy and the surrogate confirm
  /// phase, which passes a scheduler built from offset-traced options.
  void race_waves(std::vector<std::unique_ptr<Backend>>& backends,
                  const RacingScheduler& scheduler,
                  RacingScheduler::State& state) const;

  /// race_waves on the persistent pool: blocks within a round are the
  /// pipeline unit — block b dispatches (prologue: rank-0 incumbent event
  /// + counter skips, on the coordinator) exactly when block b-lookahead
  /// has committed, workers run detached invocations, and the coordinator
  /// merges each block's results in block order (in-order commit).  The
  /// round barrier itself remains: conclude_round needs the whole round.
  void race_pipeline(EvalPool* pool,
                     std::vector<std::unique_ptr<Backend>>& backends,
                     const RacingScheduler& scheduler,
                     RacingScheduler::State& state,
                     CommitAccounting* accounting) const;

  /// Racing strategy: each round is one deterministic wave over the pool
  /// (see core/racing.hpp).  Live and deterministic mode coincide here, and
  /// results are bit-identical for any worker count.
  [[nodiscard]] TuningRun run_racing(
      std::vector<std::unique_ptr<Backend>>& backends, EvalPool* pool,
      const std::vector<Configuration>& configs,
      CommitAccounting* accounting) const;

  /// Surrogate strategy: seed batch in deterministic waves, fit/prune on
  /// the coordinating thread, confirm race via race_waves/race_pipeline.
  /// Always bit-reproducible across worker counts, like racing.  One pool
  /// serves both phases — seed and confirm tasks flow through the same
  /// threads with no teardown between phases.
  [[nodiscard]] TuningRun run_surrogate(const SearchSpace& space) const;

  BackendFactory factory_;
  TunerOptions options_;
  ParallelOptions parallel_;
};

}  // namespace rooftune::core
