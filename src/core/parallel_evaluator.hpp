#pragma once
// Concurrent configuration evaluation.
//
// The paper evaluates the 96-config DGEMM space strictly sequentially; on
// backends whose instances are independent (Backend::reentrant()) nothing
// forces that.  ParallelEvaluator gives every worker its own backend
// instance from a user factory and fans the configuration list out over
// them, while the CI-upper-bound pruning ("I"/"O" conditions) keeps
// working: the incumbent optimum is shared through an atomic, so a worker
// starting configuration i sees the best value any worker has finished by
// then.
//
// Two modes:
//  * Live (default): workers pull configurations from a shared queue and
//    publish incumbents as they finish.  Fastest wall-clock, but *which*
//    incumbent a pruned configuration saw depends on completion order, so
//    pruned configurations' statistics may vary run to run.
//  * Deterministic: configurations are processed in fixed waves; every
//    configuration in a wave sees the same incumbent — the ordered
//    reduction over all prior waves.  Results are bit-reproducible for any
//    worker count, which is what the paper-reproduction tests need.  The
//    incumbent lags by at most one wave relative to the serial evaluator,
//    so pruning keeps nearly all of its bite.
//
// Configurations are pulled lazily through an index-addressed getter (a
// SpaceView over the bijection, or a caller-supplied vector), so evaluating
// an enlarged grid never materializes the configuration list.
//
// Backends with process-global state (the native backends own the OpenMP
// runtime and thread affinity) report reentrant() == false; the evaluator
// then degrades to one worker and stays exactly equivalent to the serial
// loop.

#include <atomic>
#include <cstddef>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "core/autotuner.hpp"
#include "core/backend.hpp"
#include "core/evaluator.hpp"
#include "core/racing.hpp"
#include "core/search_space.hpp"

namespace rooftune::core {

struct ParallelOptions {
  /// Worker count; 0 = std::thread::hardware_concurrency().
  std::size_t workers = 0;
  /// Bit-reproducible wave mode (see file comment).
  bool deterministic = false;
  /// Configurations per wave in deterministic mode.  Smaller waves track
  /// the serial incumbent more closely (better pruning) but synchronize
  /// more often.  Must not depend on the worker count, or determinism
  /// across worker counts is lost.
  std::size_t wave = 16;
};

class ParallelEvaluator {
 public:
  /// Creates one backend per worker.  Must be callable from the spawning
  /// thread; the produced backends are used from exactly one worker each.
  using BackendFactory = std::function<std::unique_ptr<Backend>()>;

  /// Index-addressed configuration source for the evaluation loops.  Called
  /// concurrently from workers; must be a pure function of the index.
  using ConfigAt = std::function<Configuration(std::size_t)>;

  ParallelEvaluator(BackendFactory factory, TunerOptions options,
                    ParallelOptions parallel = {});

  /// Evaluate `configs` (in the given order for reduction purposes) and
  /// reduce to a TuningRun.  total_time aggregates backend-clock time
  /// across workers (the cost metric of the paper's "Time" columns); the
  /// wall-clock win shows up in the caller's own clock.  Not available for
  /// the surrogate strategy, which needs the space itself — use
  /// run(const SearchSpace&).
  [[nodiscard]] TuningRun run(const std::vector<Configuration>& configs) const;

  /// Walk `space` per the TunerOptions (lazily, through a SpaceView), then
  /// evaluate.  Dispatches to the racing or surrogate schedulers when the
  /// strategy asks for them.
  [[nodiscard]] TuningRun run(const SearchSpace& space) const;

 private:
  /// Spawn the worker backend pool: probes reentrancy with the first
  /// backend and caps the pool at `max_workers`.
  [[nodiscard]] std::vector<std::unique_ptr<Backend>> make_backends(
      std::size_t max_workers) const;

  /// Sum of per-worker arena counters (nullopt when no backend has one).
  [[nodiscard]] static std::optional<util::ArenaStats> aggregate_arena_stats(
      const std::vector<std::unique_ptr<Backend>>& backends);

  /// Exhaustive schedule over configurations [0, n) pulled from `config_at`.
  [[nodiscard]] TuningRun run_impl(const ConfigAt& config_at, std::size_t n) const;

  /// Deterministic wave loop: epoch = wave index, frozen incumbent per
  /// wave, ordered reduction emitting rank-7 incumbent updates.  Fills
  /// `results[0, n)`; `incumbent` carries state in and out.
  void evaluate_waves(std::vector<std::unique_ptr<Backend>>& backends,
                      const ConfigAt& config_at, std::size_t n,
                      std::atomic<double>& incumbent,
                      std::vector<std::optional<ConfigResult>>& results) const;

  /// Drive one race to completion over the pool (rounds = waves; see
  /// run_racing).  Shared by the racing strategy and the surrogate confirm
  /// phase, which passes a scheduler built from offset-traced options.
  void race_waves(std::vector<std::unique_ptr<Backend>>& backends,
                  const RacingScheduler& scheduler,
                  RacingScheduler::State& state) const;

  /// Racing strategy: each round is one deterministic wave over the pool
  /// (see core/racing.hpp).  Live and deterministic mode coincide here, and
  /// results are bit-identical for any worker count.
  [[nodiscard]] TuningRun run_racing(
      std::vector<std::unique_ptr<Backend>>& backends,
      const std::vector<Configuration>& configs) const;

  /// Surrogate strategy: seed batch in deterministic waves, fit/prune on
  /// the coordinating thread, confirm race via race_waves.  Always
  /// bit-reproducible across worker counts, like racing.
  [[nodiscard]] TuningRun run_surrogate(const SearchSpace& space) const;

  BackendFactory factory_;
  TunerOptions options_;
  ParallelOptions parallel_;
};

}  // namespace rooftune::core
