#pragma once
// Extended stop conditions beyond the paper's four — the §VII future-work
// directions and the steady-state criteria of the works the paper cites
// (Georges et al., Kalibera & Jones).  None of these participate in the
// paper's technique presets; they are injected through
// TunerOptions::extra_inner_stops / extra_outer_stops and exercised by the
// ablation benches.

#include <memory>

#include "core/stop_condition.hpp"
#include "stats/autocorrelation.hpp"
#include "stats/p2_quantile.hpp"

namespace rooftune::core {

/// §VII: a true online median-based convergence test.  Two P² estimators
/// track the 45th and 55th percentiles; when that central band has
/// tightened to within ±tolerance of the running median, the distribution's
/// centre is considered settled.  O(1) memory, O(1) per sample — the
/// machinery the paper said it could not find.
class OnlineMedianStop final : public StopCondition {
 public:
  OnlineMedianStop(double tolerance, std::uint64_t min_samples = 20);

  [[nodiscard]] StopReason check(const EvalState& state) const override;
  [[nodiscard]] std::string name() const override;
  void observe(double sample) const override;
  void reset() const override;

  [[nodiscard]] double median() const { return median_.value(); }

 private:
  double tolerance_;
  std::uint64_t min_samples_;
  // P² marker state mutates per observed sample; conditions are shared as
  // const through StopSet (see StopCondition::observe).
  mutable stats::P2Quantile lo_;
  mutable stats::P2Quantile median_;
  mutable stats::P2Quantile hi_;
};

/// Georges et al.'s steady-state criterion: stop once the coefficient of
/// variation over the most recent `window` samples falls below the
/// threshold (they suggest CoV <= 0.01-0.02 for steady state).
class SteadyStateStop final : public StopCondition {
 public:
  SteadyStateStop(double cov_threshold, std::size_t window = 30);

  [[nodiscard]] StopReason check(const EvalState& state) const override;
  [[nodiscard]] std::string name() const override;
  void observe(double sample) const override;
  void reset() const override;

 private:
  double cov_threshold_;
  std::size_t window_;
  mutable std::vector<double> recent_;
};

/// Kalibera & Jones's "independent state": stop once the lag-1
/// autocorrelation over the window is inside the white-noise band — the
/// samples have stopped drifting and look exchangeable.
class IndependenceStop final : public StopCondition {
 public:
  explicit IndependenceStop(std::size_t window = 32, double threshold = 0.0);

  [[nodiscard]] StopReason check(const EvalState& state) const override;
  [[nodiscard]] std::string name() const override;
  void observe(double sample) const override;
  void reset() const override;

 private:
  mutable stats::Autocorrelation autocorr_;
  double threshold_;
};

}  // namespace rooftune::core
