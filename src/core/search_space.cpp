#include "core/search_space.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>
#include <utility>

#include "util/json.hpp"
#include "util/json_parse.hpp"
#include "util/rng.hpp"

namespace rooftune::core {
namespace {

// Distinct stream tags so the sampler, the Latin-hypercube permutations and
// the dense-fallback shuffle never share a SplitMix64 stream.
constexpr std::uint64_t kSampleStream = 0x5A3D1E5ull;
constexpr std::uint64_t kLhsStream = 0x1A71C4BEull;
constexpr std::uint64_t kFallbackStream = 0xFA11BACCull;

}  // namespace

ParameterRange::ParameterRange(std::string name, std::vector<std::int64_t> values)
    : name_(std::move(name)), values_(std::move(values)) {
  if (values_.empty()) {
    throw std::invalid_argument("ParameterRange '" + name_ + "': empty value list");
  }
}

ParameterRange ParameterRange::powers_of_two(std::string name, std::int64_t lo,
                                             std::int64_t hi) {
  if (lo <= 0 || hi < lo) {
    throw std::invalid_argument("powers_of_two: need 0 < lo <= hi");
  }
  if ((lo & (lo - 1)) != 0 || (hi & (hi - 1)) != 0) {
    throw std::invalid_argument("powers_of_two: bounds must be powers of two");
  }
  std::vector<std::int64_t> values;
  for (std::int64_t v = lo; v <= hi; v *= 2) values.push_back(v);
  return ParameterRange(std::move(name), std::move(values));
}

ParameterRange ParameterRange::doubling(std::string name, std::int64_t base,
                                        std::size_t count) {
  if (base <= 0 || count == 0) {
    throw std::invalid_argument("doubling: need base > 0 and count > 0");
  }
  std::vector<std::int64_t> values;
  std::int64_t v = base;
  for (std::size_t i = 0; i < count; ++i, v *= 2) values.push_back(v);
  return ParameterRange(std::move(name), std::move(values));
}

const char* to_string(ConstraintSpec::Op op) {
  switch (op) {
    case ConstraintSpec::Op::Eq: return "==";
    case ConstraintSpec::Op::Ne: return "!=";
    case ConstraintSpec::Op::Lt: return "<";
    case ConstraintSpec::Op::Le: return "<=";
    case ConstraintSpec::Op::Gt: return ">";
    case ConstraintSpec::Op::Ge: return ">=";
  }
  return "?";
}

std::string ConstraintSpec::name() const {
  return lhs + to_string(op) +
         (rhs_param.empty() ? std::to_string(rhs_value) : rhs_param);
}

bool ConstraintSpec::holds(const Configuration& config) const {
  const std::int64_t a = config.at(lhs);
  const std::int64_t b = rhs_param.empty() ? rhs_value : config.at(rhs_param);
  switch (op) {
    case Op::Eq: return a == b;
    case Op::Ne: return a != b;
    case Op::Lt: return a < b;
    case Op::Le: return a <= b;
    case Op::Gt: return a > b;
    case Op::Ge: return a >= b;
  }
  return false;
}

std::uint64_t SearchSpace::cartesian_cardinality() const {
  std::uint64_t n = 1;
  for (const auto& r : ranges_) n *= r.size();
  return n;
}

std::uint64_t SearchSpace::cardinality() const {
  if (ranges_.empty()) return 0;
  if (!has_constraints()) return cartesian_cardinality();
  std::uint64_t n = 0;
  const std::uint64_t total = cartesian_cardinality();
  for (std::uint64_t i = 0; i < total; ++i) {
    if (admits(config_at(i))) ++n;
  }
  return n;
}

bool SearchSpace::admits(const Configuration& config) const {
  return std::all_of(constraints_.begin(), constraints_.end(),
                     [&](const Constraint& c) { return c.predicate(config); }) &&
         std::all_of(specs_.begin(), specs_.end(),
                     [&](const ConstraintSpec& s) { return s.holds(config); });
}

void SearchSpace::require_admissible(const Configuration& config) const {
  for (const auto& c : constraints_) {
    if (!c.predicate(config)) {
      throw std::invalid_argument("constraint '" + c.name + "' rejects " +
                                  config.to_string());
    }
  }
  for (const auto& s : specs_) {
    if (!s.holds(config)) {
      throw std::invalid_argument("constraint '" + s.name() + "' rejects " +
                                  config.to_string());
    }
  }
}

Configuration SearchSpace::config_at(std::uint64_t cartesian_index) const {
  if (ranges_.empty() || cartesian_index >= cartesian_cardinality()) {
    throw std::out_of_range("SearchSpace::config_at: index " +
                            std::to_string(cartesian_index) + " out of range");
  }
  // Mixed-radix decode, last range fastest (= least significant digit), so
  // index i yields exactly the i-th configuration of the enumerate() odometer.
  std::vector<Parameter> params(ranges_.size());
  std::uint64_t rest = cartesian_index;
  for (std::size_t d = ranges_.size(); d > 0; --d) {
    const auto& range = ranges_[d - 1];
    const std::uint64_t digit = rest % range.size();
    rest /= range.size();
    params[d - 1] = {range.name(), range.values()[digit]};
  }
  return Configuration(std::move(params));
}

std::uint64_t SearchSpace::index_of(const Configuration& config) const {
  std::uint64_t index = 0;
  for (const auto& range : ranges_) {
    if (!config.has(range.name())) {
      throw std::invalid_argument("SearchSpace::index_of: parameter '" +
                                  range.name() + "' missing from " +
                                  config.to_string());
    }
    const std::int64_t value = config.at(range.name());
    const auto& values = range.values();
    const auto it = std::find(values.begin(), values.end(), value);
    if (it == values.end()) {
      throw std::invalid_argument(
          "SearchSpace::index_of: value " + std::to_string(value) +
          " not in range '" + range.name() + "' for " + config.to_string());
    }
    index = index * values.size() + static_cast<std::uint64_t>(it - values.begin());
  }
  return index;
}

std::vector<Configuration> SearchSpace::enumerate() const {
  std::vector<Configuration> out;
  if (ranges_.empty()) return out;
  out.reserve(cartesian_cardinality());

  std::vector<std::size_t> idx(ranges_.size(), 0);
  for (;;) {
    std::vector<Parameter> params;
    params.reserve(ranges_.size());
    for (std::size_t d = 0; d < ranges_.size(); ++d) {
      params.push_back({ranges_[d].name(), ranges_[d].values()[idx[d]]});
    }
    Configuration config(std::move(params));
    if (admits(config)) out.push_back(std::move(config));

    // Odometer increment, last range fastest.
    std::size_t d = ranges_.size();
    while (d > 0) {
      --d;
      if (++idx[d] < ranges_[d].size()) break;
      idx[d] = 0;
      if (d == 0) return out;
    }
  }
}

std::vector<std::uint64_t> SearchSpace::admissible_indices() const {
  std::vector<std::uint64_t> out;
  if (ranges_.empty()) return out;
  const std::uint64_t total = cartesian_cardinality();
  const bool constrained = has_constraints();
  out.reserve(constrained ? 0 : total);
  for (std::uint64_t i = 0; i < total; ++i) {
    if (!constrained || admits(config_at(i))) out.push_back(i);
  }
  return out;
}

std::vector<std::uint64_t> SearchSpace::sample_indices(std::size_t count,
                                                       std::uint64_t seed) const {
  std::vector<std::uint64_t> out;
  if (ranges_.empty() || count == 0) return out;
  const std::uint64_t total = cartesian_cardinality();
  const bool constrained = has_constraints();
  std::unordered_set<std::uint64_t> seen;

  // Counter-seeded rejection: candidate j is hash(seed, j) mod |S|, a pure
  // function of (seed, j).  The modulo bias is negligible for sampling and
  // costs nothing in determinism.  The attempt cap bounds the worst case
  // (tight budgets on heavily constrained spaces) before the dense fallback.
  const std::uint64_t cap = 64 * total + 1024;
  for (std::uint64_t j = 0; j < cap && out.size() < count; ++j) {
    const std::uint64_t idx = util::hash_seed(seed, kSampleStream, j) % total;
    if (!seen.insert(idx).second) continue;
    if (constrained && !admits(config_at(idx))) continue;
    out.push_back(idx);
  }
  if (out.size() < count) {
    // Dense fallback: shuffle the admissible indices we have not yet drawn.
    auto rest = admissible_indices();
    std::erase_if(rest, [&](std::uint64_t i) { return seen.contains(i); });
    util::Xoshiro256 rng(util::hash_seed(seed, kFallbackStream));
    for (std::size_t i = rest.size(); i > 1; --i) {
      std::swap(rest[i - 1], rest[rng.below(i)]);
    }
    for (const std::uint64_t idx : rest) {
      if (out.size() == count) break;
      out.push_back(idx);
    }
  }
  return out;
}

std::vector<std::uint64_t> SearchSpace::latin_hypercube_indices(
    std::size_t count, std::uint64_t seed) const {
  std::vector<std::uint64_t> out;
  if (ranges_.empty() || count == 0) return out;

  // One seeded permutation of [0, count) per dimension; sample i takes
  // stratum perm_d[i] on axis d, mapped to the stratum-center value index.
  std::vector<std::vector<std::size_t>> perms(ranges_.size());
  for (std::size_t d = 0; d < ranges_.size(); ++d) {
    auto& perm = perms[d];
    perm.resize(count);
    for (std::size_t i = 0; i < count; ++i) perm[i] = i;
    util::Xoshiro256 rng(util::hash_seed(seed, kLhsStream, d));
    for (std::size_t i = count; i > 1; --i) {
      std::swap(perm[i - 1], perm[rng.below(i)]);
    }
  }

  const bool constrained = has_constraints();
  std::unordered_set<std::uint64_t> seen;
  for (std::size_t i = 0; i < count; ++i) {
    std::uint64_t idx = 0;
    for (std::size_t d = 0; d < ranges_.size(); ++d) {
      const std::size_t size = ranges_[d].size();
      // Center of stratum perm[i]: floor((p + 0.5) * size / count), in
      // integer arithmetic so the mapping is exact on every platform.
      std::size_t vi = ((2 * perms[d][i] + 1) * size) / (2 * count);
      if (vi >= size) vi = size - 1;
      idx = idx * size + vi;
    }
    if (!seen.insert(idx).second) continue;
    if (constrained && !admits(config_at(idx))) continue;
    out.push_back(idx);
  }

  if (out.size() < count) {
    // Strata lost to collisions (axes shorter than count) or constraints:
    // top up from the counter-seeded sample stream, skipping what we hold.
    for (const std::uint64_t idx : sample_indices(count, seed)) {
      if (out.size() == count) break;
      if (seen.insert(idx).second) out.push_back(idx);
    }
  }
  return out;
}

std::string SearchSpace::to_json() const {
  if (!constraints_.empty()) {
    throw std::invalid_argument(
        "SearchSpace::to_json: opaque predicate constraint '" +
        constraints_.front().name +
        "' is not serializable (declare it as a ConstraintSpec)");
  }
  util::JsonWriter w;
  w.begin_object();
  w.key("params").begin_array();
  for (const auto& r : ranges_) {
    w.begin_object();
    w.key("name").value(r.name());
    w.key("values").begin_array();
    for (const std::int64_t v : r.values()) w.value(static_cast<long long>(v));
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.key("constraints").begin_array();
  for (const auto& s : specs_) {
    w.begin_object();
    w.key("lhs").value(s.lhs);
    w.key("op").value(to_string(s.op));
    if (s.rhs_param.empty()) {
      w.key("rhs").value(static_cast<long long>(s.rhs_value));
    } else {
      w.key("rhs").value(s.rhs_param);
    }
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

namespace {

ConstraintSpec::Op op_from(const std::string& text) {
  if (text == "==") return ConstraintSpec::Op::Eq;
  if (text == "!=") return ConstraintSpec::Op::Ne;
  if (text == "<") return ConstraintSpec::Op::Lt;
  if (text == "<=") return ConstraintSpec::Op::Le;
  if (text == ">") return ConstraintSpec::Op::Gt;
  if (text == ">=") return ConstraintSpec::Op::Ge;
  throw std::invalid_argument("SearchSpace::from_json: unknown operator '" + text + "'");
}

}  // namespace

SearchSpace SearchSpace::from_json(const util::JsonValue& value) {
  SearchSpace space;
  const auto& params = value.at("params");
  for (std::size_t i = 0; i < params.size(); ++i) {
    const auto& p = params.at(i);
    std::vector<std::int64_t> values;
    const auto& list = p.at("values");
    values.reserve(list.size());
    for (std::size_t j = 0; j < list.size(); ++j) {
      values.push_back(list.at(j).as_int());
    }
    space.add_range(ParameterRange(p.at("name").as_string(), std::move(values)));
  }
  if (value.has("constraints")) {
    const auto& constraints = value.at("constraints");
    for (std::size_t i = 0; i < constraints.size(); ++i) {
      const auto& c = constraints.at(i);
      ConstraintSpec spec;
      spec.lhs = c.at("lhs").as_string();
      spec.op = op_from(c.at("op").as_string());
      const auto& rhs = c.at("rhs");
      if (rhs.type() == util::JsonValue::Type::String) {
        spec.rhs_param = rhs.as_string();
      } else {
        spec.rhs_value = rhs.as_int();
      }
      space.add_constraint(std::move(spec));
    }
  }
  return space;
}

SearchSpace SearchSpace::from_json(const std::string& json) {
  return from_json(util::parse_json(json));
}

const char* to_string(SearchOrder order) {
  switch (order) {
    case SearchOrder::Forward: return "forward";
    case SearchOrder::Reverse: return "reverse";
    case SearchOrder::Random: return "random";
  }
  return "?";
}

std::vector<Configuration> ordered(std::vector<Configuration> configs, SearchOrder order,
                                   std::uint64_t seed) {
  switch (order) {
    case SearchOrder::Forward:
      break;
    case SearchOrder::Reverse:
      std::reverse(configs.begin(), configs.end());
      break;
    case SearchOrder::Random: {
      util::Xoshiro256 rng(seed);
      // Fisher–Yates with our deterministic generator (std::shuffle's result
      // is implementation-defined across standard libraries).
      for (std::size_t i = configs.size(); i > 1; --i) {
        std::swap(configs[i - 1], configs[rng.below(i)]);
      }
      break;
    }
  }
  return configs;
}

SpaceView::SpaceView(const SearchSpace& space, SearchOrder order, std::uint64_t seed)
    : space_(&space) {
  if (!space.has_constraints() && order != SearchOrder::Random) {
    // Pure bijection walk: rank -> index needs no storage at all.
    lazy_ = true;
    reverse_ = (order == SearchOrder::Reverse);
    cartesian_ = space.ranges().empty() ? 0 : space.cartesian_cardinality();
    return;
  }
  indices_ = space.admissible_indices();
  if (order == SearchOrder::Reverse) {
    std::reverse(indices_.begin(), indices_.end());
  } else if (order == SearchOrder::Random) {
    // The same Fisher–Yates sequence ordered() applies to configurations:
    // the swap schedule depends only on (seed, size), so a view and the
    // materialized path visit identical configuration sequences.
    util::Xoshiro256 rng(seed);
    for (std::size_t i = indices_.size(); i > 1; --i) {
      std::swap(indices_[i - 1], indices_[rng.below(i)]);
    }
  }
}

SpaceView::SpaceView(const SearchSpace& space, std::vector<std::uint64_t> indices)
    : space_(&space), indices_(std::move(indices)) {}

std::size_t SpaceView::size() const {
  return lazy_ ? static_cast<std::size_t>(cartesian_) : indices_.size();
}

std::uint64_t SpaceView::index_at(std::size_t rank) const {
  if (rank >= size()) {
    throw std::out_of_range("SpaceView::index_at: rank " + std::to_string(rank) +
                            " out of range");
  }
  if (lazy_) {
    return reverse_ ? cartesian_ - 1 - rank : static_cast<std::uint64_t>(rank);
  }
  return indices_[rank];
}

Configuration SpaceView::at(std::size_t rank) const {
  return space_->config_at(index_at(rank));
}

}  // namespace rooftune::core
