#include "core/search_space.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/rng.hpp"

namespace rooftune::core {

ParameterRange::ParameterRange(std::string name, std::vector<std::int64_t> values)
    : name_(std::move(name)), values_(std::move(values)) {
  if (values_.empty()) {
    throw std::invalid_argument("ParameterRange '" + name_ + "': empty value list");
  }
}

ParameterRange ParameterRange::powers_of_two(std::string name, std::int64_t lo,
                                             std::int64_t hi) {
  if (lo <= 0 || hi < lo) {
    throw std::invalid_argument("powers_of_two: need 0 < lo <= hi");
  }
  if ((lo & (lo - 1)) != 0 || (hi & (hi - 1)) != 0) {
    throw std::invalid_argument("powers_of_two: bounds must be powers of two");
  }
  std::vector<std::int64_t> values;
  for (std::int64_t v = lo; v <= hi; v *= 2) values.push_back(v);
  return ParameterRange(std::move(name), std::move(values));
}

ParameterRange ParameterRange::doubling(std::string name, std::int64_t base,
                                        std::size_t count) {
  if (base <= 0 || count == 0) {
    throw std::invalid_argument("doubling: need base > 0 and count > 0");
  }
  std::vector<std::int64_t> values;
  std::int64_t v = base;
  for (std::size_t i = 0; i < count; ++i, v *= 2) values.push_back(v);
  return ParameterRange(std::move(name), std::move(values));
}

std::uint64_t SearchSpace::cartesian_cardinality() const {
  std::uint64_t n = 1;
  for (const auto& r : ranges_) n *= r.size();
  return n;
}

std::uint64_t SearchSpace::cardinality() const {
  if (constraints_.empty()) return cartesian_cardinality();
  return enumerate().size();
}

bool SearchSpace::admits(const Configuration& config) const {
  return std::all_of(constraints_.begin(), constraints_.end(),
                     [&](const Constraint& c) { return c.predicate(config); });
}

std::vector<Configuration> SearchSpace::enumerate() const {
  std::vector<Configuration> out;
  if (ranges_.empty()) return out;
  out.reserve(cartesian_cardinality());

  std::vector<std::size_t> idx(ranges_.size(), 0);
  for (;;) {
    std::vector<Parameter> params;
    params.reserve(ranges_.size());
    for (std::size_t d = 0; d < ranges_.size(); ++d) {
      params.push_back({ranges_[d].name(), ranges_[d].values()[idx[d]]});
    }
    Configuration config(std::move(params));
    if (admits(config)) out.push_back(std::move(config));

    // Odometer increment, last range fastest.
    std::size_t d = ranges_.size();
    while (d > 0) {
      --d;
      if (++idx[d] < ranges_[d].size()) break;
      idx[d] = 0;
      if (d == 0) return out;
    }
  }
}

const char* to_string(SearchOrder order) {
  switch (order) {
    case SearchOrder::Forward: return "forward";
    case SearchOrder::Reverse: return "reverse";
    case SearchOrder::Random: return "random";
  }
  return "?";
}

std::vector<Configuration> ordered(std::vector<Configuration> configs, SearchOrder order,
                                   std::uint64_t seed) {
  switch (order) {
    case SearchOrder::Forward:
      break;
    case SearchOrder::Reverse:
      std::reverse(configs.begin(), configs.end());
      break;
    case SearchOrder::Random: {
      util::Xoshiro256 rng(seed);
      // Fisher–Yates with our deterministic generator (std::shuffle's result
      // is implementation-defined across standard libraries).
      for (std::size_t i = configs.size(); i > 1; --i) {
        std::swap(configs[i - 1], configs[rng.below(i)]);
      }
      break;
    }
  }
  return configs;
}

}  // namespace rooftune::core
