#pragma once
// PipeBackend: autotune *any* external benchmark program.
//
// The paper's architecture launches the benchmark as a separate program per
// invocation (the outer loop of Fig. 2).  PipeBackend is the generic form:
// a user-supplied command template is expanded with the configuration's
// parameters and run through the shell once per invocation; each line of
// its standard output is one iteration sample.  This is how the paper's
// "general autotuning benchmarking techniques... applied to any autotuning
// application" (§VII) is exposed to programs not linked against rooftune.
//
// Protocol: the child prints one line per iteration —
//     <value> [<kernel_seconds>]
// value is the higher-is-better metric; kernel_seconds defaults to the
// wall time between lines when omitted.  The child decides how many
// iterations it runs; stop conditions that fire mid-stream simply stop
// consuming (the evaluator's caps still apply across lines).

#include <cstdio>
#include <string>

#include "core/backend.hpp"
#include "util/clock.hpp"

namespace rooftune::core {

class PipeBackend final : public Backend {
 public:
  struct Options {
    /// Command template; "{name}" placeholders are replaced with parameter
    /// values, "{invocation}" with the invocation index.  Example:
    ///   "./my_bench --n {n} --m {m} --k {k} --iters 200"
    std::string command_template;
    std::string metric_name = "units/s";
  };

  explicit PipeBackend(Options options);
  ~PipeBackend() override;

  PipeBackend(const PipeBackend&) = delete;
  PipeBackend& operator=(const PipeBackend&) = delete;

  void begin_invocation(const Configuration& config,
                        std::uint64_t invocation_index) override;
  Sample run_iteration() override;
  void end_invocation() override;
  [[nodiscard]] const util::Clock& clock() const override { return clock_; }
  /// Each instance runs its own child process, so a worker pool of pipe
  /// backends is a bounded process pool.
  [[nodiscard]] bool reentrant() const override { return true; }
  [[nodiscard]] std::string metric_name() const override {
    return options_.metric_name;
  }

  /// The command the current/last invocation ran (for logs and tests).
  [[nodiscard]] const std::string& last_command() const { return last_command_; }

  /// Expand "{param}" placeholders; exposed for tests.
  static std::string expand(const std::string& command_template,
                            const Configuration& config,
                            std::uint64_t invocation_index);

 private:
  Options options_;
  util::WallClock clock_;
  std::FILE* pipe_ = nullptr;
  std::string last_command_;
  util::Seconds last_line_time_{0.0};
};

}  // namespace rooftune::core
