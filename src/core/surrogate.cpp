#include "core/surrogate.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <unordered_set>
#include <utility>

#include "util/log.hpp"
#include "util/profiler.hpp"

namespace rooftune::core {
namespace {

/// Per-dimension normalized value ranks of a cartesian index (mixed-radix
/// decode matching SearchSpace::config_at, without building a Configuration).
std::vector<double> normalized_ranks(const SearchSpace& space,
                                     std::uint64_t cartesian_index) {
  const auto& ranges = space.ranges();
  std::vector<double> x(ranges.size(), 0.0);
  std::uint64_t rest = cartesian_index;
  for (std::size_t d = ranges.size(); d > 0; --d) {
    const std::size_t size = ranges[d - 1].size();
    const std::uint64_t digit = rest % size;
    rest /= size;
    x[d - 1] = size > 1 ? static_cast<double>(digit) / static_cast<double>(size - 1)
                        : 0.0;
  }
  return x;
}

/// Gaussian elimination with partial pivoting; returns false on a
/// (numerically) singular system.  Deterministic: pivot choice is the first
/// maximal absolute value.
bool solve_linear(std::vector<std::vector<double>> a, std::vector<double> b,
                  std::vector<double>& out) {
  const std::size_t n = b.size();
  for (std::size_t col = 0; col < n; ++col) {
    std::size_t pivot = col;
    for (std::size_t row = col + 1; row < n; ++row) {
      if (std::abs(a[row][col]) > std::abs(a[pivot][col])) pivot = row;
    }
    if (std::abs(a[pivot][col]) < 1e-12) return false;
    std::swap(a[col], a[pivot]);
    std::swap(b[col], b[pivot]);
    for (std::size_t row = col + 1; row < n; ++row) {
      const double f = a[row][col] / a[col][col];
      if (f == 0.0) continue;
      for (std::size_t k = col; k < n; ++k) a[row][k] -= f * a[col][k];
      b[row] -= f * b[col];
    }
  }
  out.assign(n, 0.0);
  for (std::size_t row = n; row > 0; --row) {
    const std::size_t r = row - 1;
    double sum = b[r];
    for (std::size_t k = r + 1; k < n; ++k) sum -= a[r][k] * out[k];
    out[r] = sum / a[r][r];
  }
  return true;
}

}  // namespace

std::size_t SurrogateModel::feature_count(std::size_t dims) {
  // [1, x_d, x_d², x_i·x_j for i<j]
  return 1 + 2 * dims + dims * (dims - 1) / 2;
}

std::vector<double> SurrogateModel::features(const SearchSpace& space,
                                             std::uint64_t cartesian_index) {
  const auto x = normalized_ranks(space, cartesian_index);
  std::vector<double> f;
  f.reserve(feature_count(x.size()));
  f.push_back(1.0);
  for (const double v : x) f.push_back(v);
  for (const double v : x) f.push_back(v * v);
  for (std::size_t i = 0; i < x.size(); ++i) {
    for (std::size_t j = i + 1; j < x.size(); ++j) f.push_back(x[i] * x[j]);
  }
  return f;
}

SurrogateModel SurrogateModel::fit(const SearchSpace& space,
                                   const std::vector<std::uint64_t>& indices,
                                   const std::vector<double>& values,
                                   double lambda) {
  if (indices.size() != values.size()) {
    throw std::invalid_argument("SurrogateModel::fit: indices/values size mismatch");
  }
  SurrogateModel model;
  const std::size_t p = feature_count(space.ranges().size());
  model.coef_.assign(p, 0.0);
  if (indices.empty()) return model;

  // The simulated response surfaces are Gaussian in log coordinates, so a
  // quadratic in log space is the natural basis; fall back to linear scale
  // when any target is non-positive.
  model.log_scale_ =
      std::all_of(values.begin(), values.end(), [](double v) { return v > 0.0; });
  std::vector<double> y(values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    y[i] = model.log_scale_ ? std::log(values[i]) : values[i];
  }

  std::vector<std::vector<double>> f(indices.size());
  for (std::size_t i = 0; i < indices.size(); ++i) {
    f[i] = features(space, indices[i]);
  }

  // Normal equations FᵀF β = Fᵀy with an unpenalized intercept; the ridge
  // term escalates ×10 until the system solves (it always does for large
  // enough lambda, keeping the fit deterministic even on degenerate seeds).
  std::vector<std::vector<double>> ata(p, std::vector<double>(p, 0.0));
  std::vector<double> aty(p, 0.0);
  for (std::size_t i = 0; i < f.size(); ++i) {
    for (std::size_t r = 0; r < p; ++r) {
      aty[r] += f[i][r] * y[i];
      for (std::size_t c = 0; c < p; ++c) ata[r][c] += f[i][r] * f[i][c];
    }
  }
  for (int attempt = 0; attempt < 12; ++attempt, lambda *= 10.0) {
    auto a = ata;
    for (std::size_t r = 1; r < p; ++r) a[r][r] += lambda;
    if (solve_linear(std::move(a), aty, model.coef_)) break;
  }

  double mean = 0.0;
  for (const double v : y) mean += v;
  mean /= static_cast<double>(y.size());
  double ss_res = 0.0, ss_tot = 0.0;
  for (std::size_t i = 0; i < f.size(); ++i) {
    double pred = 0.0;
    for (std::size_t r = 0; r < p; ++r) pred += model.coef_[r] * f[i][r];
    ss_res += (y[i] - pred) * (y[i] - pred);
    ss_tot += (y[i] - mean) * (y[i] - mean);
  }
  model.r2_ = ss_tot > 0.0 ? 1.0 - ss_res / ss_tot : 1.0;
  return model;
}

SurrogateModel SurrogateModel::from_state(std::vector<double> coefficients,
                                          bool log_scale, double r2) {
  SurrogateModel model;
  model.coef_ = std::move(coefficients);
  model.log_scale_ = log_scale;
  model.r2_ = r2;
  return model;
}

double SurrogateModel::predict(const SearchSpace& space,
                               std::uint64_t cartesian_index) const {
  const auto f = features(space, cartesian_index);
  double sum = 0.0;
  const std::size_t n = std::min(f.size(), coef_.size());
  for (std::size_t i = 0; i < n; ++i) sum += coef_[i] * f[i];
  return log_scale_ ? std::exp(sum) : sum;
}

void OffsetTraceSink::emit(const TraceEvent& event) {
  if (!inner_) return;
  TraceEvent shifted = event;
  shifted.epoch += epoch_offset_;
  shifted.config_ordinal += ordinal_offset_;
  if (event.kind == TraceEvent::Kind::Elimination) {
    shifted.leader_ordinal += ordinal_offset_;
  }
  inner_->emit(shifted);
}

void OffsetTraceSink::kernel_phase_begin() {
  if (inner_) inner_->kernel_phase_begin();
}

void OffsetTraceSink::kernel_phase_end() {
  if (inner_) inner_->kernel_phase_end();
}

SurrogateScheduler::SurrogateScheduler(TunerOptions options)
    : options_(std::move(options)) {
  if (options_.surrogate_seed_budget == 0) {
    throw std::invalid_argument("SurrogateScheduler: seed budget must be positive");
  }
  if (options_.invocations == 0) {
    throw std::invalid_argument("SurrogateScheduler: invocations must be positive");
  }
  if (!options_.extra_outer_stops.empty()) {
    // The confirm race reuses RacingScheduler, which owns the outer loop.
    throw std::invalid_argument(
        "SurrogateScheduler: extra outer stop conditions are not supported");
  }
}

SurrogateScheduler::State SurrogateScheduler::init(const SearchSpace& space) const {
  State state;
  state.seed_indices = space.latin_hypercube_indices(
      static_cast<std::size_t>(options_.surrogate_seed_budget), options_.random_seed);
  state.seed_results.reserve(state.seed_indices.size());
  return state;
}

void SurrogateScheduler::fit_and_prune(const SearchSpace& space, State& state,
                                       std::uint64_t trace_epoch) const {
  if (state.seed_results.size() != state.seed_indices.size()) {
    throw std::logic_error("SurrogateScheduler::fit_and_prune: seed phase incomplete");
  }
  std::vector<double> values;
  values.reserve(state.seed_results.size());
  for (const auto& r : state.seed_results) values.push_back(r.value());
  state.model = SurrogateModel::fit(space, state.seed_indices, values);

  // Score every unvisited admissible index; keep the top-k by prediction,
  // ties broken by ascending cartesian index so the confirm set is a pure
  // function of (space, seed batch).
  const std::unordered_set<std::uint64_t> seeded(state.seed_indices.begin(),
                                                 state.seed_indices.end());
  const std::uint64_t total = space.ranges().empty() ? 0 : space.cartesian_cardinality();
  const bool constrained = space.has_constraints();
  const std::size_t k = static_cast<std::size_t>(options_.surrogate_confirm_top);
  std::vector<std::pair<double, std::uint64_t>> top;  // sorted best-first
  state.scanned = 0;
  for (std::uint64_t idx = 0; idx < total; ++idx) {
    if (seeded.contains(idx)) continue;
    if (constrained && !space.admits(space.config_at(idx))) continue;
    ++state.scanned;
    if (k == 0) continue;
    const double pred = state.model->predict(space, idx);
    if (top.size() == k && pred <= top.back().first) continue;
    auto pos = std::upper_bound(
        top.begin(), top.end(), std::make_pair(pred, idx),
        [](const auto& a, const auto& b) {
          return a.first > b.first || (a.first == b.first && a.second < b.second);
        });
    top.insert(pos, {pred, idx});
    if (top.size() > k) top.pop_back();
  }
  state.confirm_indices.clear();
  state.confirm_predicted.clear();
  std::vector<Configuration> confirm_configs;
  for (const auto& [pred, idx] : top) {
    state.confirm_indices.push_back(idx);
    state.confirm_predicted.push_back(pred);
    confirm_configs.push_back(space.config_at(idx));
  }
  state.race = RacingScheduler(options_).init(std::move(confirm_configs));
  state.phase = Phase::Confirm;

  if (options_.trace) {
    const std::uint64_t seeds = state.seed_indices.size();
    // One epoch holds the whole fit/prune story, sequenced by ordinal:
    // fit summary, per-seed predicted-vs-measured, prune summary, kept
    // candidates.
    TraceEvent fit;
    fit.kind = TraceEvent::Kind::SurrogateFit;
    fit.epoch = trace_epoch;
    fit.config_ordinal = 0;
    fit.count = seeds;
    fit.r2 = state.model->train_r2();
    fit.model_log_scale = state.model->log_scale();
    options_.trace->emit(fit);
    for (std::size_t i = 0; i < state.seed_indices.size(); ++i) {
      TraceEvent sample;
      sample.kind = TraceEvent::Kind::SurrogateFit;
      sample.epoch = trace_epoch;
      sample.config_ordinal = 1 + i;
      sample.config = space.config_at(state.seed_indices[i]);
      sample.predicted = state.model->predict(space, state.seed_indices[i]);
      sample.value = values[i];
      options_.trace->emit(sample);
    }
    TraceEvent prune;
    prune.kind = TraceEvent::Kind::PruneBatch;
    prune.epoch = trace_epoch;
    prune.config_ordinal = 1 + seeds;
    prune.scanned = state.scanned;
    prune.kept = state.confirm_indices.size();
    options_.trace->emit(prune);
    for (std::size_t i = 0; i < state.confirm_indices.size(); ++i) {
      TraceEvent candidate;
      candidate.kind = TraceEvent::Kind::PruneBatch;
      candidate.epoch = trace_epoch;
      candidate.config_ordinal = 2 + seeds + i;
      candidate.config = space.config_at(state.confirm_indices[i]);
      candidate.predicted = state.confirm_predicted[i];
      options_.trace->emit(candidate);
    }
  }
  util::log_debug() << "surrogate fit r2=" << state.model->train_r2() << " scanned="
                    << state.scanned << " kept=" << state.confirm_indices.size();
}

TunerOptions SurrogateScheduler::confirm_options(TraceSink* sink) const {
  TunerOptions options = options_;
  options.trace = sink;
  return options;
}

void SurrogateScheduler::normalize_seed_time(ConfigResult& result) {
  util::Seconds total{0.0};
  for (const auto& inv : result.invocations) total += inv.wall_time;
  result.total_time = total;
}

std::optional<double> SurrogateScheduler::seed_incumbent(const State& state) {
  std::optional<double> best;
  for (const auto& r : state.seed_results) {
    const double value = r.value();
    if (!best.has_value() || value > *best) best = value;
  }
  return best;
}

TuningRun SurrogateScheduler::finish(State state) {
  TuningRun run;
  run.results.reserve(state.seed_results.size() + state.race.entries.size());
  for (auto& result : state.seed_results) {
    run.total_iterations += result.total_iterations;
    run.total_invocations += result.invocations.size();
    run.total_setup_time += result.total_setup_time;
    run.total_kernel_time += result.total_kernel_time;
    run.total_time += result.total_time;
    if (result.pruned()) ++run.pruned_configs;
    const double value = result.value();
    if (!run.best_index.has_value() || value > run.results[*run.best_index].value()) {
      run.best_index = run.results.size();
    }
    run.results.push_back(std::move(result));
  }
  TuningRun confirmed = RacingScheduler::finish(std::move(state.race));
  run.total_iterations += confirmed.total_iterations;
  run.total_invocations += confirmed.total_invocations;
  run.total_setup_time += confirmed.total_setup_time;
  run.total_kernel_time += confirmed.total_kernel_time;
  run.total_time += confirmed.total_time;
  run.pruned_configs += confirmed.pruned_configs;
  for (auto& result : confirmed.results) {
    const double value = result.value();
    if (!run.best_index.has_value() || value > run.results[*run.best_index].value()) {
      run.best_index = run.results.size();
    }
    run.results.push_back(std::move(result));
  }
  return run;
}

TuningRun SurrogateScheduler::run(Backend& backend, const SearchSpace& space) const {
  State state = init(space);

  // Seed phase: the ordinary sequential schedule over the sampled batch
  // (each seed configuration is its own epoch, like Autotuner::run_over).
  util::ProfileSpan seed_span(util::ProfileCategory::SurrogateSeed,
                              state.seed_indices.size());
  std::optional<double> incumbent;
  for (std::size_t i = 0; i < state.seed_indices.size(); ++i) {
    TraceContext ctx;
    ctx.epoch = i;
    ctx.config_ordinal = i;
    const Configuration config = space.config_at(state.seed_indices[i]);
    ConfigResult result = run_configuration(backend, config, options_, incumbent, ctx);
    normalize_seed_time(result);
    const double value = result.value();
    if (!incumbent.has_value() || value > *incumbent) {
      incumbent = value;
      if (options_.trace) {
        TraceEvent event;
        event.kind = TraceEvent::Kind::IncumbentUpdate;
        event.epoch = ctx.epoch;
        event.config_ordinal = ctx.config_ordinal;
        event.invocation =
            result.invocations.empty() ? 0 : result.invocations.size() - 1;
        event.rank = 7;
        event.config = config;
        event.value = value;
        options_.trace->emit(event);
      }
    }
    state.seed_results.push_back(std::move(result));
  }

  seed_span.finish();

  const std::uint64_t seed_epochs = state.seed_indices.size();
  {
    util::ProfileSpan fit_span(util::ProfileCategory::SurrogateFit,
                               seed_epochs);
    fit_and_prune(space, state, seed_epochs);
  }

  // Confirm phase: the racing/CI machinery over the kept candidates, with
  // its logical sort key shifted past the seed phase.
  util::ProfileSpan confirm_span(util::ProfileCategory::SurrogateConfirm,
                                 state.confirm_indices.size());
  OffsetTraceSink sink(options_.trace, seed_epochs + 1, seed_epochs);
  const RacingScheduler racing(confirm_options(options_.trace ? &sink : nullptr));
  while (racing.step(state.race, backend)) {
  }
  confirm_span.finish();

  TuningRun run = finish(std::move(state));
  run.arena = backend.arena_stats();
  return run;
}

}  // namespace rooftune::core
