#include "core/autotuner.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>
#include <utility>

#include "core/racing.hpp"
#include "core/surrogate.hpp"
#include "util/log.hpp"

namespace rooftune::core {

const ConfigResult& TuningRun::best() const {
  if (!best_index.has_value()) {
    throw std::logic_error("TuningRun::best: no configurations were evaluated");
  }
  return results[*best_index];
}

TuningRun Autotuner::run(Backend& backend) const {
  if (options_.strategy == SearchStrategy::Surrogate) {
    return SurrogateScheduler(options_).run(backend, space_);
  }
  const SpaceView view(space_, options_.order, options_.random_seed);
  if (options_.strategy == SearchStrategy::Racing) {
    // The race holds per-entry state for the whole population anyway, so
    // materializing its config list costs nothing extra.
    std::vector<Configuration> configs;
    configs.reserve(view.size());
    for (std::size_t i = 0; i < view.size(); ++i) configs.push_back(view.at(i));
    return RacingScheduler(options_).run(backend, std::move(configs));
  }
  return run_over(backend, view);
}

TuningRun Autotuner::run_random(Backend& backend, std::size_t budget) const {
  if (budget < space_.cardinality()) {
    // Draw through the index bijection: O(budget) work and memory instead
    // of shuffling a materialized O(|space|) configuration vector.
    return run_over(
        backend, SpaceView(space_, space_.sample_indices(budget, options_.random_seed)));
  }
  return run_over(backend, SpaceView(space_, SearchOrder::Random, options_.random_seed));
}

TuningRun Autotuner::run_coordinate_descent(
    Backend& backend, std::optional<Configuration> start) const {
  const auto& ranges = space_.ranges();
  if (ranges.empty()) return {};

  // Current position as per-dimension value indices.
  std::vector<std::size_t> position(ranges.size());
  if (start.has_value()) {
    for (std::size_t d = 0; d < ranges.size(); ++d) {
      const auto& values = ranges[d].values();
      const std::int64_t want = start->at(ranges[d].name());
      const auto it = std::find(values.begin(), values.end(), want);
      if (it == values.end()) {
        throw std::invalid_argument(
            "run_coordinate_descent: start value " + std::to_string(want) +
            " not in range '" + ranges[d].name() + "'");
      }
      position[d] = static_cast<std::size_t>(it - values.begin());
    }
  } else {
    for (std::size_t d = 0; d < ranges.size(); ++d) {
      position[d] = ranges[d].size() / 2;
    }
  }

  const auto config_at = [&](const std::vector<std::size_t>& pos) {
    std::vector<Parameter> params;
    params.reserve(ranges.size());
    for (std::size_t d = 0; d < ranges.size(); ++d) {
      params.push_back({ranges[d].name(), ranges[d].values()[pos[d]]});
    }
    return Configuration(std::move(params));
  };

  TuningRun run;
  const util::Seconds begin = backend.clock().now();
  std::optional<double> incumbent;
  std::map<Configuration, double> cache;

  // Evaluate (memoized); records full results only for fresh evaluations.
  const auto evaluate = [&](const Configuration& config) {
    if (const auto it = cache.find(config); it != cache.end()) return it->second;
    // Fresh-evaluation index doubles as the epoch: descent revisits cached
    // configurations without re-running them, so the journal only sees the
    // genuinely evaluated sequence.
    TraceContext ctx;
    ctx.epoch = run.results.size();
    ctx.config_ordinal = run.results.size();
    ConfigResult result =
        run_configuration(backend, config, options_, incumbent, ctx);
    run.total_iterations += result.total_iterations;
    run.total_invocations += result.invocations.size();
    run.total_setup_time += result.total_setup_time;
    run.total_kernel_time += result.total_kernel_time;
    if (result.pruned()) ++run.pruned_configs;
    const double value = result.value();
    cache.emplace(config, value);
    if (!incumbent.has_value() || value > *incumbent) {
      incumbent = value;
      run.best_index = run.results.size();
      if (options_.trace) {
        TraceEvent event;
        event.kind = TraceEvent::Kind::IncumbentUpdate;
        event.epoch = ctx.epoch;
        event.config_ordinal = ctx.config_ordinal;
        event.invocation = result.invocations.empty()
                               ? 0
                               : result.invocations.size() - 1;
        event.rank = 7;
        event.config = config;
        event.value = value;
        options_.trace->emit(event);
      }
    }
    run.results.push_back(std::move(result));
    if (progress_) progress_(run.results.size() - 1, 0, run.results.back());
    return value;
  };

  double current = evaluate(config_at(position));
  for (bool improved = true; improved;) {
    improved = false;
    for (std::size_t d = 0; d < ranges.size(); ++d) {
      std::size_t best_index = position[d];
      double best_value = current;
      for (std::size_t i = 0; i < ranges[d].size(); ++i) {
        if (i == position[d]) continue;
        auto candidate = position;
        candidate[d] = i;
        const Configuration config = config_at(candidate);
        if (!space_.admits(config)) continue;
        const double value = evaluate(config);
        if (value > best_value) {
          best_value = value;
          best_index = i;
        }
      }
      if (best_index != position[d]) {
        position[d] = best_index;
        current = best_value;
        improved = true;
      }
    }
  }

  run.total_time = backend.clock().now() - begin;
  run.arena = backend.arena_stats();
  return run;
}

TuningRun Autotuner::run_over(Backend& backend, const SpaceView& view) const {
  TuningRun run;
  run.results.reserve(view.size());
  const util::Seconds start = backend.clock().now();

  std::optional<double> incumbent;
  for (std::size_t i = 0; i < view.size(); ++i) {
    // Serial schedule: each configuration is its own epoch, so the journal
    // reads in exactly the order the tuner ran.  Configurations come off
    // the lazy view one at a time — nothing is materialized up front.
    const Configuration config = view.at(i);
    TraceContext ctx;
    ctx.epoch = i;
    ctx.config_ordinal = i;
    ConfigResult result =
        run_configuration(backend, config, options_, incumbent, ctx);
    run.total_iterations += result.total_iterations;
    run.total_invocations += result.invocations.size();
    run.total_setup_time += result.total_setup_time;
    run.total_kernel_time += result.total_kernel_time;
    if (result.pruned()) ++run.pruned_configs;

    const double value = result.value();
    if (!incumbent.has_value() || value > *incumbent) {
      incumbent = value;
      run.best_index = i;
      util::log_debug() << "new best " << config.to_string() << " = " << value;
      if (options_.trace) {
        TraceEvent event;
        event.kind = TraceEvent::Kind::IncumbentUpdate;
        event.epoch = ctx.epoch;
        event.config_ordinal = ctx.config_ordinal;
        // Anchor to the last invocation so rank 7 sorts after ConfigDone.
        event.invocation = result.invocations.empty()
                               ? 0
                               : result.invocations.size() - 1;
        event.rank = 7;
        event.config = config;
        event.value = value;
        options_.trace->emit(event);
      }
    }
    run.results.push_back(std::move(result));
    if (progress_) progress_(i, view.size(), run.results.back());
  }

  run.total_time = backend.clock().now() - start;
  run.arena = backend.arena_stats();
  return run;
}

}  // namespace rooftune::core
