#pragma once
// Racing evaluation scheduler: interleaved CI-elimination search.
//
// The paper's schedule (and Autotuner::run) evaluates configurations
// strictly one-after-another to completion; its condition 4 can only prune
// against an incumbent that already *finished*.  Racing interleaves the
// whole population instead: every round grants each surviving configuration
// one invocation, updates its Welford moments over invocation means, and
// then eliminates any survivor whose confidence-interval upper bound falls
// below the current leader's CI lower bound — the paper's condition 4
// applied across the population every round.  Losers die after a handful
// of invocations rather than after a full sequential evaluation, which is
// the standard racing/elimination result from the kernel-tuning literature
// (see docs/racing.md for the algorithm, its guarantees, and when
// elimination is unsafe under warm-up trends).
//
// The scheduler is exposed as resumable primitives (init / round pieces /
// finish) so three drivers share one implementation:
//   * RacingScheduler::run        — serial loop (Autotuner dispatches here
//                                   when TunerOptions::strategy == Racing);
//   * ParallelEvaluator           — each round is one deterministic wave
//                                   over its backend pool; elimination
//                                   decisions reduce in config order, so
//                                   results are bit-identical for any
//                                   worker count;
//   * TuningSession               — serializes per-survivor partial moments
//                                   into the checkpoint JSON after every
//                                   round and resumes mid-race.

#include <cstdint>
#include <optional>
#include <vector>

#include "core/autotuner.hpp"
#include "core/backend.hpp"
#include "core/evaluator.hpp"
#include "core/search_space.hpp"
#include "stats/trend.hpp"

namespace rooftune::core {

class RacingScheduler {
 public:
  /// Lifecycle of one configuration inside the race.
  enum class Status {
    Racing,      ///< still receiving invocations
    Finished,    ///< completed (invocation cap or outer convergence)
    Eliminated,  ///< CI-eliminated or inner/outer pruned — cannot win
  };

  /// Per-configuration racing state.  `result` accumulates exactly like the
  /// sequential evaluator's ConfigResult (same value()/pruned() semantics);
  /// the trend detector spans invocation means for the trend guard.
  struct Entry {
    ConfigResult result;
    Status status = Status::Racing;
    stats::TrendDetector trend{8};
  };

  /// The whole race; round counts completed rounds.
  struct State {
    std::vector<Entry> entries;
    std::uint64_t round = 0;

    [[nodiscard]] bool active() const;
  };

  explicit RacingScheduler(TunerOptions options);

  [[nodiscard]] const TunerOptions& options() const { return options_; }

  /// Fresh race over `configs` (already ordered).
  [[nodiscard]] State init(std::vector<Configuration> configs) const;

  /// Entries march in lockstep: a Racing entry participates in round r only
  /// while it holds exactly r invocations, so a mid-round resume re-runs
  /// just the entries the interruption cut off.
  [[nodiscard]] static std::vector<std::size_t> survivors(const State& state);

  /// Rounds execute in config-ordered blocks of this many entries; the
  /// frozen incumbent refreshes at each block boundary (an ordered
  /// reduction over everything already run).  During the first round this
  /// is what gives the inner upper-bound prune bite — by the second block
  /// an incumbent exists and hopeless configurations die mid-invocation,
  /// exactly like the sequential scan — while block boundaries are fixed
  /// in config order, so results stay independent of worker count.  Matches
  /// ParallelOptions::wave.
  static constexpr std::size_t kBlock = 16;

  /// survivors(state) chunked into kBlock-sized runs (the unit of work
  /// between incumbent refreshes; also the checkpoint granularity).
  [[nodiscard]] static std::vector<std::vector<std::size_t>> round_blocks(
      const State& state);

  /// The incumbent value frozen for the upcoming round (best value() over
  /// all non-eliminated entries with at least one invocation).  Feeds the
  /// inner upper-bound prune, exactly like the exhaustive incumbent.
  [[nodiscard]] static std::optional<double> frozen_incumbent(const State& state);

  /// Counter-guided pre-invocation skip, applied to one upcoming block on
  /// the coordinating thread (right after the frozen incumbent is taken,
  /// before the block fans out to workers).  An entry that has never been
  /// invoked is eliminated outright — zero invocations spent — when the
  /// backend's predicted intensity (Backend::analytic_intensity) yields a
  /// roofline ceiling that cannot reach the incumbent even inflated by the
  /// policy margin.  The prediction is only trusted once calibrated:
  /// kCounterCalibration earlier invocations must have carried measured OIs
  /// agreeing with their predictions within kOiTolerance.  Both the
  /// calibration scan and the skip decisions are pure functions of (entry
  /// data, frozen incumbent), so any worker count and any checkpoint-resume
  /// point reproduces them bit for bit.  No-op unless counter pruning is
  /// armed.  Emits counter-prune + config-done records for each skip.
  void apply_counter_skips(State& state, const std::vector<std::size_t>& block,
                           std::optional<double> incumbent,
                           const Backend& backend) const;

  /// Measured-vs-predicted OI agreements required before pre-invocation
  /// skips arm, and the relative tolerance defining agreement.  On real
  /// PMUs the measured OI includes prefetch and capacity traffic the
  /// analytic model does not, so calibration fails open: no agreement, no
  /// skips, and the policy falls back to post-invocation pruning only.
  static constexpr std::uint64_t kCounterCalibration = 16;
  static constexpr double kOiTolerance = 0.05;

  /// Run one invocation for `entry` (safe to call concurrently for
  /// *distinct* entries; each backend serves one entry at a time).
  /// `ordinal` is the entry's index in the ordered config list — it keys
  /// the trace journal's logical sort, with the round as the epoch, so
  /// racing journals merge identically for any worker assignment.
  /// Equivalent to run_detached_invocation + commit_invocation.
  void run_entry_invocation(Backend& backend, Entry& entry,
                            std::optional<double> incumbent,
                            std::size_t ordinal = 0) const;

  /// The execution half of run_entry_invocation, with no State mutation:
  /// runs one invocation of `config` on `backend` and returns the result.
  /// This is what pipeline workers call — the State is owned by the
  /// coordinator, which merges results via commit_invocation strictly in
  /// block order, so out-of-order completion can never reorder the race.
  /// `invocation_index` must be the entry's committed invocation count at
  /// dispatch time (the caller reads it before fanning out).
  [[nodiscard]] InvocationResult run_detached_invocation(
      Backend& backend, const Configuration& config,
      std::uint64_t invocation_index, std::optional<double> incumbent,
      std::size_t ordinal) const;

  /// The accumulation half of run_entry_invocation: merge one completed
  /// invocation into `entry` (moments, trend, timing sums).  Coordinator
  /// only — entries are never touched from worker threads in pipeline mode.
  static void commit_invocation(Entry& entry, InvocationResult invocation);

  /// After every survivor ran its invocation: apply per-entry stops and the
  /// population-wide CI elimination, reducing in entry (config) order.
  /// Returns true while the race has survivors left.
  bool conclude_round(State& state) const;

  /// Serial convenience round: survivors + frozen incumbent +
  /// run_entry_invocation over one backend + conclude_round.
  bool step(State& state, Backend& backend) const;

  /// Reduce the final state to a TuningRun (same best/tie-breaking rule as
  /// the sequential evaluator: first strictly-greater value wins).
  /// total_time sums per-invocation backend-clock spans — independent of
  /// worker assignment up to floating-point round-off (a clock's `end -
  /// start` span can shift in the last ulp with the clock's accumulated
  /// base; every *sample statistic* stays bit-identical).
  [[nodiscard]] static TuningRun finish(State state);

  /// Serial driver: init + step until done + finish.
  [[nodiscard]] TuningRun run(Backend& backend,
                              std::vector<Configuration> configs) const;

 private:
  TunerOptions options_;
  /// options_ with the inner iteration cap reduced to racing_iterations.
  TunerOptions invocation_options_;
};

}  // namespace rooftune::core
