#pragma once
// The concrete search spaces of the paper (§IV-A, §IV-B).

#include "core/search_space.hpp"
#include "util/units.hpp"

namespace rooftune::core {

/// Initial DGEMM space (§IV-A): n, m in powers of two 64..4096 (7 values),
/// k in powers of two 2..2048 (11 values); |S| = 7*7*11 = 539 (paper Eq. 8).
SearchSpace dgemm_initial_space();

/// Narrowed space before the leading-dimension adjustment: n, m in
/// 512..4096, k in 64..2048; |S| = 4*4*6 = 96.
SearchSpace dgemm_narrowed_space();

/// The production space used for all experiments: n in {500, 1000, 2000,
/// 4000} (leading dimensions a multiple of 2 per Intel's MKL guidance),
/// m in {512, 1024, 2048, 4096}, k in {64 .. 2048}; |S| = 96.  Every
/// optimum in paper Table V lies in this space.
SearchSpace dgemm_reduced_space();

/// The reduced DGEMM space with every octave of each axis subdivided into
/// `grid_scale` geometric steps: value_i = round(base * 2^(i/grid_scale)).
/// grid_scale == 1 reproduces dgemm_reduced_space() exactly (96 configs);
/// grid_scale == 6 yields 19 x 19 x 31 = 11191 configs (~116x) — the
/// enlarged grid the surrogate strategy is validated on.  Endpoints always
/// coincide with the reduced space's, so the true optimum region stays
/// inside the grid at every scale.
SearchSpace dgemm_scaled_space(int grid_scale);

/// The square-matrix constraint specification studied and rejected in
/// §IV-A: same ranges as the reduced space plus the constraint m == n
/// (values only coincide at no point of the mixed ranges, so this variant
/// uses the narrowed power-of-two space where m == n is satisfiable).
SearchSpace dgemm_square_space();

/// TRIAD space (§IV-B): vector length N such that the working set
/// (3 vectors of doubles) spans `min_working_set` .. `max_working_set`,
/// doubling N each step.  Defaults are the paper's 3 KiB .. 768 MiB.
SearchSpace triad_space(util::Bytes min_working_set = util::Bytes::KiB(3),
                        util::Bytes max_working_set = util::Bytes::MiB(768));

/// TRIAD space extended with the store-policy dimension: "nt" in {0, 1}
/// (0 = regular stores, 1 = non-temporal).  Doubles the cardinality and
/// lets the tuner discover that streaming stores win exactly in the DRAM
/// regime — a benchmarking-process knob in the spirit of the paper's
/// affinity/socket studies.
SearchSpace triad_store_policy_space(
    util::Bytes min_working_set = util::Bytes::KiB(3),
    util::Bytes max_working_set = util::Bytes::MiB(768));

/// Working set in bytes of a TRIAD configuration (3 * 8 * N).
util::Bytes triad_working_set(const Configuration& config);

/// SpMV space: "rows" in powers of two 4096..1048576 (the working set sweeps
/// L3-resident to deep-DRAM), "format" in {0 = CSR, 1 = sliced ELL,
/// 2 = BCSR}, "block" in {1, 2, 4, 8} (format-specific meaning — CSR row
/// unroll, ELL slice height, BCSR block dimension).  |S| = 9*3*4 = 108.
SearchSpace spmv_space();

/// 2D stencil tiling space: "ti" in powers of two 8..1024, "tj" in powers
/// of two 4..512, "unroll" in {1, 2, 4, 8} with the declarative constraint
/// unroll <= tj (an unroll wider than the tile row is meaningless — and the
/// constraint exercises ConstraintSpec through export round-trips).
/// |S| = 8*8*4 = 256 before the constraint, 248 after.
SearchSpace stencil_space();

}  // namespace rooftune::core
