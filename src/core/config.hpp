#pragma once
// A Configuration is one point of the search space: an ordered list of named
// integer parameters.  For DGEMM that is (n, m, k); for TRIAD it is the
// vector length N.  Configurations are value types with stable ordering so
// they can key maps and be compared across runs.

#include <cstdint>
#include <string>
#include <vector>

namespace rooftune::core {

struct Parameter {
  std::string name;
  std::int64_t value = 0;

  friend bool operator==(const Parameter&, const Parameter&) = default;
  friend auto operator<=>(const Parameter&, const Parameter&) = default;
};

class Configuration {
 public:
  Configuration() = default;
  explicit Configuration(std::vector<Parameter> params) : params_(std::move(params)) {}

  [[nodiscard]] const std::vector<Parameter>& parameters() const { return params_; }
  [[nodiscard]] std::size_t size() const { return params_.size(); }
  [[nodiscard]] bool empty() const { return params_.empty(); }

  /// Value of the parameter with this name; throws std::out_of_range if the
  /// configuration has no such parameter.
  [[nodiscard]] std::int64_t at(const std::string& name) const;

  /// True if the configuration has a parameter with this name.
  [[nodiscard]] bool has(const std::string& name) const;

  /// "n=1000,m=4096,k=128" — used in logs, reports, and CSV output.
  [[nodiscard]] std::string to_string() const;

  /// Stable 64-bit hash (for seeding per-configuration noise streams).
  [[nodiscard]] std::uint64_t hash() const;

  friend bool operator==(const Configuration&, const Configuration&) = default;
  friend auto operator<=>(const Configuration&, const Configuration&) = default;

 private:
  std::vector<Parameter> params_;
};

/// Convenience factory for DGEMM's three matrix dimensions (paper §IV-A).
Configuration dgemm_config(std::int64_t n, std::int64_t m, std::int64_t k);

/// Convenience factory for TRIAD's vector length (paper §IV-B).
Configuration triad_config(std::int64_t n);

}  // namespace rooftune::core
