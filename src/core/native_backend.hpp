#pragma once
// Backends that run the real kernels on the host machine — the code path
// the paper's tool takes on actual hardware.  DGEMM calls our BLAS
// (§III-A: init, preheat call, then timed cblas_dgemm iterations); TRIAD
// runs the OpenMP STREAM kernel (§III-B).
//
// Operand buffers are leased from a util::WorkspaceArena rather than
// allocated per invocation: the arena's high-water slabs persist across
// invocations *and* configurations, so after the largest working set has
// been seen once, begin_invocation performs zero allocations and zero page
// faults — only the deterministic value re-initialization remains.  Pass
// Options::reuse = false to restore the paper's allocate/free-per-invocation
// behaviour (the setup-cost baseline the arena is measured against).

#include <memory>
#include <optional>

#include "blas/blas.hpp"
#include "blas/matrix.hpp"
#include "core/backend.hpp"
#include "stream/stream.hpp"
#include "util/affinity.hpp"
#include "util/clock.hpp"
#include "util/workspace_arena.hpp"

namespace rooftune::core {

/// Benchmarks C <- alpha*A*B + beta*C on the host.  Each invocation leases
/// the three matrices (n x k, k x m, n x m per §III-A) from the workspace
/// arena, fills them deterministically (parallel per-row streams), runs one
/// untimed preheat DGEMM, then serves timed iterations.
class NativeDgemmBackend final : public Backend {
 public:
  struct Options {
    double alpha = 1.0;                 ///< paper §III-A
    double beta = 0.0;                  ///< paper §III-A
    blas::DgemmVariant variant = blas::DgemmVariant::Auto;
    util::AffinityPolicy affinity = util::AffinityPolicy::Close;
    std::uint64_t seed = 42;
    /// Keep arena slabs across invocations/configurations (the fast path).
    /// false = release the slabs in end_invocation, reproducing the
    /// paper's per-invocation allocation cost.
    bool reuse = true;
    /// Arena construction knobs (huge pages, first touch); used only when
    /// `arena` is null and the backend creates its own.
    util::ArenaOptions arena_options;
    /// Share an external arena (e.g. across backends on one worker).  The
    /// arena must outlive the backend and must not be shared across
    /// threads — ParallelEvaluator workers each get their own via the
    /// backend factory.
    std::shared_ptr<util::WorkspaceArena> arena;
  };

  NativeDgemmBackend() : NativeDgemmBackend(Options{}) {}
  explicit NativeDgemmBackend(Options options);

  void begin_invocation(const Configuration& config,
                        std::uint64_t invocation_index) override;
  Sample run_iteration() override;
  void end_invocation() override;
  [[nodiscard]] const util::Clock& clock() const override { return clock_; }
  [[nodiscard]] std::string metric_name() const override { return "GFLOP/s"; }
  [[nodiscard]] std::optional<util::ArenaStats> arena_stats() const override {
    return arena_->stats();
  }
  /// 2nmk FLOP per cblas_dgemm call (analytic intensity numerator for the
  /// trace journal); valid once a configuration has been prepared.
  [[nodiscard]] std::optional<double> flops_per_iteration() const override {
    if (n_ == 0) return std::nullopt;
    return blas::dgemm_flops(m_, n_, k_).value;
  }
  /// 8(nk + km + nm) bytes: the three operand matrices once each.
  [[nodiscard]] std::optional<double> bytes_per_iteration() const override {
    if (n_ == 0) return std::nullopt;
    return 8.0 * (static_cast<double>(n_) * k_ + static_cast<double>(k_) * m_ +
                  static_cast<double>(n_) * m_);
  }

  /// Compulsory-traffic OI for any (n, m, k): 2nmk / 8(nk + km + nm).  An
  /// upper bound on the real machine's OI (actual traffic only ever adds
  /// capacity/prefetch misses), so the roofline ceiling derived from it is
  /// sound for pre-invocation skips — though on real PMUs the measured OI
  /// rarely calibrates against it, which keeps skips off and the policy on
  /// measured signatures only.
  [[nodiscard]] std::optional<double> analytic_intensity(
      const Configuration& config) const override {
    if (!config.has("n") || !config.has("m") || !config.has("k")) {
      return std::nullopt;
    }
    const std::int64_t n = config.at("n");
    const std::int64_t m = config.at("m");
    const std::int64_t k = config.at("k");
    if (n <= 0 || m <= 0 || k <= 0) return std::nullopt;
    const double bytes = 8.0 * (static_cast<double>(n) * k +
                                static_cast<double>(k) * m +
                                static_cast<double>(n) * m);
    return blas::dgemm_flops(m, n, k).value / bytes;
  }

  [[nodiscard]] const util::WorkspaceArena& arena() const { return *arena_; }

  /// max |C_ij| over the result matrix — lets tests pin down that repeated
  /// timed iterations with beta != 0 do not compound into C (the values
  /// would otherwise drift toward infinity over a 200-iteration loop).
  [[nodiscard]] double max_abs_c() const;

 private:
  Options options_;
  util::WallClock clock_;
  std::shared_ptr<util::WorkspaceArena> arena_;
  double* a_ = nullptr;
  double* b_ = nullptr;
  double* c_ = nullptr;
  std::int64_t n_ = 0, m_ = 0, k_ = 0;
  bool in_invocation_ = false;
};

/// Benchmarks a STREAM kernel (default TRIAD: C <- A + gamma*B) on the
/// host.  Each invocation leases the three vectors from the workspace arena
/// with first-touch init and serves timed kernel passes.
class NativeTriadBackend final : public Backend {
 public:
  struct Options {
    double gamma = 3.0;
    util::AffinityPolicy affinity = util::AffinityPolicy::Spread;
    stream::Kernel kernel = stream::Kernel::Triad;
    /// Default store policy; overridden per configuration by the "nt"
    /// parameter (0 = Regular, 1 = Streaming) when present, so the tuner
    /// can search over the store policy (docs/performance.md).
    stream::StorePolicy store = stream::StorePolicy::Regular;
    /// Same arena knobs as NativeDgemmBackend::Options.
    bool reuse = true;
    util::ArenaOptions arena_options;
    std::shared_ptr<util::WorkspaceArena> arena;
  };

  NativeTriadBackend() : NativeTriadBackend(Options{}) {}
  explicit NativeTriadBackend(Options options);

  void begin_invocation(const Configuration& config,
                        std::uint64_t invocation_index) override;
  Sample run_iteration() override;
  void end_invocation() override;
  [[nodiscard]] const util::Clock& clock() const override { return clock_; }
  [[nodiscard]] std::string metric_name() const override { return "GB/s"; }
  [[nodiscard]] std::optional<util::ArenaStats> arena_stats() const override {
    return arena_->stats();
  }
  /// flops_per_element x N for the configured kernel (2N for TRIAD).
  [[nodiscard]] std::optional<double> flops_per_iteration() const override {
    if (n_ == 0) return std::nullopt;
    return static_cast<double>(stream::flops_per_element(options_.kernel).value) *
           static_cast<double>(n_);
  }
  /// bytes_per_element x N, STREAM reporting convention (24N for TRIAD).
  [[nodiscard]] std::optional<double> bytes_per_iteration() const override {
    if (n_ == 0) return std::nullopt;
    return static_cast<double>(stream::bytes_per_element(options_.kernel).value) *
           static_cast<double>(n_);
  }

  [[nodiscard]] const util::WorkspaceArena& arena() const { return *arena_; }

 private:
  Options options_;
  util::WallClock clock_;
  std::shared_ptr<util::WorkspaceArena> arena_;
  std::optional<stream::StreamArrays> arrays_;
  std::int64_t n_ = 0;  ///< element count of the current/last configuration
  stream::StorePolicy policy_ = stream::StorePolicy::Regular;
};

}  // namespace rooftune::core
