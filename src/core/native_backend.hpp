#pragma once
// Backends that run the real kernels on the host machine — the code path
// the paper's tool takes on actual hardware.  DGEMM calls our BLAS
// (§III-A: init, preheat call, then timed cblas_dgemm iterations); TRIAD
// runs the OpenMP STREAM kernel (§III-B).

#include <memory>
#include <optional>

#include "blas/blas.hpp"
#include "blas/matrix.hpp"
#include "core/backend.hpp"
#include "stream/stream.hpp"
#include "util/affinity.hpp"
#include "util/clock.hpp"

namespace rooftune::core {

/// Benchmarks C <- alpha*A*B + beta*C on the host.  Each invocation
/// allocates fresh matrices (n x k, k x m, n x m per §III-A), fills them
/// deterministically, runs one untimed preheat DGEMM, then serves timed
/// iterations.
class NativeDgemmBackend final : public Backend {
 public:
  struct Options {
    double alpha = 1.0;                 ///< paper §III-A
    double beta = 0.0;                  ///< paper §III-A
    blas::DgemmVariant variant = blas::DgemmVariant::Auto;
    util::AffinityPolicy affinity = util::AffinityPolicy::Close;
    std::uint64_t seed = 42;
  };

  NativeDgemmBackend() : NativeDgemmBackend(Options{}) {}
  explicit NativeDgemmBackend(Options options);

  void begin_invocation(const Configuration& config,
                        std::uint64_t invocation_index) override;
  Sample run_iteration() override;
  void end_invocation() override;
  [[nodiscard]] const util::Clock& clock() const override { return clock_; }
  [[nodiscard]] std::string metric_name() const override { return "GFLOP/s"; }

 private:
  Options options_;
  util::WallClock clock_;
  std::optional<blas::Matrix> a_, b_, c_;
  std::int64_t n_ = 0, m_ = 0, k_ = 0;
};

/// Benchmarks a STREAM kernel (default TRIAD: C <- A + gamma*B) on the
/// host.  Each invocation allocates the three vectors with first-touch
/// init and serves timed kernel passes.
class NativeTriadBackend final : public Backend {
 public:
  struct Options {
    double gamma = 3.0;
    util::AffinityPolicy affinity = util::AffinityPolicy::Spread;
    stream::Kernel kernel = stream::Kernel::Triad;
    /// Default store policy; overridden per configuration by the "nt"
    /// parameter (0 = Regular, 1 = Streaming) when present, so the tuner
    /// can search over the store policy (docs/performance.md).
    stream::StorePolicy store = stream::StorePolicy::Regular;
  };

  NativeTriadBackend() : NativeTriadBackend(Options{}) {}
  explicit NativeTriadBackend(Options options);

  void begin_invocation(const Configuration& config,
                        std::uint64_t invocation_index) override;
  Sample run_iteration() override;
  void end_invocation() override;
  [[nodiscard]] const util::Clock& clock() const override { return clock_; }
  [[nodiscard]] std::string metric_name() const override { return "GB/s"; }

 private:
  Options options_;
  util::WallClock clock_;
  std::unique_ptr<stream::StreamArrays> arrays_;
  stream::StorePolicy policy_ = stream::StorePolicy::Regular;
};

}  // namespace rooftune::core
