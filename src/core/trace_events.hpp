#pragma once
// Trace event seam between the measurement stack and the observability
// layer (src/trace).
//
// The evaluator, the racing scheduler, and the parallel evaluator emit
// fine-grained events — invocation spans, stop-condition decisions with the
// CI numbers at that instant, racing round transitions, incumbent updates —
// through the abstract TraceSink owned by TunerOptions::trace.  core only
// defines the seam; the concrete journal (per-worker buffering, JSONL
// serialization, perf-counter sampling, deterministic merge) lives in
// src/trace so the tuner keeps zero observability dependencies and a null
// sink costs one pointer test per emission site.
//
// Determinism contract: every event carries a *logical* position
// (epoch, config ordinal, invocation, rank) instead of a host timestamp.
// Sorting by that key at flush time makes simulator journals bit-identical
// run-to-run and across ParallelEvaluator worker counts — see
// docs/observability.md for the full schema and ordering rules.

#include <cstdint>
#include <optional>
#include <string>

#include "core/bottleneck.hpp"
#include "core/config.hpp"
#include "core/stop_condition.hpp"
#include "core/telemetry_span.hpp"
#include "util/workspace_arena.hpp"

namespace rooftune::core {

/// Logical position of an evaluation inside the tuning schedule.  Emitters
/// fill it from what they know: the serial autotuner uses the configuration
/// index for both fields; the parallel evaluator uses the wave index as the
/// epoch; the racing scheduler uses the round (== invocation index).
struct TraceContext {
  std::uint64_t epoch = 0;           ///< coarse schedule phase (see above)
  std::uint64_t config_ordinal = 0;  ///< index into the ordered config list
};

/// One observability event.  A flat tagged struct rather than a class
/// hierarchy: events cross a hot boundary (every invocation emits two), so
/// they are built on the stack and copied once into a per-worker buffer.
/// Fields beyond the sort key are meaningful only for the kinds that
/// document them; the journal serializes per kind.
struct TraceEvent {
  enum class Kind {
    IncumbentUpdate,  ///< a new best value was published to the schedule
    StopDecision,     ///< a stop condition ended a loop (see outer_level)
    Invocation,       ///< one completed invocation span (setup/kernel split)
    ConfigDone,       ///< a configuration left the schedule (any outcome)
    Elimination,      ///< racing removed a survivor (CI or inner prune)
    Round,            ///< racing round transition summary
    Resume,           ///< a checkpointed session restored prior progress
    SurrogateFit,     ///< surrogate model fitted (summary + per-seed records)
    PruneBatch,       ///< surrogate prune sweep (summary + kept candidates)
    CounterPrune,     ///< counter-guided bottleneck prune (core/bottleneck.hpp)
  };

  Kind kind = Kind::Invocation;

  // ---- logical sort key (epoch, config_ordinal, invocation, rank) ----
  std::uint64_t epoch = 0;
  std::uint64_t config_ordinal = 0;
  std::uint64_t invocation = 0;
  /// Within one (epoch, ordinal, invocation) cell: 0 incumbent-at-boundary,
  /// 1 iteration-level stop, 2 invocation span, 3 invocation-level stop,
  /// 4 config-done, 5 elimination, 6 round summary, 7 end-of-epoch
  /// incumbent.  Set by the emitters; the journal never reorders within a
  /// rank.
  int rank = 0;

  /// The configuration the event concerns (empty for Round/Resume events).
  Configuration config;

  // ---- StopDecision ----
  StopReason reason = StopReason::None;
  bool outer_level = false;       ///< true: invocation loop, false: iteration loop
  std::uint64_t count = 0;        ///< samples observed when the decision fired
  double mean = 0.0;              ///< running mean at that instant
  bool have_ci = false;           ///< CI fields valid (needs >= 2 samples)
  double ci_lower = 0.0;
  double ci_upper = 0.0;
  double accumulated_s = 0.0;     ///< kernel seconds consumed (iteration level)
  std::optional<double> incumbent;  ///< pruning target in effect, if any

  // ---- Invocation ----
  std::uint64_t iterations = 0;
  double kernel_s = 0.0;
  double setup_s = 0.0;
  double wall_s = 0.0;
  /// Durations came from Backend::last_invocation_timing() — accumulated
  /// from zero per invocation, independent of the clock's base, hence
  /// bit-identical across worker assignments (simulated backends).
  bool deterministic_timing = false;
  double stddev = 0.0;
  bool trend_rising = false;
  std::optional<double> flops;  ///< analytic work executed (intensity column)
  std::optional<double> bytes;  ///< analytic traffic executed
  /// Arena counter delta over this invocation (absent when the backend has
  /// no arena).  Physical per-worker state: deltas depend on which worker's
  /// slab served the lease, so they are excluded from bit-identity claims.
  std::optional<util::ArenaStats> arena_delta;
  /// Machine telemetry over this span (Backend::last_invocation_telemetry).
  /// Routed by the journal to the telemetry sidecar — NEVER serialized into
  /// the journal itself, so the journal's byte-identity guarantee cannot
  /// depend on host machine state.
  std::optional<TelemetrySpan> telemetry;
  /// Backend-accounted hardware counters over this span (the simulated
  /// counter model, Backend::last_invocation_counters).  Deterministic, so
  /// the journal serializes them like sampled perf counters — which keeps
  /// simulated journals bit-identical while rendering measured OI columns.
  std::optional<CounterSample> counters;

  // ---- ConfigDone ----
  double value = 0.0;           ///< ConfigResult::value() at completion
  bool pruned = false;

  // ---- Elimination ----
  /// "iteration-ci" (round-one sample-batch CI), "invocation-ci"
  /// (later-round CI vs the leader), or "inner-prune" (upper-bound prune
  /// fired mid-invocation against the frozen incumbent).
  std::string basis;
  std::uint64_t leader_ordinal = 0;
  double leader_ci_lower = 0.0;
  double leader_ci_upper = 0.0;

  // ---- Round ----
  std::uint64_t survivors_before = 0;
  std::uint64_t survivors_after = 0;
  std::uint64_t eliminated = 0;
  std::uint64_t finished = 0;

  // ---- Resume ----
  std::uint64_t restored_configs = 0;

  // ---- SurrogateFit / PruneBatch ----
  // Both kinds come in two shapes, distinguished by `config`: an empty
  // config marks the phase summary; a non-empty config marks a per-config
  // record (seed predicted-vs-measured for SurrogateFit, kept candidate for
  // PruneBatch).  `count` carries the training-sample count and `value` the
  // measured seed value, reusing the fields above.
  std::optional<double> predicted;  ///< model prediction for this config
  double r2 = 0.0;                  ///< training R² (fit summary)
  bool model_log_scale = false;     ///< fit summary: model fitted in log space
  std::uint64_t scanned = 0;        ///< prune summary: unvisited configs scored
  std::uint64_t kept = 0;           ///< prune summary: candidates kept for confirm

  // ---- CounterPrune ----
  // `basis` carries the bottleneck class label ("dram-bound", ...),
  // `incumbent` the value the bound could not reach, `count`/`mean` the
  // invocation evidence (invocations observed, their mean).
  double bound = 0.0;               ///< roofline bound in the run's metric
  double margin = 0.0;              ///< safety margin the decision was gated by
  std::optional<double> oi;         ///< measured operational intensity
  bool widened = false;             ///< bound widened by multiplex scaling
};

/// Consumer of trace events.  Implementations must tolerate concurrent
/// emit() calls from ParallelEvaluator workers (the journal routes to
/// per-worker buffers); the kernel-phase hooks are always paired on the
/// thread that runs the invocation, bracketing exactly the timed iteration
/// loop — which is where per-invocation hardware counters attach.
class TraceSink {
 public:
  virtual ~TraceSink() = default;

  virtual void emit(const TraceEvent& event) = 0;

  /// Called after Backend::begin_invocation returns (setup done, first
  /// timed iteration about to run).
  virtual void kernel_phase_begin() {}

  /// Called after the iteration loop ends, before Backend::end_invocation.
  virtual void kernel_phase_end() {}

  /// Hardware counters the sink read over the last kernel phase on the
  /// calling thread (the journal's PerfCounterSampler), if any.  This is
  /// how real-hardware counter signatures flow back into core for the
  /// counter-prune policy; backends with their own counter model take
  /// precedence (Backend::last_invocation_counters).
  [[nodiscard]] virtual std::optional<CounterSample> kernel_phase_counters()
      const {
    return std::nullopt;
  }
};

}  // namespace rooftune::core
