#include "core/spaces.hpp"

#include <cmath>
#include <stdexcept>

namespace rooftune::core {

namespace {

/// Geometric grid over `octaves` doublings of `base`, each octave split
/// into `scale` steps.  At step boundaries that are whole octaves the value
/// is exact (2^j is exact in double), so scale == 1 degenerates to the
/// original power ladder; intermediate values round to the nearest integer
/// and adjacent duplicates (possible for tiny bases) collapse.
ParameterRange scaled_octaves(std::string name, std::int64_t base, int octaves,
                              int scale) {
  std::vector<std::int64_t> values;
  for (int i = 0; i <= octaves * scale; ++i) {
    const std::int64_t v = std::llround(
        static_cast<double>(base) *
        std::exp2(static_cast<double>(i) / static_cast<double>(scale)));
    if (values.empty() || values.back() != v) values.push_back(v);
  }
  return {std::move(name), std::move(values)};
}

}  // namespace

SearchSpace dgemm_initial_space() {
  SearchSpace space;
  space.add_range(ParameterRange::powers_of_two("n", 64, 4096));
  space.add_range(ParameterRange::powers_of_two("m", 64, 4096));
  space.add_range(ParameterRange::powers_of_two("k", 2, 2048));
  return space;
}

SearchSpace dgemm_narrowed_space() {
  SearchSpace space;
  space.add_range(ParameterRange::powers_of_two("n", 512, 4096));
  space.add_range(ParameterRange::powers_of_two("m", 512, 4096));
  space.add_range(ParameterRange::powers_of_two("k", 64, 2048));
  return space;
}

SearchSpace dgemm_reduced_space() {
  SearchSpace space;
  space.add_range(ParameterRange::doubling("n", 500, 4));
  space.add_range(ParameterRange::powers_of_two("m", 512, 4096));
  space.add_range(ParameterRange::powers_of_two("k", 64, 2048));
  return space;
}

SearchSpace dgemm_scaled_space(int grid_scale) {
  if (grid_scale < 1) {
    throw std::invalid_argument("dgemm_scaled_space: grid_scale must be >= 1");
  }
  SearchSpace space;
  space.add_range(scaled_octaves("n", 500, 3, grid_scale));
  space.add_range(scaled_octaves("m", 512, 3, grid_scale));
  space.add_range(scaled_octaves("k", 64, 5, grid_scale));
  return space;
}

SearchSpace dgemm_square_space() {
  SearchSpace space = dgemm_narrowed_space();
  space.add_constraint({"m==n", [](const Configuration& c) {
                          return c.at("m") == c.at("n");
                        }});
  return space;
}

SearchSpace triad_space(util::Bytes min_working_set, util::Bytes max_working_set) {
  // Working set = 3 vectors * 8 bytes * N; N doubles from the smallest value
  // whose working set is >= min up to the largest <= max.
  std::vector<std::int64_t> lengths;
  for (std::int64_t n = 8;; n *= 2) {
    const std::uint64_t ws = 24ull * static_cast<std::uint64_t>(n);
    if (ws > max_working_set.value) break;
    if (ws * 2 > min_working_set.value) lengths.push_back(n);  // first N with ws >= min/2
  }
  SearchSpace space;
  space.add_range(ParameterRange("N", std::move(lengths)));
  return space;
}

SearchSpace triad_store_policy_space(util::Bytes min_working_set,
                                     util::Bytes max_working_set) {
  SearchSpace space = triad_space(min_working_set, max_working_set);
  space.add_range(ParameterRange("nt", {0, 1}));
  return space;
}

util::Bytes triad_working_set(const Configuration& config) {
  return util::Bytes{24ull * static_cast<std::uint64_t>(config.at("N"))};
}

SearchSpace spmv_space() {
  SearchSpace space;
  space.add_range(ParameterRange::powers_of_two("rows", 4096, 1048576));
  space.add_range(ParameterRange("format", {0, 1, 2}));
  space.add_range(ParameterRange("block", {1, 2, 4, 8}));
  return space;
}

SearchSpace stencil_space() {
  SearchSpace space;
  space.add_range(ParameterRange::powers_of_two("ti", 8, 1024));
  space.add_range(ParameterRange::powers_of_two("tj", 4, 512));
  space.add_range(ParameterRange("unroll", {1, 2, 4, 8}));
  ConstraintSpec spec;
  spec.lhs = "unroll";
  spec.op = ConstraintSpec::Op::Le;
  spec.rhs_param = "tj";
  space.add_constraint(spec);
  return space;
}

}  // namespace rooftune::core
