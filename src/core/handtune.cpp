#include "core/handtune.hpp"

#include <cmath>
#include <stdexcept>

#include "util/log.hpp"

namespace rooftune::core {

namespace {

TuningRun run_with_iterations(Backend& backend, const SearchSpace& space,
                              const TunerOptions& base, std::uint64_t iterations) {
  TunerOptions options = base;
  options.invocations = 1;
  options.iterations = iterations;
  options.confidence_stop = false;
  options.inner_prune = false;
  options.outer_prune = false;
  options.order = SearchOrder::Forward;
  const Autotuner tuner(space, options);
  return tuner.run(backend);
}

}  // namespace

HandTuneResult hand_tune_time(Backend& backend, const SearchSpace& space,
                              const TunerOptions& base, util::Seconds target_time) {
  if (target_time.value <= 0.0) {
    throw std::invalid_argument("hand_tune_time: target time must be positive");
  }

  // Phase 1: doubling until we exceed the target (or hit the inner cap).
  std::uint64_t lo = 1;
  TuningRun lo_run = run_with_iterations(backend, space, base, lo);
  if (lo_run.total_time > target_time) {
    return {lo, std::move(lo_run)};  // even a single iteration overshoots
  }
  std::uint64_t hi = lo;
  while (hi < base.iterations) {
    hi = std::min(hi * 2, base.iterations);
    TuningRun run = run_with_iterations(backend, space, base, hi);
    if (run.total_time > target_time) break;
    lo = hi;
    lo_run = std::move(run);
    if (hi == base.iterations) return {lo, std::move(lo_run)};
  }

  // Phase 2: bisect for the largest count still within the target.
  while (hi - lo > 1) {
    const std::uint64_t mid = lo + (hi - lo) / 2;
    TuningRun run = run_with_iterations(backend, space, base, mid);
    if (run.total_time <= target_time) {
      lo = mid;
      lo_run = std::move(run);
    } else {
      hi = mid;
    }
  }
  return {lo, std::move(lo_run)};
}

HandTuneResult hand_tune_accuracy(Backend& backend, const SearchSpace& space,
                                  const TunerOptions& base, double reference_value,
                                  double tolerance) {
  if (reference_value <= 0.0) {
    throw std::invalid_argument("hand_tune_accuracy: reference must be positive");
  }
  // The paper reports counts like 20, 150, 180 — a coarse 10-step grid (with
  // a few small values first) mirrors how one would tune this by hand.
  HandTuneResult last;
  for (std::uint64_t count = 5; count <= base.iterations;
       count += (count < 20) ? 5 : 10) {
    TuningRun run = run_with_iterations(backend, space, base, count);
    const double err = std::fabs(run.best_value() - reference_value) / reference_value;
    util::log_debug() << "hand_tune_accuracy: count=" << count << " err=" << err;
    last = {count, std::move(run)};
    if (err <= tolerance) return last;
  }
  // Never reached the tolerance — return the largest count tried.
  return last;
}

}  // namespace rooftune::core
