#include "core/process_doc.hpp"

#include <sstream>

#include "util/strings.hpp"

namespace rooftune::core {

namespace {

std::string inner_conditions(const TunerOptions& options) {
  std::string out = util::format("kernel time >= %.3gs (cond. 1) OR %llu iterations (cond. 2)",
                                 options.timeout.value,
                                 static_cast<unsigned long long>(options.iterations));
  if (options.inner_prune) {
    out += util::format(" OR CI upper bound < incumbent after >= %llu samples (cond. 4)",
                        static_cast<unsigned long long>(options.prune_min_count));
    if (options.trend_guard) out += " [deferred while trend rises]";
  }
  if (options.confidence_stop) {
    out += util::format(" OR %.0f%% CI within +/-%.2g%% of mean (cond. 3)",
                        options.confidence * 100.0, options.tolerance * 100.0);
  }
  return out;
}

std::string outer_conditions(const TunerOptions& options) {
  std::string out = util::format(
      "%llu invocations", static_cast<unsigned long long>(options.invocations));
  if (options.outer_prune) {
    out += " OR pruned invocation OR invocation-level CI upper bound < incumbent";
  }
  if (options.confidence_stop) {
    out += util::format(" OR invocation means converged to +/-%.2g%%",
                        options.tolerance * 100.0);
  }
  return out;
}

}  // namespace

std::string describe_process(const TunerOptions& options) {
  std::ostringstream out;
  out << "benchmarking process (paper Fig. 2):\n";
  out << "  exhaustive search, " << to_string(options.order) << " order\n";
  out << "  for each configuration:\n";
  out << "    invocation loop (launch benchmark program):\n";
  out << "      init operands, one pre-heat kernel call\n";
  out << "      iteration loop (timed kernel calls):\n";
  out << "        update Welford mean/variance, evaluate stop conditions\n";
  out << "        stop when: " << inner_conditions(options) << "\n";
  out << "      stop invocations when: " << outer_conditions(options) << "\n";
  out << "    update incumbent optimum (feeds condition 4)\n";
  return out.str();
}

namespace {

/// Escape a label for DOT double-quoted strings.
std::string dot_escape(const std::string& text) {
  std::string out;
  for (char c : text) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

}  // namespace

std::string process_dot(const TunerOptions& options) {
  std::ostringstream dot;
  dot << "digraph benchmarking_process {\n";
  dot << "  rankdir=TB;\n  node [shape=box, fontname=\"sans-serif\"];\n";
  dot << "  search [label=\"exhaustive search (" << to_string(options.order)
      << " order)\\nnext configuration\"];\n";
  dot << "  launch [label=\"launch benchmark program\\ninit operands + pre-heat\"];\n";
  dot << "  iterate [label=\"timed kernel call\\nWelford mean/variance update\"];\n";
  dot << "  inner_stop [shape=diamond, label=\"stop iteration loop?\\n"
      << dot_escape(inner_conditions(options)) << "\"];\n";
  dot << "  outer_stop [shape=diamond, label=\"stop invocation loop?\\n"
      << dot_escape(outer_conditions(options)) << "\"];\n";
  dot << "  incumbent [label=\"update incumbent optimum\\n(feeds condition 4)\"];\n";
  dot << "  done [shape=oval, label=\"best configuration +\\nconfidence interval\"];\n";
  dot << "  search -> launch;\n";
  dot << "  launch -> iterate;\n";
  dot << "  iterate -> inner_stop;\n";
  dot << "  inner_stop -> iterate [label=\"no\"];\n";
  dot << "  inner_stop -> outer_stop [label=\"yes\"];\n";
  dot << "  outer_stop -> launch [label=\"no\"];\n";
  dot << "  outer_stop -> incumbent [label=\"yes\"];\n";
  dot << "  incumbent -> search [label=\"more configs\"];\n";
  dot << "  incumbent -> done [label=\"space exhausted\"];\n";
  dot << "}\n";
  return dot.str();
}

}  // namespace rooftune::core
