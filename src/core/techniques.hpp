#pragma once
// Named technique presets matching §V and the rows of Tables VIII–XI.
//
//   Default             fixed sample size: 10 invocations x 200 iterations
//                       (10 s timeout), no early stopping
//   Single              1 invocation x 1 iteration
//   Hand-tuned Time     1 invocation, iteration count tuned to match the
//                       most-optimized technique's runtime (Table VII)
//   Hand-tuned Accuracy 1 invocation, iteration count tuned upward until
//                       accuracy matches the optimized techniques
//   Confidence ("C")    + stop condition 3 at 99 % / ±1 %
//   C+Inner ("C+I")     + stop condition 4 on the iteration loop
//   C+Inner+R           same, reversed search order
//   C+I+Outer ("C+I+O") + stop condition 4 on the invocation loop
//   C+I+O+R             same, reversed search order

#include <string>
#include <vector>

#include "core/evaluator.hpp"

namespace rooftune::core {

enum class Technique {
  Default,
  Single,
  HandTunedTime,
  HandTunedAccuracy,
  Confidence,
  CInner,
  CInnerReverse,
  CIOuter,
  CIOuterReverse,
};

/// Paper row label, e.g. "C+I+Outer".
std::string technique_name(Technique technique);

/// All techniques in the row order of Tables VIII–XI.
std::vector<Technique> all_techniques();

/// The techniques driven purely by stop conditions (no hand-tuned counts).
std::vector<Technique> automatic_techniques();

/// Build TunerOptions for a technique on top of the Table I base options.
/// `hand_tuned_iterations` is required (non-zero) for the two hand-tuned
/// techniques and ignored otherwise.  `prune_min_count` applies to the
/// upper-bound condition (2 by default; 100 for the paper's 2695 v4 fix).
TunerOptions technique_options(Technique technique,
                               const TunerOptions& base = {},
                               std::uint64_t hand_tuned_iterations = 0,
                               std::uint64_t prune_min_count = 2);

}  // namespace rooftune::core
