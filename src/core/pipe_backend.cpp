#include "core/pipe_backend.hpp"

#include <cstdio>
#include <cstdlib>
#include <stdexcept>

#include "util/strings.hpp"

namespace rooftune::core {

PipeBackend::PipeBackend(Options options) : options_(std::move(options)) {
  if (options_.command_template.empty()) {
    throw std::invalid_argument("PipeBackend: empty command template");
  }
}

PipeBackend::~PipeBackend() { end_invocation(); }

std::string PipeBackend::expand(const std::string& command_template,
                                const Configuration& config,
                                std::uint64_t invocation_index) {
  std::string out = command_template;
  const auto replace_all = [&out](const std::string& token, const std::string& with) {
    for (std::size_t pos = out.find(token); pos != std::string::npos;
         pos = out.find(token, pos + with.size())) {
      out.replace(pos, token.size(), with);
    }
  };
  for (const auto& p : config.parameters()) {
    replace_all("{" + p.name + "}", std::to_string(p.value));
  }
  replace_all("{invocation}", std::to_string(invocation_index));
  if (const auto brace = out.find('{'); brace != std::string::npos) {
    const auto close = out.find('}', brace);
    throw std::invalid_argument(
        "PipeBackend: unresolved placeholder " +
        out.substr(brace, close == std::string::npos ? std::string::npos
                                                     : close - brace + 1));
  }
  return out;
}

void PipeBackend::begin_invocation(const Configuration& config,
                                   std::uint64_t invocation_index) {
  if (pipe_ != nullptr) end_invocation();
  last_command_ = expand(options_.command_template, config, invocation_index);
  pipe_ = ::popen(last_command_.c_str(), "r");
  if (pipe_ == nullptr) {
    throw std::runtime_error("PipeBackend: failed to launch: " + last_command_);
  }
  last_line_time_ = clock_.now();
}

Sample PipeBackend::run_iteration() {
  if (pipe_ == nullptr) {
    throw std::logic_error("PipeBackend: run_iteration outside invocation");
  }
  char line[256];
  if (std::fgets(line, sizeof line, pipe_) == nullptr) {
    throw std::runtime_error(
        "PipeBackend: benchmark output ended before the evaluator stopped "
        "(command: " + last_command_ + ")");
  }
  const util::Seconds now = clock_.now();

  Sample sample;
  char* cursor = line;
  char* end = nullptr;
  sample.value = std::strtod(cursor, &end);
  if (end == cursor) {
    throw std::runtime_error("PipeBackend: malformed sample line: " +
                             std::string(line));
  }
  cursor = end;
  const double kernel_seconds = std::strtod(cursor, &end);
  sample.kernel_time =
      end != cursor ? util::Seconds{kernel_seconds} : now - last_line_time_;
  last_line_time_ = now;
  return sample;
}

void PipeBackend::end_invocation() {
  if (pipe_ != nullptr) {
    // Drain politely so the child doesn't die on SIGPIPE mid-write, then
    // close (which reaps it).
    char sink[256];
    while (std::fgets(sink, sizeof sink, pipe_) != nullptr) {
    }
    ::pclose(pipe_);
    pipe_ = nullptr;
  }
}

}  // namespace rooftune::core
