#pragma once
// EvalPool — the persistent worker pool behind ParallelEvaluator's
// pipeline scheduler.
//
// Threads are created once (and optionally pinned once, via
// util::pin_current_thread) and live for the pool's lifetime — racing
// rounds and surrogate phases stop paying a spawn/join tax per wave.
// Each worker owns a Chase–Lev deque (util/work_steal.hpp); submit()
// round-robins tasks into small mutex-protected inboxes that workers
// drain into their own deque, so the submitting coordinator never touches
// a deque it does not own.  Idle workers first sweep every other worker's
// deque and inbox, then park on a condition variable until new work or
// shutdown.
//
// Determinism contract: the pool itself guarantees nothing about ORDER —
// tasks run on whichever worker gets there first.  Result ordering is the
// caller's job (ParallelEvaluator's in-order commit stage); tasks must
// also catch their own exceptions, because a throw from a task body would
// terminate the process.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/sched_stats.hpp"
#include "util/work_steal.hpp"

namespace rooftune::core {

class EvalPool {
 public:
  /// Runs on a pool worker; the argument is the worker index in
  /// [0, workers()), stable for the task's whole body — callers key
  /// per-worker resources (backends) off it.  Must not throw.
  using Task = std::function<void(std::size_t)>;

  struct Options {
    std::size_t workers = 1;
    /// Pin worker w to logical CPU w (mod online CPUs) at thread start.
    bool pin_threads = false;
  };

  explicit EvalPool(Options options);
  ~EvalPool();

  EvalPool(const EvalPool&) = delete;
  EvalPool& operator=(const EvalPool&) = delete;

  [[nodiscard]] std::size_t workers() const { return contexts_.size(); }

  /// Enqueue a task; wakes parked workers.  Any thread may call this,
  /// though the evaluator only ever submits from its coordinator.
  void submit(Task task);

  /// Aggregate per-worker counters.  mode/lookahead/tasks/commit_wait_ns
  /// are the caller's to fill in; the pool reports what it can observe
  /// (steals, parks, idle/busy time, span).
  [[nodiscard]] SchedulerStats stats() const;

 private:
  struct Node {
    Task fn;
  };
  struct Context {
    util::WorkStealDeque<Node*> deque;
    std::mutex inbox_mutex;
    std::vector<Node*> inbox;
    std::atomic<std::uint64_t> executed{0};
    std::atomic<std::uint64_t> stolen{0};
    std::atomic<std::uint64_t> parks{0};
    std::atomic<std::uint64_t> idle_ns{0};
    std::atomic<std::uint64_t> busy_ns{0};
  };

  void worker_main(std::size_t w);
  /// One full acquire attempt: own deque, own inbox, then steal sweep.
  Node* acquire(std::size_t w, bool& stolen);

  const bool pin_threads_;
  std::vector<std::unique_ptr<Context>> contexts_;
  std::vector<std::thread> threads_;

  std::mutex park_mutex_;
  std::condition_variable park_cv_;
  /// Tasks submitted but not yet picked up by any worker; the park
  /// predicate — workers sleep only when this is zero.
  std::atomic<std::int64_t> pending_{0};
  std::atomic<bool> stop_{false};

  std::mutex submit_mutex_;
  std::size_t next_inbox_ = 0;  ///< round-robin cursor, guarded by submit_mutex_

  std::chrono::steady_clock::time_point start_;
};

}  // namespace rooftune::core
