#pragma once
// The four stop conditions of §III-C, as composable policies.
//
// Each condition inspects the running evaluation state after every sample
// and may end the loop with a reason.  The same machinery serves the inner
// iteration loop and the outer invocation loop; the upper-bound condition
// (stop condition 4) is what the paper toggles as "Inner"/"Outer".

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "stats/confidence.hpp"
#include "stats/trend.hpp"
#include "stats/welford.hpp"
#include "util/units.hpp"

namespace rooftune::core {

enum class StopReason {
  None,         ///< keep iterating
  MaxTime,      ///< accumulated kernel time exceeded the budget (cond. 1)
  MaxCount,     ///< iteration cap reached (cond. 2)
  Converged,    ///< CI within tolerance of the mean (cond. 3)
  PrunedByBest, ///< CI upper bound below incumbent optimum (cond. 4)
  CounterBound, ///< roofline bound from counter signature below incumbent
                ///< (core/bottleneck.hpp, --counter-prune)
};

const char* to_string(StopReason reason);

/// Inverse of to_string(StopReason): parses the exact strings the journal
/// and reports emit.  nullopt for anything else, so callers (the trace
/// reader) can reject unknown reason spellings instead of misfiling them.
std::optional<StopReason> stop_reason_from_string(std::string_view text);

/// Everything a stop condition may inspect.
struct EvalState {
  const stats::OnlineMoments* moments = nullptr;   ///< running sample stats
  util::Seconds accumulated_time{0.0};             ///< kernel time so far
  std::uint64_t count = 0;                         ///< samples so far
  std::optional<double> incumbent;                 ///< best known config value
  const stats::TrendDetector* trend = nullptr;     ///< recent-sample trend
};

class StopCondition {
 public:
  virtual ~StopCondition() = default;

  /// Returns the reason to stop, or StopReason::None to continue.
  [[nodiscard]] virtual StopReason check(const EvalState& state) const = 0;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Conditions that need raw samples (medians, autocorrelation) override
  /// these; the evaluator feeds every sample through observe() and calls
  /// reset() when a new evaluation loop starts.  State is mutable because
  /// conditions are shared as const through StopSet.
  virtual void observe(double sample) const { (void)sample; }
  virtual void reset() const {}
};

/// Condition 1: accumulated kernel time >= budget (the -t flag, default 10 s).
class MaxTimeStop final : public StopCondition {
 public:
  explicit MaxTimeStop(util::Seconds budget);
  [[nodiscard]] StopReason check(const EvalState& state) const override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] util::Seconds budget() const { return budget_; }

 private:
  util::Seconds budget_;
};

/// Condition 2: sample count >= cap (cuts off high-variance configurations
/// whose CI converges slowly).
class MaxCountStop final : public StopCondition {
 public:
  explicit MaxCountStop(std::uint64_t cap);
  [[nodiscard]] StopReason check(const EvalState& state) const override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] std::uint64_t cap() const { return cap_; }

 private:
  std::uint64_t cap_;
};

/// Condition 3 ("Confidence"/"C"): stop when the CI at `confidence` has
/// boundaries within ±`tolerance` of the mean (paper: 99 % and 1 %).
class ConfidenceStop final : public StopCondition {
 public:
  ConfidenceStop(double confidence, double tolerance, std::uint64_t min_samples = 2,
                 stats::IntervalMethod method = stats::IntervalMethod::Normal);
  [[nodiscard]] StopReason check(const EvalState& state) const override;
  [[nodiscard]] std::string name() const override;

 private:
  double confidence_;
  double tolerance_;
  std::uint64_t min_samples_;
  stats::IntervalMethod method_;
};

/// Condition 4 ("Inner"/"Outer" pruning): stop when the CI's upper bound is
/// below the incumbent optimum — the configuration cannot win (paper
/// Listing 1: mean + marg < best).  `min_count` guards configurations whose
/// performance rises during evaluation (§III-C.4; the 2695 v4 fix uses 100).
/// With `trend_guard`, a detected rising trend also defers pruning — the
/// §VII future-work refinement.
class UpperBoundStop final : public StopCondition {
 public:
  UpperBoundStop(double confidence, std::uint64_t min_count = 2,
                 bool trend_guard = false,
                 stats::IntervalMethod method = stats::IntervalMethod::Normal);
  [[nodiscard]] StopReason check(const EvalState& state) const override;
  [[nodiscard]] std::string name() const override;

 private:
  double confidence_;
  std::uint64_t min_count_;
  bool trend_guard_;
  stats::IntervalMethod method_;
};

/// Future work (§VII): confidence stop on the *median* via a streaming P²
/// estimate is out of scope; instead MedianGuardStop stops when the recent
/// window's median has stabilized within tolerance across two half-windows.
/// Used only by the ablation bench, not by any paper technique.
class MedianStabilityStop final : public StopCondition {
 public:
  MedianStabilityStop(double tolerance, std::uint64_t window);
  [[nodiscard]] StopReason check(const EvalState& state) const override;
  [[nodiscard]] std::string name() const override;

  void observe(double sample) const override;
  void reset() const override;

 private:
  double tolerance_;
  std::uint64_t window_;
  // Mutable ring of recent samples: check() is const for interface
  // uniformity, observe() maintains state.
  mutable std::vector<double> recent_;
};

/// Ordered set of stop conditions; first condition that fires wins.
class StopSet {
 public:
  void add(std::shared_ptr<const StopCondition> condition);

  [[nodiscard]] StopReason check(const EvalState& state) const;

  /// Feed a raw sample to every condition (no-op for stateless ones).
  void observe(double sample) const;

  /// Reset every condition's sample state (new evaluation loop).
  void reset() const;

  [[nodiscard]] std::size_t size() const { return conditions_.size(); }
  [[nodiscard]] const std::vector<std::shared_ptr<const StopCondition>>& conditions() const {
    return conditions_;
  }

 private:
  std::vector<std::shared_ptr<const StopCondition>> conditions_;
};

}  // namespace rooftune::core
