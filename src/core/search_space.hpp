#pragma once
// Search-space definition and reduction (paper §IV).
//
// "The definition and reduction of the search space is critical for
// autotuning."  A SearchSpace is a cartesian product of named parameter
// ranges, filtered by constraints.  Ranges support the paper's generators:
// powers of two between bounds, doubling sequences starting from an
// arbitrary base (the 500,1000,2000,4000 leading-dimension adjustment), and
// explicit value lists.
//
// The space is addressable without materialization: every point of the
// cartesian product has a stable index in [0, cartesian_cardinality()) and
// config_at/index_of form a bijection (mixed-radix encoding, last range
// fastest — the same order enumerate() produces).  Samplers, the surrogate
// strategy and SpaceView walk the space through that bijection, so a
// 10^4-config grid costs no more memory than the 96-config paper grid.
//
// Constraints come in two flavors: declarative ConstraintSpec comparisons
// (serializable, survive a JSON round trip) and legacy opaque predicates
// (arbitrary C++, excluded from serialization).  The paper's m = n
// constraint study is expressible either way.

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/config.hpp"

namespace rooftune::util {
class JsonValue;
}  // namespace rooftune::util

namespace rooftune::core {

/// One named axis of the search space.
class ParameterRange {
 public:
  ParameterRange(std::string name, std::vector<std::int64_t> values);

  /// {lo, 2*lo, 4*lo, ..., hi}; lo and hi must be powers of two with lo <= hi.
  static ParameterRange powers_of_two(std::string name, std::int64_t lo, std::int64_t hi);

  /// {base, 2*base, 4*base, ...} with `count` entries (the paper's
  /// multiples-of-2 leading dimensions: 500, 1000, 2000, 4000).
  static ParameterRange doubling(std::string name, std::int64_t base, std::size_t count);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const std::vector<std::int64_t>& values() const { return values_; }
  [[nodiscard]] std::size_t size() const { return values_.size(); }

 private:
  std::string name_;
  std::vector<std::int64_t> values_;
};

/// Named predicate over full configurations (e.g. "m==n").  Opaque to
/// serialization — a space holding one of these cannot be written to JSON.
struct Constraint {
  std::string name;
  std::function<bool(const Configuration&)> predicate;
};

/// Declarative constraint: one parameter compared against another parameter
/// or an integer literal.  Serializable, so spaces declared this way survive
/// a JSON round trip with identical enumeration order and index mapping.
struct ConstraintSpec {
  enum class Op { Eq, Ne, Lt, Le, Gt, Ge };

  std::string lhs;           ///< parameter name on the left-hand side
  Op op = Op::Eq;
  std::string rhs_param;     ///< parameter name, or empty to use rhs_value
  std::int64_t rhs_value = 0;

  /// Display name, e.g. "m==n" or "k<=1024".
  [[nodiscard]] std::string name() const;
  [[nodiscard]] bool holds(const Configuration& config) const;
};

const char* to_string(ConstraintSpec::Op op);

class SearchSpace {
 public:
  SearchSpace() = default;
  explicit SearchSpace(std::vector<ParameterRange> ranges) : ranges_(std::move(ranges)) {}

  void add_range(ParameterRange range) { ranges_.push_back(std::move(range)); }
  void add_constraint(Constraint constraint) { constraints_.push_back(std::move(constraint)); }
  void add_constraint(ConstraintSpec spec) { specs_.push_back(std::move(spec)); }

  [[nodiscard]] const std::vector<ParameterRange>& ranges() const { return ranges_; }
  [[nodiscard]] const std::vector<Constraint>& constraints() const { return constraints_; }
  [[nodiscard]] const std::vector<ConstraintSpec>& constraint_specs() const { return specs_; }
  [[nodiscard]] bool has_constraints() const {
    return !constraints_.empty() || !specs_.empty();
  }

  /// |S| before constraints: product of range sizes (paper Eq. 8).
  [[nodiscard]] std::uint64_t cartesian_cardinality() const;

  /// Number of configurations that satisfy all constraints.  Counts through
  /// the index bijection — no configuration vector is materialized.
  [[nodiscard]] std::uint64_t cardinality() const;

  /// Materialize every admissible configuration, in lexicographic order of
  /// the ranges (first range varies slowest — the paper's forward search
  /// order, which visits small/cheap configurations first for DGEMM).
  [[nodiscard]] std::vector<Configuration> enumerate() const;

  /// The configuration at a cartesian index (mixed-radix decode, last range
  /// fastest — identical to enumerate()'s order).  Constraints are NOT
  /// checked; pair with admits() when the space is constrained.  Throws
  /// std::out_of_range past cartesian_cardinality().
  [[nodiscard]] Configuration config_at(std::uint64_t cartesian_index) const;

  /// Inverse of config_at.  Throws std::invalid_argument naming the missing
  /// parameter or out-of-range value (and the offending configuration).
  [[nodiscard]] std::uint64_t index_of(const Configuration& config) const;

  /// True when `config` satisfies every constraint (both flavors).
  [[nodiscard]] bool admits(const Configuration& config) const;

  /// Throws std::invalid_argument naming the first violated constraint and
  /// the configuration, e.g. "constraint 'm==n' rejects n=500,m=1024,k=64".
  void require_admissible(const Configuration& config) const;

  /// All admissible cartesian indices, in enumeration order.
  [[nodiscard]] std::vector<std::uint64_t> admissible_indices() const;

  /// Deterministic sample of distinct admissible cartesian indices.
  /// Counter-seeded: draw j is a pure function of (seed, j), independent of
  /// call history and platform.  Returns min(count, cardinality()) indices.
  [[nodiscard]] std::vector<std::uint64_t> sample_indices(std::size_t count,
                                                          std::uint64_t seed) const;

  /// Latin-hypercube sample: `count` admissible indices whose per-dimension
  /// value ranks are spread over seeded stratified permutations, so every
  /// axis is covered evenly even when count << cardinality.  Strata lost to
  /// collisions or constraints are topped up from sample_indices' stream.
  [[nodiscard]] std::vector<std::uint64_t> latin_hypercube_indices(
      std::size_t count, std::uint64_t seed) const;

  /// Serialize ranges + declarative constraints.  Throws
  /// std::invalid_argument if the space holds opaque predicate constraints.
  [[nodiscard]] std::string to_json() const;

  static SearchSpace from_json(const std::string& json);
  static SearchSpace from_json(const util::JsonValue& value);

 private:
  std::vector<ParameterRange> ranges_;
  std::vector<Constraint> constraints_;
  std::vector<ConstraintSpec> specs_;
};

/// How the autotuner walks the enumerated space (§V "Reverse"/"R").
enum class SearchOrder { Forward, Reverse, Random };

const char* to_string(SearchOrder order);

/// Apply the order to an enumerated space.  Random uses the given seed.
std::vector<Configuration> ordered(std::vector<Configuration> configs, SearchOrder order,
                                   std::uint64_t seed = 0);

/// Lazy ordered random-access view of a space: rank -> configuration through
/// the index bijection.  An unconstrained Forward/Reverse walk stores
/// nothing; constrained or shuffled walks store one 8-byte index per
/// admissible configuration (never a Configuration vector).  Random order
/// applies the same seeded Fisher–Yates as ordered(), so a view and the
/// materialized path visit identical sequences for the same seed.
/// The view borrows the space, which must outlive it.
class SpaceView {
 public:
  SpaceView(const SearchSpace& space, SearchOrder order, std::uint64_t seed = 0);

  /// View over an explicit index list (e.g. a sample), in the given order.
  SpaceView(const SearchSpace& space, std::vector<std::uint64_t> indices);

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::uint64_t index_at(std::size_t rank) const;
  [[nodiscard]] Configuration at(std::size_t rank) const;
  [[nodiscard]] const SearchSpace& space() const { return *space_; }

 private:
  const SearchSpace* space_;
  bool lazy_ = false;      ///< unconstrained Forward/Reverse: no index storage
  bool reverse_ = false;
  std::uint64_t cartesian_ = 0;
  std::vector<std::uint64_t> indices_;
};

}  // namespace rooftune::core
