#pragma once
// Search-space definition and reduction (paper §IV).
//
// "The definition and reduction of the search space is critical for
// autotuning."  A SearchSpace is a cartesian product of named parameter
// ranges, filtered by constraints.  Ranges support the paper's generators:
// powers of two between bounds, doubling sequences starting from an
// arbitrary base (the 500,1000,2000,4000 leading-dimension adjustment), and
// explicit value lists.  Constraints are named predicates so a constraint
// specification study (like the paper's m = n experiment) is expressible.

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/config.hpp"

namespace rooftune::core {

/// One named axis of the search space.
class ParameterRange {
 public:
  ParameterRange(std::string name, std::vector<std::int64_t> values);

  /// {lo, 2*lo, 4*lo, ..., hi}; lo and hi must be powers of two with lo <= hi.
  static ParameterRange powers_of_two(std::string name, std::int64_t lo, std::int64_t hi);

  /// {base, 2*base, 4*base, ...} with `count` entries (the paper's
  /// multiples-of-2 leading dimensions: 500, 1000, 2000, 4000).
  static ParameterRange doubling(std::string name, std::int64_t base, std::size_t count);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const std::vector<std::int64_t>& values() const { return values_; }
  [[nodiscard]] std::size_t size() const { return values_.size(); }

 private:
  std::string name_;
  std::vector<std::int64_t> values_;
};

/// Named predicate over full configurations (e.g. "m==n").
struct Constraint {
  std::string name;
  std::function<bool(const Configuration&)> predicate;
};

class SearchSpace {
 public:
  SearchSpace() = default;
  explicit SearchSpace(std::vector<ParameterRange> ranges) : ranges_(std::move(ranges)) {}

  void add_range(ParameterRange range) { ranges_.push_back(std::move(range)); }
  void add_constraint(Constraint constraint) { constraints_.push_back(std::move(constraint)); }

  [[nodiscard]] const std::vector<ParameterRange>& ranges() const { return ranges_; }
  [[nodiscard]] const std::vector<Constraint>& constraints() const { return constraints_; }

  /// |S| before constraints: product of range sizes (paper Eq. 8).
  [[nodiscard]] std::uint64_t cartesian_cardinality() const;

  /// Number of configurations that satisfy all constraints.
  [[nodiscard]] std::uint64_t cardinality() const;

  /// Materialize every admissible configuration, in lexicographic order of
  /// the ranges (first range varies slowest — the paper's forward search
  /// order, which visits small/cheap configurations first for DGEMM).
  [[nodiscard]] std::vector<Configuration> enumerate() const;

  /// True when `config` satisfies every constraint.
  [[nodiscard]] bool admits(const Configuration& config) const;

 private:
  std::vector<ParameterRange> ranges_;
  std::vector<Constraint> constraints_;
};

/// How the autotuner walks the enumerated space (§V "Reverse"/"R").
enum class SearchOrder { Forward, Reverse, Random };

const char* to_string(SearchOrder order);

/// Apply the order to an enumerated space.  Random uses the given seed.
std::vector<Configuration> ordered(std::vector<Configuration> configs, SearchOrder order,
                                   std::uint64_t seed = 0);

}  // namespace rooftune::core
