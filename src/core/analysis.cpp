#include "core/analysis.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>

#include "util/strings.hpp"
#include "util/table.hpp"

namespace rooftune::core {

std::vector<ParameterEffect> parameter_effects(const TuningRun& run,
                                               bool include_pruned) {
  // name -> value -> (sum, best, count)
  struct Acc {
    double sum = 0.0;
    double best = 0.0;
    std::size_t count = 0;
  };
  std::map<std::string, std::map<std::int64_t, Acc>> buckets;
  double overall_sum = 0.0;
  std::size_t overall_count = 0;

  for (const auto& result : run.results) {
    if (!include_pruned && result.pruned()) continue;
    const double value = result.value();
    overall_sum += value;
    ++overall_count;
    for (const auto& p : result.config.parameters()) {
      Acc& acc = buckets[p.name][p.value];
      acc.sum += value;
      acc.best = acc.count == 0 ? value : std::max(acc.best, value);
      ++acc.count;
    }
  }
  if (overall_count == 0) {
    throw std::invalid_argument(
        "parameter_effects: no (unpruned) results to analyze");
  }
  const double overall_mean = overall_sum / static_cast<double>(overall_count);

  std::vector<ParameterEffect> effects;
  for (const auto& [name, levels] : buckets) {
    ParameterEffect effect;
    effect.name = name;
    for (const auto& [value, acc] : levels) {
      LevelEffect level;
      level.value = value;
      level.mean = acc.sum / static_cast<double>(acc.count);
      level.best = acc.best;
      level.count = acc.count;
      effect.levels.push_back(level);
    }
    double lo = effect.levels.front().mean;
    double hi = effect.levels.front().mean;
    effect.best_level = effect.levels.front().value;
    for (const auto& level : effect.levels) {
      if (level.mean < lo) lo = level.mean;
      if (level.mean > hi) {
        hi = level.mean;
        effect.best_level = level.value;
      }
    }
    effect.effect_range = overall_mean > 0.0 ? (hi - lo) / overall_mean : 0.0;
    effects.push_back(std::move(effect));
  }
  return effects;
}

std::vector<ParameterEffect> ranked_parameter_effects(const TuningRun& run,
                                                      bool include_pruned) {
  auto effects = parameter_effects(run, include_pruned);
  std::sort(effects.begin(), effects.end(),
            [](const ParameterEffect& a, const ParameterEffect& b) {
              return a.effect_range > b.effect_range;
            });
  return effects;
}

std::string effects_report(const TuningRun& run) {
  const auto effects = ranked_parameter_effects(run, /*include_pruned=*/true);
  util::TextTable table;
  table.columns({"Parameter", "Effect range", "Best level", "Level means"},
                {util::Align::Left, util::Align::Right, util::Align::Right,
                 util::Align::Left});
  for (const auto& effect : effects) {
    std::string means;
    for (const auto& level : effect.levels) {
      if (!means.empty()) means += "  ";
      means += util::format("%lld:%.0f", static_cast<long long>(level.value),
                            level.mean);
    }
    table.add_row({effect.name, util::format("%.1f%%", 100.0 * effect.effect_range),
                   std::to_string(effect.best_level), means});
  }
  return table.render();
}

RunComparison compare_runs(const TuningRun& a, const TuningRun& b,
                           double confidence) {
  std::map<std::string, const ConfigResult*> b_index;
  for (const auto& result : b.results) {
    b_index.emplace(result.config.to_string(), &result);
  }

  RunComparison comparison;
  for (const auto& ra : a.results) {
    const auto it = b_index.find(ra.config.to_string());
    if (it == b_index.end()) {
      ++comparison.skipped;
      continue;
    }
    const ConfigResult& rb = *it->second;
    if (ra.outer_moments.count() < 2 || rb.outer_moments.count() < 2) {
      // Pruned/abandoned configs have too few invocation means to compare.
      ++comparison.skipped;
      continue;
    }
    ++comparison.compared;
    const auto verdict =
        stats::compare_means(ra.outer_moments, rb.outer_moments, confidence);
    if (verdict != stats::Comparison::Indistinguishable) {
      ConfigDelta delta;
      delta.config = ra.config;
      delta.value_a = ra.value();
      delta.value_b = rb.value();
      delta.ratio = rb.value() != 0.0 ? ra.value() / rb.value() : 0.0;
      delta.verdict = verdict;
      comparison.significant.push_back(std::move(delta));
    }
  }

  if (a.best_index.has_value() && b.best_index.has_value()) {
    comparison.best_config_matches = a.best_config() == b.best_config();
    comparison.best_ratio =
        b.best_value() != 0.0 ? a.best_value() / b.best_value() : 0.0;
  }
  return comparison;
}

}  // namespace rooftune::core
